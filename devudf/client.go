package devudf

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/transform"
	"repro/internal/udfrt"
	"repro/internal/udfrt/pyrt"
	"repro/internal/wire"
)

// Client is a plugin session: a pooled set of authenticated wire
// connections plus the project workspace. It implements the import/export
// windows of Fig. 3 and the local run/debug workflow of §2.1–2.3. Every
// server-touching method takes a context that cancels the underlying wire
// operation.
type Client struct {
	Settings Settings
	Project  *Project

	pool *wire.Pool

	// stmts caches pool-aware prepared statements behind the variadic
	// Query convenience path, bounded so an app cycling through distinct
	// SQL texts cannot grow it without limit.
	stmtMu sync.Mutex
	stmts  map[string]*wire.PoolStmt
}

// maxCachedStmts bounds the client's convenience-path statement cache.
const maxCachedStmts = 32

// Open dials the database from the settings and opens the project
// workspace. The returned client is backed by a bounded connection pool;
// connectivity and credentials are verified eagerly with one checkout.
func Open(ctx context.Context, settings Settings, opts ...Option) (*Client, error) {
	if ctx == nil {
		ctx = context.Background() //ctxflow:edge nil-ctx fallback of the exported client API
	}
	cfg := clientConfig{fs: core.OSFS{}, poolSize: 4}
	//interruptloop:exempt bounded by the handful of client options passed at Open
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.poolSize < 1 {
		cfg.poolSize = 1
	}
	pool := wire.NewPool(settings.Connection, cfg.poolSize, cfg.dialOpts...)
	wc, err := pool.Get(ctx)
	if err != nil {
		pool.Close()
		return nil, err
	}
	pool.Put(wc)
	return &Client{
		Settings: settings,
		Project:  OpenProject(cfg.fs, settings.ProjectDir),
		pool:     pool,
	}, nil
}

// Connect dials the database from the settings and opens the project in fs.
//
// Deprecated: use Open, which accepts a context and options.
func Connect(settings Settings, fs core.FS) (*Client, error) {
	return Open(context.Background(), settings, WithFS(fs)) //ctxflow:edge deprecated ctx-less entry point
}

// Close closes the cached prepared statements and the connection pool.
func (c *Client) Close() error {
	c.stmtMu.Lock()
	for _, ps := range c.stmts {
		_ = ps.Close()
	}
	c.stmts = nil
	c.stmtMu.Unlock()
	return c.pool.Close()
}

// Pool exposes the underlying connection pool (stats for the benches,
// direct checkouts for streaming consumers).
func (c *Client) Pool() *wire.Pool { return c.pool }

// QueryResult is the outcome of one statement: the server's status tag
// plus the result table (nil for statements without one).
type QueryResult struct {
	Tag   string
	Table *storage.Table
}

// Query runs SQL on the server. Bind arguments route through the
// prepared-statement path: the statement is prepared once per SQL text
// (cached on the client, re-prepared transparently across pool churn), so
// a workload repeating the same parameterized query skips re-lex/re-parse/
// re-plan on every call — the devUDF import/run/debug loop in one method.
func (c *Client) Query(ctx context.Context, sql string, args ...any) (QueryResult, error) {
	if len(args) == 0 {
		tag, tbl, err := c.pool.Query(ctx, sql)
		return QueryResult{Tag: tag, Table: tbl}, err
	}
	for attempt := 0; ; attempt++ {
		ps, err := c.cachedStmt(ctx, sql)
		if err != nil {
			return QueryResult{}, err
		}
		tag, tbl, err := ps.Query(ctx, args...)
		if errors.Is(err, wire.ErrStmtClosed) && attempt < 2 {
			// cache eviction closed the statement between lookup and
			// execution; drop the stale mapping and re-prepare
			c.forgetStmt(sql, ps)
			continue
		}
		return QueryResult{Tag: tag, Table: tbl}, err
	}
}

// forgetStmt removes a cache mapping if it still points at the given
// statement (a concurrent re-prepare may already have replaced it).
func (c *Client) forgetStmt(sql string, ps *wire.PoolStmt) {
	c.stmtMu.Lock()
	if c.stmts[sql] == ps {
		delete(c.stmts, sql)
	}
	c.stmtMu.Unlock()
}

// QueryTable runs raw SQL and returns the pre-prepared-statements shape.
//
// Deprecated: use Query, which accepts bind arguments and returns a
// QueryResult.
func (c *Client) QueryTable(ctx context.Context, sql string) (string, *storage.Table, error) {
	res, err := c.Query(ctx, sql)
	return res.Tag, res.Table, err
}

// Prepare compiles sql once for repeated execution with bind arguments.
// The statement is pool-aware: it transparently re-prepares on whichever
// healthy connection the pool hands back.
func (c *Client) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	ps, err := c.pool.Prepare(ctx, sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{ps: ps}, nil
}

// Stmt is a prepared statement over the client's connection pool.
type Stmt struct{ ps *wire.PoolStmt }

// NumParams reports how many bind arguments each execution needs.
func (s *Stmt) NumParams() int { return s.ps.NumParams() }

// Query executes the statement with one set of bind arguments.
func (s *Stmt) Query(ctx context.Context, args ...any) (QueryResult, error) {
	tag, tbl, err := s.ps.Query(ctx, args...)
	return QueryResult{Tag: tag, Table: tbl}, err
}

// Exec executes the statement for its side effects, returning the tag.
func (s *Stmt) Exec(ctx context.Context, args ...any) (string, error) {
	return s.ps.Exec(ctx, args...)
}

// Close releases the statement.
func (s *Stmt) Close() error { return s.ps.Close() }

// cachedStmt returns (preparing on first use) the pool statement behind
// the variadic Query path, evicting an arbitrary entry once the bounded
// cache is full.
func (c *Client) cachedStmt(ctx context.Context, sql string) (*wire.PoolStmt, error) {
	c.stmtMu.Lock()
	ps := c.stmts[sql]
	c.stmtMu.Unlock()
	if ps != nil {
		return ps, nil
	}
	ps, err := c.pool.Prepare(ctx, sql)
	if err != nil {
		return nil, err
	}
	c.stmtMu.Lock()
	defer c.stmtMu.Unlock()
	if prev, ok := c.stmts[sql]; ok {
		// another goroutine won the race; keep its statement
		_ = ps.Close()
		return prev, nil
	}
	if c.stmts == nil {
		c.stmts = map[string]*wire.PoolStmt{}
	}
	for len(c.stmts) >= maxCachedStmts {
		for k, victim := range c.stmts {
			_ = victim.Close()
			delete(c.stmts, k)
			break
		}
	}
	c.stmts[sql] = ps
	return ps, nil
}

// serverCatalog is one consistent snapshot of the server's UDF meta
// tables: the Fig. 3a listing plus every function body, fetched with two
// queries total so imports never re-read the catalog per UDF.
type serverCatalog struct {
	infos  []UDFInfo
	bodies map[string]string // lower(name) → function body
}

func (sc *serverCatalog) find(name string) *UDFInfo {
	for i := range sc.infos {
		if strings.EqualFold(sc.infos[i].Name, name) {
			return &sc.infos[i]
		}
	}
	return nil
}

// has is the isUDF predicate for query analysis; bodies is already keyed
// by lowercase name, so this stays O(1) per identifier probed.
func (sc *serverCatalog) has(name string) bool {
	_, ok := sc.bodies[strings.ToLower(name)]
	return ok
}

// listServerUDFs pulls the whole UDF catalog in two meta queries.
func (c *Client) listServerUDFs(ctx context.Context) (*serverCatalog, error) {
	_, funcs, err := c.pool.Query(ctx, `SELECT id, name, func, language, is_table FROM sys.functions ORDER BY name`)
	if err != nil {
		return nil, err
	}
	_, args, err := c.pool.Query(ctx, `SELECT function_id, name, type, number, is_result FROM sys.function_args ORDER BY function_id, number`)
	if err != nil {
		return nil, err
	}
	type argRow struct {
		name     string
		typ      string
		isResult bool
	}
	argsByID := map[int64][]argRow{}
	if args != nil {
		fid, _ := args.Column("function_id")
		an, _ := args.Column("name")
		at, _ := args.Column("type")
		ir, _ := args.Column("is_result")
		for i := 0; i < args.NumRows(); i++ {
			argsByID[fid.Ints[i]] = append(argsByID[fid.Ints[i]],
				argRow{an.Strs[i], at.Strs[i], ir.Bools[i]})
		}
	}
	cat := &serverCatalog{bodies: map[string]string{}}
	if funcs == nil {
		return cat, nil
	}
	id, _ := funcs.Column("id")
	name, _ := funcs.Column("name")
	body, _ := funcs.Column("func")
	lang, _ := funcs.Column("language")
	isTable, _ := funcs.Column("is_table")
	for i := 0; i < funcs.NumRows(); i++ {
		info := UDFInfo{
			Name:     name.Strs[i],
			Language: lang.Strs[i],
			IsTable:  isTable.Bools[i],
		}
		for _, a := range argsByID[id.Ints[i]] {
			pi := ParamInfo{Name: a.name, Type: a.typ}
			if a.isResult {
				info.Returns = append(info.Returns, pi)
			} else {
				info.Params = append(info.Params, pi)
			}
		}
		cat.infos = append(cat.infos, info)
		cat.bodies[strings.ToLower(info.Name)] = body.Strs[i]
	}
	return cat, nil
}

// ListServerUDFs queries the server's meta tables for stored UDFs — the
// population of the "Import UDFs" window (Fig. 3a).
func (c *Client) ListServerUDFs(ctx context.Context) ([]UDFInfo, error) {
	cat, err := c.listServerUDFs(ctx)
	if err != nil {
		return nil, err
	}
	return cat.infos, nil
}

// fetchUDF resolves one UDF's metadata and body from a catalog snapshot.
func fetchUDF(cat *serverCatalog, name string) (UDFInfo, string, error) {
	info := cat.find(name)
	if info == nil {
		return UDFInfo{}, "", core.Errorf(core.KindName, "server has no UDF %q", name)
	}
	body, ok := cat.bodies[strings.ToLower(info.Name)]
	if !ok {
		return UDFInfo{}, "", core.Errorf(core.KindProtocol, "unexpected meta result for %q", name)
	}
	return *info, body, nil
}

// ImportUDFs imports the named UDFs (Fig. 3a): it extracts each body from
// a single snapshot of the server's meta tables, applies the Listing 2
// code transformation (header synthesis + input-loading prologue) and
// writes the runnable script into the project. Nested UDFs reachable
// through loopback queries (§2.3) are imported transitively. It returns
// every imported name.
func (c *Client) ImportUDFs(ctx context.Context, names ...string) ([]string, error) {
	cat, err := c.listServerUDFs(ctx)
	if err != nil {
		return nil, err
	}
	isUDF := func(name string) bool { return cat.has(name) }
	var imported []string
	seen := map[string]bool{}
	queue := append([]string(nil), names...)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		key := strings.ToLower(name)
		if seen[key] {
			continue
		}
		seen[key] = true
		info, body, err := fetchUDF(cat, name)
		if err != nil {
			return imported, err
		}
		var src string
		if languageOf(info) == pyrt.Name {
			src = transform.BuildLocalScript(transform.LocalScriptInfo{
				Name:      info.Name,
				Params:    info.ParamNames(),
				Body:      body,
				InputFile: "./" + c.Project.InputPath(info.Name),
			})
		} else {
			// Native UDFs carry no editable source; the stub records the
			// signature and the bound symbol so extract/run/export still work.
			src = nativeStub(info, body)
		}
		if err := c.Project.SaveUDF(info, src); err != nil {
			return imported, err
		}
		imported = append(imported, info.Name)
		// §2.3: follow loopback queries to nested UDFs
		queue = append(queue, transform.FindLoopbackUDFs(body, isUDF)...)
	}
	sort.Strings(imported)
	return imported, nil
}

// ImportAll imports every UDF stored on the server (the "import all
// functions" choice of Fig. 3a).
func (c *Client) ImportAll(ctx context.Context) ([]string, error) {
	cat, err := c.listServerUDFs(ctx)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(cat.infos))
	for i, info := range cat.infos {
		names[i] = info.Name
	}
	return c.ImportUDFs(ctx, names...)
}

// nativeSymbolMarker tags the stub line carrying a native UDF's registered
// symbol so exports can round-trip it.
const nativeSymbolMarker = "# native-symbol:"

// nativeStub is the project file written for UDFs whose implementation is
// native code (LANGUAGE GO): there is no source to edit, but the stub keeps
// the import visible and records the bound symbol.
func nativeStub(info UDFInfo, symbol string) string {
	symbol = strings.TrimSpace(symbol)
	if symbol == "" {
		symbol = info.Name
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s is a native %s UDF; its implementation is compiled into the\n",
		info.Name, languageOf(info))
	sb.WriteString("# host binary and cannot be edited here. Register it in this process with\n")
	fmt.Fprintf(&sb, "# devudf.RegisterGoUDF(%q, fn) to run it on extracted inputs.\n", symbol)
	fmt.Fprintf(&sb, "%s %s\n", nativeSymbolMarker, symbol)
	return sb.String()
}

// nativeSymbol recovers the symbol recorded by nativeStub ("" when absent,
// which binds to the UDF's own name).
func nativeSymbol(src string) string {
	for _, ln := range strings.Split(src, "\n") {
		if rest, ok := strings.CutPrefix(ln, nativeSymbolMarker); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// ExportUDFs reverses the import transformation (Fig. 3b): it extracts the
// (possibly edited) function body from each project file and commits it
// back to the server with CREATE OR REPLACE FUNCTION. Native UDFs export
// their recorded symbol as the body — the implementation itself lives in
// the server binary.
func (c *Client) ExportUDFs(ctx context.Context, names ...string) error {
	for _, name := range names {
		info, src, err := c.Project.LoadUDF(name)
		if err != nil {
			return err
		}
		var body string
		if languageOf(info) == pyrt.Name {
			body, err = transform.ExtractBody(src, info.Name)
			if err != nil {
				return err
			}
		} else {
			body = nativeSymbol(src)
		}
		sql, err := createFunctionSQL(info, body)
		if err != nil {
			return err
		}
		if _, _, err := c.pool.Query(ctx, sql); err != nil {
			// Server errors arrive already kinded (syntax, overload,
			// cancellation); preserve that so retry/cancel classification
			// survives. Only unkinded local failures become KindRuntime.
			kind := core.KindOf(err)
			if kind == core.KindUnknown {
				kind = core.KindRuntime
			}
			return core.Wrapf(kind, err, "export %s: %v", info.Name, err)
		}
	}
	return nil
}

// ExportAll exports every UDF in the project.
func (c *Client) ExportAll(ctx context.Context) error {
	names, err := c.Project.List()
	if err != nil {
		return err
	}
	return c.ExportUDFs(ctx, names...)
}

// createFunctionSQL renders CREATE OR REPLACE FUNCTION through the SQL AST
// printer so quoting and types stay correct.
func createFunctionSQL(info UDFInfo, body string) (string, error) {
	params, err := toSchema(info.Params)
	if err != nil {
		return "", err
	}
	returns, err := toSchema(info.Returns)
	if err != nil {
		return "", err
	}
	if len(returns) == 0 {
		return "", core.Errorf(core.KindConstraint,
			"UDF %s has no declared return type", info.Name)
	}
	lang := info.Language
	if lang == "" {
		lang = "PYTHON"
	}
	cf := &sqlparse.CreateFunction{
		Name:      info.Name,
		Params:    params,
		Returns:   returns,
		IsTable:   info.IsTable,
		Language:  lang,
		Body:      body,
		OrReplace: true,
	}
	return sqlparse.Format(cf), nil
}

// DescribeServerUDF renders one server UDF the way MonetDB's meta-table
// listing in the paper's Listing 1 looks (name + body), for the CLI.
func (c *Client) DescribeServerUDF(ctx context.Context, name string) (string, error) {
	cat, err := c.listServerUDFs(ctx)
	if err != nil {
		return "", err
	}
	info, body, err := fetchUDF(cat, name)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "name: %s\nlanguage: %s\ndebuggable: %v\ntable function: %v\nparams:",
		info.Name, languageOf(info), udfrt.LanguageDebuggable(info.Language), info.IsTable)
	for _, p := range info.Params {
		fmt.Fprintf(&sb, " %s %s", p.Name, p.Type)
	}
	sb.WriteString("\nfunc:\n")
	sb.WriteString(body)
	return sb.String(), nil
}
