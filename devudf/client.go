package devudf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/transform"
	"repro/internal/wire"
)

// Client is a plugin session: an authenticated wire connection plus the
// project workspace. It implements the import/export windows of Fig. 3 and
// the local run/debug workflow of §2.1–2.3.
type Client struct {
	Settings Settings
	Project  *Project

	wc *wire.Client
}

// Connect dials the database from the settings and opens the project in fs.
func Connect(settings Settings, fs core.FS) (*Client, error) {
	wc, err := wire.Dial(settings.Connection)
	if err != nil {
		return nil, err
	}
	return &Client{
		Settings: settings,
		Project:  OpenProject(fs, settings.ProjectDir),
		wc:       wc,
	}, nil
}

// Close closes the server connection.
func (c *Client) Close() error { return c.wc.Close() }

// Wire exposes the underlying wire client (byte counters for benches).
func (c *Client) Wire() *wire.Client { return c.wc }

// Query runs raw SQL on the server (the mclient path).
func (c *Client) Query(sql string) (string, *storage.Table, error) { return c.wc.Query(sql) }

// ListServerUDFs queries the server's meta tables for stored UDFs — the
// population of the "Import UDFs" window (Fig. 3a).
func (c *Client) ListServerUDFs() ([]UDFInfo, error) {
	_, funcs, err := c.wc.Query(`SELECT id, name, func, language, is_table FROM sys.functions ORDER BY name`)
	if err != nil {
		return nil, err
	}
	_, args, err := c.wc.Query(`SELECT function_id, name, type, number, is_result FROM sys.function_args ORDER BY function_id, number`)
	if err != nil {
		return nil, err
	}
	type argRow struct {
		name     string
		typ      string
		isResult bool
	}
	argsByID := map[int64][]argRow{}
	if args != nil {
		fid, _ := args.Column("function_id")
		an, _ := args.Column("name")
		at, _ := args.Column("type")
		ir, _ := args.Column("is_result")
		for i := 0; i < args.NumRows(); i++ {
			argsByID[fid.Ints[i]] = append(argsByID[fid.Ints[i]],
				argRow{an.Strs[i], at.Strs[i], ir.Bools[i]})
		}
	}
	var out []UDFInfo
	if funcs == nil {
		return out, nil
	}
	id, _ := funcs.Column("id")
	name, _ := funcs.Column("name")
	lang, _ := funcs.Column("language")
	isTable, _ := funcs.Column("is_table")
	for i := 0; i < funcs.NumRows(); i++ {
		info := UDFInfo{
			Name:     name.Strs[i],
			Language: lang.Strs[i],
			IsTable:  isTable.Bools[i],
		}
		for _, a := range argsByID[id.Ints[i]] {
			pi := ParamInfo{Name: a.name, Type: a.typ}
			if a.isResult {
				info.Returns = append(info.Returns, pi)
			} else {
				info.Params = append(info.Params, pi)
			}
		}
		out = append(out, info)
	}
	return out, nil
}

// fetchUDF pulls one UDF's metadata and body from the meta tables.
func (c *Client) fetchUDF(name string) (UDFInfo, string, error) {
	infos, err := c.ListServerUDFs()
	if err != nil {
		return UDFInfo{}, "", err
	}
	var found *UDFInfo
	for i := range infos {
		if strings.EqualFold(infos[i].Name, name) {
			found = &infos[i]
			break
		}
	}
	if found == nil {
		return UDFInfo{}, "", core.Errorf(core.KindName, "server has no UDF %q", name)
	}
	_, body, err := c.wc.Query(
		"SELECT func FROM sys.functions WHERE name = " + sqlQuote(found.Name))
	if err != nil {
		return UDFInfo{}, "", err
	}
	if body == nil || body.NumRows() != 1 {
		return UDFInfo{}, "", core.Errorf(core.KindProtocol, "unexpected meta result for %q", name)
	}
	col, err := body.Column("func")
	if err != nil {
		return UDFInfo{}, "", err
	}
	return *found, col.Strs[0], nil
}

func sqlQuote(s string) string { return "'" + strings.ReplaceAll(s, "'", "''") + "'" }

// serverHasUDF is the isUDF predicate for query analysis.
func (c *Client) serverHasUDF(infos []UDFInfo) func(string) bool {
	set := map[string]bool{}
	for _, i := range infos {
		set[strings.ToLower(i.Name)] = true
	}
	return func(name string) bool { return set[strings.ToLower(name)] }
}

// ImportUDFs imports the named UDFs (Fig. 3a): it extracts each body from
// the server's meta tables, applies the Listing 2 code transformation
// (header synthesis + input-loading prologue) and writes the runnable
// script into the project. Nested UDFs reachable through loopback queries
// (§2.3) are imported transitively. It returns every imported name.
func (c *Client) ImportUDFs(names ...string) ([]string, error) {
	infos, err := c.ListServerUDFs()
	if err != nil {
		return nil, err
	}
	isUDF := c.serverHasUDF(infos)
	var imported []string
	seen := map[string]bool{}
	queue := append([]string(nil), names...)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		key := strings.ToLower(name)
		if seen[key] {
			continue
		}
		seen[key] = true
		info, body, err := c.fetchUDF(name)
		if err != nil {
			return imported, err
		}
		src := transform.BuildLocalScript(transform.LocalScriptInfo{
			Name:      info.Name,
			Params:    info.ParamNames(),
			Body:      body,
			InputFile: "./" + c.Project.InputPath(info.Name),
		})
		if err := c.Project.SaveUDF(info, src); err != nil {
			return imported, err
		}
		imported = append(imported, info.Name)
		// §2.3: follow loopback queries to nested UDFs
		queue = append(queue, transform.FindLoopbackUDFs(body, isUDF)...)
	}
	sort.Strings(imported)
	return imported, nil
}

// ImportAll imports every UDF stored on the server (the "import all
// functions" choice of Fig. 3a).
func (c *Client) ImportAll() ([]string, error) {
	infos, err := c.ListServerUDFs()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return c.ImportUDFs(names...)
}

// ExportUDFs reverses the import transformation (Fig. 3b): it extracts the
// (possibly edited) function body from each project file and commits it
// back to the server with CREATE OR REPLACE FUNCTION.
func (c *Client) ExportUDFs(names ...string) error {
	for _, name := range names {
		info, src, err := c.Project.LoadUDF(name)
		if err != nil {
			return err
		}
		body, err := transform.ExtractBody(src, info.Name)
		if err != nil {
			return err
		}
		sql, err := createFunctionSQL(info, body)
		if err != nil {
			return err
		}
		if _, _, err := c.wc.Query(sql); err != nil {
			return core.Errorf(core.KindRuntime, "export %s: %v", info.Name, err)
		}
	}
	return nil
}

// ExportAll exports every UDF in the project.
func (c *Client) ExportAll() error {
	names, err := c.Project.List()
	if err != nil {
		return err
	}
	return c.ExportUDFs(names...)
}

// createFunctionSQL renders CREATE OR REPLACE FUNCTION through the SQL AST
// printer so quoting and types stay correct.
func createFunctionSQL(info UDFInfo, body string) (string, error) {
	params, err := toSchema(info.Params)
	if err != nil {
		return "", err
	}
	returns, err := toSchema(info.Returns)
	if err != nil {
		return "", err
	}
	if len(returns) == 0 {
		return "", core.Errorf(core.KindConstraint,
			"UDF %s has no declared return type", info.Name)
	}
	lang := info.Language
	if lang == "" {
		lang = "PYTHON"
	}
	cf := &sqlparse.CreateFunction{
		Name:      info.Name,
		Params:    params,
		Returns:   returns,
		IsTable:   info.IsTable,
		Language:  lang,
		Body:      body,
		OrReplace: true,
	}
	return sqlparse.Format(cf), nil
}

// DescribeServerUDF renders one server UDF the way MonetDB's meta-table
// listing in the paper's Listing 1 looks (name + body), for the CLI.
func (c *Client) DescribeServerUDF(name string) (string, error) {
	info, body, err := c.fetchUDF(name)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "name: %s\nlanguage: %s\ntable function: %v\nparams:", info.Name, info.Language, info.IsTable)
	for _, p := range info.Params {
		fmt.Fprintf(&sb, " %s %s", p.Name, p.Type)
	}
	sb.WriteString("\nfunc:\n")
	sb.WriteString(body)
	return sb.String(), nil
}
