package devudf

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func preparedClient(t *testing.T) *Client {
	t.Helper()
	params, _ := startServer(t,
		`CREATE TABLE nums (i INTEGER, s STRING)`,
		`INSERT INTO nums VALUES (1, 'a'), (2, 'b'), (3, 'a'), (4, 'c')`,
	)
	settings := DefaultSettings()
	settings.Connection = params
	c, err := Open(ctx, settings, WithFS(core.NewMemFS(nil)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestClientQueryVariadic: the convenience path — bind arguments on the
// plain Query method route through a cached prepared statement.
func TestClientQueryVariadic(t *testing.T) {
	c := preparedClient(t)
	for want := int64(1); want <= 4; want++ {
		res, err := c.Query(ctx, `SELECT i FROM nums WHERE i = ?`, want)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tag != "SELECT 1" || res.Table.Cols[0].Ints[0] != want {
			t.Fatalf("bind %d: %q %v", want, res.Tag, res.Table.Cols[0].Ints)
		}
	}
	// argument-free calls still work (and return the new shape)
	res, err := c.Query(ctx, `SELECT count(*) AS n FROM nums`)
	if err != nil || res.Table.Cols[0].Ints[0] != 4 {
		t.Fatalf("%v %v", res, err)
	}
	// the deprecated wrapper preserves the old shape
	//lint:ignore SA1019 exercising the deprecated QueryTable compatibility shim
	tag, tbl, err := c.QueryTable(ctx, `SELECT count(*) AS n FROM nums`)
	if err != nil || tag != "SELECT 1" || tbl.Cols[0].Ints[0] != 4 {
		t.Fatalf("%q %v %v", tag, tbl, err)
	}
}

// TestClientPreparedStmt: the explicit Prepare surface, including reuse
// across many binds and NumParams.
func TestClientPreparedStmt(t *testing.T) {
	c := preparedClient(t)
	st, err := c.Prepare(ctx, `SELECT count(*) AS n FROM nums WHERE s = $1 AND i >= $2`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumParams() != 2 {
		t.Fatalf("NumParams = %d", st.NumParams())
	}
	counts := map[string]int64{"a": 2, "b": 1, "zz": 0}
	for s, want := range counts {
		res, err := st.Query(ctx, s, int64(0))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Table.Cols[0].Ints[0]; got != want {
			t.Fatalf("%q: got %d, want %d", s, got, want)
		}
	}
	if tag, err := st.Exec(ctx, "a", int64(3)); err != nil || tag != "SELECT 1" {
		t.Fatalf("%q %v", tag, err)
	}
}

// TestClientStmtCacheBounded: the variadic-path statement cache stays
// within its bound while distinct SQL texts cycle through.
func TestClientStmtCacheBounded(t *testing.T) {
	c := preparedClient(t)
	for i := 0; i < maxCachedStmts+10; i++ {
		sql := fmt.Sprintf(`SELECT i FROM nums WHERE i = ? AND %d >= 0`, i)
		if _, err := c.Query(ctx, sql, int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	c.stmtMu.Lock()
	n := len(c.stmts)
	c.stmtMu.Unlock()
	if n > maxCachedStmts {
		t.Fatalf("stmt cache grew to %d (bound %d)", n, maxCachedStmts)
	}
	// cached texts still execute after eviction pressure
	if res, err := c.Query(ctx, `SELECT i FROM nums WHERE i = ?`, int64(2)); err != nil ||
		res.Table.Cols[0].Ints[0] != 2 {
		t.Fatalf("%v %v", res, err)
	}
}

// TestClientQueryConcurrentEviction hammers the variadic path from several
// goroutines across more distinct SQL texts than the cache bound, so
// evictions close statements under live traffic; the retry on
// wire.ErrStmtClosed must absorb every race and each query still return
// its correct row.
func TestClientQueryConcurrentEviction(t *testing.T) {
	c := preparedClient(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tag := (g*13 + i) % (maxCachedStmts + 8) // > bound → constant churn
				want := int64(i%4 + 1)
				sql := fmt.Sprintf(`SELECT i FROM nums WHERE i = ? AND %d >= 0`, tag)
				res, err := c.Query(ctx, sql, want)
				if err != nil {
					t.Errorf("goroutine %d query %d: %v", g, i, err)
					return
				}
				if res.Table.NumRows() != 1 || res.Table.Cols[0].Ints[0] != want {
					t.Errorf("goroutine %d query %d: wrong rows %v", g, i, res.Table.Cols[0].Ints)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
