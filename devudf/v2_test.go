package devudf

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

// brokenFS fails every read with a non-not-exist error, standing in for a
// permission-denied project directory.
type brokenFS struct{}

func (brokenFS) ReadFile(string) ([]byte, error) {
	return nil, core.Errorf(core.KindIO, "permission denied")
}
func (brokenFS) ListDir(string) ([]string, error) {
	return nil, core.Errorf(core.KindIO, "permission denied")
}
func (brokenFS) WriteFile(string, []byte) error {
	return core.Errorf(core.KindIO, "permission denied")
}

func TestLoadSettingsOnlyDefaultsWhenMissing(t *testing.T) {
	// missing file → defaults, no error
	s, err := LoadSettings(core.NewMemFS(nil))
	if err != nil || s.Connection.Port != 50000 {
		t.Fatalf("missing settings must yield defaults: %+v %v", s, err)
	}
	// any other read failure must surface, not silently become defaults
	if _, err := LoadSettings(brokenFS{}); err == nil {
		t.Fatal("IO error must not be masked by defaults")
	} else if !strings.Contains(err.Error(), "permission denied") {
		t.Fatalf("cause lost: %v", err)
	}
	// corrupt JSON still errors
	fs := core.NewMemFS(map[string]string{"devudf.json": "{nope"})
	if _, err := LoadSettings(fs); err == nil {
		t.Fatal("corrupt settings must error")
	}
}

func TestOpenHonorsCancelledContext(t *testing.T) {
	params, _ := startServer(t)
	settings := DefaultSettings()
	settings.Connection = params
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Open(cctx, settings, WithFS(core.NewMemFS(nil))); err == nil {
		t.Fatal("Open with cancelled context must fail")
	}
}

func TestOpenVerifiesCredentialsEagerly(t *testing.T) {
	params, _ := startServer(t)
	settings := DefaultSettings()
	settings.Connection = params
	settings.Connection.Password = "wrong"
	if _, err := Open(ctx, settings, WithFS(core.NewMemFS(nil))); err == nil {
		t.Fatal("bad credentials must fail at Open")
	}
}

func TestQueryCancellationThroughClient(t *testing.T) {
	params, _ := startServer(t, `CREATE TABLE t (i INTEGER)`)
	settings := DefaultSettings()
	settings.Connection = params
	c, err := Open(ctx, settings, WithFS(core.NewMemFS(nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Query(cctx, `SELECT i FROM t`); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query must wrap context.Canceled: %v", err)
	}
	// the pool replaces the poisoned connection transparently
	if _, err := c.Query(ctx, `SELECT i FROM t`); err != nil {
		t.Fatalf("pool must recover after a cancelled query: %v", err)
	}
}

func TestPoolStatsThroughClient(t *testing.T) {
	params, _ := startServer(t, `CREATE TABLE t (i INTEGER)`)
	settings := DefaultSettings()
	settings.Connection = params
	c, err := Open(ctx, settings, WithFS(core.NewMemFS(nil)), WithPoolSize(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(ctx, `SELECT i FROM t`); err != nil {
		t.Fatal(err)
	}
	st := c.Pool().Stats()
	if st.Size != 2 || st.Dials < 1 || st.BytesRead == 0 {
		t.Fatalf("pool stats: %+v", st)
	}
}
