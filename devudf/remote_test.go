package devudf

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/debug"
	"repro/internal/wire"
)

// TestRemoteDebugAcceptance is the examples/remote_debug scenario as an
// automated test: attach to the buggy mean_deviation UDF executing inside
// the in-process monetlited, hit a conditional breakpoint, inspect locals /
// stack / a watch expression, step, and resume to completion — while v1
// clients and non-debug v2 traffic keep working.
func TestRemoteDebugAcceptance(t *testing.T) {
	params, _ := startServer(t,
		`CREATE TABLE numbers (i INTEGER)`,
		`INSERT INTO numbers VALUES (1), (2), (3), (4), (100)`,
		buggyMeanDeviation,
	)
	settings := DefaultSettings()
	settings.Connection = params
	settings.DebugQuery = `SELECT mean_deviation(i) FROM numbers`
	client, err := Open(ctx, settings, WithFS(core.NewMemFS(nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// A v1 client on its own connection, before / after the debug run.
	v1, err := wire.DialContext(ctx, params, wire.WithProtoVersion(wire.ProtoV1))
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	if msg, _, err := v1.Query(ctx, "SELECT i FROM numbers"); err != nil || msg != "SELECT 5" {
		t.Fatalf("v1 pre-debug query: %q %v", msg, err)
	}

	sess, err := client.NewRemoteDebugSession(ctx, "mean_deviation", false)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Line 8 of the server's wrapper module is `distance += column[i] - mean`;
	// break there only once the accumulation has gone wrong.
	if err := sess.SetBreakpoint(8, "distance < -40"); err != nil {
		t.Fatal(err)
	}
	ev, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Terminal || ev.Reason != debug.ReasonBreakpoint || ev.Line != 8 || ev.FuncName != "mean_deviation" {
		t.Fatalf("first stop: %+v", ev)
	}

	// The debuggee is paused *inside the server*. Liveness traffic (a v2
	// ping bypasses the engine lock) still flows.
	pingConn, err := wire.DialContext(ctx, params)
	if err != nil {
		t.Fatal(err)
	}
	defer pingConn.Close()
	pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := pingConn.Ping(pctx); err != nil {
		t.Fatalf("v2 ping while debuggee paused: %v", err)
	}

	// Inspect: mean is 22, so the accumulated distance first crosses -40 at
	// i == 2 (−21 − 20 = −41), evaluated before the line executes.
	locals, err := sess.Locals()
	if err != nil {
		t.Fatal(err)
	}
	if locals["i"] != "2" || locals["distance"] != "-41.0" {
		t.Fatalf("locals at conditional breakpoint: %v", locals)
	}
	watch, err := sess.Eval("column[i] - mean")
	if err != nil {
		t.Fatal(err)
	}
	if watch != "-19.0" { // 3 − 22 at i == 2
		t.Fatalf("watch column[i] - mean: %q", watch)
	}
	frames, err := sess.Stack()
	if err != nil || len(frames) == 0 || frames[0].FuncName != "mean_deviation" {
		t.Fatalf("stack: %+v %v", frames, err)
	}
	src := sess.Source()
	if len(src) < 8 || !strings.Contains(src[7], "distance +=") {
		t.Fatalf("source around breakpoint: %q", src)
	}
	bps := sess.Breakpoints()
	if len(bps) != 1 || bps[0].Line != 8 || bps[0].Condition != "distance < -40" {
		t.Fatalf("breakpoints: %+v", bps)
	}

	// Step once, then clear the breakpoint and run to completion.
	ev, err = sess.StepOver()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Terminal || ev.Reason != debug.ReasonStep {
		t.Fatalf("step: %+v", ev)
	}
	if err := sess.ClearBreakpoint(8); err != nil {
		t.Fatal(err)
	}
	ev, err = sess.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Terminal || ev.Err != nil {
		t.Fatalf("terminal: %+v", ev)
	}
	if sess.Status() != "SELECT 1" {
		t.Fatalf("debug query status: %q", sess.Status())
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// Non-debug v2 traffic through the client's pool is unaffected.
	if res, err := client.Query(ctx, "SELECT mean_deviation(i) FROM numbers"); err != nil || res.Table.NumRows() != 1 {
		t.Fatalf("pool query after debug: %v", err)
	}
	// And the v1 session still works.
	if msg, _, err := v1.Query(ctx, "SELECT i FROM numbers"); err != nil || msg != "SELECT 5" {
		t.Fatalf("v1 post-debug query: %q %v", msg, err)
	}
}

// TestRemoteDebugStopOnEntry covers the stop-on-entry launch and pause /
// kill controls of the remote session.
func TestRemoteDebugStopOnEntry(t *testing.T) {
	params, _ := startServer(t,
		`CREATE TABLE numbers (i INTEGER)`,
		`INSERT INTO numbers VALUES (1), (2), (3)`,
		buggyMeanDeviation,
	)
	settings := DefaultSettings()
	settings.Connection = params
	settings.DebugQuery = `SELECT mean_deviation(i) FROM numbers`
	client, err := Open(ctx, settings, WithFS(core.NewMemFS(nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	sess, err := client.NewRemoteDebugSession(ctx, "mean_deviation", true)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ev, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Reason != debug.ReasonEntry {
		t.Fatalf("entry stop: %+v", ev)
	}
	// Kill from the paused state: terminal, and the query fails as killed.
	ev, err = sess.Kill()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Terminal || ev.Err == nil || !strings.Contains(ev.Err.Error(), "killed") {
		t.Fatalf("kill: %+v", ev)
	}
}

// TestRemoteDebugNoDebugQuery verifies construction fails without the
// settings' debug query.
func TestRemoteDebugNoDebugQuery(t *testing.T) {
	params, _ := startServer(t, buggyMeanDeviation)
	settings := DefaultSettings()
	settings.Connection = params
	client, err := Open(ctx, settings, WithFS(core.NewMemFS(nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.NewRemoteDebugSession(ctx, "mean_deviation", false); err == nil {
		t.Fatal("expected an error without a debug query")
	}
}
