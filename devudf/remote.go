package devudf

import (
	"context"
	"sort"

	"repro/internal/core"
	"repro/internal/debug"
	"repro/internal/wire"
)

// RemoteDebugSession debugs a UDF executing *inside* the database server —
// the paper's missing capability ("the RDBMS must be in control of the code
// flow while the UDF is being executed", §1) delivered over the wire: the
// settings' debug query runs on the server, the engine attaches the trace
// hook when it invokes the target UDF, and breakpoint/step/inspect commands
// travel the v2 connection's DAP-style debug sub-protocol with stop events
// pushed back asynchronously.
//
// The API mirrors DebugSession, with errors surfaced (the debugger is now
// on the other side of a network). A RemoteDebugSession owns one pooled
// connection exclusively; Close releases it. Control methods are
// synchronous and single-goroutine, like DebugSession's; Pause is safe from
// any goroutine.
type RemoteDebugSession struct {
	ctx  context.Context
	dc   *wire.DebugConn
	pool *wire.Pool
	wc   *wire.Client

	query       string
	udf         string
	stopOnEntry bool

	bps      map[int]string
	launched bool
	source   []string
	// lastStatus is the debug query's status message after termination.
	lastStatus string
}

// NewRemoteDebugSession prepares (but does not launch) a remote debug
// session: the settings' debug query will execute inside the server with
// the debugger attached to udfName's first invocation. The UDF does not
// need to be imported locally — it is debugged where it lives.
func (c *Client) NewRemoteDebugSession(ctx context.Context, udfName string, stopOnEntry bool) (*RemoteDebugSession, error) {
	if ctx == nil {
		ctx = context.Background() //ctxflow:edge nil-ctx fallback of the exported debug API
	}
	if c.Settings.DebugQuery == "" {
		return nil, core.Errorf(core.KindConstraint,
			"no debug query configured in settings (the SQL query which executes the to-be-debugged UDF)")
	}
	wc, err := c.pool.Get(ctx)
	if err != nil {
		return nil, err
	}
	dc, err := wc.Debug()
	if err != nil {
		c.pool.Put(wc)
		return nil, err
	}
	return &RemoteDebugSession{
		ctx:         ctx,
		dc:          dc,
		pool:        c.pool,
		wc:          wc,
		query:       c.Settings.DebugQuery,
		udf:         udfName,
		stopOnEntry: stopOnEntry,
		bps:         map[int]string{},
	}, nil
}

// SetBreakpoint sets (or replaces) a breakpoint; live once launched.
func (s *RemoteDebugSession) SetBreakpoint(line int, condition string) error {
	s.bps[line] = condition
	if !s.launched {
		return nil
	}
	return s.pushBreakpoints()
}

// ClearBreakpoint removes a breakpoint.
func (s *RemoteDebugSession) ClearBreakpoint(line int) error {
	delete(s.bps, line)
	if !s.launched {
		return nil
	}
	return s.pushBreakpoints()
}

// Breakpoints lists the session's breakpoints sorted by line.
func (s *RemoteDebugSession) Breakpoints() []debug.Breakpoint {
	out := make([]debug.Breakpoint, 0, len(s.bps))
	for line, cond := range s.bps {
		out = append(out, debug.Breakpoint{Line: line, Condition: cond})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

func (s *RemoteDebugSession) breakpointList() []wire.DebugBreakpoint {
	out := make([]wire.DebugBreakpoint, 0, len(s.bps))
	for line, cond := range s.bps {
		out = append(out, wire.DebugBreakpoint{Line: line, Condition: cond})
	}
	return out
}

func (s *RemoteDebugSession) pushBreakpoints() error {
	_, err := s.dc.RoundTrip(s.ctx, wire.DebugRequest{
		Command:     wire.DebugCmdSetBreakpoints,
		Breakpoints: s.breakpointList(),
	})
	return err
}

// Start launches the debug query on the server and returns the first stop
// event: the entry pause when stop-on-entry, otherwise the first breakpoint
// hit / completion.
func (s *RemoteDebugSession) Start() (debug.Event, error) {
	if s.launched {
		return debug.Event{}, core.Errorf(core.KindConstraint, "session already started")
	}
	_, err := s.dc.RoundTrip(s.ctx, wire.DebugRequest{
		Command:     wire.DebugCmdLaunch,
		Query:       s.query,
		UDF:         s.udf,
		StopOnEntry: s.stopOnEntry,
		Breakpoints: s.breakpointList(),
	})
	if err != nil {
		return debug.Event{}, err
	}
	s.launched = true
	return s.waitStop()
}

// waitStop blocks until the next stopped or terminated event.
func (s *RemoteDebugSession) waitStop() (debug.Event, error) {
	ev, err := s.dc.WaitEvent(s.ctx)
	if err != nil {
		return debug.Event{}, err
	}
	if ev.Kind == wire.DebugEventTerminated {
		s.lastStatus = ev.Msg
	}
	return ev.Event(), nil
}

// resume sends one resume command and waits for the resulting stop event.
func (s *RemoteDebugSession) resume(cmd string) (debug.Event, error) {
	if _, err := s.dc.RoundTrip(s.ctx, wire.DebugRequest{Command: cmd}); err != nil {
		return debug.Event{}, err
	}
	return s.waitStop()
}

// Continue resumes until the next breakpoint, pause request or completion.
func (s *RemoteDebugSession) Continue() (debug.Event, error) { return s.resume(wire.DebugCmdContinue) }

// StepOver resumes until the next line at the same or a shallower depth.
func (s *RemoteDebugSession) StepOver() (debug.Event, error) { return s.resume(wire.DebugCmdStepOver) }

// StepInto resumes until the next line anywhere (entering calls).
func (s *RemoteDebugSession) StepInto() (debug.Event, error) { return s.resume(wire.DebugCmdStepInto) }

// StepOut resumes until control returns to the caller.
func (s *RemoteDebugSession) StepOut() (debug.Event, error) { return s.resume(wire.DebugCmdStepOut) }

// Kill aborts the debuggee and returns the terminal event.
func (s *RemoteDebugSession) Kill() (debug.Event, error) { return s.resume(wire.DebugCmdKill) }

// Pause asks the running debuggee to stop at its next line. Unlike the
// other controls it is asynchronous: the stop event materializes from the
// in-flight (or next) control call.
func (s *RemoteDebugSession) Pause() error {
	_, err := s.dc.RoundTrip(s.ctx, wire.DebugRequest{Command: wire.DebugCmdPause})
	return err
}

// Eval evaluates a watch expression in the paused frame; values come back
// as their repr.
func (s *RemoteDebugSession) Eval(expr string) (string, error) {
	rep, err := s.dc.RoundTrip(s.ctx, wire.DebugRequest{Command: wire.DebugCmdEval, Expr: expr})
	if err != nil {
		return "", err
	}
	return rep.Value, nil
}

// Locals returns the paused frame's local variables as repr strings.
func (s *RemoteDebugSession) Locals() (map[string]string, error) {
	rep, err := s.dc.RoundTrip(s.ctx, wire.DebugRequest{Command: wire.DebugCmdLocals})
	if err != nil {
		return nil, err
	}
	return rep.Vars, nil
}

// GlobalVars returns the module-level variables as repr strings.
func (s *RemoteDebugSession) GlobalVars() (map[string]string, error) {
	rep, err := s.dc.RoundTrip(s.ctx, wire.DebugRequest{Command: wire.DebugCmdGlobals})
	if err != nil {
		return nil, err
	}
	return rep.Vars, nil
}

// Stack returns the call stack, innermost frame first.
func (s *RemoteDebugSession) Stack() ([]debug.FrameInfo, error) {
	rep, err := s.dc.RoundTrip(s.ctx, wire.DebugRequest{Command: wire.DebugCmdStack})
	if err != nil {
		return nil, err
	}
	frames := make([]debug.FrameInfo, len(rep.Frames))
	for i, f := range rep.Frames {
		frames[i] = debug.FrameInfo{FuncName: f.Func, Line: f.Line, Depth: f.Depth}
	}
	return frames, nil
}

// Source returns the server-side wrapper module's source lines, fetched
// once the debuggee is attached (nil before the first stop).
func (s *RemoteDebugSession) Source() []string {
	if s.source != nil {
		return s.source
	}
	rep, err := s.dc.RoundTrip(s.ctx, wire.DebugRequest{Command: wire.DebugCmdSource})
	if err != nil {
		return nil
	}
	s.source = rep.Source
	return s.source
}

// Status returns the debug query's status message after the terminated
// event ("SELECT 1", ...).
func (s *RemoteDebugSession) Status() string { return s.lastStatus }

// Query runs SQL on the debug connection itself — the demux interleaves
// its response with any debug events in flight. Note that while the
// debuggee is paused it holds the engine's statement lock, so queries
// issued here block until the debuggee resumes; use a separate pooled
// connection for concurrent traffic.
func (s *RemoteDebugSession) Query(ctx context.Context, sql string) (string, error) {
	msg, _, err := s.dc.Query(ctx, sql)
	return msg, err
}

// Close kills any active debuggee, tears down the debug connection and
// releases its pool slot. Safe to call more than once.
func (s *RemoteDebugSession) Close() error {
	if s.dc == nil {
		return nil
	}
	err := s.dc.Close()
	s.dc = nil
	// The connection carried demuxed debug state and is poisoned; Put
	// retires it and frees the slot for a fresh dial.
	s.pool.Put(s.wc)
	return err
}
