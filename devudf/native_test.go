package devudf

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/script"
	"repro/internal/udfrt/gort"
)

// registerDoubleAll installs the shared native implementation used by the
// tests in this file and cleans it up afterwards.
func registerDoubleAll(t *testing.T) {
	t.Helper()
	if err := RegisterGoUDF("double_all", func(x []int64) []int64 {
		out := make([]int64, len(x))
		for i, v := range x {
			out[i] = v * 2
		}
		return out
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gort.Unregister("double_all") })
}

// TestNativeUDFWorkflow drives the devUDF loop over a LANGUAGE GO UDF:
// list shows it (not debuggable), import writes the stub, extract ships the
// inputs, RunLocal executes the locally registered implementation, and
// export round-trips the symbol back to the server.
func TestNativeUDFWorkflow(t *testing.T) {
	params, db := startServer(t,
		`CREATE TABLE nums (i INTEGER)`,
		`INSERT INTO nums VALUES (1), (2), (3)`,
	)
	registerDoubleAll(t)
	if err := db.RegisterGoUDF("double_all", func(x []int64) []int64 {
		out := make([]int64, len(x))
		for i, v := range x {
			out[i] = v * 2
		}
		return out
	}); err != nil {
		t.Fatal(err)
	}

	settings := DefaultSettings()
	settings.Connection = params
	settings.DebugQuery = `SELECT double_all(i) FROM nums`
	c, err := Open(ctx, settings, WithFS(core.NewMemFS(nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	infos, err := c.ListServerUDFs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var info *UDFInfo
	for i := range infos {
		if infos[i].Name == "double_all" {
			info = &infos[i]
		}
	}
	if info == nil || info.Language != "GO" {
		t.Fatalf("server listing: %+v", infos)
	}
	if LanguageDebuggable(info.Language) {
		t.Fatal("GO must not be debuggable")
	}

	imported, err := c.ImportUDFs(ctx, "double_all")
	if err != nil || len(imported) != 1 {
		t.Fatalf("import: %v %v", imported, err)
	}
	src, err := c.Project.LoadUDFSource("double_all")
	if err != nil || !strings.Contains(src, "native GO UDF") {
		t.Fatalf("stub: %q %v", src, err)
	}

	if _, err := c.ExtractInputs(ctx, "double_all"); err != nil {
		t.Fatal(err)
	}
	res, err := c.RunLocal(ctx, "double_all")
	if err != nil {
		t.Fatal(err)
	}
	list, ok := res.Value.(*script.ListVal)
	if !ok || len(list.Items) != 3 || list.Items[2] != script.IntVal(6) {
		t.Fatalf("RunLocal: %v", res.Value)
	}

	// local debugging is refused with a pointed error
	if _, err := c.NewDebugSession(ctx, "double_all", true); err == nil ||
		!strings.Contains(err.Error(), "not debuggable") {
		t.Fatalf("debug of a native UDF must be refused, got %v", err)
	}

	// remote debugging terminates immediately with the same explanation
	// (the server-side check runs on the launch goroutine, off the frame
	// loop)
	rsess, err := c.NewRemoteDebugSession(ctx, "double_all", true)
	if err != nil {
		t.Fatal(err)
	}
	defer rsess.Close()
	ev, err := rsess.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Terminal || ev.Err == nil || !strings.Contains(ev.Err.Error(), "not debuggable") {
		t.Fatalf("remote debug of a native UDF must terminate with the refusal, got %+v", ev)
	}

	// export re-creates the function on the server; the query still works
	if err := c.ExportUDFs(ctx, "double_all"); err != nil {
		t.Fatal(err)
	}
	qres, err := c.Query(ctx, `SELECT double_all(i) AS d FROM nums`)
	if err != nil {
		t.Fatal(err)
	}
	col, err := qres.Table.Column("d")
	if err != nil || col.Ints[0] != 2 {
		t.Fatalf("after export: %v %v", qres.Table, err)
	}
}

// TestRunLocalNativeUnregistered: running a native UDF whose implementation
// is not registered in this process gives an actionable error.
func TestRunLocalNativeUnregistered(t *testing.T) {
	params, db := startServer(t,
		`CREATE TABLE nums (i INTEGER)`,
		`INSERT INTO nums VALUES (4)`,
	)
	if err := db.RegisterGoUDF("srv_only", func(x []int64) []int64 { return x }); err != nil {
		t.Fatal(err)
	}
	settings := DefaultSettings()
	settings.Connection = params
	settings.DebugQuery = `SELECT srv_only(i) FROM nums`
	c, err := Open(ctx, settings, WithFS(core.NewMemFS(nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ImportUDFs(ctx, "srv_only"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExtractInputs(ctx, "srv_only"); err != nil {
		t.Fatal(err)
	}
	gort.Unregister("srv_only") // the server process has it; this one no longer does
	if _, err := c.RunLocal(ctx, "srv_only"); err == nil ||
		!strings.Contains(err.Error(), "RegisterGoUDF") {
		t.Fatalf("unregistered native run must point at RegisterGoUDF, got %v", err)
	}
}
