package devudf

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/script"
	"repro/monetlite"
)

// buggyMeanDeviation is the paper's Listing 4 body (missing abs()).
const buggyMeanDeviation = `CREATE FUNCTION mean_deviation(column INTEGER)
RETURNS DOUBLE LANGUAGE PYTHON {
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += column[i] - mean
    deviation = distance / len(column)
    return deviation;
};`

const fixedBody = `mean = 0
for i in range(0, len(column)):
    mean += column[i]
mean = mean / len(column)
distance = 0
for i in range(0, len(column)):
    distance += abs(column[i] - mean)
deviation = distance / len(column)
return deviation`

// startServer boots an in-process server with the demo schema.
// ctx is the background context shared by the v2 API calls in these tests.
var ctx = context.Background()

func startServer(t *testing.T, setup ...string) (monetlite.ConnParams, *monetlite.DB) {
	t.Helper()
	db := monetlite.NewDB()
	db.FS = core.NewMemFS(nil)
	srv := monetlite.NewServer("demo", "monetdb", "monetdb", db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn := monetlite.Connect(db, "monetdb", "monetdb")
	for _, sql := range setup {
		if _, err := conn.Exec(sql); err != nil {
			t.Fatalf("setup %q: %v", sql[:min(40, len(sql))], err)
		}
	}
	host, port := splitAddr(addr)
	return monetlite.ConnParams{
		Host: host, Port: port, Database: "demo",
		User: "monetdb", Password: "monetdb",
	}, db
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func splitAddr(addr string) (string, int) {
	i := strings.LastIndexByte(addr, ':')
	port := 0
	for _, ch := range addr[i+1:] {
		port = port*10 + int(ch-'0')
	}
	return addr[:i], port
}

func newClient(t *testing.T, params monetlite.ConnParams, query string) *Client {
	t.Helper()
	settings := DefaultSettings()
	settings.Connection = params
	settings.DebugQuery = query
	c, err := Open(context.Background(), settings, WithFS(core.NewMemFS(nil)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSettingsPersistence(t *testing.T) {
	fs := core.NewMemFS(nil)
	s, err := LoadSettings(fs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Connection.Port != 50000 || s.ProjectDir != "udfproject" {
		t.Fatalf("defaults: %+v", s)
	}
	s.Connection.Host = "db.example.com"
	s.DebugQuery = "SELECT mean_deviation(i) FROM numbers"
	s.Transfer.Compress = true
	s.Transfer.SampleSize = 500
	if err := SaveSettings(fs, s); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSettings(fs)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip: %+v vs %+v", back, s)
	}
}

func TestListAndImport(t *testing.T) {
	params, _ := startServer(t,
		`CREATE TABLE numbers (i INTEGER)`,
		`INSERT INTO numbers VALUES (1), (2), (3), (4), (100)`,
		buggyMeanDeviation,
	)
	c := newClient(t, params, `SELECT mean_deviation(i) FROM numbers`)
	infos, err := c.ListServerUDFs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "mean_deviation" {
		t.Fatalf("infos: %+v", infos)
	}
	if len(infos[0].Params) != 1 || infos[0].Params[0].Type != "INTEGER" {
		t.Fatalf("params: %+v", infos[0].Params)
	}
	imported, err := c.ImportUDFs(ctx, "mean_deviation")
	if err != nil {
		t.Fatal(err)
	}
	if len(imported) != 1 {
		t.Fatalf("imported: %v", imported)
	}
	_, src, err := c.Project.LoadUDF("mean_deviation")
	if err != nil {
		t.Fatal(err)
	}
	for _, landmark := range []string{
		"import pickle",
		"def mean_deviation(column):",
		"input_parameters",
	} {
		if !strings.Contains(src, landmark) {
			t.Fatalf("generated script missing %q:\n%s", landmark, src)
		}
	}
	names, _ := c.Project.List()
	if len(names) != 1 {
		t.Fatalf("project list: %v", names)
	}
}

// TestFullScenarioA is the paper's Scenario A end to end: import the buggy
// mean_deviation, extract its input data, reproduce the wrong answer
// locally, find the bug with the debugger, fix the body, run locally to
// confirm, export, and verify the server now computes the right answer.
func TestFullScenarioA(t *testing.T) {
	params, _ := startServer(t,
		`CREATE TABLE numbers (i INTEGER)`,
		`INSERT INTO numbers VALUES (1), (2), (3), (4), (100)`,
		buggyMeanDeviation,
	)
	c := newClient(t, params, `SELECT mean_deviation(i) FROM numbers`)
	if _, err := c.ImportUDFs(ctx, "mean_deviation"); err != nil {
		t.Fatal(err)
	}

	// 1. extract the input data (full, uncompressed)
	info, err := c.ExtractInputs(ctx, "mean_deviation")
	if err != nil {
		t.Fatal(err)
	}
	if info.TotalRows != 5 || info.SampleRows != 5 {
		t.Fatalf("extract info: %+v", info)
	}

	// 2. reproduce the wrong answer locally
	res, err := c.RunLocal(ctx, "mean_deviation")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Value.Repr(), "0.0") && res.Value.Repr() != "0.0" {
		t.Fatalf("buggy local run should be ~0, got %s", res.Value.Repr())
	}

	// 3. debug: breakpoint in the accumulation loop, watch distance
	sess, err := c.NewDebugSession(ctx, "mean_deviation", false)
	if err != nil {
		t.Fatal(err)
	}
	// the accumulation line inside the generated script
	src, _ := c.Project.LoadUDFSource("mean_deviation")
	line := lineOf(src, "distance += column[i] - mean")
	if line == 0 {
		t.Fatalf("could not find buggy line in:\n%s", src)
	}
	sess.SetBreakpoint(line, "i == 4")
	ev := sess.Start()
	if ev.Reason != ReasonBreakpoint {
		t.Fatalf("stop: %+v", ev)
	}
	v, err := sess.Eval("distance")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v.Repr(), "-") {
		t.Fatalf("debugger should expose the negative accumulator, got %s", v.Repr())
	}
	if ev = sess.Continue(); !ev.Terminal {
		t.Fatalf("should run to completion: %+v", ev)
	}

	// 4. fix the body in the project file
	if err := c.EditBody("mean_deviation", fixedBody); err != nil {
		t.Fatal(err)
	}

	// 5. confirm locally on the already-extracted data — no server round trip
	res, err = c.RunLocal(ctx, "mean_deviation")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Repr() != "31.2" {
		t.Fatalf("fixed local run: %s", res.Value.Repr())
	}

	// 6. export back and verify on the server
	if err := c.ExportUDFs(ctx, "mean_deviation"); err != nil {
		t.Fatal(err)
	}
	qres, err := c.Query(ctx, `SELECT mean_deviation(i) AS md FROM numbers`)
	if err != nil {
		t.Fatal(err)
	}
	if qres.Table.Cols[0].Flts[0] != 31.2 {
		t.Fatalf("server after export: %v", qres.Table.Cols[0].Flts)
	}
}

func lineOf(src, needle string) int {
	for i, ln := range strings.Split(src, "\n") {
		if strings.Contains(ln, needle) {
			return i + 1
		}
	}
	return 0
}

func TestExtractWithSamplingCompressionEncryption(t *testing.T) {
	setup := []string{`CREATE TABLE numbers (i INTEGER)`}
	var values []string
	for i := 0; i < 1000; i++ {
		values = append(values, "("+itoa(i)+")")
	}
	setup = append(setup, "INSERT INTO numbers VALUES "+strings.Join(values, ", "))
	setup = append(setup, buggyMeanDeviation)
	params, _ := startServer(t, setup...)

	c := newClient(t, params, `SELECT mean_deviation(i) FROM numbers`)
	c.Settings.Transfer.Compress = true
	c.Settings.Transfer.Encrypt = true
	c.Settings.Transfer.SampleSize = 100
	c.Settings.Transfer.Seed = 7
	if _, err := c.ImportUDFs(ctx, "mean_deviation"); err != nil {
		t.Fatal(err)
	}
	info, err := c.ExtractInputs(ctx, "mean_deviation")
	if err != nil {
		t.Fatal(err)
	}
	if info.TotalRows != 1000 || info.SampleRows != 100 {
		t.Fatalf("sampling: %+v", info)
	}
	if !info.Compressed || !info.Encrypted {
		t.Fatalf("flags: %+v", info)
	}
	// the sampled input is runnable
	res, err := c.RunLocal(ctx, "mean_deviation")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value == nil {
		t.Fatal("no result")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestNestedUDFLocalDebug reproduces §2.3 client-side: find_best_classifier
// is imported (train_rnforest follows transitively through its loopback
// query); running it locally executes train_rnforest locally too, on input
// data extracted per call from the server.
func TestNestedUDFLocalDebug(t *testing.T) {
	params, _ := startServer(t,
		`CREATE TABLE trainingset (data DOUBLE, labels INTEGER)`,
		`INSERT INTO trainingset VALUES
			(0.1, 0), (0.2, 0), (0.15, 0), (9.8, 0), (10.1, 0), (10.0, 0),
			(5.0, 1), (5.1, 1), (4.9, 1), (5.05, 1)`,
		`CREATE TABLE testingset (data DOUBLE, labels INTEGER)`,
		`INSERT INTO testingset VALUES
			(0.12, 0), (10.05, 0), (5.02, 1), (4.95, 1), (0.18, 0)`,
		`CREATE FUNCTION train_rnforest(data DOUBLE, labels INTEGER, n_estimators INTEGER)
RETURNS TABLE(clf BLOB, estimators INTEGER) LANGUAGE PYTHON {
    import pickle
    from sklearn.ensemble import RandomForestClassifier
    clf = RandomForestClassifier(n_estimators)
    clf.fit(data, labels)
    return {'clf': pickle.dumps(clf), 'estimators': n_estimators}
};`,
		`CREATE FUNCTION find_best_classifier(esttest INTEGER)
RETURNS TABLE(clf BLOB, n_estimators INTEGER) LANGUAGE PYTHON {
    import pickle
    import numpy
    (tdata, tlabels) = _conn.execute("""SELECT data, labels FROM testingset""")
    best_classifier = None
    best_classifier_answers = -1
    best_estimator = -1
    for estimator in range(1, esttest + 1):
        res = _conn.execute("""
            SELECT * FROM train_rnforest((SELECT data, labels FROM trainingset), %d)
        """ % estimator)
        classifier = pickle.loads(res['clf'])
        predictions = classifier.predict(tdata)
        correct_pred = []
        for i in range(0, len(predictions)):
            correct_pred.append(predictions[i] == tlabels[i])
        correct_ans = numpy.sum(correct_pred)
        if correct_ans > best_classifier_answers:
            best_classifier = classifier
            best_classifier_answers = correct_ans
            best_estimator = estimator
    return {'clf': pickle.dumps(best_classifier), 'n_estimators': best_estimator}
};`,
	)
	c := newClient(t, params, `SELECT * FROM find_best_classifier(3)`)
	imported, err := c.ImportUDFs(ctx, "find_best_classifier")
	if err != nil {
		t.Fatal(err)
	}
	// nested import: train_rnforest must have come along
	if len(imported) != 2 {
		t.Fatalf("imported: %v (nested UDF should be pulled in)", imported)
	}
	if !c.Project.Has("train_rnforest") {
		t.Fatal("train_rnforest missing from project")
	}
	if _, err := c.ExtractInputs(ctx, "find_best_classifier"); err != nil {
		t.Fatal(err)
	}
	res, err := c.RunLocal(ctx, "find_best_classifier")
	if err != nil {
		t.Fatal(err)
	}
	d, ok := res.Value.(*script.DictVal)
	if !ok {
		t.Fatalf("result: %s", res.Value.Repr())
	}
	best, _ := d.GetStr("n_estimators")
	if n, ok := script.AsInt(best); !ok || n < 2 {
		t.Fatalf("best n_estimators: %v", best)
	}
}

func TestExportRequiresImport(t *testing.T) {
	params, _ := startServer(t)
	c := newClient(t, params, "")
	if err := c.ExportUDFs(ctx, "ghost"); err == nil {
		t.Fatal("exporting a non-imported UDF should fail")
	}
	if _, err := c.ExtractInputs(ctx, "ghost"); err == nil {
		t.Fatal("extracting for a non-imported UDF should fail")
	}
	if _, err := c.RunLocal(ctx, "ghost"); err == nil {
		t.Fatal("running a non-imported UDF should fail")
	}
}

func TestExtractRequiresDebugQuery(t *testing.T) {
	params, _ := startServer(t, buggyMeanDeviation)
	c := newClient(t, params, "")
	if _, err := c.ImportUDFs(ctx, "mean_deviation"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExtractInputs(ctx, "mean_deviation"); err == nil {
		t.Fatal("missing debug query should fail with a helpful error")
	}
}

func TestImportAllAndVCS(t *testing.T) {
	params, _ := startServer(t,
		`CREATE FUNCTION a(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return x }`,
		`CREATE FUNCTION b(y DOUBLE) RETURNS DOUBLE LANGUAGE PYTHON { return y }`,
	)
	c := newClient(t, params, "")
	imported, err := c.ImportAll(ctx)
	if err != nil || len(imported) != 2 {
		t.Fatalf("import all: %v %v", imported, err)
	}
	if _, err := c.Project.InitVCS(); err != nil {
		t.Fatal(err)
	}
	h1, err := c.Project.Commit("dev", "import from server")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EditBody("a", "return x * 2"); err != nil {
		t.Fatal(err)
	}
	h2, err := c.Project.Commit("dev", "double it")
	if err != nil {
		t.Fatal(err)
	}
	repo, _ := c.Project.OpenVCS()
	diff, err := repo.Diff(h1, h2)
	if err != nil || len(diff) != 1 || diff[0].Path != "a.py" {
		t.Fatalf("diff: %+v %v", diff, err)
	}
	log, _ := repo.Log()
	if len(log) != 2 || log[0].Message != "double it" {
		t.Fatalf("log: %+v", log)
	}
}

// TestWriteLocalInputsQuickstart exercises the serverless input path.
func TestWriteLocalInputsQuickstart(t *testing.T) {
	params, _ := startServer(t, buggyMeanDeviation)
	c := newClient(t, params, "")
	if _, err := c.ImportUDFs(ctx, "mean_deviation"); err != nil {
		t.Fatal(err)
	}
	err := c.WriteLocalInputs("mean_deviation", map[string]script.Value{
		"column": script.NewList(script.IntVal(1), script.IntVal(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunLocal(ctx, "mean_deviation")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Repr() != "0.0" { // buggy body cancels out
		t.Fatalf("run: %s", res.Value.Repr())
	}
	// missing param is rejected
	if err := c.WriteLocalInputs("mean_deviation", nil); err == nil {
		t.Fatal("missing params should fail")
	}
}

func TestDescribeServerUDF(t *testing.T) {
	params, _ := startServer(t, buggyMeanDeviation)
	c := newClient(t, params, "")
	desc, err := c.DescribeServerUDF(ctx, "mean_deviation")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "name: mean_deviation") ||
		!strings.Contains(desc, "column INTEGER") ||
		!strings.Contains(desc, "distance += column[i] - mean") {
		t.Fatalf("describe:\n%s", desc)
	}
	if _, err := c.DescribeServerUDF(ctx, "nope"); err == nil {
		t.Fatal("unknown UDF should fail")
	}
}
