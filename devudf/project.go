package devudf

import (
	"encoding/json"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/vcs"
)

// ParamInfo is one named, SQL-typed parameter or result column.
type ParamInfo struct {
	Name string `json:"name"`
	Type string `json:"type"` // SQL type name (INTEGER, DOUBLE, ...)
}

// UDFInfo is the signature metadata of one UDF. The project keeps it in a
// sidecar file because the .py file carries only names, and exporting back
// to CREATE FUNCTION needs the declared SQL types.
type UDFInfo struct {
	Name     string      `json:"name"`
	Language string      `json:"language"`
	IsTable  bool        `json:"is_table"`
	Params   []ParamInfo `json:"params"`
	Returns  []ParamInfo `json:"returns"`
}

// ParamNames lists the parameter names in order.
func (u UDFInfo) ParamNames() []string {
	out := make([]string, len(u.Params))
	for i, p := range u.Params {
		out[i] = p.Name
	}
	return out
}

func toSchema(ps []ParamInfo) (storage.Schema, error) {
	var s storage.Schema
	for _, p := range ps {
		t, err := storage.ParseType(p.Type)
		if err != nil {
			return nil, err
		}
		s = append(s, storage.ColumnDef{Name: p.Name, Type: t})
	}
	return s, nil
}

func fromSchema(s storage.Schema) []ParamInfo {
	out := make([]ParamInfo, len(s))
	for i, c := range s {
		out[i] = ParamInfo{Name: c.Name, Type: c.Type.String()}
	}
	return out
}

// Project is the IDE-style workspace holding one .py file per imported UDF
// plus signature metadata, all inside a core.FS so tests and examples can
// run it in memory.
type Project struct {
	fs  core.FS
	dir string
}

// OpenProject opens (or conceptually creates) a project rooted at dir.
func OpenProject(fs core.FS, dir string) *Project {
	if dir == "" {
		dir = "udfproject"
	}
	return &Project{fs: fs, dir: dir}
}

// Dir returns the project root directory.
func (p *Project) Dir() string { return p.dir }

// FS returns the backing file system.
func (p *Project) FS() core.FS { return p.fs }

func (p *Project) path(parts ...string) string {
	segs := append([]string{p.dir}, parts...)
	return strings.Join(segs, "/")
}

// ScriptPath returns the project-relative path of a UDF's script file.
func (p *Project) ScriptPath(name string) string { return p.path(name + ".py") }

// InputPath returns the project-relative path of a UDF's extracted input
// blob (the input.bin of paper Listing 2).
func (p *Project) InputPath(name string) string { return p.path(name + ".input.bin") }

const metaFile = ".devudf/meta.json"

// readMeta loads the metadata sidecar (empty map when absent).
func (p *Project) readMeta() (map[string]UDFInfo, error) {
	data, err := p.fs.ReadFile(p.path(metaFile))
	if err != nil {
		return map[string]UDFInfo{}, nil
	}
	var m map[string]UDFInfo
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, core.Wrapf(core.KindIO, err, "parse project metadata: %v", err)
	}
	return m, nil
}

func (p *Project) writeMeta(m map[string]UDFInfo) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return core.Wrapf(core.KindIO, err, "encode project metadata: %v", err)
	}
	return p.fs.WriteFile(p.path(metaFile), data)
}

// SaveUDF writes a UDF's script file and records its signature.
func (p *Project) SaveUDF(info UDFInfo, source string) error {
	m, err := p.readMeta()
	if err != nil {
		return err
	}
	m[strings.ToLower(info.Name)] = info
	if err := p.writeMeta(m); err != nil {
		return err
	}
	return p.fs.WriteFile(p.ScriptPath(info.Name), []byte(source))
}

// LoadUDF reads a UDF's script source and signature.
func (p *Project) LoadUDF(name string) (UDFInfo, string, error) {
	m, err := p.readMeta()
	if err != nil {
		return UDFInfo{}, "", err
	}
	info, ok := m[strings.ToLower(name)]
	if !ok {
		return UDFInfo{}, "", core.Errorf(core.KindName,
			"UDF %q is not in the project (import it first)", name)
	}
	src, err := p.fs.ReadFile(p.ScriptPath(info.Name))
	if err != nil {
		return UDFInfo{}, "", err
	}
	return info, string(src), nil
}

// LoadUDFSource reads just the script source of an imported UDF.
func (p *Project) LoadUDFSource(name string) (string, error) {
	_, src, err := p.LoadUDF(name)
	return src, err
}

// Has reports whether the project contains a UDF.
func (p *Project) Has(name string) bool {
	m, err := p.readMeta()
	if err != nil {
		return false
	}
	_, ok := m[strings.ToLower(name)]
	return ok
}

// List returns the imported UDF names, sorted.
func (p *Project) List() ([]string, error) {
	m, err := p.readMeta()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(m))
	for _, info := range m {
		names = append(names, info.Name)
	}
	sort.Strings(names)
	return names, nil
}

// Files snapshots all project script files (for VCS commits).
func (p *Project) Files() (map[string][]byte, error) {
	names, err := p.List()
	if err != nil {
		return nil, err
	}
	out := map[string][]byte{}
	for _, n := range names {
		b, err := p.fs.ReadFile(p.ScriptPath(n))
		if err != nil {
			return nil, err
		}
		out[n+".py"] = b
	}
	return out, nil
}

// InitVCS initializes version control over the project (paper §1: devUDF
// restores VCS workflows by materializing UDFs as files).
func (p *Project) InitVCS() (*vcs.Repo, error) { return vcs.Init(p.fs, p.dir) }

// OpenVCS opens the project's repository.
func (p *Project) OpenVCS() (*vcs.Repo, error) { return vcs.Open(p.fs, p.dir) }

// Commit snapshots all UDF files into the project repository.
func (p *Project) Commit(author, message string) (string, error) {
	repo, err := p.OpenVCS()
	if err != nil {
		return "", err
	}
	files, err := p.Files()
	if err != nil {
		return "", err
	}
	return repo.Commit(author, message, files)
}
