// Package devudf is this reproduction's implementation of the paper's
// primary contribution: the devUDF plugin (EDBT 2019), which lets a
// developer import MonetDB/Python UDFs out of a running database server
// into an IDE-style project, edit and version them as ordinary files, debug
// them locally with a real interactive debugger on locally-extracted input
// data (optionally sampled, compressed and encrypted in transit), and
// export the edited bodies back to the server — including nested UDFs
// reached through loopback queries.
//
// The CLI in cmd/devudf drives this package with the same verbs the
// paper's figures show (settings / import / export / run / debug); the
// examples/ directory walks the paper's demo scenarios end to end.
package devudf

import (
	"encoding/json"

	"repro/internal/core"
	"repro/internal/debug"
	"repro/internal/transfer"
	"repro/internal/udfrt"
	"repro/internal/udfrt/gort"
	"repro/internal/wire"
)

// RegisterGoUDF registers a typed Go function in this process's native UDF
// table so that Client.RunLocal can execute imported LANGUAGE GO UDFs on
// their extracted inputs — the client-side mirror of the server embedder's
// DB.RegisterGoUDF. Supported signatures take column slices ([]int64,
// []float64, []string, []bool, [][]byte) or scalars of those element types
// and return one value per result column plus an optional trailing error.
// Argument slices are read-only (the engine may pass its own storage
// vectors); allocate fresh slices for results:
//
//	devudf.RegisterGoUDF("haversine", func(lat1, lon1, lat2, lon2 []float64) []float64 { ... })
func RegisterGoUDF(name string, fn any) error { return gort.Register(name, fn) }

// LanguageDebuggable reports whether the runtime serving a CREATE FUNCTION
// LANGUAGE clause supports interactive debugging ("" means PYTHON; false
// for unknown languages). The CLI uses it to annotate listings before a
// user reaches for the debug verb.
func LanguageDebuggable(language string) bool { return udfrt.LanguageDebuggable(language) }

// ConnParams are the five connection parameters of the settings window
// (paper Fig. 2): host, port, database, user, password.
type ConnParams = wire.ConnParams

// TransferOptions are the data-transfer options of §2.1–2.2: Compress,
// Encrypt (keyed by the connection password) and SampleSize.
type TransferOptions = transfer.Options

// DebugSession is an interactive local debug session over a UDF script:
// breakpoints (optionally conditional), step over/into/out, pause, stack
// and variable inspection, watch expressions.
type DebugSession = debug.Session

// DebugEvent is a debugger stop event.
type DebugEvent = debug.Event

// Debug stop reasons.
const (
	ReasonEntry      = debug.ReasonEntry
	ReasonBreakpoint = debug.ReasonBreakpoint
	ReasonStep       = debug.ReasonStep
	ReasonDone       = debug.ReasonDone
	ReasonException  = debug.ReasonException
)

// Settings is the plugin configuration the settings window edits
// (paper Fig. 2): connection parameters, the SQL query that invokes the
// to-be-debugged UDF, and the data-transfer options.
type Settings struct {
	Connection ConnParams      `json:"connection"`
	DebugQuery string          `json:"debug_query"`
	Transfer   TransferOptions `json:"transfer"`
	// ProjectDir is where imported UDF files live; defaults to "udfproject".
	ProjectDir string `json:"project_dir"`
}

// settingsFile is where Save/Load persist the settings inside the project
// file system.
const settingsFile = "devudf.json"

// DefaultSettings mirrors the defaults the settings window opens with.
func DefaultSettings() Settings {
	return Settings{
		Connection: ConnParams{
			Host:     "127.0.0.1",
			Port:     50000,
			Database: "demo",
			User:     "monetdb",
			Password: "monetdb",
		},
		ProjectDir: "udfproject",
	}
}

// clientConfig collects the Open options.
type clientConfig struct {
	fs       core.FS
	poolSize int
	dialOpts []wire.DialOption
}

// Option customizes Open.
type Option func(*clientConfig)

// WithFS selects the file system the project workspace lives in. Default:
// the process file system (core.OSFS).
func WithFS(fs core.FS) Option {
	return func(c *clientConfig) { c.fs = fs }
}

// WithPoolSize bounds the client's connection pool (default 4).
func WithPoolSize(n int) Option {
	return func(c *clientConfig) { c.poolSize = n }
}

// WithDialOptions forwards wire-level dial options (timeouts, keepalive,
// logger, protocol version) to every pooled connection.
func WithDialOptions(opts ...wire.DialOption) Option {
	return func(c *clientConfig) { c.dialOpts = append(c.dialOpts, opts...) }
}

// SaveSettings persists settings as JSON in fs.
func SaveSettings(fs core.FS, s Settings) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return core.Wrapf(core.KindIO, err, "encode settings: %v", err)
	}
	return fs.WriteFile(settingsFile, data)
}

// LoadSettings reads settings from fs, returning defaults when no file
// exists yet. Any other read failure (permissions, IO) is surfaced rather
// than silently masked by defaults.
func LoadSettings(fs core.FS) (Settings, error) {
	data, err := fs.ReadFile(settingsFile)
	if err != nil {
		if core.IsNotExist(err) {
			return DefaultSettings(), nil
		}
		return Settings{}, core.Wrapf(core.KindIO, err, "read settings: %v", err)
	}
	var s Settings
	if err := json.Unmarshal(data, &s); err != nil {
		return Settings{}, core.Wrapf(core.KindIO, err, "parse settings: %v", err)
	}
	if s.ProjectDir == "" {
		s.ProjectDir = "udfproject"
	}
	return s, nil
}
