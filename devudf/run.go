package devudf

import (
	"bytes"
	"context"
	"strings"

	"repro/internal/core"
	"repro/internal/debug"
	"repro/internal/engine"
	"repro/internal/pickle"
	"repro/internal/script"
	"repro/internal/storage"
	"repro/internal/transform"
	"repro/internal/udfrt"
	"repro/internal/udfrt/pyrt"
)

// ExtractInfo summarizes one input extraction (§2.2): how much data the
// UDF's inputs hold, how much was actually shipped after sampling, and the
// payload size after compression/encryption.
type ExtractInfo struct {
	UDF          string
	TotalRows    int64
	SampleRows   int64
	PayloadBytes int
	Compressed   bool
	Encrypted    bool
}

// ExtractInputs rewrites the settings' debug query so the UDF call becomes
// a call to the server-side extract function, runs it, unpacks the payload
// with the connection password, and stores the UDF's input parameters as
// the project's input.bin (paper §2.2). The target UDF must already be
// imported.
func (c *Client) ExtractInputs(ctx context.Context, udfName string) (*ExtractInfo, error) {
	if c.Settings.DebugQuery == "" {
		return nil, core.Errorf(core.KindConstraint,
			"no debug query configured in settings (the SQL query which executes the to-be-debugged UDF)")
	}
	info, _, err := c.Project.LoadUDF(udfName)
	if err != nil {
		return nil, err
	}
	rewritten, err := transform.RewriteToExtract(c.Settings.DebugQuery, info.Name, c.Settings.Transfer)
	if err != nil {
		return nil, err
	}
	_, t, err := c.pool.Query(ctx, rewritten)
	if err != nil {
		return nil, err
	}
	if t == nil || t.NumRows() != 1 {
		return nil, core.Errorf(core.KindProtocol, "extract query returned no payload row")
	}
	payloadCol, err := t.Column("payload")
	if err != nil {
		return nil, err
	}
	packed := payloadCol.Blobs[0]
	_, params, total, sample, err := engine.DecodeExtractPayload(packed, c.Settings.Connection.Password)
	if err != nil {
		return nil, err
	}
	if err := pickle.DumpFile(c.Project.FS(), c.Project.InputPath(info.Name), params); err != nil {
		return nil, err
	}
	compressed, _ := t.Column("compressed")
	encrypted, _ := t.Column("encrypted")
	return &ExtractInfo{
		UDF:          info.Name,
		TotalRows:    total,
		SampleRows:   sample,
		PayloadBytes: len(packed),
		Compressed:   compressed.Bools[0],
		Encrypted:    encrypted.Bools[0],
	}, nil
}

// RunResult is the outcome of a local UDF run.
type RunResult struct {
	// Value is the UDF's return value.
	Value script.Value
	// Stdout captures print() output (the paper's print-debugging channel,
	// now visible locally).
	Stdout string
	// Steps counts interpreter statements executed.
	Steps int64
}

// RunLocal executes an imported UDF locally on its extracted inputs, routed
// by the UDF's language: PYTHON UDFs run their generated script (the
// Listing 2 flow — the prologue loads input.bin and calls the function),
// native UDFs dispatch through the udfrt runtime registry against the
// locally registered implementation. Run ExtractInputs (or
// WriteLocalInputs) first.
func (c *Client) RunLocal(ctx context.Context, udfName string) (*RunResult, error) {
	info, src, err := c.Project.LoadUDF(udfName)
	if err != nil {
		return nil, err
	}
	if languageOf(info) != pyrt.Name {
		return c.runLocalNative(info, src)
	}
	mod, err := script.Parse(info.Name+".py", src)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	in := script.NewInterp()
	in.FS = c.Project.FS()
	in.Stdout = &out
	globals := in.NewGlobals()
	globals.Set("_conn", c.localConn(ctx, in))
	if err := in.RunInEnv(mod, globals); err != nil {
		return &RunResult{Stdout: out.String(), Steps: in.Steps()}, err
	}
	result, _ := globals.Get("result")
	if result == nil {
		result = script.None
	}
	return &RunResult{Value: result, Stdout: out.String(), Steps: in.Steps()}, nil
}

// languageOf normalizes a project UDF's language (historic metadata without
// one means PYTHON).
func languageOf(info UDFInfo) string { return udfrt.Canonical(info.Language) }

// runLocalNative executes a non-interpreted UDF on its extracted inputs:
// rebuild the catalog definition from the project metadata, compile it
// through the runtime registry (the implementation must be registered in
// this process — see RegisterGoUDF), shape input.bin into a batch, call.
func (c *Client) runLocalNative(info UDFInfo, src string) (*RunResult, error) {
	rt, err := udfrt.Lookup(info.Language)
	if err != nil {
		return nil, err
	}
	params, err := toSchema(info.Params)
	if err != nil {
		return nil, err
	}
	returns, err := toSchema(info.Returns)
	if err != nil {
		return nil, err
	}
	if len(returns) == 0 {
		return nil, core.Errorf(core.KindConstraint, "UDF %s has no declared return type", info.Name)
	}
	def := &storage.FuncDef{
		Name: info.Name, Params: params, Returns: returns,
		Language: languageOf(info), Body: nativeSymbol(src), IsTable: info.IsTable,
	}
	call, err := rt.Compile(def)
	if err != nil {
		return nil, err
	}
	v, err := pickle.LoadFile(c.Project.FS(), c.Project.InputPath(info.Name))
	if err != nil {
		return nil, core.Wrapf(core.KindConstraint, err,
			"no extracted inputs for %s (run extract first): %v", info.Name, err)
	}
	inputs, ok := v.(*script.DictVal)
	if !ok {
		return nil, core.Errorf(core.KindProtocol, "input file for %s is not a parameter dict", info.Name)
	}
	cols := make([]*storage.Column, len(def.Params))
	isCol := make([]bool, len(def.Params))
	for i, p := range def.Params {
		pv, ok := inputs.GetStr(p.Name)
		if !ok {
			return nil, core.Errorf(core.KindConstraint, "extracted inputs are missing parameter %q", p.Name)
		}
		col, err := pyrt.ValueToColumn(pv, p.Name, p.Type)
		if err != nil {
			return nil, err
		}
		cols[i] = col
		switch pv.(type) {
		case *script.ListVal, *script.TupleVal:
			isCol[i] = true
		}
	}
	env := &udfrt.Env{FS: c.Project.FS()}
	out, err := call.Call(env, udfrt.NewBatch(cols, isCol))
	if err != nil {
		return nil, err
	}
	return &RunResult{Value: batchToValue(info, out)}, nil
}

// batchToValue shapes a native result batch the way the interpreter-based
// flow would see it: a dict of columns for table functions, a bare list (or
// scalar, for one-row results) for scalar functions.
func batchToValue(info UDFInfo, out *udfrt.Batch) script.Value {
	if len(out.Cols) == 1 && !info.IsTable {
		col := out.Cols[0]
		return pyrt.ColumnToValue(col, col.Len() != 1)
	}
	d := script.NewDict()
	for _, col := range out.Cols {
		d.SetStr(col.Name, pyrt.ColumnToValue(col, col.Len() != 1))
	}
	return d
}

// NewDebugSession builds an interactive debug session over an imported
// UDF's generated script (the "Debug" command of §2.1). The session runs
// the same prologue as RunLocal, with _conn available for loopback. Only
// interpreter-backed (debuggable) runtimes support it.
func (c *Client) NewDebugSession(ctx context.Context, udfName string, stopOnEntry bool) (*DebugSession, error) {
	info, src, err := c.Project.LoadUDF(udfName)
	if err != nil {
		return nil, err
	}
	if !udfrt.LanguageDebuggable(info.Language) {
		return nil, core.Errorf(core.KindConstraint,
			"UDF %s runs on the %s runtime, which is not debuggable (only interpreter-backed runtimes support breakpoints)",
			info.Name, languageOf(info))
	}
	mod, err := script.Parse(info.Name+".py", src)
	if err != nil {
		return nil, err
	}
	sess := debug.NewSession(mod, debug.Config{
		StopOnEntry: stopOnEntry,
		Setup: func(in *script.Interp) {
			in.FS = c.Project.FS()
		},
	})
	sess.SetGlobal("_conn", c.localConn(ctx, sess.Interp()))
	return sess, nil
}

// localConn builds the client-side _conn shim used during local runs and
// debugging (§2.3). Its execute(sql) behaves like the server-side loopback
// with one crucial difference: queries that call an *imported* UDF are
// executed locally — the shim extracts that nested UDF's input data from
// the server (reusing the §2.2 rewrite) and invokes the local, possibly
// edited, definition. Everything else is forwarded to the server.
func (c *Client) localConn(ctx context.Context, in *script.Interp) *script.ObjectVal {
	obj := script.NewObject("connection")
	obj.Methods["execute"] = func(callIn *script.Interp, args []script.Value, _ map[string]script.Value) (script.Value, error) {
		if len(args) != 1 {
			return nil, core.Errorf(core.KindType, "execute() takes exactly one argument")
		}
		sqlV, ok := args[0].(script.StrVal)
		if !ok {
			return nil, core.Errorf(core.KindType, "execute() argument must be a string")
		}
		sql := string(sqlV)
		names, err := transform.FindUDFCalls(sql, c.Project.Has)
		if err == nil && len(names) > 0 {
			return c.runNestedLocally(ctx, callIn, sql, names[0])
		}
		_, t, err := c.pool.Query(ctx, sql)
		if err != nil {
			return nil, err
		}
		if t == nil {
			return script.None, nil
		}
		return engine.TableToScriptDict(t), nil
	}
	return obj
}

// runNestedLocally executes one nested UDF call locally: extract the
// nested UDF's inputs from the server, call the local definition, shape
// the result like a loopback result dict.
func (c *Client) runNestedLocally(ctx context.Context, in *script.Interp, sql, udfName string) (script.Value, error) {
	info, src, err := c.Project.LoadUDF(udfName)
	if err != nil {
		return nil, err
	}
	rewritten, err := transform.RewriteToExtract(sql, info.Name, c.Settings.Transfer)
	if err != nil {
		return nil, err
	}
	_, t, err := c.pool.Query(ctx, rewritten)
	if err != nil {
		return nil, err
	}
	payloadCol, err := t.Column("payload")
	if err != nil || t.NumRows() != 1 {
		return nil, core.Errorf(core.KindProtocol, "nested extract returned no payload")
	}
	_, params, _, _, err := engine.DecodeExtractPayload(payloadCol.Blobs[0], c.Settings.Connection.Password)
	if err != nil {
		return nil, err
	}
	// Build a callable from the project file's (possibly edited) body.
	body, err := transform.ExtractBody(src, info.Name)
	if err != nil {
		return nil, err
	}
	mod, err := script.Parse(info.Name, transform.WrapFunction(info.Name, info.ParamNames(), body))
	if err != nil {
		return nil, err
	}
	env, err := in.Run(mod)
	if err != nil {
		return nil, err
	}
	fn, ok := env.Get(info.Name)
	if !ok {
		return nil, core.Errorf(core.KindRuntime, "nested UDF %s did not define itself", info.Name)
	}
	// nested UDFs may themselves use _conn
	env.Set("_conn", c.localConn(ctx, in))
	callArgs := make([]script.Value, len(info.Params))
	for i, p := range info.Params {
		v, ok := params.GetStr(p.Name)
		if !ok {
			return nil, core.Errorf(core.KindProtocol,
				"nested extract is missing parameter %q", p.Name)
		}
		callArgs[i] = v
	}
	out, err := in.Call(fn, callArgs)
	if err != nil {
		return nil, err
	}
	return shapeLoopbackResult(info, out)
}

// shapeLoopbackResult converts a locally-computed UDF result into the dict
// shape _conn.execute returns, using the declared result columns.
func shapeLoopbackResult(info UDFInfo, v script.Value) (script.Value, error) {
	if d, ok := v.(*script.DictVal); ok {
		return d, nil
	}
	d := script.NewDict()
	name := "result"
	if len(info.Returns) > 0 {
		name = info.Returns[0].Name
	}
	d.SetStr(name, v)
	return d, nil
}

// WriteLocalInputs writes synthetic input parameters for a UDF without
// contacting the server — useful for pure-local experimentation and the
// quickstart example.
func (c *Client) WriteLocalInputs(udfName string, params map[string]script.Value) error {
	info, _, err := c.Project.LoadUDF(udfName)
	if err != nil {
		return err
	}
	d := script.NewDict()
	for _, p := range info.Params {
		v, ok := params[p.Name]
		if !ok {
			return core.Errorf(core.KindConstraint, "missing input for parameter %q", p.Name)
		}
		d.SetStr(p.Name, v)
	}
	return pickle.DumpFile(c.Project.FS(), c.Project.InputPath(info.Name), d)
}

// TraditionalCycle executes one iteration of the paper's *traditional*
// workflow for comparison (§1): re-CREATE the function on the server with
// a new body and re-run the debug query remotely. The efficiency bench E4
// pits this against the devUDF extract-once / iterate-locally loop.
func (c *Client) TraditionalCycle(ctx context.Context, info UDFInfo, body string) (*storage.Table, error) {
	sql, err := createFunctionSQL(info, body)
	if err != nil {
		return nil, err
	}
	if _, _, err := c.pool.Query(ctx, sql); err != nil {
		return nil, err
	}
	if c.Settings.DebugQuery == "" {
		return nil, core.Errorf(core.KindConstraint, "no debug query configured")
	}
	_, t, err := c.pool.Query(ctx, c.Settings.DebugQuery)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// EditBody replaces the function body in an imported UDF's script file,
// preserving the generated header and prologue — programmatic stand-in for
// the developer editing the file in the IDE.
func (c *Client) EditBody(udfName, newBody string) error {
	info, src, err := c.Project.LoadUDF(udfName)
	if err != nil {
		return err
	}
	oldWrapped := ""
	if body, err := transform.ExtractBody(src, info.Name); err == nil {
		oldWrapped = transform.WrapFunction(info.Name, info.ParamNames(), body)
	}
	newWrapped := transform.WrapFunction(info.Name, info.ParamNames(), newBody)
	if oldWrapped == "" || !strings.Contains(src, oldWrapped) {
		return core.Errorf(core.KindConstraint,
			"could not locate the function definition in %s", c.Project.ScriptPath(info.Name))
	}
	updated := strings.Replace(src, oldWrapped, newWrapped, 1)
	return c.Project.FS().WriteFile(c.Project.ScriptPath(info.Name), []byte(updated))
}
