package monetlite_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/monetlite"
)

func TestEmbeddedUse(t *testing.T) {
	db := monetlite.NewDB()
	db.FS = core.NewMemFS(nil)
	conn := monetlite.Connect(db, "monetdb", "monetdb")
	results, err := conn.ExecAll(`
CREATE TABLE t (i INTEGER, s STRING);
INSERT INTO t VALUES (1, 'one'), (2, 'two');
SELECT COUNT(*) AS n FROM t;
`)
	if err != nil {
		t.Fatal(err)
	}
	if n := results[2].Table.Cols[0].Ints[0]; n != 2 {
		t.Fatalf("count: %d", n)
	}
}

func TestServedUse(t *testing.T) {
	db := monetlite.NewDB()
	db.FS = core.NewMemFS(nil)
	srv := monetlite.NewServer("demo", "u", "p", db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	host, port := split(addr)
	//lint:ignore SA1019 exercising the deprecated Dial compatibility shim
	cli, err := monetlite.Dial(monetlite.ConnParams{
		Host: host, Port: port, Database: "demo", User: "u", Password: "p",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, _, err := cli.Query(context.Background(), `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	msg, _, err := cli.Query(context.Background(), `INSERT INTO t VALUES (1), (2), (3)`)
	if err != nil || msg != "INSERT 3" {
		t.Fatalf("%q %v", msg, err)
	}
}

func TestPooledAndStreamingUse(t *testing.T) {
	db := monetlite.NewDB()
	db.FS = core.NewMemFS(nil)
	srv := monetlite.NewServer("demo", "u", "p", db)
	srv.StreamThreshold = 1 // stream every result to a v2 session
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	host, port := split(addr)
	ctx := context.Background()
	pool := monetlite.NewPool(monetlite.ConnParams{
		Host: host, Port: port, Database: "demo", User: "u", Password: "p",
	}, 2, monetlite.WithDialTimeout(5*time.Second))
	defer pool.Close()
	if _, err := pool.Exec(ctx, `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Exec(ctx, `INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	rows, err := pool.QueryStream(ctx, `SELECT i FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for rows.Next() {
		for _, v := range rows.Batch().Cols[0].Ints {
			sum += v
		}
	}
	if err := rows.Err(); err != nil || sum != 6 {
		t.Fatalf("%d %v", sum, err)
	}
	if !rows.Streaming() {
		t.Fatal("expected the chunked path")
	}
}

// TestPreparedUse exercises the prepared-statement surfaces through the
// public aliases: the embedded Stmt and the pool-aware PoolStmt.
func TestPreparedUse(t *testing.T) {
	db := monetlite.NewDB()
	db.FS = core.NewMemFS(nil)
	conn := monetlite.Connect(db, "monetdb", "monetdb")
	if _, err := conn.ExecAll(`
CREATE TABLE t (i INTEGER, s STRING);
INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three');
`); err != nil {
		t.Fatal(err)
	}
	var stmt *monetlite.Stmt
	stmt, err := conn.Prepare(`SELECT s FROM t WHERE i = ?`)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"one", "two", "three"} {
		res, err := stmt.Query(int64(i + 1))
		if err != nil || res.Table.Cols[0].Strs[0] != want {
			t.Fatalf("bind %d: %v %v", i+1, res, err)
		}
	}

	srv := monetlite.NewServer("demo", "monetdb", "monetdb", db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	host, port := split(addr)
	pool := monetlite.NewPool(monetlite.ConnParams{
		Host: host, Port: port, Database: "demo", User: "monetdb", Password: "monetdb",
	}, 2)
	defer pool.Close()
	var ps *monetlite.PoolStmt
	ps, err = pool.Prepare(context.Background(), `SELECT i FROM t WHERE s = $1`)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if _, tbl, err := ps.Query(context.Background(), "two"); err != nil || tbl.Cols[0].Ints[0] != 2 {
		t.Fatalf("%v %v", tbl, err)
	}
}

func TestModeString(t *testing.T) {
	if monetlite.ModeOperatorAtATime.String() != "operator-at-a-time" ||
		monetlite.ModeTupleAtATime.String() != "tuple-at-a-time" {
		t.Fatal("mode names")
	}
}

func split(addr string) (string, int) {
	i := strings.LastIndexByte(addr, ':')
	port := 0
	for _, ch := range addr[i+1:] {
		port = port*10 + int(ch-'0')
	}
	return addr[:i], port
}
