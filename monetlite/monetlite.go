// Package monetlite is the public face of the embedded MonetDB-like
// database this reproduction builds as its substrate: a columnar SQL engine
// with Python (PyLite) UDFs executed operator-at-a-time, sys.* meta tables
// that store UDF source code, loopback queries, and a TCP wire protocol.
//
// Typical embedded use:
//
//	db := monetlite.NewDB()
//	conn := monetlite.Connect(db, "monetdb", "monetdb")
//	conn.Exec(`CREATE TABLE numbers (i INTEGER)`)
//
// Typical served use:
//
//	srv := monetlite.NewServer("demo", "monetdb", "monetdb", db)
//	addr, _ := srv.Listen("127.0.0.1:50000")
//	cli, _ := monetlite.DialContext(ctx, monetlite.ConnParams{ ... })
package monetlite

import (
	"context"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/wire"
)

// DB is an embedded database instance.
type DB = engine.DB

// Conn is an authenticated session against a DB (embedded use).
type Conn = engine.Conn

// Result is the outcome of one statement.
type Result = engine.Result

// Table is a materialized result set or stored table.
type Table = storage.Table

// Column is one typed column of a Table.
type Column = storage.Column

// Mode selects the UDF processing model (paper §2.4).
type Mode = engine.Mode

// Processing models.
const (
	// ModeOperatorAtATime is MonetDB's model: one UDF call per query,
	// whole columns in.
	ModeOperatorAtATime = engine.ModeOperatorAtATime
	// ModeTupleAtATime is the Postgres/MySQL model: one UDF call per row.
	ModeTupleAtATime = engine.ModeTupleAtATime
)

// Server serves a DB over TCP.
type Server = wire.Server

// Client is a wire-protocol client session.
type Client = wire.Client

// Pool is a bounded, health-checked wire connection pool.
type Pool = wire.Pool

// RetryPolicy configures a Pool's client-side resilience
// (Pool.EnableRetry): jittered exponential backoff on failures the
// server is known not to have executed, plus a per-endpoint circuit
// breaker.
type RetryPolicy = wire.RetryPolicy

// Rows streams a wire result set batch-at-a-time.
type Rows = wire.Rows

// Stmt is an embedded prepared statement: SQL compiled once by
// Conn.Prepare, executed many times with bind arguments (`?` positional or
// `$n` numbered placeholders).
type Stmt = engine.Stmt

// ClientStmt is a prepared statement on one wire connection
// (Client.Prepare; protocol v2).
type ClientStmt = wire.Stmt

// PoolStmt is a pool-aware prepared statement (Pool.Prepare): it
// transparently re-prepares on whichever healthy connection the pool hands
// back.
type PoolStmt = wire.PoolStmt

// DialOption customizes DialContext (timeouts, keepalive, logger,
// protocol version).
type DialOption = wire.DialOption

// ConnParams are the five connection parameters of the devUDF settings
// window (paper Fig. 2): host, port, database, user, password.
type ConnParams = wire.ConnParams

// Wire protocol versions negotiated during the handshake.
const (
	ProtoV1 = wire.ProtoV1
	ProtoV2 = wire.ProtoV2
)

// Dial options, re-exported from the wire layer.
var (
	WithDialTimeout  = wire.WithDialTimeout
	WithReadTimeout  = wire.WithReadTimeout
	WithWriteTimeout = wire.WithWriteTimeout
	WithKeepAlive    = wire.WithKeepAlive
	WithLogger       = wire.WithLogger
	WithProtoVersion = wire.WithProtoVersion
)

// Registry collects metrics (counters, gauges, histograms) and serves
// them in Prometheus text format. Wire each layer in with DB.EnableObs,
// Server.EnableObs, and Pool.RegisterObs, then expose Registry.Handler.
type Registry = obs.Registry

// QueryLog is the ring buffer behind the sys.query_log virtual table;
// assign one to DB.QueryLog to record per-query span breakdowns.
type QueryLog = obs.QueryLog

// Trace carries one query's per-stage timings; embedded callers can pass
// one via WithTrace and Conn.ExecContext to time their own statements.
type Trace = obs.Trace

// Observability constructors and helpers, re-exported from the obs layer.
var (
	NewRegistry  = obs.NewRegistry
	NewQueryLog  = obs.NewQueryLog
	NewTrace     = obs.NewTrace
	WithTrace    = obs.WithTrace
	AcquireTrace = obs.AcquireTrace
	ReleaseTrace = obs.ReleaseTrace
)

// NewDB creates an empty embedded database. Native Go UDFs register with
// DB.RegisterGoUDF; stored PYTHON UDFs arrive via CREATE FUNCTION ...
// LANGUAGE PYTHON. Both execute through the udfrt runtime registry.
func NewDB() *DB { return engine.NewDB() }

// Connect opens an embedded session with credentials (the password keys
// the encryption option of the extract function).
func Connect(db *DB, user, password string) *Conn {
	return &engine.Conn{DB: db, User: user, Password: password}
}

// NewServer creates a wire server exposing db as the named database with a
// single user account.
func NewServer(database, user, password string, db *DB) *Server {
	return wire.NewServer(database, user, password, db)
}

// DialContext connects and authenticates to a served database, negotiating
// the protocol version. The context governs connect and handshake;
// per-operation contexts are passed to Query/Exec/QueryStream.
func DialContext(ctx context.Context, p ConnParams, opts ...DialOption) (*Client, error) {
	return wire.DialContext(ctx, p, opts...)
}

// NewPool creates a bounded connection pool over DialContext; connections
// are opened lazily and health-checked at checkout.
func NewPool(p ConnParams, size int, opts ...DialOption) *Pool {
	return wire.NewPool(p, size, opts...)
}

// Dial connects and authenticates to a served database.
//
// Deprecated: use DialContext, which supports cancellation and options.
func Dial(p ConnParams) (*Client, error) {
	//lint:ignore SA1019 the deprecated shim delegates to its deprecated wire counterpart
	return wire.Dial(p)
}
