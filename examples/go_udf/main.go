// go_udf: the pluggable-runtime scenario — one UDF, two runtimes.
//
// The engine dispatches UDF execution through a registry keyed by the
// CREATE FUNCTION LANGUAGE clause. This example registers a native Go
// implementation of the haversine distance next to the equivalent stored
// PYTHON UDF, runs the same query through both runtimes, checks they
// agree, and times them — the zero-boxing fast path the udfrt seam buys.
//
//	go run ./examples/go_udf
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/storage"
	"repro/monetlite"
)

const rows = 50_000

// haversine is a plain typed Go function: the GO runtime hands it the
// argument columns' backing vectors directly.
func haversine(lat1, lon1, lat2, lon2 []float64) []float64 {
	const earthRadiusKm = 6371.0
	out := make([]float64, len(lat1))
	rad := math.Pi / 180
	for i := range lat1 {
		dLat := (lat2[i] - lat1[i]) * rad
		dLon := (lon2[i] - lon1[i]) * rad
		a := math.Sin(dLat/2)*math.Sin(dLat/2) +
			math.Cos(lat1[i]*rad)*math.Cos(lat2[i]*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
		out[i] = 2 * earthRadiusKm * math.Asin(math.Sqrt(a))
	}
	return out
}

// haversinePy is the same computation as a stored PYTHON UDF (simplified
// with the small-angle-free formula the PyLite math module supports).
const haversinePy = `CREATE FUNCTION haversine_py(lat1 DOUBLE, lon1 DOUBLE, lat2 DOUBLE, lon2 DOUBLE)
RETURNS DOUBLE LANGUAGE PYTHON {
    import math
    out = []
    rad = math.pi / 180
    for i in range(0, len(lat1)):
        dlat = (lat2[i] - lat1[i]) * rad
        dlon = (lon2[i] - lon1[i]) * rad
        a = math.sin(dlat / 2) * math.sin(dlat / 2) + math.cos(lat1[i] * rad) * math.cos(lat2[i] * rad) * math.sin(dlon / 2) * math.sin(dlon / 2)
        out.append(2 * 6371.0 * math.asin(math.sqrt(a)))
    return out
};`

func main() {
	db := monetlite.NewDB()
	conn := monetlite.Connect(db, "monetdb", "monetdb")

	// 1. Register the native runtime's implementation: one call creates the
	// catalog entry (types inferred by reflection) and binds the function.
	if err := db.RegisterGoUDF("haversine", haversine); err != nil {
		log.Fatal(err)
	}
	// 2. The PYTHON twin arrives the classic way.
	if _, err := conn.Exec(haversinePy); err != nil {
		log.Fatal(err)
	}

	// 3. A table of city-pair coordinates (synthetic grid), bulk-loaded.
	t := storage.NewTable("trips", storage.Schema{
		{Name: "lat1", Type: storage.TFloat},
		{Name: "lon1", Type: storage.TFloat},
		{Name: "lat2", Type: storage.TFloat},
		{Name: "lon2", Type: storage.TFloat},
	})
	for i := 0; i < rows; i++ {
		if err := t.AppendRow([]any{
			float64(i%90) + 0.5,
			float64(i%180) + 0.25,
			float64((i+37)%90) + 0.75,
			float64((i+91)%180) + 0.5,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.RegisterTable(t); err != nil {
		log.Fatal(err)
	}

	// 4. Same query, both runtimes.
	run := func(udf string) (*monetlite.Table, time.Duration) {
		start := time.Now()
		res, err := conn.Exec(fmt.Sprintf(`SELECT %s(lat1, lon1, lat2, lon2) AS km FROM trips`, udf))
		if err != nil {
			log.Fatal(err)
		}
		return res.Table, time.Since(start)
	}
	goTbl, goDur := run("haversine")
	pyTbl, pyDur := run("haversine_py")

	// 5. They must agree.
	g, _ := goTbl.Column("km")
	p, _ := pyTbl.Column("km")
	for i := 0; i < rows; i++ {
		if math.Abs(g.Flts[i]-p.Flts[i]) > 1e-9 {
			log.Fatalf("row %d: GO %.9f != PYTHON %.9f", i, g.Flts[i], p.Flts[i])
		}
	}

	fmt.Printf("haversine over %d row pairs, identical results from both runtimes\n", rows)
	fmt.Printf("  LANGUAGE GO      (native, zero boxing): %v\n", goDur)
	fmt.Printf("  LANGUAGE PYTHON  (interpreter, boxed):  %v\n", pyDur)
	fmt.Printf("  speedup: %.1fx\n", float64(pyDur)/float64(goDur))
	fmt.Printf("sample: first trip = %.2f km\n", g.Flts[0])
}
