// Remote debugging: the architecture split PyCharm uses with pydevd — the
// debugger UI in one process, the debuggee in another, connected by a
// socket speaking a JSON protocol.
//
// This example runs the paper's buggy mean_deviation under a debug server
// in one goroutine ("the debuggee process") and drives it from a
// RemoteClient ("the IDE"): set a conditional breakpoint, inspect locals
// and the stack, evaluate a watch expression, continue to completion.
//
//	go run ./examples/remote_debug
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/debug"
	"repro/internal/script"
)

const debuggee = `def mean_deviation(column):
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += column[i] - mean
    return distance / len(column)

result = mean_deviation([1, 2, 3, 4, 100])
`

func main() {
	mod, err := script.Parse("mean_deviation.py", debuggee)
	if err != nil {
		log.Fatal(err)
	}
	sess := debug.NewSession(mod, debug.Config{})
	srv := debug.NewRemoteServer(sess)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Println("debug server listening on", ln.Addr())

	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			log.Print(err)
			return
		}
		if err := srv.ServeConn(conn); err != nil {
			log.Print("serve:", err)
		}
	}()

	// ---- the "IDE" side ----
	rc, err := debug.DialRemote(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer rc.Close()

	// break in the accumulation loop only once it has gone wrong
	if err := rc.SetBreakpoint(8, "distance < -40"); err != nil {
		log.Fatal(err)
	}
	ev, err := rc.Start()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stopped: reason=%s line=%d func=%s\n", ev.Reason, ev.Line, ev.FuncName)

	locals, err := rc.Locals()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("locals at the breakpoint:")
	for _, name := range debug.SortedVarNames(locals) {
		fmt.Printf("  %s = %s\n", name, locals[name])
	}
	stack, err := rc.Stack()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stack:")
	for i, f := range stack {
		fmt.Printf("  #%d %s at line %d\n", i, f.FuncName, f.Line)
	}
	watch, err := rc.Eval("column[i] - mean")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("watch `column[i] - mean` =", watch)

	// step once, then run to the end
	ev, err = rc.StepOver()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after step: line=%d\n", ev.Line)
	for !ev.Terminal {
		ev, err = rc.Continue()
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("debuggee finished (%s)\n", ev.Reason)
	rc.Close()
	<-done

	env, err := sess.Result()
	if err != nil {
		log.Fatal(err)
	}
	v, _ := env.Get("result")
	fmt.Println("program result:", v.Repr(), "(the Listing 4 bug: should be 31.2)")
}
