// Remote in-server debugging: the capability the paper says UDF developers
// are denied — "the RDBMS must be in control of the code flow while the UDF
// is being executed" (§1) — delivered over the wire. Where the local
// workflow extracts the UDF's inputs and debugs a copy, this scenario
// attaches to the UDF *while it executes inside monetlited*: a DAP-style
// debug sub-protocol rides the v2 connection, the engine runs the
// invocation under the trace hook, and stop events are pushed back to the
// client asynchronously.
//
// The scenario: start an in-process monetlited with the paper's buggy
// mean_deviation (Listing 4), open a devUDF client, launch the debug query
// with a conditional breakpoint inside the UDF, inspect locals / stack / a
// watch expression at the pause, step, and resume to completion.
//
//	go run ./examples/remote_debug
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"strconv"

	"repro/devudf"
	"repro/internal/core"
	"repro/monetlite"
)

const buggyMeanDeviation = `CREATE FUNCTION mean_deviation(column INTEGER)
RETURNS DOUBLE LANGUAGE PYTHON {
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += column[i] - mean
    deviation = distance / len(column)
    return deviation;
};`

func main() {
	ctx := context.Background()

	// ---- the server side: monetlited with the demo schema ----
	db := monetlite.NewDB()
	db.FS = core.NewMemFS(nil)
	srv := monetlite.NewServer("demo", "monetdb", "monetdb", db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	boot := monetlite.Connect(db, "monetdb", "monetdb")
	for _, sql := range []string{
		`CREATE TABLE numbers (i INTEGER)`,
		`INSERT INTO numbers VALUES (1), (2), (3), (4), (100)`,
		buggyMeanDeviation,
	} {
		if _, err := boot.Exec(sql); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("monetlited serving on", addr)

	// ---- the IDE side: a devUDF client with a debug query ----
	host, port := splitAddr(addr)
	settings := devudf.DefaultSettings()
	settings.Connection = devudf.ConnParams{
		Host: host, Port: port, Database: "demo",
		User: "monetdb", Password: "monetdb",
	}
	settings.DebugQuery = `SELECT mean_deviation(i) FROM numbers`
	client, err := devudf.Open(ctx, settings, devudf.WithFS(core.NewMemFS(nil)))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	sess, err := client.NewRemoteDebugSession(ctx, "mean_deviation", false)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// Break in the accumulation loop only once it has gone wrong.
	if err := sess.SetBreakpoint(8, "distance < -40"); err != nil {
		log.Fatal(err)
	}
	ev, err := sess.Start()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stopped inside the server: reason=%s line=%d func=%s\n",
		ev.Reason, ev.Line, ev.FuncName)
	if src := sess.Source(); ev.Line-1 < len(src) {
		fmt.Printf("  %4d | %s\n", ev.Line, src[ev.Line-1])
	}

	locals, err := sess.Locals()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("locals at the breakpoint:")
	for _, name := range [...]string{"i", "mean", "distance"} {
		fmt.Printf("  %s = %s\n", name, locals[name])
	}
	frames, err := sess.Stack()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stack:")
	for i, f := range frames {
		fmt.Printf("  #%d %s at line %d\n", i, f.FuncName, f.Line)
	}
	watch, err := sess.Eval("column[i] - mean")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("watch `column[i] - mean` =", watch)

	// Step once, then run to the end.
	ev, err = sess.StepOver()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after step: line=%d\n", ev.Line)
	for !ev.Terminal {
		ev, err = sess.Continue()
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("debuggee finished (%s), debug query status: %s\n", ev.Reason, sess.Status())
	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}

	// The pool keeps serving ordinary traffic after the debug run: rerun
	// the query plain and show the (buggy — Listing 4) result.
	res, err := client.Query(ctx, settings.DebugQuery)
	if err != nil {
		log.Fatal(err)
	}
	col, err := res.Table.Column("mean_deviation")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query result: %v (the Listing 4 bug: should be 31.2)\n", col.Flts[0])
}

func splitAddr(addr string) (string, int) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		log.Fatal(err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatal(err)
	}
	return host, port
}
