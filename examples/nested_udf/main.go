// Nested UDFs (paper §2.3): find_best_classifier issues loopback queries
// through the _conn object, one of which invokes the train_rnforest UDF —
// a UDF nested inside another UDF's execution.
//
// devUDF imports the nested UDF transitively, and during a local run the
// _conn shim executes nested UDF calls locally too: the nested call's
// input data is extracted from the server per invocation and the local
// (possibly edited) definition runs on it. Plain loopback queries are
// forwarded to the server unchanged.
//
//	go run ./examples/nested_udf
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/devudf"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/script"
	"repro/monetlite"
)

// ctx is the background context the example threads through the v2 API.
var ctx = context.Background()

func main() {
	setup := []string{
		`CREATE TABLE trainingset (data DOUBLE, labels INTEGER)`,
		`CREATE TABLE testingset (data DOUBLE, labels INTEGER)`,
	}
	setup = append(setup, bench.MLInserts(20, 15)...)
	setup = append(setup, bench.TrainRnforest, bench.FindBestClassifier)
	fx, err := bench.StartServer(setup...)
	if err != nil {
		log.Fatal(err)
	}
	defer fx.Close()
	conn := monetlite.Connect(fx.DB, "monetdb", "monetdb")

	fmt.Println("== server-side execution (Listing 3) ==")
	res, err := conn.Exec(`SELECT n_estimators FROM find_best_classifier(4)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("best n_estimators on the server:", res.Table.Cols[0].Ints[0])

	fmt.Println("\n== devUDF: import with nested discovery ==")
	settings := devudf.DefaultSettings()
	settings.Connection = fx.Params
	settings.DebugQuery = `SELECT * FROM find_best_classifier(4)`
	client, err := devudf.Open(ctx, settings, devudf.WithFS(core.NewMemFS(nil)))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	imported, err := client.ImportUDFs(ctx, "find_best_classifier")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %s — train_rnforest was discovered inside the\n", strings.Join(imported, " and "))
	fmt.Println("loopback query and imported transitively")

	if _, err := client.ExtractInputs(ctx, "find_best_classifier"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== local run: nested UDF executes locally ==")
	local, err := client.RunLocal(ctx, "find_best_classifier")
	if err != nil {
		log.Fatal(err)
	}
	d := local.Value.(*script.DictVal)
	best, _ := d.GetStr("n_estimators")
	fmt.Println("best n_estimators computed locally:", best.Repr())

	fmt.Println("\n== debug into the nested call ==")
	sess, err := client.NewDebugSession(ctx, "find_best_classifier", false)
	if err != nil {
		log.Fatal(err)
	}
	src, _ := client.Project.LoadUDFSource("find_best_classifier")
	line := 0
	for i, ln := range strings.Split(src, "\n") {
		if strings.Contains(ln, "correct_ans = numpy.sum(correct_pred)") {
			line = i + 1
			break
		}
	}
	sess.SetBreakpoint(line, "")
	ev := sess.Start()
	for ev.Reason == devudf.ReasonBreakpoint {
		est, _ := sess.Eval("estimator")
		correct, _ := sess.Eval("sum(correct_pred)")
		total, _ := sess.Eval("len(correct_pred)")
		fmt.Printf("  estimator=%s accuracy=%s/%s\n", est.Repr(), correct.Repr(), total.Repr())
		ev = sess.Continue()
	}
	if ev.Err != nil {
		log.Fatal(ev.Err)
	}
	fmt.Println("each candidate's accuracy was inspectable mid-run — the paper's")
	fmt.Println("interactive-debugging claim, across a nested UDF boundary.")
}
