// Quickstart: the complete devUDF workflow in one file.
//
// It boots an in-process database server, stores a Python UDF in it the
// traditional way, then uses the devUDF public API to import the UDF into a
// local project, extract its input data, run and edit it locally, and
// export the result back — the full loop of the paper's Figures 1–3.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/devudf"
	"repro/internal/core"
	"repro/monetlite"
)

// ctx is the background context the example threads through the v2 API.
var ctx = context.Background()

func main() {
	// 1. A running database server with data and a stored UDF.
	db := monetlite.NewDB()
	db.FS = core.NewMemFS(nil)
	srv := monetlite.NewServer("demo", "monetdb", "monetdb", db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	boot := monetlite.Connect(db, "monetdb", "monetdb")
	for _, sql := range []string{
		`CREATE TABLE measurements (v INTEGER)`,
		`INSERT INTO measurements VALUES (12), (15), (11), (14), (13), (90)`,
		`CREATE FUNCTION spread(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
		    return max(column) - min(column)
		};`,
	} {
		if _, err := boot.Exec(sql); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("server ready on", addr)

	// 2. Configure devUDF exactly like the settings window (Fig. 2).
	host, port := splitAddr(addr)
	settings := devudf.DefaultSettings()
	settings.Connection = monetlite.ConnParams{
		Host: host, Port: port, Database: "demo",
		User: "monetdb", Password: "monetdb",
	}
	settings.DebugQuery = `SELECT spread(v) FROM measurements`
	settings.Transfer.Compress = true

	client, err := devudf.Open(ctx, settings, devudf.WithFS(core.NewMemFS(nil)))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// 3. Import the UDF out of the server's meta tables (Fig. 3a).
	imported, err := client.ImportUDFs(ctx, "spread")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("imported:", imported)
	src, _ := client.Project.LoadUDFSource("spread")
	fmt.Println("generated local script (paper Listing 2 shape):")
	fmt.Println(indent(src))

	// 4. Extract the UDF's input data and run locally.
	info, err := client.ExtractInputs(ctx, "spread")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d rows (%d payload bytes, compressed=%v)\n",
		info.SampleRows, info.PayloadBytes, info.Compressed)
	res, err := client.RunLocal(ctx, "spread")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("local run result:", res.Value.Repr())

	// 5. Edit the body locally — make spread ignore outliers via sorting —
	//    re-run locally, then export back (Fig. 3b).
	err = client.EditBody("spread", `vals = sorted(column)
n = len(vals)
return vals[n - 2] - vals[1]`)
	if err != nil {
		log.Fatal(err)
	}
	res, err = client.RunLocal(ctx, "spread")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("edited local result (outliers trimmed):", res.Value.Repr())
	if err := client.ExportUDFs(ctx, "spread"); err != nil {
		log.Fatal(err)
	}

	// 6. The server now runs the edited version.
	serverRes, err := boot.Exec(`SELECT spread(v) FROM measurements`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("server result after export:", serverRes.Table.Cols[0].FormatValue(0))

	// 7. The iteration loop itself is prepared-statement shaped: the same
	//    UDF-bearing query runs over and over with different thresholds, so
	//    prepare it once and bind per run — parse and plan amortize away
	//    (pool-aware: the statement survives connection churn).
	stmt, err := client.Prepare(ctx, `SELECT spread(v) AS s FROM measurements WHERE v < ?`)
	if err != nil {
		log.Fatal(err)
	}
	defer stmt.Close()
	for _, limit := range []int64{100, 50, 16} {
		out, err := stmt.Query(ctx, limit)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("spread over v < %-3d → %s\n", limit, out.Table.Cols[0].FormatValue(0))
	}
}

func splitAddr(addr string) (string, int) {
	i := len(addr) - 1
	for addr[i] != ':' {
		i--
	}
	port := 0
	for _, ch := range addr[i+1:] {
		port = port*10 + int(ch-'0')
	}
	return addr[:i], port
}

func indent(s string) string {
	out := ""
	for _, ln := range splitKeepAll(s) {
		out += "    " + ln + "\n"
	}
	return out
}

func splitKeepAll(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
