// Scenario B (paper §2.5): a data-dependent bug in a CSV-loading table
// UDF — Listing 5 line 5 iterates range(0, len(files)-1) believing range is
// right-inclusive, silently skipping the last file in the directory.
//
// The bug only shows up as a wrong aggregate, and only when the skipped
// file matters. The devUDF debugger makes it visible immediately: stepping
// over the loop shows the loop index never reaching the last file.
//
//	go run ./examples/scenario_b
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/devudf"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/monetlite"
)

// ctx is the background context the example threads through the v2 API.
var ctx = context.Background()

func main() {
	// Three CSV files of integers; c.csv carries the value that changes
	// the answer.
	serverFS := core.NewMemFS(map[string]string{
		"csvs/a.csv": "1\n2\n3\n",
		"csvs/b.csv": "4\n5\n",
		"csvs/c.csv": "100\n",
	})
	fx, err := bench.StartServer()
	if err != nil {
		log.Fatal(err)
	}
	defer fx.Close()
	fx.DB.FS = serverFS
	conn := monetlite.Connect(fx.DB, "monetdb", "monetdb")
	if _, err := conn.Exec(bench.LoadNumbersBuggy); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== symptom ==")
	res, err := conn.Exec(`SELECT COUNT(*) AS n, SUM(i) AS total FROM loadNumbers('csvs')`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COUNT=%d SUM=%d   (the directory holds 6 values summing to 115)\n",
		res.Table.Cols[0].Ints[0], res.Table.Cols[1].Ints[0])

	fmt.Println("\n== devUDF: debug the loader locally ==")
	settings := devudf.DefaultSettings()
	settings.Connection = fx.Params
	settings.DebugQuery = `SELECT * FROM loadNumbers('csvs')`
	// The loader reads files, so the local project shares the CSV tree the
	// developer has locally (the demo ingests "several CSV files, located
	// in one directory").
	projectFS := core.NewMemFS(map[string]string{
		"csvs/a.csv": "1\n2\n3\n",
		"csvs/b.csv": "4\n5\n",
		"csvs/c.csv": "100\n",
	})
	client, err := devudf.Open(ctx, settings, devudf.WithFS(projectFS))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if _, err := client.ImportUDFs(ctx, "loadNumbers"); err != nil {
		log.Fatal(err)
	}
	if _, err := client.ExtractInputs(ctx, "loadNumbers"); err != nil {
		log.Fatal(err)
	}

	sess, err := client.NewDebugSession(ctx, "loadNumbers", false)
	if err != nil {
		log.Fatal(err)
	}
	src, _ := client.Project.LoadUDFSource("loadNumbers")
	loopLine := 0
	for i, ln := range strings.Split(src, "\n") {
		if strings.Contains(ln, "file = open(") {
			loopLine = i + 1
			break
		}
	}
	sess.SetBreakpoint(loopLine, "")
	ev := sess.Start()
	fmt.Println("stepping the file loop:")
	var openedFiles []string
	for ev.Reason == devudf.ReasonBreakpoint {
		fv, _ := sess.Eval("files[i]")
		nf, _ := sess.Eval("len(files)")
		openedFiles = append(openedFiles, fv.Repr())
		fmt.Printf("  opening files[i]=%s (len(files)=%s)\n", fv.Repr(), nf.Repr())
		ev = sess.Continue()
	}
	fmt.Printf("the loop opened %d of 3 files — range(0, len(files)-1) skips the last\n", len(openedFiles))

	fixed := `import os
files = os.listdir(path)
result = []
for i in range(0, len(files)):
    file = open(path + "/" + files[i], "r")
    for line in file:
        result.append(int(line))
return result`
	if err := client.EditBody("loadNumbers", fixed); err != nil {
		log.Fatal(err)
	}
	local, err := client.RunLocal(ctx, "loadNumbers")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfixed, local verification returns", local.Value.Repr())
	if err := client.ExportUDFs(ctx, "loadNumbers"); err != nil {
		log.Fatal(err)
	}
	res, err = conn.Exec(`SELECT COUNT(*) AS n, SUM(i) AS total FROM loadNumbers('csvs')`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after export: COUNT=%d SUM=%d\n",
		res.Table.Cols[0].Ints[0], res.Table.Cols[1].Ints[0])
}
