// Scenario A (paper §2.5): a semantically-wrong mean_deviation UDF —
// syntactically correct, logically broken (Listing 4 line 9 computes the
// plain difference instead of the absolute difference, so deviations
// cancel out).
//
// The example first shows the traditional, print-debugging-style workflow
// failing to be informative, then the devUDF workflow: import, extract,
// step through with the interactive debugger until the bug is visible,
// fix, verify locally, export, verify on the server.
//
//	go run ./examples/scenario_a
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/devudf"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/monetlite"
)

// ctx is the background context the example threads through the v2 API.
var ctx = context.Background()

func main() {
	fx, err := bench.StartServer(
		`CREATE TABLE numbers (i INTEGER)`,
		`INSERT INTO numbers VALUES (1), (2), (3), (4), (100)`,
		bench.MeanDeviationBuggy,
	)
	if err != nil {
		log.Fatal(err)
	}
	defer fx.Close()
	conn := monetlite.Connect(fx.DB, "monetdb", "monetdb")

	fmt.Println("== the traditional workflow ==")
	res, err := conn.Exec(`SELECT mean_deviation(i) FROM numbers`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SELECT mean_deviation(i) -> %g   (expected 31.2 — something is wrong)\n",
		res.Table.Cols[0].Flts[0])
	fmt.Println("print-debugging means editing the CREATE FUNCTION text, re-creating")
	fmt.Println("the function and re-running the query for every probe.")

	fmt.Println("\n== the devUDF workflow ==")
	settings := devudf.DefaultSettings()
	settings.Connection = fx.Params
	settings.DebugQuery = `SELECT mean_deviation(i) FROM numbers`
	client, err := devudf.Open(ctx, settings, devudf.WithFS(core.NewMemFS(nil)))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if _, err := client.ImportUDFs(ctx, "mean_deviation"); err != nil {
		log.Fatal(err)
	}
	info, err := client.ExtractInputs(ctx, "mean_deviation")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported mean_deviation and extracted its %d input rows locally\n", info.SampleRows)

	// Interactive debugging: break on the accumulation line and watch the
	// 'distance' accumulator go negative — impossible for a sum of
	// absolute deviations.
	sess, err := client.NewDebugSession(ctx, "mean_deviation", false)
	if err != nil {
		log.Fatal(err)
	}
	src, _ := client.Project.LoadUDFSource("mean_deviation")
	line := 0
	for i, ln := range strings.Split(src, "\n") {
		if strings.Contains(ln, "distance += column[i] - mean") {
			line = i + 1
			break
		}
	}
	sess.SetBreakpoint(line, "")
	fmt.Printf("breakpoint on line %d (the accumulation), stepping through:\n", line)
	ev := sess.Start()
	for ev.Reason == devudf.ReasonBreakpoint {
		iv, _ := sess.Eval("i")
		dv, _ := sess.Eval("distance")
		fmt.Printf("  i=%s  distance=%s\n", iv.Repr(), dv.Repr())
		ev = sess.Continue()
	}
	fmt.Println("distance goes NEGATIVE -> the absolute value is missing on line", line)

	// Fix it locally, verify on the already-extracted data, export.
	if err := client.EditBody("mean_deviation", bench.MeanDeviationFixedBody); err != nil {
		log.Fatal(err)
	}
	local, err := client.RunLocal(ctx, "mean_deviation")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fixed, local verification:", local.Value.Repr())
	if err := client.ExportUDFs(ctx, "mean_deviation"); err != nil {
		log.Fatal(err)
	}
	res, err = conn.Exec(`SELECT mean_deviation(i) FROM numbers`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after export, the server computes: %g\n", res.Table.Cols[0].Flts[0])
}
