// Command mclient is the plain SQL shell — the "simplistic text editor"
// workflow the paper's demo contrasts devUDF against: write the UDF
// elsewhere, paste a CREATE FUNCTION here, run the query, repeat.
//
// Usage:
//
//	mclient -host 127.0.0.1 -port 50000 -db demo -user monetdb -password monetdb
//	mclient ... -e "SELECT * FROM sys.functions"
//	mclient ... -param 3 -param "'a'" -e "SELECT i FROM t WHERE i > ? AND s = ?"
//
// Each -param is a SQL literal (42, 4.2, 'text', true, null) bound to the
// statement's placeholders in order; the statement is prepared server-side
// and executed with the typed arguments.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/monetlite"
)

// paramFlag collects repeatable -param values.
type paramFlag []string

func (p *paramFlag) String() string     { return strings.Join(*p, ",") }
func (p *paramFlag) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	host := flag.String("host", "127.0.0.1", "server host")
	port := flag.Int("port", 50000, "server port")
	db := flag.String("db", "demo", "database")
	user := flag.String("user", "monetdb", "user")
	password := flag.String("password", "monetdb", "password")
	execute := flag.String("e", "", "execute this SQL and exit")
	timeout := flag.Duration("timeout", 0, "per-statement deadline; the statement is cancelled client- and server-side when it expires (0: none)")
	var params paramFlag
	flag.Var(&params, "param", "bind argument as a SQL literal; repeatable, used with -e")
	flag.Parse()

	binds, err := sqlparse.ParseLiterals(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclient:", err)
		os.Exit(2)
	}
	if len(binds) > 0 && *execute == "" {
		fmt.Fprintln(os.Stderr, "mclient: -param requires -e")
		os.Exit(2)
	}

	sess := &session{params: monetlite.ConnParams{
		Host: *host, Port: *port, Database: *db,
		User: *user, Password: *password,
	}, timeout: *timeout}
	defer sess.close()
	if err := sess.connect(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "mclient:", err)
		os.Exit(1)
	}

	if *execute != "" {
		if ok := sess.run(*execute, binds...); !ok {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("mclient: connected to %s@%s:%d/%s (end statements with ';', \\q quits)\n",
		*user, *host, *port, *db)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	var buf strings.Builder
	fmt.Print("sql> ")
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == `\q` {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") && braceBalance(buf.String()) == 0 {
			sess.run(buf.String())
			buf.Reset()
			fmt.Print("sql> ")
		} else {
			fmt.Print("...> ")
		}
	}
}

// session is the shell's connection: one wire client, redialed whenever a
// cancelled statement poisons it.
type session struct {
	params  monetlite.ConnParams
	cli     *monetlite.Client
	timeout time.Duration
}

func (s *session) connect(ctx context.Context) error {
	cli, err := monetlite.DialContext(ctx, s.params)
	if err != nil {
		return err
	}
	s.cli = cli
	return nil
}

func (s *session) close() {
	if s.cli != nil {
		s.cli.Close()
	}
}

// run executes one statement under a signal-scoped context: ^C cancels
// just this statement, and keeps its default exit behavior while the shell
// sits at the prompt. A cancelled statement leaves the connection
// mid-protocol, so the next statement reconnects transparently. Bind
// arguments route through the prepared-statement path (Prepare, Exec with
// typed args, Close).
func (s *session) run(sql string, binds ...any) bool {
	ctx, cancel := context.WithCancel(context.Background())
	if s.timeout > 0 {
		// An expired deadline severs the connection, which the server
		// notices and uses to abort the statement rather than burning
		// cycles on an answer nobody will read.
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
	}
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	// Reset (not just Stop) so ^C at the prompt regains its default
	// process-terminating behavior between statements.
	defer signal.Reset(os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		select {
		case <-sig:
			cancel()
		case <-ctx.Done():
		}
	}()

	if s.cli == nil || s.cli.Broken() {
		if s.cli != nil {
			s.cli.Close()
			fmt.Println("mclient: reconnecting after aborted statement")
		}
		if err := s.connect(ctx); err != nil {
			fmt.Println("error:", err)
			return false
		}
	}
	var (
		msg string
		tbl *storage.Table
		err error
	)
	if len(binds) > 0 {
		var stmt *monetlite.ClientStmt
		stmt, err = s.cli.Prepare(ctx, sql)
		if err == nil {
			msg, tbl, err = stmt.Query(ctx, binds...)
			_ = stmt.Close(ctx)
		}
	} else {
		msg, tbl, err = s.cli.Query(ctx, sql)
	}
	if err != nil {
		// A server-side cancellation (query timeout, shutdown drain) comes
		// back as a typed error and means the statement was stopped cleanly
		// — distinguish it from a dead network, where the statement's fate
		// is unknown.
		if core.IsCancelled(err) {
			fmt.Println("cancelled:", err)
		} else if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			fmt.Printf("cancelled: statement abandoned after %v (connection severed): %v\n", s.timeout, err)
		} else {
			fmt.Println("error:", err)
		}
		return false
	}
	if tbl != nil {
		printTable(tbl)
	}
	fmt.Println(msg)
	return true
}

// braceBalance counts unclosed UDF-body braces so multi-line CREATE
// FUNCTION statements are submitted whole.
func braceBalance(s string) int {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
		case '}':
			depth--
		}
	}
	return depth
}

// printTable renders a result set with column-aligned ASCII borders, the
// way the paper's Listing 1 shows MonetDB output.
func printTable(t *storage.Table) {
	if len(t.Cols) == 0 {
		return
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c.Name)
		for r := 0; r < c.Len(); r++ {
			if n := len(c.FormatValue(r)); n > widths[i] {
				widths[i] = n
			}
		}
		if widths[i] > 48 {
			widths[i] = 48
		}
	}
	sep := "+"
	for _, w := range widths {
		sep += strings.Repeat("-", w+2) + "+"
	}
	fmt.Println(sep)
	row := "|"
	for i, c := range t.Cols {
		row += " " + pad(c.Name, widths[i]) + " |"
	}
	fmt.Println(row)
	fmt.Println(strings.ReplaceAll(sep, "-", "="))
	for r := 0; r < t.NumRows(); r++ {
		row := "|"
		for i, c := range t.Cols {
			row += " " + pad(c.FormatValue(r), widths[i]) + " |"
		}
		fmt.Println(row)
	}
	fmt.Println(sep)
}

func pad(s string, w int) string {
	if len(s) > w {
		return s[:w-1] + "…"
	}
	return s + strings.Repeat(" ", w-len(s))
}
