// Command devudf is the CLI incarnation of the devUDF plugin: the same
// workflow verbs the paper's PyCharm figures show, driven from a terminal.
//
//	devudf menu                          the UDF Development menu (Fig. 1)
//	devudf settings [-set k=v ...]       show / edit settings (Fig. 2)
//	devudf list                          UDFs on the server (Fig. 3a)
//	devudf import  [-all | names...]     import UDFs into the project
//	devudf export  [-all | names...]     export project UDFs back (Fig. 3b)
//	devudf extract -udf NAME             ship the UDF's input data locally
//	devudf run     -udf NAME             run the imported UDF locally
//	devudf query   [-param V ...] SQL    run SQL (placeholders bound to -param)
//	devudf debug   -udf NAME             interactive local debugger
//	devudf vcs     init|commit|log|diff  project version control
//
// Settings persist in ./devudf.json; the project lives in ./<project_dir>.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/devudf"
	"repro/internal/core"
	"repro/internal/debug"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/udfrt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	fs := core.OSFS{}
	// The first ^C cancels in-flight wire operations; a second one falls
	// back to the default handler and exits the process.
	ctx, cancel := context.WithCancel(context.Background()) //ctxflow:edge process entry point
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		cancel()
		signal.Stop(sig)
		signal.Reset(os.Interrupt)
	}()
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "menu":
		printMenu(os.Stdout)
	case "settings":
		err = cmdSettings(fs, args)
	case "list":
		err = cmdList(ctx, fs)
	case "import":
		err = cmdImport(ctx, fs, args)
	case "export":
		err = cmdExport(ctx, fs, args)
	case "extract":
		err = cmdExtract(ctx, fs, args)
	case "run":
		err = cmdRun(ctx, fs, args)
	case "query":
		err = cmdQuery(ctx, fs, args)
	case "debug":
		err = cmdDebug(ctx, fs, args)
	case "vcs":
		err = cmdVCS(fs, args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "devudf: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "devudf:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: devudf <command> [arguments]

commands:
  menu       show the UDF Development menu
  settings   show or edit plugin settings
  list       list UDFs stored on the database server
  import     import UDFs from the server into the project
  export     export project UDFs back to the server
  extract    extract a UDF's input data for local runs
  run        run an imported UDF locally
  query      run SQL on the server ([-param V ...] binds placeholders)
  debug      debug an imported UDF interactively
  vcs        version-control the project (init|commit|log|diff)
`)
}

// printMenu reproduces the paper's Fig. 1 menu integration as a tree.
func printMenu(w io.Writer) {
	fmt.Fprint(w, `Main Menu
└── UDF Development
    ├── Settings...            (connection, debug query, transfer options)
    ├── Import UDFs...         (fetch UDFs from the database server)
    └── Export UDFs...         (commit edited UDFs back to the server)
`)
}

func connect(ctx context.Context, fs core.FS) (*devudf.Client, devudf.Settings, error) {
	settings, err := devudf.LoadSettings(fs)
	if err != nil {
		return nil, settings, err
	}
	c, err := devudf.Open(ctx, settings, devudf.WithFS(fs))
	return c, settings, err
}

func cmdSettings(fs core.FS, args []string) error {
	flags := flag.NewFlagSet("settings", flag.ExitOnError)
	var sets multiFlag
	flags.Var(&sets, "set", "key=value (host, port, database, user, password, query, project, compress, encrypt, sample, seed); repeatable")
	if err := flags.Parse(args); err != nil {
		return err
	}
	s, err := devudf.LoadSettings(fs)
	if err != nil {
		return err
	}
	for _, kv := range sets {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("bad -set %q (want key=value)", kv)
		}
		if err := applySetting(&s, k, v); err != nil {
			return err
		}
	}
	if len(sets) > 0 {
		if err := devudf.SaveSettings(fs, s); err != nil {
			return err
		}
	}
	fmt.Printf(`devUDF settings (devudf.json)
  host:       %s
  port:       %d
  database:   %s
  user:       %s
  password:   %s
  query:      %s
  project:    %s
  compress:   %v
  encrypt:    %v
  sample:     %d
  seed:       %d
`, s.Connection.Host, s.Connection.Port, s.Connection.Database, s.Connection.User,
		strings.Repeat("*", len(s.Connection.Password)), s.DebugQuery, s.ProjectDir,
		s.Transfer.Compress, s.Transfer.Encrypt, s.Transfer.SampleSize, s.Transfer.Seed)
	return nil
}

func applySetting(s *devudf.Settings, key, val string) error {
	switch key {
	case "host":
		s.Connection.Host = val
	case "port":
		p, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad port %q", val)
		}
		s.Connection.Port = p
	case "database":
		s.Connection.Database = val
	case "user":
		s.Connection.User = val
	case "password":
		s.Connection.Password = val
	case "query":
		s.DebugQuery = val
	case "project":
		s.ProjectDir = val
	case "compress":
		s.Transfer.Compress = val == "true" || val == "1"
	case "encrypt":
		s.Transfer.Encrypt = val == "true" || val == "1"
	case "sample":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad sample size %q", val)
		}
		s.Transfer.SampleSize = n
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", val)
		}
		s.Transfer.Seed = n
	default:
		return fmt.Errorf("unknown setting %q", key)
	}
	return nil
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func cmdList(ctx context.Context, fs core.FS) error {
	c, _, err := connect(ctx, fs)
	if err != nil {
		return err
	}
	defer c.Close()
	infos, err := c.ListServerUDFs(ctx)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Println("no UDFs stored on the server")
		return nil
	}
	fmt.Println("UDFs on the server (Import UDFs window):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "  \tNAME\tLANGUAGE\tKIND\tDEBUGGABLE")
	for _, info := range infos {
		kind := "scalar"
		if info.IsTable {
			kind = "table"
		}
		params := make([]string, len(info.Params))
		for i, p := range info.Params {
			params[i] = p.Name + " " + p.Type
		}
		mark := "[ ]"
		if c.Project.Has(info.Name) {
			mark = "[x]" // already imported
		}
		debuggable := "yes"
		if !devudf.LanguageDebuggable(info.Language) {
			debuggable = "no"
		}
		fmt.Fprintf(tw, "  %s\t%s(%s)\t%s\t%s\t%s\n",
			mark, info.Name, strings.Join(params, ", "), languageName(info.Language), kind, debuggable)
	}
	return tw.Flush()
}

// languageName normalizes a catalog language for display (one shared rule:
// udfrt.Canonical).
func languageName(lang string) string { return udfrt.Canonical(lang) }

func cmdImport(ctx context.Context, fs core.FS, args []string) error {
	flags := flag.NewFlagSet("import", flag.ExitOnError)
	all := flags.Bool("all", false, "import all functions stored in the server")
	language := flags.String("language", "", "only import UDFs of this language (PYTHON, GO, ...)")
	if err := flags.Parse(args); err != nil {
		return err
	}
	c, _, err := connect(ctx, fs)
	if err != nil {
		return err
	}
	defer c.Close()
	names := flags.Args()
	var infos []devudf.UDFInfo
	if *all || *language != "" {
		// one catalog snapshot serves both the -all expansion and the
		// -language filter
		if infos, err = c.ListServerUDFs(ctx); err != nil {
			return err
		}
	}
	if *all {
		names = names[:0]
		for _, info := range infos {
			names = append(names, info.Name)
		}
	} else if len(names) == 0 {
		return fmt.Errorf("specify UDF names or -all")
	}
	if *language != "" {
		names = filterByLanguage(infos, names, *language)
		if len(names) == 0 {
			fmt.Printf("no matching UDFs with language %s\n", languageName(*language))
			return nil
		}
	}
	imported, err := c.ImportUDFs(ctx, names...)
	if err != nil {
		return err
	}
	for _, name := range imported {
		fmt.Printf("imported %s -> %s\n", name, c.Project.ScriptPath(name))
	}
	return nil
}

// filterByLanguage keeps the named UDFs whose LANGUAGE matches
// (case-insensitive; names missing from the catalog are kept so the import
// reports them).
func filterByLanguage(infos []devudf.UDFInfo, names []string, language string) []string {
	langOf := map[string]string{}
	for _, info := range infos {
		langOf[strings.ToLower(info.Name)] = languageName(info.Language)
	}
	want := languageName(language)
	var out []string
	for _, name := range names {
		if lang, ok := langOf[strings.ToLower(name)]; !ok || lang == want {
			out = append(out, name)
		}
	}
	return out
}

func cmdExport(ctx context.Context, fs core.FS, args []string) error {
	flags := flag.NewFlagSet("export", flag.ExitOnError)
	all := flags.Bool("all", false, "export every project UDF")
	language := flags.String("language", "", "only export project UDFs of this language (PYTHON, GO, ...)")
	if err := flags.Parse(args); err != nil {
		return err
	}
	c, _, err := connect(ctx, fs)
	if err != nil {
		return err
	}
	defer c.Close()
	names := flags.Args()
	if *all {
		names, err = c.Project.List()
		if err != nil {
			return err
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("specify UDF names or -all")
	}
	if *language != "" {
		want := languageName(*language)
		kept := names[:0]
		for _, name := range names {
			info, _, err := c.Project.LoadUDF(name)
			if err != nil {
				return err
			}
			if languageName(info.Language) == want {
				kept = append(kept, name)
			}
		}
		names = kept
		if len(names) == 0 {
			fmt.Printf("no project UDFs with language %s\n", want)
			return nil
		}
	}
	if err := c.ExportUDFs(ctx, names...); err != nil {
		return err
	}
	fmt.Printf("exported %s back to the server\n", strings.Join(names, ", "))
	return nil
}

func cmdExtract(ctx context.Context, fs core.FS, args []string) error {
	flags := flag.NewFlagSet("extract", flag.ExitOnError)
	udf := flags.String("udf", "", "UDF to extract input data for")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if *udf == "" {
		return fmt.Errorf("-udf is required")
	}
	c, _, err := connect(ctx, fs)
	if err != nil {
		return err
	}
	defer c.Close()
	info, err := c.ExtractInputs(ctx, *udf)
	if err != nil {
		return err
	}
	fmt.Printf("extracted inputs for %s: %d of %d rows, %d payload bytes (compressed=%v encrypted=%v) -> %s\n",
		info.UDF, info.SampleRows, info.TotalRows, info.PayloadBytes,
		info.Compressed, info.Encrypted, c.Project.InputPath(info.UDF))
	return nil
}

func cmdRun(ctx context.Context, fs core.FS, args []string) error {
	flags := flag.NewFlagSet("run", flag.ExitOnError)
	udf := flags.String("udf", "", "UDF to run locally")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if *udf == "" {
		return fmt.Errorf("-udf is required")
	}
	c, _, err := connect(ctx, fs)
	if err != nil {
		return err
	}
	defer c.Close()
	res, err := c.RunLocal(ctx, *udf)
	if res != nil && res.Stdout != "" {
		fmt.Print(res.Stdout)
	}
	if err != nil {
		return err
	}
	fmt.Printf("result: %s (%d interpreter steps)\n", res.Value.Repr(), res.Steps)
	return nil
}

// cmdQuery runs one SQL statement on the server. -param values are SQL
// literals bound (typed, in order) to the statement's `?`/`$n`
// placeholders through the prepared-statement path; without params the
// text runs directly.
func cmdQuery(ctx context.Context, fs core.FS, args []string) error {
	flags := flag.NewFlagSet("query", flag.ExitOnError)
	var params multiFlag
	flags.Var(&params, "param", "bind argument as a SQL literal (42, 4.2, 'text', true, null); repeatable")
	timeout := flags.Duration("timeout", 0, "deadline for the statement; on expiry the connection is severed and the server aborts the query (0: none)")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if flags.NArg() != 1 {
		return fmt.Errorf("usage: devudf query [-timeout D] [-param V ...] 'SQL'")
	}
	binds, err := sqlparse.ParseLiterals(params)
	if err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout) //ctxflow:edge per-command deadline
		defer cancel()
	}
	c, _, err := connect(ctx, fs)
	if err != nil {
		return err
	}
	defer c.Close()
	res, err := c.Query(ctx, flags.Arg(0), binds...)
	if err != nil {
		// Server-side cancellation is a clean, typed outcome: the query was
		// stopped and the session stayed consistent. Anything else after the
		// deadline fired is the connection being severed mid-flight.
		if core.IsCancelled(err) {
			return fmt.Errorf("query cancelled by server: %w", err)
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return fmt.Errorf("query abandoned after %v (connection severed): %w", *timeout, err)
		}
		return err
	}
	if res.Table != nil {
		printResult(os.Stdout, res.Table)
	}
	fmt.Println(res.Tag)
	return nil
}

// printResult renders a result set as an aligned table.
func printResult(w io.Writer, t *storage.Table) {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	header := make([]string, len(t.Cols))
	for i, col := range t.Cols {
		header[i] = col.Name
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for r := 0; r < t.NumRows(); r++ {
		row := make([]string, len(t.Cols))
		for i, col := range t.Cols {
			row[i] = col.FormatValue(r)
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
}

func cmdDebug(ctx context.Context, fs core.FS, args []string) error {
	flags := flag.NewFlagSet("debug", flag.ExitOnError)
	udf := flags.String("udf", "", "UDF to debug")
	remote := flags.Bool("remote", false,
		"attach to the UDF executing inside the server (wire v2 debug sub-protocol) instead of running it locally")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if *udf == "" {
		return fmt.Errorf("-udf is required")
	}
	c, _, err := connect(ctx, fs)
	if err != nil {
		return err
	}
	defer c.Close()
	if *remote {
		sess, err := c.NewRemoteDebugSession(ctx, *udf, true)
		if err != nil {
			return err
		}
		defer sess.Close()
		return debugREPL(sess, os.Stdin, os.Stdout)
	}
	sess, err := c.NewDebugSession(ctx, *udf, true)
	if err != nil {
		return err
	}
	return debugREPL(newLocalDriver(sess), os.Stdin, os.Stdout)
}

// debugDriver is the REPL's view of a debug session: the local in-process
// debugger and the remote in-server one drive the same interactive loop.
// devudf.RemoteDebugSession implements it directly; localDriver adapts
// devudf.DebugSession.
type debugDriver interface {
	SetBreakpoint(line int, condition string) error
	Breakpoints() []debug.Breakpoint
	Source() []string
	Start() (devudf.DebugEvent, error)
	Continue() (devudf.DebugEvent, error)
	StepOver() (devudf.DebugEvent, error)
	StepInto() (devudf.DebugEvent, error)
	StepOut() (devudf.DebugEvent, error)
	Kill() (devudf.DebugEvent, error)
	Eval(expr string) (string, error)
	Locals() (map[string]string, error)
	Stack() ([]debug.FrameInfo, error)
}

// localDriver adapts the in-process DebugSession to the driver surface
// (values rendered to their repr, errors folded into events).
type localDriver struct{ sess *devudf.DebugSession }

func newLocalDriver(sess *devudf.DebugSession) debugDriver { return localDriver{sess} }

func (d localDriver) SetBreakpoint(line int, condition string) error {
	d.sess.SetBreakpoint(line, condition)
	return nil
}
func (d localDriver) Breakpoints() []debug.Breakpoint      { return d.sess.Breakpoints() }
func (d localDriver) Source() []string                     { return d.sess.Source() }
func (d localDriver) Start() (devudf.DebugEvent, error)    { return d.sess.Start(), nil }
func (d localDriver) Continue() (devudf.DebugEvent, error) { return d.sess.Continue(), nil }
func (d localDriver) StepOver() (devudf.DebugEvent, error) { return d.sess.StepOver(), nil }
func (d localDriver) StepInto() (devudf.DebugEvent, error) { return d.sess.StepInto(), nil }
func (d localDriver) StepOut() (devudf.DebugEvent, error)  { return d.sess.StepOut(), nil }
func (d localDriver) Kill() (devudf.DebugEvent, error)     { return d.sess.Kill(), nil }
func (d localDriver) Eval(expr string) (string, error) {
	v, err := d.sess.Eval(expr)
	if err != nil {
		return "", err
	}
	return v.Repr(), nil
}
func (d localDriver) Locals() (map[string]string, error) {
	vars, err := d.sess.Locals()
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(vars))
	for k, v := range vars {
		out[k] = v.Repr()
	}
	return out, nil
}
func (d localDriver) Stack() ([]debug.FrameInfo, error) { return d.sess.Stack() }

// debugREPL drives a debug session with gdb-like commands.
func debugREPL(sess debugDriver, input io.Reader, out io.Writer) error {
	fmt.Fprintln(out, `devUDF debugger. Commands:
  b LINE [COND]   set breakpoint      c  continue        n  step over
  s  step into    o  step out         p EXPR  evaluate   locals
  stack           list                q  quit`)
	started := false
	report := func(ev devudf.DebugEvent, err error) bool {
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		if ev.Terminal {
			if ev.Err != nil {
				fmt.Fprintln(out, "program failed:", ev.Err)
			} else {
				fmt.Fprintf(out, "program finished (%s)\n", ev.Reason)
			}
			return true
		}
		src := sess.Source()
		lineText := ""
		if ev.Line-1 >= 0 && ev.Line-1 < len(src) {
			lineText = strings.TrimRight(src[ev.Line-1], " \t")
		}
		fmt.Fprintf(out, "stopped (%s) at %s:%d\n  %4d | %s\n", ev.Reason, ev.FuncName, ev.Line, ev.Line, lineText)
		return false
	}
	sc := bufio.NewScanner(input)
	fmt.Fprint(out, "(devudf) ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Fprint(out, "(devudf) ")
			continue
		}
		switch fields[0] {
		case "q", "quit":
			if started {
				_, _ = sess.Kill()
			}
			return nil
		case "b", "break":
			if len(fields) < 2 {
				fmt.Fprintln(out, "usage: b LINE [CONDITION]")
				break
			}
			line, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Fprintln(out, "bad line number")
				break
			}
			if err := sess.SetBreakpoint(line, strings.Join(fields[2:], " ")); err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintf(out, "breakpoint set at line %d\n", line)
		case "c", "continue", "r", "run":
			if done := stepCmd(sess, &started, sess.Continue, report); done {
				return nil
			}
		case "n", "next":
			if done := stepCmd(sess, &started, sess.StepOver, report); done {
				return nil
			}
		case "s", "step":
			if done := stepCmd(sess, &started, sess.StepInto, report); done {
				return nil
			}
		case "o", "out":
			if done := stepCmd(sess, &started, sess.StepOut, report); done {
				return nil
			}
		case "p", "print":
			if !started {
				fmt.Fprintln(out, "not running (use c to start)")
				break
			}
			v, err := sess.Eval(strings.Join(fields[1:], " "))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintln(out, v)
		case "locals":
			if !started {
				fmt.Fprintln(out, "not running (use c to start)")
				break
			}
			vars, err := sess.Locals()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			names := make([]string, 0, len(vars))
			for n := range vars {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Fprintf(out, "  %s = %s\n", n, vars[n])
			}
		case "stack":
			if !started {
				fmt.Fprintln(out, "not running (use c to start)")
				break
			}
			frames, err := sess.Stack()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			for i, f := range frames {
				fmt.Fprintf(out, "  #%d %s at line %d\n", i, f.FuncName, f.Line)
			}
		case "list", "l":
			for i, ln := range sess.Source() {
				marks := " "
				for _, bp := range sess.Breakpoints() {
					if bp.Line == i+1 {
						marks = "*"
					}
				}
				fmt.Fprintf(out, "%s%4d | %s\n", marks, i+1, ln)
			}
		default:
			fmt.Fprintf(out, "unknown command %q\n", fields[0])
		}
		fmt.Fprint(out, "(devudf) ")
	}
	if started {
		_, _ = sess.Kill()
	}
	return sc.Err()
}

func stepCmd(sess debugDriver, started *bool,
	step func() (devudf.DebugEvent, error), report func(devudf.DebugEvent, error) bool) bool {
	if !*started {
		*started = true
		return report(sess.Start())
	}
	return report(step())
}

func cmdVCS(fs core.FS, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: devudf vcs init|commit -m MSG|log|diff A B")
	}
	settings, err := devudf.LoadSettings(fs)
	if err != nil {
		return err
	}
	project := devudf.OpenProject(fs, settings.ProjectDir)
	switch args[0] {
	case "init":
		if _, err := project.InitVCS(); err != nil {
			return err
		}
		fmt.Println("initialized project repository")
		return nil
	case "commit":
		flags := flag.NewFlagSet("commit", flag.ExitOnError)
		msg := flags.String("m", "", "commit message")
		author := flags.String("author", "devudf", "author")
		if err := flags.Parse(args[1:]); err != nil {
			return err
		}
		if *msg == "" {
			return fmt.Errorf("-m is required")
		}
		hash, err := project.Commit(*author, *msg)
		if err != nil {
			return err
		}
		fmt.Println("committed", hash)
		return nil
	case "log":
		repo, err := project.OpenVCS()
		if err != nil {
			return err
		}
		log, err := repo.Log()
		if err != nil {
			return err
		}
		for _, ci := range log {
			fmt.Printf("%s  #%d  %s  %s\n", ci.Hash, ci.Seq, ci.Author, ci.Message)
		}
		return nil
	case "diff":
		repo, err := project.OpenVCS()
		if err != nil {
			return err
		}
		a, b := "", ""
		if len(args) >= 3 {
			a, b = args[1], args[2]
		}
		diff, err := repo.Diff(a, b)
		if err != nil {
			return err
		}
		for _, d := range diff {
			fmt.Printf("%s %s\n", d.Status, d.Path)
			for _, ln := range d.Lines {
				fmt.Println("  " + ln)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown vcs subcommand %q", args[0])
	}
}
