package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// TestE2EWorkflowGolden drives the CLI verbs end to end against an
// in-process monetlited — the paper's Fig. 2 workflow in one test:
// settings → list → import → extract → run → debug (local) →
// debug -remote (in-server) → export — and compares the full normalized
// transcript against a golden file. Regenerate with:
//
//	E2E_GOLDEN_UPDATE=1 go test -run TestE2EWorkflowGolden ./cmd/devudf
func TestE2EWorkflowGolden(t *testing.T) {
	fx, err := bench.StartServer(
		`CREATE TABLE numbers (i INTEGER)`,
		`INSERT INTO numbers VALUES (1), (2), (3), (4), (100)`,
		bench.MeanDeviationBuggy,
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fx.Close()
	fs := core.NewMemFS(nil)
	ctx := context.Background()
	port := strconv.Itoa(fx.Params.Port)

	var transcript strings.Builder
	step := func(name string, stdin string, fn func() error) {
		t.Helper()
		transcript.WriteString("==== " + name + " ====\n")
		out := captureOutput(t, stdin, fn)
		transcript.WriteString(out)
	}

	step("settings", "", func() error {
		return cmdSettings(fs, []string{
			"-set", "host=" + fx.Params.Host,
			"-set", "port=" + port,
			"-set", "database=demo",
			"-set", "user=monetdb",
			"-set", "password=monetdb",
			"-set", "query=SELECT mean_deviation(i) FROM numbers",
		})
	})
	step("list", "", func() error { return cmdList(ctx, fs) })
	step("import", "", func() error { return cmdImport(ctx, fs, []string{"mean_deviation"}) })
	step("extract", "", func() error { return cmdExtract(ctx, fs, []string{"-udf", "mean_deviation"}) })
	step("run", "", func() error { return cmdRun(ctx, fs, []string{"-udf", "mean_deviation"}) })

	// Local debugging of the imported script: the accumulation line of the
	// generated wrapper; found dynamically, asserted below, normalized in
	// the transcript only through the scripted commands.
	src, err := loadUDFSource(fs)
	if err != nil {
		t.Fatal(err)
	}
	bpLine := 0
	for i, ln := range strings.Split(src, "\n") {
		if strings.Contains(ln, "distance += column[i] - mean") {
			bpLine = i + 1
		}
	}
	if bpLine == 0 {
		t.Fatalf("generated script lost the accumulation line:\n%s", src)
	}
	localScript := strings.Join([]string{
		"b " + strconv.Itoa(bpLine) + " i == 3",
		"c", // start: stop on entry
		"c", // run to the conditional breakpoint
		"p distance",
		"locals",
		"stack",
		"n",
		"q",
	}, "\n") + "\n"
	step("debug", localScript, func() error {
		return cmdDebug(ctx, fs, []string{"-udf", "mean_deviation"})
	})

	// Remote debugging: same UDF, executing inside the server. Line 8 of
	// the server-side wrapper is the same accumulation statement.
	remoteScript := strings.Join([]string{
		"c", // start: stop on entry
		"b 8 i == 2",
		"c",
		"p distance",
		"locals",
		"stack",
		"n",
		"c",
	}, "\n") + "\n"
	step("debug -remote", remoteScript, func() error {
		return cmdDebug(ctx, fs, []string{"-udf", "mean_deviation", "-remote"})
	})

	step("export", "", func() error { return cmdExport(ctx, fs, []string{"mean_deviation"}) })

	// Parameterized run: one -param literal bound (twice) through the
	// prepared-statement path over wire v2.
	step("query -param", "", func() error {
		return cmdQuery(ctx, fs, []string{
			"-param", "2",
			"SELECT i, i * $1 AS scaled FROM numbers WHERE i < $1 + 3",
		})
	})

	got := strings.ReplaceAll(transcript.String(), port, "PORT")
	got = strings.ReplaceAll(got, "b "+strconv.Itoa(bpLine), "b LINE")
	got = strings.ReplaceAll(got, "line "+strconv.Itoa(bpLine), "line LINE")
	got = strings.ReplaceAll(got, ":"+strconv.Itoa(bpLine), ":LINE")
	got = strings.ReplaceAll(got, strconv.Itoa(bpLine)+" | ", "LINE | ")

	golden := filepath.Join("testdata", "e2e_golden.txt")
	if os.Getenv("E2E_GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with E2E_GOLDEN_UPDATE=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("e2e transcript drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

// loadUDFSource reads the imported script through the same fs the CLI used.
func loadUDFSource(fs core.FS) (string, error) {
	data, err := fs.ReadFile("udfproject/mean_deviation.py")
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// captureOutput runs fn with os.Stdout (and optionally os.Stdin) redirected
// through pipes and returns everything written.
func captureOutput(t *testing.T, stdin string, fn func() error) string {
	t.Helper()
	oldOut := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var oldIn *os.File
	if stdin != "" {
		oldIn = os.Stdin
		ir, iw, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdin = ir
		go func() {
			io.WriteString(iw, stdin)
			iw.Close()
		}()
	}
	outCh := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		outCh <- string(data)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = oldOut
	if oldIn != nil {
		os.Stdin = oldIn
	}
	out := <-outCh
	if ferr != nil {
		t.Fatalf("step failed: %v\noutput so far:\n%s", ferr, out)
	}
	return out
}
