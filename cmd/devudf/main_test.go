package main

import (
	"context"
	"strings"
	"testing"

	"repro/devudf"
	"repro/internal/bench"
	"repro/internal/core"
)

func TestPrintMenuGolden(t *testing.T) {
	var sb strings.Builder
	printMenu(&sb)
	want := `Main Menu
└── UDF Development
    ├── Settings...            (connection, debug query, transfer options)
    ├── Import UDFs...         (fetch UDFs from the database server)
    └── Export UDFs...         (commit edited UDFs back to the server)
`
	if sb.String() != want {
		t.Fatalf("menu drifted:\n%s", sb.String())
	}
}

func TestApplySetting(t *testing.T) {
	s := devudf.DefaultSettings()
	good := map[string]string{
		"host": "db.example.com", "port": "50123", "database": "prod",
		"user": "alice", "password": "s3cret",
		"query": "SELECT f(i) FROM t", "project": "work",
		"compress": "true", "encrypt": "1", "sample": "5000", "seed": "-3",
	}
	for k, v := range good {
		if err := applySetting(&s, k, v); err != nil {
			t.Fatalf("applySetting(%s=%s): %v", k, v, err)
		}
	}
	if s.Connection.Port != 50123 || !s.Transfer.Compress || !s.Transfer.Encrypt ||
		s.Transfer.SampleSize != 5000 || s.Transfer.Seed != -3 || s.ProjectDir != "work" {
		t.Fatalf("settings not applied: %+v", s)
	}
	for _, bad := range []string{"port=abc", "sample=x", "seed=?", "color=red"} {
		k, v, _ := strings.Cut(bad, "=")
		if err := applySetting(&s, k, v); err == nil {
			t.Errorf("applySetting(%s) should fail", bad)
		}
	}
}

// TestDebugREPLScripted drives the CLI debugger with a scripted session
// over the paper's buggy mean_deviation: set a breakpoint, run, inspect,
// step, continue to completion.
func TestDebugREPLScripted(t *testing.T) {
	fx, err := bench.StartServer(
		`CREATE TABLE numbers (i INTEGER)`,
		`INSERT INTO numbers VALUES (1), (2), (3), (4), (100)`,
		bench.MeanDeviationBuggy,
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fx.Close()
	settings := devudf.DefaultSettings()
	settings.Connection = fx.Params
	settings.DebugQuery = `SELECT mean_deviation(i) FROM numbers`
	client, err := devudf.Open(context.Background(), settings, devudf.WithFS(core.NewMemFS(nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.ImportUDFs(context.Background(), "mean_deviation"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ExtractInputs(context.Background(), "mean_deviation"); err != nil {
		t.Fatal(err)
	}
	sess, err := client.NewDebugSession(context.Background(), "mean_deviation", false)
	if err != nil {
		t.Fatal(err)
	}
	// find the buggy line in the generated script
	src, _ := client.Project.LoadUDFSource("mean_deviation")
	line := 0
	for i, ln := range strings.Split(src, "\n") {
		if strings.Contains(ln, "distance += column[i] - mean") {
			line = i + 1
		}
	}
	script := strings.Join([]string{
		"list",
		"b " + itoa(line) + " i == 3",
		"c",
		"p distance",
		"locals",
		"stack",
		"n",
		"c",
		"q",
	}, "\n")
	var out strings.Builder
	if err := debugREPL(newLocalDriver(sess), strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"breakpoint set at line " + itoa(line),
		"stopped (breakpoint)",
		"-60.0",            // distance after i==3 iterations
		"mean_deviation",   // stack frame
		"program finished", // terminal event
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("REPL output missing %q:\n%s", want, got)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestDebugREPLQuitBeforeStart(t *testing.T) {
	fx, err := bench.StartServer(bench.MeanDeviationBuggy)
	if err != nil {
		t.Fatal(err)
	}
	defer fx.Close()
	settings := devudf.DefaultSettings()
	settings.Connection = fx.Params
	client, err := devudf.Open(context.Background(), settings, devudf.WithFS(core.NewMemFS(nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.ImportUDFs(context.Background(), "mean_deviation"); err != nil {
		t.Fatal(err)
	}
	sess, err := client.NewDebugSession(context.Background(), "mean_deviation", false)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := debugREPL(newLocalDriver(sess), strings.NewReader("p x\nlocals\nq\n"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "not running") {
		t.Fatalf("inspection before start should say so:\n%s", out.String())
	}
}
