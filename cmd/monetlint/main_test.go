package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFindModule(t *testing.T) {
	dir, path, err := findModule()
	if err != nil {
		t.Fatal(err)
	}
	if path != "repro" {
		t.Errorf("module path = %q, want repro", path)
	}
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
		t.Errorf("module dir %s has no go.mod: %v", dir, err)
	}
}

func TestFindModuleMissing(t *testing.T) {
	t.Chdir(t.TempDir())
	if _, _, err := findModule(); err == nil {
		t.Fatal("expected an error outside any module")
	}
}

func TestLanguageVersion(t *testing.T) {
	cases := map[string]string{
		"go1.24.0":       "go1.24",
		"go1.24":         "go1.24",
		"go1.22.11":      "go1.22",
		"":               "",
		"devel +abcdef":  "",
		"weird-go1.24.0": "",
	}
	for in, want := range cases {
		if got := languageVersion(in); got != want {
			t.Errorf("languageVersion(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompilerFor(t *testing.T) {
	if got := compilerFor(""); got != "gc" {
		t.Errorf("compilerFor(\"\") = %q", got)
	}
	if got := compilerFor("gccgo"); got != "gccgo" {
		t.Errorf("compilerFor(gccgo) = %q", got)
	}
}

func TestStablePath(t *testing.T) {
	p1, err := stablePath()
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(p1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode()&0o100 == 0 {
		t.Errorf("%s is not executable: %v", p1, info.Mode())
	}
	// Content-addressed: a second call returns the same path.
	p2, err := stablePath()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("stablePath not stable: %s vs %s", p1, p2)
	}
}

func TestPrintDiagsText(t *testing.T) {
	var buf bytes.Buffer
	printDiags(&buf, false, "repro/internal/wire", map[string][]diagJSON{
		"errwrap": {{Posn: "wire.go:10:2", Message: "broken chain"}},
	})
	got := buf.String()
	if !strings.Contains(got, "wire.go:10:2: broken chain [errwrap]") {
		t.Errorf("text output = %q", got)
	}
}

func TestPrintDiagsJSON(t *testing.T) {
	var buf bytes.Buffer
	printDiags(&buf, true, "repro/internal/wire", map[string][]diagJSON{
		"errwrap": {{Posn: "wire.go:10:2", Message: "broken chain"}},
	})
	var out map[string]map[string][]diagJSON
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	ds := out["repro/internal/wire"]["errwrap"]
	if len(ds) != 1 || ds[0].Message != "broken chain" {
		t.Errorf("JSON round trip = %+v", out)
	}
}

func TestVersionFlagInterface(t *testing.T) {
	var v versionFlag
	if !v.IsBoolFlag() || v.String() != "" || v.Get() != nil {
		t.Error("versionFlag does not satisfy the cmd/go flag contract")
	}
	if err := v.Set("short"); err == nil {
		t.Error("Set(short) should be rejected")
	}
}

// TestRunUnitClean drives the unitchecker path end to end on a synthetic
// dependency-free unit: parse, typecheck, facts file, no findings.
func TestRunUnitClean(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "u.go")
	if err := os.WriteFile(src, []byte("package u\n\nfunc F() int { return 1 }\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "u.vetx")
	cfg := unitConfig{
		ID:         "u",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "example/u",
		GoVersion:  "go1.24.0",
		GoFiles:    []string{src},
		VetxOutput: vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "u.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	runUnit(cfgPath, nil, options{})
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file was not written: %v", err)
	}
}

func TestRunUnitVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "v.vetx")
	cfg := unitConfig{ID: "v", VetxOnly: true, VetxOutput: vetx}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "v.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	runUnit(cfgPath, nil, options{})
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file was not written in VetxOnly mode: %v", err)
	}
}

func TestSummaryLine(t *testing.T) {
	got := summaryLine(map[string]int{"errkind": 3, "goleak": 1, "quiet": 0})
	want := "monetlint: 4 findings (errkind:3 goleak:1)"
	if got != want {
		t.Errorf("summaryLine = %q, want %q", got, want)
	}
	if got := summaryLine(map[string]int{"poolescape": 1}); got != "monetlint: 1 finding (poolescape:1)" {
		t.Errorf("singular summaryLine = %q", got)
	}
}

func TestPrintTimingJSON(t *testing.T) {
	var buf bytes.Buffer
	printTiming(&buf, true, map[string]time.Duration{
		"errkind": 1500 * time.Microsecond,
		"goleak":  250 * time.Microsecond,
	})
	var out map[string]map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	if out["timing"]["errkind"] != 1.5 {
		t.Errorf("timing JSON = %+v", out)
	}
}

func TestResolveImportPath(t *testing.T) {
	modDir, modPath, err := findModule()
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(modDir) // patterns resolve relative to the working directory
	cases := []struct{ pat, want string }{
		{".", modPath},
		{"./internal/wire", modPath + "/internal/wire"},
		{modPath + "/internal/engine", modPath + "/internal/engine"},
	}
	for _, c := range cases {
		if got := resolveImportPath(c.pat, modDir, modPath); got != c.want {
			t.Errorf("resolveImportPath(%q) = %q, want %q", c.pat, got, c.want)
		}
	}
}
