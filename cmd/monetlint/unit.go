package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"regexp"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// unitConfig is the JSON the go command writes for each vet unit — the
// contract of golang.org/x/tools/go/analysis/unitchecker, which this file
// reimplements over the stdlib gc-export-data importer.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one vet unit described by cfgPath. Exit codes follow
// unitchecker: 0 clean, 1 operational failure, 2 diagnostics reported.
func runUnit(cfgPath string, analyzers []*analysis.Analyzer, jsonOut bool) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalUnit("%v", err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalUnit("parsing %s: %v", cfgPath, err)
	}
	// monetlint carries no cross-package facts, but the go command expects
	// every unit to produce its facts file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalUnit("%v", err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatalUnit("%v", err)
		}
		files = append(files, f)
	}

	imp := &unitImporter{fset: fset, cfg: &cfg}
	imp.gc = importer.ForCompiler(fset, compilerFor(cfg.Compiler), imp.lookup)
	info := load.NewInfo()
	tconf := types.Config{
		Importer:  imp,
		GoVersion: languageVersion(cfg.GoVersion),
		Error:     func(error) {}, // collect silently; first error returned by Check
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalUnit("typecheck %s: %v", cfg.ImportPath, err)
	}

	lp := &load.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Files: files, Types: pkg, Info: info}
	if n := runAnalyzers(fset, lp, analyzers, jsonOut); n > 0 {
		os.Exit(2)
	}
}

func fatalUnit(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "monetlint: "+format+"\n", args...)
	os.Exit(1)
}

// compilerFor maps the unit's compiler to one the stdlib importer knows.
func compilerFor(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

var goMinor = regexp.MustCompile(`^go\d+\.\d+`)

// languageVersion trims a toolchain version ("go1.24.0") to the language
// version go/types accepts ("go1.24").
func languageVersion(v string) string {
	if m := goMinor.FindString(v); m != "" {
		return m
	}
	return ""
}

// unitImporter resolves imports through the export data files the go
// command listed in the unit config.
type unitImporter struct {
	fset *token.FileSet
	cfg  *unitConfig
	gc   types.Importer
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.gc.Import(path)
}

func (u *unitImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return u.Import(path)
}

// lookup feeds the gc importer the export data file for an import path,
// mapping through the unit's ImportMap (vendoring, test variants).
func (u *unitImporter) lookup(path string) (io.ReadCloser, error) {
	if canon, ok := u.cfg.ImportMap[path]; ok {
		path = canon
	}
	file, ok := u.cfg.PackageFile[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q in vet unit %s", path, u.cfg.ID)
	}
	return os.Open(file)
}
