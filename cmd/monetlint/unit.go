package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"regexp"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// unitConfig is the JSON the go command writes for each vet unit — the
// contract of golang.org/x/tools/go/analysis/unitchecker, which this file
// reimplements over the stdlib gc-export-data importer.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one vet unit described by cfgPath. Exit codes follow
// unitchecker: 0 clean, 1 operational failure, 2 diagnostics reported.
//
// Facts: the unit's imports each come with a .vetx file (PackageVetx)
// holding the facts their own analysis exported; those are merged into
// one store before analysis, and the full store — imported facts
// included, for transitivity — is written to VetxOutput afterward. Units
// marked VetxOnly (dependencies outside the vet pattern) are typechecked
// and run through the fact-declaring analyzers only, diagnostics
// discarded.
func runUnit(cfgPath string, analyzers []*analysis.Analyzer, opts options) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalUnit("%v", err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalUnit("parsing %s: %v", cfgPath, err)
	}

	analysis.RegisterFactTypes(analyzers)
	facts := analysis.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		fdata, err := os.ReadFile(vetx)
		if err != nil {
			fatalUnit("%v", err)
		}
		if err := facts.Decode(fdata); err != nil {
			fatalUnit("%s: %v", vetx, err)
		}
	}
	writeVetx := func() {
		if cfg.VetxOutput == "" {
			return
		}
		out, err := facts.Encode()
		if err != nil {
			fatalUnit("%v", err)
		}
		if err := os.WriteFile(cfg.VetxOutput, out, 0o666); err != nil {
			fatalUnit("%v", err)
		}
	}

	if cfg.VetxOnly {
		analyzers = withFacts(analyzers)
		// Standard-library units cannot carry monetlint facts (the suite's
		// fact producers all key off repro types and directives), so skip
		// the typecheck and just thread the imported facts through.
		if len(analyzers) == 0 || cfg.Standard[cfg.ImportPath] {
			writeVetx()
			return
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return
			}
			fatalUnit("%v", err)
		}
		files = append(files, f)
	}

	imp := &unitImporter{fset: fset, cfg: &cfg}
	imp.gc = importer.ForCompiler(fset, compilerFor(cfg.Compiler), imp.lookup)
	info := load.NewInfo()
	tconf := types.Config{
		Importer:  imp,
		GoVersion: languageVersion(cfg.GoVersion),
		Error:     func(error) {}, // collect silently; first error returned by Check
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		fatalUnit("typecheck %s: %v", cfg.ImportPath, err)
	}

	lp := &load.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Files: files, Types: pkg, Info: info}
	r := &runner{
		fset:   fset,
		facts:  facts,
		opts:   opts,
		counts: map[string]int{},
		times:  map[string]time.Duration{},
	}
	n := r.run(lp, analyzers, !cfg.VetxOnly)
	writeVetx()
	if opts.timing {
		printTiming(os.Stdout, opts.jsonOut, r.times)
	}
	if n > 0 {
		fmt.Fprintln(os.Stderr, summaryLine(r.counts))
		os.Exit(2)
	}
}

func fatalUnit(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "monetlint: "+format+"\n", args...)
	os.Exit(1)
}

// compilerFor maps the unit's compiler to one the stdlib importer knows.
func compilerFor(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

var goMinor = regexp.MustCompile(`^go\d+\.\d+`)

// languageVersion trims a toolchain version ("go1.24.0") to the language
// version go/types accepts ("go1.24").
func languageVersion(v string) string {
	if m := goMinor.FindString(v); m != "" {
		return m
	}
	return ""
}

// unitImporter resolves imports through the export data files the go
// command listed in the unit config.
type unitImporter struct {
	fset *token.FileSet
	cfg  *unitConfig
	gc   types.Importer
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.gc.Import(path)
}

func (u *unitImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return u.Import(path)
}

// lookup feeds the gc importer the export data file for an import path,
// mapping through the unit's ImportMap (vendoring, test variants).
func (u *unitImporter) lookup(path string) (io.ReadCloser, error) {
	if canon, ok := u.cfg.ImportMap[path]; ok {
		path = canon
	}
	file, ok := u.cfg.PackageFile[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q in vet unit %s", path, u.cfg.ID)
	}
	return os.Open(file)
}
