// Command monetlint runs the repo's static-analysis suite
// (internal/analysis/suite) over the module. It supports two modes:
//
//	monetlint ./...                     standalone: loads packages from
//	                                    source and prints findings
//	go vet -vettool=<monetlint> ./...   vet tool: speaks the cmd/go
//	                                    unitchecker protocol (-V=full,
//	                                    -flags, a single *.cfg argument)
//	                                    and typechecks from the export
//	                                    data the go command hands it
//
// Because `go run` deletes its binary on exit, -print-path copies the
// running executable to a stable temp location and prints that path, so
//
//	go vet -vettool=$(go run ./cmd/monetlint -print-path) ./...
//
// works as documented in the README.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	log := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "monetlint: "+format+"\n", args...)
		os.Exit(1)
	}

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: monetlint [flags] [package pattern | unit.cfg]\n\nAnalyzers:\n")
		for _, a := range suite.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		flag.PrintDefaults()
	}
	flag.Var(versionFlag{}, "V", "print version and exit (cmd/go tool protocol)")
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON (cmd/go tool protocol)")
	printPath := flag.Bool("print-path", false, "copy this executable to a stable path and print it (for -vettool)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	timing := flag.Bool("timing", false, "report per-analyzer wall time (JSON object with -json, stderr lines otherwise)")
	enabled := map[string]*bool{}
	for _, a := range suite.Analyzers() {
		enabled[a.Name] = flag.Bool(a.Name, false, "run only the "+a.Name+" analyzer (default: all)")
	}
	flag.Parse()

	switch {
	case *printFlags:
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		flag.VisitAll(func(f *flag.Flag) {
			if f.Name == "V" || f.Name == "flags" || f.Name == "print-path" {
				return
			}
			out = append(out, jsonFlag{Name: f.Name, Bool: true, Usage: f.Usage})
		})
		data, err := json.Marshal(out)
		if err != nil {
			log("%v", err)
		}
		os.Stdout.Write(data)
		return
	case *printPath:
		path, err := stablePath()
		if err != nil {
			log("%v", err)
		}
		fmt.Println(path)
		return
	}

	analyzers := suite.Analyzers()
	var picked []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			picked = append(picked, a)
		}
	}
	if len(picked) > 0 {
		analyzers = picked
	}

	opts := options{jsonOut: *jsonOut, timing: *timing}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], analyzers, opts)
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	runStandalone(args, analyzers, opts)
}

// versionFlag implements the cmd/go -V=full handshake: print a tool
// identity line whose buildID changes with the binary, so the go command
// can cache vet results keyed on the tool version.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" && s != "true" {
		return fmt.Errorf("unsupported: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	name := strings.TrimSuffix(filepath.Base(exe), ".exe")
	fmt.Printf("%s version devel buildID=%02x\n", name, sum[:16])
	os.Exit(0)
	return nil
}

// stablePath copies the running executable somewhere `go run` will not
// delete, named by content hash so a rebuilt tool gets a fresh path.
func stablePath() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	dest := filepath.Join(os.TempDir(), fmt.Sprintf("monetlint-%x", sum[:8]))
	if _, err := os.Stat(dest); err == nil {
		return dest, nil
	}
	tmp, err := os.CreateTemp(os.TempDir(), "monetlint-partial-*")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Chmod(tmp.Name(), 0o755); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), dest); err != nil {
		return "", err
	}
	return dest, nil
}

// printDiags renders diagnostics in the vet text format or, with -json,
// in the nested object form go vet -json expects.
func printDiags(w io.Writer, jsonOut bool, pkgPath string, byAnalyzer map[string][]diagJSON) {
	if jsonOut {
		out := map[string]map[string][]diagJSON{pkgPath: byAnalyzer}
		data, _ := json.MarshalIndent(out, "", "\t")
		fmt.Fprintf(w, "%s\n", data)
		return
	}
	for name, ds := range byAnalyzer {
		for _, d := range ds {
			fmt.Fprintf(w, "%s: %s [%s]\n", d.Posn, d.Message, name)
		}
	}
}

type diagJSON struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// printTiming renders per-analyzer wall time accumulated over the run:
// with -json a single {"timing": {analyzer: milliseconds}} object after
// the diagnostics, otherwise one stderr line per analyzer.
func printTiming(w io.Writer, jsonOut bool, times map[string]time.Duration) {
	names := make([]string, 0, len(times))
	for name := range times {
		names = append(names, name)
	}
	sort.Strings(names)
	if jsonOut {
		ms := make(map[string]float64, len(times))
		for name, d := range times {
			ms[name] = float64(d.Microseconds()) / 1000
		}
		data, _ := json.MarshalIndent(map[string]map[string]float64{"timing": ms}, "", "\t")
		fmt.Fprintf(w, "%s\n", data)
		return
	}
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "monetlint: timing: %-14s %s\n", name, times[name].Round(10*time.Microsecond))
	}
}
