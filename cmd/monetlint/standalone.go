package main

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// options carries the output flags shared by both driver modes.
type options struct {
	jsonOut bool
	timing  bool
}

// resolveImportPath maps a filesystem-relative pattern ("./internal/wire",
// ".") to its module import path; patterns already written as import paths
// pass through. Exits on paths outside the module.
func resolveImportPath(pat, modDir, modPath string) string {
	if !strings.HasPrefix(pat, "./") && pat != "." {
		return pat
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "monetlint: %v\n", err)
		os.Exit(1)
	}
	rel, err := filepath.Rel(modDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		fmt.Fprintf(os.Stderr, "monetlint: %s is outside module %s\n", pat, modPath)
		os.Exit(1)
	}
	if rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// runStandalone loads packages from source and applies the analyzers.
// Exits 2 if any diagnostics were reported, 1 on operational errors.
//
// Packages are analyzed in dependency order sharing one fact store:
// analyzers that declare FactTypes also run (silently) over module-local
// dependencies of the requested packages, so facts like "this engine
// function returns cancellable errors" are in place before the packages
// that need them are checked.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, opts options) {
	modDir, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "monetlint: %v\n", err)
		os.Exit(1)
	}
	loader := load.New(load.Config{ModulePath: modPath, ModuleDir: modDir})

	var paths []string
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := loader.ModulePackages()
			if err != nil {
				fmt.Fprintf(os.Stderr, "monetlint: %v\n", err)
				os.Exit(1)
			}
			paths = append(paths, all...)
		case strings.HasSuffix(pat, "/..."):
			// Subtree wildcard: every module package at or under the base.
			base := resolveImportPath(strings.TrimSuffix(pat, "/..."), modDir, modPath)
			all, err := loader.ModulePackages()
			if err != nil {
				fmt.Fprintf(os.Stderr, "monetlint: %v\n", err)
				os.Exit(1)
			}
			n := len(paths)
			for _, p := range all {
				if p == base || strings.HasPrefix(p, base+"/") {
					paths = append(paths, p)
				}
			}
			if len(paths) == n {
				fmt.Fprintf(os.Stderr, "monetlint: no packages match %s\n", pat)
				os.Exit(1)
			}
		case strings.HasPrefix(pat, "./"):
			paths = append(paths, resolveImportPath(pat, modDir, modPath))
		default:
			paths = append(paths, pat)
		}
	}

	analysis.RegisterFactTypes(analyzers)
	r := &runner{
		fset:   loader.Fset(),
		facts:  analysis.NewFactStore(),
		opts:   opts,
		counts: map[string]int{},
		times:  map[string]time.Duration{},
	}

	targets := map[string]bool{}
	for _, path := range paths {
		if _, err := loader.LoadPath(path); err != nil {
			fmt.Fprintf(os.Stderr, "monetlint: %v\n", err)
			os.Exit(1)
		}
		targets[path] = true
	}

	factAnalyzers := withFacts(analyzers)
	exit := 0
	for _, pkg := range depOrder(loader, paths) {
		if targets[pkg.Path] {
			if n := r.run(pkg, analyzers, true); n > 0 {
				exit = 2
			}
		} else if len(factAnalyzers) > 0 {
			// Dependency of a target: compute facts only.
			r.run(pkg, factAnalyzers, false)
		}
	}
	if opts.timing {
		printTiming(os.Stdout, opts.jsonOut, r.times)
	}
	if exit != 0 {
		fmt.Fprintln(os.Stderr, summaryLine(r.counts))
	}
	os.Exit(exit)
}

// withFacts filters analyzers to those declaring fact types.
func withFacts(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			out = append(out, a)
		}
	}
	return out
}

// depOrder returns the loader-cached packages reachable from the target
// paths, dependencies first. Only packages the loader typechecked from
// source appear (standard-library imports are excluded).
func depOrder(loader *load.Loader, targets []string) []*load.Package {
	var order []*load.Package
	seen := map[string]bool{}
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		if p == nil || seen[p.Path] {
			return
		}
		seen[p.Path] = true
		for _, imp := range p.Types.Imports() {
			visit(loader.Cached(imp.Path()))
		}
		order = append(order, p)
	}
	for _, t := range targets {
		visit(loader.Cached(t))
	}
	return order
}

// runner applies analyzers to packages, accumulating facts, per-analyzer
// diagnostic counts, and wall times across the whole run.
type runner struct {
	fset   *token.FileSet
	facts  *analysis.FactStore
	opts   options
	counts map[string]int
	times  map[string]time.Duration
}

// run applies the analyzers to one package. When report is false the
// package is being visited only for its facts: diagnostics are discarded
// and do not count toward the exit status. Returns the reported count.
func (r *runner) run(pkg *load.Package, analyzers []*analysis.Analyzer, report bool) int {
	type record struct {
		analyzer string
		pos      token.Position
		msg      string
	}
	var recs []record
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      r.fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     r.facts,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if report {
				recs = append(recs, record{a.Name, r.fset.Position(d.Pos), d.Message})
			}
		}
		start := time.Now()
		err := a.Run(pass)
		r.times[a.Name] += time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "monetlint: %s: %s: %v\n", pkg.Path, a.Name, err)
			os.Exit(1)
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i].pos, recs[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, rec := range recs {
		r.counts[rec.analyzer]++
	}
	if r.opts.jsonOut {
		byAnalyzer := map[string][]diagJSON{}
		for _, rec := range recs {
			byAnalyzer[rec.analyzer] = append(byAnalyzer[rec.analyzer], diagJSON{Posn: rec.pos.String(), Message: rec.msg})
		}
		if len(byAnalyzer) > 0 {
			printDiags(os.Stdout, true, pkg.Path, byAnalyzer)
		}
		return len(recs)
	}
	for _, rec := range recs {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", rec.pos, rec.msg, rec.analyzer)
	}
	return len(recs)
}

// summaryLine renders the non-zero exit summary: total findings plus a
// per-analyzer breakdown, so CI logs are diagnosable at a glance.
func summaryLine(counts map[string]int) string {
	total := 0
	names := make([]string, 0, len(counts))
	for name, n := range counts {
		if n == 0 {
			continue
		}
		total += n
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s:%d", name, counts[name]))
	}
	noun := "findings"
	if total == 1 {
		noun = "finding"
	}
	return fmt.Sprintf("monetlint: %d %s (%s)", total, noun, strings.Join(parts, " "))
}

// findModule walks up from the working directory to go.mod and reads the
// module path.
func findModule() (dir, path string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(dir, "go.mod")
		if _, statErr := os.Stat(gm); statErr == nil {
			f, err := os.Open(gm)
			if err != nil {
				return "", "", err
			}
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: no module directive", gm)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
