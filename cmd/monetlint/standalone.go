package main

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// runStandalone loads packages from source and applies the analyzers.
// Exits 2 if any diagnostics were reported, 1 on operational errors.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut bool) {
	modDir, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "monetlint: %v\n", err)
		os.Exit(1)
	}
	loader := load.New(load.Config{ModulePath: modPath, ModuleDir: modDir})

	var paths []string
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := loader.ModulePackages()
			if err != nil {
				fmt.Fprintf(os.Stderr, "monetlint: %v\n", err)
				os.Exit(1)
			}
			paths = append(paths, all...)
		case strings.HasPrefix(pat, "./"):
			abs, err := filepath.Abs(pat)
			if err != nil {
				fmt.Fprintf(os.Stderr, "monetlint: %v\n", err)
				os.Exit(1)
			}
			rel, err := filepath.Rel(modDir, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				fmt.Fprintf(os.Stderr, "monetlint: %s is outside module %s\n", pat, modPath)
				os.Exit(1)
			}
			ip := modPath
			if rel != "." {
				ip += "/" + filepath.ToSlash(rel)
			}
			paths = append(paths, ip)
		default:
			paths = append(paths, pat)
		}
	}

	exit := 0
	for _, path := range paths {
		pkg, err := loader.LoadPath(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "monetlint: %v\n", err)
			os.Exit(1)
		}
		if n := runAnalyzers(loader.Fset(), pkg, analyzers, jsonOut); n > 0 {
			exit = 2
		}
	}
	os.Exit(exit)
}

// runAnalyzers applies the suite to one loaded package and prints its
// diagnostics in position order. Returns the diagnostic count.
func runAnalyzers(fset *token.FileSet, pkg *load.Package, analyzers []*analysis.Analyzer, jsonOut bool) int {
	type record struct {
		analyzer string
		pos      token.Position
		msg      string
	}
	var recs []record
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			recs = append(recs, record{a.Name, fset.Position(d.Pos), d.Message})
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "monetlint: %s: %s: %v\n", pkg.Path, a.Name, err)
			os.Exit(1)
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i].pos, recs[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	if jsonOut {
		byAnalyzer := map[string][]diagJSON{}
		for _, r := range recs {
			byAnalyzer[r.analyzer] = append(byAnalyzer[r.analyzer], diagJSON{Posn: r.pos.String(), Message: r.msg})
		}
		if len(byAnalyzer) > 0 {
			printDiags(os.Stdout, true, pkg.Path, byAnalyzer)
		}
		return len(recs)
	}
	for _, r := range recs {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", r.pos, r.msg, r.analyzer)
	}
	return len(recs)
}

// findModule walks up from the working directory to go.mod and reads the
// module path.
func findModule() (dir, path string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(dir, "go.mod")
		if _, statErr := os.Stat(gm); statErr == nil {
			f, err := os.Open(gm)
			if err != nil {
				return "", "", err
			}
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: no module directive", gm)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
