// Command experiments regenerates every table and figure of the paper plus
// a quantitative run of each efficiency claim the demo asserts; the mapping
// from experiment IDs to paper artefacts is in DESIGN.md §5 and results
// are recorded in EXPERIMENTS.md.
//
//	experiments            run everything at the default scale
//	experiments -only E4   run one experiment
//	experiments -scale 3   multiply workload sizes
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/devudf"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/script"
	"repro/internal/transform"
	"repro/monetlite"
)

// ctx is the background context the experiment drivers pass to the v2 API.
var ctx = context.Background()

func main() {
	only := flag.String("only", "", "run a single experiment (T1, F1, E1..E7, SA, SB)")
	scale := flag.Int("scale", 1, "workload scale multiplier")
	flag.Parse()

	experiments := []struct {
		id   string
		name string
		run  func(int) error
	}{
		{"T1", "Table 1: development-environment market share", expT1},
		{"F1", "Figure 1: menu integration (see `devudf menu`)", expF1},
		{"E1", "§2.1 compression: transfer bytes/time vs data size", expE1},
		{"E2", "§2.1 sampling: transfer vs sample size", expE2},
		{"E3", "§2.2 encryption overhead", expE3},
		{"E4", "headline: debug-cycle cost, traditional vs devUDF", expE4},
		{"E5", "§2.4 processing models: operator- vs tuple-at-a-time", expE5},
		{"E6", "§2.3 nested UDFs: server vs local execution", expE6},
		{"E7", "§1 motivation: in-DB UDF vs client-side pull", expE7},
		{"SA", "Scenario A: semantic bug in mean_deviation", expSA},
		{"SB", "Scenario B: data-dependent loader bug", expSB},
	}
	ran := 0
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		fmt.Printf("\n=== %s — %s ===\n", e.id, e.name)
		if err := e.run(*scale); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q\n", *only)
		os.Exit(2)
	}
}

func expT1(int) error {
	fmt.Printf("%-22s %-7s %s\n", "Name", "Share", "Type")
	for _, r := range bench.Table1 {
		fmt.Printf("%-22s %5.1f%%  %s\n", r.Name, r.Share, r.Kind)
	}
	ide, editor := bench.IDEShare()
	fmt.Printf("\nIDE share %.1f%% vs text-editor share %.1f%% (ratio %.1fx) — the paper's\n",
		ide, editor, ide/editor)
	fmt.Println("argument for meeting developers inside their IDE.")
	return nil
}

func expF1(int) error {
	fmt.Println(`Main Menu
└── UDF Development
    ├── Settings...            (Fig. 2: connection, debug query, transfer options)
    ├── Import UDFs...         (Fig. 3a)
    └── Export UDFs...         (Fig. 3b)
Figures 2/3 are reproduced by the golden-tested 'devudf settings/list/import/export' commands.`)
	return nil
}

// extractOnce runs one rewritten-extract round trip and reports payload
// bytes and elapsed time.
func extractOnce(c *devudf.Client, udf string) (payload int, elapsed time.Duration, err error) {
	start := time.Now()
	info, err := c.ExtractInputs(ctx, udf)
	if err != nil {
		return 0, 0, err
	}
	return info.PayloadBytes, time.Since(start), nil
}

func newFixtureClient(fx *bench.Fixture, query string, opts devudf.TransferOptions) (*devudf.Client, error) {
	settings := devudf.DefaultSettings()
	settings.Connection = fx.Params
	settings.DebugQuery = query
	settings.Transfer = opts
	return devudf.Open(ctx, settings, devudf.WithFS(core.NewMemFS(nil)))
}

func expE1(scale int) error {
	fmt.Printf("%-10s %-10s %-14s %-12s %s\n", "rows", "compress", "payloadBytes", "time", "ratio")
	for _, rows := range []int{1000 * scale, 10000 * scale, 100000 * scale} {
		fx, err := bench.StartServer(
			`CREATE TABLE numbers (i INTEGER)`,
			bench.NumbersInsert("numbers", rows),
			bench.MeanDeviationBuggy,
		)
		if err != nil {
			return err
		}
		var rawBytes int
		for _, compress := range []bool{false, true} {
			c, err := newFixtureClient(fx, `SELECT mean_deviation(i) FROM numbers`,
				devudf.TransferOptions{Compress: compress})
			if err != nil {
				fx.Close()
				return err
			}
			if _, err := c.ImportUDFs(ctx, "mean_deviation"); err != nil {
				fx.Close()
				return err
			}
			payload, elapsed, err := extractOnce(c, "mean_deviation")
			c.Close()
			if err != nil {
				fx.Close()
				return err
			}
			ratio := ""
			if !compress {
				rawBytes = payload
			} else if payload > 0 {
				ratio = fmt.Sprintf("%.2fx smaller", float64(rawBytes)/float64(payload))
			}
			fmt.Printf("%-10d %-10v %-14d %-12s %s\n", rows, compress, payload, elapsed.Round(time.Microsecond), ratio)
		}
		fx.Close()
	}
	return nil
}

func expE2(scale int) error {
	rows := 100000 * scale
	fx, err := bench.StartServer(
		`CREATE TABLE numbers (i INTEGER)`,
		bench.NumbersInsert("numbers", rows),
		bench.MeanDeviationBuggy,
	)
	if err != nil {
		return err
	}
	defer fx.Close()
	fmt.Printf("%-12s %-12s %-14s %s\n", "sampleSize", "shippedRows", "payloadBytes", "time")
	for _, sample := range []int{0, rows / 2, rows / 10, rows / 100} {
		c, err := newFixtureClient(fx, `SELECT mean_deviation(i) FROM numbers`,
			devudf.TransferOptions{SampleSize: sample, Seed: 42})
		if err != nil {
			return err
		}
		if _, err := c.ImportUDFs(ctx, "mean_deviation"); err != nil {
			c.Close()
			return err
		}
		start := time.Now()
		info, err := c.ExtractInputs(ctx, "mean_deviation")
		elapsed := time.Since(start)
		c.Close()
		if err != nil {
			return err
		}
		label := "all"
		if sample > 0 {
			label = fmt.Sprintf("%d", sample)
		}
		fmt.Printf("%-12s %-12d %-14d %s\n", label, info.SampleRows, info.PayloadBytes, elapsed.Round(time.Microsecond))
	}
	return nil
}

func expE3(scale int) error {
	fmt.Printf("%-10s %-10s %-14s %s\n", "rows", "encrypt", "payloadBytes", "time")
	for _, rows := range []int{10000 * scale, 100000 * scale} {
		fx, err := bench.StartServer(
			`CREATE TABLE numbers (i INTEGER)`,
			bench.NumbersInsert("numbers", rows),
			bench.MeanDeviationBuggy,
		)
		if err != nil {
			return err
		}
		for _, encrypt := range []bool{false, true} {
			c, err := newFixtureClient(fx, `SELECT mean_deviation(i) FROM numbers`,
				devudf.TransferOptions{Encrypt: encrypt, Seed: 1})
			if err != nil {
				fx.Close()
				return err
			}
			if _, err := c.ImportUDFs(ctx, "mean_deviation"); err != nil {
				fx.Close()
				c.Close()
				return err
			}
			payload, elapsed, err := extractOnce(c, "mean_deviation")
			c.Close()
			if err != nil {
				fx.Close()
				return err
			}
			fmt.Printf("%-10d %-10v %-14d %s\n", rows, encrypt, payload, elapsed.Round(time.Microsecond))
		}
		fx.Close()
	}
	return nil
}

// expE4 is the headline comparison: k fix-probe iterations done the
// traditional way (re-CREATE on the server + re-run the full query
// remotely, every time) versus the devUDF way (extract inputs once, then
// iterate locally).
func expE4(scale int) error {
	rows := 50000 * scale
	fx, err := bench.StartServer(
		`CREATE TABLE numbers (i INTEGER)`,
		bench.NumbersInsert("numbers", rows),
		bench.MeanDeviationBuggy,
	)
	if err != nil {
		return err
	}
	defer fx.Close()
	query := `SELECT mean_deviation(i) FROM numbers`
	// devUDFLoop times one extract followed by k edit+local-run probes.
	devUDFLoop := func(k int, opts devudf.TransferOptions) (time.Duration, error) {
		c, err := newFixtureClient(fx, query, opts)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		if _, err := c.ImportUDFs(ctx, "mean_deviation"); err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := c.ExtractInputs(ctx, "mean_deviation"); err != nil {
			return 0, err
		}
		for i := 0; i < k; i++ {
			if err := c.EditBody("mean_deviation", bench.MeanDeviationFixedBody); err != nil {
				return 0, err
			}
			if _, err := c.RunLocal(ctx, "mean_deviation"); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	fmt.Printf("input: %d rows; one probe = edit body + observe result;\n", rows)
	fmt.Printf("devUDF pays one extract, then iterates locally (optionally on a 1%% sample —\n")
	fmt.Printf("the §2.1 option offered exactly to alleviate this overhead)\n")
	fmt.Printf("%-12s %-15s %-15s %-18s %s\n", "iterations", "traditional", "devUDF(full)", "devUDF(1% sample)", "speedup(sampled)")
	for _, k := range []int{1, 2, 5, 10} {
		// traditional: k × (CREATE OR REPLACE + remote query)
		c, err := newFixtureClient(fx, query, devudf.TransferOptions{})
		if err != nil {
			return err
		}
		if _, err := c.ImportUDFs(ctx, "mean_deviation"); err != nil {
			c.Close()
			return err
		}
		info, _, err := c.Project.LoadUDF("mean_deviation")
		if err != nil {
			c.Close()
			return err
		}
		startTrad := time.Now()
		for i := 0; i < k; i++ {
			if _, err := c.TraditionalCycle(ctx, info, bench.MeanDeviationFixedBody); err != nil {
				c.Close()
				return err
			}
		}
		trad := time.Since(startTrad)
		c.Close()

		devFull, err := devUDFLoop(k, devudf.TransferOptions{})
		if err != nil {
			return err
		}
		devSampled, err := devUDFLoop(k, devudf.TransferOptions{SampleSize: rows / 100, Seed: 42})
		if err != nil {
			return err
		}
		fmt.Printf("%-12d %-15s %-15s %-18s %.2fx\n", k,
			trad.Round(time.Microsecond), devFull.Round(time.Microsecond),
			devSampled.Round(time.Microsecond), float64(trad)/float64(devSampled))
	}
	return nil
}

func expE5(scale int) error {
	fmt.Printf("%-10s %-22s %-14s %s\n", "rows", "model", "time", "slowdown")
	for _, rows := range []int{1000 * scale, 10000 * scale} {
		var opTime time.Duration
		for _, mode := range []monetlite.Mode{monetlite.ModeOperatorAtATime, monetlite.ModeTupleAtATime} {
			fx, err := bench.StartServer(
				`CREATE TABLE numbers (i INTEGER)`,
				bench.NumbersInsert("numbers", rows),
				bench.SquareUDF, bench.SquareVectorUDF,
			)
			if err != nil {
				return err
			}
			fx.DB.Mode = mode
			conn := monetlite.Connect(fx.DB, "monetdb", "monetdb")
			sql := `SELECT square_vec(i) FROM numbers`
			if mode == monetlite.ModeTupleAtATime {
				sql = `SELECT square(i) FROM numbers`
			}
			start := time.Now()
			if _, err := conn.Exec(sql); err != nil {
				fx.Close()
				return err
			}
			elapsed := time.Since(start)
			slow := ""
			if mode == monetlite.ModeOperatorAtATime {
				opTime = elapsed
			} else if opTime > 0 {
				slow = fmt.Sprintf("%.1fx slower", float64(elapsed)/float64(opTime))
			}
			fmt.Printf("%-10d %-22s %-14s %s\n", rows, mode, elapsed.Round(time.Microsecond), slow)
			fx.Close()
		}
	}
	return nil
}

func expE6(scale int) error {
	setup := []string{
		`CREATE TABLE trainingset (data DOUBLE, labels INTEGER)`,
		`CREATE TABLE testingset (data DOUBLE, labels INTEGER)`,
	}
	setup = append(setup, bench.MLInserts(30*scale, 30*scale)...)
	setup = append(setup, bench.TrainRnforest, bench.FindBestClassifier)
	fx, err := bench.StartServer(setup...)
	if err != nil {
		return err
	}
	defer fx.Close()
	conn := monetlite.Connect(fx.DB, "monetdb", "monetdb")

	startServer := time.Now()
	res, err := conn.Exec(`SELECT n_estimators FROM find_best_classifier(3)`)
	if err != nil {
		return err
	}
	serverTime := time.Since(startServer)
	serverBest := res.Table.Cols[0].Ints[0]

	c, err := newFixtureClient(fx, `SELECT * FROM find_best_classifier(3)`, devudf.TransferOptions{})
	if err != nil {
		return err
	}
	defer c.Close()
	imported, err := c.ImportUDFs(ctx, "find_best_classifier")
	if err != nil {
		return err
	}
	if _, err := c.ExtractInputs(ctx, "find_best_classifier"); err != nil {
		return err
	}
	startLocal := time.Now()
	local, err := c.RunLocal(ctx, "find_best_classifier")
	if err != nil {
		return err
	}
	localTime := time.Since(startLocal)
	fmt.Printf("imported (incl. nested): %s\n", strings.Join(imported, ", "))
	fmt.Printf("%-22s %-14s best n_estimators\n", "where", "time")
	fmt.Printf("%-22s %-14s %d\n", "server (in-DB)", serverTime.Round(time.Microsecond), serverBest)
	fmt.Printf("%-22s %-14s %s\n", "devUDF (local+nested)", localTime.Round(time.Microsecond), local.Value.Repr())
	return nil
}

func expE7(scale int) error {
	fmt.Printf("%-10s %-22s %-14s %s\n", "rows", "strategy", "time", "bytes over wire")
	for _, rows := range []int{10000 * scale, 100000 * scale} {
		fx, err := bench.StartServer(
			`CREATE TABLE numbers (i INTEGER)`,
			bench.NumbersInsert("numbers", rows),
			bench.MeanDeviationBuggy,
		)
		if err != nil {
			return err
		}
		// in-DB: ship only the answer
		cli, err := monetlite.DialContext(ctx, fx.Params)
		if err != nil {
			fx.Close()
			return err
		}
		start := time.Now()
		if _, _, err := cli.Query(ctx, `SELECT mean_deviation(i) FROM numbers`); err != nil {
			fx.Close()
			return err
		}
		inDB := time.Since(start)
		inDBBytes := cli.BytesRead
		// client-side: pull the column, run the same Python analysis in
		// the client's interpreter (the paper's data-scientist scenario:
		// Python on both sides — only the data's location differs)
		start = time.Now()
		_, tbl, err := cli.Query(ctx, `SELECT i FROM numbers`)
		if err != nil {
			fx.Close()
			return err
		}
		if err := clientSideMeanDeviation(tbl.Cols[0].Ints); err != nil {
			fx.Close()
			return err
		}
		pull := time.Since(start)
		pullBytes := cli.BytesRead - inDBBytes
		fmt.Printf("%-10d %-22s %-14s %d\n", rows, "in-DB UDF", inDB.Round(time.Microsecond), inDBBytes)
		fmt.Printf("%-10d %-22s %-14s %d\n", rows, "client pull+compute", pull.Round(time.Microsecond), pullBytes)
		cli.Close()
		fx.Close()
	}
	return nil
}

func expSA(int) error {
	fx, err := bench.StartServer(
		`CREATE TABLE numbers (i INTEGER)`,
		`INSERT INTO numbers VALUES (1), (2), (3), (4), (100)`,
		bench.MeanDeviationBuggy,
	)
	if err != nil {
		return err
	}
	defer fx.Close()
	conn := monetlite.Connect(fx.DB, "monetdb", "monetdb")
	res, err := conn.Exec(`SELECT mean_deviation(i) FROM numbers`)
	if err != nil {
		return err
	}
	fmt.Printf("buggy result on server: %g (differences cancel — the Listing 4 bug)\n",
		res.Table.Cols[0].Flts[0])

	c, err := newFixtureClient(fx, `SELECT mean_deviation(i) FROM numbers`, devudf.TransferOptions{})
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.ImportUDFs(ctx, "mean_deviation"); err != nil {
		return err
	}
	if _, err := c.ExtractInputs(ctx, "mean_deviation"); err != nil {
		return err
	}
	sess, err := c.NewDebugSession(ctx, "mean_deviation", false)
	if err != nil {
		return err
	}
	src, _ := c.Project.LoadUDFSource("mean_deviation")
	line := 0
	for i, ln := range strings.Split(src, "\n") {
		if strings.Contains(ln, "distance += column[i] - mean") {
			line = i + 1
		}
	}
	sess.SetBreakpoint(line, "")
	ev := sess.Start()
	for ev.Reason == devudf.ReasonBreakpoint {
		d, err := sess.Eval("distance")
		if err != nil {
			return err
		}
		i, _ := sess.Eval("i")
		fmt.Printf("  breakpoint at line %d: i=%s distance=%s\n", ev.Line, i.Repr(), d.Repr())
		ev = sess.Continue()
	}
	fmt.Println("debugger exposes a NEGATIVE running distance — a sum of absolute")
	fmt.Println("deviations can never be negative, so the abs() is missing.")

	if err := c.EditBody("mean_deviation", bench.MeanDeviationFixedBody); err != nil {
		return err
	}
	local, err := c.RunLocal(ctx, "mean_deviation")
	if err != nil {
		return err
	}
	fmt.Printf("fixed locally: %s\n", local.Value.Repr())
	if err := c.ExportUDFs(ctx, "mean_deviation"); err != nil {
		return err
	}
	res, err = conn.Exec(`SELECT mean_deviation(i) FROM numbers`)
	if err != nil {
		return err
	}
	fmt.Printf("after export, server computes: %g\n", res.Table.Cols[0].Flts[0])
	return nil
}

func expSB(int) error {
	fs := core.NewMemFS(map[string]string{
		"csvs/a.csv": "1\n2\n3\n",
		"csvs/b.csv": "4\n5\n",
		"csvs/c.csv": "100\n",
	})
	fx, err := bench.StartServer()
	if err != nil {
		return err
	}
	defer fx.Close()
	fx.DB.FS = fs
	conn := monetlite.Connect(fx.DB, "monetdb", "monetdb")
	if _, err := conn.Exec(bench.LoadNumbersBuggy); err != nil {
		return err
	}
	res, err := conn.Exec(`SELECT COUNT(*) AS n, SUM(i) AS total FROM loadNumbers('csvs')`)
	if err != nil {
		return err
	}
	n := res.Table.Cols[0].Ints[0]
	total := res.Table.Cols[1].Ints[0]
	fmt.Printf("buggy loader: %d rows, sum %d (c.csv with value 100 silently skipped)\n", n, total)

	c, err := newFixtureClient(fx, `SELECT * FROM loadNumbers('csvs')`, devudf.TransferOptions{})
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.ImportUDFs(ctx, "loadNumbers"); err != nil {
		return err
	}
	fixed := `import os
files = os.listdir(path)
result = []
for i in range(0, len(files)):
    file = open(path + "/" + files[i], "r")
    for line in file:
        result.append(int(line))
return result`
	if err := c.EditBody("loadNumbers", fixed); err != nil {
		return err
	}
	if err := c.ExportUDFs(ctx, "loadNumbers"); err != nil {
		return err
	}
	res, err = conn.Exec(`SELECT COUNT(*) AS n, SUM(i) AS total FROM loadNumbers('csvs')`)
	if err != nil {
		return err
	}
	fmt.Printf("fixed loader:  %d rows, sum %d (range was right-exclusive already —\n", res.Table.Cols[0].Ints[0], res.Table.Cols[1].Ints[0])
	fmt.Println("the 'len(files) - 1' bound was the data-dependent bug)")
	return nil
}

// clientSideMeanDeviation runs the paper's analysis in a client-local
// PyLite interpreter over a pulled column — the "transfer the data to the
// analytical tool" strategy the introduction argues against.
func clientSideMeanDeviation(col []int64) error {
	items := make([]script.Value, len(col))
	for i, v := range col {
		items[i] = script.IntVal(v)
	}
	body := transform.WrapFunction("mean_deviation", []string{"column"},
		strings.ReplaceAll(bench.MeanDeviationFixedBody, "\r", ""))
	mod, err := script.Parse("client", body)
	if err != nil {
		return err
	}
	in := script.NewInterp()
	env, err := in.Run(mod)
	if err != nil {
		return err
	}
	fn, _ := env.Get("mean_deviation")
	_, err = in.Call(fn, []script.Value{script.NewList(items...)})
	return err
}
