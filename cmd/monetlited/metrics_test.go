package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
	"repro/monetlite"
)

// startStack boots the full monetlited serving stack in-process: durable
// engine, wire server, and diagnostics listener — the same wiring main()
// does, through the same helpers.
func startStack(t *testing.T, slowQueryMs int) (*monetlite.Server, *obsStack, monetlite.ConnParams, string) {
	t.Helper()
	db := monetlite.NewDB()
	mgr, err := wal.Open(t.TempDir(), db, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	srv := monetlite.NewServer("demo", "monetdb", "secret", db)
	stack := enableObs(db, srv, mgr, slowQueryMs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	maddr, err := stack.serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stack.shutdown() })
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		t.Fatal(err)
	}
	port, _ := strconv.Atoi(portStr)
	params := monetlite.ConnParams{
		Host: host, Port: port, Database: "demo",
		User: "monetdb", Password: "secret",
	}
	return srv, stack, params, maddr
}

// TestMetricsListenerStopsWithDrain: the SIGTERM sequence must take the
// diagnostics port down with the query port instead of leaking the HTTP
// listener past the drain.
func TestMetricsListenerStopsWithDrain(t *testing.T) {
	srv, stack, _, maddr := startStack(t, 0)
	resp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatalf("metrics endpoint should serve before the drain: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if err := drainAndStop(srv, stack); err != nil {
		t.Fatal(err)
	}
	// Shutdown closes the listener before returning, so a fresh dial must
	// be refused immediately.
	if c, err := net.DialTimeout("tcp", maddr, time.Second); err == nil {
		c.Close()
		t.Fatal("metrics listener still accepting after the drain")
	}
}

// TestDrainAndStopWithoutMetrics: the shutdown path must be a no-op safe
// when observability was never enabled (nil stack).
func TestDrainAndStopWithoutMetrics(t *testing.T) {
	db := monetlite.NewDB()
	srv := monetlite.NewServer("demo", "monetdb", "secret", db)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := drainAndStop(srv, nil); err != nil {
		t.Fatal(err)
	}
}

// TestExpositionRoundTripUnderLoad drives concurrent queries (including
// a UDF and WAL-committed inserts) through the wire protocol, scrapes
// /metrics over real HTTP, re-parses the text format, and asserts the
// core series are present and well-formed.
func TestExpositionRoundTripUnderLoad(t *testing.T) {
	_, _, params, maddr := startStack(t, 0)

	c, err := monetlite.Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		`CREATE TABLE load (i INTEGER, f DOUBLE)`,
		`CREATE FUNCTION double_it(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    out = []
    for v in i:
        out.append(v * 2)
    return out
}`,
	} {
		if _, _, err := c.Query(context.Background(), sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	c.Close()

	const workers, rounds = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cc, err := monetlite.Dial(params)
			if err != nil {
				t.Error(err)
				return
			}
			defer cc.Close()
			for r := 0; r < rounds; r++ {
				queries := []string{
					fmt.Sprintf(`INSERT INTO load VALUES (%d, %d.5)`, r, w),
					`SELECT COUNT(*) AS n FROM load WHERE i >= 0`,
					`SELECT double_it(i) AS d FROM load WHERE i >= 0`,
				}
				for _, sql := range queries {
					if _, _, err := cc.Query(context.Background(), sql); err != nil {
						t.Errorf("%s: %v", sql, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	resp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	sc, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition did not re-parse: %v", err)
	}

	// Query latency histogram: cumulative buckets ending in +Inf, with the
	// count line agreeing with the terminal bucket.
	buckets := sc.HistogramBuckets("wire_query_seconds", nil)
	if len(buckets) < 2 {
		t.Fatalf("wire_query_seconds buckets = %d", len(buckets))
	}
	last := float64(-1)
	for _, b := range buckets {
		if b.Value < last {
			t.Fatalf("buckets not cumulative: %v", buckets)
		}
		last = b.Value
	}
	if le := buckets[len(buckets)-1].Labels["le"]; le != "+Inf" {
		t.Fatalf("terminal bucket le = %q", le)
	}
	count, ok := sc.Get("wire_query_seconds_count", nil)
	if !ok || count.Value != buckets[len(buckets)-1].Value {
		t.Fatalf("count %v vs +Inf bucket %v", count.Value, buckets[len(buckets)-1].Value)
	}
	minQueries := float64(workers * rounds * 3)
	if count.Value < minQueries {
		t.Fatalf("wire_query_seconds_count = %v, want >= %v", count.Value, minQueries)
	}

	// WAL fsync histogram: SyncAlways means every INSERT fsynced.
	fsyncs, ok := sc.Get("wal_fsync_seconds_count", nil)
	if !ok || fsyncs.Value < float64(workers*rounds) {
		t.Fatalf("wal_fsync_seconds_count = %v %v", fsyncs.Value, ok)
	}
	if appends, ok := sc.Get("wal_appends_total", nil); !ok || appends.Value < float64(workers*rounds) {
		t.Fatalf("wal_appends_total = %v %v", appends.Value, ok)
	}

	// Plan cache: the repeated SELECTs must produce hits; the distinct
	// INSERT texts produce misses.
	hits, ok := sc.Get("engine_plan_cache_hits_total", nil)
	if !ok || hits.Value < 1 {
		t.Fatalf("engine_plan_cache_hits_total = %v %v", hits.Value, ok)
	}
	misses, ok := sc.Get("engine_plan_cache_misses_total", nil)
	if !ok || misses.Value < 1 {
		t.Fatalf("engine_plan_cache_misses_total = %v %v", misses.Value, ok)
	}

	// UDF runtime series, labeled by runtime.
	if calls, ok := sc.Get("udf_calls_total", map[string]string{"runtime": "python"}); !ok || calls.Value < float64(workers*rounds) {
		t.Fatalf("udf_calls_total{runtime=python} = %v %v", calls.Value, ok)
	}

	// The same spans back the sys.query_log virtual table.
	cc, err := monetlite.Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	_, tbl, err := cc.Query(context.Background(), `SELECT query, total_ms FROM sys.query_log`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() < 1 {
		t.Fatal("sys.query_log empty after load")
	}
}
