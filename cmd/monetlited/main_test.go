package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dump"
	"repro/monetlite"
)

// Regression: the old shutdown path os.Create'd the snapshot — truncating
// the only copy — before running the dump, so a dump error (or a crash
// mid-write) destroyed the previous snapshot. persistSnapshot must leave
// the old file byte-identical when the dump fails.
func TestPersistKeepsOldSnapshotOnDumpError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.dump")
	prior := []byte("precious bytes of the previous snapshot")
	if err := os.WriteFile(path, prior, 0o644); err != nil {
		t.Fatal(err)
	}

	err := persistSnapshot(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage")) // some output, then failure
		return io.ErrUnexpectedEOF
	})
	if err == nil {
		t.Fatal("dump error must propagate")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, prior) {
		t.Fatalf("failed persist clobbered the previous snapshot: %q", got)
	}
}

func TestPersistWritesNewSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.dump")
	db := monetlite.NewDB()
	db.FS = core.NewMemFS(nil)
	conn := monetlite.Connect(db, "u", "p")
	if _, err := conn.Exec(`CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(`INSERT INTO t VALUES (11)`); err != nil {
		t.Fatal(err)
	}
	if err := persistSnapshot(path, func(w io.Writer) error { return dump.Dump(db, w) }); err != nil {
		t.Fatal(err)
	}

	db2 := monetlite.NewDB()
	db2.FS = core.NewMemFS(nil)
	restored, err := restoreSnapshot(db2, path)
	if err != nil || !restored {
		t.Fatalf("restore: restored=%v err=%v", restored, err)
	}
	conn2 := monetlite.Connect(db2, "u", "p")
	r, err := conn2.Exec(`SELECT i FROM t`)
	if err != nil || r.Table.NumRows() != 1 || r.Table.Cols[0].Ints[0] != 11 {
		t.Fatalf("round trip: %v %v", r, err)
	}
}

// Regression: startup used to treat EVERY open error as "no snapshot yet"
// and boot an empty database — which the next clean shutdown would then
// persist, silently wiping the real data. Only fs.ErrNotExist may start
// fresh; corruption and IO errors must surface.
func TestRestoreStrictAboutErrors(t *testing.T) {
	dir := t.TempDir()

	// missing file: fresh start, no error
	db := monetlite.NewDB()
	restored, err := restoreSnapshot(db, filepath.Join(dir, "absent.dump"))
	if err != nil || restored {
		t.Fatalf("missing snapshot: restored=%v err=%v", restored, err)
	}

	// corrupt file: hard error, never a silent empty boot
	bad := filepath.Join(dir, "corrupt.dump")
	if err := os.WriteFile(bad, []byte("MLDUMP2\nnot really"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := restoreSnapshot(monetlite.NewDB(), bad); err == nil {
		t.Fatal("corrupt snapshot must fail startup, not boot empty")
	}

	// a directory at the snapshot path: also a hard error
	if _, err := restoreSnapshot(monetlite.NewDB(), dir); err == nil {
		t.Fatal("unreadable snapshot path must fail startup")
	}
}
