// Command monetlited runs the embedded MonetDB-like database server: the
// substrate the devUDF plugin connects to. It serves one named database
// over the wire protocol with a single user account.
//
// With -data DIR the database is durable: every committed statement is
// appended to a write-ahead log under DIR, compacted into compressed
// columnar snapshots, and recovered on the next start — surviving kill -9.
// DIR also remains the directory COPY INTO and UDF file access resolve
// against.
//
// With -metrics-addr the process serves Prometheus text metrics on
// /metrics and the pprof profiling handlers on /debug/pprof/, covering
// every layer (wire, engine, UDF runtimes, WAL). -slow-query-ms logs a
// structured line with the per-stage span breakdown for queries past the
// threshold, and the same spans are queryable as the sys.query_log
// virtual table.
//
// The resilience flags bound what any one client can cost the server:
// -query-timeout aborts runaway statements, -max-conns and
// -max-queue-depth cap concurrency and pipelining (excess requests get a
// retryable overload error), -rate-limit/-rate-burst throttle per
// session, -max-result-rows/-max-result-bytes bound result sizes,
// -udf-wall-budget limits each UDF invocation's wall time, and
// -drain-timeout puts a deadline on graceful shutdown.
//
// Usage:
//
//	monetlited -addr :50000 -db demo -user monetdb -password monetdb \
//	           -data ./datadir -init setup.sql
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/dump"
	"repro/internal/wal"
	"repro/monetlite"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:50000", "listen address")
	dbName := flag.String("db", "demo", "database name clients must present")
	user := flag.String("user", "monetdb", "user account")
	password := flag.String("password", "monetdb", "user password")
	dataDir := flag.String("data", "", "data directory: WAL + snapshots live here (durable across kill -9), and COPY INTO / UDF file access resolve against it (empty: in-memory database, process cwd for files)")
	walSync := flag.String("wal-sync", "interval", "WAL fsync policy: interval (group commit), always (fsync per commit), never")
	initFile := flag.String("init", "", "SQL script to execute at startup")
	persist := flag.String("persist", "", "deprecated: snapshot file restored at startup and written at shutdown only; use -data, which also survives crashes")
	tupleMode := flag.Bool("tuple-at-a-time", false, "use the tuple-at-a-time UDF processing model (paper §2.4)")
	maxSteps := flag.Int64("max-udf-steps", 50_000_000, "interpreter step budget per UDF call (0 = unlimited)")
	streamThreshold := flag.Int("stream-threshold", 1<<20, "encoded result size (bytes) above which v2 sessions get chunked streaming (negative streams everything)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (empty: disabled)")
	slowQueryMs := flag.Int("slow-query-ms", 0, "log one structured line with the per-stage span breakdown for queries slower than this many milliseconds (0: disabled)")
	queryTimeout := flag.Duration("query-timeout", 0, "abort any query running longer than this, measured from dequeue (0: unlimited)")
	maxConns := flag.Int("max-conns", 0, "reject new connections past this many concurrent sessions with a retryable error (0: unlimited)")
	maxQueueDepth := flag.Int("max-queue-depth", 0, "pipelined requests buffered per connection before shedding with a retryable error (0: default 256, negative: unbounded)")
	rateLimit := flag.Float64("rate-limit", 0, "sustained queries/second admitted per session; excess requests shed with a retryable error (0: unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "token-bucket burst size for -rate-limit (0: 2x the rate)")
	maxResultRows := flag.Int64("max-result-rows", 0, "fail queries whose result exceeds this many rows (0: unlimited)")
	maxResultBytes := flag.Int("max-result-bytes", 0, "refuse to send results larger than this many encoded bytes (0: unlimited)")
	udfWallBudget := flag.Duration("udf-wall-budget", 0, "wall-clock budget per UDF invocation across all runtimes (0: unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 0, "on shutdown, force-abort sessions still executing after this long (0: wait for in-flight statements)")
	flag.Parse()

	db := monetlite.NewDB()
	db.FS = core.OSFS{Dir: *dataDir}
	db.MaxUDFSteps = *maxSteps
	db.MaxResultRows = *maxResultRows
	db.MaxUDFWall = *udfWallBudget
	if *tupleMode {
		db.Mode = monetlite.ModeTupleAtATime
	}

	if *persist != "" && *dataDir != "" {
		log.Fatalf("-persist and -data are mutually exclusive; -data subsumes -persist (WAL + snapshots under the data directory)")
	}

	var mgr *wal.Manager
	if *dataDir != "" {
		opts := wal.Options{Logf: log.Printf}
		switch *walSync {
		case "interval":
			opts.Sync = wal.SyncInterval
		case "always":
			opts.Sync = wal.SyncAlways
		case "never":
			opts.Sync = wal.SyncNever
		default:
			log.Fatalf("unknown -wal-sync mode %q (want interval, always, or never)", *walSync)
		}
		var err error
		if mgr, err = wal.Open(*dataDir, db, opts); err != nil {
			log.Fatalf("open data dir %s: %v", *dataDir, err)
		}
		log.Printf("durable storage at %s (wal segment %s)", *dataDir, *walSync)
	}

	if *persist != "" {
		log.Printf("warning: -persist is deprecated (snapshot only at clean shutdown); use -data for crash-safe storage")
		restored, err := restoreSnapshot(db, *persist)
		if err != nil {
			log.Fatalf("restore %s: %v", *persist, err)
		}
		if restored {
			log.Printf("restored database from %s", *persist)
		}
	}

	if *initFile != "" {
		script, err := os.ReadFile(*initFile)
		if err != nil {
			log.Fatalf("read init script: %v", err)
		}
		conn := monetlite.Connect(db, *user, *password)
		if _, err := conn.ExecAll(string(script)); err != nil {
			log.Fatalf("init script: %v", err)
		}
		log.Printf("applied init script %s", *initFile)
	}

	srv := monetlite.NewServer(*dbName, *user, *password, db)
	srv.Logf = log.Printf
	srv.StreamThreshold = *streamThreshold
	srv.QueryTimeout = *queryTimeout
	srv.MaxConns = *maxConns
	srv.MaxQueueDepth = *maxQueueDepth
	srv.RateLimit = *rateLimit
	srv.RateBurst = *rateBurst
	srv.MaxResultBytes = *maxResultBytes
	srv.DrainTimeout = *drainTimeout

	var stack *obsStack
	if *metricsAddr != "" || *slowQueryMs > 0 {
		stack = enableObs(db, srv, mgr, *slowQueryMs)
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	if *metricsAddr != "" {
		maddr, err := stack.serve(*metricsAddr)
		if err != nil {
			log.Fatalf("metrics listen: %v", err)
		}
		log.Printf("metrics on http://%s/metrics, pprof on http://%s/debug/pprof/", maddr, maddr)
	}
	fmt.Printf("monetlited: serving database %q on %s (mode: %s)\n", *dbName, bound, db.Mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nmonetlited: draining connections and shutting down")
	if err := drainAndStop(srv, stack); err != nil {
		log.Fatalf("close: %v", err)
	}
	if mgr != nil {
		// A clean shutdown checkpoints so the next start recovers from the
		// snapshot alone, with no log to replay.
		if err := db.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		}
		if err := mgr.Close(); err != nil {
			log.Printf("close wal: %v", err)
		}
		log.Printf("database persisted to %s", *dataDir)
	}
	if *persist != "" {
		if err := persistSnapshot(*persist, func(w io.Writer) error { return dump.Dump(db, w) }); err != nil {
			log.Fatalf("persist %s: %v", *persist, err)
		}
		log.Printf("database persisted to %s", *persist)
	}
}

// restoreSnapshot loads a -persist snapshot if one exists. Only a missing
// file means "start with an empty database"; any other failure (a
// permission error, a truncated or corrupt snapshot) is returned so the
// caller can abort — booting empty would overwrite the snapshot with an
// empty database at the next shutdown.
func restoreSnapshot(db *monetlite.DB, path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	defer f.Close()
	if err := dump.Restore(db, f); err != nil {
		return false, err
	}
	return true, nil
}

// persistSnapshot writes a -persist snapshot without ever endangering the
// previous one: the dump is produced in memory and lands on disk via an
// atomic temp-file-then-rename. The old code os.Create'd (truncated) the
// only copy before dumping, so a failed dump destroyed the snapshot.
func persistSnapshot(path string, dumpTo func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := dumpTo(&buf); err != nil {
		return err
	}
	return wal.WriteFileAtomic(path, buf.Bytes())
}
