// Command monetlited runs the embedded MonetDB-like database server: the
// substrate the devUDF plugin connects to. It serves one named database
// over the wire protocol with a single user account.
//
// Usage:
//
//	monetlited -addr :50000 -db demo -user monetdb -password monetdb \
//	           -data ./datadir -init setup.sql
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/dump"
	"repro/monetlite"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:50000", "listen address")
	dbName := flag.String("db", "demo", "database name clients must present")
	user := flag.String("user", "monetdb", "user account")
	password := flag.String("password", "monetdb", "user password")
	dataDir := flag.String("data", "", "directory COPY INTO and UDF file access resolve against (default: process cwd)")
	initFile := flag.String("init", "", "SQL script to execute at startup")
	persist := flag.String("persist", "", "snapshot file: restored at startup if present, written at shutdown")
	tupleMode := flag.Bool("tuple-at-a-time", false, "use the tuple-at-a-time UDF processing model (paper §2.4)")
	maxSteps := flag.Int64("max-udf-steps", 50_000_000, "interpreter step budget per UDF call (0 = unlimited)")
	streamThreshold := flag.Int("stream-threshold", 1<<20, "encoded result size (bytes) above which v2 sessions get chunked streaming (negative streams everything)")
	flag.Parse()

	db := monetlite.NewDB()
	db.FS = core.OSFS{Dir: *dataDir}
	db.MaxUDFSteps = *maxSteps
	if *tupleMode {
		db.Mode = monetlite.ModeTupleAtATime
	}

	if *persist != "" {
		if f, err := os.Open(*persist); err == nil {
			if err := dump.Restore(db, f); err != nil {
				log.Fatalf("restore %s: %v", *persist, err)
			}
			f.Close()
			log.Printf("restored database from %s", *persist)
		}
	}

	if *initFile != "" {
		script, err := os.ReadFile(*initFile)
		if err != nil {
			log.Fatalf("read init script: %v", err)
		}
		conn := monetlite.Connect(db, *user, *password)
		if _, err := conn.ExecAll(string(script)); err != nil {
			log.Fatalf("init script: %v", err)
		}
		log.Printf("applied init script %s", *initFile)
	}

	srv := monetlite.NewServer(*dbName, *user, *password, db)
	srv.Logf = log.Printf
	srv.StreamThreshold = *streamThreshold
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("monetlited: serving database %q on %s (mode: %s)\n", *dbName, bound, db.Mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nmonetlited: draining connections and shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	if *persist != "" {
		f, err := os.Create(*persist)
		if err != nil {
			log.Fatalf("create %s: %v", *persist, err)
		}
		if err := dump.Dump(db, f); err != nil {
			log.Fatalf("dump: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("close %s: %v", *persist, err)
		}
		log.Printf("database persisted to %s", *persist)
	}
}
