package main

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
	"repro/monetlite"
)

// queryLogSize is the capacity of the sys.query_log ring the server
// feeds when observability is on.
const queryLogSize = 256

// obsStack wires one registry through every layer of the serving stack
// and owns the lifecycle of the diagnostics HTTP listener.
type obsStack struct {
	Reg  *obs.Registry
	ln   net.Listener
	http *http.Server
}

// enableObs registers engine, wire, and (when durable) WAL instruments
// on a fresh registry and installs the query-log ring behind
// sys.query_log. Must run before the server starts listening: the
// layers read their metrics pointers without synchronization.
func enableObs(db *monetlite.DB, srv *monetlite.Server, mgr *wal.Manager, slowQueryMs int) *obsStack {
	reg := obs.NewRegistry()
	db.EnableObs(reg)
	db.QueryLog = obs.NewQueryLog(queryLogSize)
	srv.EnableObs(reg)
	srv.SlowQueryMs = slowQueryMs
	if mgr != nil {
		mgr.EnableObs(reg)
	}
	return &obsStack{Reg: reg}
}

// serve starts the diagnostics listener: /metrics in Prometheus text
// format plus the pprof handlers. An explicit mux — not DefaultServeMux —
// so nothing else a dependency registers leaks onto the port.
func (o *obsStack) serve(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", o.Reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	o.ln = ln
	o.http = &http.Server{Handler: mux}
	//goleak:bounded Serve returns when shutdown closes the listener
	go func() { _ = o.http.Serve(ln) }()
	return ln.Addr().String(), nil
}

// shutdown closes the diagnostics listener, bounded so a stuck scrape
// cannot stall process exit. Nil-safe, and safe when serve was never
// called (metrics off).
func (o *obsStack) shutdown() error {
	if o == nil || o.http == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return o.http.Shutdown(ctx)
}

// drainAndStop is the first half of the SIGTERM sequence: drain the
// query port, then take the diagnostics port down with it. The metrics
// listener must not outlive the drain — leaving it up reports a live
// process on a server that no longer serves queries, and keeps the
// process from releasing its ports.
func drainAndStop(srv *monetlite.Server, stack *obsStack) error {
	if err := srv.Close(); err != nil {
		return err
	}
	return stack.shutdown()
}
