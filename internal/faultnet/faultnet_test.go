package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns two ends of a real TCP connection so deadline and
// close semantics match what the wire server sees.
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		client.Close()
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestZeroPlanIsPassThrough(t *testing.T) {
	a, _ := pipePair(t)
	if w := Wrap(a, Plan{}); w != a {
		t.Fatalf("zero plan should return the conn unchanged, got %T", w)
	}
}

func TestPartialWritesPreserveBytes(t *testing.T) {
	a, b := pipePair(t)
	fa := Wrap(a, Plan{Seed: 1, PartialWriteProb: 1})
	msg := []byte("hello, fragmented world")
	done := make(chan error, 1)
	go func() {
		_, err := fa.Write(msg)
		done <- err
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func TestResetKillsBothEnds(t *testing.T) {
	a, b := pipePair(t)
	fa := Wrap(a, Plan{Seed: 7, ResetProb: 1})
	if _, err := fa.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want ErrInjectedReset, got %v", err)
	}
	// Subsequent operations fail the same way without touching the socket.
	if _, err := fa.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want ErrInjectedReset on later op, got %v", err)
	}
	// The peer sees a dead socket, not a stall.
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read should fail after injected reset")
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	a, b := pipePair(t)
	fb := Wrap(b, Plan{Seed: 42, CorruptProb: 1})
	msg := []byte{0x00, 0x00, 0x00, 0x00}
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(fb, got); err != nil {
		t.Fatal(err)
	}
	bits := 0
	for _, by := range got {
		for i := 0; i < 8; i++ {
			if by&(1<<i) != 0 {
				bits++
			}
		}
	}
	if bits != 1 {
		t.Fatalf("want exactly 1 flipped bit, got %d (bytes %x)", bits, got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []byte {
		a, b := pipePair(t)
		fb := Wrap(b, Plan{Seed: 99, CorruptProb: 0.5})
		msg := make([]byte, 64)
		go a.Write(msg)
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(fb, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("same seed should corrupt the same bits")
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := Listener(ln, Plan{Seed: 3, ResetProb: 1})
	defer fln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := fln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	defer r.c.Close()
	if _, err := r.c.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("accepted conn should carry the plan, got %v", err)
	}
}

func TestProxyRelaysAndSevers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Echo server behind the proxy.
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	p, err := NewProxy(ln.Addr().String(), Plan{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Fatalf("echo mismatch: %q", got)
	}

	p.SeverAll()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read should fail after SeverAll")
	}

	// The proxy still accepts new connections after a partition.
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c2, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "pong" {
		t.Fatalf("echo after sever mismatch: %q", got)
	}
}
