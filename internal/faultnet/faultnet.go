// Package faultnet wraps net.Conn and net.Listener with injected faults
// for chaos testing: added latency, partial writes, connection resets,
// stalls, and byte corruption. Every fault decision is drawn from a PRNG
// seeded explicitly by the test, so a failing run reproduces from its
// logged seed. The package never fires faults unless asked: the zero
// Plan is a transparent pass-through.
//
// Two integration seams cover both directions of the wire protocol:
//
//   - Listener wraps a server's accepted connections, so the server
//     experiences misbehaving clients (wire.Server.ServeListener takes
//     the wrapped listener directly).
//   - Proxy interposes on the path to a healthy server, so a client
//     pool experiences a misbehaving network (point wire.Pool at
//     Proxy.Addr).
package faultnet

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is returned by a faulted connection when the plan
// decided to kill it. The underlying socket is closed too, so the peer
// observes a real EOF/reset rather than a polite shutdown.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Plan configures which faults fire and how often. Probabilities are
// per I/O operation in [0,1]; zero disables that fault. A Plan is a
// template: each connection derives its own PRNG from Seed plus a
// per-connection counter, so connections fault independently but the
// whole run replays from one number.
type Plan struct {
	// Seed feeds the deterministic PRNG. Two runs with the same Seed
	// and the same operation order draw the same faults.
	Seed int64

	// LatencyMax delays each Read and Write by a uniform random
	// duration in [0, LatencyMax]. Zero adds no latency.
	LatencyMax time.Duration

	// PartialWriteProb splits a Write into two chunks with a short
	// pause between them, exercising readers that assume frames
	// arrive whole.
	PartialWriteProb float64

	// ResetProb abruptly closes the connection before the operation,
	// returning ErrInjectedReset to the local caller and a hard
	// EOF/reset to the peer.
	ResetProb float64

	// StallProb freezes the operation for StallFor before proceeding —
	// long enough to trip read deadlines and drain timeouts without
	// ever delivering an error.
	StallProb float64

	// StallFor is the stall duration; zero with StallProb set applies
	// one second.
	StallFor time.Duration

	// CorruptProb flips one random bit in the data of a Read,
	// exercising the frame decoder's error paths. Corruption applies
	// to inbound bytes only so the fault is attributable.
	CorruptProb float64
}

// enabled reports whether any fault can ever fire.
func (p Plan) enabled() bool {
	return p.LatencyMax > 0 || p.PartialWriteProb > 0 || p.ResetProb > 0 ||
		p.StallProb > 0 || p.CorruptProb > 0
}

// Wrap returns c with the plan's faults injected on every Read and
// Write. A plan with no faults returns c unchanged.
func Wrap(c net.Conn, plan Plan) net.Conn {
	return wrapSeeded(c, plan, plan.Seed)
}

func wrapSeeded(c net.Conn, plan Plan, seed int64) net.Conn {
	if !plan.enabled() {
		return c
	}
	return &conn{Conn: c, plan: plan, rng: rand.New(rand.NewSource(seed))}
}

// conn injects the plan's faults around an underlying connection. The
// PRNG is guarded by a mutex because the wire protocol reads and writes
// from different goroutines.
type conn struct {
	net.Conn
	plan Plan
	mu   sync.Mutex
	rng  *rand.Rand
	dead atomic.Bool
}

// draw samples everything one operation needs under a single lock so
// concurrent readers and writers interleave at operation granularity
// and the sequence stays reproducible per connection.
type faultDraw struct {
	latency time.Duration
	reset   bool
	stall   bool
	partial bool
	corrupt bool
	bit     int // which bit to flip, scaled by buffer length at use
}

func (c *conn) draw() faultDraw {
	c.mu.Lock()
	defer c.mu.Unlock()
	var d faultDraw
	p := c.plan
	if p.LatencyMax > 0 {
		d.latency = time.Duration(c.rng.Int63n(int64(p.LatencyMax) + 1))
	}
	d.reset = p.ResetProb > 0 && c.rng.Float64() < p.ResetProb
	d.stall = p.StallProb > 0 && c.rng.Float64() < p.StallProb
	d.partial = p.PartialWriteProb > 0 && c.rng.Float64() < p.PartialWriteProb
	d.corrupt = p.CorruptProb > 0 && c.rng.Float64() < p.CorruptProb
	d.bit = c.rng.Int()
	return d
}

// apply runs the pre-operation faults: stall, then latency, then reset.
// It returns ErrInjectedReset when the connection was killed (now or by
// an earlier operation).
func (c *conn) apply(d faultDraw) error {
	if c.dead.Load() {
		return ErrInjectedReset
	}
	if d.stall {
		f := c.plan.StallFor
		if f <= 0 {
			f = time.Second
		}
		time.Sleep(f)
	}
	if d.latency > 0 {
		time.Sleep(d.latency)
	}
	if d.reset {
		c.dead.Store(true)
		_ = c.Conn.Close()
		return ErrInjectedReset
	}
	return nil
}

func (c *conn) Read(p []byte) (int, error) {
	d := c.draw()
	if err := c.apply(d); err != nil {
		return 0, err
	}
	n, err := c.Conn.Read(p)
	if n > 0 && d.corrupt {
		bit := d.bit % (n * 8)
		p[bit/8] ^= 1 << (bit % 8)
	}
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	d := c.draw()
	if err := c.apply(d); err != nil {
		return 0, err
	}
	if d.partial && len(p) > 1 {
		cut := 1 + d.bit%(len(p)-1)
		n, err := c.Conn.Write(p[:cut])
		if err != nil {
			return n, err
		}
		time.Sleep(time.Millisecond)
		m, err := c.Conn.Write(p[cut:])
		return n + m, err
	}
	return c.Conn.Write(p)
}

func (c *conn) Close() error {
	c.dead.Store(true)
	return c.Conn.Close()
}

// Listener wraps accepted connections with the plan's faults. Each
// accepted connection gets an independent PRNG derived from the plan's
// seed and an accept counter, so one connection's traffic pattern does
// not perturb another's fault sequence.
func Listener(ln net.Listener, plan Plan) net.Listener {
	return &listener{Listener: ln, plan: plan}
}

type listener struct {
	net.Listener
	plan  Plan
	count atomic.Int64
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	n := l.count.Add(1)
	return wrapSeeded(c, l.plan, l.plan.Seed+n*0x9e3779b9), nil
}

// Proxy is a TCP relay that applies a fault plan between clients and a
// healthy target server: dial Proxy.Addr instead of the server and the
// connection's client side experiences the plan's latency, resets,
// stalls, and corruption while the server stays clean. This is the seam
// for exercising client-side resilience (pool retry, breaker) without
// touching server internals.
type Proxy struct {
	ln     net.Listener
	target string
	plan   Plan
	count  atomic.Int64
	closed atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// NewProxy starts a proxy on an ephemeral localhost port relaying to
// target with the plan's faults applied on the client-facing side.
func NewProxy(target string, plan Plan) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, plan: plan, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return
		}
		sc, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = cc.Close()
			continue
		}
		n := p.count.Add(1)
		fc := wrapSeeded(cc, p.plan, p.plan.Seed+n*0x6d2b79f5)
		p.track(fc, sc)
		p.wg.Add(2)
		go p.pipe(fc, sc)
		go p.pipe(sc, fc)
	}
}

func (p *Proxy) track(a, b net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conns[a] = struct{}{}
	p.conns[b] = struct{}{}
}

// pipe copies one direction until error, then severs both ends: a
// faulted half-connection should look like a dead socket, not a
// half-open one.
func (p *Proxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	_, _ = io.Copy(dst, src)
	_ = dst.Close()
	_ = src.Close()
	p.mu.Lock()
	delete(p.conns, dst)
	delete(p.conns, src)
	p.mu.Unlock()
}

// SeverAll hard-closes every live proxied connection, simulating a
// network partition mid-flight. The proxy keeps accepting new
// connections, so recovery paths can reconnect through it.
func (p *Proxy) SeverAll() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Close stops accepting, severs every connection, and waits for the
// relay goroutines to drain.
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	err := p.ln.Close()
	p.SeverAll()
	p.wg.Wait()
	return err
}
