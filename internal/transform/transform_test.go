package transform

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pickle"
	"repro/internal/script"
	"repro/internal/transfer"
)

func TestWrapFunction(t *testing.T) {
	src := WrapFunction("f", []string{"a", "b"}, "x = a + b\nreturn x")
	want := "def f(a, b):\n    x = a + b\n    return x\n"
	if src != want {
		t.Fatalf("wrap:\n%q\nwant\n%q", src, want)
	}
	if _, err := script.Parse("w", src); err != nil {
		t.Fatalf("wrapped source must parse: %v", err)
	}
	empty := WrapFunction("g", nil, "   ")
	if !strings.Contains(empty, "pass") {
		t.Fatalf("empty body needs pass: %q", empty)
	}
}

// TestBuildLocalScriptRunsListing2 generates the paper's Listing 2 shape
// and executes it end to end: input.bin → pickle.load → call.
func TestBuildLocalScriptRunsListing2(t *testing.T) {
	body := "mean = 0\nfor v in column:\n    mean += v\nreturn mean / len(column)"
	src := BuildLocalScript(LocalScriptInfo{
		Name:      "mean_of",
		Params:    []string{"column"},
		Body:      body,
		InputFile: "./input.bin",
	})
	// the generated script must contain the Listing 2 landmarks
	for _, landmark := range []string{
		"import pickle",
		"def mean_of(column):",
		"pickle.load(open('./input.bin', 'rb'))",
		"input_parameters",
	} {
		if !strings.Contains(src, landmark) {
			t.Fatalf("missing %q in generated script:\n%s", landmark, src)
		}
	}
	fs := core.NewMemFS(nil)
	params := script.NewDict()
	params.SetStr("column", script.NewList(
		script.IntVal(2), script.IntVal(4), script.IntVal(6)))
	if err := pickle.DumpFile(fs, "input.bin", params); err != nil {
		t.Fatal(err)
	}
	mod, err := script.Parse("local", src)
	if err != nil {
		t.Fatalf("generated script must parse: %v\n%s", err, src)
	}
	in := script.NewInterp()
	in.FS = fs
	env, err := in.Run(mod)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := env.Get("result")
	if v.Repr() != "4.0" {
		t.Fatalf("result: %s", v.Repr())
	}
}

func TestExtractBodyReversesBuild(t *testing.T) {
	body := "x = 1\nif x:\n    x = 2\nreturn x"
	src := BuildLocalScript(LocalScriptInfo{Name: "f", Params: []string{"a"}, Body: body})
	back, err := ExtractBody(src, "f")
	if err != nil {
		t.Fatal(err)
	}
	if back != body {
		t.Fatalf("extract:\n%q\nwant\n%q", back, body)
	}
	params, err := ExtractParams(src, "f")
	if err != nil || len(params) != 1 || params[0] != "a" {
		t.Fatalf("params: %v %v", params, err)
	}
}

func TestExtractBodyEditedFile(t *testing.T) {
	// user edited the body and removed the markers entirely
	src := `import pickle

def mean_deviation(column):
    mean = 0
    for v in column:
        mean += abs(v)
    return mean

other = 1
`
	body, err := ExtractBody(src, "mean_deviation")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "mean += abs(v)") || strings.Contains(body, "other") {
		t.Fatalf("body: %q", body)
	}
	if _, err := ExtractBody(src, "not_there"); err == nil {
		t.Fatal("missing function should error")
	}
}

func TestRewriteToExtractTableFunction(t *testing.T) {
	sql := `SELECT * FROM train_rnforest((SELECT data, labels FROM trainingset), 5)`
	out, err := RewriteToExtract(sql, "train_rnforest", transfer.Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sys_extract('train_rnforest', 'c=1;e=0;s=0;r=0'") {
		t.Fatalf("rewritten: %s", out)
	}
	if !strings.Contains(out, "(SELECT data, labels FROM trainingset)") {
		t.Fatalf("subquery argument must survive: %s", out)
	}
}

func TestRewriteToExtractProjectionCall(t *testing.T) {
	sql := `SELECT mean_deviation(i) FROM numbers WHERE i > 3`
	out, err := RewriteToExtract(sql, "mean_deviation", transfer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// the column argument must be wrapped in a subquery that preserves the
	// original FROM and WHERE
	if !strings.Contains(out, "sys_extract('mean_deviation'") {
		t.Fatalf("rewritten: %s", out)
	}
	if !strings.Contains(out, "FROM numbers") || !strings.Contains(out, "i > 3") {
		t.Fatalf("source context lost: %s", out)
	}
	if !strings.HasPrefix(out, "SELECT * FROM sys_extract") {
		t.Fatalf("projection call should hoist into FROM: %s", out)
	}
}

func TestRewriteToExtractMissingUDF(t *testing.T) {
	if _, err := RewriteToExtract(`SELECT a FROM t`, "f", transfer.Options{}); err == nil {
		t.Fatal("no call to rewrite should error")
	}
	if _, err := RewriteToExtract(`INSERT INTO t VALUES (1)`, "f", transfer.Options{}); err == nil {
		t.Fatal("non-select should error")
	}
}

func TestFindUDFCalls(t *testing.T) {
	isUDF := func(name string) bool {
		switch strings.ToLower(name) {
		case "mean_deviation", "train_rnforest", "loadnumbers":
			return true
		}
		return false
	}
	names, err := FindUDFCalls(
		`SELECT mean_deviation(i), SUM(i) FROM loadNumbers('/csvs') WHERE abs(i) > 0`, isUDF)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "mean_deviation" || names[1] != "loadNumbers" {
		t.Fatalf("names: %v", names)
	}
}

// TestFindLoopbackUDFsListing3 discovers the nested train_rnforest call
// inside find_best_classifier's loopback query (paper §2.3).
func TestFindLoopbackUDFsListing3(t *testing.T) {
	body := `
import pickle
(tdata, tlabels) = _conn.execute("""SELECT data,
    labels FROM testingset""")
for estimator in esttest:
    res = _conn.execute("""
        SELECT *
        FROM train_rnforest(
            (SELECT data, labels
            FROM trainingset), %d)
    """ % estimator)
`
	isUDF := func(name string) bool { return strings.EqualFold(name, "train_rnforest") }
	nested := FindLoopbackUDFs(body, isUDF)
	if len(nested) != 1 || nested[0] != "train_rnforest" {
		t.Fatalf("nested: %v", nested)
	}
	queries := LoopbackQueries(body)
	if len(queries) != 2 {
		t.Fatalf("queries: %d %v", len(queries), queries)
	}
}

func TestNeutralizePlaceholders(t *testing.T) {
	got := NeutralizePlaceholders("SELECT * FROM f(%d, '%s', %f)")
	if got != "SELECT * FROM f(0, '''', 0.0)" && !strings.Contains(got, "f(0,") {
		t.Fatalf("neutralized: %q", got)
	}
}
