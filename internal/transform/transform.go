// Package transform implements devUDF's code transformations (paper §2.2):
//
//   - WrapFunction: the server-side wrap that turns a stored body into a
//     callable definition (the database only stores the function body);
//   - BuildLocalScript: the client-side transformation of Listing 2 — add
//     the synthesized header, then a prologue that loads the function's
//     input parameters from a pickled input.bin and calls the function;
//   - ExtractBody: the reverse transformation applied on export, committing
//     only the function body back to the database;
//   - RewriteToExtract: the SQL rewrite that replaces the UDF call in the
//     user's query with the server-side extract function so the input data
//     is shipped to the client instead of executing the UDF (paper §2.2);
//   - FindUDFCalls / FindLoopbackUDFs: discovery of the debugged UDF in a
//     query and of nested UDFs reachable through _conn loopback queries
//     (paper §2.3).
package transform

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sqlparse"
	"repro/internal/transfer"
)

// WrapFunction synthesizes `def name(params):` around a stored body.
func WrapFunction(name string, params []string, body string) string {
	var sb strings.Builder
	sb.WriteString("def ")
	sb.WriteString(name)
	sb.WriteByte('(')
	sb.WriteString(strings.Join(params, ", "))
	sb.WriteString("):\n")
	if strings.TrimSpace(body) == "" {
		sb.WriteString("    pass\n")
		return sb.String()
	}
	for _, ln := range strings.Split(body, "\n") {
		if strings.TrimSpace(ln) == "" {
			sb.WriteByte('\n')
			continue
		}
		sb.WriteString("    ")
		sb.WriteString(ln)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Markers bracket the function definition inside generated local scripts so
// ExtractBody can reverse the transformation byte-exactly.
const (
	beginMarker = "# --- devUDF: function body (edit between markers) ---"
	endMarker   = "# --- devUDF: end function body ---"
)

// LocalScriptInfo describes the UDF a local script is generated for.
type LocalScriptInfo struct {
	Name      string
	Params    []string
	Body      string
	InputFile string // path the prologue loads, e.g. "./input.bin"
}

// BuildLocalScript generates the runnable debug script of paper Listing 2:
// header + function definition + pickled-input prologue + invocation. The
// result parses and runs under PyLite, and the IDE user edits the function
// body between the markers.
func BuildLocalScript(info LocalScriptInfo) string {
	var sb strings.Builder
	sb.WriteString("import pickle\n\n")
	sb.WriteString(beginMarker + "\n")
	sb.WriteString(WrapFunction(info.Name, info.Params, info.Body))
	sb.WriteString(endMarker + "\n\n")
	inputFile := info.InputFile
	if inputFile == "" {
		inputFile = "./input.bin"
	}
	sb.WriteString("input_parameters = pickle.load(open('" + inputFile + "', 'rb'))\n\n")
	sb.WriteString("result = " + info.Name + "(")
	for i, p := range info.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "input_parameters[%q]", p)
	}
	sb.WriteString(")\n")
	fmt.Fprintf(&sb, "print('devUDF: %s returned', repr(result))\n", info.Name)
	return sb.String()
}

// ExtractBody reverses BuildLocalScript: it locates the function definition
// (between markers if present, otherwise by its def line) and returns the
// dedented body — the only part committed back to the database on export.
func ExtractBody(source, name string) (string, error) {
	lines := strings.Split(source, "\n")
	begin, end := -1, -1
	for i, ln := range lines {
		switch strings.TrimSpace(ln) {
		case beginMarker:
			begin = i
		case endMarker:
			if end < 0 {
				end = i
			}
		}
	}
	if begin >= 0 && end > begin {
		lines = lines[begin+1 : end]
	}
	// find the def line
	defPrefix := "def " + name
	defIdx := -1
	for i, ln := range lines {
		trimmed := strings.TrimSpace(ln)
		if strings.HasPrefix(trimmed, defPrefix) &&
			(len(trimmed) == len(defPrefix) || !isIdentByte(trimmed[len(defPrefix)])) {
			defIdx = i
			break
		}
	}
	if defIdx < 0 {
		return "", core.Errorf(core.KindName,
			"could not find 'def %s(...)' in the source file", name)
	}
	var body []string
	for _, ln := range lines[defIdx+1:] {
		if strings.TrimSpace(ln) == "" {
			body = append(body, "")
			continue
		}
		if !strings.HasPrefix(ln, " ") && !strings.HasPrefix(ln, "\t") {
			break // dedent: function ended
		}
		body = append(body, ln)
	}
	for len(body) > 0 && body[len(body)-1] == "" {
		body = body[:len(body)-1]
	}
	if len(body) == 0 {
		return "", core.Errorf(core.KindConstraint, "function %s has an empty body", name)
	}
	return dedent(body), nil
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func dedent(lines []string) string {
	indent := -1
	for _, ln := range lines {
		if strings.TrimSpace(ln) == "" {
			continue
		}
		n := len(ln) - len(strings.TrimLeft(ln, " \t"))
		if indent < 0 || n < indent {
			indent = n
		}
	}
	if indent <= 0 {
		return strings.Join(lines, "\n")
	}
	out := make([]string, len(lines))
	for i, ln := range lines {
		if len(ln) >= indent {
			out[i] = ln[indent:]
		}
	}
	return strings.Join(out, "\n")
}

// ExtractParams parses the parameter names out of the script's def line.
func ExtractParams(source, name string) ([]string, error) {
	for _, ln := range strings.Split(source, "\n") {
		trimmed := strings.TrimSpace(ln)
		if !strings.HasPrefix(trimmed, "def "+name) {
			continue
		}
		open := strings.IndexByte(trimmed, '(')
		close := strings.LastIndexByte(trimmed, ')')
		if open < 0 || close < open {
			continue
		}
		inner := strings.TrimSpace(trimmed[open+1 : close])
		if inner == "" {
			return nil, nil
		}
		parts := strings.Split(inner, ",")
		out := make([]string, 0, len(parts))
		for _, p := range parts {
			p = strings.TrimSpace(p)
			if i := strings.IndexByte(p, '='); i >= 0 {
				p = strings.TrimSpace(p[:i])
			}
			if p != "" {
				out = append(out, p)
			}
		}
		return out, nil
	}
	return nil, core.Errorf(core.KindName, "could not find 'def %s(...)'", name)
}

// ExtractFuncName is the server-side table function the rewritten query
// calls instead of the UDF.
const ExtractFuncName = "sys_extract"

// RewriteToExtract replaces the call to udfName in the query with
// sys_extract('udfName', '<options>', <original arguments...>), preserving
// subquery arguments — the transformation of paper §2.2. It returns the
// rewritten SQL text.
func RewriteToExtract(sql, udfName string, opts transfer.Options) (string, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok {
		return "", core.Errorf(core.KindConstraint, "only SELECT queries can be rewritten for extraction")
	}
	replaced := 0
	rewriteCall := func(call *sqlparse.FuncCall) *sqlparse.FuncCall {
		if !strings.EqualFold(call.Name, udfName) {
			return call
		}
		replaced++
		args := append([]sqlparse.Expr{
			&sqlparse.StrLit{Value: call.Name},
			&sqlparse.StrLit{Value: opts.Encode()},
		}, call.Args...)
		return &sqlparse.FuncCall{Name: ExtractFuncName, Args: args}
	}
	rewriteSelect(sel, rewriteCall)
	if replaced == 0 {
		return "", core.Errorf(core.KindName,
			"query does not call UDF %q", udfName)
	}
	// The extract function is table-valued: if the UDF was called in the
	// projection (SELECT udf(col) FROM t), hoist the rewritten call into
	// FROM and select everything from it.
	if callInItems(sel, ExtractFuncName) {
		hoisted := hoistProjectionCall(sel)
		if hoisted != nil {
			sel = hoisted
		}
	}
	return sqlparse.Format(sel), nil
}

func callInItems(sel *sqlparse.Select, name string) bool {
	for _, item := range sel.Items {
		if item.Expr == nil {
			continue
		}
		if call, ok := item.Expr.(*sqlparse.FuncCall); ok && strings.EqualFold(call.Name, name) {
			return true
		}
	}
	return false
}

// hoistProjectionCall turns `SELECT sys_extract(args) FROM src [WHERE ...]`
// into `SELECT * FROM sys_extract('...', (SELECT args FROM src WHERE ...))`
// shape: each column argument becomes a subquery over the original source
// so filters still apply before extraction.
func hoistProjectionCall(sel *sqlparse.Select) *sqlparse.Select {
	if len(sel.Items) != 1 || sel.Items[0].Expr == nil {
		return nil
	}
	call, ok := sel.Items[0].Expr.(*sqlparse.FuncCall)
	if !ok {
		return nil
	}
	// Column-reference arguments need the original FROM/WHERE context;
	// wrap each in a subquery over it.
	for i, a := range call.Args {
		if needsSourceContext(a) {
			call.Args[i] = &sqlparse.Subquery{Sel: &sqlparse.Select{
				Items: []sqlparse.SelectItem{{Expr: a}},
				From:  sel.From,
				Where: sel.Where,
				Limit: -1,
			}}
		}
	}
	return &sqlparse.Select{
		Items: []sqlparse.SelectItem{{Star: true}},
		From:  &sqlparse.FromFunc{Call: call},
		Limit: -1,
	}
}

func needsSourceContext(e sqlparse.Expr) bool {
	switch e := e.(type) {
	case *sqlparse.ColRef:
		return true
	case *sqlparse.BinaryExpr:
		return needsSourceContext(e.L) || needsSourceContext(e.R)
	case *sqlparse.UnaryExpr:
		return needsSourceContext(e.X)
	case *sqlparse.CastExpr:
		return needsSourceContext(e.X)
	case *sqlparse.FuncCall:
		for _, a := range e.Args {
			if needsSourceContext(a) {
				return true
			}
		}
	}
	return false
}

// rewriteSelect walks a select, applying fn to every function call
// (projection, FROM, WHERE, nested subqueries).
func rewriteSelect(sel *sqlparse.Select, fn func(*sqlparse.FuncCall) *sqlparse.FuncCall) {
	for i, item := range sel.Items {
		if item.Expr != nil {
			sel.Items[i].Expr = rewriteExpr(item.Expr, fn)
		}
	}
	switch f := sel.From.(type) {
	case *sqlparse.FromFunc:
		f.Call = fn(f.Call)
		for i, a := range f.Call.Args {
			f.Call.Args[i] = rewriteExpr(a, fn)
		}
	case *sqlparse.FromSelect:
		rewriteSelect(f.Sel, fn)
	}
	if sel.Where != nil {
		sel.Where = rewriteExpr(sel.Where, fn)
	}
	for i, e := range sel.GroupBy {
		sel.GroupBy[i] = rewriteExpr(e, fn)
	}
	for i := range sel.OrderBy {
		sel.OrderBy[i].Expr = rewriteExpr(sel.OrderBy[i].Expr, fn)
	}
}

func rewriteExpr(e sqlparse.Expr, fn func(*sqlparse.FuncCall) *sqlparse.FuncCall) sqlparse.Expr {
	switch e := e.(type) {
	case *sqlparse.FuncCall:
		for i, a := range e.Args {
			e.Args[i] = rewriteExpr(a, fn)
		}
		return fn(e)
	case *sqlparse.BinaryExpr:
		e.L = rewriteExpr(e.L, fn)
		e.R = rewriteExpr(e.R, fn)
		return e
	case *sqlparse.UnaryExpr:
		e.X = rewriteExpr(e.X, fn)
		return e
	case *sqlparse.IsNullExpr:
		e.X = rewriteExpr(e.X, fn)
		return e
	case *sqlparse.CastExpr:
		e.X = rewriteExpr(e.X, fn)
		return e
	case *sqlparse.Subquery:
		rewriteSelect(e.Sel, fn)
		return e
	default:
		return e
	}
}

// FindUDFCalls returns the names of user functions a query calls, in
// discovery order (projection, FROM, WHERE, subqueries). isUDF filters
// catalog functions from builtins.
func FindUDFCalls(sql string, isUDF func(string) bool) ([]string, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok {
		return nil, nil
	}
	var out []string
	seen := map[string]bool{}
	rewriteSelect(sel, func(call *sqlparse.FuncCall) *sqlparse.FuncCall {
		lower := strings.ToLower(call.Name)
		if isUDF(call.Name) && !seen[lower] {
			seen[lower] = true
			out = append(out, call.Name)
		}
		return call
	})
	return out, nil
}

// FindLoopbackUDFs scans a UDF body for _conn.execute("...") loopback
// queries and returns the UDFs those queries call — the nested UDFs of
// paper §2.3 that must be imported and transformed alongside the main one.
func FindLoopbackUDFs(body string, isUDF func(string) bool) []string {
	var out []string
	seen := map[string]bool{}
	for _, q := range LoopbackQueries(body) {
		names, err := FindUDFCalls(q, isUDF)
		if err != nil {
			continue // not every embedded string is SQL
		}
		for _, n := range names {
			if !seen[strings.ToLower(n)] {
				seen[strings.ToLower(n)] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// LoopbackQueries extracts the string literals passed to _conn.execute in
// a UDF body. It tolerates the %-formatting placeholders of Listing 3 by
// substituting a neutral literal before parsing.
func LoopbackQueries(body string) []string {
	var out []string
	rest := body
	for {
		i := strings.Index(rest, "_conn.execute")
		if i < 0 {
			return out
		}
		rest = rest[i+len("_conn.execute"):]
		j := strings.IndexByte(rest, '(')
		if j < 0 {
			return out
		}
		lit, ok := firstStringLiteral(rest[j+1:])
		if !ok {
			continue
		}
		out = append(out, NeutralizePlaceholders(lit))
	}
}

// NeutralizePlaceholders replaces %-style placeholders with literals so the
// SQL parser can process format-string queries.
func NeutralizePlaceholders(sql string) string {
	replacer := strings.NewReplacer("%d", "0", "%s", "''", "%f", "0.0", "%g", "0.0", "%%", "%")
	return replacer.Replace(sql)
}

// firstStringLiteral pulls the first Python string literal (single, double
// or triple quoted) from s.
func firstStringLiteral(s string) (string, bool) {
	s = strings.TrimLeft(s, " \t\n\r")
	if s == "" {
		return "", false
	}
	for _, q := range []string{`"""`, `'''`, `"`, `'`} {
		if strings.HasPrefix(s, q) {
			rest := s[len(q):]
			end := strings.Index(rest, q)
			if end < 0 {
				return "", false
			}
			return rest[:end], true
		}
	}
	return "", false
}
