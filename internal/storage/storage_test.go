package storage

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"INT": TInt, "integer": TInt, "BIGINT": TInt,
		"DOUBLE": TFloat, "real": TFloat,
		"STRING": TStr, "VARCHAR": TStr, "text": TStr,
		"BOOLEAN": TBool, "bool": TBool,
		"BLOB": TBlob,
	}
	for name, want := range cases {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("GEOMETRY"); err == nil {
		t.Fatal("unknown type should fail")
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range []Type{TInt, TFloat, TStr, TBool, TBlob} {
		back, err := ParseType(typ.String())
		if err != nil || back != typ {
			t.Errorf("round trip %v -> %q -> %v, %v", typ, typ.String(), back, err)
		}
	}
}

func TestColumnAppendAndNulls(t *testing.T) {
	c := NewColumn("x", TInt)
	c.AppendInt(1)
	c.AppendNull()
	c.AppendInt(3)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.IsNull(0) || !c.IsNull(1) || c.IsNull(2) {
		t.Fatal("null bitmap wrong")
	}
	if c.Value(0) != int64(1) || c.Value(1) != nil || c.Value(2) != int64(3) {
		t.Fatalf("values: %v %v %v", c.Value(0), c.Value(1), c.Value(2))
	}
	if c.FormatValue(1) != "NULL" {
		t.Fatalf("format null: %s", c.FormatValue(1))
	}
}

func TestColumnCoercion(t *testing.T) {
	c := NewColumn("x", TInt)
	for _, v := range []any{int64(1), 2, 3.7, true, "42"} {
		if err := c.AppendValue(v); err != nil {
			t.Fatalf("AppendValue(%v): %v", v, err)
		}
	}
	if c.Ints[4] != 42 || c.Ints[3] != 1 || c.Ints[2] != 3 {
		t.Fatalf("coerced ints: %v", c.Ints)
	}
	if err := c.AppendValue("not a number"); err == nil {
		t.Fatal("bad string to int should fail")
	}
	f := NewColumn("f", TFloat)
	if err := f.AppendValue("2.5"); err != nil || f.Flts[0] != 2.5 {
		t.Fatalf("float coercion: %v %v", f.Flts, err)
	}
	b := NewColumn("b", TBlob)
	if err := b.AppendValue([]byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendValue(3.14); err == nil {
		t.Fatal("float to blob should fail")
	}
}

func TestColumnGather(t *testing.T) {
	c := NewColumn("x", TStr)
	for _, s := range []string{"a", "b", "c", "d"} {
		c.AppendStr(s)
	}
	c.AppendNull()
	g := c.Gather([]int{4, 2, 0})
	if g.Len() != 3 || !g.IsNull(0) || g.Strs[1] != "c" || g.Strs[2] != "a" {
		t.Fatalf("gather: %v nulls=%v", g.Strs, g.Nulls)
	}
}

func TestColumnCloneIsDeep(t *testing.T) {
	c := NewColumn("x", TBlob)
	c.AppendBlob([]byte{1})
	cl := c.Clone()
	cl.Blobs[0][0] = 9
	if c.Blobs[0][0] != 1 {
		t.Fatal("clone must deep-copy blobs")
	}
}

func TestTableAppendRow(t *testing.T) {
	tbl := NewTable("t", Schema{{"i", TInt}, {"s", TStr}})
	if err := tbl.AppendRow([]any{int64(1), "one"}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow([]any{nil, nil}); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if err := tbl.AppendRow([]any{int64(1)}); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	col, err := tbl.Column("S")
	if err != nil || col.Name != "s" {
		t.Fatalf("case-insensitive column lookup: %v %v", col, err)
	}
	if _, err := tbl.Column("zz"); err == nil {
		t.Fatal("missing column should fail")
	}
}

func TestLoadCSV(t *testing.T) {
	tbl := NewTable("n", Schema{{"i", TInt}})
	n, err := tbl.LoadCSV(strings.NewReader("1\n2\n3\n"), false)
	if err != nil || n != 3 {
		t.Fatalf("LoadCSV: %d %v", n, err)
	}
	if tbl.Cols[0].Ints[2] != 3 {
		t.Fatalf("data: %v", tbl.Cols[0].Ints)
	}
	tbl2 := NewTable("h", Schema{{"a", TInt}, {"b", TStr}})
	n, err = tbl2.LoadCSV(strings.NewReader("a,b\n1,x\n2,\n"), true)
	if err != nil || n != 2 {
		t.Fatalf("LoadCSV header: %d %v", n, err)
	}
	if !tbl2.Cols[1].IsNull(1) {
		t.Fatal("empty field should be NULL")
	}
	if _, err := tbl2.LoadCSV(strings.NewReader("1,2,3\n"), false); err == nil {
		t.Fatal("wrong field count should fail")
	}
}

func TestCatalogTables(t *testing.T) {
	c := NewCatalog()
	tbl := NewTable("numbers", Schema{{"i", TInt}})
	if err := c.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(NewTable("NUMBERS", nil)); err == nil {
		t.Fatal("duplicate (case-insensitive) table should fail")
	}
	got, err := c.Table("Numbers")
	if err != nil || got != tbl {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if err := c.DropTable("numbers"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("numbers"); err == nil {
		t.Fatal("dropped table should be gone")
	}
	if err := c.DropTable("numbers"); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestCatalogFunctions(t *testing.T) {
	c := NewCatalog()
	f := &FuncDef{
		Name:     "mean_deviation",
		Params:   Schema{{"column", TInt}},
		Language: "PYTHON",
		Body:     "return 1.0",
		Returns:  Schema{{"result", TFloat}},
	}
	if err := c.CreateFunction(f, false); err != nil {
		t.Fatal(err)
	}
	if f.ID != 1 {
		t.Fatalf("id = %d", f.ID)
	}
	if err := c.CreateFunction(f.Clone(), false); err == nil {
		t.Fatal("duplicate function should fail")
	}
	f2 := f.Clone()
	f2.Body = "return 2.0"
	if err := c.CreateFunction(f2, true); err != nil {
		t.Fatal(err)
	}
	got, err := c.Function("MEAN_DEVIATION")
	if err != nil || got.Body != "return 2.0" || got.ID != 1 {
		t.Fatalf("replace kept id and new body: %+v %v", got, err)
	}
	if !c.HasFunction("mean_deviation") {
		t.Fatal("HasFunction")
	}
	if err := c.DropFunction("mean_deviation"); err != nil {
		t.Fatal(err)
	}
	if c.HasFunction("mean_deviation") {
		t.Fatal("function should be gone")
	}
}

func TestSysFunctionsMetaTable(t *testing.T) {
	c := NewCatalog()
	_ = c.CreateFunction(&FuncDef{
		Name:     "train_rnforest",
		Params:   Schema{{"data", TFloat}, {"classes", TInt}, {"n_estimators", TInt}},
		Language: "PYTHON",
		Body:     "import pickle\nreturn 1",
		Returns:  Schema{{"clf", TBlob}, {"estimators", TInt}},
		IsTable:  true,
	}, false)
	mt, err := c.Table("sys.functions")
	if err != nil {
		t.Fatal(err)
	}
	if mt.NumRows() != 1 {
		t.Fatalf("rows = %d", mt.NumRows())
	}
	nameCol, _ := mt.Column("name")
	funcCol, _ := mt.Column("func")
	if nameCol.Strs[0] != "train_rnforest" || !strings.Contains(funcCol.Strs[0], "import pickle") {
		t.Fatalf("meta content: %v %v", nameCol.Strs, funcCol.Strs)
	}
	args, err := c.Table("sys.function_args")
	if err != nil {
		t.Fatal(err)
	}
	if args.NumRows() != 5 { // 3 params + 2 results
		t.Fatalf("args rows = %d", args.NumRows())
	}
	isres, _ := args.Column("is_result")
	count := 0
	for _, b := range isres.Bools {
		if b {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("result args = %d", count)
	}
}

func TestSysTablesAndColumns(t *testing.T) {
	c := NewCatalog()
	tbl := NewTable("data", Schema{{"x", TInt}, {"y", TStr}})
	_ = tbl.AppendRow([]any{int64(1), "a"})
	_ = c.CreateTable(tbl)
	st, err := c.Table("sys.tables")
	if err != nil || st.NumRows() != 1 {
		t.Fatalf("sys.tables: %v %v", st, err)
	}
	rows, _ := st.Column("rows")
	if rows.Ints[0] != 1 {
		t.Fatalf("row count: %v", rows.Ints)
	}
	sc, err := c.Table("sys.columns")
	if err != nil || sc.NumRows() != 2 {
		t.Fatalf("sys.columns: %v", err)
	}
}

func TestColumnValueRoundTripProperty(t *testing.T) {
	f := func(ints []int64, nullEvery uint8) bool {
		c := NewColumn("p", TInt)
		step := int(nullEvery%5) + 2
		for i, v := range ints {
			if i%step == 0 {
				c.AppendNull()
			} else {
				c.AppendInt(v)
			}
		}
		if c.Len() != len(ints) {
			return false
		}
		for i, v := range ints {
			if i%step == 0 {
				if !c.IsNull(i) || c.Value(i) != nil {
					return false
				}
			} else if c.Value(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
