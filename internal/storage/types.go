// Package storage implements the columnar storage layer of the embedded
// MonetDB-like engine: typed columns with validity bitmaps, tables, the
// catalog, and the sys.* meta tables that store UDF source code — the
// server-side state devUDF imports from and exports to.
package storage

import (
	"strings"

	"repro/internal/core"
)

// Type is a SQL column type.
type Type int

// SQL column types supported by the engine.
const (
	TInt Type = iota
	TFloat
	TStr
	TBool
	TBlob
)

// String renders the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INTEGER"
	case TFloat:
		return "DOUBLE"
	case TStr:
		return "STRING"
	case TBool:
		return "BOOLEAN"
	case TBlob:
		return "BLOB"
	default:
		return "UNKNOWN"
	}
}

// ParseType resolves a SQL type name (with common aliases) to a Type.
func ParseType(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return TInt, nil
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL", "NUMERIC":
		return TFloat, nil
	case "STRING", "VARCHAR", "TEXT", "CHAR", "CLOB":
		return TStr, nil
	case "BOOLEAN", "BOOL":
		return TBool, nil
	case "BLOB", "BYTEA", "BINARY":
		return TBlob, nil
	default:
		return 0, core.Errorf(core.KindSyntax, "unknown type %q", name)
	}
}

// ColumnDef is a named, typed column in a schema.
type ColumnDef struct {
	Name string
	Type Type
}

// Schema is an ordered list of column definitions.
type Schema []ColumnDef

// ColumnIndex returns the position of a column by case-insensitive name, or
// -1 when absent.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Clone deep-copies the schema.
func (s Schema) Clone() Schema { return append(Schema(nil), s...) }
