package storage

import (
	"fmt"
	"strconv"

	"repro/internal/core"
)

// Column is a typed value vector with a validity (null) bitmap. Exactly one
// of the typed slices is populated, matching Typ — the operator-at-a-time
// engine passes these whole vectors to UDFs, which is the MonetDB execution
// model the paper relies on.
type Column struct {
	Name  string
	Typ   Type
	Ints  []int64
	Flts  []float64
	Strs  []string
	Bools []bool
	Blobs [][]byte
	Nulls []bool // parallel validity; nil means no nulls
}

// NewColumn creates an empty column of the given type.
func NewColumn(name string, t Type) *Column { return &Column{Name: name, Typ: t} }

// Len returns the number of rows.
func (c *Column) Len() int {
	switch c.Typ {
	case TInt:
		return len(c.Ints)
	case TFloat:
		return len(c.Flts)
	case TStr:
		return len(c.Strs)
	case TBool:
		return len(c.Bools)
	case TBlob:
		return len(c.Blobs)
	default:
		return 0
	}
}

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool { return c.Nulls != nil && c.Nulls[i] }

func (c *Column) growNulls() {
	if c.Nulls != nil {
		c.Nulls = append(c.Nulls, false)
	}
}

// AppendInt appends an integer row.
func (c *Column) AppendInt(v int64) { c.Ints = append(c.Ints, v); c.growNulls() }

// AppendFloat appends a float row.
func (c *Column) AppendFloat(v float64) { c.Flts = append(c.Flts, v); c.growNulls() }

// AppendStr appends a string row.
func (c *Column) AppendStr(v string) { c.Strs = append(c.Strs, v); c.growNulls() }

// AppendBool appends a boolean row.
func (c *Column) AppendBool(v bool) { c.Bools = append(c.Bools, v); c.growNulls() }

// AppendBlob appends a blob row.
func (c *Column) AppendBlob(v []byte) { c.Blobs = append(c.Blobs, v); c.growNulls() }

// AppendNull appends a NULL row.
func (c *Column) AppendNull() {
	switch c.Typ {
	case TInt:
		c.Ints = append(c.Ints, 0)
	case TFloat:
		c.Flts = append(c.Flts, 0)
	case TStr:
		c.Strs = append(c.Strs, "")
	case TBool:
		c.Bools = append(c.Bools, false)
	case TBlob:
		c.Blobs = append(c.Blobs, nil)
	}
	if c.Nulls == nil {
		c.Nulls = make([]bool, c.Len())
	} else {
		c.Nulls = append(c.Nulls, false)
	}
	c.Nulls[c.Len()-1] = true
}

// Value returns row i as a Go value (nil for NULL).
func (c *Column) Value(i int) any {
	if c.IsNull(i) {
		return nil
	}
	switch c.Typ {
	case TInt:
		return c.Ints[i]
	case TFloat:
		return c.Flts[i]
	case TStr:
		return c.Strs[i]
	case TBool:
		return c.Bools[i]
	case TBlob:
		return c.Blobs[i]
	default:
		return nil
	}
}

// AppendValue appends a Go value with coercion to the column type. nil
// appends NULL.
func (c *Column) AppendValue(v any) error {
	if v == nil {
		c.AppendNull()
		return nil
	}
	switch c.Typ {
	case TInt:
		switch v := v.(type) {
		case int64:
			c.AppendInt(v)
		case int:
			c.AppendInt(int64(v))
		case float64:
			c.AppendInt(int64(v))
		case bool:
			if v {
				c.AppendInt(1)
			} else {
				c.AppendInt(0)
			}
		case string:
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return core.Errorf(core.KindType, "cannot convert %q to INTEGER", v)
			}
			c.AppendInt(n)
		default:
			return coerceErr(v, c.Typ)
		}
	case TFloat:
		switch v := v.(type) {
		case float64:
			c.AppendFloat(v)
		case int64:
			c.AppendFloat(float64(v))
		case int:
			c.AppendFloat(float64(v))
		case string:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return core.Errorf(core.KindType, "cannot convert %q to DOUBLE", v)
			}
			c.AppendFloat(f)
		default:
			return coerceErr(v, c.Typ)
		}
	case TStr:
		switch v := v.(type) {
		case string:
			c.AppendStr(v)
		case int64:
			c.AppendStr(strconv.FormatInt(v, 10))
		case float64:
			c.AppendStr(strconv.FormatFloat(v, 'g', -1, 64))
		case bool:
			c.AppendStr(strconv.FormatBool(v))
		default:
			return coerceErr(v, c.Typ)
		}
	case TBool:
		switch v := v.(type) {
		case bool:
			c.AppendBool(v)
		case int64:
			c.AppendBool(v != 0)
		default:
			return coerceErr(v, c.Typ)
		}
	case TBlob:
		switch v := v.(type) {
		case []byte:
			c.AppendBlob(v)
		case string:
			c.AppendBlob([]byte(v))
		default:
			return coerceErr(v, c.Typ)
		}
	}
	return nil
}

func coerceErr(v any, t Type) error {
	return core.Errorf(core.KindType, "cannot store %T in %s column", v, t)
}

// BindValue builds a length-1 column from a Go bind argument, inferring
// the SQL type from the Go type: int/int32/int64 → INTEGER, float32/
// float64 → DOUBLE, string → STRING, bool → BOOLEAN, []byte → BLOB. nil
// binds NULL. It is the shared typing rule of the prepared-statement
// surfaces (engine Stmt binding and the wire MsgExecStmt arg encoding).
func BindValue(v any) (*Column, error) {
	switch v := v.(type) {
	case nil:
		col := NewColumn("", TStr)
		col.AppendNull()
		return col, nil
	case int64:
		col := NewColumn("", TInt)
		col.AppendInt(v)
		return col, nil
	case int:
		col := NewColumn("", TInt)
		col.AppendInt(int64(v))
		return col, nil
	case int32:
		col := NewColumn("", TInt)
		col.AppendInt(int64(v))
		return col, nil
	case float64:
		col := NewColumn("", TFloat)
		col.AppendFloat(v)
		return col, nil
	case float32:
		col := NewColumn("", TFloat)
		col.AppendFloat(float64(v))
		return col, nil
	case string:
		col := NewColumn("", TStr)
		col.AppendStr(v)
		return col, nil
	case bool:
		col := NewColumn("", TBool)
		col.AppendBool(v)
		return col, nil
	case []byte:
		col := NewColumn("", TBlob)
		// copy: the caller may reuse its buffer between executions, and a
		// prepared INSERT stores the bound value (database/sql semantics)
		col.AppendBlob(append([]byte(nil), v...))
		return col, nil
	default:
		return nil, core.Errorf(core.KindType, "cannot bind a %T parameter", v)
	}
}

// Reserve grows the column's capacity so that n more rows can be appended
// without reallocation. Call it wherever the result length is known before
// an append loop.
func (c *Column) Reserve(n int) {
	switch c.Typ {
	case TInt:
		if cap(c.Ints)-len(c.Ints) < n {
			c.Ints = append(make([]int64, 0, len(c.Ints)+n), c.Ints...)
		}
	case TFloat:
		if cap(c.Flts)-len(c.Flts) < n {
			c.Flts = append(make([]float64, 0, len(c.Flts)+n), c.Flts...)
		}
	case TStr:
		if cap(c.Strs)-len(c.Strs) < n {
			c.Strs = append(make([]string, 0, len(c.Strs)+n), c.Strs...)
		}
	case TBool:
		if cap(c.Bools)-len(c.Bools) < n {
			c.Bools = append(make([]bool, 0, len(c.Bools)+n), c.Bools...)
		}
	case TBlob:
		if cap(c.Blobs)-len(c.Blobs) < n {
			c.Blobs = append(make([][]byte, 0, len(c.Blobs)+n), c.Blobs...)
		}
	}
	if c.Nulls != nil && cap(c.Nulls)-len(c.Nulls) < n {
		c.Nulls = append(make([]bool, 0, len(c.Nulls)+n), c.Nulls...)
	}
}

// Truncate drops every row past n (no-op when the column is already at or
// below n rows). Blob and string tails are nilled out so the backing arrays
// do not pin dropped payloads.
func (c *Column) Truncate(n int) {
	if n < 0 || n >= c.Len() {
		return
	}
	switch c.Typ {
	case TInt:
		c.Ints = c.Ints[:n]
	case TFloat:
		c.Flts = c.Flts[:n]
	case TStr:
		for i := n; i < len(c.Strs); i++ {
			c.Strs[i] = ""
		}
		c.Strs = c.Strs[:n]
	case TBool:
		c.Bools = c.Bools[:n]
	case TBlob:
		for i := n; i < len(c.Blobs); i++ {
			c.Blobs[i] = nil
		}
		c.Blobs = c.Blobs[:n]
	}
	if c.Nulls != nil {
		c.Nulls = c.Nulls[:n]
	}
}

// Clone deep-copies the column.
func (c *Column) Clone() *Column {
	out := &Column{Name: c.Name, Typ: c.Typ}
	out.Ints = append([]int64(nil), c.Ints...)
	out.Flts = append([]float64(nil), c.Flts...)
	out.Strs = append([]string(nil), c.Strs...)
	out.Bools = append([]bool(nil), c.Bools...)
	if c.Blobs != nil {
		out.Blobs = make([][]byte, len(c.Blobs))
		for i, b := range c.Blobs {
			out.Blobs[i] = append([]byte(nil), b...)
		}
	}
	out.Nulls = append([]bool(nil), c.Nulls...)
	return out
}

// gatherIdx is the shared typed gather: output buffers sized up front,
// branch-free value loops, and a validity bitmap only when a gathered
// row is actually NULL.
func gatherIdx[I int | int32](c *Column, idx []I) *Column {
	out := &Column{Name: c.Name, Typ: c.Typ}
	n := len(idx)
	switch c.Typ {
	case TInt:
		out.Ints = make([]int64, n)
		for o, i := range idx {
			out.Ints[o] = c.Ints[i]
		}
	case TFloat:
		out.Flts = make([]float64, n)
		for o, i := range idx {
			out.Flts[o] = c.Flts[i]
		}
	case TStr:
		out.Strs = make([]string, n)
		for o, i := range idx {
			out.Strs[o] = c.Strs[i]
		}
	case TBool:
		out.Bools = make([]bool, n)
		for o, i := range idx {
			out.Bools[o] = c.Bools[i]
		}
	case TBlob:
		out.Blobs = make([][]byte, n)
		for o, i := range idx {
			out.Blobs[o] = c.Blobs[i]
		}
	}
	if c.Nulls != nil {
		nulls := make([]bool, n)
		any := false
		for o, i := range idx {
			nulls[o] = c.Nulls[i]
			any = any || c.Nulls[i]
		}
		if any {
			out.Nulls = nulls
		}
	}
	return out
}

// Gather returns a new column holding the rows at the given indexes, in
// order. Used by filters, sampling and ORDER BY.
func (c *Column) Gather(idx []int) *Column { return gatherIdx(c, idx) }

// GatherSel is Gather over an int32 selection vector — the filter path's
// materialization step, deferred until a result column is actually built.
func (c *Column) GatherSel(sel []int32) *Column { return gatherIdx(c, sel) }

// BroadcastTo replicates a length-1 column to n rows with pre-sized
// buffers — the projection/grouping broadcast that previously gathered
// through an n-long zero index slice.
func (c *Column) BroadcastTo(n int) *Column {
	out := &Column{Name: c.Name, Typ: c.Typ}
	switch c.Typ {
	case TInt:
		out.Ints = make([]int64, n)
		for i := range out.Ints {
			out.Ints[i] = c.Ints[0]
		}
	case TFloat:
		out.Flts = make([]float64, n)
		for i := range out.Flts {
			out.Flts[i] = c.Flts[0]
		}
	case TStr:
		out.Strs = make([]string, n)
		for i := range out.Strs {
			out.Strs[i] = c.Strs[0]
		}
	case TBool:
		out.Bools = make([]bool, n)
		for i := range out.Bools {
			out.Bools[i] = c.Bools[0]
		}
	case TBlob:
		out.Blobs = make([][]byte, n)
		for i := range out.Blobs {
			out.Blobs[i] = c.Blobs[0]
		}
	}
	if c.Nulls != nil && c.Nulls[0] {
		out.Nulls = make([]bool, n)
		for i := range out.Nulls {
			out.Nulls[i] = true
		}
	}
	return out
}

// AppendAll bulk-appends every row of o (same type) to c — the morsel
// result stitcher. Nulls are reconciled like Table.AppendTable.
func (c *Column) AppendAll(o *Column) error {
	if o.Typ != c.Typ {
		return core.Errorf(core.KindConstraint,
			"column %s: type mismatch appending %s to %s", c.Name, o.Typ, c.Typ)
	}
	if o.Nulls != nil && c.Nulls == nil {
		c.Nulls = make([]bool, c.Len())
	}
	switch c.Typ {
	case TInt:
		c.Ints = append(c.Ints, o.Ints...)
	case TFloat:
		c.Flts = append(c.Flts, o.Flts...)
	case TStr:
		c.Strs = append(c.Strs, o.Strs...)
	case TBool:
		c.Bools = append(c.Bools, o.Bools...)
	case TBlob:
		c.Blobs = append(c.Blobs, o.Blobs...)
	}
	if c.Nulls != nil {
		if o.Nulls != nil {
			c.Nulls = append(c.Nulls, o.Nulls...)
		} else {
			c.Nulls = append(c.Nulls, make([]bool, o.Len())...)
		}
	}
	return nil
}

// Slice returns a view of rows [lo, hi) aliasing c's backing arrays —
// the view must not be appended to or mutated.
func (c *Column) Slice(lo, hi int) *Column {
	sc := &Column{Name: c.Name, Typ: c.Typ}
	switch c.Typ {
	case TInt:
		sc.Ints = c.Ints[lo:hi]
	case TFloat:
		sc.Flts = c.Flts[lo:hi]
	case TStr:
		sc.Strs = c.Strs[lo:hi]
	case TBool:
		sc.Bools = c.Bools[lo:hi]
	case TBlob:
		sc.Blobs = c.Blobs[lo:hi]
	}
	if c.Nulls != nil {
		sc.Nulls = c.Nulls[lo:hi]
	}
	return sc
}

// FormatValue renders row i the way the SQL shell prints it.
func (c *Column) FormatValue(i int) string {
	if c.IsNull(i) {
		return "NULL"
	}
	switch c.Typ {
	case TInt:
		return strconv.FormatInt(c.Ints[i], 10)
	case TFloat:
		return strconv.FormatFloat(c.Flts[i], 'g', -1, 64)
	case TStr:
		return c.Strs[i]
	case TBool:
		return strconv.FormatBool(c.Bools[i])
	case TBlob:
		return fmt.Sprintf("<blob %dB>", len(c.Blobs[i]))
	default:
		return "?"
	}
}
