package storage

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
)

// Binary column/table codec, shared by the wire protocol's result sets and
// the database dump format.

// ByteReader is a bounds-checked cursor over an encoded payload.
type ByteReader struct {
	data []byte
}

// NewByteReader wraps data.
func NewByteReader(data []byte) *ByteReader { return &ByteReader{data: data} }

// Remaining returns the number of unread bytes.
func (r *ByteReader) Remaining() int { return len(r.data) }

// U8 reads one byte.
func (r *ByteReader) U8() (byte, error) {
	if len(r.data) < 1 {
		return 0, core.Errorf(core.KindProtocol, "truncated payload")
	}
	v := r.data[0]
	r.data = r.data[1:]
	return v, nil
}

// U32 reads a big-endian uint32.
func (r *ByteReader) U32() (uint32, error) {
	if len(r.data) < 4 {
		return 0, core.Errorf(core.KindProtocol, "truncated payload")
	}
	v := binary.BigEndian.Uint32(r.data)
	r.data = r.data[4:]
	return v, nil
}

// U64 reads a big-endian uint64.
func (r *ByteReader) U64() (uint64, error) {
	if len(r.data) < 8 {
		return 0, core.Errorf(core.KindProtocol, "truncated payload")
	}
	v := binary.BigEndian.Uint64(r.data)
	r.data = r.data[8:]
	return v, nil
}

// Str reads a length-prefixed string.
func (r *ByteReader) Str() (string, error) {
	n, err := r.U32()
	if err != nil {
		return "", err
	}
	if uint32(len(r.data)) < n {
		return "", core.Errorf(core.KindProtocol, "truncated payload")
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s, nil
}

// Bytes reads a length-prefixed byte slice (copied).
func (r *ByteReader) Bytes() ([]byte, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if uint32(len(r.data)) < n {
		return nil, core.Errorf(core.KindProtocol, "truncated payload")
	}
	b := make([]byte, n)
	copy(b, r.data[:n])
	r.data = r.data[n:]
	return b, nil
}

// Raw consumes n bytes without copying.
func (r *ByteReader) Raw(n int) ([]byte, error) {
	if len(r.data) < n {
		return nil, core.Errorf(core.KindProtocol, "truncated payload")
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b, nil
}

// AppendString appends a length-prefixed string.
func AppendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(buf []byte, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// EncodeColumn appends a column's binary encoding: name, type, row count,
// optional packed validity bitmap, then the typed payload.
func EncodeColumn(buf []byte, col *Column) []byte {
	return EncodeColumnRange(buf, col, 0, col.Len())
}

// EncodeColumnRange encodes rows [from, to) of col in the EncodeColumn
// format. The write-ahead log uses it to serialize an INSERT batch straight
// from the live table, without slicing a copy first.
func EncodeColumnRange(buf []byte, col *Column, from, to int) []byte {
	buf = AppendString(buf, col.Name)
	buf = append(buf, byte(col.Typ))
	n := to - from
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	if col.Nulls == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		// build the bitmap in place on buf — this runs per commit
		base := len(buf)
		for i := 0; i < (n+7)/8; i++ {
			buf = append(buf, 0)
		}
		for i := 0; i < n; i++ {
			if col.Nulls[from+i] {
				buf[base+i/8] |= 1 << (i % 8)
			}
		}
	}
	switch col.Typ {
	case TInt:
		for _, v := range col.Ints[from:to] {
			buf = binary.BigEndian.AppendUint64(buf, uint64(v))
		}
	case TFloat:
		for _, v := range col.Flts[from:to] {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
		}
	case TStr:
		for _, v := range col.Strs[from:to] {
			buf = AppendString(buf, v)
		}
	case TBool:
		for _, v := range col.Bools[from:to] {
			if v {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	case TBlob:
		for _, v := range col.Blobs[from:to] {
			buf = AppendBytes(buf, v)
		}
	}
	return buf
}

// DecodeColumn reads one column previously written by EncodeColumn.
func DecodeColumn(r *ByteReader) (*Column, error) {
	name, err := r.Str()
	if err != nil {
		return nil, err
	}
	tb, err := r.U8()
	if err != nil {
		return nil, err
	}
	typ := Type(tb)
	switch typ {
	case TInt, TFloat, TStr, TBool, TBlob:
	default:
		return nil, core.Errorf(core.KindProtocol, "unknown column type %d", tb)
	}
	n32, err := r.U32()
	if err != nil {
		return nil, err
	}
	n := int(n32)
	// An adversarial row count would drive n append loops (and for the
	// fixed-width types a giant Reserve) before the cursor runs dry: reject
	// any count the remaining payload cannot possibly hold, mirroring
	// DecodeTable's column-count cap.
	if need := minColumnBytes(typ, n); need > r.Remaining() {
		return nil, core.Errorf(core.KindProtocol,
			"implausible row count %d: needs >= %d bytes, %d remain", n, need, r.Remaining())
	}
	col := NewColumn(name, typ)
	hasNulls, err := r.U8()
	if err != nil {
		return nil, err
	}
	if hasNulls > 1 {
		return nil, core.Errorf(core.KindProtocol, "invalid null-bitmap flag %d", hasNulls)
	}
	var bitmap []byte
	if hasNulls == 1 {
		bitmap, err = r.Raw((n + 7) / 8)
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		switch typ {
		case TInt:
			v, err := r.U64()
			if err != nil {
				return nil, err
			}
			col.AppendInt(int64(v))
		case TFloat:
			v, err := r.U64()
			if err != nil {
				return nil, err
			}
			col.AppendFloat(math.Float64frombits(v))
		case TStr:
			s, err := r.Str()
			if err != nil {
				return nil, err
			}
			col.AppendStr(s)
		case TBool:
			b, err := r.U8()
			if err != nil {
				return nil, err
			}
			col.AppendBool(b == 1)
		case TBlob:
			b, err := r.Bytes()
			if err != nil {
				return nil, err
			}
			col.AppendBlob(b)
		}
	}
	if bitmap != nil {
		if col.Nulls == nil {
			col.Nulls = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			if bitmap[i/8]&(1<<(i%8)) != 0 {
				col.Nulls[i] = true
			}
		}
	}
	return col, nil
}

// minColumnBytes returns the smallest possible encoded size of n rows of
// type typ (excluding the null bitmap): the bound DecodeColumn uses to
// reject row counts the payload cannot back.
func minColumnBytes(typ Type, n int) int {
	switch typ {
	case TInt, TFloat:
		return n * 8
	case TBool:
		return n
	default: // TStr, TBlob: a 4-byte length prefix per row at minimum
		return n * 4
	}
}

// EncodeTable appends a table (name, column count, columns).
func EncodeTable(buf []byte, t *Table) []byte {
	return EncodeTableRange(buf, t, 0, t.NumRows())
}

// EncodeTableRange encodes rows [from, to) of every column of t in the
// EncodeTable format (decodable with DecodeTable).
func EncodeTableRange(buf []byte, t *Table, from, to int) []byte {
	buf = AppendString(buf, t.Name)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.Cols)))
	for _, col := range t.Cols {
		buf = EncodeColumnRange(buf, col, from, to)
	}
	return buf
}

// DecodeTable reads one table previously written by EncodeTable.
func DecodeTable(r *ByteReader) (*Table, error) {
	name, err := r.Str()
	if err != nil {
		return nil, err
	}
	ncols, err := r.U32()
	if err != nil {
		return nil, err
	}
	if ncols > 1<<16 {
		return nil, core.Errorf(core.KindProtocol, "implausible column count %d", ncols)
	}
	t := &Table{Name: name}
	for i := uint32(0); i < ncols; i++ {
		col, err := DecodeColumn(r)
		if err != nil {
			return nil, err
		}
		t.Cols = append(t.Cols, col)
	}
	return t, nil
}
