package storage

import (
	"sort"
	"strings"

	"repro/internal/core"
)

// FuncDef is a user-defined function stored in the catalog. Body holds the
// *source code* of the function body only — exactly how MonetDB stores
// Python UDFs (paper Listing 1) and the reason devUDF must re-synthesize a
// header on import.
type FuncDef struct {
	ID       int
	Name     string
	Params   Schema // parameter names and declared types
	Language string // "PYTHON" in this reproduction
	Body     string // function body source, without header
	// Returns describes the output: a single column for scalar functions,
	// multiple for table functions.
	Returns Schema
	// IsTable marks RETURNS TABLE(...) functions.
	IsTable bool
}

// Clone deep-copies the definition.
func (f *FuncDef) Clone() *FuncDef {
	out := *f
	out.Params = f.Params.Clone()
	out.Returns = f.Returns.Clone()
	return &out
}

// Catalog is the database catalog: tables and UDFs. It is not synchronized;
// the engine guards it with the database lock.
type Catalog struct {
	tables map[string]*Table
	funcs  map[string]*FuncDef
	nextID int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*Table{}, funcs: map[string]*FuncDef{}, nextID: 1}
}

func key(name string) string { return strings.ToLower(name) }

// CreateTable registers a new table.
func (c *Catalog) CreateTable(t *Table) error {
	k := key(t.Name)
	if _, ok := c.tables[k]; ok {
		return core.Errorf(core.KindConstraint, "table %q already exists", t.Name)
	}
	c.tables[k] = t
	return nil
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string) error {
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return core.Errorf(core.KindName, "no such table: %s", name)
	}
	delete(c.tables, k)
	return nil
}

// Table resolves a table by name, including the sys.* meta tables.
func (c *Catalog) Table(name string) (*Table, error) {
	if t, ok := c.tables[key(name)]; ok {
		return t, nil
	}
	if mt, ok := c.metaTable(name); ok {
		return mt, nil
	}
	return nil, core.Errorf(core.KindName, "no such table: %s", name)
}

// TableNames lists user tables sorted by name.
func (c *Catalog) TableNames() []string {
	names := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// CreateFunction registers a UDF. replace allows CREATE OR REPLACE.
func (c *Catalog) CreateFunction(f *FuncDef, replace bool) error {
	k := key(f.Name)
	if old, ok := c.funcs[k]; ok {
		if !replace {
			return core.Errorf(core.KindConstraint, "function %q already exists", f.Name)
		}
		f.ID = old.ID
		c.funcs[k] = f
		return nil
	}
	f.ID = c.nextID
	c.nextID++
	c.funcs[k] = f
	return nil
}

// InstallFunction registers a UDF preserving its pre-assigned ID — the
// restore/replay path of durable storage, where sys.functions IDs must
// survive a restart byte-for-byte. The ID counter advances past f.ID so
// later CreateFunction calls never collide with a replayed definition.
func (c *Catalog) InstallFunction(f *FuncDef, replace bool) error {
	k := key(f.Name)
	if _, ok := c.funcs[k]; ok && !replace {
		return core.Errorf(core.KindConstraint, "function %q already exists", f.Name)
	}
	c.funcs[k] = f
	if f.ID >= c.nextID {
		c.nextID = f.ID + 1
	}
	return nil
}

// NextID returns the next function ID the catalog would assign.
func (c *Catalog) NextID() int { return c.nextID }

// SetNextID forces the function ID counter, clamped so it never moves
// backwards past an installed definition's ID.
func (c *Catalog) SetNextID(n int) {
	if n > c.nextID {
		c.nextID = n
	}
}

// DropFunction removes a UDF.
func (c *Catalog) DropFunction(name string) error {
	k := key(name)
	if _, ok := c.funcs[k]; !ok {
		return core.Errorf(core.KindName, "no such function: %s", name)
	}
	delete(c.funcs, k)
	return nil
}

// Function resolves a UDF by name.
func (c *Catalog) Function(name string) (*FuncDef, error) {
	if f, ok := c.funcs[key(name)]; ok {
		return f, nil
	}
	return nil, core.Errorf(core.KindName, "no such function: %s", name)
}

// HasFunction reports whether a UDF exists.
func (c *Catalog) HasFunction(name string) bool {
	_, ok := c.funcs[key(name)]
	return ok
}

// Functions lists UDFs sorted by name.
func (c *Catalog) Functions() []*FuncDef {
	out := make([]*FuncDef, 0, len(c.funcs))
	for _, f := range c.funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// metaTable materializes the sys.* meta tables on demand. devUDF's import
// path reads UDF source through these, mirroring MonetDB's sys.functions.
func (c *Catalog) metaTable(name string) (*Table, bool) {
	switch key(name) {
	case "sys.functions":
		t := NewTable("sys.functions", Schema{
			{Name: "id", Type: TInt},
			{Name: "name", Type: TStr},
			{Name: "func", Type: TStr},
			{Name: "language", Type: TStr},
			{Name: "is_table", Type: TBool},
		})
		for _, f := range c.Functions() {
			_ = t.AppendRow([]any{int64(f.ID), f.Name, f.Body, f.Language, f.IsTable})
		}
		return t, true
	case "sys.function_args":
		t := NewTable("sys.function_args", Schema{
			{Name: "function_id", Type: TInt},
			{Name: "name", Type: TStr},
			{Name: "type", Type: TStr},
			{Name: "number", Type: TInt},
			{Name: "is_result", Type: TBool},
		})
		for _, f := range c.Functions() {
			for i, p := range f.Params {
				_ = t.AppendRow([]any{int64(f.ID), p.Name, p.Type.String(), int64(i), false})
			}
			for i, r := range f.Returns {
				_ = t.AppendRow([]any{int64(f.ID), r.Name, r.Type.String(), int64(i), true})
			}
		}
		return t, true
	case "sys.tables":
		t := NewTable("sys.tables", Schema{
			{Name: "name", Type: TStr},
			{Name: "rows", Type: TInt},
		})
		for _, name := range c.TableNames() {
			tbl := c.tables[key(name)]
			_ = t.AppendRow([]any{tbl.Name, int64(tbl.NumRows())})
		}
		return t, true
	case "sys.columns":
		t := NewTable("sys.columns", Schema{
			{Name: "table_name", Type: TStr},
			{Name: "name", Type: TStr},
			{Name: "type", Type: TStr},
			{Name: "number", Type: TInt},
		})
		for _, name := range c.TableNames() {
			tbl := c.tables[key(name)]
			for i, col := range tbl.Cols {
				_ = t.AppendRow([]any{tbl.Name, col.Name, col.Typ.String(), int64(i)})
			}
		}
		return t, true
	default:
		return nil, false
	}
}
