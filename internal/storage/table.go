package storage

import (
	"encoding/csv"
	"io"
	"strings"

	"repro/internal/core"
)

// Table is a named collection of equal-length columns.
type Table struct {
	Name string
	Cols []*Column
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	t := &Table{Name: name}
	for _, def := range schema {
		t.Cols = append(t.Cols, NewColumn(def.Name, def.Type))
	}
	return t
}

// Schema derives the table's schema from its columns.
func (t *Table) Schema() Schema {
	s := make(Schema, len(t.Cols))
	for i, c := range t.Cols {
		s[i] = ColumnDef{Name: c.Name, Type: c.Typ}
	}
	return s
}

// NumRows returns the row count (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// SliceRows returns a view table holding rows [lo, hi) of t. Column slices
// alias t's backing arrays — the view must not be appended to or mutated.
// The wire protocol uses it to batch large result sets into chunks; LIMIT
// uses it to truncate results without a gather copy.
func (t *Table) SliceRows(lo, hi int) *Table {
	out := &Table{Name: t.Name, Cols: make([]*Column, len(t.Cols))}
	for i, c := range t.Cols {
		out.Cols[i] = c.Slice(lo, hi)
	}
	return out
}

// AppendTable appends all rows of o (which must have the same schema) to t.
// The streaming client uses it to reassemble chunked result sets.
func (t *Table) AppendTable(o *Table) error {
	if len(o.Cols) != len(t.Cols) {
		return core.Errorf(core.KindConstraint,
			"cannot append %d-column batch to %d-column table", len(o.Cols), len(t.Cols))
	}
	for i, c := range t.Cols {
		oc := o.Cols[i]
		if oc.Typ != c.Typ {
			return core.Errorf(core.KindConstraint,
				"column %s: type mismatch appending batch", c.Name)
		}
		if oc.Nulls != nil && c.Nulls == nil {
			c.Nulls = make([]bool, c.Len())
		}
		switch c.Typ {
		case TInt:
			c.Ints = append(c.Ints, oc.Ints...)
		case TFloat:
			c.Flts = append(c.Flts, oc.Flts...)
		case TStr:
			c.Strs = append(c.Strs, oc.Strs...)
		case TBool:
			c.Bools = append(c.Bools, oc.Bools...)
		case TBlob:
			c.Blobs = append(c.Blobs, oc.Blobs...)
		}
		if c.Nulls != nil {
			if oc.Nulls != nil {
				c.Nulls = append(c.Nulls, oc.Nulls...)
			} else {
				c.Nulls = append(c.Nulls, make([]bool, oc.Len())...)
			}
		}
	}
	return nil
}

// Column returns the column with the given (case-insensitive) name.
func (t *Table) Column(name string) (*Column, error) {
	for _, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	return nil, core.Errorf(core.KindName, "no such column: %s.%s", t.Name, name)
}

// AppendRow appends one row of Go values with per-column coercion.
func (t *Table) AppendRow(vals []any) error {
	if len(vals) != len(t.Cols) {
		return core.Errorf(core.KindConstraint,
			"table %s has %d columns but %d values were supplied", t.Name, len(t.Cols), len(vals))
	}
	for i, v := range vals {
		if err := t.Cols[i].AppendValue(v); err != nil {
			return err
		}
	}
	return nil
}

// Truncate drops every row past n, keeping the schema. The engine uses it
// to roll a table back when a persistence hook refuses the batch that was
// just appended.
func (t *Table) Truncate(n int) {
	for _, c := range t.Cols {
		c.Truncate(n)
	}
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	out := &Table{Name: t.Name}
	for _, c := range t.Cols {
		out.Cols = append(out.Cols, c.Clone())
	}
	return out
}

// LoadCSV bulk-appends rows from CSV data. Values are coerced to the column
// types; empty fields become NULL. header reports whether the first record
// is a header line to skip.
func (t *Table) LoadCSV(r io.Reader, header bool) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(t.Cols)
	cr.TrimLeadingSpace = true
	n := 0
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, core.Wrapf(core.KindIO, err, "csv: %v", err)
		}
		if first && header {
			first = false
			continue
		}
		first = false
		vals := make([]any, len(rec))
		for i, f := range rec {
			if f == "" {
				vals[i] = nil
			} else {
				vals[i] = f
			}
		}
		if err := t.AppendRow(vals); err != nil {
			return n, err
		}
		n++
	}
}
