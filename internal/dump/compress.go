package dump

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
	"repro/internal/storage"
)

// Compressed column codec for V2 dumps and WAL snapshots. Each column
// carries one encoding byte after the shared framing (name, type, row
// count, null bitmap):
//
//	encPlain — the typed payload of the storage codec, verbatim
//	encRLE   — run-length encoding: u32 run count, then (u32 length, value)
//	           per run; chosen for any type with long runs of equal values
//	encDict  — dictionary encoding (strings only): u32 dictionary size, the
//	           distinct strings, then one u32 code per row
//
// The encoder sizes all three candidates exactly and writes the smallest,
// so a snapshot is never larger than the plain form by more than the one
// encoding byte. Values under NULL bits are encoded as stored (the engine
// keeps them zeroed), which makes decode a bit-exact inverse.
const (
	encPlain byte = 0
	encRLE   byte = 1
	encDict  byte = 2
)

// maxDumpRows caps the decoded row count of one column: RLE makes the
// "bytes remaining" bound of the storage codec too weak (a few bytes can
// legally describe millions of rows), so an absolute cap backstops
// adversarial inputs instead. 16M rows keeps the worst-case single-column
// allocation at 128MB while leaving plenty of headroom over any snapshot
// this engine realistically writes.
const maxDumpRows = 1 << 24

// maxDumpCells bounds the total decoded values across an entire restore
// (all tables, all columns) — see readColumnV2.
const maxDumpCells = 1 << 26

func appendColumnV2(buf []byte, col *storage.Column) []byte {
	buf = storage.AppendString(buf, col.Name)
	buf = append(buf, byte(col.Typ))
	n := col.Len()
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	if col.Nulls == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		bitmap := make([]byte, (n+7)/8)
		for i := 0; i < n; i++ {
			if col.Nulls[i] {
				bitmap[i/8] |= 1 << (i % 8)
			}
		}
		buf = append(buf, bitmap...)
	}
	switch enc := chooseEncoding(col); enc {
	case encRLE:
		buf = append(buf, encRLE)
		buf = appendRLE(buf, col)
	case encDict:
		buf = append(buf, encDict)
		buf = appendDict(buf, col)
	default:
		buf = append(buf, encPlain)
		buf = appendPlain(buf, col)
	}
	return buf
}

// chooseEncoding picks the smallest exact encoding for col.
func chooseEncoding(col *storage.Column) byte {
	n := col.Len()
	if n == 0 {
		return encPlain
	}
	switch col.Typ {
	case storage.TInt, storage.TFloat:
		plain := 8 * n
		rle := 4 + 12*countRuns(col)
		if rle < plain {
			return encRLE
		}
	case storage.TBool:
		plain := n
		rle := 4 + 5*countRuns(col)
		if rle < plain {
			return encRLE
		}
	case storage.TStr:
		plain := 0
		for _, s := range col.Strs {
			plain += 4 + len(s)
		}
		rle := 4
		prev := ""
		for i, s := range col.Strs {
			if i == 0 || s != prev {
				rle += 4 + 4 + len(s)
				prev = s
			}
		}
		dict := 4 + 4*n
		seen := make(map[string]struct{}, 64)
		for _, s := range col.Strs {
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				dict += 4 + len(s)
			}
		}
		switch {
		case dict < plain && dict <= rle:
			return encDict
		case rle < plain:
			return encRLE
		}
	}
	return encPlain
}

// countRuns returns the number of maximal runs of equal values. Floats
// compare by bit pattern so NaNs form runs too.
func countRuns(col *storage.Column) int {
	runs := 0
	switch col.Typ {
	case storage.TInt:
		for i, v := range col.Ints {
			if i == 0 || v != col.Ints[i-1] {
				runs++
			}
		}
	case storage.TFloat:
		for i, v := range col.Flts {
			if i == 0 || math.Float64bits(v) != math.Float64bits(col.Flts[i-1]) {
				runs++
			}
		}
	case storage.TBool:
		for i, v := range col.Bools {
			if i == 0 || v != col.Bools[i-1] {
				runs++
			}
		}
	}
	return runs
}

func appendPlain(buf []byte, col *storage.Column) []byte {
	switch col.Typ {
	case storage.TInt:
		for _, v := range col.Ints {
			buf = binary.BigEndian.AppendUint64(buf, uint64(v))
		}
	case storage.TFloat:
		for _, v := range col.Flts {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
		}
	case storage.TStr:
		for _, v := range col.Strs {
			buf = storage.AppendString(buf, v)
		}
	case storage.TBool:
		for _, v := range col.Bools {
			if v {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	case storage.TBlob:
		for _, v := range col.Blobs {
			buf = storage.AppendBytes(buf, v)
		}
	}
	return buf
}

// appendRLE writes (run length, value) pairs behind a run count.
func appendRLE(buf []byte, col *storage.Column) []byte {
	countAt := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, 0)
	runs := 0
	emit := func(length int, appendVal func([]byte) []byte) []byte {
		runs++
		buf = binary.BigEndian.AppendUint32(buf, uint32(length))
		return appendVal(buf)
	}
	switch col.Typ {
	case storage.TInt:
		for i := 0; i < len(col.Ints); {
			j := i
			for j < len(col.Ints) && col.Ints[j] == col.Ints[i] {
				j++
			}
			v := col.Ints[i]
			buf = emit(j-i, func(b []byte) []byte { return binary.BigEndian.AppendUint64(b, uint64(v)) })
			i = j
		}
	case storage.TFloat:
		for i := 0; i < len(col.Flts); {
			bits := math.Float64bits(col.Flts[i])
			j := i
			for j < len(col.Flts) && math.Float64bits(col.Flts[j]) == bits {
				j++
			}
			buf = emit(j-i, func(b []byte) []byte { return binary.BigEndian.AppendUint64(b, bits) })
			i = j
		}
	case storage.TBool:
		for i := 0; i < len(col.Bools); {
			j := i
			for j < len(col.Bools) && col.Bools[j] == col.Bools[i] {
				j++
			}
			v := byte(0)
			if col.Bools[i] {
				v = 1
			}
			buf = emit(j-i, func(b []byte) []byte { return append(b, v) })
			i = j
		}
	case storage.TStr:
		for i := 0; i < len(col.Strs); {
			j := i
			for j < len(col.Strs) && col.Strs[j] == col.Strs[i] {
				j++
			}
			v := col.Strs[i]
			buf = emit(j-i, func(b []byte) []byte { return storage.AppendString(b, v) })
			i = j
		}
	}
	binary.BigEndian.PutUint32(buf[countAt:], uint32(runs))
	return buf
}

// appendDict writes the distinct strings in first-appearance order, then
// one u32 code per row.
func appendDict(buf []byte, col *storage.Column) []byte {
	codes := make(map[string]uint32, 64)
	var dict []string
	for _, s := range col.Strs {
		if _, ok := codes[s]; !ok {
			codes[s] = uint32(len(dict))
			dict = append(dict, s)
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(dict)))
	for _, s := range dict {
		buf = storage.AppendString(buf, s)
	}
	for _, s := range col.Strs {
		buf = binary.BigEndian.AppendUint32(buf, codes[s])
	}
	return buf
}

// readColumnV2 decodes one compressed column, drawing decoded rows from
// budget. The per-column row cap alone is not enough: RLE expansion lets
// each few-byte column spec demand maxDumpRows of allocation, so a dump
// repeating such specs could soak up CPU and memory out of all proportion
// to its size. The budget bounds the whole restore.
func readColumnV2(br *storage.ByteReader, budget *int) (*storage.Column, error) {
	name, err := br.Str()
	if err != nil {
		return nil, err
	}
	tb, err := br.U8()
	if err != nil {
		return nil, err
	}
	typ := storage.Type(tb)
	switch typ {
	case storage.TInt, storage.TFloat, storage.TStr, storage.TBool, storage.TBlob:
	default:
		return nil, core.Errorf(core.KindProtocol, "unknown column type %d", tb)
	}
	n32, err := br.U32()
	if err != nil {
		return nil, err
	}
	n := int(n32)
	if n > maxDumpRows {
		return nil, core.Errorf(core.KindProtocol, "implausible row count %d", n)
	}
	if *budget -= n; *budget < 0 {
		return nil, core.Errorf(core.KindProtocol, "dump exceeds decode budget")
	}
	hasNulls, err := br.U8()
	if err != nil {
		return nil, err
	}
	if hasNulls > 1 {
		return nil, core.Errorf(core.KindProtocol, "invalid null-bitmap flag %d", hasNulls)
	}
	var bitmap []byte
	if hasNulls == 1 {
		if bitmap, err = br.Raw((n + 7) / 8); err != nil {
			return nil, err
		}
	}
	enc, err := br.U8()
	if err != nil {
		return nil, err
	}
	col := storage.NewColumn(name, typ)
	switch enc {
	case encPlain:
		if err := readPlain(br, col, n); err != nil {
			return nil, err
		}
	case encRLE:
		if err := readRLE(br, col, n); err != nil {
			return nil, err
		}
	case encDict:
		if typ != storage.TStr {
			return nil, core.Errorf(core.KindProtocol, "dictionary encoding on non-string column %q", name)
		}
		if err := readDict(br, col, n); err != nil {
			return nil, err
		}
	default:
		return nil, core.Errorf(core.KindProtocol, "unknown column encoding %d", enc)
	}
	if bitmap != nil {
		col.Nulls = make([]bool, n)
		for i := 0; i < n; i++ {
			if bitmap[i/8]&(1<<(i%8)) != 0 {
				col.Nulls[i] = true
			}
		}
	}
	return col, nil
}

func readPlain(br *storage.ByteReader, col *storage.Column, n int) error {
	// The remaining payload must plausibly back n rows before any append
	// loop runs — same bound as storage.DecodeColumn.
	need := n * 4
	switch col.Typ {
	case storage.TInt, storage.TFloat:
		need = n * 8
	case storage.TBool:
		need = n
	}
	if need > br.Remaining() {
		return core.Errorf(core.KindProtocol,
			"implausible row count %d: needs >= %d bytes, %d remain", n, need, br.Remaining())
	}
	col.Reserve(n)
	for i := 0; i < n; i++ {
		switch col.Typ {
		case storage.TInt:
			v, err := br.U64()
			if err != nil {
				return err
			}
			col.AppendInt(int64(v))
		case storage.TFloat:
			v, err := br.U64()
			if err != nil {
				return err
			}
			col.AppendFloat(math.Float64frombits(v))
		case storage.TStr:
			s, err := br.Str()
			if err != nil {
				return err
			}
			col.AppendStr(s)
		case storage.TBool:
			b, err := br.U8()
			if err != nil {
				return err
			}
			if b > 1 {
				return core.Errorf(core.KindProtocol, "invalid boolean byte %d", b)
			}
			col.AppendBool(b == 1)
		case storage.TBlob:
			b, err := br.Bytes()
			if err != nil {
				return err
			}
			col.AppendBlob(b)
		}
	}
	return nil
}

func readRLE(br *storage.ByteReader, col *storage.Column, n int) error {
	nruns32, err := br.U32()
	if err != nil {
		return err
	}
	nruns := int(nruns32)
	// each run costs at least 5 bytes (u32 length + 1-byte value)
	if nruns*5 > br.Remaining() {
		return core.Errorf(core.KindProtocol, "implausible run count %d", nruns)
	}
	col.Reserve(n)
	total := 0
	for r := 0; r < nruns; r++ {
		length32, err := br.U32()
		if err != nil {
			return err
		}
		length := int(length32)
		if length == 0 || total+length > n {
			return core.Errorf(core.KindProtocol, "RLE runs overflow row count %d", n)
		}
		total += length
		switch col.Typ {
		case storage.TInt:
			v, err := br.U64()
			if err != nil {
				return err
			}
			for i := 0; i < length; i++ {
				col.AppendInt(int64(v))
			}
		case storage.TFloat:
			v, err := br.U64()
			if err != nil {
				return err
			}
			for i := 0; i < length; i++ {
				col.AppendFloat(math.Float64frombits(v))
			}
		case storage.TBool:
			b, err := br.U8()
			if err != nil {
				return err
			}
			if b > 1 {
				return core.Errorf(core.KindProtocol, "invalid boolean byte %d", b)
			}
			for i := 0; i < length; i++ {
				col.AppendBool(b == 1)
			}
		case storage.TStr:
			s, err := br.Str()
			if err != nil {
				return err
			}
			for i := 0; i < length; i++ {
				col.AppendStr(s)
			}
		default:
			return core.Errorf(core.KindProtocol, "RLE encoding on blob column %q", col.Name)
		}
	}
	if total != n {
		return core.Errorf(core.KindProtocol, "RLE runs cover %d of %d rows", total, n)
	}
	return nil
}

func readDict(br *storage.ByteReader, col *storage.Column, n int) error {
	dictLen32, err := br.U32()
	if err != nil {
		return err
	}
	dictLen := int(dictLen32)
	// each entry costs at least its 4-byte length prefix, and a dictionary
	// larger than the row count cannot have come from the encoder
	if dictLen*4 > br.Remaining() || dictLen > n {
		return core.Errorf(core.KindProtocol, "implausible dictionary size %d", dictLen)
	}
	dict := make([]string, dictLen)
	for i := range dict {
		if dict[i], err = br.Str(); err != nil {
			return err
		}
	}
	if n*4 > br.Remaining() {
		return core.Errorf(core.KindProtocol,
			"implausible row count %d: needs >= %d bytes, %d remain", n, n*4, br.Remaining())
	}
	col.Reserve(n)
	for i := 0; i < n; i++ {
		code, err := br.U32()
		if err != nil {
			return err
		}
		if int(code) >= dictLen {
			return core.Errorf(core.KindProtocol, "dictionary code %d out of range (size %d)", code, dictLen)
		}
		col.AppendStr(dict[code])
	}
	return nil
}
