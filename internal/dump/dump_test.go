package dump

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

func seededDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	db.FS = core.NewMemFS(nil)
	conn := &engine.Conn{DB: db, User: "u", Password: "p"}
	for _, sql := range []string{
		`CREATE TABLE numbers (i INTEGER, s STRING, f DOUBLE, b BOOLEAN, bl BLOB)`,
		`INSERT INTO numbers VALUES (1, 'one', 1.5, TRUE, 'blob'), (NULL, NULL, NULL, NULL, NULL)`,
		`CREATE TABLE empty (x INTEGER)`,
		`CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {
    return 31.2
}`,
		`CREATE FUNCTION loader(path STRING) RETURNS TABLE(i INTEGER) LANGUAGE PYTHON {
    return [1]
}`,
	} {
		if _, err := conn.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	db := seededDB(t)
	var buf bytes.Buffer
	if err := Dump(db, &buf); err != nil {
		t.Fatal(err)
	}

	fresh := engine.NewDB()
	fresh.FS = core.NewMemFS(nil)
	if err := Restore(fresh, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	conn := &engine.Conn{DB: fresh, User: "u", Password: "p"}
	r, err := conn.Exec(`SELECT i, s FROM numbers ORDER BY i`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.NumRows() != 2 {
		t.Fatalf("rows: %d", r.Table.NumRows())
	}
	i, _ := r.Table.Column("i")
	if !i.IsNull(0) || i.Ints[1] != 1 {
		t.Fatalf("data: %v %v", i.Ints, i.Nulls)
	}
	// the restored UDF runs
	r, err = conn.Exec(`SELECT mean_deviation(i) FROM numbers WHERE i IS NOT NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.Cols[0].Flts[0] != 31.2 {
		t.Fatalf("udf: %v", r.Table.Cols[0].Flts)
	}
	// table function metadata survived
	r, err = conn.Exec(`SELECT is_table FROM sys.functions WHERE name = 'loader'`)
	if err != nil || !r.Table.Cols[0].Bools[0] {
		t.Fatalf("loader is_table: %v %v", r.Table.Cols, err)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	fresh := engine.NewDB()
	cases := [][]byte{
		nil,
		[]byte("not a dump"),
		[]byte("MLDUMP1\n"),                 // truncated counts
		[]byte("MLDUMP1\n\x00\x00\x00\x01"), // table promised, absent
		[]byte("MLDUMP1\nxxxxxxxxxxxxxxxxxxxxxx"), // garbage counts
	}
	for i, c := range cases {
		if err := Restore(fresh, bytes.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// trailing bytes rejected
	db := seededDB(t)
	var buf bytes.Buffer
	_ = Dump(db, &buf)
	buf.WriteByte(0xFF)
	if err := Restore(engine.NewDB(), bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestRestoreIntoNonEmptyDBFails(t *testing.T) {
	db := seededDB(t)
	var buf bytes.Buffer
	if err := Dump(db, &buf); err != nil {
		t.Fatal(err)
	}
	if err := Restore(db, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restoring over clashing names should fail")
	}
}

func TestDumpDeterministic(t *testing.T) {
	db := seededDB(t)
	var a, b bytes.Buffer
	if err := Dump(db, &a); err != nil {
		t.Fatal(err)
	}
	if err := Dump(db, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("dump must be deterministic")
	}
}
