package dump

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
)

// FuzzRestore drives the dump/snapshot decoder — the bytes a WAL recovery
// trusts at startup — with arbitrary input. It must reject corruption with
// an error, never panic, never allocate absurdly, and never leave a
// half-restored catalog behind.
func FuzzRestore(f *testing.F) {
	// Seed with real dumps of both format versions plus truncations and
	// bit flips of each, so the fuzzer starts inside the format.
	db := engine.NewDB()
	conn := &engine.Conn{DB: db, User: "u", Password: "p"}
	for _, sql := range []string{
		`CREATE TABLE seed (i INTEGER, s STRING, fl DOUBLE, b BOOLEAN, bl BLOB)`,
		`INSERT INTO seed VALUES (1, 'one', 1.5, TRUE, 'xx'), (1, 'one', 1.5, TRUE, 'xx'), (NULL, NULL, NULL, NULL, NULL)`,
		`CREATE FUNCTION sf(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return column
}`,
	} {
		if _, err := conn.Exec(sql); err != nil {
			f.Fatal(err)
		}
	}
	var v2 bytes.Buffer
	if err := Dump(db, &v2); err != nil {
		f.Fatal(err)
	}
	var v1 []byte
	lock := db.Lock(func(cat *storage.Catalog) error {
		t, err := cat.Table("seed")
		if err != nil {
			return err
		}
		fn, err := cat.Function("sf")
		if err != nil {
			return err
		}
		v1 = encodeV1([]*storage.Table{t}, []*storage.FuncDef{fn})
		return nil
	})
	if lock != nil {
		f.Fatal(lock)
	}

	f.Add(v2.Bytes())
	f.Add(v1)
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	f.Add(v1[:len(v1)/2])
	flipped := append([]byte{}, v2.Bytes()...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("MLDUMP2\n"))
	f.Add([]byte("MLDUMP1\n\x00\x00\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh := engine.NewDB()
		if err := Restore(fresh, bytes.NewReader(data)); err != nil {
			// Rejected input must leave the catalog untouched.
			err := fresh.Lock(func(cat *storage.Catalog) error {
				if n := len(cat.TableNames()); n != 0 {
					t.Fatalf("failed restore left %d tables", n)
				}
				if n := len(cat.Functions()); n != 0 {
					t.Fatalf("failed restore left %d functions", n)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	})
}
