// Package dump implements database persistence for the embedded engine:
// a binary snapshot of every user table and UDF definition. monetlited
// uses it to survive restarts (-persist flag); it is also how a developer
// ships a reproducible demo database.
package dump

import (
	"encoding/binary"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"
)

const magic = "MLDUMP1\n"

// Dump writes a snapshot of db (tables + functions) to w.
func Dump(db *engine.DB, w io.Writer) error {
	var buf []byte
	err := db.Lock(func(cat *storage.Catalog) error {
		buf = append(buf, magic...)
		names := cat.TableNames()
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(names)))
		for _, name := range names {
			t, err := cat.Table(name)
			if err != nil {
				return err
			}
			buf = storage.EncodeTable(buf, t)
		}
		funcs := cat.Functions()
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(funcs)))
		for _, f := range funcs {
			buf = encodeFunc(buf, f)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return core.Wrapf(core.KindIO, err, "write dump: %v", err)
	}
	return nil
}

func encodeFunc(buf []byte, f *storage.FuncDef) []byte {
	buf = storage.AppendString(buf, f.Name)
	buf = storage.AppendString(buf, f.Language)
	buf = storage.AppendString(buf, f.Body)
	if f.IsTable {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = encodeSchema(buf, f.Params)
	buf = encodeSchema(buf, f.Returns)
	return buf
}

func encodeSchema(buf []byte, s storage.Schema) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	for _, c := range s {
		buf = storage.AppendString(buf, c.Name)
		buf = append(buf, byte(c.Type))
	}
	return buf
}

// Restore loads a snapshot produced by Dump into db. The database should
// be empty; existing tables or functions with clashing names fail the
// restore.
func Restore(db *engine.DB, r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return core.Wrapf(core.KindIO, err, "read dump: %v", err)
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return core.Errorf(core.KindProtocol, "not a monetlite dump")
	}
	br := storage.NewByteReader(data[len(magic):])
	ntables, err := br.U32()
	if err != nil {
		return err
	}
	var tables []*storage.Table
	for i := uint32(0); i < ntables; i++ {
		t, err := storage.DecodeTable(br)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	nfuncs, err := br.U32()
	if err != nil {
		return err
	}
	var funcs []*storage.FuncDef
	for i := uint32(0); i < nfuncs; i++ {
		f, err := decodeFunc(br)
		if err != nil {
			return err
		}
		funcs = append(funcs, f)
	}
	if br.Remaining() != 0 {
		return core.Errorf(core.KindProtocol, "trailing bytes in dump")
	}
	return db.Lock(func(cat *storage.Catalog) error {
		for _, t := range tables {
			if err := cat.CreateTable(t); err != nil {
				return err
			}
		}
		for _, f := range funcs {
			if err := cat.CreateFunction(f, false); err != nil {
				return err
			}
		}
		return nil
	})
}

func decodeFunc(br *storage.ByteReader) (*storage.FuncDef, error) {
	f := &storage.FuncDef{}
	var err error
	if f.Name, err = br.Str(); err != nil {
		return nil, err
	}
	if f.Language, err = br.Str(); err != nil {
		return nil, err
	}
	if f.Body, err = br.Str(); err != nil {
		return nil, err
	}
	isTable, err := br.U8()
	if err != nil {
		return nil, err
	}
	f.IsTable = isTable == 1
	if f.Params, err = decodeSchema(br); err != nil {
		return nil, err
	}
	if f.Returns, err = decodeSchema(br); err != nil {
		return nil, err
	}
	return f, nil
}

func decodeSchema(br *storage.ByteReader) (storage.Schema, error) {
	n, err := br.U32()
	if err != nil {
		return nil, err
	}
	if n > 1<<12 {
		return nil, core.Errorf(core.KindProtocol, "implausible schema size %d", n)
	}
	var s storage.Schema
	for i := uint32(0); i < n; i++ {
		name, err := br.Str()
		if err != nil {
			return nil, err
		}
		tb, err := br.U8()
		if err != nil {
			return nil, err
		}
		typ := storage.Type(tb)
		switch typ {
		case storage.TInt, storage.TFloat, storage.TStr, storage.TBool, storage.TBlob:
		default:
			return nil, core.Errorf(core.KindProtocol, "unknown type %d in dump", tb)
		}
		s = append(s, storage.ColumnDef{Name: name, Type: typ})
	}
	return s, nil
}
