// Package dump implements database persistence for the embedded engine: a
// binary snapshot of every user table and UDF definition. It is the
// snapshot half of durable storage (internal/wal layers a write-ahead log
// on top), the monetlited -persist file, and how a developer ships a
// reproducible demo database.
//
// Two format versions exist. V1 ("MLDUMP1\n") stored plain columns and
// dropped function IDs, so sys.functions IDs drifted across a
// dump/restore cycle. V2 ("MLDUMP2\n") persists each FuncDef.ID and the
// catalog's next-ID counter, and compresses columns (dictionary-encoded
// strings, run-length-encoded runs — see compress.go). Dump always writes
// V2; Restore reads both.
package dump

import (
	"encoding/binary"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"
)

const (
	magicV1 = "MLDUMP1\n"
	magicV2 = "MLDUMP2\n"
)

// Dump writes a snapshot of db (tables + functions) to w.
func Dump(db *engine.DB, w io.Writer) error {
	var buf []byte
	err := db.Lock(func(cat *storage.Catalog) error {
		var err error
		buf, err = EncodeCatalog(cat)
		return err
	})
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return core.Wrapf(core.KindIO, err, "write dump: %v", err)
	}
	return nil
}

// EncodeCatalog serializes the catalog in the current (V2) format. The
// caller must hold the database lock; internal/wal calls it under
// DB.Lock to write checkpoint snapshots.
func EncodeCatalog(cat *storage.Catalog) ([]byte, error) {
	buf := []byte(magicV2)
	buf = binary.BigEndian.AppendUint32(buf, uint32(cat.NextID()))
	names := cat.TableNames()
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(names)))
	for _, name := range names {
		t, err := cat.Table(name)
		if err != nil {
			return nil, err
		}
		buf = storage.AppendString(buf, t.Name)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.Cols)))
		for _, col := range t.Cols {
			buf = appendColumnV2(buf, col)
		}
	}
	funcs := cat.Functions()
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(funcs)))
	for _, f := range funcs {
		buf = AppendFuncDef(buf, f)
	}
	return buf, nil
}

// AppendFuncDef appends a function definition in the V2 form (ID
// included). The WAL uses the same encoding for its CREATE FUNCTION and
// Go-UDF registration records.
func AppendFuncDef(buf []byte, f *storage.FuncDef) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.ID))
	return appendFuncBody(buf, f)
}

func appendFuncBody(buf []byte, f *storage.FuncDef) []byte {
	buf = storage.AppendString(buf, f.Name)
	buf = storage.AppendString(buf, f.Language)
	buf = storage.AppendString(buf, f.Body)
	if f.IsTable {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = encodeSchema(buf, f.Params)
	buf = encodeSchema(buf, f.Returns)
	return buf
}

func encodeSchema(buf []byte, s storage.Schema) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	for _, c := range s {
		buf = storage.AppendString(buf, c.Name)
		buf = append(buf, byte(c.Type))
	}
	return buf
}

// Restore loads a snapshot produced by Dump (either format version) into
// db, all-or-nothing: on any error the database is left exactly as it
// was. Existing tables or functions with clashing names fail the restore.
func Restore(db *engine.DB, r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return core.Wrapf(core.KindIO, err, "read dump: %v", err)
	}
	return db.Lock(func(cat *storage.Catalog) error {
		return RestoreCatalog(cat, data)
	})
}

// RestoreCatalog decodes a dump and commits it into cat all-or-nothing.
// The caller must hold the database lock; internal/wal calls it during
// crash recovery to load the newest valid snapshot.
func RestoreCatalog(cat *storage.Catalog, data []byte) error {
	v2 := false
	switch {
	case len(data) >= len(magicV2) && string(data[:len(magicV2)]) == magicV2:
		v2 = true
	case len(data) >= len(magicV1) && string(data[:len(magicV1)]) == magicV1:
	default:
		return core.Errorf(core.KindProtocol, "not a monetlite dump")
	}
	br := storage.NewByteReader(data[len(magicV2):])
	nextID := uint32(0)
	if v2 {
		var err error
		if nextID, err = br.U32(); err != nil {
			return err
		}
	}
	ntables, err := br.U32()
	if err != nil {
		return err
	}
	var tables []*storage.Table
	budget := maxDumpCells
	for i := uint32(0); i < ntables; i++ {
		var t *storage.Table
		if v2 {
			t, err = readTableV2(br, &budget)
		} else {
			t, err = storage.DecodeTable(br)
		}
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	nfuncs, err := br.U32()
	if err != nil {
		return err
	}
	var funcs []*storage.FuncDef
	for i := uint32(0); i < nfuncs; i++ {
		var f *storage.FuncDef
		if v2 {
			f, err = ReadFuncDef(br)
		} else {
			f, err = readFuncBody(br, 0)
		}
		if err != nil {
			return err
		}
		funcs = append(funcs, f)
	}
	if br.Remaining() != 0 {
		return core.Errorf(core.KindProtocol, "trailing bytes in dump")
	}

	// Stage into a scratch catalog first: duplicate names inside the dump
	// (and any other create failure) surface here, before the live catalog
	// is touched — a half-populated catalog was the old failure mode.
	scratch := storage.NewCatalog()
	for _, t := range tables {
		if err := scratch.CreateTable(t); err != nil {
			return err
		}
	}
	for _, f := range funcs {
		if v2 {
			err = scratch.InstallFunction(f, false)
		} else {
			err = scratch.CreateFunction(f, false)
		}
		if err != nil {
			return err
		}
	}

	// Commit into the live catalog; a clash with pre-existing state rolls
	// back everything staged so far.
	var doneTables, doneFuncs []string
	rollback := func() {
		for _, name := range doneTables {
			_ = cat.DropTable(name)
		}
		for _, name := range doneFuncs {
			_ = cat.DropFunction(name)
		}
	}
	for _, t := range tables {
		if err := cat.CreateTable(t); err != nil {
			rollback()
			return err
		}
		doneTables = append(doneTables, t.Name)
	}
	for _, f := range funcs {
		if v2 {
			err = cat.InstallFunction(f, false)
		} else {
			err = cat.CreateFunction(f, false)
		}
		if err != nil {
			rollback()
			return err
		}
		doneFuncs = append(doneFuncs, f.Name)
	}
	if v2 {
		cat.SetNextID(int(nextID))
	}
	return nil
}

// ReadFuncDef reads one V2 function definition (the AppendFuncDef form).
func ReadFuncDef(br *storage.ByteReader) (*storage.FuncDef, error) {
	id, err := br.U32()
	if err != nil {
		return nil, err
	}
	if id > 1<<30 {
		return nil, core.Errorf(core.KindProtocol, "implausible function id %d", id)
	}
	return readFuncBody(br, int(id))
}

func readFuncBody(br *storage.ByteReader, id int) (*storage.FuncDef, error) {
	f := &storage.FuncDef{ID: id}
	var err error
	if f.Name, err = br.Str(); err != nil {
		return nil, err
	}
	if f.Language, err = br.Str(); err != nil {
		return nil, err
	}
	if f.Body, err = br.Str(); err != nil {
		return nil, err
	}
	isTable, err := br.U8()
	if err != nil {
		return nil, err
	}
	if isTable > 1 {
		return nil, core.Errorf(core.KindProtocol, "invalid is_table flag %d", isTable)
	}
	f.IsTable = isTable == 1
	if f.Params, err = decodeSchema(br); err != nil {
		return nil, err
	}
	if f.Returns, err = decodeSchema(br); err != nil {
		return nil, err
	}
	return f, nil
}

func decodeSchema(br *storage.ByteReader) (storage.Schema, error) {
	n, err := br.U32()
	if err != nil {
		return nil, err
	}
	if n > 1<<12 {
		return nil, core.Errorf(core.KindProtocol, "implausible schema size %d", n)
	}
	var s storage.Schema
	for i := uint32(0); i < n; i++ {
		name, err := br.Str()
		if err != nil {
			return nil, err
		}
		tb, err := br.U8()
		if err != nil {
			return nil, err
		}
		typ := storage.Type(tb)
		switch typ {
		case storage.TInt, storage.TFloat, storage.TStr, storage.TBool, storage.TBlob:
		default:
			return nil, core.Errorf(core.KindProtocol, "unknown type %d in dump", tb)
		}
		s = append(s, storage.ColumnDef{Name: name, Type: typ})
	}
	return s, nil
}

func readTableV2(br *storage.ByteReader, budget *int) (*storage.Table, error) {
	name, err := br.Str()
	if err != nil {
		return nil, err
	}
	ncols, err := br.U32()
	if err != nil {
		return nil, err
	}
	if ncols > 1<<16 {
		return nil, core.Errorf(core.KindProtocol, "implausible column count %d", ncols)
	}
	t := &storage.Table{Name: name}
	rows := -1
	for i := uint32(0); i < ncols; i++ {
		col, err := readColumnV2(br, budget)
		if err != nil {
			return nil, err
		}
		if rows >= 0 && col.Len() != rows {
			return nil, core.Errorf(core.KindProtocol,
				"ragged table %q: column %q has %d rows, want %d", name, col.Name, col.Len(), rows)
		}
		rows = col.Len()
		t.Cols = append(t.Cols, col)
	}
	return t, nil
}
