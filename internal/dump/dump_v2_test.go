package dump

import (
	"bytes"
	"encoding/binary"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"
)

func exec(t *testing.T, db *engine.DB, sql string) *engine.Result {
	t.Helper()
	conn := &engine.Conn{DB: db, User: "u", Password: "p"}
	r, err := conn.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return r
}

// encodeV1 reproduces the legacy MLDUMP1 writer so compatibility with
// dumps written by older binaries stays under test.
func encodeV1(tables []*storage.Table, funcs []*storage.FuncDef) []byte {
	buf := []byte(magicV1)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(tables)))
	for _, t := range tables {
		buf = storage.EncodeTable(buf, t)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(funcs)))
	for _, f := range funcs {
		buf = appendFuncBody(buf, f)
	}
	return buf
}

func TestFunctionIDsSurviveRoundTrip(t *testing.T) {
	db := engine.NewDB()
	for _, sql := range []string{
		`CREATE FUNCTION zeta(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return column
}`,
		`CREATE FUNCTION alpha(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return column
}`,
		`DROP FUNCTION zeta`,
		`CREATE FUNCTION beta(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return column
}`,
	} {
		exec(t, db, sql)
	}
	// alpha id=2, beta id=3 (zeta burned id 1). V1 restore re-assigned in
	// name-sorted order, so alpha flipped to 1 and beta to 2 — the drift
	// this format version exists to fix.
	before := exec(t, db, `SELECT id, name FROM sys.functions ORDER BY name`)

	var buf bytes.Buffer
	if err := Dump(db, &buf); err != nil {
		t.Fatal(err)
	}
	fresh := engine.NewDB()
	if err := Restore(fresh, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	after := exec(t, fresh, `SELECT id, name FROM sys.functions ORDER BY name`)
	if before.Table.NumRows() != after.Table.NumRows() {
		t.Fatalf("function count changed: %d -> %d", before.Table.NumRows(), after.Table.NumRows())
	}
	for i := 0; i < before.Table.NumRows(); i++ {
		bID, aID := before.Table.Cols[0].Ints[i], after.Table.Cols[0].Ints[i]
		name := before.Table.Cols[1].Strs[i]
		if bID != aID {
			t.Fatalf("function %q id drifted: %d -> %d", name, bID, aID)
		}
	}
	// the next-ID counter came across too: a new function must not collide
	// with the burned id range
	exec(t, fresh, `CREATE FUNCTION gamma(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return column
}`)
	r := exec(t, fresh, `SELECT id FROM sys.functions WHERE name = 'gamma'`)
	maxBefore := int64(0)
	for _, id := range before.Table.Cols[0].Ints {
		if id > maxBefore {
			maxBefore = id
		}
	}
	if got := r.Table.Cols[0].Ints[0]; got <= maxBefore {
		t.Fatalf("new function reused id %d (existing max %d)", got, maxBefore)
	}
}

func TestV1DumpStillReadable(t *testing.T) {
	tbl := storage.NewTable("legacy", storage.Schema{
		{Name: "i", Type: storage.TInt},
		{Name: "s", Type: storage.TStr},
	})
	if err := tbl.AppendRow([]any{int64(7), "seven"}); err != nil {
		t.Fatal(err)
	}
	fn := &storage.FuncDef{
		Name: "plus_one", Language: "python",
		Body:    "    return [v + 1 for v in column]",
		Params:  storage.Schema{{Name: "column", Type: storage.TInt}},
		Returns: storage.Schema{{Name: "result", Type: storage.TInt}},
	}
	data := encodeV1([]*storage.Table{tbl}, []*storage.FuncDef{fn})

	db := engine.NewDB()
	if err := Restore(db, bytes.NewReader(data)); err != nil {
		t.Fatalf("v1 dump no longer readable: %v", err)
	}
	r := exec(t, db, `SELECT plus_one(i) FROM legacy`)
	if r.Table.NumRows() != 1 || r.Table.Cols[0].Ints[0] != 8 {
		t.Fatalf("v1 restore content: %v", r.Table.Cols[0].Ints)
	}
	// legacy dumps carry no IDs; restore assigns fresh ones
	r = exec(t, db, `SELECT id FROM sys.functions WHERE name = 'plus_one'`)
	if r.Table.Cols[0].Ints[0] < 1 {
		t.Fatalf("v1 function id: %v", r.Table.Cols[0].Ints)
	}
}

func TestRestoreAllOrNothingOnLiveClash(t *testing.T) {
	// The dump holds tables AND a function whose name clashes with a
	// pre-existing one. Tables restore first; the function clash must roll
	// them back, not leave a half-restored catalog (the old failure mode).
	src := engine.NewDB()
	exec(t, src, `CREATE TABLE fine (i INTEGER)`)
	exec(t, src, `INSERT INTO fine VALUES (1)`)
	exec(t, src, `CREATE FUNCTION clash(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return column
}`)
	var buf bytes.Buffer
	if err := Dump(src, &buf); err != nil {
		t.Fatal(err)
	}

	dst := engine.NewDB()
	exec(t, dst, `CREATE FUNCTION clash(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return column
}`)
	if err := Restore(dst, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("clashing restore must fail")
	}
	conn := &engine.Conn{DB: dst, User: "u", Password: "p"}
	if _, err := conn.Exec(`SELECT i FROM fine`); err == nil {
		t.Fatal("failed restore left table 'fine' behind")
	}
}

func TestRestoreRejectsDuplicateNameInDump(t *testing.T) {
	// Hand-craft a dump whose table section repeats the same table: the
	// scratch-catalog staging must reject it before the live catalog is
	// touched.
	src := engine.NewDB()
	exec(t, src, `CREATE TABLE dup (i INTEGER)`)
	exec(t, src, `INSERT INTO dup VALUES (1)`)
	var buf bytes.Buffer
	if err := Dump(src, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// layout: magic(8) nextID(4) ntables(4) <table bytes> nfuncs(4)
	tableBytes := data[16 : len(data)-4]
	forged := append([]byte{}, data[:12]...)
	forged = binary.BigEndian.AppendUint32(forged, 2)
	forged = append(forged, tableBytes...)
	forged = append(forged, tableBytes...)
	forged = binary.BigEndian.AppendUint32(forged, 0)

	dst := engine.NewDB()
	err := Restore(dst, bytes.NewReader(forged))
	if err == nil {
		t.Fatal("duplicate table name in dump must fail restore")
	}
	if !strings.Contains(err.Error(), "exists") {
		t.Fatalf("unexpected error: %v", err)
	}
	conn := &engine.Conn{DB: dst, User: "u", Password: "p"}
	if _, err := conn.Exec(`SELECT i FROM dup`); err == nil {
		t.Fatal("failed restore left table 'dup' behind")
	}
}

func TestCompressedColumnsRoundTrip(t *testing.T) {
	db := engine.NewDB()
	db.FS = core.NewMemFS(nil)
	exec(t, db, `CREATE TABLE mix (i INTEGER, f DOUBLE, s STRING, b BOOLEAN, bl BLOB)`)
	conn := &engine.Conn{DB: db, User: "u", Password: "p"}
	// long runs (RLE), low-cardinality strings (dict), NaN runs, nulls
	for i := 0; i < 300; i++ {
		val := i / 100 // 3 runs of 100
		var sql string
		if i%7 == 0 {
			sql = "INSERT INTO mix VALUES (" +
				strconv.Itoa(val) + ", NULL, NULL, TRUE, NULL)"
		} else {
			sql = "INSERT INTO mix VALUES (" +
				strconv.Itoa(val) + ", 2.5, 'tag-" + strconv.Itoa(val) + "', FALSE, 'bb')"
		}
		if _, err := conn.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Dump(db, &buf); err != nil {
		t.Fatal(err)
	}
	// 300 rows x (8B int + 8B float + ~9B str + 1B bool + ~6B blob) is
	// roughly 9KB plain; runs and dictionaries must beat that comfortably
	// (the nulls every 7th row break runs, and blobs never compress).
	if buf.Len() > 6000 {
		t.Fatalf("compressed dump unexpectedly large: %d bytes", buf.Len())
	}

	fresh := engine.NewDB()
	if err := Restore(fresh, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	fconn := &engine.Conn{DB: fresh, User: "u", Password: "p"}
	r, err := fconn.Exec(`SELECT i, f, s, b, bl FROM mix`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.NumRows() != 300 {
		t.Fatalf("rows: %d", r.Table.NumRows())
	}
	for i := 0; i < 300; i++ {
		if got := r.Table.Cols[0].Ints[i]; got != int64(i/100) {
			t.Fatalf("row %d int: %d", i, got)
		}
		if i%7 == 0 {
			if !r.Table.Cols[1].IsNull(i) || !r.Table.Cols[2].IsNull(i) {
				t.Fatalf("row %d nulls lost", i)
			}
			if !r.Table.Cols[3].Bools[i] {
				t.Fatalf("row %d bool", i)
			}
		} else {
			if r.Table.Cols[1].Flts[i] != 2.5 {
				t.Fatalf("row %d float: %v", i, r.Table.Cols[1].Flts[i])
			}
			if want := "tag-" + strconv.Itoa(i/100); r.Table.Cols[2].Strs[i] != want {
				t.Fatalf("row %d str: %q want %q", i, r.Table.Cols[2].Strs[i], want)
			}
			if string(r.Table.Cols[4].Blobs[i]) != "bb" {
				t.Fatalf("row %d blob: %q", i, r.Table.Cols[4].Blobs[i])
			}
		}
	}
}

func TestNaNRunsCompress(t *testing.T) {
	// NaN != NaN under ==, so naive run detection would never find a NaN
	// run; the encoder compares bit patterns.
	col := storage.NewColumn("f", storage.TFloat)
	for i := 0; i < 64; i++ {
		col.Flts = append(col.Flts, math.NaN())
	}
	buf := appendColumnV2(nil, col)
	// 64 plain floats = 512B payload; one RLE run is a handful of bytes.
	if len(buf) > 64 {
		t.Fatalf("NaN column not run-length encoded: %d bytes", len(buf))
	}
	br := storage.NewByteReader(buf)
	got, err := readColumnV2(br, newBudget())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 64 || !math.IsNaN(got.Flts[0]) || !math.IsNaN(got.Flts[63]) {
		t.Fatalf("NaN round trip: len=%d first=%v", got.Len(), got.Flts[0])
	}
}

func TestReadColumnV2RejectsCorruption(t *testing.T) {
	col := storage.NewColumn("i", storage.TInt)
	col.Ints = []int64{5, 5, 5, 5}
	valid := appendColumnV2(nil, col)

	mutate := func(f func([]byte) []byte) error {
		b := f(append([]byte{}, valid...))
		_, err := readColumnV2(storage.NewByteReader(b), newBudget())
		return err
	}
	cases := map[string]func([]byte) []byte{
		"bad type": func(b []byte) []byte {
			// layout: str name ("i": 4+1) then type byte
			b[5] = 99
			return b
		},
		"huge row count": func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[6:], 1<<31-1)
			return b
		},
		"bad null flag": func(b []byte) []byte {
			b[10] = 2
			return b
		},
		"bad encoding byte": func(b []byte) []byte {
			b[11] = 9
			return b
		},
		"truncated": func(b []byte) []byte {
			return b[:len(b)-3]
		},
	}
	for name, f := range cases {
		if err := mutate(f); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
	if _, err := readColumnV2(storage.NewByteReader(valid), newBudget()); err != nil {
		t.Fatalf("control: valid column rejected: %v", err)
	}
}

func newBudget() *int {
	b := maxDumpCells
	return &b
}
