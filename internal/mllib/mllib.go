// Package mllib is the reproduction's stand-in for scikit-learn: a small
// nearest-centroid classifier exposed to PyLite as both the `mllib` module
// and a `sklearn.ensemble.RandomForestClassifier` shim, so the paper's
// Listings 1 and 3 (train_rnforest / find_best_classifier) run unmodified.
//
// The substitution is documented in DESIGN.md: the tooling claims the paper
// makes (import/export/debug/pickle round-trips of a trained model) do not
// depend on the statistical quality of the classifier, only on its API
// surface — fit(data, labels), predict(data), pickling.
package mllib

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
	"repro/internal/script"
)

// Classifier is a nearest-centroid classifier over scalar features. The
// n parameter mirrors RandomForestClassifier(n_estimators): it quantizes
// each feature into n sub-bins per class before computing centroids, so
// larger n genuinely changes (usually improves) the fit, giving the
// paper's parameter-sweep demo (Listing 3) something real to optimize.
type Classifier struct {
	N         int64
	Labels    []int64   // class label per centroid
	Centroids []float64 // feature centroid per centroid
	Trained   bool
}

// Fit trains on parallel slices of features and labels.
func (c *Classifier) Fit(data []float64, labels []int64) error {
	if len(data) != len(labels) {
		return core.Errorf(core.KindConstraint,
			"fit: data and labels have different lengths (%d vs %d)", len(data), len(labels))
	}
	if len(data) == 0 {
		return core.Errorf(core.KindConstraint, "fit: empty training set")
	}
	if c.N < 1 {
		c.N = 1
	}
	// Group by class, then split each class's sorted feature values into up
	// to N contiguous bins and keep one centroid per bin.
	byClass := map[int64][]float64{}
	order := []int64{}
	for i, f := range data {
		l := labels[i]
		if _, ok := byClass[l]; !ok {
			order = append(order, l)
		}
		byClass[l] = append(byClass[l], f)
	}
	c.Labels = c.Labels[:0]
	c.Centroids = c.Centroids[:0]
	for _, label := range order {
		feats := byClass[label]
		insertionSort(feats)
		bins := int(c.N)
		if bins > len(feats) {
			bins = len(feats)
		}
		per := len(feats) / bins
		rem := len(feats) % bins
		idx := 0
		for b := 0; b < bins; b++ {
			n := per
			if b < rem {
				n++
			}
			if n == 0 {
				continue
			}
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += feats[idx+k]
			}
			idx += n
			c.Labels = append(c.Labels, label)
			c.Centroids = append(c.Centroids, sum/float64(n))
		}
	}
	c.Trained = true
	return nil
}

func insertionSort(fs []float64) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j] < fs[j-1]; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// Predict returns the label of the nearest centroid for each feature.
func (c *Classifier) Predict(data []float64) ([]int64, error) {
	if !c.Trained {
		return nil, core.Errorf(core.KindConstraint, "predict: classifier is not fitted yet")
	}
	out := make([]int64, len(data))
	for i, f := range data {
		best, bestDist := int64(0), math.Inf(1)
		for j, cen := range c.Centroids {
			d := math.Abs(f - cen)
			if d < bestDist {
				bestDist = d
				best = c.Labels[j]
			}
		}
		out[i] = best
	}
	return out, nil
}

// Score returns the fraction of correct predictions.
func (c *Classifier) Score(data []float64, labels []int64) (float64, error) {
	if len(data) != len(labels) {
		return 0, core.Errorf(core.KindConstraint, "score: length mismatch")
	}
	if len(data) == 0 {
		return 0, nil
	}
	pred, err := c.Predict(data)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i := range pred {
		if pred[i] == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(data)), nil
}

const pickleClass = "mllib.Classifier"

// PickleClass implements script.Picklable.
func (c *Classifier) PickleClass() string { return pickleClass }

// PickleData implements script.Picklable with a compact binary encoding.
func (c *Classifier) PickleData() ([]byte, error) {
	buf := binary.BigEndian.AppendUint64(nil, uint64(c.N))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.Labels)))
	for i := range c.Labels {
		buf = binary.BigEndian.AppendUint64(buf, uint64(c.Labels[i]))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.Centroids[i]))
	}
	if c.Trained {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf, nil
}

func unpickle(data []byte) (*Classifier, error) {
	if len(data) < 12 {
		return nil, core.Errorf(core.KindProtocol, "truncated classifier pickle")
	}
	c := &Classifier{N: int64(binary.BigEndian.Uint64(data))}
	n := binary.BigEndian.Uint32(data[8:])
	data = data[12:]
	if len(data) != int(n)*16+1 {
		return nil, core.Errorf(core.KindProtocol, "corrupt classifier pickle")
	}
	for i := uint32(0); i < n; i++ {
		c.Labels = append(c.Labels, int64(binary.BigEndian.Uint64(data)))
		c.Centroids = append(c.Centroids, math.Float64frombits(binary.BigEndian.Uint64(data[8:])))
		data = data[16:]
	}
	c.Trained = data[0] == 1
	return c, nil
}

func init() {
	script.RegisterUnpickler(pickleClass, func(data []byte) (script.Value, error) {
		c, err := unpickle(data)
		if err != nil {
			return nil, err
		}
		return wrap(c), nil
	})
	script.RegisterModule("mllib", buildModule)
	script.RegisterModule("sklearn.ensemble", buildSklearnModule)
	script.RegisterModule("sklearn", buildSklearnModule)
}

func toFloats(in *script.Interp, v script.Value) ([]float64, error) {
	items, err := script.ToSlice(in, v)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(items))
	for i, it := range items {
		f, ok := script.AsFloat(it)
		if !ok {
			return nil, core.Errorf(core.KindType, "expected numeric element, got %s", it.TypeName())
		}
		out[i] = f
	}
	return out, nil
}

func toInts(in *script.Interp, v script.Value) ([]int64, error) {
	items, err := script.ToSlice(in, v)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(items))
	for i, it := range items {
		switch n := it.(type) {
		case script.IntVal:
			out[i] = int64(n)
		case script.BoolVal:
			if n {
				out[i] = 1
			}
		case script.FloatVal:
			out[i] = int64(n)
		default:
			return nil, core.Errorf(core.KindType, "expected integer element, got %s", it.TypeName())
		}
	}
	return out, nil
}

// wrap exposes a Classifier to PyLite with the sklearn method surface.
func wrap(c *Classifier) *script.ObjectVal {
	obj := script.NewObject("Classifier")
	obj.Opaque = c
	obj.Methods["fit"] = func(in *script.Interp, args []script.Value, _ map[string]script.Value) (script.Value, error) {
		if len(args) != 2 {
			return nil, core.Errorf(core.KindType, "fit() takes exactly two arguments")
		}
		data, err := toFloats(in, args[0])
		if err != nil {
			return nil, err
		}
		labels, err := toInts(in, args[1])
		if err != nil {
			return nil, err
		}
		if err := c.Fit(data, labels); err != nil {
			return nil, err
		}
		return obj, nil
	}
	obj.Methods["predict"] = func(in *script.Interp, args []script.Value, _ map[string]script.Value) (script.Value, error) {
		if len(args) != 1 {
			return nil, core.Errorf(core.KindType, "predict() takes exactly one argument")
		}
		data, err := toFloats(in, args[0])
		if err != nil {
			return nil, err
		}
		pred, err := c.Predict(data)
		if err != nil {
			return nil, err
		}
		out := make([]script.Value, len(pred))
		for i, p := range pred {
			out[i] = script.IntVal(p)
		}
		return script.NewList(out...), nil
	}
	obj.Methods["score"] = func(in *script.Interp, args []script.Value, _ map[string]script.Value) (script.Value, error) {
		if len(args) != 2 {
			return nil, core.Errorf(core.KindType, "score() takes exactly two arguments")
		}
		data, err := toFloats(in, args[0])
		if err != nil {
			return nil, err
		}
		labels, err := toInts(in, args[1])
		if err != nil {
			return nil, err
		}
		s, err := c.Score(data, labels)
		if err != nil {
			return nil, err
		}
		return script.FloatVal(s), nil
	}
	obj.Attrs.SetStr("n_estimators", script.IntVal(c.N))
	return obj
}

func newClassifierBuiltin(name string) script.BuiltinFunc {
	return func(_ *script.Interp, args []script.Value, kwargs map[string]script.Value) (script.Value, error) {
		n := int64(1)
		if len(args) >= 1 {
			v, ok := args[0].(script.IntVal)
			if !ok {
				return nil, core.Errorf(core.KindType, "%s: n_estimators must be an integer", name)
			}
			n = int64(v)
		}
		if v, ok := kwargs["n_estimators"]; ok {
			iv, ok := v.(script.IntVal)
			if !ok {
				return nil, core.Errorf(core.KindType, "%s: n_estimators must be an integer", name)
			}
			n = int64(iv)
		}
		if n < 1 {
			return nil, core.Errorf(core.KindConstraint, "%s: n_estimators must be >= 1", name)
		}
		return wrap(&Classifier{N: n}), nil
	}
}

func buildModule(in *script.Interp) script.Value {
	m := script.NewObject("module")
	m.Attrs.SetStr("__name__", script.StrVal("mllib"))
	m.Methods["Classifier"] = newClassifierBuiltin("mllib.Classifier")
	return m
}

func buildSklearnModule(in *script.Interp) script.Value {
	m := script.NewObject("module")
	m.Attrs.SetStr("__name__", script.StrVal("sklearn.ensemble"))
	m.Methods["RandomForestClassifier"] = newClassifierBuiltin("RandomForestClassifier")
	ensemble := script.NewObject("module")
	ensemble.Attrs.SetStr("__name__", script.StrVal("sklearn.ensemble"))
	ensemble.Methods["RandomForestClassifier"] = newClassifierBuiltin("RandomForestClassifier")
	m.Attrs.SetStr("ensemble", ensemble)
	return m
}
