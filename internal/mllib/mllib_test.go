package mllib

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/script"
)

func TestFitPredict(t *testing.T) {
	c := &Classifier{N: 1}
	if err := c.Fit([]float64{1, 1.1, 0.9, 5, 5.1, 4.9}, []int64{0, 0, 0, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	pred, err := c.Predict([]float64{1.05, 5.05})
	if err != nil {
		t.Fatal(err)
	}
	if pred[0] != 0 || pred[1] != 1 {
		t.Fatalf("pred = %v", pred)
	}
}

func TestFitValidation(t *testing.T) {
	c := &Classifier{N: 1}
	if err := c.Fit([]float64{1}, []int64{0, 1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if err := c.Fit(nil, nil); err == nil {
		t.Fatal("empty training set should fail")
	}
	if _, err := c.Predict([]float64{1}); err == nil {
		t.Fatal("predict before fit should fail")
	}
}

func TestMoreEstimatorsImproveBimodalFit(t *testing.T) {
	// Class 0 has a bimodal feature distribution; a single centroid per
	// class cannot separate it from class 1 sitting in between, but several
	// can. This mirrors the paper's n_estimators sweep having a real optimum.
	rng := rand.New(rand.NewSource(7))
	var data []float64
	var labels []int64
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			// class 0: clusters at 0 and 10
			v := rng.NormFloat64() * 0.3
			if i%4 == 0 {
				v += 10
			}
			data = append(data, v)
			labels = append(labels, 0)
		} else {
			// class 1: cluster at 5
			data = append(data, 5+rng.NormFloat64()*0.3)
			labels = append(labels, 1)
		}
	}
	score := func(n int64) float64 {
		c := &Classifier{N: n}
		if err := c.Fit(data, labels); err != nil {
			t.Fatal(err)
		}
		s, err := c.Score(data, labels)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if s1, s4 := score(1), score(4); s4 <= s1 {
		t.Fatalf("expected more estimators to help: score(1)=%v score(4)=%v", s1, s4)
	}
}

func TestPickleRoundTrip(t *testing.T) {
	c := &Classifier{N: 3}
	if err := c.Fit([]float64{1, 2, 3, 10, 11, 12}, []int64{0, 0, 0, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	blob, err := script.Marshal(wrap(c))
	if err != nil {
		t.Fatal(err)
	}
	v, err := script.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	obj, ok := v.(*script.ObjectVal)
	if !ok {
		t.Fatalf("unpickled %T", v)
	}
	c2, ok := obj.Opaque.(*Classifier)
	if !ok {
		t.Fatalf("opaque %T", obj.Opaque)
	}
	if c2.N != c.N || len(c2.Centroids) != len(c.Centroids) || !c2.Trained {
		t.Fatalf("round trip lost state: %+v vs %+v", c2, c)
	}
	for i := range c.Centroids {
		if c.Centroids[i] != c2.Centroids[i] || c.Labels[i] != c2.Labels[i] {
			t.Fatalf("centroid %d mismatch", i)
		}
	}
}

func TestPicklePropertyRoundTrip(t *testing.T) {
	f := func(feats []float64, rawLabels []uint8, n uint8) bool {
		if len(feats) == 0 {
			return true
		}
		labels := make([]int64, len(feats))
		for i := range labels {
			if i < len(rawLabels) {
				labels[i] = int64(rawLabels[i] % 3)
			}
		}
		c := &Classifier{N: int64(n%8) + 1}
		if err := c.Fit(feats, labels); err != nil {
			return false
		}
		data, err := c.PickleData()
		if err != nil {
			return false
		}
		c2, err := unpickle(data)
		if err != nil {
			return false
		}
		if len(c2.Centroids) != len(c.Centroids) {
			return false
		}
		for i := range c.Centroids {
			// NaN-safe comparison via bit equality is unnecessary here;
			// quick-generated NaNs fail Fit's arithmetic identically on
			// both sides, so plain equality is enough except for NaN.
			a, b := c.Centroids[i], c2.Centroids[i]
			if a != b && (a == a || b == b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPaperListing1Body runs the train_rnforest body (paper Listing 1)
// against the sklearn shim, including pickle round-trip of the model.
func TestPaperListing1Body(t *testing.T) {
	src := `
import pickle
from sklearn.ensemble import RandomForestClassifier

def train_rnforest(data, classes, n_estimators):
    clf = RandomForestClassifier(n_estimators)
    clf.fit(data, classes)
    return {"clf": pickle.dumps(clf), "estimators": n_estimators}

data = [1.0, 1.1, 0.9, 5.0, 5.2, 4.8]
classes = [0, 0, 0, 1, 1, 1]
out = train_rnforest(data, classes, 2)
blob = out["clf"]
clf2 = pickle.loads(blob)
pred = clf2.predict([1.05, 5.1])
`
	mod, err := script.Parse("listing1", src)
	if err != nil {
		t.Fatal(err)
	}
	in := script.NewInterp()
	env, err := in.Run(mod)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := env.Get("pred")
	if pred.Repr() != "[0, 1]" {
		t.Fatalf("predictions: %s", pred.Repr())
	}
	blob, _ := env.Get("blob")
	if _, ok := blob.(script.BytesVal); !ok {
		t.Fatalf("clf blob should be bytes, got %s", blob.TypeName())
	}
}

func TestSklearnKeywordArg(t *testing.T) {
	src := `
from sklearn.ensemble import RandomForestClassifier
clf = RandomForestClassifier(n_estimators=3)
n = clf.n_estimators
`
	mod, err := script.Parse("kw", src)
	if err != nil {
		t.Fatal(err)
	}
	in := script.NewInterp()
	env, err := in.Run(mod)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := env.Get("n")
	if n.(script.IntVal) != 3 {
		t.Fatalf("n = %v", n)
	}
}
