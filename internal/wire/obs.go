package wire

import (
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
)

// serverMetrics holds the wire server's registered instruments; nil on
// the Server means observability is off and every hook is a no-op.
type serverMetrics struct {
	connsOpened   *obs.Counter
	connsActive   *obs.Gauge
	msgs          *obs.CounterVec
	bytesIn       *obs.Counter
	bytesOut      *obs.Counter
	queueDepth    *obs.Gauge
	querySeconds  *obs.Histogram
	debugSessions *obs.Gauge
	stmtRejects   *obs.Counter
}

// EnableObs registers the server's metrics on reg and turns on per-query
// tracing. Call before Listen: the metrics pointer is read without
// synchronization by the serving goroutines.
func (s *Server) EnableObs(reg *obs.Registry) {
	m := &serverMetrics{
		connsOpened:   reg.Counter("wire_connections_opened_total", "Client connections accepted and authenticated."),
		connsActive:   reg.Gauge("wire_connections_active", "Client connections currently being served."),
		msgs:          reg.CounterVec("wire_messages_total", "Client frames received, by message type.", "type"),
		bytesIn:       reg.Counter("wire_bytes_read_total", "Bytes read from client sockets."),
		bytesOut:      reg.Counter("wire_bytes_written_total", "Bytes written to client sockets."),
		queueDepth:    reg.Gauge("wire_query_queue_depth", "Requests pipelined behind executing statements, across all connections."),
		querySeconds:  reg.Histogram("wire_query_seconds", "Wall time from dequeue of a query (or prepared execution) to its response being written.", nil),
		debugSessions: reg.Gauge("wire_debug_sessions_active", "Remote debug runs currently launched."),
		stmtRejects:   reg.Counter("wire_stmt_rejections_total", "MsgPrepare requests refused because the per-connection statement table was full."),
	}
	reg.GaugeFunc("wire_open_statements", "Server-side prepared statements currently live across all connections.",
		func() float64 { return float64(s.OpenStatements()) })
	reg.CounterFunc("wire_queries_shed_total", "Pipelined requests refused by admission control (queue bound or rate limit) and answered with a retryable overload error.",
		func() float64 { return float64(s.QueriesShed()) })
	reg.CounterFunc("wire_conns_rejected_total", "Connections refused during the handshake by the MaxConns cap.",
		func() float64 { return float64(s.ConnsRejected()) })
	s.metrics = m
}

// msgTypeName labels a client frame type for wire_messages_total.
func msgTypeName(typ byte) string {
	//wireswitch:ignore maps message types to metric labels; not a dispatch path
	switch typ {
	case MsgAuth:
		return "auth"
	case MsgQuery:
		return "query"
	case MsgClose:
		return "close"
	case MsgPing:
		return "ping"
	case MsgDebug:
		return "debug"
	case MsgPrepare:
		return "prepare"
	case MsgExecStmt:
		return "exec_stmt"
	case MsgCloseStmt:
		return "close_stmt"
	default:
		return fmt.Sprintf("type_%d", typ)
	}
}

// countMsg counts one received client frame. Nil-safe.
func (m *serverMetrics) countMsg(typ byte) {
	if m == nil {
		return
	}
	m.msgs.With(msgTypeName(typ)).Inc()
}

// countingConn counts raw socket bytes both directions, including the
// handshake and frame headers.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

// runQuery executes one MsgQuery with the full observability envelope:
// a trace carried through the engine (parse/exec/udf/wal spans), the
// response write timed as the write span, the latency histogram, the
// query log ring, and the slow-query log line. With everything off it
// degrades to the plain execute-and-respond path.
func (sc *serverConn) runQuery(fr frame) {
	srv := sc.srv
	intr := sc.execIntr()
	if srv.metrics == nil && srv.DB.QueryLog == nil && srv.SlowQueryMs <= 0 {
		res, err := sc.sess.ExecInterruptible(intr, nil, string(fr.payload))
		if err != nil {
			_ = sc.w.writeFrame(MsgErr, EncodeError(core.KindOf(err), errString(err)))
			return
		}
		_ = sc.writeResult(res)
		return
	}
	tr := obs.AcquireTrace(string(fr.payload), sc.sess.User)
	res, err := sc.sess.ExecInterruptible(intr, tr, tr.Query)
	sc.respondTraced(tr, res, err)
}

// runExecStmt is runQuery for a prepared execution that already resolved
// its statement and bind arguments.
func (sc *serverConn) runExecStmt(stmt *engine.Stmt, args []any) {
	srv := sc.srv
	intr := sc.execIntr()
	if srv.metrics == nil && srv.DB.QueryLog == nil && srv.SlowQueryMs <= 0 {
		res, err := stmt.ExecInterruptible(intr, nil, args...)
		if err != nil {
			_ = sc.w.writeFrame(MsgErr, EncodeError(core.KindOf(err), errString(err)))
			return
		}
		_ = sc.writeResult(res)
		return
	}
	tr := obs.AcquireTrace(stmt.SQL(), sc.sess.User)
	res, err := stmt.ExecInterruptible(intr, tr, args...)
	sc.respondTraced(tr, res, err)
}

// respondTraced writes the response (timing it as the write span),
// finalizes the trace, feeds the histogram, query log, and slow-query
// log, and releases the trace back to its pool.
func (sc *serverConn) respondTraced(tr *obs.Trace, res *engine.Result, err error) {
	defer obs.ReleaseTrace(tr)
	if err != nil {
		tr.Err = errString(err)
		_ = sc.w.writeFrame(MsgErr, EncodeError(core.KindOf(err), errString(err)))
	} else {
		if res.Table != nil {
			tr.Rows = int64(res.Table.NumRows())
		}
		wt := tr.StartStage(obs.StageWrite)
		_ = sc.writeResult(res)
		wt.Done()
	}
	total := time.Since(tr.Start)
	srv := sc.srv
	if m := srv.metrics; m != nil {
		m.querySeconds.Observe(total.Seconds())
	}
	srv.DB.QueryLog.Record(tr, total.Nanoseconds())
	if srv.SlowQueryMs > 0 && total >= time.Duration(srv.SlowQueryMs)*time.Millisecond {
		srv.logf("%s", slowQueryLine(tr, total))
	}
}

// slowQueryLine renders one structured (logfmt) slow-query record with
// the per-stage span breakdown.
func slowQueryLine(tr *obs.Trace, total time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "slow query: user=%s total_ms=%.3f", tr.User, float64(total)/1e6)
	for i := 0; i < obs.NumStages; i++ {
		fmt.Fprintf(&b, " %s_ms=%.3f", obs.StageNames[i], float64(tr.Stage(i))/1e6)
	}
	fmt.Fprintf(&b, " rows=%d cache_hit=%t", tr.Rows, tr.CacheHit)
	if tr.Err != "" {
		fmt.Fprintf(&b, " error=%q", tr.Err)
	}
	fmt.Fprintf(&b, " query=%q", tr.Query)
	return b.String()
}
