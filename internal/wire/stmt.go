package wire

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/storage"
)

// ErrStmtClosed reports execution of a prepared statement that has been
// closed. Compare with errors.Is; the pool-aware layers use it to retry
// when a cached statement is evicted mid-flight.
var ErrStmtClosed = core.Errorf(core.KindConstraint, "statement is closed")

// Stmt is a statement prepared on one connection (v2 sessions only): the
// server parsed and planned the SQL once, and each Query/Exec ships only a
// statement id plus typed bind arguments. Like Client, a Stmt is not safe
// for concurrent use; PoolStmt layers pooling on top.
type Stmt struct {
	c       *Client
	id      uint32
	nparams int
	sql     string
	closed  bool
}

// deferCloseStmt queues a server-side statement close to be flushed by the
// next operation that exclusively holds this connection. PoolStmt.Close
// uses it: the connection may be checked out by another goroutine at close
// time, so the close round trip cannot happen immediately — but leaving
// the slot occupied would exhaust the server's bounded per-connection
// statement table.
func (c *Client) deferCloseStmt(id uint32) {
	c.stmtCloseMu.Lock()
	c.stmtCloses = append(c.stmtCloses, id)
	c.stmtCloseMu.Unlock()
}

// stmtClosePending reports whether id is queued for a deferred close.
func (c *Client) stmtClosePending(id uint32) bool {
	c.stmtCloseMu.Lock()
	defer c.stmtCloseMu.Unlock()
	for _, pending := range c.stmtCloses {
		if pending == id {
			return true
		}
	}
	return false
}

// flushStmtCloses performs the deferred statement closes. Called at the
// start of every protocol operation, while the caller exclusively holds
// the connection. A non-zero keep id is left queued instead of closed —
// the caller is about to execute that statement and must learn (via
// keptPending) that it was closed under it. A server-side MsgErr (e.g.
// the id raced a disconnect) is non-fatal; IO errors surface and poison
// the connection as usual.
func (c *Client) flushStmtCloses(keep uint32) (keptPending bool, err error) {
	c.stmtCloseMu.Lock()
	ids := c.stmtCloses
	c.stmtCloses = nil
	for _, id := range ids {
		if keep != 0 && id == keep {
			c.stmtCloses = append(c.stmtCloses, id)
			keptPending = true
		}
	}
	c.stmtCloseMu.Unlock()
	for _, id := range ids {
		if keep != 0 && id == keep {
			continue
		}
		if err := c.send(MsgCloseStmt, EncodeCloseStmt(id)); err != nil {
			return keptPending, err
		}
		typ, _, err := c.recv()
		if err != nil {
			return keptPending, err
		}
		switch typ {
		case MsgCloseStmtOK, MsgErr:
		default:
			c.broken.Store(true)
			return keptPending, core.Errorf(core.KindProtocol, "unexpected close-stmt reply %d", typ)
		}
	}
	return keptPending, nil
}

// Prepare compiles sql server-side and returns the statement handle.
// Requires a v2 session.
func (c *Client) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	if c.broken.Load() {
		return nil, core.Errorf(core.KindIO, "connection is broken")
	}
	if c.version < ProtoV2 {
		return nil, core.Errorf(core.KindProtocol,
			"prepared statements require protocol v2 (negotiated v%d)", c.version)
	}
	stop := c.watch(ctx)
	st, err := c.prepareLocked(sql)
	if werr := stop(); werr != nil {
		return nil, werr
	}
	return st, err
}

func (c *Client) prepareLocked(sql string) (*Stmt, error) {
	if _, err := c.flushStmtCloses(0); err != nil {
		return nil, err
	}
	if err := c.send(MsgPrepare, []byte(sql)); err != nil {
		return nil, err
	}
	typ, payload, err := c.recv()
	if err != nil {
		return nil, err
	}
	switch typ {
	case MsgPrepareOK:
		id, nparams, err := DecodePrepareOK(payload)
		if err != nil {
			c.broken.Store(true)
			return nil, err
		}
		return &Stmt{c: c, id: id, nparams: nparams, sql: sql}, nil
	case MsgErr:
		return nil, DecodeError(payload)
	default:
		c.broken.Store(true)
		return nil, core.Errorf(core.KindProtocol, "unexpected prepare reply %d", typ)
	}
}

// SQL returns the statement's original text.
func (s *Stmt) SQL() string { return s.sql }

// NumParams reports how many bind arguments each execution needs.
func (s *Stmt) NumParams() int { return s.nparams }

// bindArgCols converts Go bind arguments into the typed length-1 columns
// the MsgExecStmt encoding carries.
func bindArgCols(args []any) ([]*storage.Column, error) {
	cols := make([]*storage.Column, len(args))
	for i, v := range args {
		col, err := storage.BindValue(v)
		if err != nil {
			return nil, core.Wrapf(core.KindType, err, "parameter %d: %v", i+1, err)
		}
		cols[i] = col
	}
	return cols, nil
}

// QueryStream executes the statement with one set of bind arguments and
// returns a Rows iterator over the result batches — the prepared analogue
// of Client.QueryStream, sharing its response protocol.
func (s *Stmt) QueryStream(ctx context.Context, args ...any) (*Rows, error) {
	if s.closed || s.c.stmtClosePending(s.id) {
		// a pending deferred close means the owning PoolStmt was closed
		// while another goroutine held this connection
		return nil, ErrStmtClosed
	}
	if s.c.broken.Load() {
		return nil, core.Errorf(core.KindIO, "connection is broken")
	}
	if len(args) != s.nparams {
		return nil, core.Errorf(core.KindConstraint,
			"statement expects %d bind parameter(s), got %d", s.nparams, len(args))
	}
	cols, err := bindArgCols(args)
	if err != nil {
		return nil, err
	}
	stop := s.c.watch(ctx)
	rows, err := s.execLocked(cols)
	if err != nil {
		if werr := stop(); werr != nil {
			return nil, werr
		}
		return nil, err
	}
	rows.stop = stop
	return rows, nil
}

func (s *Stmt) execLocked(cols []*storage.Column) (*Rows, error) {
	keptPending, err := s.c.flushStmtCloses(s.id)
	if err != nil {
		return nil, err
	}
	if keptPending {
		// this statement was closed (deferred) while we held the
		// connection; never execute a slot queued for release
		return nil, ErrStmtClosed
	}
	if err := s.c.send(MsgExecStmt, EncodeExecStmt(s.id, cols)); err != nil {
		return nil, err
	}
	return s.c.readQueryResponse()
}

// Query executes the statement and returns the status message and the
// fully materialized result table.
func (s *Stmt) Query(ctx context.Context, args ...any) (string, *storage.Table, error) {
	rows, err := s.QueryStream(ctx, args...)
	if err != nil {
		return "", nil, err
	}
	return rows.ReadAll()
}

// Exec executes the statement for its side effects, returning the status
// message.
func (s *Stmt) Exec(ctx context.Context, args ...any) (string, error) {
	rows, err := s.QueryStream(ctx, args...)
	if err != nil {
		return "", err
	}
	for rows.Next() {
	}
	if err := rows.Close(); err != nil {
		return "", err
	}
	return rows.Msg(), nil
}

// Close discards the server-side statement, freeing its slot in the
// connection's bounded statement table. Safe to call more than once.
func (s *Stmt) Close(ctx context.Context) error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.c.broken.Load() {
		// The connection is going away; the server frees the statement with
		// the session.
		return nil
	}
	stop := s.c.watch(ctx)
	err := s.closeLocked()
	if werr := stop(); werr != nil {
		return werr
	}
	return err
}

func (s *Stmt) closeLocked() error {
	if _, err := s.c.flushStmtCloses(0); err != nil {
		return err
	}
	if err := s.c.send(MsgCloseStmt, EncodeCloseStmt(s.id)); err != nil {
		return err
	}
	typ, payload, err := s.c.recv()
	if err != nil {
		return err
	}
	switch typ {
	case MsgCloseStmtOK:
		return nil
	case MsgErr:
		return DecodeError(payload)
	default:
		s.c.broken.Store(true)
		return core.Errorf(core.KindProtocol, "unexpected close-stmt reply %d", typ)
	}
}

// PoolStmt is a pool-aware prepared statement: one logical statement that
// transparently re-prepares itself on whichever healthy connection the
// pool hands back. The per-connection statement handles are cached, so a
// stable pool settles into zero re-prepares; when the pool retires a
// connection (health check, churn), the next execution on its replacement
// prepares once and proceeds. Safe for concurrent use.
type PoolStmt struct {
	pool    *Pool
	sql     string
	nparams int

	mu       sync.Mutex
	prepared map[*Client]*Stmt
	closed   bool
}

// Prepare builds a pool-aware prepared statement, eagerly preparing on one
// connection so bad SQL fails here rather than at first execution.
func (p *Pool) Prepare(ctx context.Context, sql string) (*PoolStmt, error) {
	ps := &PoolStmt{pool: p, sql: sql, prepared: map[*Client]*Stmt{}}
	c, err := p.Get(ctx)
	if err != nil {
		return nil, err
	}
	st, err := c.Prepare(ctx, sql)
	if err != nil {
		p.Put(c)
		return nil, err
	}
	ps.nparams = st.nparams
	ps.prepared[c] = st
	p.Put(c)
	return ps, nil
}

// SQL returns the statement's original text.
func (ps *PoolStmt) SQL() string { return ps.sql }

// NumParams reports how many bind arguments each execution needs.
func (ps *PoolStmt) NumParams() int { return ps.nparams }

// stmtFor returns the statement handle prepared on c, preparing it now if
// this connection has not seen the statement yet (pool churn). Dead
// connections' handles are pruned as a side effect.
func (ps *PoolStmt) stmtFor(ctx context.Context, c *Client) (*Stmt, error) {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return nil, ErrStmtClosed
	}
	for pc := range ps.prepared {
		if pc.Broken() {
			delete(ps.prepared, pc)
		}
	}
	st := ps.prepared[c]
	ps.mu.Unlock()
	if st != nil {
		return st, nil
	}
	// This connection has not seen the statement: pool churn forces a
	// re-prepare (the eager prepare in Pool.Prepare is not counted).
	ps.pool.reprepares.Add(1)
	st, err := c.Prepare(ctx, ps.sql)
	if err != nil {
		return nil, err
	}
	ps.mu.Lock()
	if ps.closed {
		// Close raced the prepare; free the fresh server-side slot with the
		// next operation on this connection.
		ps.mu.Unlock()
		c.deferCloseStmt(st.id)
		return nil, ErrStmtClosed
	}
	ps.prepared[c] = st
	ps.mu.Unlock()
	return st, nil
}

// Query checks out a connection (re-preparing there if needed), executes
// with the given binds, and checks it back in.
func (ps *PoolStmt) Query(ctx context.Context, args ...any) (string, *storage.Table, error) {
	c, err := ps.pool.Get(ctx)
	if err != nil {
		return "", nil, err
	}
	defer ps.pool.Put(c)
	st, err := ps.stmtFor(ctx, c)
	if err != nil {
		return "", nil, err
	}
	return st.Query(ctx, args...)
}

// Exec is Query for executions whose rows the caller does not need.
func (ps *PoolStmt) Exec(ctx context.Context, args ...any) (string, error) {
	c, err := ps.pool.Get(ctx)
	if err != nil {
		return "", err
	}
	defer ps.pool.Put(c)
	st, err := ps.stmtFor(ctx, c)
	if err != nil {
		return "", err
	}
	return st.Exec(ctx, args...)
}

// QueryStream checks out a connection and starts a streaming execution on
// it; the connection is checked back in when the Rows is fully consumed or
// Closed.
func (ps *PoolStmt) QueryStream(ctx context.Context, args ...any) (*Rows, error) {
	c, err := ps.pool.Get(ctx)
	if err != nil {
		return nil, err
	}
	st, err := ps.stmtFor(ctx, c)
	if err != nil {
		ps.pool.Put(c)
		return nil, err
	}
	rows, err := st.QueryStream(ctx, args...)
	if err != nil {
		ps.pool.Put(c)
		return nil, err
	}
	rows.release = func() { ps.pool.Put(c) }
	return rows, nil
}

// Close drops the per-connection handles and queues their server-side
// slots for release: the connections may be checked out by other
// goroutines right now, so each close is deferred onto its connection and
// flushed by the next operation that exclusively holds it. Slots on
// retired connections are already gone (the server tears the statement
// table down with the session).
func (ps *PoolStmt) Close() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.closed {
		return nil
	}
	ps.closed = true
	for c, st := range ps.prepared {
		if !c.Broken() {
			c.deferCloseStmt(st.id)
		}
	}
	ps.prepared = nil
	return nil
}
