package wire

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
)

func preparedFixture(t *testing.T) (*Server, ConnParams) {
	t.Helper()
	srv, params := startTestServer(t)
	c, err := DialContext(background(), params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, sql := range []string{
		`CREATE TABLE nums (i INTEGER, f DOUBLE, s STRING)`,
		`INSERT INTO nums VALUES (1, 0.5, 'a'), (2, 1.5, 'b'), (3, 2.5, 'c'), (4, 3.5, 'a'), (NULL, NULL, NULL)`,
	} {
		if _, err := c.Exec(background(), sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	return srv, params
}

func TestStmtPayloadRoundTrip(t *testing.T) {
	id, n, err := DecodePrepareOK(EncodePrepareOK(7, 3))
	if err != nil || id != 7 || n != 3 {
		t.Fatalf("%d %d %v", id, n, err)
	}
	if _, _, err := DecodePrepareOK([]byte{1, 2}); err == nil {
		t.Fatal("truncated prepare-ok should fail")
	}
	if _, _, err := DecodePrepareOK(append(EncodePrepareOK(1, 1), 0)); err == nil {
		t.Fatal("trailing prepare-ok bytes should fail")
	}

	cols, err := bindArgCols([]any{int64(5), 2.5, "x", true, []byte{1, 2}, nil})
	if err != nil {
		t.Fatal(err)
	}
	gotID, gotCols, err := DecodeExecStmt(EncodeExecStmt(9, cols))
	if err != nil || gotID != 9 || len(gotCols) != 6 {
		t.Fatalf("%d %d %v", gotID, len(gotCols), err)
	}
	wantTypes := []storage.Type{storage.TInt, storage.TFloat, storage.TStr, storage.TBool, storage.TBlob, storage.TStr}
	for i, col := range gotCols {
		if col.Typ != wantTypes[i] || col.Len() != 1 {
			t.Fatalf("arg %d: %s len %d", i, col.Typ, col.Len())
		}
	}
	if !gotCols[5].IsNull(0) {
		t.Fatal("nil argument must decode as NULL")
	}
	// a multi-row arg column is a protocol error
	two := storage.NewColumn("", storage.TInt)
	two.AppendInt(1)
	two.AppendInt(2)
	if _, _, err := DecodeExecStmt(EncodeExecStmt(1, []*storage.Column{two})); err == nil {
		t.Fatal("multi-row exec-stmt arg should fail")
	}

	cid, err := DecodeCloseStmt(EncodeCloseStmt(3))
	if err != nil || cid != 3 {
		t.Fatalf("%d %v", cid, err)
	}
	if _, err := DecodeCloseStmt([]byte{0}); err == nil {
		t.Fatal("truncated close-stmt should fail")
	}

	if _, err := bindArgCols([]any{struct{}{}}); err == nil {
		t.Fatal("unbindable Go type should fail")
	}
}

// TestStmtWireDifferential is the tentpole acceptance over the wire: one
// prepared statement executed with 3 bind sets must return exactly what
// the literal-substituted Query calls return, through both the vectorized
// and the ScalarRef pipelines.
func TestStmtWireDifferential(t *testing.T) {
	srv, params := preparedFixture(t)
	for _, scalarRef := range []bool{false, true} {
		name := "vectorized"
		if scalarRef {
			name = "scalar-ref"
		}
		t.Run(name, func(t *testing.T) {
			srv.DB.ScalarRef = scalarRef
			defer func() { srv.DB.ScalarRef = false }()
			c, err := DialContext(background(), params)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			st, err := c.Prepare(background(), `SELECT i, f, s FROM nums WHERE i >= ? AND f < ? ORDER BY i`)
			if err != nil {
				t.Fatal(err)
			}
			if st.NumParams() != 2 {
				t.Fatalf("NumParams = %d", st.NumParams())
			}
			binds := [][]any{
				{int64(1), 3.0},
				{int64(3), 99.0},
				{int64(0), 0.6},
			}
			for _, b := range binds {
				gotMsg, got, err := st.Query(background(), b...)
				if err != nil {
					t.Fatalf("binds %v: %v", b, err)
				}
				sql := fmt.Sprintf(`SELECT i, f, s FROM nums WHERE i >= %d AND f < %v ORDER BY i`, b[0], b[1])
				wantMsg, want, err := c.Query(background(), sql)
				if err != nil {
					t.Fatal(err)
				}
				if gotMsg != wantMsg {
					t.Fatalf("binds %v: msg %q vs %q", b, gotMsg, wantMsg)
				}
				if got.NumRows() != want.NumRows() || len(got.Cols) != len(want.Cols) {
					t.Fatalf("binds %v: shape mismatch", b)
				}
				for ci := range got.Cols {
					for r := 0; r < got.NumRows(); r++ {
						if got.Cols[ci].FormatValue(r) != want.Cols[ci].FormatValue(r) {
							t.Fatalf("binds %v: cell [%d,%d] %s vs %s", b, r, ci,
								got.Cols[ci].FormatValue(r), want.Cols[ci].FormatValue(r))
						}
					}
				}
			}
			if err := st.Close(background()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStmtInterleavesWithQueries: prepared-statement verbs ride the same
// FIFO as queries, so mixing them (and pings) on one pipelined connection
// keeps responses ordered and the connection healthy.
func TestStmtInterleavesWithQueries(t *testing.T) {
	_, params := preparedFixture(t)
	c, err := DialContext(background(), params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Prepare(background(), `SELECT count(*) AS n FROM nums WHERE i > ?`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_, tbl, err := st.Query(background(), int64(i%4))
		if err != nil {
			t.Fatal(err)
		}
		if tbl.NumRows() != 1 {
			t.Fatal("expected one row")
		}
		if _, _, err := c.Query(background(), `SELECT 1 AS one`); err != nil {
			t.Fatal(err)
		}
		if err := c.Ping(background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(background()); err != nil {
		t.Fatal(err)
	}
	// executing a closed statement fails client-side; the id is gone
	// server-side too
	if _, _, err := st.Query(background(), int64(1)); err == nil {
		t.Fatal("closed stmt must not execute")
	}
}

// TestStmtTableBounded: the per-connection statement table rejects
// prepares past the bound until a slot frees.
func TestStmtTableBounded(t *testing.T) {
	srv, params := preparedFixture(t)
	srv.MaxStmtsPerConn = 2
	c, err := DialContext(background(), params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s1, err := c.Prepare(background(), `SELECT 1 AS a`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prepare(background(), `SELECT 2 AS b`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prepare(background(), `SELECT 3 AS c`); err == nil ||
		!strings.Contains(err.Error(), "full") {
		t.Fatalf("expected table-full error, got %v", err)
	}
	if err := s1.Close(background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prepare(background(), `SELECT 4 AS d`); err != nil {
		t.Fatalf("slot should have freed: %v", err)
	}
}

// TestStmtTableFreedOnDisconnect is the leak check: statements left open
// by clients (clean goodbye or a dropped socket) vanish with the session.
func TestStmtTableFreedOnDisconnect(t *testing.T) {
	srv, params := preparedFixture(t)
	for round, clean := range []bool{true, false} {
		c, err := DialContext(background(), params)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := c.Prepare(background(), fmt.Sprintf(`SELECT %d AS v, i FROM nums WHERE i < ?`, i)); err != nil {
				t.Fatal(err)
			}
		}
		if n := srv.OpenStatements(); n != 5 {
			t.Fatalf("round %d: expected 5 open statements, have %d", round, n)
		}
		if clean {
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		} else {
			c.nc.Close() // dropped socket, no goodbye
		}
		deadline := time.Now().Add(5 * time.Second)
		for srv.OpenStatements() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: server leaked %d statements after disconnect",
					round, srv.OpenStatements())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestStmtRequiresV2: a v1 session cannot prepare.
func TestStmtRequiresV2(t *testing.T) {
	_, params := preparedFixture(t)
	c, err := DialContext(background(), params, WithProtoVersion(ProtoV1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Prepare(background(), `SELECT 1`); err == nil ||
		!strings.Contains(err.Error(), "protocol v2") {
		t.Fatalf("expected v2 requirement, got %v", err)
	}
}

// TestStmtErrors: server-side bind errors arrive as ordinary errors and
// leave the connection usable; unknown ids are rejected.
func TestStmtErrors(t *testing.T) {
	_, params := preparedFixture(t)
	c, err := DialContext(background(), params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Prepare(background(), `SELECT i FROM nums WHERE i = ?`)
	if err != nil {
		t.Fatal(err)
	}
	// type the slot as INTEGER, then violate it
	if _, _, err := st.Query(background(), int64(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Query(background(), "nope"); err == nil ||
		!strings.Contains(err.Error(), "typed at first bind") {
		t.Fatalf("expected slot type error, got %v", err)
	}
	// arity checked client-side
	if _, _, err := st.Query(background()); err == nil {
		t.Fatal("expected arity error")
	}
	// the connection survived all of it
	if _, _, err := c.Query(background(), `SELECT 1 AS ok`); err != nil {
		t.Fatalf("connection should still serve: %v", err)
	}
	// bad SQL never creates a statement
	if _, err := c.Prepare(background(), `SELEKT`); err == nil {
		t.Fatal("bad SQL should fail prepare")
	}
	if _, _, err := c.Query(background(), `SELECT 1 AS ok`); err != nil {
		t.Fatalf("connection should still serve after failed prepare: %v", err)
	}
}

// TestPoolStmtSurvivesChurn: a PoolStmt keeps working when the pool
// retires its backing connection — the next execution transparently
// re-prepares on the replacement.
func TestPoolStmtSurvivesChurn(t *testing.T) {
	_, params := preparedFixture(t)
	pool := NewPool(params, 1)
	defer pool.Close()
	ps, err := pool.Prepare(background(), `SELECT count(*) AS n FROM nums WHERE i > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ps.Query(background(), int64(1)); err != nil {
		t.Fatal(err)
	}
	// kill the pool's only connection behind the stmt's back
	c, err := pool.Get(background())
	if err != nil {
		t.Fatal(err)
	}
	c.Close() // marks broken; Put discards it
	pool.Put(c)
	// next execution dials a fresh connection and re-prepares
	_, tbl, err := ps.Query(background(), int64(2))
	if err != nil {
		t.Fatalf("stmt did not survive churn: %v", err)
	}
	if tbl.Cols[0].Ints[0] != 2 {
		t.Fatalf("wrong result after re-prepare: %v", tbl.Cols[0].Ints)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ps.Query(background(), int64(1)); err == nil {
		t.Fatal("closed pool stmt must not execute")
	}
}

// TestPoolStmtCloseRecyclesServerSlots: closing PoolStmts must release
// their server-side slots on live pooled connections (via deferred closes
// flushed by the next operation), so cycling through many more distinct
// statements than MaxStmtsPerConn keeps working on one connection.
func TestPoolStmtCloseRecyclesServerSlots(t *testing.T) {
	srv, params := preparedFixture(t)
	pool := NewPool(params, 1)
	defer pool.Close()
	for i := 0; i < 3*defaultMaxStmtsPerConn; i++ {
		ps, err := pool.Prepare(background(), fmt.Sprintf(`SELECT %d AS v, count(*) AS n FROM nums WHERE i > ?`, i))
		if err != nil {
			t.Fatalf("prepare %d: %v (server slots leaked?)", i, err)
		}
		if _, _, err := ps.Query(background(), int64(0)); err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
		if err := ps.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// one more operation flushes the last deferred close; the table must
	// then be (at most) one slot shy of empty
	if _, _, err := pool.Query(background(), `SELECT 1 AS ok`); err != nil {
		t.Fatal(err)
	}
	if n := srv.OpenStatements(); n > 1 {
		t.Fatalf("server still holds %d statements after closes", n)
	}
	// a closed-then-reused PoolStmt errors with the sentinel
	ps, err := pool.Prepare(background(), `SELECT count(*) AS n FROM nums WHERE i > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ps.Query(background(), int64(0)); !errors.Is(err, ErrStmtClosed) {
		t.Fatalf("expected ErrStmtClosed, got %v", err)
	}
}

// TestPoolStmtCancelMidExec: cancelling an execution poisons only that
// checkout; the PoolStmt (and the pool) keep serving, re-preparing on the
// replacement connection.
func TestPoolStmtCancelMidExec(t *testing.T) {
	srv, params := preparedFixture(t)
	srv.StreamThreshold = -1 // stream everything so cancellation can land mid-stream
	pool := NewPool(params, 1)
	defer pool.Close()
	ps, err := pool.Prepare(background(), `SELECT i, f, s FROM nums WHERE i >= ?`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(background())
	cancel() // cancelled before the exec round-trip completes
	if _, _, err := ps.Query(ctx, int64(0)); err == nil {
		t.Fatal("cancelled execution should fail")
	}
	// the pool replaced the poisoned connection; the stmt re-prepares
	for i := 0; i < 3; i++ {
		_, tbl, err := ps.Query(background(), int64(0))
		if err != nil {
			t.Fatalf("exec %d after cancellation: %v", i, err)
		}
		if tbl.NumRows() != 4 {
			t.Fatalf("exec %d: got %d rows", i, tbl.NumRows())
		}
	}
	// server-side tables drained once the poisoned conn was retired and the
	// pool closed
	pool.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.OpenStatements() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server leaked %d statements", srv.OpenStatements())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
