// Package wire implements the client/server protocol of the embedded
// database — the reproduction's stand-in for MonetDB's MAPI/JDBC transport
// the devUDF plugin connects through. Frames are length-prefixed binary
// messages; result sets travel in a columnar binary encoding.
package wire

import (
	"encoding/binary"
	"io"

	"repro/internal/core"
	"repro/internal/storage"
)

// Protocol message types.
const (
	MsgAuth    byte = 1  // client → server: user, password, database
	MsgQuery   byte = 2  // client → server: SQL text
	MsgClose   byte = 3  // client → server: goodbye
	MsgAuthOK  byte = 16 // server → client: server banner
	MsgResult  byte = 17 // server → client: status + optional result table
	MsgErr     byte = 18 // server → client: error kind + message
	MsgGoodbye byte = 19 // server → client: close ack
)

// maxFrame bounds a single frame (64 MiB) as a protocol sanity check.
const maxFrame = 64 << 20

// WriteFrame writes a [length][type][payload] frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return core.Errorf(core.KindProtocol, "frame too large (%d bytes)", len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return core.Errorf(core.KindIO, "write frame: %v", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return core.Errorf(core.KindIO, "write frame: %v", err)
		}
	}
	return nil
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, core.Errorf(core.KindIO, "read frame header: %v", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return 0, nil, core.Errorf(core.KindProtocol, "bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, core.Errorf(core.KindIO, "read frame body: %v", err)
	}
	return buf[0], buf[1:], nil
}

// ---- payload encoding helpers ----

func appendString(buf []byte, s string) []byte { return storage.AppendString(buf, s) }

// ---- auth / error payloads ----

// EncodeAuth encodes the MsgAuth payload (Fig. 2's connection parameters
// minus host/port, which name the socket itself).
func EncodeAuth(user, password, database string) []byte {
	buf := appendString(nil, user)
	buf = appendString(buf, password)
	return appendString(buf, database)
}

// DecodeAuth decodes a MsgAuth payload.
func DecodeAuth(payload []byte) (user, password, database string, err error) {
	r := storage.NewByteReader(payload)
	if user, err = r.Str(); err != nil {
		return
	}
	if password, err = r.Str(); err != nil {
		return
	}
	database, err = r.Str()
	return
}

// EncodeError encodes a MsgErr payload.
func EncodeError(kind core.ErrorKind, msg string) []byte {
	buf := []byte{byte(kind)}
	return appendString(buf, msg)
}

// DecodeError decodes a MsgErr payload into a *core.Error.
func DecodeError(payload []byte) error {
	r := storage.NewByteReader(payload)
	k, err := r.U8()
	if err != nil {
		return err
	}
	msg, err := r.Str()
	if err != nil {
		return err
	}
	return &core.Error{Kind: core.ErrorKind(k), Msg: msg}
}

// ---- result set encoding ----

// EncodeResult encodes a status message plus optional result table using
// the shared storage codec.
func EncodeResult(msg string, t *storage.Table) []byte {
	buf := appendString(nil, msg)
	if t == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	return storage.EncodeTable(buf, t)
}

// DecodeResult decodes a MsgResult payload.
func DecodeResult(payload []byte) (msg string, t *storage.Table, err error) {
	r := storage.NewByteReader(payload)
	if msg, err = r.Str(); err != nil {
		return
	}
	has, err := r.U8()
	if err != nil {
		return "", nil, err
	}
	if has == 0 {
		if r.Remaining() != 0 {
			return "", nil, core.Errorf(core.KindProtocol, "trailing bytes in result payload")
		}
		return msg, nil, nil
	}
	t, err = storage.DecodeTable(r)
	if err != nil {
		return "", nil, err
	}
	if r.Remaining() != 0 {
		return "", nil, core.Errorf(core.KindProtocol, "trailing bytes in result payload")
	}
	t.Name = "result"
	return msg, t, nil
}
