// Package wire implements the client/server protocol of the embedded
// database — the reproduction's stand-in for MonetDB's MAPI/JDBC transport
// the devUDF plugin connects through. Frames are length-prefixed binary
// messages; result sets travel in a columnar binary encoding.
package wire

import (
	"encoding/binary"
	"io"

	"repro/internal/core"
	"repro/internal/storage"
)

// Protocol message types.
const (
	MsgAuth    byte = 1  // client → server: user, password, database [+ version]
	MsgQuery   byte = 2  // client → server: SQL text
	MsgClose   byte = 3  // client → server: goodbye
	MsgPing    byte = 4  // client → server: liveness probe (v2)
	MsgAuthOK  byte = 16 // server → client: server banner [+ negotiated version]
	MsgResult  byte = 17 // server → client: status + optional result table
	MsgErr     byte = 18 // server → client: error kind + message
	MsgGoodbye byte = 19 // server → client: close ack
	// v2 streaming result protocol: zero or more chunks carrying column
	// batches, terminated by an end frame carrying the status message.
	MsgResultChunk byte = 20 // server → client: one column batch
	MsgResultEnd   byte = 21 // server → client: stream terminator + status
	MsgPong        byte = 22 // server → client: ping ack
	// (5 and 23–24 are the debug sub-protocol; see debugproto.go)
	// v2 prepared statements: SQL is parsed and planned once server-side,
	// then executed any number of times with typed bind arguments.
	MsgPrepare     byte = 6  // client → server: SQL text to prepare
	MsgExecStmt    byte = 7  // client → server: stmt id + bind arguments
	MsgCloseStmt   byte = 8  // client → server: stmt id to discard
	MsgPrepareOK   byte = 25 // server → client: stmt id + parameter count
	MsgCloseStmtOK byte = 26 // server → client: close-stmt ack
)

// Protocol versions negotiated during the auth handshake. A v1 client omits
// the version byte from MsgAuth and is served the one-shot MsgResult path
// only; a v2 session may receive chunked result streams and may ping.
const (
	ProtoV1 byte = 1
	ProtoV2 byte = 2
)

// maxFrame bounds a single frame (64 MiB) as a protocol sanity check.
// Result sets larger than this must travel the v2 chunked streaming path.
const maxFrame = 64 << 20

// DefaultChunkBytes is the target encoded size of one MsgResultChunk batch.
const DefaultChunkBytes = 4 << 20

// WriteFrame writes a [length][type][payload] frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return core.Errorf(core.KindProtocol, "frame too large (%d bytes)", len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return core.Wrapf(core.KindIO, err, "write frame: %v", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return core.Wrapf(core.KindIO, err, "write frame: %v", err)
		}
	}
	return nil
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, core.Wrapf(core.KindIO, err, "read frame header: %v", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return 0, nil, core.Errorf(core.KindProtocol, "bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, core.Wrapf(core.KindIO, err, "read frame body: %v", err)
	}
	return buf[0], buf[1:], nil
}

// ---- payload encoding helpers ----

func appendString(buf []byte, s string) []byte { return storage.AppendString(buf, s) }

// ---- auth / error payloads ----

// EncodeAuth encodes the MsgAuth payload (Fig. 2's connection parameters
// minus host/port, which name the socket itself) plus the client's highest
// supported protocol version. v1 clients historically omitted the trailing
// version byte; DecodeAuth treats its absence as ProtoV1.
func EncodeAuth(user, password, database string, version byte) []byte {
	buf := appendString(nil, user)
	buf = appendString(buf, password)
	buf = appendString(buf, database)
	if version > ProtoV1 {
		buf = append(buf, version)
	}
	return buf
}

// DecodeAuth decodes a MsgAuth payload. A payload without the trailing
// version byte is a v1 client.
func DecodeAuth(payload []byte) (user, password, database string, version byte, err error) {
	r := storage.NewByteReader(payload)
	if user, err = r.Str(); err != nil {
		return
	}
	if password, err = r.Str(); err != nil {
		return
	}
	if database, err = r.Str(); err != nil {
		return
	}
	version = ProtoV1
	if r.Remaining() > 0 {
		version, err = r.U8()
		if err != nil {
			return
		}
		if r.Remaining() != 0 {
			err = core.Errorf(core.KindProtocol, "trailing bytes in auth payload")
			return
		}
	}
	return
}

// EncodeAuthOK encodes the MsgAuthOK payload: server banner plus the
// negotiated protocol version. v1 clients ignore the payload entirely.
func EncodeAuthOK(banner string, version byte) []byte {
	return append(appendString(nil, banner), version)
}

// DecodeAuthOK decodes a MsgAuthOK payload. Banners from pre-negotiation
// servers lack the version byte and imply ProtoV1.
func DecodeAuthOK(payload []byte) (banner string, version byte, err error) {
	r := storage.NewByteReader(payload)
	if banner, err = r.Str(); err != nil {
		return
	}
	version = ProtoV1
	if r.Remaining() > 0 {
		version, err = r.U8()
	}
	return
}

// EncodeError encodes a MsgErr payload.
func EncodeError(kind core.ErrorKind, msg string) []byte {
	buf := []byte{byte(kind)}
	return appendString(buf, msg)
}

// DecodeError decodes a MsgErr payload into a *core.Error.
func DecodeError(payload []byte) error {
	r := storage.NewByteReader(payload)
	k, err := r.U8()
	if err != nil {
		return err
	}
	msg, err := r.Str()
	if err != nil {
		return err
	}
	return &core.Error{Kind: core.ErrorKind(k), Msg: msg}
}

// ---- prepared statement payloads ----

// EncodePrepareOK encodes the MsgPrepareOK payload: the server-assigned
// statement id plus the number of bind parameters the statement expects.
func EncodePrepareOK(id uint32, nparams int) []byte {
	buf := binary.BigEndian.AppendUint32(nil, id)
	return binary.BigEndian.AppendUint32(buf, uint32(nparams))
}

// DecodePrepareOK decodes a MsgPrepareOK payload.
func DecodePrepareOK(payload []byte) (id uint32, nparams int, err error) {
	r := storage.NewByteReader(payload)
	if id, err = r.U32(); err != nil {
		return
	}
	n, err := r.U32()
	if err != nil {
		return 0, 0, err
	}
	if r.Remaining() != 0 {
		return 0, 0, core.Errorf(core.KindProtocol, "trailing bytes in prepare-ok payload")
	}
	return id, int(n), nil
}

// EncodeExecStmt encodes the MsgExecStmt payload: the statement id followed
// by the bind arguments as a one-row table in the shared storage codec —
// the same typed column encoding result sets travel in, so every argument
// carries its SQL type and nullability.
func EncodeExecStmt(id uint32, args []*storage.Column) []byte {
	buf := binary.BigEndian.AppendUint32(nil, id)
	t := &storage.Table{Name: "args", Cols: args}
	return storage.EncodeTable(buf, t)
}

// DecodeExecStmt decodes a MsgExecStmt payload into the statement id and
// one length-1 column per bind argument.
func DecodeExecStmt(payload []byte) (id uint32, args []*storage.Column, err error) {
	r := storage.NewByteReader(payload)
	if id, err = r.U32(); err != nil {
		return
	}
	t, err := storage.DecodeTable(r)
	if err != nil {
		return 0, nil, err
	}
	if r.Remaining() != 0 {
		return 0, nil, core.Errorf(core.KindProtocol, "trailing bytes in exec-stmt payload")
	}
	for _, col := range t.Cols {
		if col.Len() != 1 {
			return 0, nil, core.Errorf(core.KindProtocol,
				"exec-stmt argument %q carries %d rows, want 1", col.Name, col.Len())
		}
	}
	return id, t.Cols, nil
}

// EncodeCloseStmt encodes the MsgCloseStmt payload.
func EncodeCloseStmt(id uint32) []byte {
	return binary.BigEndian.AppendUint32(nil, id)
}

// DecodeCloseStmt decodes a MsgCloseStmt payload.
func DecodeCloseStmt(payload []byte) (uint32, error) {
	r := storage.NewByteReader(payload)
	id, err := r.U32()
	if err != nil {
		return 0, err
	}
	if r.Remaining() != 0 {
		return 0, core.Errorf(core.KindProtocol, "trailing bytes in close-stmt payload")
	}
	return id, nil
}

// ---- result set encoding ----

// EncodeResult encodes a status message plus optional result table using
// the shared storage codec.
func EncodeResult(msg string, t *storage.Table) []byte {
	buf := appendString(nil, msg)
	if t == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	return storage.EncodeTable(buf, t)
}

// ---- v2 chunked result stream ----

// EncodeResultChunk encodes one MsgResultChunk payload: a column batch in
// the shared table codec, carrying the full schema so every chunk is
// self-describing.
func EncodeResultChunk(batch *storage.Table) []byte {
	return storage.EncodeTable(nil, batch)
}

// DecodeResultChunk decodes a MsgResultChunk payload.
func DecodeResultChunk(payload []byte) (*storage.Table, error) {
	r := storage.NewByteReader(payload)
	t, err := storage.DecodeTable(r)
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, core.Errorf(core.KindProtocol, "trailing bytes in result chunk")
	}
	return t, nil
}

// EncodeResultEnd encodes the MsgResultEnd payload: the status message plus
// the total row count, so the client can cross-check the stream.
func EncodeResultEnd(msg string, rows int64) []byte {
	buf := appendString(nil, msg)
	return binary.BigEndian.AppendUint64(buf, uint64(rows))
}

// DecodeResultEnd decodes a MsgResultEnd payload.
func DecodeResultEnd(payload []byte) (msg string, rows int64, err error) {
	r := storage.NewByteReader(payload)
	if msg, err = r.Str(); err != nil {
		return
	}
	n, err := r.U64()
	if err != nil {
		return "", 0, err
	}
	if r.Remaining() != 0 {
		return "", 0, core.Errorf(core.KindProtocol, "trailing bytes in result end")
	}
	return msg, int64(n), nil
}

// encodedRowBytes estimates the encoded size of row i across all columns of
// t, used to slice a result set into chunks that respect the frame cap.
func encodedRowBytes(t *storage.Table, i int) int {
	n := 0
	for _, c := range t.Cols {
		switch c.Typ {
		case storage.TInt, storage.TFloat:
			n += 8
		case storage.TStr:
			n += 4 + len(c.Strs[i])
		case storage.TBool:
			n++
		case storage.TBlob:
			n += 4 + len(c.Blobs[i])
		}
		n++ // validity bitmap amortization, rounded up
	}
	return n
}

// EncodedTableSize conservatively estimates a table's encoded payload size
// without materializing the encoding; the server compares it against the
// stream threshold to pick the one-shot or chunked result path.
func EncodedTableSize(t *storage.Table) int {
	n := chunkOverhead(t)
	for _, c := range t.Cols {
		switch c.Typ {
		case storage.TInt, storage.TFloat:
			n += 8 * c.Len()
		case storage.TBool:
			n += c.Len()
		case storage.TStr:
			for _, s := range c.Strs {
				n += 4 + len(s)
			}
		case storage.TBlob:
			for _, b := range c.Blobs {
				n += 4 + len(b)
			}
		}
		if c.Nulls != nil {
			n += (c.Len() + 7) / 8
		}
	}
	return n
}

// chunkOverhead bounds the per-chunk schema/header bytes.
func chunkOverhead(t *storage.Table) int {
	n := 4 + len(t.Name) + 4
	for _, c := range t.Cols {
		n += 4 + len(c.Name) + 1 + 4 + 1
	}
	return n
}

// WriteResultStream writes a result table as a MsgResultChunk sequence
// followed by MsgResultEnd, slicing rows into batches of about chunkBytes
// encoded bytes each (a single row larger than the frame cap is a protocol
// error). It is how v2 sessions ship result sets beyond maxFrame.
func WriteResultStream(w io.Writer, msg string, t *storage.Table, chunkBytes int) error {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	if chunkBytes > maxFrame/2 {
		chunkBytes = maxFrame / 2
	}
	rows := t.NumRows()
	overhead := chunkOverhead(t)
	if rows == 0 {
		// Ship one empty chunk so the client still learns the schema, the
		// way the one-shot path's empty table does.
		if err := WriteFrame(w, MsgResultChunk, EncodeResultChunk(t.SliceRows(0, 0))); err != nil {
			return err
		}
		return WriteFrame(w, MsgResultEnd, EncodeResultEnd(msg, 0))
	}
	lo := 0
	for lo < rows {
		hi, size := lo, overhead
		for hi < rows {
			rb := encodedRowBytes(t, hi)
			if overhead+rb+1 > maxFrame {
				return core.Errorf(core.KindProtocol,
					"single row of %d bytes exceeds the frame cap", rb)
			}
			if hi > lo && size+rb > chunkBytes {
				break
			}
			size += rb
			hi++
		}
		if err := WriteFrame(w, MsgResultChunk, EncodeResultChunk(t.SliceRows(lo, hi))); err != nil {
			return err
		}
		lo = hi
	}
	return WriteFrame(w, MsgResultEnd, EncodeResultEnd(msg, int64(rows)))
}

// DecodeResult decodes a MsgResult payload.
func DecodeResult(payload []byte) (msg string, t *storage.Table, err error) {
	r := storage.NewByteReader(payload)
	if msg, err = r.Str(); err != nil {
		return
	}
	has, err := r.U8()
	if err != nil {
		return "", nil, err
	}
	if has == 0 {
		if r.Remaining() != 0 {
			return "", nil, core.Errorf(core.KindProtocol, "trailing bytes in result payload")
		}
		return msg, nil, nil
	}
	t, err = storage.DecodeTable(r)
	if err != nil {
		return "", nil, err
	}
	if r.Remaining() != 0 {
		return "", nil, core.Errorf(core.KindProtocol, "trailing bytes in result payload")
	}
	t.Name = "result"
	return msg, t, nil
}
