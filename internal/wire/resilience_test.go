package wire

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faultnet"
)

// spinUDF runs long enough to straddle any cancellation signal but still
// terminates on its own — the loop bound is the backstop against a hung
// test if an interrupt is lost.
const spinUDF = `CREATE FUNCTION spin(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    s = 0
    for k in range(0, 100000000):
        s += k
    return x
};`

// busyUDF runs for a noticeable but bounded time — long enough to pile
// pipelined requests behind it, short enough to finish on its own.
const busyUDF = `CREATE FUNCTION busy(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    s = 0
    for k in range(0, 3000000):
        s += k
    return x
};`

// startConfiguredServer is startTestServer with resilience knobs applied
// before Listen — the serving goroutines read them unsynchronized.
func startConfiguredServer(t *testing.T, configure func(*Server)) (*Server, ConnParams) {
	t.Helper()
	db := engine.NewDB()
	db.FS = core.NewMemFS(nil)
	srv := NewServer("demo", "monetdb", "secret", db)
	configure(srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	host, port, _ := splitHostPort(addr)
	return srv, ConnParams{Host: host, Port: port, Database: "demo", User: "monetdb", Password: "secret"}
}

// ---- server-side query timeout ----

func TestQueryTimeoutCancelsStatement(t *testing.T) {
	srv, params := startConfiguredServer(t, func(s *Server) {
		s.QueryTimeout = 100 * time.Millisecond
	})
	c, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(background(), spinUDF); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err = c.Query(background(), `SELECT spin(1)`)
	if !core.IsCancelled(err) {
		t.Fatalf("want typed cancelled error over the wire, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timeout took %v to fire", d)
	}
	// The session survives its cancelled statement.
	if _, _, err := c.Query(background(), `SELECT 1 AS one`); err != nil {
		t.Fatalf("connection unusable after timeout: %v", err)
	}
	if srv.DB.QueriesCancelled() == 0 {
		t.Fatal("engine_queries_cancelled_total not bumped")
	}
}

// ---- client death mid-query reclaims the engine ----

// TestKillClientMidQueryReclaimsEngine is the acceptance scenario: a
// client killed mid-statement must not strand the engine lock or a
// worker. The next client's statement has to run within the deadline.
func TestKillClientMidQueryReclaimsEngine(t *testing.T) {
	srv, params := startTestServer(t)
	setup, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec(background(), spinUDF); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	// Raw connection: handshake, fire the long query, then die abruptly
	// with no MsgClose — the way a crashed process disappears.
	nc, err := net.Dial("tcp", params.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(nc, MsgAuth, EncodeAuth("monetdb", "secret", "demo", ProtoV2)); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := ReadFrame(nc); err != nil || typ != MsgAuthOK {
		t.Fatalf("handshake: %d %v", typ, err)
	}
	if err := WriteFrame(nc, MsgQuery, []byte(`SELECT spin(9)`)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the statement reach the engine
	nc.Close()

	// A fresh session must get the engine promptly: the dead client's
	// statement aborts at its next interrupt checkpoint and releases the
	// database lock.
	c2, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ctx, cancel := context.WithTimeout(background(), 5*time.Second)
	defer cancel()
	if _, _, err := c2.Query(ctx, `SELECT 1 AS one`); err != nil {
		t.Fatalf("engine not reclaimed after client death: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.DB.QueriesCancelled() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned statement never recorded as cancelled")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ---- admission control ----

func TestRateLimitShedsWithRetryableError(t *testing.T) {
	srv, params := startConfiguredServer(t, func(s *Server) {
		s.RateLimit = 0.001 // effectively no refill within the test
		s.RateBurst = 1
	})
	c, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Query(background(), `SELECT 1 AS one`); err != nil {
		t.Fatalf("first query spends the burst token and must pass: %v", err)
	}
	_, _, err = c.Query(background(), `SELECT 1 AS one`)
	if core.KindOf(err) != core.KindOverload {
		t.Fatalf("want overload error, got %v", err)
	}
	if !core.Retryable(err) {
		t.Fatalf("a shed request must be safe to retry: %v", err)
	}
	if got := srv.QueriesShed(); got != 1 {
		t.Fatalf("QueriesShed = %d, want 1", got)
	}
	// Shedding answers the request; it does not poison the session.
	if err := c.Ping(background()); err != nil {
		t.Fatalf("session dead after shed: %v", err)
	}
}

// TestQueueBoundShedsInFIFOOrder pipelines past MaxQueueDepth and checks
// the saturation contract: accepted requests complete, excess requests
// get a retryable error, and every request is answered in FIFO position —
// never silently dropped.
func TestQueueBoundShedsInFIFOOrder(t *testing.T) {
	srv, params := startConfiguredServer(t, func(s *Server) {
		s.MaxQueueDepth = 1
	})
	setup, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec(background(), busyUDF); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	nc, err := net.Dial("tcp", params.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := WriteFrame(nc, MsgAuth, EncodeAuth("monetdb", "secret", "demo", ProtoV2)); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := ReadFrame(nc); err != nil || typ != MsgAuthOK {
		t.Fatalf("handshake: %d %v", typ, err)
	}
	// One slow query, then four fast ones on its heels: the first fast
	// query fits the depth-1 queue, the rest must be shed.
	const pipelined = 5
	if err := WriteFrame(nc, MsgQuery, []byte(`SELECT busy(1)`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pipelined-1; i++ {
		if err := WriteFrame(nc, MsgQuery, []byte(`SELECT 1 AS one`)); err != nil {
			t.Fatal(err)
		}
	}
	var results, sheds int
	for i := 0; i < pipelined; i++ {
		typ, payload, err := ReadFrame(nc)
		if err != nil {
			t.Fatalf("response %d: %v (a bounded queue must answer, not drop)", i, err)
		}
		switch typ {
		case MsgResult:
			results++
			if sheds > 0 {
				t.Fatalf("response %d: result after a shed — FIFO order broken", i)
			}
		case MsgErr:
			sheds++
			derr := DecodeError(payload)
			if core.KindOf(derr) != core.KindOverload || !core.Retryable(derr) {
				t.Fatalf("response %d: shed must be retryable overload, got %v", i, derr)
			}
		default:
			t.Fatalf("response %d: unexpected frame type %d", i, typ)
		}
	}
	if results == 0 || sheds == 0 {
		t.Fatalf("want both completions and sheds, got %d results, %d sheds", results, sheds)
	}
	if got := srv.QueriesShed(); got != uint64(sheds) {
		t.Fatalf("QueriesShed = %d, want %d", got, sheds)
	}
}

// TestMaxConnsRejectsCleanly is the regression for the connection cap: an
// over-limit handshake gets a typed retryable error, existing sessions
// keep working, and the listener serves new connections once a slot
// frees up.
func TestMaxConnsRejectsCleanly(t *testing.T) {
	srv, params := startConfiguredServer(t, func(s *Server) {
		s.MaxConns = 1
	})
	c1, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c1.Query(background(), `SELECT 1 AS one`); err != nil {
		t.Fatal(err)
	}
	_, err = Dial(params)
	if core.KindOf(err) != core.KindOverload || !core.Retryable(err) {
		t.Fatalf("over-limit dial: want retryable overload, got %v", err)
	}
	if got := srv.ConnsRejected(); got == 0 {
		t.Fatal("ConnsRejected not bumped")
	}
	// The first session is unaffected by the rejection.
	if _, _, err := c1.Query(background(), `SELECT 2 AS two`); err != nil {
		t.Fatalf("existing session broken by a rejected handshake: %v", err)
	}
	c1.Close()
	// The slot frees asynchronously with the session teardown.
	deadline := time.Now().Add(5 * time.Second)
	var c2 *Client
	for {
		c2, err = Dial(params)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("listener stopped admitting after a rejection: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer c2.Close()
	if _, _, err := c2.Query(background(), `SELECT 3 AS three`); err != nil {
		t.Fatal(err)
	}
}

// ---- graceful drain ----

// TestDrainRacesStreamedResult closes the server while a chunked result
// stream is in flight: the stream must complete (clean drain waits for
// in-flight statements) and Close must return.
func TestDrainRacesStreamedResult(t *testing.T) {
	srv, params := startConfiguredServer(t, func(s *Server) {
		s.StreamThreshold = -1 // stream everything
		s.ChunkBytes = 256     // many small chunks widen the race window
	})
	c, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(background(), `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	const rows = 2000
	for lo := 0; lo < rows; lo += 500 {
		var b strings.Builder
		b.WriteString(`INSERT INTO t VALUES `)
		for i := lo; i < lo+500; i++ {
			if i > lo {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d)", i)
		}
		if _, err := c.Exec(background(), b.String()); err != nil {
			t.Fatal(err)
		}
	}
	r, err := c.QueryStream(background(), `SELECT i FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	var got int64
	for r.Next() {
		got += int64(r.Batch().NumRows())
	}
	if err := r.Err(); err != nil {
		t.Fatalf("stream broken by drain: %v", err)
	}
	if got != rows {
		t.Fatalf("streamed %d rows, want %d", got, rows)
	}
	r.Close()
	c.Close()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the stream finished")
	}
}

// TestDrainTimeoutAbortsInFlight bounds shutdown: a statement still
// running past DrainTimeout is interrupted instead of holding Close
// hostage.
func TestDrainTimeoutAbortsInFlight(t *testing.T) {
	srv, params := startConfiguredServer(t, func(s *Server) {
		s.DrainTimeout = 100 * time.Millisecond
	})
	c, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(background(), spinUDF); err != nil {
		t.Fatal(err)
	}
	qdone := make(chan error, 1)
	go func() {
		_, _, err := c.Query(background(), `SELECT spin(4)`)
		qdone <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the statement reach the engine
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung past DrainTimeout on an in-flight statement")
	}
	select {
	case err := <-qdone:
		// The statement was forcibly cancelled; depending on who wins the
		// race the client sees the typed cancellation or the dying socket.
		if err == nil {
			t.Fatal("in-flight statement should not complete past DrainTimeout")
		}
		if !core.IsCancelled(err) && core.KindOf(err) != core.KindIO {
			t.Fatalf("want cancelled or IO error, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client query hung after forced drain")
	}
}

// ---- pool retry and breaker ----

// TestPoolRetriesThroughOverload points a retrying pool at a server with
// one connection slot held hostage; the pool must back off and win the
// slot once it frees.
func TestPoolRetriesThroughOverload(t *testing.T) {
	srv, params := startConfiguredServer(t, func(s *Server) {
		s.MaxConns = 1
	})
	_ = srv
	hog, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(params, 1)
	defer pool.Close()
	pool.EnableRetry(RetryPolicy{MaxAttempts: 10, BaseBackoff: 20 * time.Millisecond, BreakerThreshold: -1})
	go func() {
		time.Sleep(150 * time.Millisecond)
		hog.Close()
	}()
	ctx, cancel := context.WithTimeout(background(), 10*time.Second)
	defer cancel()
	if _, _, err := pool.Query(ctx, `SELECT 1 AS one`); err != nil {
		t.Fatalf("pool should retry through the overload window: %v", err)
	}
	if st := pool.StatsSnapshot(); st.Retries == 0 {
		t.Fatal("pool_retries_total not bumped")
	}
}

func TestPoolBreakerOpensOnDeadEndpoint(t *testing.T) {
	// A listener opened and closed immediately yields a port that refuses
	// connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	host, port, _ := splitHostPort(ln.Addr().String())
	ln.Close()
	params := ConnParams{Host: host, Port: port, Database: "demo", User: "monetdb", Password: "secret"}
	pool := NewPool(params, 1)
	defer pool.Close()
	pool.EnableRetry(RetryPolicy{MaxAttempts: 1, BreakerThreshold: 3, BreakerCooldown: 5 * time.Second})
	sawFastFail := false
	for i := 0; i < 6; i++ {
		_, _, err := pool.Query(background(), `SELECT 1`)
		if err == nil {
			t.Fatal("query against a dead endpoint should fail")
		}
		if core.KindOf(err) == core.KindOverload {
			sawFastFail = true // the breaker answered without dialing
		}
	}
	st := pool.StatsSnapshot()
	if st.BreakerOpens == 0 {
		t.Fatal("breaker never opened on consecutive dial failures")
	}
	if st.BreakerFastFails == 0 || !sawFastFail {
		t.Fatalf("breaker open must fail checkouts fast (fastFails=%d, saw=%t)", st.BreakerFastFails, sawFastFail)
	}
}

// TestPoolSurvivesFaultnetChurn drives a retrying pool through a proxy
// that randomly resets connections: operations may fail with typed
// errors, but the pool must neither hang nor wedge, and some work must
// get through.
func TestPoolSurvivesFaultnetChurn(t *testing.T) {
	_, params := startTestServer(t)
	proxy, err := faultnet.NewProxy(params.Addr(), faultnet.Plan{
		Seed:       2026,
		ResetProb:  0.03,
		LatencyMax: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	host, port, _ := splitHostPort(proxy.Addr())
	pp := params
	pp.Host, pp.Port = host, port
	pool := NewPool(pp, 4)
	defer pool.Close()
	pool.EnableRetry(RetryPolicy{MaxAttempts: 4, BaseBackoff: 5 * time.Millisecond, BreakerThreshold: -1})

	const workers, perWorker = 4, 20
	var ok, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, cancel := context.WithTimeout(background(), 5*time.Second)
				_, _, err := pool.Query(ctx, `SELECT 1 AS one`)
				cancel()
				if err == nil {
					ok.Add(1)
				} else {
					failed.Add(1)
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("pool wedged under connection churn")
	}
	if ok.Load() == 0 {
		t.Fatalf("no query survived the churn (%d failures)", failed.Load())
	}
	t.Logf("churn: %d ok, %d failed, %d retries", ok.Load(), failed.Load(), pool.StatsSnapshot().Retries)
}

// ---- chaos: the server never deadlocks or leaks under fire ----

// TestChaosServerSurvives serves through a faultnet listener injecting
// latency, partial writes, resets, and corruption while clients hammer
// it. The assertions are the resilience invariants: the process never
// deadlocks, shutdown completes, and no statement leaks.
func TestChaosServerSurvives(t *testing.T) {
	db := engine.NewDB()
	db.FS = core.NewMemFS(nil)
	srv := NewServer("demo", "monetdb", "secret", db)
	srv.MaxConns = 8
	srv.MaxQueueDepth = 4
	srv.RateLimit = 200
	srv.RateBurst = 50
	srv.QueryTimeout = 2 * time.Second
	srv.DrainTimeout = 2 * time.Second
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.ServeListener(faultnet.Listener(ln, faultnet.Plan{
		Seed:             7,
		LatencyMax:       500 * time.Microsecond,
		PartialWriteProb: 0.2,
		ResetProb:        0.02,
		CorruptProb:      0.01,
	}))
	host, port, _ := splitHostPort(addr)
	params := ConnParams{Host: host, Port: port, Database: "demo", User: "monetdb", Password: "secret"}

	const workers, perWorker = 6, 15
	var wg sync.WaitGroup
	var ok atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, cancel := context.WithTimeout(background(), 2*time.Second)
				c, err := DialContext(ctx, params)
				if err == nil {
					if _, _, err := c.Query(ctx, `SELECT 1 AS one`); err == nil {
						ok.Add(1)
					}
					c.Close()
				}
				cancel()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("chaos clients wedged")
	}
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server failed to shut down after chaos")
	}
	if n := srv.OpenStatements(); n != 0 {
		t.Fatalf("leaked %d statements through the chaos run", n)
	}
	t.Logf("chaos: %d/%d queries succeeded through the faulted network", ok.Load(), workers*perWorker)
}

// TestPoolCheckoutCancelIsKindCancelled pins the classification of a
// checkout abandoned by its caller: it is a cancellation, not a transport
// failure, so core.IsCancelled recognizes it and retry logic does not
// re-attempt a deliberately abandoned checkout as if the pool were broken.
// (Regression: this path used to wrap ctx.Err as KindIO.)
func TestPoolCheckoutCancelIsKindCancelled(t *testing.T) {
	srv, params := startConfiguredServer(t, func(s *Server) {})
	_ = srv
	pool := NewPool(params, 1)
	defer pool.Close()
	// Occupy the pool's only slot so the next checkout must wait.
	c, err := pool.Get(background())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Put(c)
	ctx, cancel := context.WithCancel(background())
	cancel()
	if _, err := pool.Get(ctx); err == nil {
		t.Fatal("checkout with a cancelled context should fail")
	} else if !core.IsCancelled(err) {
		t.Fatalf("cancelled checkout should carry KindCancelled, got %v (%v)", core.KindOf(err), err)
	}
}
