package wire

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/debug"
	"repro/internal/engine"
)

// debugFixture boots a server with the paper's buggy mean_deviation UDF and
// a numbers table, and returns a v2 client.
func debugFixture(t *testing.T) (*Server, *Client) {
	t.Helper()
	db := engine.NewDB()
	conn := &engine.Conn{DB: db, User: "monetdb", Password: "monetdb"}
	for _, sql := range []string{
		`CREATE TABLE numbers (i INTEGER)`,
		`INSERT INTO numbers VALUES (1), (2), (3), (4), (100)`,
		`CREATE FUNCTION mean_deviation(column INTEGER)
RETURNS DOUBLE LANGUAGE PYTHON {
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += column[i] - mean
    deviation = distance / len(column)
    return deviation;
};`,
		`CREATE FUNCTION double_it(x INTEGER)
RETURNS INTEGER LANGUAGE PYTHON {
    y = x * 2
    return y;
};`,
	} {
		if _, err := conn.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer("demo", "monetdb", "monetdb", db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	host, port, _ := strings.Cut(addr, ":")
	_ = host
	p := ConnParams{Host: "127.0.0.1", Database: "demo", User: "monetdb", Password: "monetdb"}
	p.Port = atoiOrFail(t, port)
	c, err := DialContext(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func atoiOrFail(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			t.Fatalf("bad port %q", s)
		}
		n = n*10 + int(r-'0')
	}
	return n
}

func ctxSec(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestDebugProtocolFullCycle drives launch → stopped(breakpoint) →
// inspection → step → continue → terminated over the wire, with a query
// interleaved on the same connection while the debuggee is paused... it
// cannot run (the debuggee holds the engine lock), so the interleaved
// traffic here is a ping plus queries before and after.
func TestDebugProtocolFullCycle(t *testing.T) {
	_, c := debugFixture(t)
	ctx := ctxSec(t)
	dc, err := c.Debug()
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()

	// Non-debug traffic on the same connection before launch.
	if msg, _, err := dc.Query(ctx, "SELECT i FROM numbers"); err != nil || msg != "SELECT 5" {
		t.Fatalf("pre-launch query: %q %v", msg, err)
	}

	// The wrapper module is "def mean_deviation(column):" + body; line 8 is
	// the accumulation line (distance += ...).
	_, err = dc.RoundTrip(ctx, DebugRequest{
		Command:     DebugCmdLaunch,
		Query:       "SELECT mean_deviation(i) FROM numbers",
		UDF:         "mean_deviation",
		Breakpoints: []DebugBreakpoint{{Line: 8, Condition: "i == 3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := dc.WaitEvent(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != DebugEventStopped || ev.Reason != string(debug.ReasonBreakpoint) || ev.Line != 8 {
		t.Fatalf("first stop: %+v", ev)
	}

	// Inspect while paused.
	rep, err := dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdLocals})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Vars["i"] != "3" {
		t.Fatalf("locals: %v", rep.Vars)
	}
	rep, err = dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdEval, Expr: "distance"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Value != "-60.0" {
		t.Fatalf("eval distance: %q", rep.Value)
	}
	rep, err = dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdStack})
	if err != nil || len(rep.Frames) == 0 || rep.Frames[0].Func != "mean_deviation" {
		t.Fatalf("stack: %+v %v", rep.Frames, err)
	}
	rep, err = dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdSource})
	if err != nil || len(rep.Source) == 0 {
		t.Fatalf("source: %v %v", rep.Source, err)
	}

	// A resume while paused is acked immediately; the stop arrives pushed.
	if _, err := dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdStepOver}); err != nil {
		t.Fatal(err)
	}
	ev, err = dc.WaitEvent(ctx)
	if err != nil || ev.Kind != DebugEventStopped || ev.Reason != string(debug.ReasonStep) {
		t.Fatalf("step stop: %+v %v", ev, err)
	}

	// Inspections against a running debuggee fail in-band, not fatally.
	if _, err := dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdContinue}); err != nil {
		t.Fatal(err)
	}
	for {
		ev, err = dc.WaitEvent(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == DebugEventTerminated {
			break
		}
		if _, err := dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdContinue}); err != nil {
			t.Fatal(err)
		}
	}
	if ev.Err != "" {
		t.Fatalf("terminated with error: %s", ev.Err)
	}
	if ev.Msg != "SELECT 1" {
		t.Fatalf("terminated msg: %q", ev.Msg)
	}

	// The connection still serves plain traffic after the debug run.
	if msg, table, err := dc.Query(ctx, "SELECT i FROM numbers"); err != nil || table.NumRows() != 5 {
		t.Fatalf("post-debug query: %q %v", msg, err)
	}
}

// TestDebugQueryWhilePaused is the regression for the frame-loop deadlock:
// a plain query issued on the debug connection while the debuggee is paused
// blocks on the engine lock, but the frame loop must keep serving — the
// subsequent resume command releases the lock and the query completes.
func TestDebugQueryWhilePaused(t *testing.T) {
	_, c := debugFixture(t)
	ctx := ctxSec(t)
	dc, err := c.Debug()
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	_, err = dc.RoundTrip(ctx, DebugRequest{
		Command: DebugCmdLaunch,
		Query:   "SELECT mean_deviation(i) FROM numbers",
		UDF:     "mean_deviation", StopOnEntry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev, err := dc.WaitEvent(ctx); err != nil || ev.Kind != DebugEventStopped {
		t.Fatalf("entry stop: %+v %v", ev, err)
	}
	// Queue a query behind the paused debuggee's engine lock.
	type qres struct {
		msg string
		err error
	}
	qdone := make(chan qres, 1)
	go func() {
		msg, _, err := dc.Query(ctx, "SELECT i FROM numbers")
		qdone <- qres{msg, err}
	}()
	// The frame loop must still answer pings and debug commands with the
	// query stuck in the worker.
	time.Sleep(50 * time.Millisecond)
	if _, err := dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdLocals}); err != nil {
		t.Fatalf("inspect with a queued query: %v", err)
	}
	if _, err := dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdContinue}); err != nil {
		t.Fatalf("resume with a queued query: %v", err)
	}
	ev, err := dc.WaitEvent(ctx)
	if err != nil || ev.Kind != DebugEventTerminated {
		t.Fatalf("terminated: %+v %v", ev, err)
	}
	select {
	case r := <-qdone:
		if r.err != nil || r.msg != "SELECT 5" {
			t.Fatalf("queued query: %q %v", r.msg, r.err)
		}
	case <-ctx.Done():
		t.Fatal("queued query never completed after resume")
	}
}

// TestDebugTupleAtATimeMode is the regression for the stale trace hook: in
// tuple-at-a-time mode the engine reuses one interpreter per row, so after
// the debugged first invocation terminates, the remaining rows must run
// free of the dead session's hook instead of deadlocking on its event
// channel.
func TestDebugTupleAtATimeMode(t *testing.T) {
	srv, c := debugFixture(t)
	srv.DB.Mode = engine.ModeTupleAtATime
	ctx := ctxSec(t)
	dc, err := c.Debug()
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	_, err = dc.RoundTrip(ctx, DebugRequest{
		Command:     DebugCmdLaunch,
		Query:       "SELECT double_it(i) FROM numbers",
		UDF:         "double_it",
		Breakpoints: []DebugBreakpoint{{Line: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := dc.WaitEvent(ctx)
	if err != nil || ev.Kind != DebugEventStopped || ev.Line != 2 {
		t.Fatalf("row-1 stop: %+v %v", ev, err)
	}
	if _, err := dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdContinue}); err != nil {
		t.Fatal(err)
	}
	// Rows 2..5 execute undebugged on the same interpreter; the query must
	// terminate instead of wedging on the finished session's trace hook.
	ev, err = dc.WaitEvent(ctx)
	if err != nil || ev.Kind != DebugEventTerminated || ev.Err != "" {
		t.Fatalf("terminated: %+v %v", ev, err)
	}
	if msg, _, err := dc.Query(ctx, "SELECT i FROM numbers"); err != nil || msg != "SELECT 5" {
		t.Fatalf("query after tuple-mode debug: %q %v", msg, err)
	}
}

// TestDebugRequiresV2 verifies a v1 session is refused debugging in-band
// while its ordinary traffic is untouched.
func TestDebugRequiresV2(t *testing.T) {
	_, cV2 := debugFixture(t)
	p := cV2.Params()
	cV1, err := DialContext(context.Background(), p, WithProtoVersion(ProtoV1))
	if err != nil {
		t.Fatal(err)
	}
	defer cV1.Close()
	if cV1.ProtoVersion() != ProtoV1 {
		t.Fatalf("negotiated %d", cV1.ProtoVersion())
	}
	if _, err := cV1.Debug(); err == nil {
		t.Fatal("Debug() on a v1 client should fail client-side")
	}
	// Force the frame through anyway: the server must reject it in-band.
	if err := cV1.send(MsgDebug, EncodeDebugRequest(DebugRequest{Command: DebugCmdLaunch, Query: "SELECT 1", UDF: "f"})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := cV1.recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgDebugReply {
		t.Fatalf("reply type %d", typ)
	}
	rep, err := DecodeDebugReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Success || !strings.Contains(rep.Error, "v2") {
		t.Fatalf("v1 debug reply: %+v", rep)
	}
	// Ordinary v1 traffic still works on the same connection.
	if msg, _, err := cV1.Query(context.Background(), "SELECT i FROM numbers"); err != nil || msg != "SELECT 5" {
		t.Fatalf("v1 query after refusal: %q %v", msg, err)
	}
}

// TestDebugLaunchErrors covers the in-band failure paths: bad launch
// parameters, double launch, control without a session.
func TestDebugLaunchErrors(t *testing.T) {
	_, c := debugFixture(t)
	ctx := ctxSec(t)
	dc, err := c.Debug()
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()

	if _, err := dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdContinue}); err == nil {
		t.Fatal("continue without a session should fail")
	}
	if _, err := dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdLaunch, Query: "SELECT 1"}); err == nil {
		t.Fatal("launch without udf should fail")
	}
	if _, err := dc.RoundTrip(ctx, DebugRequest{Command: "warp"}); err == nil {
		t.Fatal("unknown command should fail")
	}

	// Launch against a long pause, then a second launch must be refused.
	_, err = dc.RoundTrip(ctx, DebugRequest{
		Command: DebugCmdLaunch,
		Query:   "SELECT mean_deviation(i) FROM numbers",
		UDF:     "mean_deviation", StopOnEntry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev, err := dc.WaitEvent(ctx); err != nil || ev.Reason != string(debug.ReasonEntry) {
		t.Fatalf("entry stop: %+v %v", ev, err)
	}
	if _, err := dc.RoundTrip(ctx, DebugRequest{
		Command: DebugCmdLaunch, Query: "SELECT 1", UDF: "f",
	}); err == nil || !strings.Contains(err.Error(), "already active") {
		t.Fatalf("second launch: %v", err)
	}
	// Eval of a broken expression fails in-band, session stays paused.
	if _, err := dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdEval, Expr: "no_such_var"}); err == nil {
		t.Fatal("eval of undefined name should fail")
	}
	// Kill ends it.
	if _, err := dc.RoundTrip(ctx, DebugRequest{Command: DebugCmdKill}); err != nil {
		t.Fatal(err)
	}
	ev, err := dc.WaitEvent(ctx)
	if err != nil || ev.Kind != DebugEventTerminated {
		t.Fatalf("kill terminal: %+v %v", ev, err)
	}
	if !strings.Contains(ev.Err, "killed") {
		t.Fatalf("killed err: %q", ev.Err)
	}
}

// TestDebugDisconnectKillsDebuggee proves a paused debuggee does not pin
// the database after its client vanishes: a fresh connection can query the
// same table shortly after the debug connection drops.
func TestDebugDisconnectKillsDebuggee(t *testing.T) {
	_, c := debugFixture(t)
	ctx := ctxSec(t)
	dc, err := c.Debug()
	if err != nil {
		t.Fatal(err)
	}
	_, err = dc.RoundTrip(ctx, DebugRequest{
		Command: DebugCmdLaunch,
		Query:   "SELECT mean_deviation(i) FROM numbers",
		UDF:     "mean_deviation", StopOnEntry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev, err := dc.WaitEvent(ctx); err != nil || ev.Kind != DebugEventStopped {
		t.Fatalf("entry stop: %+v %v", ev, err)
	}
	// Drop the connection with the debuggee paused (holding the DB lock).
	dc.Close()

	c2, err := DialContext(ctx, c.Params())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if msg, _, err := c2.Query(qctx, "SELECT i FROM numbers"); err != nil || msg != "SELECT 5" {
		t.Fatalf("query after debug disconnect: %q %v", msg, err)
	}
}
