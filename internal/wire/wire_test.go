package wire

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgQuery, []byte("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil || typ != MsgQuery || string(payload) != "SELECT 1" {
		t.Fatalf("%d %q %v", typ, payload, err)
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	// zero length
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero-length frame should fail")
	}
	// length beyond cap
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})); err == nil {
		t.Fatal("oversized frame should fail")
	}
	// truncated body
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 9, 1, 2})); err == nil {
		t.Fatal("truncated frame should fail")
	}
}

func sampleTable() *storage.Table {
	tbl := storage.NewTable("result", storage.Schema{
		{Name: "i", Type: storage.TInt},
		{Name: "f", Type: storage.TFloat},
		{Name: "s", Type: storage.TStr},
		{Name: "b", Type: storage.TBool},
		{Name: "blob", Type: storage.TBlob},
	})
	_ = tbl.AppendRow([]any{int64(1), 2.5, "hello", true, []byte{1, 2, 3}})
	_ = tbl.AppendRow([]any{nil, nil, nil, nil, nil})
	_ = tbl.AppendRow([]any{int64(-7), -0.25, "", false, []byte{}})
	return tbl
}

func TestResultEncodingRoundTrip(t *testing.T) {
	tbl := sampleTable()
	msg, back, err := DecodeResult(EncodeResult("SELECT 3", tbl))
	if err != nil {
		t.Fatal(err)
	}
	if msg != "SELECT 3" {
		t.Fatalf("msg %q", msg)
	}
	if back.NumRows() != 3 || len(back.Cols) != 5 {
		t.Fatalf("shape: %dx%d", back.NumRows(), len(back.Cols))
	}
	for ci, col := range tbl.Cols {
		for i := 0; i < col.Len(); i++ {
			if col.IsNull(i) != back.Cols[ci].IsNull(i) {
				t.Fatalf("null mismatch col %d row %d", ci, i)
			}
			if !col.IsNull(i) && col.FormatValue(i) != back.Cols[ci].FormatValue(i) {
				t.Fatalf("value mismatch col %d row %d: %s vs %s",
					ci, i, col.FormatValue(i), back.Cols[ci].FormatValue(i))
			}
		}
	}
}

func TestResultEncodingNilTable(t *testing.T) {
	msg, tbl, err := DecodeResult(EncodeResult("CREATE TABLE", nil))
	if err != nil || msg != "CREATE TABLE" || tbl != nil {
		t.Fatalf("%q %v %v", msg, tbl, err)
	}
}

func TestResultEncodingPropertyInts(t *testing.T) {
	f := func(vals []int64, nulls []bool) bool {
		col := storage.NewColumn("x", storage.TInt)
		for i, v := range vals {
			if i < len(nulls) && nulls[i] {
				col.AppendNull()
			} else {
				col.AppendInt(v)
			}
		}
		tbl := &storage.Table{Name: "t", Cols: []*storage.Column{col}}
		_, back, err := DecodeResult(EncodeResult("ok", tbl))
		if err != nil {
			return false
		}
		bc := back.Cols[0]
		if bc.Len() != col.Len() {
			return false
		}
		for i := 0; i < col.Len(); i++ {
			if col.IsNull(i) != bc.IsNull(i) {
				return false
			}
			if !col.IsNull(i) && col.Ints[i] != bc.Ints[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeResultRejectsGarbage(t *testing.T) {
	good := EncodeResult("ok", sampleTable())
	cases := [][]byte{
		nil,
		{1},
		good[:len(good)-3], // truncated
		append(good, 0xAA), // trailing byte
		{0, 0, 0, 2, 'o', 'k', 1, 0, 0, 0, 1, 0, 0, 0, 1, 'x', 99, 0, 0, 0, 0, 0}, // bad type
	}
	for i, c := range cases {
		if _, _, err := DecodeResult(c); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

// startTestServer boots a server with one user on a random port.
func startTestServer(t *testing.T) (*Server, ConnParams) {
	t.Helper()
	db := engine.NewDB()
	db.FS = core.NewMemFS(nil)
	srv := NewServer("demo", "monetdb", "secret", db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	host, portStr, _ := splitHostPort(addr)
	return srv, ConnParams{Host: host, Port: portStr, Database: "demo", User: "monetdb", Password: "secret"}
}

func splitHostPort(addr string) (string, int, error) {
	i := strings.LastIndexByte(addr, ':')
	port := 0
	for _, ch := range addr[i+1:] {
		port = port*10 + int(ch-'0')
	}
	return addr[:i], port, nil
}

func TestClientServerEndToEnd(t *testing.T) {
	_, params := startTestServer(t)
	c, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Query(context.Background(), `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(context.Background(), `INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	msg, tbl, err := c.Query(context.Background(), `SELECT SUM(i) AS s FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if msg != "SELECT 1" || tbl.Cols[0].Ints[0] != 6 {
		t.Fatalf("%q %v", msg, tbl.Cols[0].Ints)
	}
	if c.BytesRead == 0 || c.BytesWritten == 0 {
		t.Fatal("byte counters should advance")
	}
}

func TestServerSQLErrorDoesNotKillConnection(t *testing.T) {
	_, params := startTestServer(t)
	c, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.Query(context.Background(), `SELECT * FROM missing`)
	if err == nil {
		t.Fatal("expected SQL error")
	}
	if core.KindOf(err) != core.KindName {
		t.Fatalf("kind should cross the wire: %v (%v)", core.KindOf(err), err)
	}
	// connection still usable
	if _, _, err := c.Query(context.Background(), `SELECT 1 AS one`); err != nil {
		t.Fatalf("connection should survive SQL errors: %v", err)
	}
}

func TestAuthFailures(t *testing.T) {
	_, params := startTestServer(t)
	bad := params
	bad.Password = "wrong"
	if _, err := Dial(bad); err == nil || core.KindOf(err) != core.KindAuth {
		t.Fatalf("wrong password: %v", err)
	}
	bad = params
	bad.User = "eve"
	if _, err := Dial(bad); err == nil || core.KindOf(err) != core.KindAuth {
		t.Fatalf("unknown user: %v", err)
	}
	bad = params
	bad.Database = "other"
	if _, err := Dial(bad); err == nil || core.KindOf(err) != core.KindAuth {
		t.Fatalf("unknown database: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, params := startTestServer(t)
	setup, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := setup.Query(context.Background(), `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			c, err := Dial(params)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				if _, _, err := c.Query(context.Background(), `INSERT INTO t VALUES (1)`); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	check, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	_, tbl, err := check.Query(context.Background(), `SELECT COUNT(*) AS n FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Cols[0].Ints[0] != int64(workers*20) {
		t.Fatalf("count: %d", tbl.Cols[0].Ints[0])
	}
}

func TestRemoteUDFThroughWire(t *testing.T) {
	_, params := startTestServer(t)
	c, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, sql := range []string{
		`CREATE TABLE numbers (i INTEGER)`,
		`INSERT INTO numbers VALUES (1), (2), (3), (4), (100)`,
		`CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += abs(column[i] - mean)
    return distance / len(column)
}`,
	} {
		if _, _, err := c.Query(context.Background(), sql); err != nil {
			t.Fatalf("%q: %v", sql[:20], err)
		}
	}
	_, tbl, err := c.Query(context.Background(), `SELECT mean_deviation(i) AS md FROM numbers`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Cols[0].Flts[0] != 31.2 {
		t.Fatalf("md = %v", tbl.Cols[0].Flts)
	}
	// meta tables over the wire (the devUDF import path)
	_, meta, err := c.Query(context.Background(), `SELECT name, func FROM sys.functions`)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumRows() != 1 || meta.Cols[0].Strs[0] != "mean_deviation" {
		t.Fatalf("meta: %+v", meta.Cols[0].Strs)
	}
}
