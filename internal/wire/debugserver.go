package wire

import (
	"net"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/debug"
	"repro/internal/engine"
	"repro/internal/script"
	"repro/internal/storage"
	"repro/internal/udfrt"
)

// connWriter serializes frame writes to one connection so the main request
// loop's responses and the debug controller's asynchronous event pushes
// never interleave mid-frame (or mid-stream).
type connWriter struct {
	mu sync.Mutex
	nc net.Conn
}

func (w *connWriter) writeFrame(typ byte, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	//lockblock:ok this mutex exists to serialize frame writes from the event and reply paths
	return WriteFrame(w.nc, typ, payload)
}

// ctrlCmd is a resume command queued to the debug controller.
type ctrlCmd int

const (
	ctrlContinue ctrlCmd = iota
	ctrlStepOver
	ctrlStepInto
	ctrlStepOut
	ctrlKill
)

// debugRun is one remote debug session on one connection: the launch
// parameters, the attached debug.Session once the engine reaches the target
// UDF, and the controller plumbing between the wire request loop and the
// debuggee. The debug query executes on its own goroutine with the engine's
// UDFInvoke hook pointed at invoke; that goroutine becomes the session
// controller (driving Start/Continue/... and pushing stop events) while the
// wire loop merely queues resume commands and serves inspections.
type debugRun struct {
	srv         *Server
	w           *connWriter
	udf         string
	stopOnEntry bool
	connDone    <-chan struct{}

	mu         sync.Mutex
	bps        map[int]string // desired breakpoints: line → condition
	sess       *debug.Session // non-nil once a UDF invocation is attached
	attached   bool           // only the first matching invocation attaches
	paused     bool
	finished   bool
	termReason debug.StopReason

	ctrl chan ctrlCmd // capacity 1: at most one pending resume
}

func newDebugRun(srv *Server, w *connWriter, req DebugRequest, connDone <-chan struct{}) *debugRun {
	dr := &debugRun{
		srv:         srv,
		w:           w,
		udf:         req.UDF,
		stopOnEntry: req.StopOnEntry,
		connDone:    connDone,
		bps:         map[int]string{},
		ctrl:        make(chan ctrlCmd, 1),
		termReason:  debug.ReasonDone,
	}
	for _, bp := range req.Breakpoints {
		dr.bps[bp.Line] = bp.Condition
	}
	return dr
}

// launch runs the debug query on a fresh engine session whose UDFInvoke
// hook attaches the debugger, then pushes the terminated event. It is the
// goroutine the wire loop spawns per launch request. The debuggability
// check runs here — not on the frame loop — because it takes the database
// lock, which a paused debuggee of another session may hold indefinitely.
func (dr *debugRun) launch(econn *engine.Conn, query string) {
	if m := dr.srv.metrics; m != nil {
		m.debugSessions.Add(1)
		defer m.debugSessions.Add(-1)
	}
	if err := dr.srv.checkDebuggable(dr.udf); err != nil {
		dr.mu.Lock()
		dr.finished = true
		dr.mu.Unlock()
		_ = dr.w.writeFrame(MsgDebugEvent, EncodeDebugEvent(DebugEventMsg{
			Kind:   DebugEventTerminated,
			Reason: string(debug.ReasonException),
			Err:    errString(err),
		}))
		return
	}
	dconn := &engine.Conn{
		DB:        econn.DB,
		User:      econn.User,
		Password:  econn.Password,
		UDFInvoke: dr.invoke,
	}
	res, err := dconn.Exec(query)
	dr.mu.Lock()
	dr.finished = true
	dr.paused = false
	reason := dr.termReason
	dr.mu.Unlock()
	evt := DebugEventMsg{Kind: DebugEventTerminated, Reason: string(reason)}
	if res != nil {
		evt.Msg = res.Msg
	}
	if err != nil {
		evt.Err = errString(err)
	}
	// A closed connection makes this a no-op; the client is gone.
	_ = dr.w.writeFrame(MsgDebugEvent, EncodeDebugEvent(evt))
}

// invoke is the engine hook: the first invocation of the target UDF runs
// under an attached debug session, every other UDF (and later invocations)
// runs plain.
func (dr *debugRun) invoke(name string, in *script.Interp, lines []string,
	call func() (script.Value, error)) (script.Value, error) {
	dr.mu.Lock()
	if dr.attached || !strings.EqualFold(name, dr.udf) {
		dr.mu.Unlock()
		return call()
	}
	dr.attached = true
	var out script.Value
	sess := debug.AttachSession(in, lines, func() error {
		v, err := call()
		out = v
		return err
	}, debug.Config{StopOnEntry: dr.stopOnEntry})
	for line, cond := range dr.bps {
		sess.SetBreakpoint(line, cond)
	}
	dr.sess = sess
	dr.mu.Unlock()

	// If the client disconnects while the debuggee is paused (or running),
	// kill it so it cannot pin the database forever.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-dr.connDone:
			sess.RequestPause()
			sess.Kill()
		case <-stopWatch:
		}
	}()

	err := dr.drive(sess)
	// Uninstall the trace hook: in tuple-at-a-time mode the engine reuses
	// this interpreter for the next row, and a dead session's hook would
	// block forever on its event channel.
	in.Trace = nil
	return out, err
}

// drive is the session controller: it starts the debuggee, pushes a stopped
// event at every pause, and executes resume commands queued by the wire
// loop, until the debuggee terminates. It runs on the engine goroutine —
// the debuggee body itself executes on the session's internal goroutine.
func (dr *debugRun) drive(sess *debug.Session) error {
	ev := sess.Start()
	for !ev.Terminal {
		dr.mu.Lock()
		dr.paused = true
		dr.mu.Unlock()
		_ = dr.w.writeFrame(MsgDebugEvent, EncodeDebugEvent(DebugEventMsg{
			Kind:   DebugEventStopped,
			Reason: string(ev.Reason),
			Line:   ev.Line,
			Func:   ev.FuncName,
			Depth:  ev.Depth,
		}))
		var cmd ctrlCmd
		select {
		case cmd = <-dr.ctrl:
		case <-dr.connDone:
			cmd = ctrlKill
		}
		dr.mu.Lock()
		dr.paused = false
		dr.mu.Unlock()
		switch cmd {
		case ctrlContinue:
			ev = sess.Continue()
		case ctrlStepOver:
			ev = sess.StepOver()
		case ctrlStepInto:
			ev = sess.StepInto()
		case ctrlStepOut:
			ev = sess.StepOut()
		case ctrlKill:
			ev = sess.Kill()
		}
	}
	dr.mu.Lock()
	dr.termReason = ev.Reason
	dr.mu.Unlock()
	_, err := sess.Result()
	return err
}

// resume queues one resume command. It fails when the debuggee is not
// paused or a resume is already pending.
func (dr *debugRun) resume(cmd ctrlCmd) error {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	if dr.sess == nil || dr.finished {
		return core.Errorf(core.KindConstraint, "debuggee is not paused")
	}
	if !dr.paused {
		return core.Errorf(core.KindConstraint, "debuggee is running")
	}
	select {
	case dr.ctrl <- cmd:
		dr.paused = false
		return nil
	default:
		return core.Errorf(core.KindConstraint, "a resume is already pending")
	}
}

// pause requests an asynchronous stop at the debuggee's next line.
func (dr *debugRun) pause() error {
	dr.mu.Lock()
	sess := dr.sess
	finished := dr.finished
	dr.mu.Unlock()
	if sess == nil || finished {
		return core.Errorf(core.KindConstraint, "no UDF invocation is attached")
	}
	sess.RequestPause()
	return nil
}

// session returns the attached session if the debuggee is currently paused.
func (dr *debugRun) session() (*debug.Session, error) {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	if dr.sess == nil || dr.finished || !dr.paused {
		return nil, core.Errorf(core.KindConstraint, "debuggee is not paused")
	}
	return dr.sess, nil
}

// active reports whether a launch is still in flight.
func (dr *debugRun) active() bool {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	return !dr.finished
}

// handleDebug processes one MsgDebug request and writes its MsgDebugReply.
// It reports whether the connection should keep serving (always true: debug
// errors are in-band, never fatal to the session).
func (sc *serverConn) handleDebug(payload []byte) bool {
	req, err := DecodeDebugRequest(payload)
	if err != nil {
		// Without a decodable request there is no seq to address the reply
		// to — a reply the client could never match would hang its caller.
		// The framing is broken; drop the connection.
		sc.shutdown()
		_ = sc.w.writeFrame(MsgDebugReply, EncodeDebugReply(DebugReply{
			Success: false, Error: err.Error()}))
		return false
	}
	rep := DebugReply{Seq: req.Seq, Success: true}
	fail := func(err error) {
		rep.Success = false
		rep.Error = errString(err)
	}
	if sc.version < ProtoV2 {
		fail(core.Errorf(core.KindProtocol, "debugging requires a protocol v2 session"))
		return sc.w.writeFrame(MsgDebugReply, EncodeDebugReply(rep)) == nil
	}
	switch req.Command {
	case DebugCmdLaunch:
		if req.Query == "" || req.UDF == "" {
			fail(core.Errorf(core.KindConstraint, "launch needs a query and a udf"))
			break
		}
		if sc.dr != nil && sc.dr.active() {
			fail(core.Errorf(core.KindConstraint, "a debug session is already active"))
			break
		}
		dr := newDebugRun(sc.srv, sc.w, req, sc.connDone)
		sc.dr = dr
		sc.srv.wg.Add(1)
		go func() {
			defer sc.srv.wg.Done()
			dr.launch(sc.sess, req.Query)
		}()
	case DebugCmdSetBreakpoints:
		if sc.dr == nil {
			fail(core.Errorf(core.KindConstraint, "no debug session"))
			break
		}
		sc.dr.setBreakpoints(req.Breakpoints)
	case DebugCmdContinue, DebugCmdStepOver, DebugCmdStepInto, DebugCmdStepOut, DebugCmdKill:
		if sc.dr == nil {
			fail(core.Errorf(core.KindConstraint, "no debug session"))
			break
		}
		cmd := map[string]ctrlCmd{
			DebugCmdContinue: ctrlContinue,
			DebugCmdStepOver: ctrlStepOver,
			DebugCmdStepInto: ctrlStepInto,
			DebugCmdStepOut:  ctrlStepOut,
			DebugCmdKill:     ctrlKill,
		}[req.Command]
		if err := sc.dr.resume(cmd); err != nil {
			fail(err)
		}
	case DebugCmdPause:
		if sc.dr == nil {
			fail(core.Errorf(core.KindConstraint, "no debug session"))
			break
		}
		if err := sc.dr.pause(); err != nil {
			fail(err)
		}
	case DebugCmdStack, DebugCmdLocals, DebugCmdGlobals, DebugCmdEval, DebugCmdSource:
		if sc.dr == nil {
			fail(core.Errorf(core.KindConstraint, "no debug session"))
			break
		}
		if err := sc.dr.inspect(req, &rep); err != nil {
			fail(err)
		}
	default:
		fail(core.Errorf(core.KindProtocol, "unknown debug command %q", req.Command))
	}
	return sc.w.writeFrame(MsgDebugReply, EncodeDebugReply(rep)) == nil
}

// checkDebuggable rejects debug launches against UDFs whose runtime cannot
// run under the interpreter trace hook (the native GO runtime): without the
// check the query would simply run to completion with nothing to attach to,
// which reads like a hung debugger. Unknown UDFs pass through — the query
// itself reports the missing function.
func (s *Server) checkDebuggable(udf string) error {
	var def *storage.FuncDef
	_ = s.DB.Lock(func(cat *storage.Catalog) error {
		def, _ = cat.Function(udf)
		return nil
	})
	if def == nil || udfrt.LanguageDebuggable(def.Language) {
		return nil
	}
	return core.Errorf(core.KindConstraint,
		"UDF %s runs on the %s runtime, which is not debuggable",
		def.Name, udfrt.Canonical(def.Language))
}

// setBreakpoints replaces the full breakpoint set, live when attached.
func (dr *debugRun) setBreakpoints(bps []DebugBreakpoint) {
	dr.mu.Lock()
	sess := dr.sess
	old := dr.bps
	dr.bps = map[int]string{}
	for _, bp := range bps {
		dr.bps[bp.Line] = bp.Condition
	}
	next := dr.bps
	dr.mu.Unlock()
	if sess == nil {
		return
	}
	for line := range old {
		if _, keep := next[line]; !keep {
			sess.ClearBreakpoint(line)
		}
	}
	for line, cond := range next {
		sess.SetBreakpoint(line, cond)
	}
}

// inspect serves the inspection commands. Source only needs an attached
// session; the rest require the debuggee to be paused.
func (dr *debugRun) inspect(req DebugRequest, rep *DebugReply) error {
	if req.Command == DebugCmdSource {
		dr.mu.Lock()
		sess := dr.sess
		dr.mu.Unlock()
		if sess == nil {
			return core.Errorf(core.KindConstraint, "no UDF invocation is attached")
		}
		rep.Source = sess.Source()
		return nil
	}
	sess, err := dr.session()
	if err != nil {
		return err
	}
	switch req.Command {
	case DebugCmdStack:
		frames, err := sess.Stack()
		if err != nil {
			return err
		}
		for _, f := range frames {
			rep.Frames = append(rep.Frames, DebugFrame{Func: f.FuncName, Line: f.Line, Depth: f.Depth})
		}
	case DebugCmdLocals, DebugCmdGlobals:
		var vars map[string]script.Value
		if req.Command == DebugCmdLocals {
			vars, err = sess.Locals()
		} else {
			vars, err = sess.GlobalVars()
		}
		if err != nil {
			return err
		}
		rep.Vars = make(map[string]string, len(vars))
		for k, v := range vars {
			rep.Vars[k] = v.Repr()
		}
	case DebugCmdEval:
		v, err := sess.Eval(req.Expr)
		if err != nil {
			return err
		}
		rep.Value = v.Repr()
	}
	return nil
}
