package wire

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
)

// noDeadline clears a connection deadline.
func noDeadline() time.Time { return time.Time{} }

// DebugConn takes exclusive ownership of a v2 client connection and demuxes
// its inbound frames: replies to debug requests (matched by seq), server-
// pushed debug events, and ordinary query responses — so the IDE side can
// keep issuing queries on the same connection while the debuggee runs and
// stop events arrive asynchronously.
//
// Once a Client is switched into debug mode its plain Query/Exec/Ping
// methods must not be used; route queries through DebugConn.Query/Exec.
// Close tears the connection down — debug state is not resumable, so the
// connection is never returned to a pool.
type DebugConn struct {
	c *Client

	wmu sync.Mutex // serializes writes and seq allocation
	seq int

	pmu     sync.Mutex
	pending map[int]chan DebugReply

	qmu     sync.Mutex
	queries []*queryWaiter

	events chan DebugEventMsg

	readerDone chan struct{}
	readErr    error // valid after readerDone closes

	closeOnce sync.Once
}

type queryWaiter struct {
	ch chan queryOutcome
}

type queryOutcome struct {
	msg   string
	table *storage.Table
	err   error
}

// Debug switches the client connection into debug mode and starts the
// demux reader. The connection must be a v2 session.
func (c *Client) Debug() (*DebugConn, error) {
	if c.broken.Load() {
		return nil, core.Errorf(core.KindIO, "connection is broken")
	}
	if c.version < ProtoV2 {
		return nil, core.Errorf(core.KindProtocol, "debugging requires a protocol v2 session")
	}
	dc := &DebugConn{
		c:          c,
		pending:    map[int]chan DebugReply{},
		events:     make(chan DebugEventMsg, 64),
		readerDone: make(chan struct{}),
	}
	// The demux reader owns all reads from here on; disable the read
	// deadline the synchronous path may have armed.
	_ = c.nc.SetReadDeadline(noDeadline())
	//goleak:bounded readLoop exits when the connection closes or says goodbye
	go dc.readLoop()
	return dc, nil
}

// readLoop is the demux: it classifies every inbound frame until the
// connection dies or says goodbye.
func (dc *DebugConn) readLoop() {
	defer dc.finishRead()
	var cur *queryAssembly
	for {
		typ, payload, err := ReadFrame(dc.c.nc)
		if err != nil {
			dc.readErr = err
			return
		}
		dc.c.BytesRead += int64(len(payload)) + 5
		//wireswitch:dispatch server-to-client
		//wireswitch:ignore MsgAuthOK MsgPrepareOK MsgCloseStmtOK -- handshake and prepared statements cannot run on a debug-mode connection
		switch typ {
		case MsgDebugEvent:
			ev, err := DecodeDebugEvent(payload)
			if err != nil {
				dc.readErr = err
				return
			}
			dc.events <- ev
		case MsgDebugReply:
			rep, err := DecodeDebugReply(payload)
			if err != nil {
				dc.readErr = err
				return
			}
			dc.pmu.Lock()
			ch := dc.pending[rep.Seq]
			delete(dc.pending, rep.Seq)
			dc.pmu.Unlock()
			if ch != nil {
				ch <- rep
			}
		case MsgResult:
			msg, t, err := DecodeResult(payload)
			dc.completeQuery(queryOutcome{msg: msg, table: t, err: err})
			if err != nil {
				dc.readErr = err
				return
			}
		case MsgResultChunk:
			t, err := DecodeResultChunk(payload)
			if err != nil {
				dc.completeQuery(queryOutcome{err: err})
				dc.readErr = err
				return
			}
			if cur == nil {
				cur = &queryAssembly{}
			}
			if err := cur.add(t); err != nil {
				dc.completeQuery(queryOutcome{err: err})
				dc.readErr = err
				return
			}
		case MsgResultEnd:
			msg, _, err := DecodeResultEnd(payload)
			if err != nil {
				dc.completeQuery(queryOutcome{err: err})
				dc.readErr = err
				return
			}
			var t *storage.Table
			if cur != nil {
				t = cur.table
			}
			cur = nil
			dc.completeQuery(queryOutcome{msg: msg, table: t})
		case MsgErr:
			cur = nil
			dc.completeQuery(queryOutcome{err: DecodeError(payload)})
		case MsgPong:
			// Liveness ack; nothing waits on it in debug mode.
		case MsgGoodbye:
			dc.readErr = core.Errorf(core.KindIO, "server closed the session")
			return
		default:
			dc.readErr = core.Errorf(core.KindProtocol, "unexpected frame %d in debug demux", typ)
			return
		}
	}
}

// queryAssembly reassembles a chunked result stream.
type queryAssembly struct {
	table *storage.Table
}

func (a *queryAssembly) add(t *storage.Table) error {
	if a.table == nil {
		a.table = t
		return nil
	}
	return a.table.AppendTable(t)
}

// finishRead fails every waiter once the demux stops.
func (dc *DebugConn) finishRead() {
	dc.c.broken.Store(true)
	close(dc.readerDone)
	dc.pmu.Lock()
	for seq, ch := range dc.pending {
		delete(dc.pending, seq)
		close(ch)
	}
	dc.pmu.Unlock()
	dc.qmu.Lock()
	for _, w := range dc.queries {
		close(w.ch)
	}
	dc.queries = nil
	dc.qmu.Unlock()
	close(dc.events)
}

// failed returns the demux terminal error.
func (dc *DebugConn) failed() error {
	if dc.readErr != nil {
		return dc.readErr
	}
	return core.Errorf(core.KindIO, "debug connection closed")
}

// send writes one frame under the write lock.
func (dc *DebugConn) send(typ byte, payload []byte) error {
	dc.wmu.Lock()
	defer dc.wmu.Unlock()
	//lockblock:ok the write mutex exists to serialize frame writes with seq allocation
	return dc.c.send(typ, payload)
}

// RoundTrip sends one debug request and waits for its reply. It fails with
// the reply's in-band error when the server rejects the command.
func (dc *DebugConn) RoundTrip(ctx context.Context, req DebugRequest) (DebugReply, error) {
	if ctx == nil {
		ctx = context.Background() //ctxflow:edge nil-ctx fallback of the exported debug API
	}
	ch := make(chan DebugReply, 1)
	dc.wmu.Lock()
	dc.seq++
	req.Seq = dc.seq
	dc.pmu.Lock()
	dc.pending[req.Seq] = ch
	dc.pmu.Unlock()
	err := dc.c.send(MsgDebug, EncodeDebugRequest(req)) //lockblock:ok the write mutex pairs the send with its seq allocation
	dc.wmu.Unlock()
	if err != nil {
		dc.pmu.Lock()
		delete(dc.pending, req.Seq)
		dc.pmu.Unlock()
		return DebugReply{}, err
	}
	select {
	case rep, ok := <-ch:
		if !ok {
			return DebugReply{}, dc.failed()
		}
		if !rep.Success {
			return rep, core.Errorf(core.KindRuntime, "%s", rep.Error)
		}
		return rep, nil
	case <-ctx.Done():
		dc.pmu.Lock()
		delete(dc.pending, req.Seq)
		dc.pmu.Unlock()
		return DebugReply{}, core.Wrapf(core.KindCancelled, ctx.Err(), "debug request aborted: %v", ctx.Err())
	}
}

// Events returns the server-pushed debug event stream. It is closed when
// the connection dies.
func (dc *DebugConn) Events() <-chan DebugEventMsg { return dc.events }

// WaitEvent blocks for the next debug event.
func (dc *DebugConn) WaitEvent(ctx context.Context) (DebugEventMsg, error) {
	if ctx == nil {
		ctx = context.Background() //ctxflow:edge nil-ctx fallback of the exported debug API
	}
	select {
	case ev, ok := <-dc.events:
		if !ok {
			return DebugEventMsg{}, dc.failed()
		}
		return ev, nil
	case <-ctx.Done():
		return DebugEventMsg{}, core.Wrapf(core.KindCancelled, ctx.Err(), "wait aborted: %v", ctx.Err())
	}
}

// Query runs SQL on the same connection while the debug session is active —
// the demux routes its response frames around interleaved debug events. The
// result is fully materialized.
func (dc *DebugConn) Query(ctx context.Context, sql string) (string, *storage.Table, error) {
	if ctx == nil {
		ctx = context.Background() //ctxflow:edge nil-ctx fallback of the exported debug API
	}
	w := &queryWaiter{ch: make(chan queryOutcome, 1)}
	dc.qmu.Lock()
	dc.queries = append(dc.queries, w)
	dc.qmu.Unlock()
	if err := dc.send(MsgQuery, []byte(sql)); err != nil {
		// Unqueue the waiter, or the next query's response would be
		// delivered to this abandoned slot and shift every result.
		dc.qmu.Lock()
		for i, qw := range dc.queries {
			if qw == w {
				dc.queries = append(dc.queries[:i], dc.queries[i+1:]...)
				break
			}
		}
		dc.qmu.Unlock()
		return "", nil, err
	}
	select {
	case out, ok := <-w.ch:
		if !ok {
			return "", nil, dc.failed()
		}
		return out.msg, out.table, out.err
	case <-ctx.Done():
		// The response will still arrive; without consuming it the stream
		// is unusable, so poison the connection.
		dc.c.broken.Store(true)
		return "", nil, core.Wrapf(core.KindCancelled, ctx.Err(), "query aborted: %v", ctx.Err())
	}
}

// Exec runs SQL for its side effects.
func (dc *DebugConn) Exec(ctx context.Context, sql string) (string, error) {
	msg, _, err := dc.Query(ctx, sql)
	return msg, err
}

// completeQuery hands a finished query outcome to the oldest waiter.
func (dc *DebugConn) completeQuery(out queryOutcome) {
	dc.qmu.Lock()
	var w *queryWaiter
	if len(dc.queries) > 0 {
		w = dc.queries[0]
		dc.queries = dc.queries[1:]
	}
	dc.qmu.Unlock()
	if w != nil {
		w.ch <- out
	}
}

// Close tears down the debug connection. The underlying client is poisoned
// and closed; it must not be reused.
func (dc *DebugConn) Close() error {
	var err error
	dc.closeOnce.Do(func() {
		dc.c.broken.Store(true)
		err = dc.c.nc.Close()
		<-dc.readerDone
	})
	return err
}
