package wire

import "time"

// dialConfig collects the knobs of the v2 client surface. All fields have
// working zero-value defaults so DialContext(ctx, params) alone behaves
// like the old Dial.
type dialConfig struct {
	dialTimeout  time.Duration
	readTimeout  time.Duration // per-receive deadline; 0 = none
	writeTimeout time.Duration // per-send deadline; 0 = none
	keepAlive    time.Duration
	logf         func(format string, args ...any)
	version      byte // highest protocol version to offer
}

func defaultDialConfig() dialConfig {
	return dialConfig{
		dialTimeout: 10 * time.Second,
		keepAlive:   30 * time.Second,
		version:     ProtoV2,
	}
}

// DialOption customizes DialContext.
type DialOption func(*dialConfig)

// WithDialTimeout bounds the TCP connect (default 10s).
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.dialTimeout = d }
}

// WithReadTimeout applies a deadline to every receive on the connection.
// Zero (the default) means reads block until the context is cancelled.
func WithReadTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.readTimeout = d }
}

// WithWriteTimeout applies a deadline to every send on the connection.
func WithWriteTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.writeTimeout = d }
}

// WithKeepAlive sets the TCP keepalive period (default 30s; negative
// disables keepalives).
func WithKeepAlive(d time.Duration) DialOption {
	return func(c *dialConfig) { c.keepAlive = d }
}

// WithLogger routes connection-level log lines (dial, negotiation, broken
// connections) to logf. Default: silent.
func WithLogger(logf func(format string, args ...any)) DialOption {
	return func(c *dialConfig) { c.logf = logf }
}

// WithProtoVersion caps the protocol version the client offers during the
// handshake. WithProtoVersion(ProtoV1) forces the legacy one-shot result
// path, for back-compat testing against old servers.
func WithProtoVersion(v byte) DialOption {
	return func(c *dialConfig) { c.version = v }
}
