package wire

import (
	"encoding/json"

	"repro/internal/core"
	"repro/internal/debug"
)

// The debug sub-protocol (v2 sessions only) is this reproduction's stand-in
// for the Debug Adapter Protocol tunneled through the database connection:
// the IDE debugs a UDF executing *inside* the server, instead of the
// local-only sandbox of internal/debug. Requests are acknowledged
// immediately with MsgDebugReply (matched by seq); "stopped" and
// "terminated" arrive asynchronously as server-pushed MsgDebugEvent frames
// that may interleave with pipelined query responses on the same
// connection.
const (
	MsgDebug      byte = 5  // client → server: one DebugRequest (JSON)
	MsgDebugReply byte = 23 // server → client: DebugReply answering one request
	MsgDebugEvent byte = 24 // server → client: asynchronous DebugEventMsg push
)

// Debug sub-protocol commands.
const (
	DebugCmdLaunch         = "launch"         // start the debug query under the trace hook
	DebugCmdSetBreakpoints = "setBreakpoints" // replace the full breakpoint set
	DebugCmdContinue       = "continue"
	DebugCmdStepOver       = "next"
	DebugCmdStepInto       = "stepIn"
	DebugCmdStepOut        = "stepOut"
	DebugCmdPause          = "pause"
	DebugCmdStack          = "stack"
	DebugCmdLocals         = "locals"
	DebugCmdGlobals        = "globals"
	DebugCmdEval           = "eval"
	DebugCmdSource         = "source"
	DebugCmdKill           = "kill"
)

// DebugBreakpoint is one line breakpoint with an optional condition
// evaluated in the paused frame.
type DebugBreakpoint struct {
	Line      int    `json:"line"`
	Condition string `json:"condition,omitempty"`
}

// DebugRequest is one debugger command on the wire (MsgDebug payload).
type DebugRequest struct {
	Seq     int    `json:"seq"`
	Command string `json:"command"`
	// Launch parameters.
	Query       string            `json:"query,omitempty"` // the debug SQL query
	UDF         string            `json:"udf,omitempty"`   // UDF to break inside
	StopOnEntry bool              `json:"stopOnEntry,omitempty"`
	Breakpoints []DebugBreakpoint `json:"breakpoints,omitempty"` // launch/setBreakpoints
	// Eval parameter.
	Expr string `json:"expr,omitempty"`
}

// DebugReply answers one DebugRequest (MsgDebugReply payload). Stop events
// are never carried here — they arrive as MsgDebugEvent pushes.
type DebugReply struct {
	Seq     int    `json:"seq"`
	Success bool   `json:"success"`
	Error   string `json:"error,omitempty"`
	// Inspection results.
	Value  string            `json:"value,omitempty"`
	Vars   map[string]string `json:"vars,omitempty"`
	Frames []DebugFrame      `json:"frames,omitempty"`
	Source []string          `json:"source,omitempty"`
}

// DebugFrame is one stack entry, innermost first.
type DebugFrame struct {
	Func  string `json:"func"`
	Line  int    `json:"line"`
	Depth int    `json:"depth"`
}

// Debug event kinds.
const (
	DebugEventStopped    = "stopped"
	DebugEventTerminated = "terminated"
)

// DebugEventMsg is a server-pushed debug event (MsgDebugEvent payload):
// "stopped" when the debuggee pauses, "terminated" when the debug query
// finishes (Msg carries its status; Err its failure).
type DebugEventMsg struct {
	Kind   string `json:"kind"`
	Reason string `json:"reason,omitempty"`
	Line   int    `json:"line,omitempty"`
	Func   string `json:"func,omitempty"`
	Depth  int    `json:"depth,omitempty"`
	Err    string `json:"err,omitempty"`
	Msg    string `json:"msg,omitempty"`
}

// Event converts the wire form into a debug.Event with the session-level
// semantics RemoteDebugSession mirrors.
func (m *DebugEventMsg) Event() debug.Event {
	ev := debug.Event{
		Reason:   debug.StopReason(m.Reason),
		Line:     m.Line,
		FuncName: m.Func,
		Depth:    m.Depth,
		Terminal: m.Kind == DebugEventTerminated,
	}
	if m.Err != "" {
		ev.Err = core.Errorf(core.KindRuntime, "%s", m.Err)
	}
	return ev
}

// EncodeDebugRequest/-Reply/-Event marshal the JSON payloads; decode
// counterparts validate them. JSON keeps the sub-protocol DAP-shaped and
// forward-extensible without touching the binary framing.

func EncodeDebugRequest(req DebugRequest) []byte { return mustJSON(req) }

func DecodeDebugRequest(payload []byte) (DebugRequest, error) {
	var req DebugRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return req, core.Wrapf(core.KindProtocol, err, "bad debug request: %v", err)
	}
	return req, nil
}

func EncodeDebugReply(rep DebugReply) []byte { return mustJSON(rep) }

func DecodeDebugReply(payload []byte) (DebugReply, error) {
	var rep DebugReply
	if err := json.Unmarshal(payload, &rep); err != nil {
		return rep, core.Wrapf(core.KindProtocol, err, "bad debug reply: %v", err)
	}
	return rep, nil
}

func EncodeDebugEvent(ev DebugEventMsg) []byte { return mustJSON(ev) }

func DecodeDebugEvent(payload []byte) (DebugEventMsg, error) {
	var ev DebugEventMsg
	if err := json.Unmarshal(payload, &ev); err != nil {
		return ev, core.Wrapf(core.KindProtocol, err, "bad debug event: %v", err)
	}
	return ev, nil
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		// The payload structs contain only marshalable fields.
		panic("wire: debug payload marshal: " + err.Error())
	}
	return data
}
