package wire

import (
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
)

// defaultMaxStmtsPerConn bounds a connection's prepared-statement table
// when Server.MaxStmtsPerConn is zero.
const defaultMaxStmtsPerConn = 64

// defaultMaxQueueDepth bounds a connection's pipelined request queue when
// Server.MaxQueueDepth is zero.
const defaultMaxQueueDepth = 256

// pipelineDepth bounds how many requests a connection may have in flight
// while earlier ones execute: the reader keeps pulling frames so a v2
// client can pipeline queries without waiting for responses.
const pipelineDepth = 16

// Server serves one database over TCP to wire clients. The zero value is
// not usable; construct with NewServer.
type Server struct {
	// Database is the database name clients must present (Fig. 2's
	// "database" connection parameter).
	Database string
	// Users maps user name to password.
	Users map[string]string
	// DB is the embedded engine instance.
	DB *engine.DB
	// Logf, when set, receives connection-level log lines.
	Logf func(format string, args ...any)
	// StreamThreshold is the encoded result size (bytes) above which a v2
	// session receives the chunked streaming path instead of one MsgResult.
	// Zero applies the 1 MiB default; negative streams everything.
	StreamThreshold int
	// ChunkBytes is the target encoded size of one streamed chunk; zero
	// applies DefaultChunkBytes.
	ChunkBytes int
	// MaxStmtsPerConn bounds the per-connection prepared-statement table
	// (MsgPrepare beyond the bound is rejected until the client closes
	// statements). Zero applies the 64 default.
	MaxStmtsPerConn int
	// SlowQueryMs, when positive, logs (via Logf) one structured line with
	// the per-stage span breakdown for every query whose wall time meets
	// the threshold.
	SlowQueryMs int
	// MaxConns caps concurrently served connections. Over-limit
	// connections are rejected during the handshake with a retryable
	// overload error; the listener keeps serving existing sessions.
	// Zero means unlimited.
	MaxConns int
	// MaxQueueDepth bounds the per-connection pipelined request queue.
	// Requests beyond the bound are shed: answered in FIFO position with
	// a retryable overload error instead of executing, never silently
	// dropped. Zero applies the 256 default; negative means unbounded.
	MaxQueueDepth int
	// RateLimit, when positive, admits at most this many
	// statement-executing requests per second per session (token bucket,
	// burst RateBurst); excess requests are shed with a retryable
	// overload error.
	RateLimit float64
	// RateBurst is the token-bucket burst for RateLimit; values below 1
	// (including zero) allow a burst of 1.
	RateBurst int
	// QueryTimeout, when positive, bounds each statement's execution wall
	// clock, measured from dequeue. An overrunning statement aborts with
	// a typed cancelled error at the engine's next checkpoint.
	QueryTimeout time.Duration
	// MaxResultBytes, when positive, refuses to ship results whose
	// encoding exceeds it, answering with a typed resource error.
	MaxResultBytes int
	// DrainTimeout, when positive, bounds how long a graceful drain waits
	// for in-flight statements: past the deadline their interrupts fire
	// and they abort with a cancelled error. Zero waits indefinitely.
	DrainTimeout time.Duration

	// metrics is set by EnableObs before Listen; nil disables recording.
	metrics *serverMetrics

	ln     net.Listener
	mu     sync.Mutex
	closed bool
	drain  chan struct{}
	wg     sync.WaitGroup

	// stmtCount tracks live server-side prepared statements across all
	// connections — the observable the leak tests (and operators) watch.
	stmtCount atomic.Int64
	// connCount tracks served connections for the MaxConns admission
	// check (maintained only when MaxConns > 0).
	connCount atomic.Int64
	// queriesShed / connsRejected count load-shedding decisions; exposed
	// as wire_queries_shed_total / wire_conns_rejected_total.
	queriesShed   atomic.Uint64
	connsRejected atomic.Uint64
}

// QueriesShed reports how many pipelined requests were refused by
// admission control (queue bound or rate limit) and answered with a
// retryable overload error.
func (s *Server) QueriesShed() uint64 { return s.queriesShed.Load() }

// ConnsRejected reports how many connections were refused at the
// handshake by the MaxConns cap.
func (s *Server) ConnsRejected() uint64 { return s.connsRejected.Load() }

// OpenStatements reports how many prepared statements are currently live
// across all connections. After every client has disconnected it must be
// zero: each connection's statement table is torn down with the session.
func (s *Server) OpenStatements() int64 { return s.stmtCount.Load() }

// NewServer creates a server for db with a single user account.
func NewServer(database, user, password string, db *engine.DB) *Server {
	return &Server{
		Database: database,
		Users:    map[string]string{user: password},
		DB:       db,
		drain:    make(chan struct{}),
	}
}

// Listen binds addr ("host:port"; ":0" picks a free port) and starts
// accepting connections in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", core.Wrapf(core.KindIO, err, "listen %s: %v", addr, err)
	}
	return s.ServeListener(ln), nil
}

// ServeListener starts accepting connections from a caller-provided
// listener — the seam the fault-injection tests use to interpose a chaos
// listener — and returns its address. Close still tears it down.
func (s *Server) ServeListener(ln net.Listener) string {
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String()
}

// Close stops accepting, asks every connection to drain — in-flight and
// already-pipelined requests finish and their responses are delivered —
// and waits for them to wind down.
func (s *Server) Close() error {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if !wasClosed {
		if s.drain != nil {
			close(s.drain)
		}
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) draining() <-chan struct{} {
	if s.drain == nil {
		// Zero-value construction; never drains early.
		return make(chan struct{})
	}
	return s.drain
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			log.Printf("wire: accept: %v", err)
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// frame is one client request read off the socket.
type frame struct {
	typ     byte
	payload []byte
}

// serverConn is the per-connection serving state: the authenticated engine
// session, the negotiated protocol version, the serialized frame writer,
// the prepared-statement table, and the active remote debug run (if any).
type serverConn struct {
	srv        *Server
	w          *connWriter
	sess       *engine.Conn
	version    byte
	connDone   chan struct{}
	closeOnce  sync.Once
	dr         *debugRun
	queries    *queryQueue
	workerDone chan struct{}

	// gone closes when the client can no longer receive responses (the
	// reader saw a non-MsgClose error) or a drain passed its DrainTimeout
	// — the interrupt signal that aborts this connection's in-flight
	// statements. It is deliberately distinct from connDone, which also
	// closes on clean MsgClose/drain where pipelined statements must
	// still complete and be answered.
	gone     chan struct{}
	goneOnce sync.Once

	// limiter, when non-nil, is the per-session admission rate limiter.
	// Touched only by the serving goroutine.
	limiter *tokenBucket

	// stmts is the per-connection prepared-statement table. It is touched
	// only by the query worker goroutine (prepare/exec/close ride the same
	// FIFO as queries, so responses stay ordered) and by shutdown, which
	// runs strictly after the worker exits.
	stmts    map[uint32]*engine.Stmt
	stmtNext uint32
}

// markGone signals that the client is dead (or abandoned): in-flight and
// queued statements on this connection abort at their next checkpoint.
func (sc *serverConn) markGone() {
	sc.goneOnce.Do(func() { close(sc.gone) })
}

// execIntr is the per-statement interrupt: the connection's client-gone
// signal plus the server's query timeout. Built at dequeue so the
// deadline covers execution, not the time spent queued.
func (sc *serverConn) execIntr() engine.Interrupt {
	intr := engine.Interrupt{Done: sc.gone}
	if qt := sc.srv.QueryTimeout; qt > 0 {
		intr.Deadline = time.Now().Add(qt)
	}
	return intr
}

// tokenBucket is the per-session statement-admission rate limiter.
// Touched only by the connection's serving goroutine, so it needs no
// lock.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b}
}

func (tb *tokenBucket) allow(now time.Time) bool {
	if !tb.last.IsZero() {
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// qitem is one queryQueue entry: a real request, or a run of shed
// (admission-refused) requests that the worker answers with retryable
// overload errors. Coalescing consecutive sheds into one counter keeps
// the queue's memory bounded no matter how fast a client floods it,
// while each shed response still goes out in its FIFO position.
type qitem struct {
	fr   frame
	shed int // > 0: this entry stands for that many shed requests
}

// queryQueue is the FIFO of pending statement-executing requests
// (MsgQuery, MsgPrepare, MsgExecStmt, MsgCloseStmt) feeding the
// connection's query worker. push never blocks — requests beyond the
// admission bound are recorded as shed markers instead — which matters
// because a paused debuggee holds the engine lock and the resume command
// that releases it arrives on the same frame loop.
type queryQueue struct {
	mu      sync.Mutex
	items   []qitem
	pending int // admitted (non-shed) requests currently queued
	closed  bool
	wake    chan struct{}
	// depth, when non-nil, mirrors the admitted-request count into the
	// wire_query_queue_depth gauge (shared across connections).
	depth *obs.Gauge
}

func newQueryQueue() *queryQueue {
	return &queryQueue{wake: make(chan struct{}, 1)}
}

// push admits a request unless the queue already holds limit admitted
// requests (limit <= 0 means unbounded), reporting whether it was
// admitted. Refused requests become shed markers via shedLocked.
func (q *queryQueue) push(fr frame, limit int) bool {
	q.mu.Lock()
	admitted := limit <= 0 || q.pending < limit
	if admitted {
		q.items = append(q.items, qitem{fr: fr})
		q.pending++
	} else {
		q.shedLocked()
	}
	q.mu.Unlock()
	if admitted && q.depth != nil {
		q.depth.Add(1)
	}
	q.wakeUp()
	return admitted
}

// shed records one refused request (e.g. over the rate limit) in FIFO
// position.
func (q *queryQueue) shed() {
	q.mu.Lock()
	q.shedLocked()
	q.mu.Unlock()
	q.wakeUp()
}

func (q *queryQueue) shedLocked() {
	if n := len(q.items); n > 0 && q.items[n-1].shed > 0 {
		q.items[n-1].shed++
	} else {
		q.items = append(q.items, qitem{shed: 1})
	}
}

func (q *queryQueue) wakeUp() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// pop blocks for the next request; shed reports a refused request to be
// answered with an overload error; ok is false once the queue is closed
// and drained.
func (q *queryQueue) pop() (fr frame, shed, ok bool) {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			it := &q.items[0]
			if it.shed > 0 {
				it.shed--
				if it.shed == 0 {
					q.items = q.items[1:]
				}
				q.mu.Unlock()
				return frame{}, true, true
			}
			fr = it.fr
			q.items = q.items[1:]
			q.pending--
			q.mu.Unlock()
			if q.depth != nil {
				q.depth.Add(-1)
			}
			return fr, false, true
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return frame{}, false, false
		}
		<-q.wake
	}
}

// close marks the queue finished; pending items still drain. Idempotent.
func (q *queryQueue) close() {
	q.mu.Lock()
	wasClosed := q.closed
	q.closed = true
	q.mu.Unlock()
	if !wasClosed {
		select {
		case q.wake <- struct{}{}:
		default:
		}
	}
}

// shutdown kills any active debuggee (closing connDone) and flushes the
// query worker so every accepted query gets its response before the
// connection says goodbye, then tears down the prepared-statement table.
// Safe to call more than once (always from the serving goroutine).
func (sc *serverConn) shutdown() {
	sc.closeOnce.Do(func() { close(sc.connDone) })
	sc.queries.close()
	<-sc.workerDone
	if sc.stmts != nil {
		sc.srv.stmtCount.Add(-int64(len(sc.stmts)))
		sc.stmts = nil
	}
}

// queryWorker executes queued requests — queries and the prepared-statement
// verbs — in FIFO order, writing each response through the shared
// connWriter. Running them off the frame loop keeps debug control (and
// ping/close) responsive while a statement — including a debug query paused
// at a breakpoint — holds the engine lock.
func (sc *serverConn) queryWorker() {
	defer close(sc.workerDone)
	for {
		fr, shed, ok := sc.queries.pop()
		if !ok {
			return
		}
		if shed {
			sc.srv.queriesShed.Add(1)
			_ = sc.w.writeFrame(MsgErr, EncodeError(core.KindOverload,
				"server overloaded: request shed before execution; safe to retry"))
			continue
		}
		//wireswitch:dispatch client-to-server
		//wireswitch:ignore MsgAuth MsgDebug MsgPing MsgClose -- handled on the frame loop or during the handshake; never queued
		switch fr.typ {
		case MsgQuery:
			// On a failed write the client is gone; runQuery swallows write
			// errors so draining never blocks (subsequent writes fail fast).
			sc.runQuery(fr)
		case MsgPrepare:
			sc.handlePrepare(fr.payload)
		case MsgExecStmt:
			sc.handleExecStmt(fr.payload)
		case MsgCloseStmt:
			sc.handleCloseStmt(fr.payload)
		}
	}
}

// handlePrepare compiles the SQL into the connection's statement table and
// answers with the assigned id plus the bind-parameter count.
func (sc *serverConn) handlePrepare(payload []byte) {
	limit := sc.srv.MaxStmtsPerConn
	if limit <= 0 {
		limit = defaultMaxStmtsPerConn
	}
	if len(sc.stmts) >= limit {
		if m := sc.srv.metrics; m != nil {
			m.stmtRejects.Inc()
		}
		_ = sc.w.writeFrame(MsgErr, EncodeError(core.KindConstraint,
			"prepared-statement table is full; close statements first"))
		return
	}
	stmt, err := sc.sess.Prepare(string(payload))
	if err != nil {
		_ = sc.w.writeFrame(MsgErr, EncodeError(core.KindOf(err), errString(err)))
		return
	}
	if sc.stmts == nil {
		sc.stmts = map[uint32]*engine.Stmt{}
	}
	sc.stmtNext++
	id := sc.stmtNext
	sc.stmts[id] = stmt
	sc.srv.stmtCount.Add(1)
	_ = sc.w.writeFrame(MsgPrepareOK, EncodePrepareOK(id, stmt.NumParams()))
}

// handleExecStmt executes a prepared statement with one set of bind
// arguments, responding exactly like a query (one-shot result or chunked
// stream).
func (sc *serverConn) handleExecStmt(payload []byte) {
	id, cols, err := DecodeExecStmt(payload)
	if err != nil {
		_ = sc.w.writeFrame(MsgErr, EncodeError(core.KindOf(err), errString(err)))
		return
	}
	stmt, ok := sc.stmts[id]
	if !ok {
		_ = sc.w.writeFrame(MsgErr, EncodeError(core.KindName,
			"unknown prepared-statement id"))
		return
	}
	args := make([]any, len(cols))
	for i, col := range cols {
		args[i] = col.Value(0)
	}
	sc.runExecStmt(stmt, args)
}

// handleCloseStmt discards a prepared statement and acks.
func (sc *serverConn) handleCloseStmt(payload []byte) {
	id, err := DecodeCloseStmt(payload)
	if err != nil {
		_ = sc.w.writeFrame(MsgErr, EncodeError(core.KindOf(err), errString(err)))
		return
	}
	if _, ok := sc.stmts[id]; !ok {
		_ = sc.w.writeFrame(MsgErr, EncodeError(core.KindName,
			"unknown prepared-statement id"))
		return
	}
	delete(sc.stmts, id)
	sc.srv.stmtCount.Add(-1)
	_ = sc.w.writeFrame(MsgCloseStmtOK, nil)
}

// serveConn speaks the protocol with one client: auth handshake, then a
// pipelined request loop until MsgClose, disconnect, or server drain. A
// reader goroutine keeps pulling frames while the main loop executes, so
// clients may pipeline requests; responses are written in order. Debug
// events are pushed by the debug controller through the shared connWriter,
// interleaving with (but never corrupting) response frames.
func (s *Server) serveConn(nc net.Conn) {
	if max := s.MaxConns; max > 0 {
		if int(s.connCount.Add(1)) > max {
			s.connCount.Add(-1)
			s.rejectConn(nc)
			return
		}
		defer s.connCount.Add(-1)
	}
	defer nc.Close()
	m := s.metrics
	if m != nil {
		nc = countingConn{Conn: nc, in: m.bytesIn, out: m.bytesOut}
	}
	sess, version, err := s.handshake(nc)
	if err != nil {
		s.logf("handshake failed from %s: %v", nc.RemoteAddr(), err)
		return
	}
	if m != nil {
		m.countMsg(MsgAuth)
		m.connsOpened.Inc()
		m.connsActive.Add(1)
		defer m.connsActive.Add(-1)
	}
	s.logf("session opened: user=%s proto=v%d from %s", sess.User, version, nc.RemoteAddr())

	reqs := make(chan frame, pipelineDepth)
	sc := &serverConn{
		srv:        s,
		w:          &connWriter{nc: nc},
		sess:       sess,
		version:    version,
		connDone:   make(chan struct{}),
		gone:       make(chan struct{}),
		queries:    newQueryQueue(),
		workerDone: make(chan struct{}),
	}
	if s.RateLimit > 0 {
		sc.limiter = newTokenBucket(s.RateLimit, s.RateBurst)
	}
	if m != nil {
		sc.queries.depth = m.queueDepth
	}
	defer sc.shutdown()
	go sc.queryWorker()
	go func() {
		defer close(reqs)
		for {
			typ, payload, err := ReadFrame(nc)
			if err != nil {
				// Any read failure — EOF included — means the client can no
				// longer deliver requests and (absent a clean MsgClose) is
				// not waiting for responses: fire the interrupt so in-flight
				// statements abort instead of running to completion for a
				// dead peer.
				sc.markGone()
				if err != io.EOF {
					s.logf("read from %s: %v", nc.RemoteAddr(), err)
				}
				return
			}
			m.countMsg(typ)
			select {
			case reqs <- frame{typ, payload}:
				if typ == MsgClose {
					return
				}
			case <-sc.connDone:
				return
			}
		}
	}()

	for {
		select {
		case fr, ok := <-reqs:
			if !ok {
				return
			}
			if !sc.handleFrame(fr) {
				return
			}
		case <-s.draining():
			// Graceful drain: answer everything already pipelined, say
			// goodbye, hang up. The deferred nc.Close unblocks the reader;
			// closing connDone kills any paused debuggee. DrainTimeout, when
			// set, bounds the flush: past the deadline the connection's
			// interrupt fires and stuck statements abort with a typed
			// cancelled error instead of stalling Close.
			var hardStop *time.Timer
			if s.DrainTimeout > 0 {
				hardStop = time.AfterFunc(s.DrainTimeout, sc.markGone)
			}
			for {
				select {
				case fr, ok := <-reqs:
					if !ok {
						if hardStop != nil {
							hardStop.Stop()
						}
						return
					}
					if !sc.handleFrame(fr) {
						if hardStop != nil {
							hardStop.Stop()
						}
						return
					}
				default:
					// Kill any paused debuggee and flush the query worker so
					// every accepted query is answered before the goodbye.
					sc.shutdown()
					if hardStop != nil {
						hardStop.Stop()
					}
					_ = sc.w.writeFrame(MsgGoodbye, nil)
					s.logf("session drained: user=%s from %s", sess.User, nc.RemoteAddr())
					return
				}
			}
		}
	}
}

// rejectConn refuses an over-limit connection cleanly: read the client's
// opening auth frame (so the peer is parked reading, not mid-write),
// answer with a retryable overload error, and hang up. Existing sessions
// are untouched.
func (s *Server) rejectConn(nc net.Conn) {
	defer nc.Close()
	s.connsRejected.Add(1)
	_ = nc.SetDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := ReadFrame(nc); err != nil {
		return
	}
	_ = WriteFrame(nc, MsgErr, EncodeError(core.KindOverload,
		"server connection limit reached; safe to retry"))
	s.logf("connection rejected (over MaxConns=%d) from %s", s.MaxConns, nc.RemoteAddr())
}

// handleFrame processes one request, reporting whether the connection
// should keep serving. Queries are queued to the per-connection worker (in
// FIFO order, so response ordering is preserved) rather than executed here:
// the frame loop must stay responsive for debug control even while a
// statement — e.g. a debug query paused at a breakpoint — holds the engine
// lock.
func (sc *serverConn) handleFrame(fr frame) bool {
	//wireswitch:dispatch client-to-server
	//wireswitch:ignore MsgAuth -- only legal during the handshake, before the frame loop starts
	switch fr.typ {
	case MsgQuery:
		sc.admit(fr)
		return true
	case MsgPrepare, MsgExecStmt, MsgCloseStmt:
		if sc.version < ProtoV2 {
			sc.shutdown()
			_ = sc.w.writeFrame(MsgErr, EncodeError(core.KindProtocol,
				"prepared statements require protocol v2"))
			return false
		}
		sc.admit(fr)
		return true
	case MsgDebug:
		return sc.handleDebug(fr.payload)
	case MsgPing:
		return sc.w.writeFrame(MsgPong, nil) == nil
	case MsgClose:
		sc.shutdown() // flush pending query responses first
		_ = sc.w.writeFrame(MsgGoodbye, nil)
		return false
	default:
		sc.shutdown()
		_ = sc.w.writeFrame(MsgErr, EncodeError(core.KindProtocol, "unexpected message type"))
		return false
	}
}

// admit routes one statement-executing request through admission
// control: first the per-session rate limit, then the bounded queue.
// Refused requests are shed — answered in FIFO position with a retryable
// overload error — never dropped silently.
func (sc *serverConn) admit(fr frame) {
	if sc.limiter != nil && !sc.limiter.allow(time.Now()) {
		sc.queries.shed()
		return
	}
	limit := sc.srv.MaxQueueDepth
	if limit == 0 {
		limit = defaultMaxQueueDepth
	}
	sc.queries.push(fr, limit)
}

// writeResult ships a statement result: small results (and every v1
// session) get the one-shot MsgResult; v2 results whose encoding crosses
// the stream threshold travel as a MsgResultChunk/MsgResultEnd stream and
// are therefore not bounded by the frame cap. The whole response is written
// under the connection's write lock so a concurrent debug event push can
// never split a result stream mid-frame.
func (sc *serverConn) writeResult(res *engine.Result) error {
	s := sc.srv
	sc.w.mu.Lock()
	defer sc.w.mu.Unlock()
	nc := sc.w.nc
	if max := s.MaxResultBytes; max > 0 && res.Table != nil && EncodedTableSize(res.Table) > max {
		//lockblock:ok the writer mutex exists to serialize result frames against debug-event frames
		return WriteFrame(nc, MsgErr, EncodeError(core.KindResource,
			"result exceeds the per-query byte budget; add a LIMIT or raise the budget"))
	}
	if sc.version >= ProtoV2 && res.Table != nil {
		threshold := s.StreamThreshold
		if threshold == 0 {
			threshold = 1 << 20
		}
		// A threshold at or above the frame cap would route unframeable
		// results onto the one-shot path; anything near the cap must stream.
		if threshold > maxFrame/2 {
			threshold = maxFrame / 2
		}
		if threshold < 0 || EncodedTableSize(res.Table) > threshold {
			//lockblock:ok the writer mutex exists to serialize result frames against debug-event frames
			return WriteResultStream(nc, res.Msg, res.Table, s.ChunkBytes)
		}
	}
	payload := EncodeResult(res.Msg, res.Table)
	if len(payload)+1 > maxFrame {
		// A v1 session asked for more than one frame can carry: report it
		// instead of killing the connection with an unframeable write.
		//lockblock:ok the writer mutex exists to serialize result frames against debug-event frames
		return WriteFrame(nc, MsgErr, EncodeError(core.KindProtocol,
			"result set exceeds the 64 MiB frame cap; reconnect with protocol v2 streaming"))
	}
	//lockblock:ok the writer mutex exists to serialize result frames against debug-event frames
	return WriteFrame(nc, MsgResult, payload)
}

func errString(err error) string {
	var ce *core.Error
	if errors.As(err, &ce) {
		return ce.Msg
	}
	return err.Error()
}

func (s *Server) handshake(nc net.Conn) (*engine.Conn, byte, error) {
	typ, payload, err := ReadFrame(nc)
	if err != nil {
		return nil, 0, err
	}
	if typ != MsgAuth {
		_ = WriteFrame(nc, MsgErr, EncodeError(core.KindProtocol, "expected auth message"))
		return nil, 0, core.Errorf(core.KindProtocol, "expected auth, got type %d", typ)
	}
	user, password, database, version, err := DecodeAuth(payload)
	if err != nil {
		return nil, 0, err
	}
	if version > ProtoV2 {
		version = ProtoV2 // serve future clients at our highest version
	}
	if database != s.Database {
		_ = WriteFrame(nc, MsgErr, EncodeError(core.KindAuth, "unknown database "+database))
		return nil, 0, core.Errorf(core.KindAuth, "unknown database %q", database)
	}
	want, ok := s.Users[user]
	if !ok || want != password {
		_ = WriteFrame(nc, MsgErr, EncodeError(core.KindAuth, "invalid credentials"))
		return nil, 0, core.Errorf(core.KindAuth, "invalid credentials for %q", user)
	}
	if err := WriteFrame(nc, MsgAuthOK, EncodeAuthOK("monetlite/2.0", version)); err != nil {
		return nil, 0, err
	}
	return &engine.Conn{DB: s.DB, User: user, Password: password}, version, nil
}
