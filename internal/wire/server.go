package wire

import (
	"errors"
	"io"
	"log"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
)

// Server serves one database over TCP to wire clients. The zero value is
// not usable; construct with NewServer.
type Server struct {
	// Database is the database name clients must present (Fig. 2's
	// "database" connection parameter).
	Database string
	// Users maps user name to password.
	Users map[string]string
	// DB is the embedded engine instance.
	DB *engine.DB
	// Logf, when set, receives connection-level log lines.
	Logf func(format string, args ...any)

	ln     net.Listener
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewServer creates a server for db with a single user account.
func NewServer(database, user, password string, db *engine.DB) *Server {
	return &Server{
		Database: database,
		Users:    map[string]string{user: password},
		DB:       db,
	}
}

// Listen binds addr ("host:port"; ":0" picks a free port) and starts
// accepting connections in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", core.Errorf(core.KindIO, "listen %s: %v", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops accepting and waits for active connections to finish their
// current request.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			log.Printf("wire: accept: %v", err)
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn speaks the protocol with one client: auth handshake, then a
// query loop until MsgClose or disconnect.
func (s *Server) serveConn(nc net.Conn) {
	defer nc.Close()
	sess, err := s.handshake(nc)
	if err != nil {
		s.logf("handshake failed from %s: %v", nc.RemoteAddr(), err)
		return
	}
	s.logf("session opened: user=%s from %s", sess.User, nc.RemoteAddr())
	for {
		typ, payload, err := ReadFrame(nc)
		if err != nil {
			if err != io.EOF {
				s.logf("read: %v", err)
			}
			return
		}
		switch typ {
		case MsgQuery:
			res, err := sess.Exec(string(payload))
			if err != nil {
				if werr := WriteFrame(nc, MsgErr, EncodeError(core.KindOf(err), errString(err))); werr != nil {
					return
				}
				continue
			}
			if err := WriteFrame(nc, MsgResult, EncodeResult(res.Msg, res.Table)); err != nil {
				return
			}
		case MsgClose:
			_ = WriteFrame(nc, MsgGoodbye, nil)
			return
		default:
			_ = WriteFrame(nc, MsgErr, EncodeError(core.KindProtocol, "unexpected message type"))
			return
		}
	}
}

func errString(err error) string {
	var ce *core.Error
	if errors.As(err, &ce) {
		return ce.Msg
	}
	return err.Error()
}

func (s *Server) handshake(nc net.Conn) (*engine.Conn, error) {
	typ, payload, err := ReadFrame(nc)
	if err != nil {
		return nil, err
	}
	if typ != MsgAuth {
		_ = WriteFrame(nc, MsgErr, EncodeError(core.KindProtocol, "expected auth message"))
		return nil, core.Errorf(core.KindProtocol, "expected auth, got type %d", typ)
	}
	user, password, database, err := DecodeAuth(payload)
	if err != nil {
		return nil, err
	}
	if database != s.Database {
		_ = WriteFrame(nc, MsgErr, EncodeError(core.KindAuth, "unknown database "+database))
		return nil, core.Errorf(core.KindAuth, "unknown database %q", database)
	}
	want, ok := s.Users[user]
	if !ok || want != password {
		_ = WriteFrame(nc, MsgErr, EncodeError(core.KindAuth, "invalid credentials"))
		return nil, core.Errorf(core.KindAuth, "invalid credentials for %q", user)
	}
	if err := WriteFrame(nc, MsgAuthOK, appendString(nil, "monetlite/1.0")); err != nil {
		return nil, err
	}
	return &engine.Conn{DB: s.DB, User: user, Password: password}, nil
}
