package wire

import (
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
)

// ConnParams are the five client connection parameters of the devUDF
// settings window (paper Fig. 2).
type ConnParams struct {
	Host     string
	Port     int
	Database string
	User     string
	Password string
}

// Addr renders host:port.
func (p ConnParams) Addr() string {
	host := p.Host
	if host == "" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, itoa(p.Port))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// Client is a connected, authenticated database session.
type Client struct {
	params ConnParams
	nc     net.Conn
	// BytesRead counts payload bytes received, for the transfer benches.
	BytesRead int64
	// BytesWritten counts payload bytes sent.
	BytesWritten int64
}

// Dial connects and authenticates.
func Dial(p ConnParams) (*Client, error) {
	nc, err := net.DialTimeout("tcp", p.Addr(), 10*time.Second)
	if err != nil {
		return nil, core.Errorf(core.KindIO, "connect %s: %v", p.Addr(), err)
	}
	c := &Client{params: p, nc: nc}
	if err := c.send(MsgAuth, EncodeAuth(p.User, p.Password, p.Database)); err != nil {
		nc.Close()
		return nil, err
	}
	typ, payload, err := c.recv()
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch typ {
	case MsgAuthOK:
		return c, nil
	case MsgErr:
		nc.Close()
		return nil, DecodeError(payload)
	default:
		nc.Close()
		return nil, core.Errorf(core.KindProtocol, "unexpected handshake reply %d", typ)
	}
}

// Params returns the connection parameters this client was dialed with.
func (c *Client) Params() ConnParams { return c.params }

func (c *Client) send(typ byte, payload []byte) error {
	c.BytesWritten += int64(len(payload)) + 5
	return WriteFrame(c.nc, typ, payload)
}

func (c *Client) recv() (byte, []byte, error) {
	typ, payload, err := ReadFrame(c.nc)
	if err != nil {
		return 0, nil, err
	}
	c.BytesRead += int64(len(payload)) + 5
	return typ, payload, nil
}

// Query executes SQL on the server and returns the status message and the
// result table (nil for statements without one).
func (c *Client) Query(sql string) (string, *storage.Table, error) {
	if err := c.send(MsgQuery, []byte(sql)); err != nil {
		return "", nil, err
	}
	typ, payload, err := c.recv()
	if err != nil {
		return "", nil, err
	}
	switch typ {
	case MsgResult:
		return DecodeResult(payload)
	case MsgErr:
		return "", nil, DecodeError(payload)
	default:
		return "", nil, core.Errorf(core.KindProtocol, "unexpected reply type %d", typ)
	}
}

// Close says goodbye and closes the socket.
func (c *Client) Close() error {
	_ = c.send(MsgClose, nil)
	// best-effort read of the goodbye
	_ = c.nc.SetReadDeadline(time.Now().Add(time.Second))
	_, _, _ = ReadFrame(c.nc)
	return c.nc.Close()
}
