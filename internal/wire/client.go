package wire

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
)

// ConnParams are the five client connection parameters of the devUDF
// settings window (paper Fig. 2).
type ConnParams struct {
	Host     string
	Port     int
	Database string
	User     string
	Password string
}

// Addr renders host:port.
func (p ConnParams) Addr() string {
	host := p.Host
	if host == "" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, itoa(p.Port))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// Client is a connected, authenticated database session. A Client is not
// safe for concurrent use; Pool hands out Clients one checkout at a time.
type Client struct {
	params  ConnParams
	nc      net.Conn
	cfg     dialConfig
	version byte        // negotiated protocol version
	broken  atomic.Bool // protocol desync (cancellation, IO error): do not reuse
	// stmtCloses queues deferred server-side statement closes (see
	// deferCloseStmt); guarded by stmtCloseMu because PoolStmt.Close may
	// append while another goroutine holds the connection.
	stmtCloseMu sync.Mutex
	stmtCloses  []uint32
	// BytesRead counts payload bytes received, for the transfer benches.
	BytesRead int64
	// BytesWritten counts payload bytes sent.
	BytesWritten int64
	// poolCountedRead/Written are the Pool's accounting high-water marks.
	poolCountedRead    int64
	poolCountedWritten int64
}

// DialContext connects and authenticates, negotiating the protocol version.
// The context governs the TCP connect and the handshake; cancelling it
// afterwards has no effect on the connection.
func DialContext(ctx context.Context, p ConnParams, opts ...DialOption) (*Client, error) {
	if ctx == nil {
		ctx = context.Background() //ctxflow:edge nil-ctx fallback of the exported dial API
	}
	cfg := defaultDialConfig()
	for _, o := range opts {
		o(&cfg)
	}
	d := net.Dialer{Timeout: cfg.dialTimeout, KeepAlive: cfg.keepAlive}
	nc, err := d.DialContext(ctx, "tcp", p.Addr())
	if err != nil {
		return nil, core.Wrapf(core.KindIO, err, "connect %s: %v", p.Addr(), err)
	}
	c := &Client{params: p, nc: nc, cfg: cfg, version: ProtoV1}
	if err := c.handshake(ctx); err != nil {
		nc.Close()
		return nil, err
	}
	c.logf("wire: connected to %s (proto v%d)", p.Addr(), c.version)
	return c, nil
}

// Dial connects and authenticates with default options.
//
// Deprecated: use DialContext, which supports cancellation and options.
func Dial(p ConnParams) (*Client, error) {
	return DialContext(context.Background(), p) //ctxflow:edge deprecated ctx-less entry point
}

func (c *Client) handshake(ctx context.Context) error {
	stop := c.watch(ctx)
	err := c.handshakeLocked()
	if werr := stop(); werr != nil {
		return werr
	}
	return err
}

func (c *Client) handshakeLocked() error {
	p := c.params
	if err := c.send(MsgAuth, EncodeAuth(p.User, p.Password, p.Database, c.cfg.version)); err != nil {
		return err
	}
	typ, payload, err := c.recv()
	if err != nil {
		return err
	}
	switch typ {
	case MsgAuthOK:
		_, ver, err := DecodeAuthOK(payload)
		if err != nil {
			return err
		}
		if ver > c.cfg.version {
			ver = c.cfg.version
		}
		c.version = ver
		return nil
	case MsgErr:
		return DecodeError(payload)
	default:
		return core.Errorf(core.KindProtocol, "unexpected handshake reply %d", typ)
	}
}

// Params returns the connection parameters this client was dialed with.
func (c *Client) Params() ConnParams { return c.params }

// ProtoVersion returns the negotiated protocol version.
func (c *Client) ProtoVersion() byte { return c.version }

// Broken reports whether the connection is protocol-desynced (a cancelled
// in-flight operation, an IO error) and must not be reused. Pool discards
// broken connections at checkin.
func (c *Client) Broken() bool { return c.broken.Load() }

func (c *Client) logf(format string, args ...any) {
	if c.cfg.logf != nil {
		c.cfg.logf(format, args...)
	}
}

// watch arms a watchdog that unblocks pending socket IO when ctx is
// cancelled, by forcing an immediate deadline. The returned stop function
// disarms it and reports the context error, if it fired.
func (c *Client) watch(ctx context.Context) (stop func() error) {
	if ctx == nil || ctx.Done() == nil {
		return func() error { return nil }
	}
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		select {
		case <-ctx.Done():
			// The connection is now mid-protocol; poison it so a pool
			// never hands it out again.
			c.broken.Store(true)
			_ = c.nc.SetDeadline(time.Now())
		case <-stopCh:
		}
	}()
	return func() error {
		close(stopCh)
		<-doneCh
		if err := ctx.Err(); err != nil {
			// The caller's context aborted the operation: surface it as a
			// cancellation, not a transport failure, so core.IsCancelled
			// recognizes it and the retry path does not re-run a
			// deliberately abandoned operation.
			return core.Wrapf(core.KindCancelled, err, "operation aborted: %v", err)
		}
		return nil
	}
}

func (c *Client) send(typ byte, payload []byte) error {
	if c.cfg.writeTimeout > 0 {
		_ = c.nc.SetWriteDeadline(time.Now().Add(c.cfg.writeTimeout))
	}
	c.BytesWritten += int64(len(payload)) + 5
	if err := WriteFrame(c.nc, typ, payload); err != nil {
		c.broken.Store(true)
		return err
	}
	return nil
}

func (c *Client) recv() (byte, []byte, error) {
	if c.cfg.readTimeout > 0 {
		_ = c.nc.SetReadDeadline(time.Now().Add(c.cfg.readTimeout))
	}
	typ, payload, err := ReadFrame(c.nc)
	if err != nil {
		c.broken.Store(true)
		return 0, nil, err
	}
	c.BytesRead += int64(len(payload)) + 5
	return typ, payload, nil
}

// Query executes SQL on the server and returns the status message and the
// fully materialized result table (nil for statements without one). Large
// v2 result sets arrive chunked and are reassembled here; use QueryStream
// to consume them incrementally instead.
func (c *Client) Query(ctx context.Context, sql string) (string, *storage.Table, error) {
	rows, err := c.QueryStream(ctx, sql)
	if err != nil {
		return "", nil, err
	}
	return rows.ReadAll()
}

// Exec executes SQL for its side effects and returns the status message,
// discarding result rows batch-by-batch so peak memory stays at one chunk.
func (c *Client) Exec(ctx context.Context, sql string) (string, error) {
	rows, err := c.QueryStream(ctx, sql)
	if err != nil {
		return "", err
	}
	for rows.Next() {
	}
	if err := rows.Close(); err != nil {
		return "", err
	}
	return rows.Msg(), nil
}

// QueryStream executes SQL and returns a Rows iterator over the result
// batches. The context governs the whole stream: cancelling it aborts the
// iteration and poisons the connection. Rows must be fully consumed or
// Closed before the next operation on this client.
func (c *Client) QueryStream(ctx context.Context, sql string) (*Rows, error) {
	if c.broken.Load() {
		return nil, core.Errorf(core.KindIO, "connection is broken")
	}
	stop := c.watch(ctx)
	rows, err := c.queryStreamLocked(ctx, sql)
	if err != nil {
		if werr := stop(); werr != nil {
			return nil, werr
		}
		return nil, err
	}
	rows.stop = stop
	return rows, nil
}

// queryStreamLocked sends the query and consumes the first response frame,
// classifying the reply into a one-shot result or a chunk stream.
func (c *Client) queryStreamLocked(ctx context.Context, sql string) (*Rows, error) {
	if _, err := c.flushStmtCloses(0); err != nil {
		return nil, err
	}
	if err := c.send(MsgQuery, []byte(sql)); err != nil {
		return nil, err
	}
	return c.readQueryResponse()
}

// readQueryResponse consumes the first response frame of a query-shaped
// request (MsgQuery or MsgExecStmt), classifying the reply into a one-shot
// result or a chunk stream.
func (c *Client) readQueryResponse() (*Rows, error) {
	typ, payload, err := c.recv()
	if err != nil {
		return nil, err
	}
	//wireswitch:ignore first-frame matcher for one query response, not a dispatch point; unexpected frames poison the connection below
	switch typ {
	case MsgResult:
		msg, t, err := DecodeResult(payload)
		if err != nil {
			c.broken.Store(true)
			return nil, err
		}
		return &Rows{c: c, msg: msg, pending: t, finished: true}, nil
	case MsgResultChunk:
		t, err := DecodeResultChunk(payload)
		if err != nil {
			c.broken.Store(true)
			return nil, err
		}
		return &Rows{c: c, pending: t, streaming: true}, nil
	case MsgResultEnd:
		msg, _, err := DecodeResultEnd(payload)
		if err != nil {
			c.broken.Store(true)
			return nil, err
		}
		return &Rows{c: c, msg: msg, streaming: true, finished: true}, nil
	case MsgErr:
		return nil, DecodeError(payload)
	default:
		c.broken.Store(true)
		return nil, core.Errorf(core.KindProtocol, "unexpected reply type %d", typ)
	}
}

// Ping round-trips a liveness probe (v2 sessions; v1 falls back to a cheap
// no-op query). The pool uses it to health-check idle connections.
func (c *Client) Ping(ctx context.Context) error {
	if c.broken.Load() {
		return core.Errorf(core.KindIO, "connection is broken")
	}
	if c.version < ProtoV2 {
		_, err := c.Exec(ctx, "SELECT 1 AS ping")
		return err
	}
	stop := c.watch(ctx)
	err := c.pingLocked()
	if werr := stop(); werr != nil {
		return werr
	}
	return err
}

func (c *Client) pingLocked() error {
	if _, err := c.flushStmtCloses(0); err != nil {
		return err
	}
	if err := c.send(MsgPing, nil); err != nil {
		return err
	}
	typ, payload, err := c.recv()
	if err != nil {
		return err
	}
	switch typ {
	case MsgPong:
		return nil
	case MsgErr:
		return DecodeError(payload)
	default:
		c.broken.Store(true)
		return core.Errorf(core.KindProtocol, "unexpected ping reply %d", typ)
	}
}

// Close says goodbye and closes the socket.
func (c *Client) Close() error {
	if !c.broken.Load() {
		_ = c.send(MsgClose, nil)
		// best-effort read of the goodbye
		_ = c.nc.SetReadDeadline(time.Now().Add(time.Second))
		_, _, _ = ReadFrame(c.nc)
	}
	c.broken.Store(true)
	return c.nc.Close()
}
