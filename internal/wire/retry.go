package wire

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// RetryPolicy configures a Pool's client-side resilience for idempotent
// operations: jittered exponential backoff on failures the server is
// known not to have executed — transient dial/handshake errors and
// retryable overload sheds — plus a small circuit breaker per endpoint
// that fails checkouts fast while the endpoint is down. A mid-operation
// transport failure is never retried: the statement may have executed.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation (first
	// attempt included). Values below 2 disable retry (the breaker, when
	// enabled, still applies).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it. Zero applies 10ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Zero applies 1s.
	MaxBackoff time.Duration
	// BreakerThreshold is how many consecutive dial/handshake failures
	// open the breaker. Zero applies 5; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails checkouts fast
	// before admitting a single probe dial. Zero applies 1s.
	BreakerCooldown time.Duration
}

// EnableRetry installs the policy on the pool. Call before the first
// Get: the serving goroutines read the policy without synchronization.
func (p *Pool) EnableRetry(rp RetryPolicy) {
	if rp.BaseBackoff <= 0 {
		rp.BaseBackoff = 10 * time.Millisecond
	}
	if rp.MaxBackoff <= 0 {
		rp.MaxBackoff = time.Second
	}
	p.retry = &rp
	if rp.BreakerThreshold >= 0 {
		threshold := rp.BreakerThreshold
		if threshold == 0 {
			threshold = 5
		}
		cooldown := rp.BreakerCooldown
		if cooldown <= 0 {
			cooldown = time.Second
		}
		p.br = &breaker{threshold: threshold, cooldown: cooldown}
	}
}

// withConnRetry runs one checkout-plus-operation under the pool's retry
// policy. op owns the connection it receives (it must Put it back or
// arrange a deferred release). Checkout failures retry on transient
// transport and overload errors; op failures retry only when
// core.Retryable reports the server never executed the request.
func (p *Pool) withConnRetry(ctx context.Context, op func(c *Client) error) error {
	attempts := 1
	if p.retry != nil && p.retry.MaxAttempts > 1 {
		attempts = p.retry.MaxAttempts
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			p.retries.Add(1)
			if serr := p.sleepBackoff(ctx, i-1); serr != nil {
				return err // the last real failure, not the bare ctx error
			}
		}
		var c *Client
		c, err = p.get(ctx)
		if err != nil {
			if !p.canRetryDial(ctx, err) {
				return err
			}
			continue
		}
		err = op(c)
		if err == nil {
			return nil
		}
		if !core.Retryable(err) || ctx.Err() != nil {
			return err
		}
	}
	return err
}

// canRetryDial classifies a checkout failure: dial and handshake happen
// strictly before any statement, so transport (KindIO) and overload
// (KindOverload — a MaxConns rejection or an open breaker) failures are
// safe to retry, unless the caller's context is done or the pool closed.
func (p *Pool) canRetryDial(ctx context.Context, err error) bool {
	if ctx.Err() != nil || p.isClosed() {
		return false
	}
	switch core.KindOf(err) {
	case core.KindIO, core.KindOverload:
		return true
	}
	return false
}

// sleepBackoff waits out retry n's backoff: exponential growth from
// BaseBackoff capped at MaxBackoff, with equal jitter (half fixed, half
// random) so synchronized clients do not re-stampede a recovering
// server.
func (p *Pool) sleepBackoff(ctx context.Context, n int) error {
	rp := p.retry
	if n > 20 {
		n = 20 // past this the shift saturates MaxBackoff anyway
	}
	d := rp.BaseBackoff << uint(n)
	if d <= 0 || d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// breaker is a per-endpoint circuit breaker over dial outcomes. Closed
// until threshold consecutive failures; then open for cooldown, failing
// checkouts fast without touching the network; then half-open, admitting
// one probe dial whose outcome closes or re-opens it.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	fails     int
	openUntil time.Time
	probing   bool

	opens     atomic.Int64
	fastFails atomic.Int64
}

// allow reports whether a dial may proceed now. A refusal is a fast
// fail; an admission while open is the half-open probe.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	if now.Before(b.openUntil) || b.probing {
		b.fastFails.Add(1)
		return false
	}
	b.probing = true
	return true
}

// record feeds one dial outcome back.
func (b *breaker) record(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		if b.fails == b.threshold {
			b.opens.Add(1)
		}
		b.openUntil = now.Add(b.cooldown)
	}
}
