package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"
)

func background() context.Context { return context.Background() }

// ---- frame / payload edge cases ----

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgResult, make([]byte, maxFrame)); err == nil {
		t.Fatal("oversized payload should be rejected before hitting the wire")
	}
	if buf.Len() != 0 {
		t.Fatal("no partial frame may be written")
	}
}

func TestAuthVersionNegotiationPayloads(t *testing.T) {
	// v1 clients omit the version byte.
	u, p, d, v, err := DecodeAuth(EncodeAuth("u", "p", "db", ProtoV1))
	if err != nil || u != "u" || p != "p" || d != "db" || v != ProtoV1 {
		t.Fatalf("v1 auth: %q %q %q v%d %v", u, p, d, v, err)
	}
	_, _, _, v, err = DecodeAuth(EncodeAuth("u", "p", "db", ProtoV2))
	if err != nil || v != ProtoV2 {
		t.Fatalf("v2 auth: v%d %v", v, err)
	}
	// trailing junk after the version byte is a protocol error
	bad := append(EncodeAuth("u", "p", "db", ProtoV2), 0xFF)
	if _, _, _, _, err := DecodeAuth(bad); err == nil {
		t.Fatal("trailing auth bytes should fail")
	}
	banner, v, err := DecodeAuthOK(EncodeAuthOK("srv/2.0", ProtoV2))
	if err != nil || banner != "srv/2.0" || v != ProtoV2 {
		t.Fatalf("authok: %q v%d %v", banner, v, err)
	}
}

func TestResultChunkRoundTrip(t *testing.T) {
	tbl := sampleTable()
	back, err := DecodeResultChunk(EncodeResultChunk(tbl))
	if err != nil || back.NumRows() != tbl.NumRows() || len(back.Cols) != len(tbl.Cols) {
		t.Fatalf("%v shape %v", err, back)
	}
	if _, err := DecodeResultChunk(append(EncodeResultChunk(tbl), 1)); err == nil {
		t.Fatal("trailing chunk bytes should fail")
	}
	msg, rows, err := DecodeResultEnd(EncodeResultEnd("SELECT 3", 3))
	if err != nil || msg != "SELECT 3" || rows != 3 {
		t.Fatalf("%q %d %v", msg, rows, err)
	}
	if _, _, err := DecodeResultEnd([]byte{0, 0}); err == nil {
		t.Fatal("truncated end frame should fail")
	}
}

func TestWriteResultStreamChunksAndReassembles(t *testing.T) {
	tbl := storage.NewTable("result", storage.Schema{{Name: "i", Type: storage.TInt}})
	for i := 0; i < 10_000; i++ {
		_ = tbl.AppendRow([]any{int64(i)})
	}
	var buf bytes.Buffer
	// tiny chunk budget to force many chunks
	if err := WriteResultStream(&buf, "SELECT 10000", tbl, 1<<10); err != nil {
		t.Fatal(err)
	}
	var got *storage.Table
	chunks := 0
	for {
		typ, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ == MsgResultEnd {
			msg, n, err := DecodeResultEnd(payload)
			if err != nil || msg != "SELECT 10000" || n != 10_000 {
				t.Fatalf("%q %d %v", msg, n, err)
			}
			break
		}
		batch, err := DecodeResultChunk(payload)
		if err != nil {
			t.Fatal(err)
		}
		chunks++
		if got == nil {
			got = batch
		} else if err := got.AppendTable(batch); err != nil {
			t.Fatal(err)
		}
	}
	if chunks < 10 {
		t.Fatalf("expected many chunks, got %d", chunks)
	}
	if got.NumRows() != 10_000 {
		t.Fatalf("rows: %d", got.NumRows())
	}
	for i, v := range got.Cols[0].Ints {
		if v != int64(i) {
			t.Fatalf("row %d: %d", i, v)
		}
	}
}

// ---- context cancellation ----

// silentServer accepts one connection, completes the handshake, then goes
// quiet: queries are read but never answered. It isolates client-side
// cancellation from engine timing.
func silentServer(t *testing.T) ConnParams {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				if typ, _, err := ReadFrame(nc); err != nil || typ != MsgAuth {
					return
				}
				_ = WriteFrame(nc, MsgAuthOK, EncodeAuthOK("silent/2.0", ProtoV2))
				for {
					if _, _, err := ReadFrame(nc); err != nil {
						return
					}
					// never reply
				}
			}(nc)
		}
	}()
	host, port, _ := splitHostPort(ln.Addr().String())
	return ConnParams{Host: host, Port: port, Database: "demo", User: "u", Password: "p"}
}

func TestQueryCancellationAbortsInFlight(t *testing.T) {
	params := silentServer(t)
	c, err := DialContext(background(), params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = c.Query(ctx, `SELECT 1`)
	if err == nil {
		t.Fatal("cancelled query must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error must wrap context.Canceled, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancellation took %v", time.Since(start))
	}
	if !c.Broken() {
		t.Fatal("a cancelled in-flight query must poison the connection")
	}
	if _, _, err := c.Query(background(), `SELECT 1`); err == nil {
		t.Fatal("broken connection must refuse further queries")
	}
}

func TestDialContextHonorsCancelledContext(t *testing.T) {
	_, params := startTestServer(t)
	ctx, cancel := context.WithCancel(background())
	cancel()
	if _, err := DialContext(ctx, params); err == nil {
		t.Fatal("dial with cancelled context must fail")
	}
}

// ---- protocol version back-compat ----

func TestProtoV1FallbackStillServes(t *testing.T) {
	srv, params := startTestServer(t)
	srv.StreamThreshold = 1 // would stream to any v2 client
	c, err := DialContext(background(), params, WithProtoVersion(ProtoV1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.ProtoVersion() != ProtoV1 {
		t.Fatalf("negotiated v%d", c.ProtoVersion())
	}
	if _, _, err := c.Query(background(), `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(background(), `INSERT INTO t VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	_, tbl, err := c.Query(background(), `SELECT i FROM t`)
	if err != nil || tbl.NumRows() != 2 {
		t.Fatalf("v1 session must get the one-shot result path: %v %v", tbl, err)
	}
	// v1 has no ping frame; the fallback goes through a query
	if err := c.Ping(background()); err != nil {
		t.Fatal(err)
	}
}

// ---- streaming end to end ----

// TestStreamingBeyondFrameCap round-trips a result set larger than the
// 64 MiB frame cap through the chunked path — impossible over the v1
// one-shot protocol.
func TestStreamingBeyondFrameCap(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates ~200 MiB")
	}
	db := engine.NewDB()
	db.FS = core.NewMemFS(nil)
	big := storage.NewTable("big", storage.Schema{{Name: "payload", Type: storage.TBlob}})
	blob := make([]byte, 16<<20)
	for i := range blob {
		blob[i] = byte(i)
	}
	const rows = 5 // 5 × 16 MiB = 80 MiB > 64 MiB frame cap
	for i := 0; i < rows; i++ {
		_ = big.AppendRow([]any{blob})
	}
	if err := db.RegisterTable(big); err != nil {
		t.Fatal(err)
	}
	srv := NewServer("demo", "monetdb", "secret", db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	host, port, _ := splitHostPort(addr)
	params := ConnParams{Host: host, Port: port, Database: "demo", User: "monetdb", Password: "secret"}

	c, err := DialContext(background(), params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rowsIter, err := c.QueryStream(background(), `SELECT payload FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	got, batches := 0, 0
	for rowsIter.Next() {
		b := rowsIter.Batch()
		col, err := b.Column("payload")
		if err != nil {
			t.Fatal(err)
		}
		for _, bl := range col.Blobs {
			if len(bl) != len(blob) || bl[0] != blob[0] || bl[len(bl)-1] != blob[len(blob)-1] {
				t.Fatal("blob corrupted in transit")
			}
			got++
		}
		batches++
	}
	if err := rowsIter.Err(); err != nil {
		t.Fatal(err)
	}
	if got != rows {
		t.Fatalf("rows: %d", got)
	}
	if batches < 2 {
		t.Fatalf("expected a multi-chunk stream, got %d batches", batches)
	}
	if !rowsIter.Streaming() {
		t.Fatal("result should have travelled the chunked path")
	}
	if rowsIter.TotalRows() != rows {
		t.Fatalf("total rows: %d", rowsIter.TotalRows())
	}
	// the same result over a v1 session must be refused, not crash the conn
	v1, err := DialContext(background(), params, WithProtoVersion(ProtoV1))
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	if _, _, err := v1.Query(background(), `SELECT payload FROM big`); err == nil {
		t.Fatal("v1 session cannot carry >64MiB one-shot results")
	}
	if _, _, err := v1.Query(background(), `SELECT 1 AS one`); err != nil {
		t.Fatalf("v1 connection should survive the refusal: %v", err)
	}
}

func TestQueryStreamSmallResultOneShot(t *testing.T) {
	_, params := startTestServer(t)
	c, err := DialContext(background(), params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Query(background(), `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(background(), `INSERT INTO t VALUES (7)`); err != nil {
		t.Fatal(err)
	}
	rows, err := c.QueryStream(background(), `SELECT i FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Streaming() {
		t.Fatal("small result should use the one-shot path")
	}
	msg, tbl, err := rows.ReadAll()
	if err != nil || tbl.Cols[0].Ints[0] != 7 || msg == "" {
		t.Fatalf("%q %v %v", msg, tbl, err)
	}
	// connection stays usable after a drained stream
	if _, _, err := c.Query(background(), `SELECT i FROM t`); err != nil {
		t.Fatal(err)
	}
}

func TestStreamedEmptyResultKeepsSchema(t *testing.T) {
	srv, params := startTestServer(t)
	srv.StreamThreshold = -1 // stream everything
	c, err := DialContext(background(), params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(background(), `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	rows, err := c.QueryStream(background(), `SELECT i FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Streaming() {
		t.Fatal("threshold -1 must stream")
	}
	_, tbl, err := rows.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || tbl.NumRows() != 0 || len(tbl.Cols) != 1 || tbl.Cols[0].Name != "i" {
		t.Fatalf("empty streamed result must keep the schema like the one-shot path: %+v", tbl)
	}
}

// ---- mid-stream client disconnect ----

func TestServerSurvivesMidStreamClientDisconnect(t *testing.T) {
	srv, params := startTestServer(t)
	srv.StreamThreshold = 1 // stream everything
	boot, err := DialContext(background(), params)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := boot.Query(background(), `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	sb.WriteString(`INSERT INTO t VALUES (0)`)
	for i := 1; i < 5000; i++ {
		fmt.Fprintf(&sb, ", (%d)", i)
	}
	if _, _, err := boot.Query(background(), sb.String()); err != nil {
		t.Fatal(err)
	}
	boot.Close()

	// Raw connection: handshake, send the query, hang up immediately while
	// the server is (or is about to be) streaming the response.
	nc, err := net.Dial("tcp", params.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(nc, MsgAuth, EncodeAuth("monetdb", "secret", "demo", ProtoV2)); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := ReadFrame(nc); err != nil || typ != MsgAuthOK {
		t.Fatalf("handshake: %d %v", typ, err)
	}
	if err := WriteFrame(nc, MsgQuery, []byte(`SELECT i FROM t`)); err != nil {
		t.Fatal(err)
	}
	nc.Close()

	// The server must shrug it off and keep serving other clients.
	c, err := DialContext(background(), params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, tbl, err := c.Query(background(), `SELECT COUNT(*) AS n FROM t`)
	if err != nil || tbl.Cols[0].Ints[0] != 5000 {
		t.Fatalf("server unhealthy after disconnect: %v %v", tbl, err)
	}
}

// ---- pipelining ----

func TestPipelinedQueriesAnswerInOrder(t *testing.T) {
	_, params := startTestServer(t)
	c, err := DialContext(background(), params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(background(), `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	// Hand-pipeline over a raw connection: several queries written before
	// any response is read; responses must come back in order.
	nc, err := net.Dial("tcp", params.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := WriteFrame(nc, MsgAuth, EncodeAuth("monetdb", "secret", "demo", ProtoV2)); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := ReadFrame(nc); err != nil || typ != MsgAuthOK {
		t.Fatalf("handshake: %d %v", typ, err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		sql := fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i)
		if err := WriteFrame(nc, MsgQuery, []byte(sql)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		typ, payload, err := ReadFrame(nc)
		if err != nil {
			t.Fatal(err)
		}
		if typ != MsgResult {
			t.Fatalf("reply %d: type %d", i, typ)
		}
		msg, _, err := DecodeResult(payload)
		if err != nil || msg != "INSERT 1" {
			t.Fatalf("reply %d: %q %v", i, msg, err)
		}
	}
	_, tbl, err := c.Query(background(), `SELECT COUNT(*) AS n FROM t`)
	if err != nil || tbl.Cols[0].Ints[0] != n {
		t.Fatalf("%v %v", tbl, err)
	}
}

// ---- pool ----

func TestPoolServesConcurrentClients(t *testing.T) {
	_, params := startTestServer(t)
	pool := NewPool(params, 4)
	defer pool.Close()
	if _, err := pool.Exec(background(), `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := pool.Exec(background(), `INSERT INTO t VALUES (1)`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	_, tbl, err := pool.Query(background(), `SELECT COUNT(*) AS n FROM t`)
	if err != nil || tbl.Cols[0].Ints[0] != workers*perWorker {
		t.Fatalf("%v %v", tbl, err)
	}
	st := pool.Stats()
	if st.Dials == 0 || st.Dials > 4 {
		t.Fatalf("pool bound violated: %+v", st)
	}
	if st.BytesRead == 0 || st.BytesWritten == 0 {
		t.Fatalf("pool byte accounting missing: %+v", st)
	}
}

func TestPoolDiscardsBrokenConnectionsAtCheckin(t *testing.T) {
	_, params := startTestServer(t)
	pool := NewPool(params, 2)
	defer pool.Close()
	c, err := pool.Get(background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(background())
	cancel()
	if _, _, err := c.Query(ctx, `SELECT 1 AS one`); err == nil {
		t.Fatal("cancelled query must fail")
	}
	if !c.Broken() {
		t.Fatal("connection should be broken")
	}
	pool.Put(c)
	if st := pool.Stats(); st.Discards != 1 {
		t.Fatalf("broken conn must be discarded: %+v", st)
	}
	// the pool recovers with a fresh dial
	if _, err := pool.Exec(background(), `SELECT 1 AS one`); err != nil {
		t.Fatal(err)
	}
}

func TestPoolGetHonorsContextWhileExhausted(t *testing.T) {
	_, params := startTestServer(t)
	pool := NewPool(params, 1)
	defer pool.Close()
	c, err := pool.Get(background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(background(), 50*time.Millisecond)
	defer cancel()
	if _, err := pool.Get(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("exhausted pool checkout must respect ctx: %v", err)
	}
	pool.Put(c)
	c2, err := pool.Get(background())
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(c2)
}

func TestPoolQueryStreamReturnsConnection(t *testing.T) {
	_, params := startTestServer(t)
	pool := NewPool(params, 1)
	defer pool.Close()
	if _, err := pool.Exec(background(), `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Exec(background(), `INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	rows, err := pool.QueryStream(background(), `SELECT i FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n += rows.Batch().NumRows()
	}
	if err := rows.Err(); err != nil || n != 3 {
		t.Fatalf("%d %v", n, err)
	}
	// the single pooled connection must be back: another query succeeds
	ctx, cancel := context.WithTimeout(background(), 2*time.Second)
	defer cancel()
	if _, err := pool.Exec(ctx, `SELECT 1 AS one`); err != nil {
		t.Fatalf("connection not returned to pool: %v", err)
	}
}

// ---- graceful drain ----

func TestServerCloseDrainsGracefully(t *testing.T) {
	srv, params := startTestServer(t)
	c, err := DialContext(background(), params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(background(), `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close must not wait for connected-but-idle clients")
	}
}

// ---- engine Conn over the wire keeps reporting io.EOF semantics ----

func TestReadFrameEOF(t *testing.T) {
	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("clean EOF must surface as io.EOF: %v", err)
	}
}
