package wire

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Pool is a bounded connection pool over DialContext. Checkouts are
// health-checked: broken connections are discarded at checkin, and idle
// connections past IdlePingAfter are pinged before being handed out.
// All methods are safe for concurrent use.
type Pool struct {
	// IdlePingAfter is how long a connection may sit idle before a checkout
	// verifies it with a Ping. Zero applies the 30s default; negative
	// disables idle pings.
	IdlePingAfter time.Duration

	params ConnParams
	opts   []DialOption
	size   int

	sem  chan struct{}    // bounds open+checked-out connections
	idle chan *pooledConn // open connections between checkouts

	mu     sync.Mutex
	closed bool

	// retry and br are installed by EnableRetry before first use; nil
	// means no client-side retry and no breaker.
	retry *RetryPolicy
	br    *breaker

	waits        atomic.Int64
	dials        atomic.Int64
	discards     atomic.Int64
	healthFails  atomic.Int64
	reprepares   atomic.Int64
	retries      atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
}

// pooledConn pairs a connection with its idle stamp.
type pooledConn struct {
	c         *Client
	idleSince time.Time
}

// PoolStats is a snapshot of pool activity.
type PoolStats struct {
	Size     int   // configured bound
	Idle     int   // open connections awaiting checkout
	InUse    int   // connections currently checked out
	Waits    int64 // checkouts that blocked on the bound
	Dials    int64 // connections opened over the pool's lifetime
	Discards int64 // connections dropped for any reason
	// HealthCheckFailures counts connections that failed a checkout or
	// checkin health check (broken transport or failed idle ping) — a
	// subset of Discards, which also counts idle-overflow and close-time
	// retirements.
	HealthCheckFailures int64
	// Reprepares counts PoolStmt executions that had to re-prepare their
	// SQL because the pool handed back a connection that had not seen the
	// statement yet (churn after retirement).
	Reprepares int64
	// Retries counts extra attempts made under the pool's RetryPolicy
	// (dial/handshake failures and retryable overload sheds).
	Retries int64
	// BreakerOpens counts closed-to-open transitions of the endpoint's
	// circuit breaker; BreakerFastFails counts checkouts it refused
	// without touching the network.
	BreakerOpens     int64
	BreakerFastFails int64
	// BytesRead/BytesWritten aggregate wire traffic of retired and
	// checked-in connections.
	BytesRead    int64
	BytesWritten int64
}

// NewPool creates a pool of at most size connections to params, dialed with
// opts. Connections are opened lazily, on checkout.
func NewPool(params ConnParams, size int, opts ...DialOption) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{
		params: params,
		opts:   opts,
		size:   size,
		sem:    make(chan struct{}, size),
		idle:   make(chan *pooledConn, size),
	}
}

// Get checks a healthy connection out of the pool, dialing a fresh one when
// none is idle. It blocks while the pool is at its bound until a connection
// is checked in or ctx is cancelled. Every Get must be paired with a Put.
// Under an EnableRetry policy, transient dial/handshake failures are
// retried with jittered exponential backoff.
func (p *Pool) Get(ctx context.Context) (*Client, error) {
	if ctx == nil {
		ctx = context.Background() //ctxflow:edge nil-ctx fallback of the exported pool API
	}
	if p.retry == nil {
		return p.get(ctx)
	}
	var out *Client
	err := p.withConnRetry(ctx, func(c *Client) error { out = c; return nil })
	return out, err
}

// get is one checkout attempt, without retry.
func (p *Pool) get(ctx context.Context) (*Client, error) {
	if p.isClosed() {
		return nil, core.Errorf(core.KindIO, "pool is closed")
	}
	select {
	case p.sem <- struct{}{}:
	default:
		p.waits.Add(1)
		select {
		case p.sem <- struct{}{}:
		case <-ctx.Done():
			// The caller gave up waiting: a cancellation, not an IO
			// failure — the pool itself is healthy.
			return nil, core.Wrapf(core.KindCancelled, ctx.Err(), "pool checkout: %v", ctx.Err())
		}
	}
	// Token held: either reuse an idle connection or dial.
	for {
		select {
		case pc := <-p.idle:
			if c := p.vet(ctx, pc); c != nil {
				return c, nil
			}
		default:
			if br := p.br; br != nil && !br.allow(time.Now()) {
				<-p.sem
				return nil, core.Errorf(core.KindOverload,
					"circuit breaker open for %s; backing off", p.params.Addr())
			}
			c, err := DialContext(ctx, p.params, p.opts...)
			if br := p.br; br != nil {
				br.record(err == nil, time.Now())
			}
			if err != nil {
				<-p.sem
				return nil, err
			}
			p.dials.Add(1)
			return c, nil
		}
	}
}

// vet health-checks an idle connection at checkout, returning nil (and
// retiring it) when it fails.
func (p *Pool) vet(ctx context.Context, pc *pooledConn) *Client {
	if pc.c.Broken() {
		p.healthFails.Add(1)
		p.retire(pc)
		return nil
	}
	after := p.IdlePingAfter
	if after == 0 {
		after = 30 * time.Second
	}
	if after > 0 && time.Since(pc.idleSince) >= after {
		if err := pc.c.Ping(ctx); err != nil {
			p.healthFails.Add(1)
			p.retire(pc)
			return nil
		}
	}
	return pc.c
}

// Put checks a connection back in. Broken connections are closed and their
// slot freed; the next Get dials a replacement.
func (p *Pool) Put(c *Client) {
	if c == nil {
		<-p.sem
		return
	}
	pc := &pooledConn{c: c, idleSince: time.Now()}
	p.account(pc)
	if c.Broken() || p.isClosed() {
		if c.Broken() {
			p.healthFails.Add(1)
		}
		p.retire(pc)
		<-p.sem
		return
	}
	select {
	case p.idle <- pc:
		// A Close may have drained the idle set between our check and the
		// push; re-check so the connection is not stranded open.
		if p.isClosed() {
			select {
			case pc2 := <-p.idle:
				p.retire(pc2)
			default:
			}
		}
	default:
		p.retire(pc)
	}
	<-p.sem
}

// account folds a connection's byte counters into the pool totals. The
// high-water marks live on the Client (accessed only while it is held
// exclusively), so repeated checkins never double-count.
func (p *Pool) account(pc *pooledConn) {
	p.bytesRead.Add(pc.c.BytesRead - pc.c.poolCountedRead)
	p.bytesWritten.Add(pc.c.BytesWritten - pc.c.poolCountedWritten)
	pc.c.poolCountedRead = pc.c.BytesRead
	pc.c.poolCountedWritten = pc.c.BytesWritten
}

func (p *Pool) retire(pc *pooledConn) {
	p.discards.Add(1)
	_ = pc.c.Close()
}

// Query checks out a connection, runs Query, and checks it back in.
// Under an EnableRetry policy, retryable failures — transient checkout
// errors and overload sheds the server answered before executing — are
// retried with backoff; a mid-query transport failure is not.
func (p *Pool) Query(ctx context.Context, sql string) (string, *storage.Table, error) {
	if ctx == nil {
		ctx = context.Background() //ctxflow:edge nil-ctx fallback of the exported pool API
	}
	var status string
	var tbl *storage.Table
	err := p.withConnRetry(ctx, func(c *Client) error {
		defer p.Put(c)
		var err error
		status, tbl, err = c.Query(ctx, sql)
		return err
	})
	return status, tbl, err
}

// QueryStream checks out a connection and starts a streaming query on it.
// The connection is checked back in automatically when the stream is fully
// consumed or Closed — a Rows obtained here must not be abandoned, or its
// connection stays checked out. Retry (under an EnableRetry policy)
// covers only the start of the stream; once rows flow, failures surface
// to the consumer.
func (p *Pool) QueryStream(ctx context.Context, sql string) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background() //ctxflow:edge nil-ctx fallback of the exported pool API
	}
	var rows *Rows
	err := p.withConnRetry(ctx, func(c *Client) error {
		r, err := c.QueryStream(ctx, sql)
		if err != nil {
			p.Put(c)
			return err
		}
		r.release = func() { p.Put(c) }
		rows = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Exec checks out a connection, runs Exec, and checks it back in. Retry
// semantics match Query.
func (p *Pool) Exec(ctx context.Context, sql string) (string, error) {
	if ctx == nil {
		ctx = context.Background() //ctxflow:edge nil-ctx fallback of the exported pool API
	}
	var status string
	err := p.withConnRetry(ctx, func(c *Client) error {
		defer p.Put(c)
		var err error
		status, err = c.Exec(ctx, sql)
		return err
	})
	return status, err
}

func (p *Pool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// StatsSnapshot snapshots pool activity. Byte totals cover checked-in
// connections; traffic of a connection currently checked out is folded
// in at its next checkin. It never blocks: every source is a channel
// length or an atomic.
func (p *Pool) StatsSnapshot() PoolStats {
	idle := len(p.idle)
	inUse := len(p.sem)
	if inUse < 0 {
		inUse = 0
	}
	st := PoolStats{
		Size:                p.size,
		Idle:                idle,
		InUse:               inUse,
		Waits:               p.waits.Load(),
		Dials:               p.dials.Load(),
		Discards:            p.discards.Load(),
		HealthCheckFailures: p.healthFails.Load(),
		Reprepares:          p.reprepares.Load(),
		Retries:             p.retries.Load(),
		BytesRead:           p.bytesRead.Load(),
		BytesWritten:        p.bytesWritten.Load(),
	}
	if br := p.br; br != nil {
		st.BreakerOpens = br.opens.Load()
		st.BreakerFastFails = br.fastFails.Load()
	}
	return st
}

// Stats is StatsSnapshot under its historical name.
func (p *Pool) Stats() PoolStats { return p.StatsSnapshot() }

// RegisterObs registers the pool's stats on reg as pool_* gauges and
// counters, all read at scrape time from StatsSnapshot. Register at most
// one pool per registry (metric names are process-global).
func (p *Pool) RegisterObs(reg *obs.Registry) {
	reg.GaugeFunc("pool_size", "Configured connection bound of the pool.",
		func() float64 { return float64(p.StatsSnapshot().Size) })
	reg.GaugeFunc("pool_idle", "Open pool connections awaiting checkout.",
		func() float64 { return float64(p.StatsSnapshot().Idle) })
	reg.GaugeFunc("pool_in_use", "Pool connections currently checked out.",
		func() float64 { return float64(p.StatsSnapshot().InUse) })
	reg.CounterFunc("pool_waits_total", "Checkouts that blocked on the pool bound.",
		func() float64 { return float64(p.StatsSnapshot().Waits) })
	reg.CounterFunc("pool_dials_total", "Connections the pool opened over its lifetime.",
		func() float64 { return float64(p.StatsSnapshot().Dials) })
	reg.CounterFunc("pool_discards_total", "Pool connections dropped for any reason.",
		func() float64 { return float64(p.StatsSnapshot().Discards) })
	reg.CounterFunc("pool_health_check_failures_total", "Pool connections that failed a checkout or checkin health check.",
		func() float64 { return float64(p.StatsSnapshot().HealthCheckFailures) })
	reg.CounterFunc("pool_reprepares_total", "Prepared statements re-prepared after pool connection churn.",
		func() float64 { return float64(p.StatsSnapshot().Reprepares) })
	reg.CounterFunc("pool_retries_total", "Extra attempts made under the pool's retry policy.",
		func() float64 { return float64(p.StatsSnapshot().Retries) })
	reg.CounterFunc("pool_breaker_opens_total", "Closed-to-open transitions of the endpoint circuit breaker.",
		func() float64 { return float64(p.StatsSnapshot().BreakerOpens) })
	reg.CounterFunc("pool_breaker_fast_fails_total", "Checkouts the open circuit breaker refused without dialing.",
		func() float64 { return float64(p.StatsSnapshot().BreakerFastFails) })
	reg.CounterFunc("pool_bytes_read_total", "Wire bytes read by pool connections (folded in at checkin).",
		func() float64 { return float64(p.StatsSnapshot().BytesRead) })
	reg.CounterFunc("pool_bytes_written_total", "Wire bytes written by pool connections (folded in at checkin).",
		func() float64 { return float64(p.StatsSnapshot().BytesWritten) })
}

// Close marks the pool closed and closes every idle connection. Checked-out
// connections are closed as they are Put back.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	for {
		select {
		case pc := <-p.idle:
			_ = pc.c.Close()
		default:
			return nil
		}
	}
}
