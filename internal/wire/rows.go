package wire

import (
	"repro/internal/core"
	"repro/internal/storage"
)

// Rows iterates over a query's result batches as they arrive off the wire,
// so a result set is never bounded by the one-frame cap and can be consumed
// incrementally. Typical use:
//
//	rows, err := c.QueryStream(ctx, sql)
//	...
//	for rows.Next() {
//	    batch := rows.Batch() // *storage.Table with this batch's rows
//	}
//	err = rows.Err()
//
// A Rows must be fully consumed (Next until false) or Closed before the
// next operation on the same Client.
type Rows struct {
	c       *Client
	stop    func() error // disarms the context watchdog; nil once called
	release func()       // returns a pooled connection; nil once called

	msg       string
	totalRows int64
	pending   *storage.Table // first batch, consumed by the first Next
	cur       *storage.Table
	streaming bool // true when served by the v2 chunked path
	finished  bool // terminator (or one-shot result) already read
	closed    bool
	err       error
}

// Next advances to the next batch, fetching it from the wire if needed. It
// returns false when the stream is exhausted or failed; check Err then.
func (r *Rows) Next() bool {
	if r.err != nil || r.closed {
		return false
	}
	if r.pending != nil {
		r.cur = r.pending
		r.pending = nil
		return true
	}
	if r.finished {
		r.finish()
		return false
	}
	typ, payload, err := r.c.recv()
	if err != nil {
		r.err = err
		r.finish()
		return false
	}
	//wireswitch:ignore continuation matcher for an in-flight v2 stream; only chunk, end, and error frames are legal here
	switch typ {
	case MsgResultChunk:
		t, err := DecodeResultChunk(payload)
		if err != nil {
			r.c.broken.Store(true)
			r.err = err
			r.finish()
			return false
		}
		r.cur = t
		return true
	case MsgResultEnd:
		msg, n, err := DecodeResultEnd(payload)
		if err != nil {
			r.c.broken.Store(true)
			r.err = err
		} else {
			r.msg, r.totalRows = msg, n
		}
		r.finished = true
		r.finish()
		return false
	case MsgErr:
		// A server-side error terminates the stream; the connection stays
		// in sync and reusable.
		r.err = DecodeError(payload)
		r.finished = true
		r.finish()
		return false
	default:
		r.c.broken.Store(true)
		r.err = core.Errorf(core.KindProtocol, "unexpected frame %d in result stream", typ)
		r.finish()
		return false
	}
}

// Batch returns the current batch after a successful Next. The table is
// owned by the caller.
func (r *Rows) Batch() *storage.Table { return r.cur }

// Msg returns the status message. For streamed results it is only known
// once the stream is exhausted.
func (r *Rows) Msg() string { return r.msg }

// TotalRows returns the server-reported row count of a streamed result,
// available once the stream is exhausted (0 for one-shot results).
func (r *Rows) TotalRows() int64 { return r.totalRows }

// Streaming reports whether the result arrived via the v2 chunked path.
func (r *Rows) Streaming() bool { return r.streaming }

// Err returns the error that terminated iteration, if any. A cancelled
// context surfaces here wrapped around context.Canceled.
func (r *Rows) Err() error { return r.err }

// finish disarms the context watchdog once the stream is done, promoting a
// context cancellation into the iteration error, and returns a pooled
// connection to its pool.
func (r *Rows) finish() {
	if r.stop != nil {
		werr := r.stop()
		r.stop = nil
		if werr != nil && r.err == nil {
			r.err = werr
		}
	}
	if r.release != nil {
		r.release()
		r.release = nil
	}
}

// Close drains any unread remainder of the stream so the connection stays
// usable, then releases the iterator. It is safe to call more than once.
func (r *Rows) Close() error {
	if r.closed {
		return r.err
	}
	for !r.finished && r.err == nil {
		r.cur = nil
		if !r.Next() {
			break
		}
	}
	r.closed = true
	r.cur, r.pending = nil, nil
	r.finish()
	return r.err
}

// ReadAll consumes the whole stream and reassembles it into one table,
// returning the status message — the buffered v1-style surface on top of
// the streaming one.
func (r *Rows) ReadAll() (string, *storage.Table, error) {
	var out *storage.Table
	for r.Next() {
		b := r.Batch()
		if out == nil {
			out = b
		} else if err := out.AppendTable(b); err != nil {
			// Mismatched batch schemas mean the stream is untrustworthy and
			// unread frames may remain; never reuse this connection.
			r.c.broken.Store(true)
			r.err = err
			break
		}
	}
	if err := r.Close(); err != nil {
		return "", nil, err
	}
	return r.msg, out, nil
}
