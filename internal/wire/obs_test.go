package wire

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
)

// startObsServer is startTestServer with a registry wired in before the
// listener starts (EnableObs must precede Listen).
func startObsServer(t *testing.T, configure func(*Server)) (*obs.Registry, *Server, ConnParams) {
	t.Helper()
	db := engine.NewDB()
	db.FS = core.NewMemFS(nil)
	reg := obs.NewRegistry()
	db.EnableObs(reg)
	srv := NewServer("demo", "monetdb", "secret", db)
	srv.EnableObs(reg)
	if configure != nil {
		configure(srv)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	host, portStr, _ := splitHostPort(addr)
	return reg, srv, ConnParams{Host: host, Port: portStr, Database: "demo", User: "monetdb", Password: "secret"}
}

func scrapeReg(t *testing.T, reg *obs.Registry) *obs.Scrape {
	t.Helper()
	var b strings.Builder
	reg.WritePrometheus(&b)
	sc, err := obs.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition did not re-parse: %v\n%s", err, b.String())
	}
	return sc
}

func mustValue(t *testing.T, sc *obs.Scrape, name string, labels map[string]string) float64 {
	t.Helper()
	sm, ok := sc.Get(name, labels)
	if !ok {
		t.Fatalf("missing series %s %v", name, labels)
	}
	return sm.Value
}

func TestServerMetricsEndToEnd(t *testing.T) {
	reg, _, params := startObsServer(t, nil)
	c, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, sql := range []string{
		`CREATE TABLE t (i INTEGER)`,
		`INSERT INTO t VALUES (1), (2), (3)`,
		`SELECT SUM(i) AS s FROM t`,
	} {
		if _, _, err := c.Query(background(), sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	sc := scrapeReg(t, reg)
	if v := mustValue(t, sc, "wire_connections_opened_total", nil); v < 1 {
		t.Fatalf("wire_connections_opened_total = %v", v)
	}
	if v := mustValue(t, sc, "wire_connections_active", nil); v < 1 {
		t.Fatalf("wire_connections_active = %v (client still connected)", v)
	}
	if v := mustValue(t, sc, "wire_messages_total", map[string]string{"type": "query"}); v < 3 {
		t.Fatalf("wire_messages_total{type=query} = %v", v)
	}
	if v := mustValue(t, sc, "wire_messages_total", map[string]string{"type": "auth"}); v < 1 {
		t.Fatalf("wire_messages_total{type=auth} = %v", v)
	}
	for _, name := range []string{"wire_bytes_read_total", "wire_bytes_written_total"} {
		if v := mustValue(t, sc, name, nil); v <= 0 {
			t.Fatalf("%s = %v", name, v)
		}
	}
	if v := mustValue(t, sc, "wire_query_seconds_count", nil); v < 3 {
		t.Fatalf("wire_query_seconds_count = %v", v)
	}
	// the engine series registered alongside must move through the wire path
	if v := mustValue(t, sc, "engine_rows_returned_total", nil); v < 1 {
		t.Fatalf("engine_rows_returned_total = %v", v)
	}
}

// TestStmtRejectionCounter: a statement-table-full rejection, previously
// only visible as a client error, must increment its counter.
func TestStmtRejectionCounter(t *testing.T) {
	reg, srv, params := startObsServer(t, func(s *Server) { s.MaxStmtsPerConn = 1 })
	_ = srv
	c, err := DialContext(background(), params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Prepare(background(), `SELECT 1 AS a`); err != nil {
		t.Fatal(err)
	}
	if v := mustValue(t, scrapeReg(t, reg), "wire_stmt_rejections_total", nil); v != 0 {
		t.Fatalf("rejections before the bound = %v", v)
	}
	if _, err := c.Prepare(background(), `SELECT 2 AS b`); err == nil ||
		!strings.Contains(err.Error(), "full") {
		t.Fatalf("expected table-full error, got %v", err)
	}
	if v := mustValue(t, scrapeReg(t, reg), "wire_stmt_rejections_total", nil); v != 1 {
		t.Fatalf("wire_stmt_rejections_total = %v", v)
	}
}

// TestSlowQueryLogLine: a query past the threshold produces one
// structured line carrying the per-stage breakdown.
func TestSlowQueryLogLine(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	_, srv, params := startObsServer(t, func(s *Server) {
		s.SlowQueryMs = 1
	})
	srv.Logf = func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	c, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, sql := range []string{
		`CREATE TABLE t (i INTEGER)`,
		`INSERT INTO t VALUES (1), (2), (3)`,
		`CREATE FUNCTION nap(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    s = 0
    for k in range(0, 300000):
        s += k
    return i
}`,
	} {
		if _, _, err := c.Query(background(), sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	if _, _, err := c.Query(background(), `SELECT nap(i) AS n FROM t`); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	var slow string
	for _, l := range lines {
		if strings.Contains(l, "slow query:") && strings.Contains(l, "nap(i)") {
			slow = l
		}
	}
	if slow == "" {
		t.Fatalf("no slow-query line for the UDF query in %q", lines)
	}
	for _, want := range []string{
		"user=monetdb", "total_ms=", "parse_ms=", "bind_ms=", "exec_ms=",
		"udf_ms=", "wal_ms=", "write_ms=", "rows=3", "cache_hit=false",
		`query="SELECT nap(i) AS n FROM t"`,
	} {
		if !strings.Contains(slow, want) {
			t.Fatalf("slow-query line missing %q: %s", want, slow)
		}
	}
	if strings.Contains(slow, "udf_ms=0.000") {
		t.Fatalf("udf span should be nonzero for a sleeping UDF: %s", slow)
	}
}

// TestQueryLogOverWire: the server feeds the engine's query-log ring, and
// sys.query_log is queryable over the same wire.
func TestQueryLogOverWire(t *testing.T) {
	_, srv, params := startObsServer(t, nil)
	srv.DB.QueryLog = obs.NewQueryLog(16)
	c, err := Dial(params)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Query(background(), `CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(background(), `SELECT i FROM t`); err != nil {
		t.Fatal(err)
	}
	_, tbl, err := c.Query(background(), `SELECT usr, query FROM sys.query_log`)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() < 2 {
		t.Fatalf("query log rows = %d", tbl.NumRows())
	}
	found := false
	for r := 0; r < tbl.NumRows(); r++ {
		if tbl.Cols[1].Strs[r] == `SELECT i FROM t` && tbl.Cols[0].Strs[r] == "monetdb" {
			found = true
		}
	}
	if !found {
		t.Fatalf("SELECT not recorded in sys.query_log")
	}
}

// TestPoolObsAndReprepares: pool gauges register and the churn-forced
// re-prepare is counted (the eager prepare is not).
func TestPoolObsAndReprepares(t *testing.T) {
	_, params := preparedFixture(t)
	pool := NewPool(params, 1)
	defer pool.Close()
	reg := obs.NewRegistry()
	pool.RegisterObs(reg)
	ps, err := pool.Prepare(background(), `SELECT count(*) AS n FROM nums WHERE i > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ps.Query(background(), int64(1)); err != nil {
		t.Fatal(err)
	}
	if got := pool.StatsSnapshot().Reprepares; got != 0 {
		t.Fatalf("eager prepare must not count as a re-prepare: %d", got)
	}
	// kill the pool's only connection behind the stmt's back
	c, err := pool.Get(background())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	pool.Put(c)
	if _, _, err := ps.Query(background(), int64(2)); err != nil {
		t.Fatal(err)
	}
	st := pool.StatsSnapshot()
	if st.Reprepares != 1 {
		t.Fatalf("Reprepares = %d, want 1", st.Reprepares)
	}
	if st.HealthCheckFailures < 1 {
		t.Fatalf("HealthCheckFailures = %d, want >= 1", st.HealthCheckFailures)
	}
	if st.Discards < st.HealthCheckFailures {
		t.Fatalf("health failures (%d) must be a subset of discards (%d)", st.HealthCheckFailures, st.Discards)
	}
	sc := scrapeReg(t, reg)
	if v := mustValue(t, sc, "pool_reprepares_total", nil); v != 1 {
		t.Fatalf("pool_reprepares_total = %v", v)
	}
	if v := mustValue(t, sc, "pool_size", nil); v != 1 {
		t.Fatalf("pool_size = %v", v)
	}
	if v := mustValue(t, sc, "pool_dials_total", nil); v < 2 {
		t.Fatalf("pool_dials_total = %v", v)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
}
