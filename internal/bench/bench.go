// Package bench holds the shared fixtures of the evaluation harness: the
// demo schema and UDFs from the paper, data generators, and in-process
// server bootstrapping used by both bench_test.go (testing.B timings) and
// cmd/experiments (the table/figure report).
package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/monetlite"
)

// MeanDeviationBuggy is the paper's Listing 4 (semantic bug: no abs()).
const MeanDeviationBuggy = `CREATE FUNCTION mean_deviation(column INTEGER)
RETURNS DOUBLE LANGUAGE PYTHON {
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += column[i] - mean
    deviation = distance / len(column)
    return deviation;
};`

// MeanDeviationFixedBody is the corrected body (for exports and E4).
const MeanDeviationFixedBody = `mean = 0
for i in range(0, len(column)):
    mean += column[i]
mean = mean / len(column)
distance = 0
for i in range(0, len(column)):
    distance += abs(column[i] - mean)
deviation = distance / len(column)
return deviation`

// LoadNumbersBuggy is the paper's Listing 5 (range off-by-one drops the
// last CSV file).
const LoadNumbersBuggy = `CREATE FUNCTION loadNumbers(path STRING)
RETURNS TABLE(i INTEGER)
LANGUAGE PYTHON {
    import os
    files = os.listdir(path)
    result = []
    for i in range(0, len(files) - 1):
        file = open(path + "/" + files[i], "r")
        for line in file:
            result.append(int(line))
    return result
};`

// TrainRnforest is the paper's Listing 1 UDF against the sklearn shim.
const TrainRnforest = `CREATE FUNCTION train_rnforest(data DOUBLE, labels INTEGER, n_estimators INTEGER)
RETURNS TABLE(clf BLOB, estimators INTEGER) LANGUAGE PYTHON {
    import pickle
    from sklearn.ensemble import RandomForestClassifier
    clf = RandomForestClassifier(n_estimators)
    clf.fit(data, labels)
    return {'clf': pickle.dumps(clf), 'estimators': n_estimators}
};`

// FindBestClassifier is the paper's Listing 3 nested UDF.
const FindBestClassifier = `CREATE FUNCTION find_best_classifier(esttest INTEGER)
RETURNS TABLE(clf BLOB, n_estimators INTEGER) LANGUAGE PYTHON {
    import pickle
    import numpy
    (tdata, tlabels) = _conn.execute("""SELECT data, labels FROM testingset""")
    best_classifier = None
    best_classifier_answers = -1
    best_estimator = -1
    for estimator in range(1, esttest + 1):
        res = _conn.execute("""
            SELECT * FROM train_rnforest((SELECT data, labels FROM trainingset), %d)
        """ % estimator)
        classifier = pickle.loads(res['clf'])
        predictions = classifier.predict(tdata)
        correct_pred = []
        for i in range(0, len(predictions)):
            correct_pred.append(predictions[i] == tlabels[i])
        correct_ans = numpy.sum(correct_pred)
        if correct_ans > best_classifier_answers:
            best_classifier = classifier
            best_classifier_answers = correct_ans
            best_estimator = estimator
    return {'clf': pickle.dumps(best_classifier), 'n_estimators': best_estimator}
};`

// SquareUDF is a tiny scalar UDF written to run under both processing
// models when called per row, used by the E5 model comparison.
const SquareUDF = `CREATE FUNCTION square(x INTEGER)
RETURNS INTEGER LANGUAGE PYTHON {
    return x * x
};`

// SquareVectorUDF is the operator-at-a-time formulation of the same
// computation (whole column in, whole column out).
const SquareVectorUDF = `CREATE FUNCTION square_vec(x INTEGER)
RETURNS INTEGER LANGUAGE PYTHON {
    out = []
    for v in x:
        out.append(v * v)
    return out
};`

// SquareGo is the native GO runtime's formulation: the engine hands the
// column vector to typed Go code directly (register with
// DB.RegisterGoUDF("square_go", bench.SquareGo)).
func SquareGo(x []int64) []int64 {
	out := make([]int64, len(x))
	for i, v := range x {
		out[i] = v * v
	}
	return out
}

// NumbersInsert builds an INSERT statement with n pseudo-random rows drawn
// from a small linear congruential sequence (deterministic, compressible
// the way real measurement columns are).
func NumbersInsert(table string, n int) string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	sb.WriteString(table)
	sb.WriteString(" VALUES ")
	seed := uint32(12345)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		seed = seed*1664525 + 1013904223
		fmt.Fprintf(&sb, "(%d)", seed%10000)
	}
	return sb.String()
}

// MLInserts returns INSERT statements for the training/testing sets used
// by the nested-UDF experiment: class 0 is bimodal so more estimators help.
func MLInserts(trainPerCluster, testRows int) []string {
	var train strings.Builder
	train.WriteString("INSERT INTO trainingset VALUES ")
	first := true
	emit := func(v float64, label int) {
		if !first {
			train.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&train, "(%g, %d)", v, label)
	}
	for i := 0; i < trainPerCluster; i++ {
		jitter := float64(i%7) * 0.03
		emit(0.1+jitter, 0)
		emit(10.0+jitter, 0)
		emit(5.0+jitter, 1)
	}
	var test strings.Builder
	test.WriteString("INSERT INTO testingset VALUES ")
	for i := 0; i < testRows; i++ {
		if i > 0 {
			test.WriteByte(',')
		}
		jitter := float64(i%5) * 0.02
		switch i % 3 {
		case 0:
			fmt.Fprintf(&test, "(%g, 0)", 0.12+jitter)
		case 1:
			fmt.Fprintf(&test, "(%g, 0)", 10.05+jitter)
		default:
			fmt.Fprintf(&test, "(%g, 1)", 5.02+jitter)
		}
	}
	return []string{train.String(), test.String()}
}

// Fixture is an in-process server with its database.
type Fixture struct {
	DB     *monetlite.DB
	Server *monetlite.Server
	Params monetlite.ConnParams
}

// StartServer boots a server on a random local port and applies setup SQL.
func StartServer(setup ...string) (*Fixture, error) {
	db := monetlite.NewDB()
	db.FS = core.NewMemFS(nil)
	srv := monetlite.NewServer("demo", "monetdb", "monetdb", db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	conn := monetlite.Connect(db, "monetdb", "monetdb")
	for _, sql := range setup {
		if _, err := conn.Exec(sql); err != nil {
			srv.Close()
			return nil, fmt.Errorf("setup: %w", err)
		}
	}
	host, port := splitAddr(addr)
	return &Fixture{
		DB:     db,
		Server: srv,
		Params: monetlite.ConnParams{
			Host: host, Port: port, Database: "demo",
			User: "monetdb", Password: "monetdb",
		},
	}, nil
}

// Close shuts the server down.
func (f *Fixture) Close() { f.Server.Close() }

func splitAddr(addr string) (string, int) {
	i := strings.LastIndexByte(addr, ':')
	port := 0
	for _, ch := range addr[i+1:] {
		port = port*10 + int(ch-'0')
	}
	return addr[:i], port
}

// Table1Row is one row of the paper's Table 1 (development-environment
// market share, from the PYPL Top IDE index the paper cites).
type Table1Row struct {
	Name  string
	Share float64
	Kind  string
}

// Table1 is the paper's Table 1, verbatim.
var Table1 = []Table1Row{
	{"Eclipse", 25.2, "IDE"},
	{"Visual Studio", 19.5, "IDE"},
	{"Android Studio", 9.5, "IDE"},
	{"Vim", 7.9, "Text Editor"},
	{"XCode", 5.2, "IDE"},
	{"IntelliJ", 4.8, "IDE"},
	{"NetBeans", 4.0, "IDE"},
	{"Xamarin", 3.8, "IDE"},
	{"Komodo", 3.4, "IDE"},
	{"Sublime Text", 3.3, "Text Editor"},
	{"Visual Studio Code", 3.3, "Text Editor"},
	{"PyCharm", 2.3, "IDE"},
}

// IDEShare sums Table 1 market share by kind — the paper's argument that
// IDEs are "heavily preferred" over plain text editors.
func IDEShare() (ide, editor float64) {
	for _, r := range Table1 {
		if r.Kind == "IDE" {
			ide += r.Share
		} else {
			editor += r.Share
		}
	}
	return ide, editor
}
