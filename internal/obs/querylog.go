package obs

import (
	"sync"
	"time"
)

// QueryLogEntry is one finished query's span breakdown, as recorded in
// the in-memory query log and surfaced through the sys.query_log
// virtual table and the slow-query log line. It is a plain value
// snapshot of a Trace — no atomics, freely copyable.
type QueryLogEntry struct {
	Seq      int64
	Query    string
	User     string
	Start    time.Time
	Rows     int64
	Err      string
	Total    int64 // nanoseconds wall time
	Stages   [numStages]int64
	CacheHit bool
}

// StageNanos returns the recorded nanoseconds for one stage.
func (e *QueryLogEntry) StageNanos(stage int) int64 { return e.Stages[stage] }

// NumStages is the number of trace stages (for iterating Stages).
const NumStages = numStages

// QueryLog is a bounded ring of recently finished queries. Append is
// cheap (one mutex, no allocation once the ring is warm) and Snapshot
// copies out entries oldest-first for sys.query_log.
type QueryLog struct {
	mu   sync.Mutex
	ring []QueryLogEntry
	next int   // ring write position
	n    int   // number of valid entries (≤ len(ring))
	seq  int64 // monotonically increasing entry id
}

// NewQueryLog creates a query log retaining the last capacity entries.
func NewQueryLog(capacity int) *QueryLog {
	if capacity <= 0 {
		capacity = 256
	}
	return &QueryLog{ring: make([]QueryLogEntry, capacity)}
}

// Record appends one finished query. totalNanos is the wall time from
// trace start to frame flush.
func (q *QueryLog) Record(tr *Trace, totalNanos int64) {
	if q == nil || tr == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	e := &q.ring[q.next]
	e.Seq = q.seq
	e.Query, e.User, e.Start = tr.Query, tr.User, tr.Start
	e.Rows, e.CacheHit, e.Err = tr.Rows, tr.CacheHit, tr.Err
	e.Total = totalNanos
	for i := 0; i < numStages; i++ {
		e.Stages[i] = int64(tr.Stage(i))
	}
	q.next = (q.next + 1) % len(q.ring)
	if q.n < len(q.ring) {
		q.n++
	}
}

// Snapshot returns the retained entries, oldest first.
func (q *QueryLog) Snapshot() []QueryLogEntry {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QueryLogEntry, 0, q.n)
	start := q.next - q.n
	if start < 0 {
		start += len(q.ring)
	}
	for i := 0; i < q.n; i++ {
		out = append(out, q.ring[(start+i)%len(q.ring)])
	}
	return out
}

// Len returns the number of retained entries.
func (q *QueryLog) Len() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
