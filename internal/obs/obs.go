// Package obs is the serving stack's observability subsystem: a metrics
// registry (counters, gauges, histograms — atomic hot paths, optional
// label dimension) with Prometheus text-format exposition, lightweight
// per-query trace spans carried on the context flow, and a bounded
// query log backing the sys.query_log virtual table and the slow-query
// log. It is stdlib-only and dependency-free so every layer — wire,
// engine, vec, udfrt, wal, pool, the daemons — can hook into it without
// import cycles.
//
// Instruments are cheap enough for hot paths: a Counter.Add is one
// atomic add, a Histogram.Observe is two atomic adds plus a bucket
// scan over a small fixed bound slice. Everything that renders strings
// happens at scrape time, never at record time.
//
// Naming convention (enforced by review, documented in CONTRIBUTING):
// series are prefixed by subsystem (wire_, engine_, udf_, wal_, pool_),
// counters end in _total, durations are _seconds histograms, sizes are
// _bytes. One Registry per process; components register their
// instruments once via their EnableObs/RegisterObs hooks.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default latency histogram layout: 100µs to 10s,
// roughly logarithmic — wide enough for a plan-cache hit and a
// cold Python UDF in the same histogram.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds registered instruments and renders them in Prometheus
// text exposition format. Registration is not hot-path; recording is.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	seen map[string]bool
}

// family is one metric name: its metadata plus the series under it
// (exactly one for unlabeled instruments, one per label value for vecs).
type family struct {
	name, help, typ string
	render          func(w io.Writer)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: map[string]bool{}}
}

func (r *Registry) register(name, help, typ string, render func(io.Writer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[name] {
		panic("obs: duplicate metric registration: " + name)
	}
	r.seen[name] = true
	r.fams = append(r.fams, &family{name: name, help: help, typ: typ, render: render})
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		f.render(w)
	}
}

// Handler returns an http.Handler serving the registry at /metrics
// content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// formatFloat renders a sample value the way Prometheus expects:
// integers without an exponent, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// ---- counter ----

// Counter is a monotonically increasing value. The zero value is usable
// but unregistered; obtain registered counters from Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters never go down).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(w io.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, c.Value())
	})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for subsystems that already keep their own atomic
// tallies (plan cache, vec worker stats).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", func(w io.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
	})
}

// CounterVec is a counter family with one label dimension. With returns
// the per-value counter; callers on hot paths should cache it.
type CounterVec struct {
	name, label string
	mu          sync.Mutex
	series      map[string]*Counter
	order       []string
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.series[value]
	if !ok {
		c = &Counter{}
		v.series[value] = c
		v.order = append(v.order, value)
	}
	return c
}

// CounterVec registers a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, label: label, series: map[string]*Counter{}}
	r.register(name, help, "counter", func(w io.Writer) {
		v.mu.Lock()
		order := make([]string, len(v.order))
		copy(order, v.order)
		v.mu.Unlock()
		sort.Strings(order)
		for _, value := range order {
			fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", name, label, escapeLabel(value), v.With(value).Value())
		}
	})
	return v
}

// ---- gauge ----

// Gauge is an integer-valued instantaneous measurement.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(w io.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, g.Value())
	})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time. fn must not
// block on locks that a stalled query can hold indefinitely (e.g. the
// engine lock while a debuggee is paused): a scrape should never hang.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(w io.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
	})
}

// ---- histogram ----

// Histogram observes a distribution over fixed, cumulative buckets.
// Observe is two atomic adds plus a scan over the bound slice.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus +Inf at the end
	sum    atomicFloat
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram buckets must be strictly increasing")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *Histogram) render(w io.Writer, name, labels string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labels, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, bracketed(labels), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, bracketed(labels), cum)
}

func bracketed(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(labels, ",") + "}"
}

// Histogram registers and returns a histogram over the given bucket
// upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, "histogram", func(w io.Writer) {
		h.render(w, name, "")
	})
	return h
}

// HistogramVec is a histogram family with one label dimension.
type HistogramVec struct {
	name, label string
	buckets     []float64
	mu          sync.Mutex
	series      map[string]*Histogram
	order       []string
}

// With returns the histogram for one label value, creating it on first
// use; hot paths should cache the result.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.series[value]
	if !ok {
		h = newHistogram(v.buckets)
		v.series[value] = h
		v.order = append(v.order, value)
	}
	return h
}

// HistogramVec registers a histogram family keyed by one label.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	v := &HistogramVec{name: name, label: label, buckets: buckets, series: map[string]*Histogram{}}
	r.register(name, help, "histogram", func(w io.Writer) {
		v.mu.Lock()
		order := make([]string, len(v.order))
		copy(order, v.order)
		v.mu.Unlock()
		sort.Strings(order)
		for _, value := range order {
			labels := fmt.Sprintf("%s=\"%s\",", label, escapeLabel(value))
			v.With(value).render(w, v.name, labels)
		}
	})
	return v
}

// atomicFloat accumulates float64 via CAS on the bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }
