package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// traceEpoch anchors the monotonic stage clock. time.Since on a base
// that carries a monotonic reading compiles down to a single monotonic
// clock read — roughly half the cost of time.Now, which also reads the
// wall clock. Stage spans only ever need durations, so they use this.
var traceEpoch = time.Now()

// monoNanos is the stage clock: monotonic nanoseconds since process
// start. One clock read, no wall-time component.
func monoNanos() int64 { return int64(time.Since(traceEpoch)) }

// Trace stages. A query's wall time decomposes into these fixed spans;
// StageExec covers the whole engine execution window and therefore
// overlaps StageUDF and StageWAL, which time sub-work inside it.
const (
	StageParse = iota // SQL → AST (plan-cache miss only)
	StageBind         // prepared-statement argument binding
	StageExec         // engine execution (vectorized kernels, includes udf/wal below)
	StageUDF          // user-defined function invocations
	StageWAL          // write-ahead log append + fsync
	StageWrite        // result frame serialization onto the socket
	numStages
)

// StageNames maps stage indices to their short names, in stage order.
var StageNames = [numStages]string{"parse", "bind", "exec", "udf", "wal", "write"}

// Trace accumulates per-stage durations for one query. It is written
// from the query's goroutine and from morsel workers (UDF spans), so
// the stage cells are atomic; everything else is set before the query
// starts or after it finishes.
type Trace struct {
	Query    string
	User     string
	Start    time.Time
	Rows     int64
	CacheHit bool
	Err      string

	stages [numStages]atomic.Int64 // nanoseconds per stage
}

// NewTrace starts a trace for one query.
func NewTrace(query, user string) *Trace {
	return &Trace{Query: query, User: user, Start: time.Now()}
}

// tracePool recycles traces on the per-query serving path, where a
// fresh allocation (plus the GC scan it later costs) is measurable
// against sub-microsecond statements.
var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// AcquireTrace returns a started trace from the pool. Pair with
// ReleaseTrace once the trace's data has been copied out (e.g. by
// QueryLog.Record); the trace must not be referenced afterwards.
func AcquireTrace(query, user string) *Trace {
	t := tracePool.Get().(*Trace)
	// Deriving the wall start from the epoch costs one monotonic read
	// instead of time.Now's two; Start still carries a monotonic
	// reading, so time.Since(Start) stays immune to wall-clock steps.
	t.Query, t.User, t.Start = query, user, traceEpoch.Add(time.Duration(monoNanos()))
	t.Rows, t.CacheHit, t.Err = 0, false, ""
	for i := range t.stages {
		t.stages[i].Store(0)
	}
	return t
}

// ReleaseTrace returns a trace to the pool. Safe on nil.
func ReleaseTrace(t *Trace) {
	if t != nil {
		tracePool.Put(t)
	}
}

// AddStage adds d to a stage's accumulated time. Safe on a nil trace.
func (t *Trace) AddStage(stage int, d time.Duration) {
	if t == nil {
		return
	}
	t.stages[stage].Add(int64(d))
}

// Stage returns the accumulated time in one stage. Safe on a nil trace.
func (t *Trace) Stage(stage int) time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.stages[stage].Load())
}

// StageTimer times one span of one stage. It is a value type so the
// nil-trace path allocates nothing: StartStage on a nil *Trace returns
// the zero StageTimer and Done on it is a no-op (and reads no clock).
type StageTimer struct {
	tr    *Trace
	stage int
	t0    int64 // monoNanos at span start
}

// StartStage begins timing a span of the given stage. Safe on nil.
func (t *Trace) StartStage(stage int) StageTimer {
	if t == nil {
		return StageTimer{}
	}
	return StageTimer{tr: t, stage: stage, t0: monoNanos()}
}

// Done ends the span and folds it into the trace.
func (s StageTimer) Done() {
	if s.tr == nil {
		return
	}
	s.tr.stages[s.stage].Add(monoNanos() - s.t0)
}

// traceKey is the context key for the active trace.
type traceKey struct{}

// WithTrace attaches a trace to ctx for downstream stages to find.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil — all trace
// methods are nil-safe, so callers never need to check.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
