package obs

import (
	"context"
	"testing"
	"time"
)

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	// None of these may panic; StartStage/Done must be no-ops.
	st := tr.StartStage(StageExec)
	st.Done()
	tr.AddStage(StageUDF, time.Millisecond)
	if tr.Stage(StageUDF) != 0 {
		t.Fatal("nil trace should report zero stage time")
	}
}

func TestStageAccumulation(t *testing.T) {
	tr := NewTrace("SELECT 1", "monetdb")
	tr.AddStage(StageParse, 2*time.Millisecond)
	tr.AddStage(StageParse, 3*time.Millisecond)
	tr.AddStage(StageWAL, time.Millisecond)
	if got := tr.Stage(StageParse); got != 5*time.Millisecond {
		t.Errorf("parse stage = %v, want 5ms", got)
	}
	if got := tr.Stage(StageWAL); got != time.Millisecond {
		t.Errorf("wal stage = %v, want 1ms", got)
	}
	if got := tr.Stage(StageExec); got != 0 {
		t.Errorf("exec stage = %v, want 0", got)
	}
}

func TestStageTimerMeasures(t *testing.T) {
	tr := NewTrace("SELECT 1", "monetdb")
	st := tr.StartStage(StageExec)
	time.Sleep(5 * time.Millisecond)
	st.Done()
	if got := tr.Stage(StageExec); got < 2*time.Millisecond {
		t.Errorf("exec stage = %v, want at least ~5ms", got)
	}
}

func TestContextCarriage(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil {
		t.Fatal("empty context should yield nil trace")
	}
	tr := NewTrace("SELECT 1", "monetdb")
	ctx = WithTrace(ctx, tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace not carried through context")
	}
}

func TestStartStageNilTraceNoAlloc(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		st := tr.StartStage(StageUDF)
		st.Done()
	})
	if allocs != 0 {
		t.Errorf("nil-trace StageTimer allocates %v per op, want 0", allocs)
	}
}

func TestQueryLogRing(t *testing.T) {
	q := NewQueryLog(3)
	for i := 0; i < 5; i++ {
		tr := NewTrace("SELECT 1", "monetdb")
		tr.Rows = int64(i)
		tr.AddStage(StageExec, time.Duration(i)*time.Millisecond)
		q.Record(tr, int64(i)*int64(time.Millisecond))
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (ring capacity)", q.Len())
	}
	snap := q.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	// Oldest-first: entries 2, 3, 4 survive.
	for i, e := range snap {
		wantRows := int64(i + 2)
		if e.Rows != wantRows {
			t.Errorf("entry %d rows = %d, want %d", i, e.Rows, wantRows)
		}
		if e.Seq != wantRows+1 {
			t.Errorf("entry %d seq = %d, want %d", i, e.Seq, wantRows+1)
		}
		if e.StageNanos(StageExec) != wantRows*int64(time.Millisecond) {
			t.Errorf("entry %d exec nanos = %d", i, e.StageNanos(StageExec))
		}
	}
}

func TestQueryLogNilSafe(t *testing.T) {
	var q *QueryLog
	q.Record(NewTrace("x", "u"), 1) // must not panic
	if q.Snapshot() != nil {
		t.Fatal("nil log snapshot should be nil")
	}
	if q.Len() != 0 {
		t.Fatal("nil log len should be 0")
	}
	var live = NewQueryLog(2)
	live.Record(nil, 1) // nil trace ignored
	if live.Len() != 0 {
		t.Fatal("nil trace should not be recorded")
	}
}
