package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_active", "active things")
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total ops",
		"# TYPE test_ops_total counter",
		"test_ops_total 4",
		"# TYPE test_active gauge",
		"test_active 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_msgs_total", "messages by type", "type")
	v.With("query").Add(2)
	v.With("ping").Inc()
	v.With(`we"ird\`).Inc()

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `test_msgs_total{type="query"} 2`) {
		t.Errorf("missing query series:\n%s", out)
	}
	if !strings.Contains(out, `test_msgs_total{type="ping"} 1`) {
		t.Errorf("missing ping series:\n%s", out)
	}
	if !strings.Contains(out, `test_msgs_total{type="we\"ird\\"} 1`) {
		t.Errorf("missing escaped series:\n%s", out)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // bucket le=0.01
	h.Observe(0.05)  // le=0.1
	h.Observe(0.5)   // le=1
	h.Observe(5)     // +Inf

	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got := h.Sum(); got != 5.555 {
		t.Fatalf("Sum = %v, want 5.555", got)
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 2`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="+Inf"} 4`,
		`test_latency_seconds_sum 5.555`,
		`test_latency_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_udf_seconds", "udf latency", "runtime", []float64{0.1, 1})
	v.With("python").Observe(0.05)
	v.With("python").Observe(2)
	v.With("js").Observe(0.5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`test_udf_seconds_bucket{runtime="python",le="0.1"} 1`,
		`test_udf_seconds_bucket{runtime="python",le="+Inf"} 2`,
		`test_udf_seconds_count{runtime="python"} 2`,
		`test_udf_seconds_bucket{runtime="js",le="1"} 1`,
		`test_udf_seconds_count{runtime="js"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFuncInstruments(t *testing.T) {
	r := NewRegistry()
	hits := 41.0
	r.CounterFunc("test_hits_total", "cache hits", func() float64 { return hits })
	r.GaugeFunc("test_segments", "segment count", func() float64 { return 3 })
	hits++

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "test_hits_total 42") {
		t.Errorf("CounterFunc should read live value:\n%s", out)
	}
	if !strings.Contains(out, "test_segments 3") {
		t.Errorf("missing GaugeFunc sample:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric name")
		}
	}()
	r.Counter("dup_total", "second")
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "x")
	h := r.Histogram("race_seconds", "x", []float64{0.5})
	v := r.CounterVec("race_vec_total", "x", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.25)
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); got != 2000 {
		t.Errorf("histogram sum = %v, want 2000", got)
	}
	if v.With("a").Value() != 8000 {
		t.Errorf("vec counter = %d, want 8000", v.With("a").Value())
	}
}

func TestHandlerAndRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_ops_total", "ops").Add(9)
	h := r.Histogram("rt_lat_seconds", "lat", []float64{0.01, 0.1})
	h.Observe(0.05)
	r.CounterVec("rt_by_type_total", "by type", "type").With("q").Add(4)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	sc, err := ParseText(resp.Body)
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if got := sc.Value("rt_ops_total", nil); got != 9 {
		t.Errorf("rt_ops_total = %v, want 9", got)
	}
	if got := sc.Value("rt_by_type_total", map[string]string{"type": "q"}); got != 4 {
		t.Errorf("rt_by_type_total{type=q} = %v, want 4", got)
	}
	if sc.Types["rt_lat_seconds"] != "histogram" {
		t.Errorf("rt_lat_seconds type = %q, want histogram", sc.Types["rt_lat_seconds"])
	}
	buckets := sc.HistogramBuckets("rt_lat_seconds", nil)
	if len(buckets) != 3 {
		t.Fatalf("bucket count = %d, want 3 (incl +Inf)", len(buckets))
	}
	if buckets[0].Value != 0 || buckets[1].Value != 1 || buckets[2].Value != 1 {
		t.Errorf("cumulative buckets wrong: %+v", buckets)
	}
	if got := sc.Value("rt_lat_seconds_count", nil); got != 1 {
		t.Errorf("histogram _count = %v, want 1", got)
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{
		"name_only\n",
		"metric{le=\"0.1} 3\n",
		"metric 1 2 3\n",
		"metric{x=unquoted} 1\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) should fail", bad)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "x", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}
