package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample: a metric name, its sorted
// label pairs, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is the parsed form of one exposition payload, used by the
// round-trip tests and the CI scrape smoke.
type Scrape struct {
	Types   map[string]string // family name → counter|gauge|histogram
	Samples []Sample
}

// Get returns the first sample with the given name whose labels are a
// superset of want (nil want matches any labels).
func (s *Scrape) Get(name string, want map[string]string) (Sample, bool) {
	for _, sm := range s.Samples {
		if sm.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if sm.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return sm, true
		}
	}
	return Sample{}, false
}

// Value returns the value of the first matching sample, or 0.
func (s *Scrape) Value(name string, want map[string]string) float64 {
	sm, _ := s.Get(name, want)
	return sm.Value
}

// ParseText parses Prometheus text exposition format (the subset this
// package emits: HELP/TYPE comments, samples with optional labels, no
// timestamps). It exists so tests can round-trip the endpoint instead
// of grepping strings.
func ParseText(r io.Reader) (*Scrape, error) {
	sc := &Scrape{Types: map[string]string{}}
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for br.Scan() {
		lineNo++
		line := strings.TrimSpace(br.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				sc.Types[fields[2]] = fields[3]
			}
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %w", lineNo, err)
		}
		sc.Samples = append(sc.Samples, sample)
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	return sc, nil
}

func parseSample(line string) (Sample, error) {
	name := line
	labels := map[string]string{}
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return Sample{}, fmt.Errorf("unbalanced braces in %q", line)
		}
		var err error
		labels, err = parseLabels(line[i+1 : j])
		if err != nil {
			return Sample{}, err
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return Sample{}, fmt.Errorf("expected 'name value' in %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if name == "" || rest == "" {
		return Sample{}, fmt.Errorf("malformed sample %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return Sample{}, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return Sample{Name: name, Labels: labels, Value: v}, nil
}

func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair missing '=' in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label value for %s not quoted", key)
		}
		// Find the closing quote, honoring backslash escapes.
		val := strings.Builder{}
		i := 1
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value for %s", key)
		}
		out[key] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// HistogramBuckets returns the cumulative bucket counts of a histogram
// family (matching extra labels), keyed and sorted by upper bound.
// The +Inf bucket sorts last.
func (s *Scrape) HistogramBuckets(name string, want map[string]string) []Sample {
	var out []Sample
	for _, sm := range s.Samples {
		if sm.Name != name+"_bucket" {
			continue
		}
		match := true
		for k, v := range want {
			if sm.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			out = append(out, sm)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return bucketBound(out[i].Labels["le"]) < bucketBound(out[j].Labels["le"])
	})
	return out
}

func bucketBound(le string) float64 {
	if le == "+Inf" {
		return float64(1 << 62)
	}
	v, _ := strconv.ParseFloat(le, 64)
	return v
}
