package pyrt

import (
	"repro/internal/core"
	"repro/internal/script"
	"repro/internal/storage"
)

// ColumnToValue converts a column to the UDF-facing representation per
// MonetDB/Python's convention: arguments deriving from table data arrive
// as lists (isColumn true), constant expressions as bare scalars — even
// when the column holds a single row.
func ColumnToValue(col *storage.Column, isColumn bool) script.Value {
	if !isColumn {
		if col.Len() == 0 {
			return script.None
		}
		return CellToValue(col, 0)
	}
	items := make([]script.Value, col.Len())
	for i := range items {
		items[i] = CellToValue(col, i)
	}
	return script.NewList(items...)
}

// CellToValue converts row i of a column to a script value (NULL → None).
func CellToValue(col *storage.Column, i int) script.Value {
	if col.IsNull(i) {
		return script.None
	}
	switch col.Typ {
	case storage.TInt:
		return script.IntVal(col.Ints[i])
	case storage.TFloat:
		return script.FloatVal(col.Flts[i])
	case storage.TStr:
		return script.StrVal(col.Strs[i])
	case storage.TBool:
		return script.BoolVal(col.Bools[i])
	case storage.TBlob:
		return script.BytesVal(col.Blobs[i])
	default:
		return script.None
	}
}

// ValueToColumn converts a UDF result into a typed column: a sequence
// becomes the column's rows, anything else a single row. Cardinality
// validation (a scalar UDF over n rows must return n or 1 values) is the
// engine's job, not the conversion's.
func ValueToColumn(v script.Value, name string, typ storage.Type) (*storage.Column, error) {
	col := storage.NewColumn(name, typ)
	items, isSeq := sequenceItems(v)
	if !isSeq {
		if err := AppendScriptValue(col, v); err != nil {
			return nil, err
		}
		return col, nil
	}
	for _, it := range items {
		if err := AppendScriptValue(col, it); err != nil {
			return nil, err
		}
	}
	return col, nil
}

func sequenceItems(v script.Value) ([]script.Value, bool) {
	switch v := v.(type) {
	case *script.ListVal:
		return v.Items, true
	case *script.TupleVal:
		return v.Items, true
	case script.RangeVal:
		items := make([]script.Value, 0, v.Len())
		if v.Step != 0 {
			for i := v.Start; int64(len(items)) < v.Len(); i += v.Step {
				items = append(items, script.IntVal(i))
			}
		}
		return items, true
	default:
		return nil, false
	}
}

// AppendScriptValue appends one script value to a column with the
// interpreter's coercion rules (None → NULL, float → int truncation,
// anything → str).
func AppendScriptValue(col *storage.Column, v script.Value) error {
	if _, ok := v.(script.NoneVal); ok {
		col.AppendNull()
		return nil
	}
	switch col.Typ {
	case storage.TInt:
		if n, ok := script.AsInt(v); ok {
			col.AppendInt(n)
			return nil
		}
		if f, ok := v.(script.FloatVal); ok {
			col.AppendInt(int64(f))
			return nil
		}
	case storage.TFloat:
		if f, ok := script.AsFloat(v); ok {
			col.AppendFloat(f)
			return nil
		}
	case storage.TStr:
		if s, ok := v.(script.StrVal); ok {
			col.AppendStr(string(s))
			return nil
		}
		col.AppendStr(script.Str(v))
		return nil
	case storage.TBool:
		col.AppendBool(script.Truthy(v))
		return nil
	case storage.TBlob:
		switch v := v.(type) {
		case script.BytesVal:
			col.AppendBlob([]byte(v))
			return nil
		case script.StrVal:
			col.AppendBlob([]byte(v))
			return nil
		}
	}
	return core.Errorf(core.KindType,
		"cannot convert %s value to %s column", v.TypeName(), col.Typ)
}
