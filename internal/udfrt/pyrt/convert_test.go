package pyrt

import (
	"testing"

	"repro/internal/script"
	"repro/internal/storage"
)

// typedColumn builds a three-row column of each type with a NULL in the
// middle.
func typedColumn(t *testing.T, typ storage.Type) *storage.Column {
	t.Helper()
	col := storage.NewColumn("c", typ)
	appendSample := func(i int) {
		switch typ {
		case storage.TInt:
			col.AppendInt(int64(10 + i))
		case storage.TFloat:
			col.AppendFloat(1.5 * float64(i+1))
		case storage.TStr:
			col.AppendStr(string(rune('a' + i)))
		case storage.TBool:
			col.AppendBool(i%2 == 0)
		case storage.TBlob:
			col.AppendBlob([]byte{byte(i), byte(i + 1)})
		}
	}
	appendSample(0)
	col.AppendNull()
	appendSample(2)
	return col
}

// TestColumnValueRoundTrip drives every storage type through
// ColumnToValue → ValueToColumn and compares cell by cell, NULLs included.
func TestColumnValueRoundTrip(t *testing.T) {
	for _, typ := range []storage.Type{
		storage.TInt, storage.TFloat, storage.TStr, storage.TBool, storage.TBlob,
	} {
		t.Run(typ.String(), func(t *testing.T) {
			col := typedColumn(t, typ)
			v := ColumnToValue(col, true)
			if _, ok := v.(*script.ListVal); !ok {
				t.Fatalf("columnar conversion gave %T, want list", v)
			}
			back, err := ValueToColumn(v, "c", typ)
			if err != nil {
				t.Fatal(err)
			}
			if back.Len() != col.Len() {
				t.Fatalf("round trip length %d, want %d", back.Len(), col.Len())
			}
			for i := 0; i < col.Len(); i++ {
				if col.IsNull(i) != back.IsNull(i) {
					t.Fatalf("row %d null mismatch", i)
				}
				if col.IsNull(i) {
					continue
				}
				if col.FormatValue(i) != back.FormatValue(i) {
					t.Fatalf("row %d: %q != %q", i, col.FormatValue(i), back.FormatValue(i))
				}
				if typ == storage.TBlob && string(col.Blobs[i]) != string(back.Blobs[i]) {
					t.Fatalf("row %d blob mismatch", i)
				}
			}
		})
	}
}

// TestScalarConvention: non-columnar arguments become bare scalars, and an
// empty column becomes None rather than an empty list.
func TestScalarConvention(t *testing.T) {
	col := storage.NewColumn("c", storage.TInt)
	col.AppendInt(7)
	if v := ColumnToValue(col, false); v != script.IntVal(7) {
		t.Fatalf("scalar conversion gave %v", v)
	}
	empty := storage.NewColumn("c", storage.TInt)
	if v := ColumnToValue(empty, false); v != script.None {
		t.Fatalf("empty scalar conversion gave %v", v)
	}
}

// TestValueToColumnScalarAndRange: scalars become one-row columns; ranges
// expand like lists.
func TestValueToColumnScalarAndRange(t *testing.T) {
	col, err := ValueToColumn(script.IntVal(5), "r", storage.TInt)
	if err != nil || col.Len() != 1 || col.Ints[0] != 5 {
		t.Fatalf("%v %v", col, err)
	}
	col, err = ValueToColumn(script.RangeVal{Start: 0, Stop: 3, Step: 1}, "r", storage.TInt)
	if err != nil || col.Len() != 3 || col.Ints[2] != 2 {
		t.Fatalf("%v %v", col, err)
	}
}

// TestValueToColumnCoercions mirrors the interpreter's coercion rules:
// float → int truncation, anything → str, truthiness → bool.
func TestValueToColumnCoercions(t *testing.T) {
	col, err := ValueToColumn(script.FloatVal(2.9), "c", storage.TInt)
	if err != nil || col.Ints[0] != 2 {
		t.Fatalf("%v %v", col, err)
	}
	col, err = ValueToColumn(script.IntVal(3), "c", storage.TStr)
	if err != nil || col.Strs[0] != "3" {
		t.Fatalf("%v %v", col, err)
	}
	col, err = ValueToColumn(script.IntVal(0), "c", storage.TBool)
	if err != nil || col.Bools[0] != false {
		t.Fatalf("%v %v", col, err)
	}
	if _, err := ValueToColumn(script.NewDict(), "c", storage.TInt); err == nil {
		t.Fatal("dict → INTEGER must fail")
	}
}
