// Package pyrt is the PYTHON UDF runtime: stored function bodies execute in
// the embedded PyLite interpreter, whole columns crossing the boundary as
// lists (MonetDB/Python's model). It is the reference — and only
// debuggable — runtime: every call honors the Env.Invoke hook, which is
// where the in-server remote debugger and trace-based tooling attach.
package pyrt

import (
	"time"

	"repro/internal/core"
	"repro/internal/script"
	"repro/internal/storage"
	"repro/internal/transform"
	"repro/internal/udfrt"
)

// Name is the LANGUAGE keyword this runtime serves.
const Name = "PYTHON"

func init() { udfrt.Register(New()) }

// Runtime is the PYTHON runtime singleton.
type Runtime struct{}

// New returns the PYTHON runtime.
func New() *Runtime { return &Runtime{} }

// Name implements udfrt.Runtime.
func (*Runtime) Name() string { return Name }

// Debuggable implements udfrt.Debuggable: PyLite callables run under the
// interpreter trace hook.
func (*Runtime) Debuggable() bool { return true }

// Compile wraps the stored body into a callable function definition
// (MonetDB stores only the body — paper Listing 1) and parses it.
func (*Runtime) Compile(def *storage.FuncDef) (udfrt.Callable, error) {
	src := transform.WrapFunction(def.Name, def.Params.Names(), def.Body)
	mod, err := script.Parse(def.Name, src)
	if err != nil {
		return nil, core.Errorf(core.KindSyntax, "in UDF %s: %v", def.Name, errText(err))
	}
	return &callable{def: def, mod: mod}, nil
}

func errText(err error) string {
	if ce, ok := err.(*core.Error); ok {
		return ce.Msg
	}
	return err.Error()
}

// callable is one compiled PYTHON UDF: the parsed wrapper module, whose
// source lines feed the debugger.
type callable struct {
	def *storage.FuncDef
	mod *script.Module
}

// instance is a prepared interpreter with the UDF bound — memoized on the
// Env so a tuple-at-a-time row loop reuses one interpreter while batch
// calls (one Env each) stay isolated.
type instance struct {
	in *script.Interp
	fn script.Value
}

func (c *callable) prepare(env *udfrt.Env) (*instance, error) {
	v, err := env.Memo(c, func() (any, error) {
		in := script.NewInterp()
		in.FS = env.FS
		in.MaxSteps = env.MaxSteps
		in.Stdout = env.Out()
		genv, err := in.Run(c.mod)
		if err != nil {
			return nil, udfrt.WrapErr(c.def.Name, err)
		}
		fn, ok := genv.Get(c.def.Name)
		if !ok {
			return nil, core.Errorf(core.KindRuntime, "UDF %s did not define itself", c.def.Name)
		}
		if env.Loopback != nil {
			genv.Set("_conn", env.Loopback(in))
		}
		return &instance{in: in, fn: fn}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*instance), nil
}

// Call implements udfrt.Callable: convert the batch to interpreter values,
// invoke (through the Env.Invoke debug hook when installed), convert back.
func (c *callable) Call(env *udfrt.Env, in *udfrt.Batch) (*udfrt.Batch, error) {
	inst, err := c.prepare(env)
	if err != nil {
		return nil, err
	}
	// Arm the interpreter's step-poll interrupt for this invocation:
	// statement cancellation plus a fresh MaxWall deadline. Re-set on
	// every call because the memoized instance outlives a tuple-at-a-time
	// row loop while the wall budget is per invocation.
	inst.in.Interrupt = env.InterruptFor(c.def.Name, time.Now())
	args := make([]script.Value, len(in.Cols))
	for i, col := range in.Cols {
		args[i] = ColumnToValue(col, in.Columnar(i))
	}
	call := func() (script.Value, error) { return inst.in.Call(inst.fn, args) }
	var out script.Value
	if env.Invoke != nil {
		out, err = env.Invoke(c.def.Name, inst.in, c.mod.Lines, call)
	} else {
		out, err = call()
	}
	if err != nil {
		return nil, udfrt.WrapErr(c.def.Name, err)
	}
	if c.def.IsTable {
		return c.tableResult(out)
	}
	col, err := ValueToColumn(out, c.def.Returns[0].Name, c.def.Returns[0].Type)
	if err != nil {
		return nil, err
	}
	return &udfrt.Batch{Cols: []*storage.Column{col}, Rows: col.Len()}, nil
}

// tableResult converts a table UDF's return value — a dict keyed by column
// name, a positional tuple, a bare list (single column) or a scalar (single
// row) — into a batch matching the declared schema. Column lengths may
// still differ; the engine broadcasts.
func (c *callable) tableResult(v script.Value) (*udfrt.Batch, error) {
	def := c.def
	out := &udfrt.Batch{}
	switch v := v.(type) {
	case *script.DictVal:
		for _, ret := range def.Returns {
			cell, ok := v.GetStr(ret.Name)
			if !ok {
				return nil, core.Errorf(core.KindConstraint,
					"UDF %s result is missing column %q", def.Name, ret.Name)
			}
			col, err := ValueToColumn(cell, ret.Name, ret.Type)
			if err != nil {
				return nil, err
			}
			out.Cols = append(out.Cols, col)
		}
	case *script.TupleVal:
		if len(v.Items) != len(def.Returns) {
			return nil, core.Errorf(core.KindConstraint,
				"UDF %s returned %d columns, declared %d", def.Name, len(v.Items), len(def.Returns))
		}
		for i, ret := range def.Returns {
			col, err := ValueToColumn(v.Items[i], ret.Name, ret.Type)
			if err != nil {
				return nil, err
			}
			out.Cols = append(out.Cols, col)
		}
	default:
		if len(def.Returns) != 1 {
			return nil, core.Errorf(core.KindConstraint,
				"UDF %s must return a dict or tuple of %d columns", def.Name, len(def.Returns))
		}
		col, err := ValueToColumn(v, def.Returns[0].Name, def.Returns[0].Type)
		if err != nil {
			return nil, err
		}
		out.Cols = append(out.Cols, col)
	}
	for _, col := range out.Cols {
		if col.Len() > out.Rows {
			out.Rows = col.Len()
		}
	}
	return out, nil
}
