// Package udfrt defines the engine↔UDF runtime contract: a columnar Batch
// as the unit of exchange, a Runtime that compiles stored function
// definitions into Callables, and a registry keyed by the CREATE FUNCTION
// LANGUAGE clause. The engine, devudf's local runner and the debugger all
// dispatch through this one seam, so adding a UDF language is a matter of
// registering a Runtime — the extension-point design the paper's IDE
// integration presumes the engine exposes.
package udfrt

import (
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/script"
	"repro/internal/storage"
)

// Batch is a columnar slice of rows crossing the engine↔runtime boundary.
// Each argument (or result) is one whole column; Rows is the logical row
// count — an input column either has Rows rows or one row (a constant to
// broadcast). IsColumn records, per argument, MonetDB/Python's calling
// convention: arguments deriving from table data arrive in the UDF as
// arrays, constant expressions as bare scalars, regardless of how many rows
// the column happens to hold. Result batches leave IsColumn nil.
type Batch struct {
	Cols     []*storage.Column
	Rows     int
	IsColumn []bool
}

// NewBatch builds an input batch over argument columns; Rows is the longest
// column length.
func NewBatch(cols []*storage.Column, isColumn []bool) *Batch {
	rows := 0
	for _, c := range cols {
		if c.Len() > rows {
			rows = c.Len()
		}
	}
	return &Batch{Cols: cols, Rows: rows, IsColumn: isColumn}
}

// Columnar reports the calling convention of argument i (false when the
// batch carries no flags).
func (b *Batch) Columnar(i int) bool {
	return i < len(b.IsColumn) && b.IsColumn[i]
}

// Slice returns a view batch of rows [lo, hi): full-length columnar
// arguments are sliced (aliasing the originals — read-only), length-1
// constants pass through whole. The engine's morsel-parallel scalar-UDF
// dispatch splits batches with it.
func (b *Batch) Slice(lo, hi int) *Batch {
	cols := make([]*storage.Column, len(b.Cols))
	for i, c := range b.Cols {
		if c.Len() == b.Rows {
			cols[i] = c.Slice(lo, hi)
		} else {
			cols[i] = c
		}
	}
	return &Batch{Cols: cols, Rows: hi - lo, IsColumn: b.IsColumn}
}

// Row extracts a one-row input batch for row r, with every argument demoted
// to the scalar calling convention — the tuple-at-a-time shape. Length-1
// columns broadcast.
func (b *Batch) Row(r int) *Batch {
	cols := make([]*storage.Column, len(b.Cols))
	for i, c := range b.Cols {
		ri := r
		if c.Len() == 1 {
			ri = 0
		}
		cols[i] = c.Gather([]int{ri})
	}
	return &Batch{Cols: cols, Rows: 1, IsColumn: make([]bool, len(cols))}
}

// Runtime is one UDF execution backend, registered under the LANGUAGE name
// it serves.
type Runtime interface {
	// Name is the canonical (upper-case) LANGUAGE keyword.
	Name() string
	// Compile turns a stored definition into an executable. Compilation
	// errors carry the UDF name.
	Compile(def *storage.FuncDef) (Callable, error)
}

// Callable is one compiled UDF. Call executes it over an input batch and
// returns the result batch: one column for scalar functions, the declared
// columns for table functions. Runtime errors carry the UDF name; the
// engine validates result cardinality.
type Callable interface {
	Call(env *Env, in *Batch) (*Batch, error)
}

// Debuggable marks runtimes whose callables execute in the embedded script
// interpreter and therefore honor the Env.Invoke trace hook — the seam both
// the in-server remote debugger and devudf's local debug sessions attach
// to. Runtimes that run native code (GO) do not implement it.
type Debuggable interface {
	Runtime
	// Debuggable reports whether compiled callables can run under an
	// interpreter trace hook.
	Debuggable() bool
}

// IsDebuggable reports whether a runtime supports interpreter-level
// debugging.
func IsDebuggable(rt Runtime) bool {
	d, ok := rt.(Debuggable)
	return ok && d.Debuggable()
}

// ParallelSafe marks callables the engine may invoke concurrently over
// disjoint morsels of one batch, sharing a single Env: the callable must
// not mutate the Env or any argument column, and its function must be
// pure enough that splitting a batch preserves its result (true for the
// native GO runtime's registered functions, false for interpreter-backed
// runtimes, whose interpreter state is single-threaded).
type ParallelSafe interface {
	// ParallelSafe reports whether concurrent morsel invocation is safe.
	ParallelSafe() bool
}

// InvokeHook intercepts one interpreter-backed UDF invocation: it receives
// the UDF's name, the interpreter about to run it, the source lines of the
// compiled wrapper module, and the call thunk, and must return the thunk's
// result (calling it exactly once, on any goroutine). The wire server's
// remote debugger installs one to run the invocation under its trace hook.
type InvokeHook func(name string, in *script.Interp, lines []string,
	call func() (script.Value, error)) (script.Value, error)

// Env is the per-statement invocation environment the engine (or a local
// runner) hands to Callable.Call. One Env spans all row calls of a
// tuple-at-a-time loop, so callables may memoize prepared state in it.
type Env struct {
	// FS backs UDF file access (os.listdir / open); nil means no file
	// system.
	FS core.FS
	// MaxSteps bounds interpreter steps per invocation (0 = unlimited).
	MaxSteps int64
	// MaxWall bounds one invocation's wall clock (0 = unlimited) — the
	// cross-runtime generalization of MaxSteps. Interpreter-backed
	// runtimes abort mid-run via their step-poll hook; native runtimes
	// cannot be preempted, so the engine checks the elapsed time after
	// the call returns.
	MaxWall time.Duration
	// Interrupt, when set, reports a non-nil typed error once the
	// invoking statement has been cancelled. Interpreter-backed runtimes
	// poll it between steps so a cancelled query preempts a long-running
	// UDF; native runtimes may check it between rows if they choose.
	Interrupt func() error
	// Stdout receives print() output; nil discards it.
	Stdout io.Writer
	// Loopback, when set, builds the _conn object bound to the invoking
	// interpreter (paper §2.3). Interpreter-less runtimes ignore it.
	Loopback func(in *script.Interp) script.Value
	// Invoke, when set, intercepts interpreter-backed invocations (the
	// remote debugger's entry point). Native runtimes ignore it.
	Invoke InvokeHook

	memo map[any]any
}

// Memo returns the value built for key on this Env, constructing it once —
// how the PYTHON runtime reuses one prepared interpreter across a
// tuple-at-a-time row loop while batch calls (one Env each) stay isolated.
func (e *Env) Memo(key any, build func() (any, error)) (any, error) {
	if v, ok := e.memo[key]; ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	if e.memo == nil {
		e.memo = map[any]any{}
	}
	e.memo[key] = v
	return v, nil
}

// InterruptFor builds the per-invocation interrupt poll for the named
// UDF: the Env's cancellation hook combined with a MaxWall deadline
// starting at start. Nil when neither is armed, so unguarded invocations
// install nothing.
func (e *Env) InterruptFor(name string, start time.Time) func() error {
	if e.Interrupt == nil && e.MaxWall <= 0 {
		return nil
	}
	cancel, bud := e.Interrupt, e.MaxWall
	var deadline time.Time
	if bud > 0 {
		deadline = start.Add(bud)
	}
	return func() error {
		if cancel != nil {
			if err := cancel(); err != nil {
				return err
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return core.Errorf(core.KindResource,
				"UDF %s exceeded the wall-clock budget (%v)", name, bud)
		}
		return nil
	}
}

// Out returns the Env's stdout, defaulting to io.Discard.
func (e *Env) Out() io.Writer {
	if e.Stdout != nil {
		return e.Stdout
	}
	return io.Discard
}

// WrapErr gives a runtime failure its UDF name context; errors already
// wrapped for this same UDF pass through unchanged (nested UDF failures
// keep their own name and gain the caller's).
func WrapErr(name string, err error) error {
	if err == nil {
		return nil
	}
	// Cancellation and budget errors keep their typed kind: the wire
	// protocol and the client retry logic classify on it, and "UDF x
	// failed" would misattribute an engine-initiated abort to user code.
	switch core.KindOf(err) {
	case core.KindCancelled, core.KindResource:
		return err
	}
	msg := err.Error()
	if ce, ok := err.(*core.Error); ok {
		msg = ce.Msg
	}
	if strings.HasPrefix(msg, "UDF "+name+" ") {
		return err
	}
	return core.Errorf(core.KindRuntime, "UDF %s failed: %s", name, msg)
}
