package udfrt

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// DefaultLanguage is assumed when a stored definition carries no LANGUAGE
// (historic catalogs predating the registry).
const DefaultLanguage = "PYTHON"

// Canonical normalizes a LANGUAGE clause for display and comparison: upper
// case, "" mapping to the default. Every layer that prints or compares
// languages goes through this one rule.
func Canonical(language string) string {
	if language == "" {
		return DefaultLanguage
	}
	return strings.ToUpper(language)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Runtime{}
)

// Register installs a runtime under its Name. Later registrations replace
// earlier ones, so tests can shadow a runtime.
func Register(rt Runtime) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[strings.ToUpper(rt.Name())] = rt
}

// Lookup resolves the runtime serving a LANGUAGE clause ("" defaults to
// PYTHON). The error names the registered alternatives so a typo'd CREATE
// FUNCTION is self-explaining.
func Lookup(language string) (Runtime, error) {
	if language == "" {
		language = DefaultLanguage
	}
	regMu.RLock()
	rt, ok := registry[strings.ToUpper(language)]
	regMu.RUnlock()
	if !ok {
		return nil, core.Errorf(core.KindConstraint,
			"no runtime registered for language %q (have %s)",
			language, strings.Join(Languages(), ", "))
	}
	return rt, nil
}

// Languages lists the registered LANGUAGE names, sorted.
func Languages() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LanguageDebuggable reports whether the runtime registered for a language
// supports interpreter-level debugging (false for unknown languages).
func LanguageDebuggable(language string) bool {
	rt, err := Lookup(language)
	return err == nil && IsDebuggable(rt)
}
