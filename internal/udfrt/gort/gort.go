// Package gort is the native GO UDF runtime: embedders register typed Go
// functions in a process-wide table and expose them as UDFs with CREATE
// FUNCTION ... LANGUAGE GO (or DB.RegisterGoUDF, which also writes the
// catalog entry). Calls bind argument columns to the function's slice
// parameters by reflection — the fast path hands the engine's column
// vectors to the function directly, with zero interpreter boxing.
//
// Supported parameter and result types per SQL type:
//
//	INTEGER → int64 / []int64
//	DOUBLE  → float64 / []float64
//	STRING  → string / []string
//	BOOLEAN → bool / []bool
//	BLOB    → []byte / [][]byte
//
// A slice parameter receives the whole column (length-1 inputs broadcast to
// the batch's row count); a scalar parameter receives the argument's first
// value — the shape for constant arguments. Results mirror the declared
// RETURNS: one value per column, slices for whole columns, scalars for
// single-row results, plus an optional trailing error. NULL inputs arrive
// as Go zero values (the validity bitmap does not cross the boundary), and
// native results never contain NULLs.
//
// CONTRACT — argument slices are READ-ONLY. The zero-copy fast path may
// hand a function the engine's own storage vectors (a column reference
// passes the stored table's backing slice); mutating one in place corrupts
// the table for every later query. Always allocate fresh slices for
// results, never write into an argument.
package gort

import (
	"fmt"
	"reflect"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/udfrt"
)

// Name is the LANGUAGE keyword this runtime serves.
const Name = "GO"

func init() { udfrt.Register(New()) }

// Runtime is the GO runtime singleton.
type Runtime struct{}

// New returns the GO runtime.
func New() *Runtime { return &Runtime{} }

// Name implements udfrt.Runtime.
func (*Runtime) Name() string { return Name }

// ---- the process-wide function table ----

// regEntry is one registered function plus its declared execution
// contract.
type regEntry struct {
	fn reflect.Value
	// elementwise declares that row i of the result depends only on row
	// i of the arguments and that the function is safe to call from
	// multiple goroutines — the engine may then split a batch into
	// morsels and run them concurrently.
	elementwise bool
}

var (
	mu    sync.RWMutex
	funcs = map[string]regEntry{}
)

// Register installs fn under name (case-insensitive), validating its
// signature. Re-registering a name replaces the previous function. The
// function keeps whole-batch semantics: every call receives the full
// column, so batch-dependent implementations (prefix sums, stateful
// closures) stay correct. Declare element-wise purity with
// RegisterElementwise to let the engine morsel-parallelize calls.
func Register(name string, fn any) error {
	return registerFn(name, fn, false)
}

// RegisterElementwise installs fn like Register and additionally
// declares it element-wise and concurrency-safe: row i of the result
// depends only on row i of the arguments, and the function may be
// invoked from several goroutines at once over disjoint morsels of one
// batch. Aggregate-style results (one value for the whole batch) are
// still detected at call time and re-run as a single whole-batch call.
func RegisterElementwise(name string, fn any) error {
	return registerFn(name, fn, true)
}

func registerFn(name string, fn any, elementwise bool) error {
	v := reflect.ValueOf(fn)
	if !v.IsValid() || v.Kind() != reflect.Func {
		return core.Errorf(core.KindType, "Go UDF %s: not a function (%T)", name, fn)
	}
	if _, _, err := signatureSchemas(v.Type()); err != nil {
		return core.Wrapf(core.KindType, err, "Go UDF %s: %v", name, err)
	}
	mu.Lock()
	funcs[strings.ToLower(name)] = regEntry{fn: v, elementwise: elementwise}
	mu.Unlock()
	return nil
}

// Unregister removes a registered function (tests).
func Unregister(name string) {
	mu.Lock()
	delete(funcs, strings.ToLower(name))
	mu.Unlock()
}

// Registered reports whether a Go function is registered under name.
func Registered(name string) bool {
	mu.RLock()
	_, ok := funcs[strings.ToLower(name)]
	mu.RUnlock()
	return ok
}

func lookup(name string) (reflect.Value, bool) {
	e, ok := lookupEntry(name)
	return e.fn, ok
}

func lookupEntry(name string) (regEntry, bool) {
	mu.RLock()
	e, ok := funcs[strings.ToLower(name)]
	mu.RUnlock()
	return e, ok
}

// InferDef builds the catalog definition a registered function implements:
// parameter and result SQL types from the reflected signature, IsTable when
// the function returns more than one column. Parameter names are arg1..argN
// and result names col1..colN ("result" for scalars) — SQL-side CREATE
// FUNCTION can declare friendlier ones.
func InferDef(name string, fn any) (*storage.FuncDef, error) {
	v := reflect.ValueOf(fn)
	if !v.IsValid() || v.Kind() != reflect.Func {
		return nil, core.Errorf(core.KindType, "Go UDF %s: not a function (%T)", name, fn)
	}
	params, returns, err := signatureSchemas(v.Type())
	if err != nil {
		return nil, core.Wrapf(core.KindType, err, "Go UDF %s: %v", name, err)
	}
	return &storage.FuncDef{
		Name:     name,
		Params:   params,
		Returns:  returns,
		Language: Name,
		IsTable:  len(returns) > 1,
	}, nil
}

// signatureSchemas validates a function type and derives parameter/result
// schemas with placeholder names.
func signatureSchemas(t reflect.Type) (params, returns storage.Schema, err error) {
	if t.IsVariadic() {
		return nil, nil, fmt.Errorf("variadic functions are not supported")
	}
	for i := 0; i < t.NumIn(); i++ {
		st, _, err := sqlType(t.In(i))
		if err != nil {
			return nil, nil, fmt.Errorf("parameter %d: %w", i+1, err)
		}
		params = append(params, storage.ColumnDef{Name: fmt.Sprintf("arg%d", i+1), Type: st})
	}
	nOut := t.NumOut()
	if nOut > 0 && t.Out(nOut-1) == errType {
		nOut--
	}
	if nOut == 0 {
		return nil, nil, fmt.Errorf("must return at least one value")
	}
	for i := 0; i < nOut; i++ {
		st, _, err := sqlType(t.Out(i))
		if err != nil {
			return nil, nil, fmt.Errorf("result %d: %w", i+1, err)
		}
		name := fmt.Sprintf("col%d", i+1)
		if nOut == 1 {
			name = "result"
		}
		returns = append(returns, storage.ColumnDef{Name: name, Type: st})
	}
	return params, returns, nil
}

var errType = reflect.TypeOf((*error)(nil)).Elem()

// sqlType maps a Go parameter/result type to its storage type, reporting
// whether it is the whole-column (slice) form.
func sqlType(t reflect.Type) (storage.Type, bool, error) {
	switch t {
	case reflect.TypeOf(int64(0)):
		return storage.TInt, false, nil
	case reflect.TypeOf(float64(0)):
		return storage.TFloat, false, nil
	case reflect.TypeOf(""):
		return storage.TStr, false, nil
	case reflect.TypeOf(false):
		return storage.TBool, false, nil
	case reflect.TypeOf([]byte(nil)):
		return storage.TBlob, false, nil
	case reflect.TypeOf([]int64(nil)):
		return storage.TInt, true, nil
	case reflect.TypeOf([]float64(nil)):
		return storage.TFloat, true, nil
	case reflect.TypeOf([]string(nil)):
		return storage.TStr, true, nil
	case reflect.TypeOf([]bool(nil)):
		return storage.TBool, true, nil
	case reflect.TypeOf([][]byte(nil)):
		return storage.TBlob, true, nil
	}
	return 0, false, fmt.Errorf("unsupported Go UDF type %s", t)
}

// Compile implements udfrt.Runtime: resolve the registered function (the
// body names the Go symbol; an empty body defaults to the function's own
// name) and check it against the declared signature. The callable re-reads
// the table at call time, so re-registering a symbol with the same
// signature swaps the implementation without re-creating the function.
func (*Runtime) Compile(def *storage.FuncDef) (udfrt.Callable, error) {
	symbol := strings.TrimSpace(def.Body)
	if symbol == "" {
		symbol = def.Name
	}
	fn, ok := lookup(symbol)
	if !ok {
		return nil, core.Errorf(core.KindName,
			"UDF %s: no Go function registered as %q (register it with RegisterGoUDF before CREATE FUNCTION ... LANGUAGE GO)",
			def.Name, symbol)
	}
	t := fn.Type()
	if t.NumIn() != len(def.Params) {
		return nil, core.Errorf(core.KindType,
			"UDF %s: Go function %q takes %d argument(s), declaration has %d",
			def.Name, symbol, t.NumIn(), len(def.Params))
	}
	c := &callable{def: def, symbol: symbol, typ: t}
	for i, p := range def.Params {
		st, isSlice, err := sqlType(t.In(i))
		if err != nil || st != p.Type {
			return nil, core.Errorf(core.KindType,
				"UDF %s: parameter %s is declared %s but the Go function takes %s",
				def.Name, p.Name, p.Type, t.In(i))
		}
		c.sliceIn = append(c.sliceIn, isSlice)
	}
	nOut := t.NumOut()
	if nOut > 0 && t.Out(nOut-1) == errType {
		c.hasErr = true
		nOut--
	}
	if nOut != len(def.Returns) {
		return nil, core.Errorf(core.KindType,
			"UDF %s: Go function %q returns %d column(s), declaration has %d",
			def.Name, symbol, nOut, len(def.Returns))
	}
	for i, r := range def.Returns {
		st, isSlice, err := sqlType(t.Out(i))
		if err != nil || st != r.Type {
			return nil, core.Errorf(core.KindType,
				"UDF %s: result %s is declared %s but the Go function returns %s",
				def.Name, r.Name, r.Type, t.Out(i))
		}
		c.sliceOut = append(c.sliceOut, isSlice)
	}
	return c, nil
}

// ParallelSafe implements udfrt.ParallelSafe: only functions installed
// with RegisterElementwise opt in — they have declared row-i-depends-
// only-on-row-i purity and goroutine safety, so the engine may invoke
// the callable concurrently over disjoint morsels of a batch. Plain
// Register keeps whole-batch semantics (batch-dependent implementations
// like prefix sums stay correct, and no concurrency is imposed). The
// flag is read from the live table, so re-registering under a different
// contract takes effect immediately.
func (c *callable) ParallelSafe() bool {
	e, ok := lookupEntry(c.symbol)
	return ok && e.elementwise
}

// callable is one compiled GO UDF: the validated signature plus the symbol
// it resolves at every call.
type callable struct {
	def      *storage.FuncDef
	symbol   string
	typ      reflect.Type // the signature the declaration was checked against
	sliceIn  []bool
	sliceOut []bool
	hasErr   bool
}

// Call implements udfrt.Callable: bind columns to typed arguments, call the
// function (panics become errors so a buggy UDF cannot take the server
// down), convert typed results back to columns. The symbol resolves against
// the live table so a re-registered implementation takes effect
// immediately; a signature change, however, requires re-creating the
// function.
func (c *callable) Call(_ *udfrt.Env, in *udfrt.Batch) (out *udfrt.Batch, err error) {
	fn, ok := lookup(c.symbol)
	if !ok {
		return nil, core.Errorf(core.KindName,
			"UDF %s: Go function %q is no longer registered", c.def.Name, c.symbol)
	}
	if fn.Type() != c.typ {
		return nil, core.Errorf(core.KindType,
			"UDF %s: Go function %q was re-registered with a different signature; re-create the function",
			c.def.Name, c.symbol)
	}
	args := make([]reflect.Value, len(in.Cols))
	for i, col := range in.Cols {
		a, err := c.bindArg(i, col, in.Columnar(i), in.Rows)
		if err != nil {
			return nil, err
		}
		args[i] = a
	}
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, core.Errorf(core.KindRuntime, "UDF %s failed: panic: %v", c.def.Name, r)
		}
	}()
	rets := fn.Call(args)
	if c.hasErr {
		if e, _ := rets[len(rets)-1].Interface().(error); e != nil {
			return nil, udfrt.WrapErr(c.def.Name, e)
		}
		rets = rets[:len(rets)-1]
	}
	out = &udfrt.Batch{}
	for i, r := range c.def.Returns {
		col := colFromValue(r.Name, r.Type, rets[i], c.sliceOut[i])
		out.Cols = append(out.Cols, col)
		if col.Len() > out.Rows {
			out.Rows = col.Len()
		}
	}
	return out, nil
}

// bindArg produces the reflect argument for column i: the column's vector
// for slice parameters (length-1 broadcast to rows), its first value for
// scalar parameters. A multi-row columnar argument refuses to bind to a
// scalar parameter — truncating to row 0 would silently drop data.
func (c *callable) bindArg(i int, col *storage.Column, columnar bool, rows int) (reflect.Value, error) {
	if !c.sliceIn[i] {
		if col.Len() == 0 {
			return reflect.Value{}, core.Errorf(core.KindConstraint,
				"UDF %s: argument %d is empty", c.def.Name, i+1)
		}
		if columnar && col.Len() > 1 {
			return reflect.Value{}, core.Errorf(core.KindType,
				"UDF %s: argument %d is a %d-row column but the Go function takes a scalar — declare a slice parameter to receive whole columns",
				c.def.Name, i+1, col.Len())
		}
		return reflect.ValueOf(scalarAt(col, 0)), nil
	}
	if col.Len() == 1 && rows != 1 {
		return reflect.ValueOf(broadcastSlice(col, rows)), nil
	}
	if col.Len() != rows {
		return reflect.Value{}, core.Errorf(core.KindConstraint,
			"UDF %s: argument %d has %d rows, batch has %d", c.def.Name, i+1, col.Len(), rows)
	}
	return reflect.ValueOf(colSlice(col)), nil
}

// colSlice hands out the column's backing vector — the zero-copy fast path.
func colSlice(col *storage.Column) any {
	switch col.Typ {
	case storage.TInt:
		return col.Ints
	case storage.TFloat:
		return col.Flts
	case storage.TStr:
		return col.Strs
	case storage.TBool:
		return col.Bools
	default:
		return col.Blobs
	}
}

func scalarAt(col *storage.Column, i int) any {
	switch col.Typ {
	case storage.TInt:
		return col.Ints[i]
	case storage.TFloat:
		return col.Flts[i]
	case storage.TStr:
		return col.Strs[i]
	case storage.TBool:
		return col.Bools[i]
	default:
		return col.Blobs[i]
	}
}

// broadcastSlice materializes a length-1 column as a rows-long vector.
func broadcastSlice(col *storage.Column, rows int) any {
	switch col.Typ {
	case storage.TInt:
		out := make([]int64, rows)
		for i := range out {
			out[i] = col.Ints[0]
		}
		return out
	case storage.TFloat:
		out := make([]float64, rows)
		for i := range out {
			out[i] = col.Flts[0]
		}
		return out
	case storage.TStr:
		out := make([]string, rows)
		for i := range out {
			out[i] = col.Strs[0]
		}
		return out
	case storage.TBool:
		out := make([]bool, rows)
		for i := range out {
			out[i] = col.Bools[0]
		}
		return out
	default:
		out := make([][]byte, rows)
		for i := range out {
			out[i] = col.Blobs[0]
		}
		return out
	}
}

// colFromValue wraps a typed result in a column, aliasing result slices
// without copying.
func colFromValue(name string, typ storage.Type, v reflect.Value, isSlice bool) *storage.Column {
	col := storage.NewColumn(name, typ)
	if !isSlice {
		appendScalar(col, typ, v.Interface())
		return col
	}
	switch typ {
	case storage.TInt:
		col.Ints = v.Interface().([]int64)
	case storage.TFloat:
		col.Flts = v.Interface().([]float64)
	case storage.TStr:
		col.Strs = v.Interface().([]string)
	case storage.TBool:
		col.Bools = v.Interface().([]bool)
	case storage.TBlob:
		col.Blobs = v.Interface().([][]byte)
	}
	return col
}

func appendScalar(col *storage.Column, typ storage.Type, v any) {
	switch typ {
	case storage.TInt:
		col.AppendInt(v.(int64))
	case storage.TFloat:
		col.AppendFloat(v.(float64))
	case storage.TStr:
		col.AppendStr(v.(string))
	case storage.TBool:
		col.AppendBool(v.(bool))
	case storage.TBlob:
		col.AppendBlob(v.([]byte))
	}
}
