package gort

import (
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/udfrt"
)

func register(t *testing.T, name string, fn any) {
	t.Helper()
	if err := Register(name, fn); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { Unregister(name) })
}

func scalarDef(name string, params int) *storage.FuncDef {
	def := &storage.FuncDef{
		Name:     name,
		Language: Name,
		Returns:  storage.Schema{{Name: "result", Type: storage.TFloat}},
	}
	for i := 0; i < params; i++ {
		def.Params = append(def.Params, storage.ColumnDef{
			Name: string(rune('a' + i)), Type: storage.TFloat})
	}
	return def
}

func floatCol(name string, vals ...float64) *storage.Column {
	c := storage.NewColumn(name, storage.TFloat)
	for _, v := range vals {
		c.AppendFloat(v)
	}
	return c
}

func TestRegisterValidatesSignature(t *testing.T) {
	if err := Register("notafunc", 42); err == nil {
		t.Fatal("non-function must be rejected")
	}
	if err := Register("badparam", func(x []int32) []int32 { return x }); err == nil {
		t.Fatal("unsupported parameter type must be rejected")
	}
	if err := Register("noresult", func(x []int64) {}); err == nil {
		t.Fatal("zero-result function must be rejected")
	}
	if err := Register("variadic", func(x ...[]int64) []int64 { return nil }); err == nil {
		t.Fatal("variadic function must be rejected")
	}
}

func TestInferDef(t *testing.T) {
	fn := func(a []float64, n int64) ([]float64, []int64) { return a, nil }
	def, err := InferDef("pairup", fn)
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Params) != 2 || def.Params[0].Type != storage.TFloat || def.Params[1].Type != storage.TInt {
		t.Fatalf("params: %+v", def.Params)
	}
	if !def.IsTable || len(def.Returns) != 2 {
		t.Fatalf("returns: %+v table=%v", def.Returns, def.IsTable)
	}
	if def.Language != Name {
		t.Fatalf("language %q", def.Language)
	}
}

func TestCompileChecksDeclaration(t *testing.T) {
	register(t, "halve", func(x []float64) []float64 { return x })
	rt := New()
	// arity mismatch
	if _, err := rt.Compile(scalarDef("halve", 2)); err == nil {
		t.Fatal("arity mismatch must fail compile")
	}
	// type mismatch
	def := scalarDef("halve", 1)
	def.Params[0].Type = storage.TStr
	if _, err := rt.Compile(def); err == nil {
		t.Fatal("type mismatch must fail compile")
	}
	// unregistered symbol
	if _, err := rt.Compile(scalarDef("no_such_symbol", 1)); err == nil {
		t.Fatal("unregistered symbol must fail compile")
	}
}

func TestCallZeroCopyAndBroadcast(t *testing.T) {
	var seen []float64
	register(t, "sumpair", func(a, b []float64) []float64 {
		seen = a
		out := make([]float64, len(a))
		for i := range a {
			out[i] = a[i] + b[i]
		}
		return out
	})
	rt := New()
	call, err := rt.Compile(scalarDef("sumpair", 2))
	if err != nil {
		t.Fatal(err)
	}
	a := floatCol("a", 1, 2, 3)
	b := floatCol("b", 10) // length-1: broadcasts to the batch's rows
	out, err := call.Call(&udfrt.Env{}, udfrt.NewBatch([]*storage.Column{a, b}, []bool{true, true}))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Cols[0].Flts; len(got) != 3 || got[0] != 11 || got[2] != 13 {
		t.Fatalf("sumpair = %v", got)
	}
	// the fast path hands the column's backing vector to the function
	if len(seen) != 3 || &seen[0] != &a.Flts[0] {
		t.Fatal("columnar argument was copied; want the column's own vector")
	}
}

func TestCallScalarParam(t *testing.T) {
	register(t, "scale", func(x []float64, f float64) []float64 {
		out := make([]float64, len(x))
		for i := range x {
			out[i] = x[i] * f
		}
		return out
	})
	rt := New()
	def := scalarDef("scale", 2)
	call, err := rt.Compile(def)
	if err != nil {
		t.Fatal(err)
	}
	out, err := call.Call(&udfrt.Env{}, udfrt.NewBatch(
		[]*storage.Column{floatCol("x", 1, 2), floatCol("f", 2.5)}, []bool{true, false}))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Cols[0].Flts; got[0] != 2.5 || got[1] != 5 {
		t.Fatalf("scale = %v", got)
	}
}

func TestCallPanicBecomesError(t *testing.T) {
	register(t, "boomer", func(x []float64) []float64 {
		panic("kaboom")
	})
	rt := New()
	call, err := rt.Compile(scalarDef("boomer", 1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = call.Call(&udfrt.Env{}, udfrt.NewBatch([]*storage.Column{floatCol("x", 1)}, []bool{true}))
	if err == nil || !strings.Contains(err.Error(), "boomer") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic must surface as a named error, got %v", err)
	}
}

func TestColumnarArgRefusesScalarParam(t *testing.T) {
	// a multi-row column must not silently truncate to its first value
	register(t, "sq1", func(x float64) float64 { return x * x })
	rt := New()
	call, err := rt.Compile(scalarDef("sq1", 1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = call.Call(&udfrt.Env{}, udfrt.NewBatch(
		[]*storage.Column{floatCol("x", 1, 2, 3)}, []bool{true}))
	if err == nil || !strings.Contains(err.Error(), "slice parameter") {
		t.Fatalf("multi-row column into scalar param must fail, got %v", err)
	}
	// a single-row columnar argument still binds (exact semantics)
	out, err := call.Call(&udfrt.Env{}, udfrt.NewBatch(
		[]*storage.Column{floatCol("x", 3)}, []bool{true}))
	if err != nil || out.Cols[0].Flts[0] != 9 {
		t.Fatalf("%v %v", out, err)
	}
}

func TestReRegisterSwapsImplementation(t *testing.T) {
	register(t, "swapme", func(x []float64) []float64 { return x })
	rt := New()
	call, err := rt.Compile(scalarDef("swapme", 1))
	if err != nil {
		t.Fatal(err)
	}
	// same signature, new behavior: the compiled callable must pick it up
	if err := Register("swapme", func(x []float64) []float64 {
		out := make([]float64, len(x))
		for i, v := range x {
			out[i] = v + 100
		}
		return out
	}); err != nil {
		t.Fatal(err)
	}
	out, err := call.Call(&udfrt.Env{}, udfrt.NewBatch([]*storage.Column{floatCol("x", 1)}, []bool{true}))
	if err != nil || out.Cols[0].Flts[0] != 101 {
		t.Fatalf("re-registered implementation not used: %v %v", out, err)
	}
	// a signature change is refused with a pointed error
	if err := Register("swapme", func(x []float64, y []float64) []float64 { return x }); err != nil {
		t.Fatal(err)
	}
	if _, err := call.Call(&udfrt.Env{}, udfrt.NewBatch([]*storage.Column{floatCol("x", 1)}, []bool{true})); err == nil ||
		!strings.Contains(err.Error(), "different signature") {
		t.Fatalf("signature change must fail the call, got %v", err)
	}
	// unregistering makes calls fail cleanly
	Unregister("swapme")
	if _, err := call.Call(&udfrt.Env{}, udfrt.NewBatch([]*storage.Column{floatCol("x", 1)}, []bool{true})); err == nil ||
		!strings.Contains(err.Error(), "no longer registered") {
		t.Fatalf("unregistered call must fail, got %v", err)
	}
}

func TestCallArgLengthMismatch(t *testing.T) {
	register(t, "sum2", func(a, b []float64) []float64 { return a })
	rt := New()
	call, err := rt.Compile(scalarDef("sum2", 2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = call.Call(&udfrt.Env{}, udfrt.NewBatch(
		[]*storage.Column{floatCol("a", 1, 2, 3), floatCol("b", 1, 2)}, []bool{true, true}))
	if err == nil {
		t.Fatal("ragged argument lengths must fail")
	}
}
