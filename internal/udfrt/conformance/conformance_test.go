package conformance

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/storage"
	"repro/internal/udfrt"
	"repro/internal/udfrt/gort"
	"repro/internal/udfrt/pyrt"
)

// intScalarDef builds the shared scalar definitions of the catalog.
func intScalarDef(fn, language string, params ...string) *storage.FuncDef {
	def := &storage.FuncDef{
		Name:     fn,
		Language: language,
		Returns:  storage.Schema{{Name: "result", Type: storage.TInt}},
	}
	for _, p := range params {
		def.Params = append(def.Params, storage.ColumnDef{Name: p, Type: storage.TInt})
	}
	return def
}

func minMaxDef(language string) *storage.FuncDef {
	return &storage.FuncDef{
		Name:     FnMinMax,
		Language: language,
		Params:   storage.Schema{{Name: "x", Type: storage.TInt}},
		Returns: storage.Schema{
			{Name: "lo", Type: storage.TInt},
			{Name: "hi", Type: storage.TInt},
		},
		IsTable: true,
	}
}

// TestPythonConformance runs the suite against the interpreter runtime with
// the catalog written as stored PYTHON bodies.
func TestPythonConformance(t *testing.T) {
	bodies := map[string]string{
		FnDouble: `out = []
for v in x:
    if v == None:
        v = 0
    out.append(v * 2)
return out`,
		FnAddScaled: `out = []
for v in x:
    out.append(v + f)
return out`,
		FnFail: `raise "boom"`,
		FnMinMax: `lo = x[0]
hi = x[0]
for v in x:
    if v < lo:
        lo = v
    if v > hi:
        hi = v
return {'lo': lo, 'hi': hi}`,
	}
	Run(t, Impl{
		Runtime: pyrt.New(),
		Def: func(t *testing.T, fn string) *storage.FuncDef {
			body, ok := bodies[fn]
			if !ok {
				t.Fatalf("no PYTHON body for %s", fn)
			}
			var def *storage.FuncDef
			switch fn {
			case FnMinMax:
				def = minMaxDef(pyrt.Name)
			case FnAddScaled:
				def = intScalarDef(fn, pyrt.Name, "x", "f")
			default:
				def = intScalarDef(fn, pyrt.Name, "x")
			}
			def.Body = body
			return def
		},
	})
}

// TestGoConformance runs the same suite against the native runtime with the
// catalog registered as typed Go functions.
func TestGoConformance(t *testing.T) {
	impls := map[string]any{
		FnDouble: func(x []int64) []int64 {
			out := make([]int64, len(x))
			for i, v := range x {
				out[i] = v * 2
			}
			return out
		},
		FnAddScaled: func(x []int64, f int64) []int64 {
			out := make([]int64, len(x))
			for i, v := range x {
				out[i] = v + f
			}
			return out
		},
		FnFail: func(x []int64) ([]int64, error) {
			return nil, errors.New("boom")
		},
		FnMinMax: func(x []int64) (int64, int64) {
			lo, hi := x[0], x[0]
			for _, v := range x {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			return lo, hi
		},
	}
	// Register under test-scoped symbols so the process-wide table cannot
	// collide with other tests; the def's Body carries the symbol.
	for fn, impl := range impls {
		symbol := fmt.Sprintf("conformance_%s", fn)
		if err := gort.Register(symbol, impl); err != nil {
			t.Fatal(err)
		}
		defer gort.Unregister(symbol)
	}
	Run(t, Impl{
		Runtime: gort.New(),
		Def: func(t *testing.T, fn string) *storage.FuncDef {
			var def *storage.FuncDef
			switch fn {
			case FnMinMax:
				def = minMaxDef(gort.Name)
			case FnAddScaled:
				def = intScalarDef(fn, gort.Name, "x", "f")
			default:
				def = intScalarDef(fn, gort.Name, "x")
			}
			def.Body = fmt.Sprintf("conformance_%s", fn)
			return def
		},
		NewEnv: func() *udfrt.Env { return &udfrt.Env{} },
	})
}
