// Package conformance is the shared behavior suite every UDF runtime must
// pass: empty and NULL inputs, length-1 broadcast, the scalar calling
// convention for constant arguments, multi-column table returns, and error
// propagation with the UDF's name attached. Runtime packages implement the
// small catalog of conformance functions in their own language and hand
// Run their definitions; the suite drives them all through the same
// udfrt.Callable contract the engine uses.
package conformance

import (
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/udfrt"
)

// The conformance function catalog. Def implementations must provide each
// one with exactly this signature (in their language):
const (
	// FnDouble: double_each(x INTEGER) RETURNS INTEGER — element-wise 2*x,
	// with NULL treated as 0 (the native runtimes see zero values).
	FnDouble = "double_each"
	// FnAddScaled: add_scaled(x INTEGER, f INTEGER) RETURNS INTEGER —
	// element-wise x+f where f arrives as a constant (scalar convention).
	FnAddScaled = "add_scaled"
	// FnFail: always_fails(x INTEGER) RETURNS INTEGER — must error on call.
	FnFail = "always_fails"
	// FnMinMax: min_max(x INTEGER) RETURNS TABLE(lo INTEGER, hi INTEGER) —
	// one row holding the extremes.
	FnMinMax = "min_max"
)

// Impl binds one runtime to its implementations of the catalog.
type Impl struct {
	// Runtime under test.
	Runtime udfrt.Runtime
	// Def returns the catalog definition for one Fn* name, compilable by
	// Runtime (its Language set accordingly, implementation registered or
	// embodied as needed).
	Def func(t *testing.T, fn string) *storage.FuncDef
	// NewEnv builds a fresh per-statement environment; nil means a zero Env
	// per call.
	NewEnv func() *udfrt.Env
}

func (im Impl) env() *udfrt.Env {
	if im.NewEnv != nil {
		return im.NewEnv()
	}
	return &udfrt.Env{}
}

func (im Impl) compile(t *testing.T, fn string) udfrt.Callable {
	t.Helper()
	call, err := im.Runtime.Compile(im.Def(t, fn))
	if err != nil {
		t.Fatalf("%s: Compile(%s): %v", im.Runtime.Name(), fn, err)
	}
	return call
}

func intColumn(name string, vals ...int64) *storage.Column {
	col := storage.NewColumn(name, storage.TInt)
	for _, v := range vals {
		col.AppendInt(v)
	}
	return col
}

func ints(t *testing.T, col *storage.Column) []int64 {
	t.Helper()
	if col.Typ != storage.TInt {
		t.Fatalf("column %s is %s, want INTEGER", col.Name, col.Typ)
	}
	return col.Ints
}

func equalInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Run drives the full suite against one runtime implementation.
func Run(t *testing.T, im Impl) {
	t.Run("columnar", func(t *testing.T) {
		call := im.compile(t, FnDouble)
		in := udfrt.NewBatch([]*storage.Column{intColumn("x", 1, 2, 3)}, []bool{true})
		out, err := call.Call(im.env(), in)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Cols) != 1 || !equalInts(ints(t, out.Cols[0]), []int64{2, 4, 6}) {
			t.Fatalf("double_each([1 2 3]) = %+v", out.Cols)
		}
	})

	t.Run("empty input", func(t *testing.T) {
		call := im.compile(t, FnDouble)
		in := udfrt.NewBatch([]*storage.Column{intColumn("x")}, []bool{true})
		out, err := call.Call(im.env(), in)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Cols) != 1 || out.Cols[0].Len() != 0 {
			t.Fatalf("empty input must give an empty column, got %+v", out.Cols)
		}
	})

	t.Run("null input", func(t *testing.T) {
		call := im.compile(t, FnDouble)
		col := intColumn("x", 1)
		col.AppendNull()
		col.AppendInt(3)
		out, err := call.Call(im.env(), udfrt.NewBatch([]*storage.Column{col}, []bool{true}))
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(ints(t, out.Cols[0]), []int64{2, 0, 6}) {
			t.Fatalf("double_each([1 NULL 3]) = %v (NULL must count as 0)", out.Cols[0].Ints)
		}
	})

	t.Run("broadcast constant", func(t *testing.T) {
		call := im.compile(t, FnAddScaled)
		in := udfrt.NewBatch(
			[]*storage.Column{intColumn("x", 1, 2, 3), intColumn("f", 10)},
			[]bool{true, false})
		out, err := call.Call(im.env(), in)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(ints(t, out.Cols[0]), []int64{11, 12, 13}) {
			t.Fatalf("add_scaled([1 2 3], 10) = %v", out.Cols[0].Ints)
		}
	})

	t.Run("error carries UDF name", func(t *testing.T) {
		call := im.compile(t, FnFail)
		_, err := call.Call(im.env(), udfrt.NewBatch([]*storage.Column{intColumn("x", 1)}, []bool{true}))
		if err == nil {
			t.Fatal("always_fails must fail")
		}
		if !strings.Contains(err.Error(), FnFail) {
			t.Fatalf("error %q does not name the UDF %q", err, FnFail)
		}
	})

	t.Run("table return", func(t *testing.T) {
		call := im.compile(t, FnMinMax)
		out, err := call.Call(im.env(), udfrt.NewBatch([]*storage.Column{intColumn("x", 3, 1, 7)}, []bool{true}))
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Cols) != 2 {
			t.Fatalf("min_max returned %d columns, want 2", len(out.Cols))
		}
		if out.Cols[0].Name != "lo" || out.Cols[1].Name != "hi" {
			t.Fatalf("column names %q %q, want lo hi", out.Cols[0].Name, out.Cols[1].Name)
		}
		if !equalInts(ints(t, out.Cols[0]), []int64{1}) || !equalInts(ints(t, out.Cols[1]), []int64{7}) {
			t.Fatalf("min_max([3 1 7]) = %v %v", out.Cols[0].Ints, out.Cols[1].Ints)
		}
	})
}
