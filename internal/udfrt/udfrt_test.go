package udfrt

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/storage"
)

type fakeRuntime struct {
	name  string
	debug bool
}

func (f *fakeRuntime) Name() string                                   { return f.name }
func (f *fakeRuntime) Debuggable() bool                               { return f.debug }
func (f *fakeRuntime) Compile(def *storage.FuncDef) (Callable, error) { return nil, nil }

func TestRegistryLookup(t *testing.T) {
	rt := &fakeRuntime{name: "TESTLANG", debug: true}
	Register(rt)
	got, err := Lookup("testlang")
	if err != nil || got != Runtime(rt) {
		t.Fatalf("Lookup: %v %v", got, err)
	}
	if !LanguageDebuggable("TESTLANG") {
		t.Fatal("TESTLANG should be debuggable")
	}
	if _, err := Lookup("NO_SUCH_LANG"); err == nil || !strings.Contains(err.Error(), "NO_SUCH_LANG") {
		t.Fatalf("unknown language error: %v", err)
	}
	if LanguageDebuggable("NO_SUCH_LANG") {
		t.Fatal("unknown language cannot be debuggable")
	}
}

func TestBatchRowAndBroadcast(t *testing.T) {
	x := storage.NewColumn("x", storage.TInt)
	x.AppendInt(1)
	x.AppendInt(2)
	c := storage.NewColumn("c", storage.TStr)
	c.AppendStr("k")
	b := NewBatch([]*storage.Column{x, c}, []bool{true, false})
	if b.Rows != 2 || !b.Columnar(0) || b.Columnar(1) {
		t.Fatalf("batch: %+v", b)
	}
	r1 := b.Row(1)
	if r1.Rows != 1 || r1.Cols[0].Ints[0] != 2 || r1.Cols[1].Strs[0] != "k" {
		t.Fatalf("row batch: %+v", r1.Cols)
	}
	if r1.Columnar(0) {
		t.Fatal("row batches use the scalar convention")
	}
}

func TestEnvMemo(t *testing.T) {
	env := &Env{}
	builds := 0
	key := "k"
	for i := 0; i < 3; i++ {
		v, err := env.Memo(key, func() (any, error) { builds++; return builds, nil })
		if err != nil || v.(int) != 1 {
			t.Fatalf("memo: %v %v", v, err)
		}
	}
	if builds != 1 {
		t.Fatalf("built %d times", builds)
	}
	// errors are not memoized
	if _, err := env.Memo("other", func() (any, error) { return nil, errors.New("x") }); err == nil {
		t.Fatal("memo must propagate build errors")
	}
}

func TestWrapErr(t *testing.T) {
	err := WrapErr("f", errors.New("boom"))
	if err == nil || !strings.Contains(err.Error(), "UDF f failed: boom") {
		t.Fatalf("%v", err)
	}
	// same-name wraps are idempotent
	if again := WrapErr("f", err); again.Error() != err.Error() {
		t.Fatalf("double wrap: %v", again)
	}
	// a different UDF's wrap nests (the caller gains its own name)
	if outer := WrapErr("g", err); !strings.Contains(outer.Error(), "UDF g failed") ||
		!strings.Contains(outer.Error(), "UDF f failed") {
		t.Fatalf("nested wrap: %v", outer)
	}
	// a user error that merely starts with "UDF " still gets named
	if tricky := WrapErr("h", errors.New("UDF budget exceeded")); !strings.Contains(tricky.Error(), "UDF h failed") {
		t.Fatalf("prefix-colliding message must still be wrapped: %v", tricky)
	}
	if WrapErr("f", nil) != nil {
		t.Fatal("nil stays nil")
	}
}
