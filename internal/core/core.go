// Package core holds small kernel types shared by every substrate in the
// devUDF reproduction: error kinds, the virtual file system abstraction the
// script interpreter and the demo data loaders use, and identifier helpers.
package core

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrorKind classifies errors crossing subsystem boundaries so that the wire
// protocol and the CLI can render them uniformly.
type ErrorKind int

// Error kinds, ordered roughly by the layer that raises them.
const (
	KindUnknown    ErrorKind = iota
	KindSyntax               // SQL or script parse error
	KindName                 // unknown table, column, function or variable
	KindType                 // type mismatch
	KindRuntime              // script runtime failure inside a UDF
	KindAuth                 // authentication failure
	KindProtocol             // malformed wire frame
	KindIO                   // file system or network failure
	KindConstraint           // schema violation (duplicate table, arity, ...)
	KindCancelled            // query aborted: deadline, client disconnect, server stop
	KindOverload             // server shed the request before executing it; retry
	KindResource             // a resource budget was exceeded (rows, bytes, UDF wall clock)
)

// String returns the SQLSTATE-like tag used in error messages and on the wire.
func (k ErrorKind) String() string {
	switch k {
	case KindSyntax:
		return "syntax"
	case KindName:
		return "name"
	case KindType:
		return "type"
	case KindRuntime:
		return "runtime"
	case KindAuth:
		return "auth"
	case KindProtocol:
		return "protocol"
	case KindIO:
		return "io"
	case KindConstraint:
		return "constraint"
	case KindCancelled:
		return "cancelled"
	case KindOverload:
		return "overload"
	case KindResource:
		return "resource"
	default:
		return "unknown"
	}
}

// Retryable reports whether err is safe to retry verbatim because the
// server is known not to have executed the request: a KindOverload shed
// response (admission control refused it before execution). Transport
// failures during dial or handshake are also pre-execution, but they are
// classified by the caller that knows no request was in flight — a bare
// KindIO mid-operation is NOT retryable, since the statement may have
// executed before the connection died.
func Retryable(err error) bool { return KindOf(err) == KindOverload }

// IsCancelled reports whether err is a query cancellation (deadline,
// client disconnect, or server stop), across wrapping.
func IsCancelled(err error) bool { return KindOf(err) == KindCancelled }

// Error is the uniform error payload used across the engine, the wire
// protocol and the plugin core.
type Error struct {
	Kind ErrorKind
	Msg  string
	// Err is the wrapped cause, when there is one; it is preserved for
	// errors.Is/As (e.g. context.Canceled, fs.ErrNotExist) but does not
	// travel over the wire.
	Err error
}

// Errorf constructs an *Error with fmt-style formatting.
func Errorf(kind ErrorKind, format string, args ...any) *Error {
	return &Error{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// Wrapf constructs an *Error that wraps cause, so errors.Is/As see through
// it while the kind/message still classify it for the wire and the CLI.
func Wrapf(kind ErrorKind, cause error, format string, args ...any) *Error {
	return &Error{Kind: kind, Msg: fmt.Sprintf(format, args...), Err: cause}
}

func (e *Error) Error() string { return e.Kind.String() + " error: " + e.Msg }

// Unwrap exposes the wrapped cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// IsNotExist reports whether err stems from a missing file, across both the
// OS-backed and the in-memory FS implementations.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// KindOf extracts the ErrorKind from err, or KindUnknown when err is not a
// *core.Error.
func KindOf(err error) ErrorKind {
	var ce *Error
	if ok := asError(err, &ce); ok {
		return ce.Kind
	}
	return KindUnknown
}

func asError(err error, target **Error) bool {
	for err != nil {
		if e, ok := err.(*Error); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// FS is the minimal virtual file system surface that PyLite's os/open
// builtins require. Scenario B's data loader walks a directory of CSV files
// through this interface, so tests can run against an in-memory FS while the
// server daemon runs against the real one.
type FS interface {
	// ReadFile returns the full contents of the named file.
	ReadFile(name string) ([]byte, error)
	// ListDir returns the sorted base names of directory entries.
	ListDir(dir string) ([]string, error)
	// WriteFile creates or replaces the named file.
	WriteFile(name string, data []byte) error
}

// OSFS is an FS backed by the real operating system, rooted at Dir. An empty
// Dir means paths are used verbatim.
type OSFS struct {
	Dir string
}

func (o OSFS) path(name string) string {
	if o.Dir == "" {
		return name
	}
	if filepath.IsAbs(name) {
		return name
	}
	return filepath.Join(o.Dir, name)
}

// ReadFile implements FS.
func (o OSFS) ReadFile(name string) ([]byte, error) {
	b, err := os.ReadFile(o.path(name))
	if err != nil {
		return nil, Wrapf(KindIO, err, "%v", err)
	}
	return b, nil
}

// ListDir implements FS.
func (o OSFS) ListDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(o.path(dir))
	if err != nil {
		return nil, Wrapf(KindIO, err, "%v", err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// WriteFile implements FS.
func (o OSFS) WriteFile(name string, data []byte) error {
	p := o.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return Wrapf(KindIO, err, "%v", err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		return Wrapf(KindIO, err, "%v", err)
	}
	return nil
}

// MemFS is an in-memory FS for tests and examples. The zero value is ready
// to use. It is safe for concurrent use.
type MemFS struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMemFS builds a MemFS pre-populated with files.
func NewMemFS(files map[string]string) *MemFS {
	m := &MemFS{files: make(map[string][]byte, len(files))}
	for k, v := range files {
		m.files[normalize(k)] = []byte(v)
	}
	return m
}

func normalize(p string) string {
	p = strings.TrimPrefix(p, "./")
	return strings.TrimSuffix(p, "/")
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	b, ok := m.files[normalize(name)]
	if !ok {
		return nil, Wrapf(KindIO, fs.ErrNotExist, "no such file: %s", name)
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// ListDir implements FS.
func (m *MemFS) ListDir(dir string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	prefix := normalize(dir)
	if prefix != "" {
		prefix += "/"
	}
	seen := map[string]bool{}
	for name := range m.files {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := strings.TrimPrefix(name, prefix)
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		seen[rest] = true
	}
	if len(seen) == 0 {
		return nil, Wrapf(KindIO, fs.ErrNotExist, "no such directory: %s", dir)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// WriteFile implements FS.
func (m *MemFS) WriteFile(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.files == nil {
		m.files = make(map[string][]byte)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.files[normalize(name)] = cp
	return nil
}
