package core

import (
	"fmt"
	"path/filepath"
	"testing"
)

func TestErrorKinds(t *testing.T) {
	err := Errorf(KindAuth, "bad password for %s", "monetdb")
	if got := err.Error(); got != "auth error: bad password for monetdb" {
		t.Fatalf("Error() = %q", got)
	}
	if KindOf(err) != KindAuth {
		t.Fatalf("KindOf = %v", KindOf(err))
	}
	wrapped := fmt.Errorf("outer: %w", err)
	if KindOf(wrapped) != KindAuth {
		t.Fatalf("KindOf(wrapped) = %v", KindOf(wrapped))
	}
	if KindOf(fmt.Errorf("plain")) != KindUnknown {
		t.Fatal("plain errors are KindUnknown")
	}
}

func TestErrorKindStrings(t *testing.T) {
	kinds := map[ErrorKind]string{
		KindUnknown: "unknown", KindSyntax: "syntax", KindName: "name",
		KindType: "type", KindRuntime: "runtime", KindAuth: "auth",
		KindProtocol: "protocol", KindIO: "io", KindConstraint: "constraint",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestMemFS(t *testing.T) {
	fs := NewMemFS(map[string]string{
		"dir/a.csv":     "1\n",
		"dir/b.csv":     "2\n",
		"dir/sub/c.csv": "3\n",
		"top.txt":       "t",
	})
	names, err := fs.ListDir("dir")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(names) != "[a.csv b.csv sub]" {
		t.Fatalf("ListDir = %v", names)
	}
	b, err := fs.ReadFile("dir/a.csv")
	if err != nil || string(b) != "1\n" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if _, err := fs.ReadFile("missing"); err == nil {
		t.Fatal("missing file should error")
	}
	if _, err := fs.ListDir("nope"); err == nil {
		t.Fatal("missing dir should error")
	}
	if err := fs.WriteFile("new/file.bin", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	b, err = fs.ReadFile("new/file.bin")
	if err != nil || len(b) != 2 {
		t.Fatalf("round trip failed: %v %v", b, err)
	}
	// writes copy their input
	src := []byte{9}
	_ = fs.WriteFile("x", src)
	src[0] = 0
	b, _ = fs.ReadFile("x")
	if b[0] != 9 {
		t.Fatal("WriteFile must copy data")
	}
}

func TestMemFSDotSlashNormalization(t *testing.T) {
	fs := NewMemFS(map[string]string{"input.bin": "data"})
	if _, err := fs.ReadFile("./input.bin"); err != nil {
		t.Fatalf("./ prefix should resolve: %v", err)
	}
}

func TestOSFS(t *testing.T) {
	dir := t.TempDir()
	fs := OSFS{Dir: dir}
	if err := fs.WriteFile("sub/f.txt", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile("sub/f.txt")
	if err != nil || string(b) != "hi" {
		t.Fatalf("read back: %q %v", b, err)
	}
	names, err := fs.ListDir("sub")
	if err != nil || len(names) != 1 || names[0] != "f.txt" {
		t.Fatalf("ListDir: %v %v", names, err)
	}
	if _, err := fs.ReadFile(filepath.Join(dir, "sub", "f.txt")); err != nil {
		t.Fatalf("absolute path: %v", err)
	}
	if _, err := fs.ReadFile("absent"); err == nil {
		t.Fatal("missing file should error")
	}
}
