package wal

import (
	"time"

	"repro/internal/obs"
)

// walMetrics holds the manager's registered instruments; nil means
// observability is off and the hot paths skip all bookkeeping.
type walMetrics struct {
	appends      *obs.Counter
	appendBytes  *obs.Counter
	fsyncSeconds *obs.Histogram
	checkpoints  *obs.Counter
}

// EnableObs registers the manager's metrics on reg. Call right after
// Open, before the database takes traffic: the metrics pointer is read
// by append and fsync paths without synchronization.
func (m *Manager) EnableObs(reg *obs.Registry) {
	m.metrics = &walMetrics{
		appends:      reg.Counter("wal_appends_total", "Committed changes appended to the write-ahead log."),
		appendBytes:  reg.Counter("wal_append_bytes_total", "Framed bytes appended to the write-ahead log."),
		fsyncSeconds: reg.Histogram("wal_fsync_seconds", "Latency of fsync calls on the active WAL segment.", nil),
		checkpoints:  reg.Counter("wal_checkpoints_total", "Snapshot checkpoints completed (manual, automatic, and shutdown)."),
	}
	// Scrape-time directory scan: segment count is cheap to read and not
	// worth maintaining incrementally. ReadDir does no locking, so a
	// stalled checkpoint cannot wedge a scrape.
	reg.GaugeFunc("wal_segments", "WAL segment files currently in the data directory.",
		func() float64 {
			_, segs, _, err := m.scan()
			if err != nil {
				return -1
			}
			return float64(len(segs))
		})
}

// observeAppend records one successful append of frameLen framed bytes.
func (w *walMetrics) observeAppend(frameLen int) {
	if w == nil {
		return
	}
	w.appends.Inc()
	w.appendBytes.Add(uint64(frameLen))
}

// timeFsync wraps one fsync in the latency histogram. Used instead of a
// StageTimer because fsyncs also happen off-query (flusher, close).
func (w *walMetrics) timeFsync(fsync func() error) error {
	if w == nil {
		return fsync()
	}
	t0 := time.Now()
	err := fsync()
	w.fsyncSeconds.Observe(time.Since(t0).Seconds())
	return err
}
