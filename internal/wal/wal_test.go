package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
)

func openDB(t *testing.T, dir string, opts Options) (*engine.DB, *Manager) {
	t.Helper()
	db := engine.NewDB()
	m, err := Open(dir, db, opts)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return db, m
}

func mustExec(t *testing.T, db *engine.DB, sqls ...string) {
	t.Helper()
	conn := &engine.Conn{DB: db, User: "u", Password: "p"}
	for _, sql := range sqls {
		if _, err := conn.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
}

func queryInts(t *testing.T, db *engine.DB, sql string) []int64 {
	t.Helper()
	conn := &engine.Conn{DB: db, User: "u", Password: "p"}
	r, err := conn.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return append([]int64(nil), r.Table.Cols[0].Ints...)
}

var workload = []string{
	`CREATE TABLE nums (i INTEGER, s STRING)`,
	`INSERT INTO nums VALUES (1, 'one'), (2, 'two'), (NULL, NULL)`,
	`CREATE TABLE dropme (x INTEGER)`,
	`DROP TABLE dropme`,
	`CREATE FUNCTION double_it(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return [v * 2 for v in column]
}`,
	`CREATE FUNCTION gone(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return column
}`,
	`DROP FUNCTION gone`,
	`INSERT INTO nums VALUES (3, 'three')`,
}

func verifyWorkload(t *testing.T, db *engine.DB) {
	t.Helper()
	got := queryInts(t, db, `SELECT i FROM nums WHERE i IS NOT NULL ORDER BY i`)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("nums rows after recovery: %v", got)
	}
	got = queryInts(t, db, `SELECT double_it(i) FROM nums WHERE i = 2`)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("recovered UDF result: %v", got)
	}
	conn := &engine.Conn{DB: db, User: "u", Password: "p"}
	if _, err := conn.Exec(`SELECT x FROM dropme`); err == nil {
		t.Fatal("dropped table resurrected by replay")
	}
	if _, err := conn.Exec(`SELECT gone(i) FROM nums`); err == nil {
		t.Fatal("dropped function resurrected by replay")
	}
}

func TestReplayFromLogOnly(t *testing.T) {
	dir := t.TempDir()
	db, m := openDB(t, dir, Options{})
	mustExec(t, db, workload...)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	db2, m2 := openDB(t, dir, Options{})
	defer m2.Close()
	verifyWorkload(t, db2)
}

func TestRecoverFromSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	db, m := openDB(t, dir, Options{})
	mustExec(t, db, workload[:5]...)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	mustExec(t, db, workload[5:]...) // lands in the post-snapshot WAL tail
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	db2, m2 := openDB(t, dir, Options{})
	defer m2.Close()
	verifyWorkload(t, db2)
}

func TestFunctionIDsStableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	db, m := openDB(t, dir, Options{})
	mustExec(t, db, workload...)
	before := queryInts(t, db, `SELECT id FROM sys.functions ORDER BY id`)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	db2, m2 := openDB(t, dir, Options{})
	defer m2.Close()
	after := queryInts(t, db2, `SELECT id FROM sys.functions ORDER BY id`)
	if len(before) == 0 || len(after) != len(before) {
		t.Fatalf("function ids: before %v after %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("function id drift: before %v after %v", before, after)
		}
	}
	// a new function must not reuse a dropped-then-recovered ID range
	mustExec(t, db2, `CREATE FUNCTION fresh(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return column
}`)
	ids := queryInts(t, db2, `SELECT id FROM sys.functions ORDER BY id`)
	newID := ids[len(ids)-1]
	if newID <= after[len(after)-1] {
		t.Fatalf("new function id %d not past recovered counter (ids %v)", newID, ids)
	}
}

func TestCheckpointRotatesAndPurges(t *testing.T) {
	dir := t.TempDir()
	db, m := openDB(t, dir, Options{SnapshotBytes: -1})
	mustExec(t, db, workload...)
	for i := 0; i < 3; i++ {
		mustExec(t, db, `INSERT INTO nums VALUES (9, 'nine')`)
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.dump"))
	if len(snaps) != retainSnapshots {
		t.Fatalf("want %d retained snapshots, have %v", retainSnapshots, snaps)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != retainSnapshots {
		t.Fatalf("want segments only for retained snapshots, have %v", segs)
	}
	m.Close()

	db2, m2 := openDB(t, dir, Options{})
	defer m2.Close()
	got := queryInts(t, db2, `SELECT i FROM nums WHERE i IS NOT NULL ORDER BY i`)
	want := []int64{1, 2, 3, 9, 9, 9}
	if len(got) != len(want) {
		t.Fatalf("rows after recovery: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows after recovery: %v", got)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	db, m := openDB(t, dir, Options{})
	mustExec(t, db, workload...)
	m.Close()

	// Simulate a crash mid-append: garbage half-record at the tail.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 99, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(last)

	var logs bytes.Buffer
	logf := func(format string, args ...any) { logs.WriteString(format + "\n") }
	db2, m2 := openDB(t, dir, Options{Logf: logf})
	verifyWorkload(t, db2)
	m2.Close()
	_ = db2
	after, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	if !strings.Contains(logs.String(), "torn tail") {
		t.Fatalf("expected torn-tail log, got: %s", logs.String())
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	db, m := openDB(t, dir, Options{SnapshotBytes: -1})
	mustExec(t, db, workload[:5]...)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, workload[5:]...)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.dump"))
	if len(snaps) < 2 {
		t.Fatalf("need two snapshot generations, have %v", snaps)
	}
	// Corrupt the newest snapshot; recovery must fall back to the previous
	// one and replay the segments after it.
	newest := snaps[len(snaps)-1]
	if err := os.WriteFile(newest, []byte("MLDUMP2\nGARBAGE"), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, m2 := openDB(t, dir, Options{})
	defer m2.Close()
	verifyWorkload(t, db2)
}

func TestAllSnapshotsCorruptRefusesStart(t *testing.T) {
	dir := t.TempDir()
	db, m := openDB(t, dir, Options{})
	mustExec(t, db, workload...)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.dump"))
	for _, s := range snaps {
		if err := os.WriteFile(s, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Also remove pre-snapshot segments so the state is genuinely
	// unreachable (keep only the post-checkpoint tail).
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	for _, s := range segs[:len(segs)-1] {
		os.Remove(s)
	}
	if _, err := Open(dir, engine.NewDB(), Options{}); err == nil {
		t.Fatal("open must refuse to start empty over unreadable snapshots")
	}
}

func TestGoUDFMarkerReplay(t *testing.T) {
	dir := t.TempDir()
	db, m := openDB(t, dir, Options{})
	if err := db.RegisterGoUDF("tripled", func(xs []int64) []int64 {
		out := make([]int64, len(xs))
		for i, x := range xs {
			out[i] = x * 3
		}
		return out
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (i INTEGER)`, `INSERT INTO t VALUES (7)`)
	m.Close()

	// Replay recreates the catalog entry; the Go implementation is
	// process-wide (gort registry), so the recovered function is callable.
	db2, m2 := openDB(t, dir, Options{})
	defer m2.Close()
	got := queryInts(t, db2, `SELECT tripled(i) FROM t`)
	if len(got) != 1 || got[0] != 21 {
		t.Fatalf("recovered go udf: %v", got)
	}
}

func TestSyncAlwaysAndManualSync(t *testing.T) {
	dir := t.TempDir()
	db, m := openDB(t, dir, Options{Sync: SyncAlways})
	mustExec(t, db, `CREATE TABLE t (i INTEGER)`, `INSERT INTO t VALUES (1)`)
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	m.Close()
	db2, m2 := openDB(t, dir, Options{})
	defer m2.Close()
	if got := queryInts(t, db2, `SELECT i FROM t`); len(got) != 1 {
		t.Fatalf("rows: %v", got)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	db, m := openDB(t, dir, Options{})
	mustExec(t, db, `CREATE TABLE t (i INTEGER)`)
	m.Close()
	// Hooks are uninstalled at Close: further statements are in-memory only
	// and must still succeed.
	mustExec(t, db, `INSERT INTO t VALUES (1)`)

	db2, m2 := openDB(t, dir, Options{})
	defer m2.Close()
	if got := queryInts(t, db2, `SELECT i FROM t`); len(got) != 0 {
		t.Fatalf("post-close insert must not be durable, got %v", got)
	}
}

func TestWriteFileAtomicPreservesOldOnNoSpace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("read back: %q %v", got, err)
	}
	// no temp droppings
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("leftover files: %v", ents)
	}
}
