package wal

// Crash-recovery property test: a child process (this test binary
// re-exec'd) runs a DDL+DML+UDF workload against a WAL-backed database,
// acking each committed statement on stdout. The parent SIGKILLs it at a
// random point — including mid-snapshot, since the child's tiny
// SnapshotBytes keeps background checkpoints running — then recovers the
// directory in-process and checks that every acked statement is present
// and nothing is half-applied.

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/engine"
)

const (
	crashChildEnv = "MONETLITE_WAL_CRASH_CHILD"
	crashDirEnv   = "MONETLITE_WAL_CRASH_DIR"
)

// TestWALCrashChild is the child side. It is a no-op unless re-exec'd by
// TestCrashRecovery with the env vars set; then it appends rows (and every
// tenth round a UDF) forever, printing "ACK n" / "FACK n" after each
// commit, until the parent kills it.
func TestWALCrashChild(t *testing.T) {
	if os.Getenv(crashChildEnv) == "" {
		t.Skip("not a crash child")
	}
	dir := os.Getenv(crashDirEnv)
	db := engine.NewDB()
	// Tiny snapshot threshold: a checkpoint every few records, so kills
	// land mid-snapshot and mid-rotation, not just mid-append.
	m, err := Open(dir, db, Options{SnapshotBytes: 512})
	if err != nil {
		fmt.Printf("OPENFAIL %v\n", err)
		os.Exit(1)
	}
	defer m.Close()
	conn := &engine.Conn{DB: db, User: "u", Password: "p"}
	if _, err := conn.Exec(`CREATE TABLE t (i INTEGER, s STRING)`); err != nil {
		// Table already exists when the parent reuses a dir across rounds.
		if !strings.Contains(err.Error(), "exists") {
			fmt.Printf("EXECFAIL %v\n", err)
			os.Exit(1)
		}
	}
	start := 0
	if r, err := conn.Exec(`SELECT i FROM t ORDER BY i DESC LIMIT 1`); err == nil && r.Table.NumRows() > 0 {
		start = int(r.Table.Cols[0].Ints[0]) + 1
	}
	out := bufio.NewWriter(os.Stdout)
	for i := start; ; i++ {
		if _, err := conn.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'row-%d')`, i, i)); err != nil {
			fmt.Printf("EXECFAIL %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "ACK %d\n", i)
		if i%10 == 3 {
			sql := fmt.Sprintf(`CREATE OR REPLACE FUNCTION crash_f%d(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return [v + %d for v in column]
}`, i, i)
			if _, err := conn.Exec(sql); err != nil {
				fmt.Printf("EXECFAIL %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(out, "FACK %d\n", i)
		}
		out.Flush()
	}
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec crash test")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))

	// Several rounds against the SAME directory: each round recovers the
	// previous crash's state, extends it, and is crashed again.
	lastAck, lastFack := -1, -1
	for round := 0; round < 6; round++ {
		cmd := exec.Command(exe, "-test.run", "^TestWALCrashChild$", "-test.v")
		cmd.Env = append(os.Environ(), crashChildEnv+"=1", crashDirEnv+"="+dir)
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}

		acks := make(chan [2]int, 1024) // (kind 0=row 1=func, n)
		go func() {
			sc := bufio.NewScanner(pipe)
			for sc.Scan() {
				line := sc.Text()
				if n, ok := strings.CutPrefix(line, "ACK "); ok {
					v, _ := strconv.Atoi(n)
					acks <- [2]int{0, v}
				} else if n, ok := strings.CutPrefix(line, "FACK "); ok {
					v, _ := strconv.Atoi(n)
					acks <- [2]int{1, v}
				} else if strings.HasPrefix(line, "OPENFAIL") || strings.HasPrefix(line, "EXECFAIL") {
					t.Errorf("round %d child: %s", round, line)
				}
			}
			close(acks)
		}()

		// Let the child commit for a random slice of time, draining acks as
		// they arrive, then kill -9 mid-flight.
		deadline := time.After(time.Duration(20+rng.Intn(120)) * time.Millisecond)
		drained := false
		for !drained {
			select {
			case a, ok := <-acks:
				if !ok {
					drained = true
					break
				}
				if a[0] == 0 {
					lastAck = a[1]
				} else {
					lastFack = a[1]
				}
			case <-deadline:
				cmd.Process.Signal(syscall.SIGKILL)
				// Keep draining: acks already in the pipe are committed.
				deadline = nil
			}
		}
		cmd.Wait()
		if t.Failed() {
			return
		}

		// Recover in-process and verify the acked prefix survived intact.
		db := engine.NewDB()
		m, err := Open(dir, db, Options{})
		if err != nil {
			t.Fatalf("round %d: recovery failed: %v", round, err)
		}
		conn := &engine.Conn{DB: db, User: "u", Password: "p"}
		if lastAck >= 0 {
			r, err := conn.Exec(`SELECT i FROM t ORDER BY i`)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			got := r.Table.Cols[0].Ints
			if len(got) < lastAck+1 {
				t.Fatalf("round %d: lost committed rows: %d recovered, %d acked", round, len(got), lastAck+1)
			}
			// Contiguous 0..n-1 with no holes or duplicates: a row past the
			// last ack is fine (committed, ack lost in the pipe), a gap or
			// half-applied batch is not.
			for i, v := range got {
				if v != int64(i) {
					t.Fatalf("round %d: hole or duplicate at position %d: value %d", round, i, v)
				}
			}
		}
		if lastFack >= 0 {
			r, err := conn.Exec(fmt.Sprintf(`SELECT crash_f%d(i) FROM t WHERE i = 0`, lastFack))
			if err != nil || r.Table.NumRows() != 1 || r.Table.Cols[0].Ints[0] != int64(lastFack) {
				t.Fatalf("round %d: acked function crash_f%d lost or wrong: %v", round, lastFack, err)
			}
		}
		m.Close()
	}
	if lastAck < 0 {
		t.Fatal("no commits were ever acked; harness broken")
	}
	t.Logf("crash rounds survived; final acked row %d, func %d", lastAck, lastFack)
}
