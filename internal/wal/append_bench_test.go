package wal

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
)

func BenchmarkAppendChange(b *testing.B) {
	db := engine.NewDB()
	m, err := Open(b.TempDir(), db, Options{SnapshotBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	t := storage.NewTable("t", storage.Schema{
		{Name: "i", Type: storage.TInt},
		{Name: "s", Type: storage.TStr},
	})
	for i := 0; i < 3; i++ {
		if err := t.AppendRow([]any{int64(i), "xy"}); err != nil {
			b.Fatal(err)
		}
	}
	ch := engine.Change{Kind: engine.ChangeInsert, Name: "t", Table: t}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.appendChange(ch); err != nil {
			b.Fatal(err)
		}
	}
}
