// Package wal gives the embedded engine durable storage: an append-only,
// checksummed write-ahead log of logical records combined with periodic
// compressed columnar snapshots (the V2 dump format) and crash recovery.
//
// Layout of a data directory:
//
//	wal-0000000001.log    log segments, one per snapshot generation
//	wal-0000000002.log
//	snap-0000000002.dump  snapshot of the state at the START of segment 2
//
// Every committed mutation (DDL, INSERT/COPY batches, CREATE/DROP
// FUNCTION, Go-UDF registration markers) is appended to the active
// segment as one framed record — u32 payload length, u32 CRC-32C, payload
// — via the persistence hook the manager installs on engine.DB, while the
// database lock is still held: a statement only succeeds once its record
// is in the log. A checkpoint (manual DB.Checkpoint, or automatic once
// SnapshotBytes of log accumulate) rotates to a fresh segment, writes a
// snapshot tagged with the new segment's sequence number temp-then-rename,
// and purges segments older than the retained snapshots.
//
// Recovery at Open: the newest readable snapshot is restored
// (all-or-nothing), every segment at or after its sequence number is
// replayed in order, and a torn tail on the final segment — a partial or
// corrupt trailing record from a crash mid-append — is truncated rather
// than treated as fatal. Corruption anywhere else refuses to open.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dump"
	"repro/internal/engine"
	"repro/internal/storage"
)

const (
	segMagic     = "MLWAL1\n\x00"
	segHeaderLen = len(segMagic) + 8 // magic + u64 sequence number
	recHeaderLen = 8                 // u32 payload length + u32 CRC-32C
	maxRecordLen = 1 << 30

	// DefaultSnapshotBytes is the log volume that triggers an automatic
	// checkpoint.
	DefaultSnapshotBytes = 8 << 20
	// DefaultSyncInterval is the group-commit fsync cadence of SyncInterval.
	DefaultSyncInterval = 50 * time.Millisecond
	// retainSnapshots is how many snapshot generations survive a purge: the
	// newest plus one fallback, so recovery can step back a generation if
	// the newest file turns out unreadable.
	retainSnapshots = 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects when appended records are fsync'd.
type SyncMode int

const (
	// SyncInterval (the default) groups commits: records are written to the
	// kernel at commit (surviving a process kill) and fsync'd in the
	// background every SyncInterval (bounding loss on power failure).
	SyncInterval SyncMode = iota
	// SyncAlways fsyncs every append before the statement returns.
	SyncAlways
	// SyncNever leaves all fsync scheduling to the OS.
	SyncNever
)

// Options tune a Manager. The zero value selects the defaults.
type Options struct {
	// SnapshotBytes triggers an automatic checkpoint once that much log has
	// accumulated since the last one (0 = DefaultSnapshotBytes, negative =
	// never automatically).
	SnapshotBytes int64
	// Sync selects the fsync policy for appends.
	Sync SyncMode
	// SyncEvery overrides the SyncInterval cadence (0 = DefaultSyncInterval).
	SyncEvery time.Duration
	// Logf receives recovery and background-checkpoint diagnostics.
	Logf func(format string, args ...any)
}

// Manager owns one data directory: the active WAL segment, checkpointing,
// and the persistence hooks installed on the database. Lock order is
// db.mu → Manager.mu (appends arrive holding db.mu; checkpoints take
// db.Lock first).
type Manager struct {
	dir  string
	db   *engine.DB
	opts Options

	mu      sync.Mutex
	f       *os.File // active segment, nil after Close
	seq     uint64   // active segment sequence number
	bytes   int64    // log bytes appended since the last checkpoint
	dirty   bool     // unsynced appends outstanding (SyncInterval)
	scratch []byte   // reusable frame buffer for appendChange

	checkpointing atomic.Bool // auto-checkpoint single-flight
	stop          chan struct{}
	flusherDone   chan struct{}

	// metrics is set once by EnableObs before traffic and read without
	// synchronization afterwards; nil keeps the hot paths untouched.
	metrics *walMetrics
}

// Open recovers the database state persisted in dir (creating it if
// needed), replays the WAL tail into db, and installs the persistence
// hooks so every later commit is logged. The db should be empty.
func Open(dir string, db *engine.DB, opts Options) (*Manager, error) {
	if opts.SnapshotBytes == 0 {
		opts.SnapshotBytes = DefaultSnapshotBytes
	}
	if opts.SyncEvery == 0 {
		opts.SyncEvery = DefaultSyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, core.Wrapf(core.KindIO, err, "create data dir: %v", err)
	}
	m := &Manager{dir: dir, db: db, opts: opts, stop: make(chan struct{}), flusherDone: make(chan struct{})}
	if err := m.recover(); err != nil {
		return nil, err
	}
	db.SetPersistence(m.appendChange, m.Checkpoint)
	if opts.Sync == SyncInterval {
		go m.flusher()
	} else {
		close(m.flusherDone)
	}
	return m, nil
}

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.dir }

// Close uninstalls the hooks, fsyncs and closes the active segment. It
// does not checkpoint; call DB.Checkpoint first for a clean shutdown that
// starts back up without replay.
func (m *Manager) Close() error {
	m.db.SetPersistence(nil, nil)
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.flusherDone
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	err := m.f.Sync()
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	m.f = nil
	if err != nil {
		return core.Wrapf(core.KindIO, err, "close wal segment: %v", err)
	}
	return nil
}

// Sync forces an fsync of the active segment.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncLocked()
}

func (m *Manager) syncLocked() error {
	if m.f == nil {
		return nil
	}
	if err := m.metrics.timeFsync(m.f.Sync); err != nil {
		return core.Wrapf(core.KindIO, err, "fsync wal: %v", err)
	}
	m.dirty = false
	return nil
}

// flusher is the SyncInterval group-commit loop.
func (m *Manager) flusher() {
	defer close(m.flusherDone)
	t := time.NewTicker(m.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.mu.Lock()
			if m.dirty {
				if err := m.syncLocked(); err != nil {
					m.logf("wal: background fsync: %v", err)
				}
			}
			m.mu.Unlock()
		}
	}
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// appendChange is the persistence hook: serialize one committed change and
// append it to the active segment. Called with db.mu held.
func (m *Manager) appendChange(ch engine.Change) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return core.Errorf(core.KindIO, "wal is closed")
	}
	// Encode into the reserved-header scratch buffer, then backfill length
	// and checksum: one buffer, reused across appends, one write().
	if m.scratch == nil {
		m.scratch = make([]byte, recHeaderLen, 4096)
	}
	frame, err := encodeChange(m.scratch[:recHeaderLen], ch)
	if err != nil {
		return err
	}
	m.scratch = frame[:recHeaderLen]
	payload := frame[recHeaderLen:]
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	if _, err := m.f.Write(frame); err != nil {
		// The segment tail is now suspect; recovery's torn-tail truncation
		// handles whatever fraction of the frame made it to disk.
		return core.Wrapf(core.KindIO, err, "append wal record: %v", err)
	}
	if m.opts.Sync == SyncAlways {
		if err := m.syncLocked(); err != nil {
			return err
		}
	} else {
		m.dirty = true
	}
	m.metrics.observeAppend(len(frame))
	m.bytes += int64(len(frame))
	if m.opts.SnapshotBytes > 0 && m.bytes >= m.opts.SnapshotBytes &&
		m.checkpointing.CompareAndSwap(false, true) {
		//goleak:bounded one-shot checkpoint, serialized by the checkpointing CAS
		go func() {
			defer m.checkpointing.Store(false)
			if err := m.Checkpoint(); err != nil {
				m.logf("wal: background checkpoint: %v", err)
			}
		}()
	}
	return nil
}

// Checkpoint writes a snapshot of the current state, rotates the log to a
// fresh segment, and purges segments older than the retained snapshots.
// Safe to call concurrently with queries; it serializes on the database
// lock.
func (m *Manager) Checkpoint() error {
	return m.db.Lock(func(cat *storage.Catalog) error {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.checkpointLocked(cat)
	})
}

func (m *Manager) checkpointLocked(cat *storage.Catalog) error {
	if m.f == nil {
		return core.Errorf(core.KindIO, "wal is closed")
	}
	newSeq := m.seq + 1
	// 1. Open the next segment. Until the snapshot rename lands, recovery
	// still uses the previous snapshot and replays through this (empty)
	// segment, so every crash window stays consistent.
	nf, err := m.createSegment(newSeq)
	if err != nil {
		return err
	}
	// 2. Snapshot the catalog, temp-then-rename. A crash mid-write leaves
	// a *.tmp file that Open sweeps; the previous snapshot is never touched.
	snap, err := dump.EncodeCatalog(cat)
	if err == nil {
		err = WriteFileAtomic(m.snapPath(newSeq), snap)
	}
	if err != nil {
		// Abandon the rotation: keep appending to the current segment and
		// remove the orphan so the next attempt can recreate it (O_EXCL).
		nf.Close()
		os.Remove(m.segPath(newSeq))
		return err
	}
	// 3. Retire the old segment and swap in the new one.
	if err := m.f.Sync(); err != nil {
		m.logf("wal: fsync retired segment: %v", err)
	}
	_ = m.f.Close()
	m.f, m.seq, m.bytes, m.dirty = nf, newSeq, 0, false
	if w := m.metrics; w != nil {
		w.checkpoints.Inc()
	}
	// 4. Purge generations no retained snapshot needs. Best-effort: stale
	// files cost disk, not correctness.
	m.purge(newSeq)
	return nil
}

// purge removes snapshots beyond the retention count and segments older
// than the oldest retained snapshot.
func (m *Manager) purge(newest uint64) {
	snaps, segs, _, err := m.scan()
	if err != nil {
		m.logf("wal: purge scan: %v", err)
		return
	}
	keepFrom := newest
	if len(snaps) > retainSnapshots {
		keepFrom = snaps[len(snaps)-retainSnapshots]
		for _, seq := range snaps[:len(snaps)-retainSnapshots] {
			if err := os.Remove(m.snapPath(seq)); err != nil {
				m.logf("wal: purge snapshot %d: %v", seq, err)
			}
		}
	} else if len(snaps) > 0 {
		keepFrom = snaps[0]
	}
	for _, seq := range segs {
		if seq < keepFrom {
			if err := os.Remove(m.segPath(seq)); err != nil {
				m.logf("wal: purge segment %d: %v", seq, err)
			}
		}
	}
}

func (m *Manager) segPath(seq uint64) string {
	return filepath.Join(m.dir, fmt.Sprintf("wal-%010d.log", seq))
}

func (m *Manager) snapPath(seq uint64) string {
	return filepath.Join(m.dir, fmt.Sprintf("snap-%010d.dump", seq))
}

// scan lists the directory's snapshot and segment sequence numbers
// (ascending) and any leftover temp files.
func (m *Manager) scan() (snaps, segs []uint64, tmps []string, err error) {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, nil, nil, core.Wrapf(core.KindIO, err, "scan data dir: %v", err)
	}
	for _, e := range ents {
		name := e.Name()
		var seq uint64
		switch {
		case matchSeq(name, "wal-", ".log", &seq):
			segs = append(segs, seq)
		case matchSeq(name, "snap-", ".dump", &seq):
			snaps = append(snaps, seq)
		case strings.Contains(name, ".tmp"):
			tmps = append(tmps, filepath.Join(m.dir, name))
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return snaps, segs, tmps, nil
}

func matchSeq(name, prefix, suffix string, seq *uint64) bool {
	if len(name) != len(prefix)+10+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	var v uint64
	for i := 0; i < len(digits); i++ {
		d := digits[i]
		if d < '0' || d > '9' {
			return false
		}
		v = v*10 + uint64(d-'0')
	}
	*seq = v
	return true
}

// recover restores the newest valid snapshot, replays the WAL tail, and
// opens a fresh active segment.
func (m *Manager) recover() error {
	snaps, segs, tmps, err := m.scan()
	if err != nil {
		return err
	}
	// Interrupted atomic writes leave temp files; they were never part of
	// the durable state.
	for _, p := range tmps {
		if err := os.Remove(p); err != nil {
			m.logf("wal: remove stale temp %s: %v", p, err)
		}
	}
	// Newest snapshot that restores cleanly wins; an unreadable one falls
	// back a generation (RestoreCatalog is all-or-nothing, so a failed
	// attempt leaves the database empty for the next).
	var start uint64
	restored := false
	for i := len(snaps) - 1; i >= 0; i-- {
		seq := snaps[i]
		data, err := os.ReadFile(m.snapPath(seq))
		if err == nil {
			err = m.db.Lock(func(cat *storage.Catalog) error {
				return dump.RestoreCatalog(cat, data)
			})
		}
		if err == nil {
			start, restored = seq, true
			break
		}
		m.logf("wal: snapshot %d unusable (%v); falling back", seq, err)
	}
	// Snapshots present but none restorable means the log's prefix is
	// unreachable: starting empty here would replay a suffix over the wrong
	// base and silently lose data — the bug the old -persist path had.
	if len(snaps) > 0 && !restored {
		return core.Errorf(core.KindIO, "no snapshot in %s is readable; refusing to start empty", m.dir)
	}
	// Likewise, with no snapshot at all the log must reach back to the
	// first segment.
	if !restored && len(segs) > 0 && segs[0] != 1 {
		return core.Errorf(core.KindIO, "wal starts at segment %d with no snapshot; refusing to start empty", segs[0])
	}
	// Replay segments from the snapshot's generation forward. They must be
	// contiguous: a hole means committed records are gone, which recovery
	// must refuse to paper over.
	var replay []uint64
	for _, seq := range segs {
		if seq >= start {
			replay = append(replay, seq)
		}
	}
	for i, seq := range replay {
		if i > 0 && seq != replay[i-1]+1 {
			return core.Errorf(core.KindIO, "missing wal segment %d (have %d then %d)", replay[i-1]+1, replay[i-1], seq)
		}
		if err := m.replaySegment(seq, i == len(replay)-1); err != nil {
			return err
		}
	}
	// Open a fresh active segment past everything seen.
	next := start + 1
	if n := len(segs); n > 0 && segs[n-1]+1 > next {
		next = segs[n-1] + 1
	}
	f, err := m.createSegment(next)
	if err != nil {
		return err
	}
	m.f, m.seq = f, next
	return nil
}

// createSegment creates and fsyncs a new empty segment file (header only)
// and fsyncs the directory so the file itself survives a crash.
func (m *Manager) createSegment(seq uint64) (*os.File, error) {
	path := m.segPath(seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, core.Wrapf(core.KindIO, err, "create wal segment: %v", err)
	}
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	hdr = binary.BigEndian.AppendUint64(hdr, seq)
	if _, err := f.Write(hdr); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return nil, core.Wrapf(core.KindIO, err, "init wal segment: %v", err)
	}
	if err := syncDir(m.dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// replaySegment applies every intact record of one segment to the
// database. last marks the final segment, whose torn tail (crash
// mid-append) is truncated away; anywhere else corruption is fatal.
func (m *Manager) replaySegment(seq uint64, last bool) error {
	path := m.segPath(seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return core.Wrapf(core.KindIO, err, "read wal segment: %v", err)
	}
	if len(data) < segHeaderLen || string(data[:len(segMagic)]) != segMagic {
		return core.Errorf(core.KindIO, "wal segment %d: bad header", seq)
	}
	if got := binary.BigEndian.Uint64(data[len(segMagic):segHeaderLen]); got != seq {
		return core.Errorf(core.KindIO, "wal segment %d: header names sequence %d", seq, got)
	}
	off := segHeaderLen
	for off < len(data) {
		rest := data[off:]
		torn := ""
		var payload []byte
		if len(rest) < recHeaderLen {
			torn = "partial record header"
		} else {
			n := int(binary.BigEndian.Uint32(rest))
			want := binary.BigEndian.Uint32(rest[4:])
			switch {
			case n > maxRecordLen:
				torn = "implausible record length"
			case len(rest) < recHeaderLen+n:
				torn = "partial record body"
			default:
				payload = rest[recHeaderLen : recHeaderLen+n]
				if crc32.Checksum(payload, crcTable) != want {
					torn = "checksum mismatch"
				}
			}
		}
		if torn != "" {
			if !last {
				return core.Errorf(core.KindIO, "wal segment %d: %s at offset %d in a non-final segment", seq, torn, off)
			}
			m.logf("wal: truncating torn tail of segment %d at offset %d (%s)", seq, off, torn)
			if err := os.Truncate(path, int64(off)); err != nil {
				return core.Wrapf(core.KindIO, err, "truncate torn wal tail: %v", err)
			}
			return nil
		}
		ch, err := decodeChange(payload)
		if err != nil {
			return core.Wrapf(core.KindIO, err, "wal segment %d offset %d: %v", seq, off, err)
		}
		if err := m.db.ApplyChange(ch); err != nil {
			return core.Wrapf(core.KindIO, err, "replay wal segment %d offset %d: %v", seq, off, err)
		}
		off += recHeaderLen + len(payload)
	}
	return nil
}

// encodeChange serializes one logical record: a kind byte then a
// kind-specific body in the shared storage codec (function definitions use
// the V2 dump form so IDs survive).
// encodeChange appends the record payload for ch to buf. Append-style so
// the hot commit path can reuse one scratch buffer across appends instead
// of allocating per statement.
func encodeChange(buf []byte, ch engine.Change) ([]byte, error) {
	buf = append(buf, byte(ch.Kind))
	switch ch.Kind {
	case engine.ChangeCreateTable:
		buf = storage.EncodeTable(buf, ch.Table)
	case engine.ChangeDropTable, engine.ChangeDropFunction:
		buf = storage.AppendString(buf, ch.Name)
	case engine.ChangeInsert:
		// The encoded table carries the target's name. With a [From, To)
		// range the batch rows serialize straight off the live table — the
		// common commit shape, kept copy-free.
		if ch.To > ch.From {
			buf = storage.EncodeTableRange(buf, ch.Table, ch.From, ch.To)
		} else {
			buf = storage.EncodeTable(buf, ch.Table)
		}
	case engine.ChangeCreateFunction, engine.ChangeRegisterGoUDF:
		if ch.Replace {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = dump.AppendFuncDef(buf, ch.Func)
	default:
		return nil, core.Errorf(core.KindIO, "unloggable change kind %d", ch.Kind)
	}
	return buf, nil
}

func decodeChange(payload []byte) (engine.Change, error) {
	var ch engine.Change
	if len(payload) == 0 {
		return ch, core.Errorf(core.KindIO, "empty wal record")
	}
	ch.Kind = engine.ChangeKind(payload[0])
	br := storage.NewByteReader(payload[1:])
	var err error
	switch ch.Kind {
	case engine.ChangeCreateTable:
		ch.Table, err = storage.DecodeTable(br)
	case engine.ChangeDropTable, engine.ChangeDropFunction:
		ch.Name, err = br.Str()
	case engine.ChangeInsert:
		if ch.Table, err = storage.DecodeTable(br); err == nil {
			ch.Name = ch.Table.Name
		}
	case engine.ChangeCreateFunction, engine.ChangeRegisterGoUDF:
		var rep byte
		if rep, err = br.U8(); err == nil {
			if rep > 1 {
				return ch, core.Errorf(core.KindIO, "invalid replace flag %d", rep)
			}
			ch.Replace = rep == 1
			ch.Func, err = dump.ReadFuncDef(br)
		}
	default:
		return ch, core.Errorf(core.KindIO, "unknown wal record kind %d", payload[0])
	}
	if err != nil {
		return ch, err
	}
	if br.Remaining() != 0 {
		return ch, core.Errorf(core.KindIO, "trailing bytes in wal record")
	}
	return ch, nil
}

// WriteFileAtomic replaces path with data crash-safely: write to a
// same-directory temp file, fsync it, rename over path, fsync the
// directory. A failure at any step leaves the previous file intact —
// the fix for the monetlited -persist path, which used to os.Create
// (truncate) the only copy before writing the new one.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return core.Wrapf(core.KindIO, err, "create temp for %s: %v", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(core.Wrapf(core.KindIO, err, "write %s: %v", tmpName, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(core.Wrapf(core.KindIO, err, "fsync %s: %v", tmpName, err))
	}
	if err := tmp.Chmod(0o644); err != nil {
		return cleanup(core.Wrapf(core.KindIO, err, "chmod %s: %v", tmpName, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return core.Wrapf(core.KindIO, err, "close %s: %v", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return core.Wrapf(core.KindIO, err, "rename %s: %v", tmpName, err)
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return core.Wrapf(core.KindIO, err, "open dir for fsync: %v", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return core.Wrapf(core.KindIO, err, "fsync dir %s: %v", dir, err)
	}
	return nil
}
