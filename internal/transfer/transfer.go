// Package transfer implements the data-transfer options the devUDF settings
// window exposes (paper §2.1–2.2): payload compression, encryption keyed by
// the database user's password, and uniform random sampling. The server-side
// extract function applies them before data leaves the database; the client
// reverses them.
package transfer

import (
	"bytes"
	"compress/flate"
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"io"
	"math/rand"

	"repro/internal/core"
)

// Options selects the transfer transformations for one extraction. The zero
// value transfers everything verbatim.
type Options struct {
	// Compress applies DEFLATE to the payload.
	Compress bool
	// Encrypt applies AES-CTR with a key derived from the user's password
	// (paper §2.2: "the data is encrypted ... using the password of the
	// database user as a key").
	Encrypt bool
	// SampleSize, when > 0, uniformly samples that many rows server-side
	// before extraction. 0 means the full input.
	SampleSize int
	// Seed makes sampling reproducible. The engine threads a fixed seed
	// through benches and tests.
	Seed int64
}

// Encode renders options as the compact string literal the rewritten SQL
// carries into sys_extract.
func (o Options) Encode() string {
	buf := make([]byte, 0, 32)
	b2i := func(b bool) byte {
		if b {
			return '1'
		}
		return '0'
	}
	buf = append(buf, "c="...)
	buf = append(buf, b2i(o.Compress), ';')
	buf = append(buf, "e="...)
	buf = append(buf, b2i(o.Encrypt), ';')
	buf = append(buf, "s="...)
	buf = appendInt(buf, int64(o.SampleSize))
	buf = append(buf, ';')
	buf = append(buf, "r="...)
	buf = appendInt(buf, o.Seed)
	return string(buf)
}

func appendInt(buf []byte, v int64) []byte {
	if v < 0 {
		buf = append(buf, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(buf, tmp[i:]...)
}

// DecodeOptions parses the literal produced by Encode.
func DecodeOptions(s string) (Options, error) {
	var o Options
	rest := s
	for len(rest) > 0 {
		// split on ';'
		seg := rest
		if i := indexByte(rest, ';'); i >= 0 {
			seg, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if len(seg) < 2 || seg[1] != '=' {
			return o, core.Errorf(core.KindProtocol, "bad extract options segment %q", seg)
		}
		val := seg[2:]
		switch seg[0] {
		case 'c':
			o.Compress = val == "1"
		case 'e':
			o.Encrypt = val == "1"
		case 's':
			n, err := parseInt(val)
			if err != nil {
				return o, err
			}
			o.SampleSize = int(n)
		case 'r':
			n, err := parseInt(val)
			if err != nil {
				return o, err
			}
			o.Seed = n
		default:
			return o, core.Errorf(core.KindProtocol, "unknown extract option %q", seg)
		}
	}
	return o, nil
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

func parseInt(s string) (int64, error) {
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg = true
		s = s[1:]
	}
	if s == "" {
		return 0, core.Errorf(core.KindProtocol, "bad integer in extract options")
	}
	var v int64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, core.Errorf(core.KindProtocol, "bad integer in extract options")
		}
		d := int64(s[i] - '0')
		if v > (1<<63-1-d)/10 {
			return 0, core.Errorf(core.KindProtocol, "integer overflow in extract options")
		}
		v = v*10 + d
	}
	if neg {
		v = -v
	}
	return v, nil
}

// Compress DEFLATEs data at the default level.
func Compress(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, core.Wrapf(core.KindIO, err, "flate: %v", err)
	}
	if _, err := w.Write(data); err != nil {
		return nil, core.Wrapf(core.KindIO, err, "flate: %v", err)
	}
	if err := w.Close(); err != nil {
		return nil, core.Wrapf(core.KindIO, err, "flate: %v", err)
	}
	return buf.Bytes(), nil
}

// Decompress reverses Compress.
func Decompress(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, core.Wrapf(core.KindProtocol, err, "corrupt compressed payload: %v", err)
	}
	return out, nil
}

// DeriveKey turns the database user's password into an AES-256 key.
func DeriveKey(password string) []byte {
	sum := sha256.Sum256([]byte("devudf-transfer-v1:" + password))
	return sum[:]
}

// Encrypt applies AES-CTR with a random IV prepended to the ciphertext. The
// IV is drawn from the provided seed source so tests are reproducible; the
// secrecy of CTR mode rests on the key and IV uniqueness per payload, which
// a seeded sequence provides within a session.
func Encrypt(password string, seed int64, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(DeriveKey(password))
	if err != nil {
		return nil, core.Wrapf(core.KindIO, err, "aes: %v", err)
	}
	iv := make([]byte, aes.BlockSize)
	rng := rand.New(rand.NewSource(seed ^ int64(len(plaintext))*0x9E3779B9))
	for i := range iv {
		iv[i] = byte(rng.Intn(256))
	}
	out := make([]byte, aes.BlockSize+len(plaintext))
	copy(out, iv)
	cipher.NewCTR(block, iv).XORKeyStream(out[aes.BlockSize:], plaintext)
	return out, nil
}

// Decrypt reverses Encrypt.
func Decrypt(password string, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < aes.BlockSize {
		return nil, core.Errorf(core.KindProtocol, "ciphertext shorter than IV")
	}
	block, err := aes.NewCipher(DeriveKey(password))
	if err != nil {
		return nil, core.Wrapf(core.KindIO, err, "aes: %v", err)
	}
	out := make([]byte, len(ciphertext)-aes.BlockSize)
	cipher.NewCTR(block, ciphertext[:aes.BlockSize]).XORKeyStream(out, ciphertext[aes.BlockSize:])
	return out, nil
}

// Pack applies the selected transformations to a payload, in order:
// compress, then encrypt. A two-byte header records which transformations
// were applied so Unpack is self-describing.
func Pack(payload []byte, password string, o Options) ([]byte, error) {
	var err error
	if o.Compress {
		if payload, err = Compress(payload); err != nil {
			return nil, err
		}
	}
	if o.Encrypt {
		if payload, err = Encrypt(password, o.Seed, payload); err != nil {
			return nil, err
		}
	}
	hdr := make([]byte, 2)
	if o.Compress {
		hdr[0] = 1
	}
	if o.Encrypt {
		hdr[1] = 1
	}
	return append(hdr, payload...), nil
}

// Unpack reverses Pack.
func Unpack(packed []byte, password string) ([]byte, error) {
	if len(packed) < 2 {
		return nil, core.Errorf(core.KindProtocol, "payload too short")
	}
	compressed, encrypted := packed[0] == 1, packed[1] == 1
	payload := packed[2:]
	var err error
	if encrypted {
		if payload, err = Decrypt(password, payload); err != nil {
			return nil, err
		}
	}
	if compressed {
		if payload, err = Decompress(payload); err != nil {
			return nil, err
		}
	}
	// copy so the caller owns the bytes
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

// SampleIndexes draws a uniform random sample (without replacement) of k
// row indexes from n rows, in ascending order. k >= n returns all rows.
func SampleIndexes(n, k int, seed int64) []int {
	if k <= 0 || k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	// Floyd's algorithm
	chosen := make(map[int]bool, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if chosen[t] {
			chosen[j] = true
		} else {
			chosen[t] = true
		}
	}
	out := make([]int, 0, k)
	for i := 0; i < n; i++ {
		if chosen[i] {
			out = append(out, i)
		}
	}
	return out
}
