package transfer

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOptionsEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Options{
		{},
		{Compress: true},
		{Encrypt: true},
		{SampleSize: 1000, Seed: 42},
		{Compress: true, Encrypt: true, SampleSize: 5, Seed: -7},
	}
	for _, o := range cases {
		back, err := DecodeOptions(o.Encode())
		if err != nil {
			t.Fatalf("decode %q: %v", o.Encode(), err)
		}
		if back != o {
			t.Fatalf("round trip %+v -> %q -> %+v", o, o.Encode(), back)
		}
	}
}

func TestDecodeOptionsRejectsGarbage(t *testing.T) {
	for _, s := range []string{"x", "c", "c=1;zz=3", "s=abc", "q=1"} {
		if _, err := DecodeOptions(s); err == nil {
			t.Errorf("DecodeOptions(%q) should fail", s)
		}
	}
}

func TestCompressRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("hello columnar world "), 1000)
	comp, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(data) {
		t.Fatalf("repetitive data should compress: %d -> %d", len(data), len(comp))
	}
	back, err := Decompress(comp)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("round trip: %v", err)
	}
	if _, err := Decompress([]byte("not deflate")); err == nil {
		t.Fatal("garbage should fail to decompress")
	}
}

func TestEncryptRoundTrip(t *testing.T) {
	plain := []byte("sensitive rows from the patients table")
	enc, err := Encrypt("hunter2", 1, plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(enc, []byte("sensitive")) {
		t.Fatal("ciphertext must not contain plaintext")
	}
	back, err := Decrypt("hunter2", enc)
	if err != nil || !bytes.Equal(back, plain) {
		t.Fatalf("round trip: %v", err)
	}
	wrong, err := Decrypt("wrong", enc)
	if err != nil {
		t.Fatal(err) // CTR always "succeeds" ...
	}
	if bytes.Equal(wrong, plain) {
		t.Fatal("... but the wrong password must yield garbage")
	}
	if _, err := Decrypt("x", []byte("short")); err == nil {
		t.Fatal("ciphertext shorter than IV should fail")
	}
}

func TestPackUnpackMatrix(t *testing.T) {
	payload := bytes.Repeat([]byte{1, 2, 3, 4, 5, 0, 0, 0}, 500)
	for _, o := range []Options{
		{},
		{Compress: true},
		{Encrypt: true, Seed: 9},
		{Compress: true, Encrypt: true, Seed: 9},
	} {
		packed, err := Pack(payload, "pw", o)
		if err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
		back, err := Unpack(packed, "pw")
		if err != nil || !bytes.Equal(back, payload) {
			t.Fatalf("%+v round trip failed: %v", o, err)
		}
	}
	// encrypted payload + wrong password fails (flate garbage or pickle
	// garbage downstream); with compress off the bytes differ
	packed, _ := Pack(payload, "pw", Options{Compress: true, Encrypt: true})
	if _, err := Unpack(packed, "other"); err == nil {
		t.Fatal("wrong password on compressed+encrypted payload should fail")
	}
	if _, err := Unpack([]byte{1}, "pw"); err == nil {
		t.Fatal("short payload should fail")
	}
}

func TestPackPropertyRoundTrip(t *testing.T) {
	f := func(payload []byte, compress, encrypt bool, seed int64) bool {
		o := Options{Compress: compress, Encrypt: encrypt, Seed: seed}
		packed, err := Pack(payload, "k", o)
		if err != nil {
			return false
		}
		back, err := Unpack(packed, "k")
		if err != nil {
			return false
		}
		return bytes.Equal(back, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleIndexes(t *testing.T) {
	idx := SampleIndexes(100, 10, 42)
	if len(idx) != 10 {
		t.Fatalf("len: %d", len(idx))
	}
	seen := map[int]bool{}
	last := -1
	for _, i := range idx {
		if i < 0 || i >= 100 || seen[i] || i <= last {
			t.Fatalf("bad sample: %v", idx)
		}
		seen[i] = true
		last = i
	}
	// deterministic
	idx2 := SampleIndexes(100, 10, 42)
	for i := range idx {
		if idx[i] != idx2[i] {
			t.Fatal("sampling must be deterministic per seed")
		}
	}
	// different seeds differ (overwhelmingly likely)
	idx3 := SampleIndexes(100, 10, 43)
	same := true
	for i := range idx {
		if idx[i] != idx3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should sample differently")
	}
	// k >= n returns everything
	all := SampleIndexes(5, 10, 1)
	if len(all) != 5 {
		t.Fatalf("k>=n: %v", all)
	}
	if got := SampleIndexes(5, 0, 1); len(got) != 5 {
		t.Fatalf("k=0 means all: %v", got)
	}
}

func TestSampleUniformity(t *testing.T) {
	// Each row should be chosen roughly k/n of the time.
	const n, k, trials = 50, 10, 2000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		for _, i := range SampleIndexes(n, k, int64(trial)) {
			counts[i]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for i, c := range counts {
		if float64(c) < want*0.6 || float64(c) > want*1.4 {
			t.Fatalf("row %d chosen %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestCompressionActuallyHelpsOnColumnData(t *testing.T) {
	// Sorted integer columns (the demo's CSV numbers) compress well.
	rng := rand.New(rand.NewSource(1))
	var sb strings.Builder
	v := 0
	for i := 0; i < 10000; i++ {
		v += rng.Intn(3)
		sb.WriteString(strings.Repeat(" ", 0))
		sb.WriteByte(byte('0' + v%10))
	}
	data := []byte(sb.String())
	comp, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(comp)) > 0.5*float64(len(data)) {
		t.Fatalf("expected >2x compression on low-entropy data: %d -> %d", len(data), len(comp))
	}
}
