package transfer

import (
	"bytes"
	"math/rand"
	"testing"
)

// payloads returns a spread of adversarial payload shapes: empty, tiny,
// highly compressible, incompressible random bytes, and
// all-possible-byte-values.
func payloads() map[string][]byte {
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 64*1024)
	rng.Read(random)
	all := make([]byte, 256)
	for i := range all {
		all[i] = byte(i)
	}
	return map[string][]byte{
		"empty":        {},
		"one":          {0x42},
		"compressible": bytes.Repeat([]byte("devudf "), 10_000),
		"random":       random,
		"allbytes":     all,
	}
}

// TestPackUnpackProperty round-trips every payload shape through every
// option combination and checks byte-exact recovery.
func TestPackUnpackProperty(t *testing.T) {
	for name, payload := range payloads() {
		for _, compress := range []bool{false, true} {
			for _, encrypt := range []bool{false, true} {
				o := Options{Compress: compress, Encrypt: encrypt, Seed: 99}
				packed, err := Pack(payload, "s3cret", o)
				if err != nil {
					t.Fatalf("%s c=%v e=%v: pack: %v", name, compress, encrypt, err)
				}
				got, err := Unpack(packed, "s3cret")
				if err != nil {
					t.Fatalf("%s c=%v e=%v: unpack: %v", name, compress, encrypt, err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatalf("%s c=%v e=%v: round trip diverged (%d vs %d bytes)",
						name, compress, encrypt, len(got), len(payload))
				}
				if encrypt && len(payload) >= 16 && bytes.Contains(packed, payload) {
					t.Fatalf("%s: encrypted payload contains plaintext", name)
				}
			}
		}
	}
}

// TestUnpackWrongKey asserts that decrypting with the wrong password never
// silently yields the plaintext: compressed payloads fail to inflate, and
// plain encrypted payloads come back as garbage, not the original.
func TestUnpackWrongKey(t *testing.T) {
	payload := bytes.Repeat([]byte("sensitive row data "), 1000)
	packed, err := Pack(payload, "right-password", Options{Compress: true, Encrypt: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unpack(packed, "wrong-password"); err == nil {
		t.Fatal("compressed+encrypted payload unpacked with the wrong key")
	}
	// Without compression there is no integrity check, but the bytes must
	// not match the plaintext.
	packed, err = Pack(payload, "right-password", Options{Encrypt: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(packed, "wrong-password")
	if err == nil && bytes.Equal(got, payload) {
		t.Fatal("wrong key recovered the plaintext")
	}
}

// TestUnpackTruncated feeds every truncation of a packed payload to Unpack:
// it must return an error or garbage, never panic, and short headers must
// be rejected outright.
func TestUnpackTruncated(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 512)
	for _, o := range []Options{
		{},
		{Compress: true},
		{Encrypt: true, Seed: 1},
		{Compress: true, Encrypt: true, Seed: 1},
	} {
		packed, err := Pack(payload, "pw", o)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < len(packed); k++ {
			got, err := Unpack(packed[:k], "pw")
			if err == nil && bytes.Equal(got, payload) {
				t.Fatalf("options %+v: truncation to %d bytes still round-tripped", o, k)
			}
		}
		// Corrupt header bits must not panic either.
		for _, hdr := range [][]byte{{2, 2}, {255, 0}, {1}} {
			bad := append(append([]byte{}, hdr...), packed[2:]...)
			_, _ = Unpack(bad, "pw")
		}
	}
}

// TestOptionsEncodeDecodeProperty round-trips option combinations through
// the SQL literal encoding, including adversarial decode inputs.
func TestOptionsEncodeDecodeProperty(t *testing.T) {
	for _, o := range []Options{
		{},
		{Compress: true},
		{Encrypt: true},
		{Compress: true, Encrypt: true, SampleSize: 12345, Seed: -987654321},
		{SampleSize: 1 << 30, Seed: 1 << 40},
	} {
		got, err := DecodeOptions(o.Encode())
		if err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
		if got != o {
			t.Fatalf("options round trip: %+v vs %+v", got, o)
		}
	}
	for _, bad := range []string{
		"c", "c=1;e=1;s=;r=0", "c=1;e=1;s=x;r=0",
		"x=1;e=1;s=1;r=0", "c=1;e=1;s=1;r=0;junk",
		"c=1;e=1;s=99999999999999999999;r=0",
	} {
		if _, err := DecodeOptions(bad); err == nil {
			t.Errorf("DecodeOptions(%q) should fail", bad)
		}
	}
}

// TestSampleIndexesProperty checks the sampler's contract: correct size,
// strictly ascending unique in-range indexes, determinism per seed, and
// seed sensitivity.
func TestSampleIndexesProperty(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 0}, {1, 0}, {5, 5}, {5, 50}, {100, 1}, {100, 37}, {10_000, 100},
	} {
		got := SampleIndexes(tc.n, tc.k, 42)
		wantLen := tc.k
		if tc.k <= 0 || tc.k >= tc.n {
			wantLen = tc.n
		}
		if len(got) != wantLen {
			t.Fatalf("n=%d k=%d: %d indexes", tc.n, tc.k, len(got))
		}
		for i, idx := range got {
			if idx < 0 || idx >= tc.n {
				t.Fatalf("n=%d k=%d: index %d out of range", tc.n, tc.k, idx)
			}
			if i > 0 && got[i-1] >= idx {
				t.Fatalf("n=%d k=%d: indexes not strictly ascending at %d", tc.n, tc.k, i)
			}
		}
		again := SampleIndexes(tc.n, tc.k, 42)
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("n=%d k=%d: sampling not deterministic", tc.n, tc.k)
			}
		}
	}
	a := SampleIndexes(10_000, 100, 1)
	b := SampleIndexes(10_000, 100, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples")
	}
}
