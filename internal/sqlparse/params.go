package sqlparse

import "repro/internal/core"

// ParseLiteral parses a single SQL literal (optionally sign-negated) into
// its Go value — int64, float64, string, bool, or nil for NULL. It is the
// typing rule behind cmd/mclient's -param flags: '42' binds an INTEGER,
// '4.2' a DOUBLE, "'x'" a STRING, 'true' a BOOLEAN, 'null' a NULL.
func ParseLiteral(s string) (any, error) {
	lx := &lexer{src: s}
	toks, err := lx.lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.at(tEOF) {
		return nil, p.errf("unexpected input after literal: %q", p.cur().lit)
	}
	return literalValue(e)
}

// ParseLiterals applies ParseLiteral to a list of -param flag values,
// producing the bind-argument slice — the one typing rule shared by the
// CLIs.
func ParseLiterals(params []string) ([]any, error) {
	if len(params) == 0 {
		return nil, nil
	}
	binds := make([]any, len(params))
	for i, p := range params {
		v, err := ParseLiteral(p)
		if err != nil {
			return nil, core.Wrapf(core.KindSyntax, err, "-param %q: %v", p, err)
		}
		binds[i] = v
	}
	return binds, nil
}

func literalValue(e Expr) (any, error) {
	switch e := e.(type) {
	case *IntLit:
		return e.Value, nil
	case *FloatLit:
		return e.Value, nil
	case *StrLit:
		return e.Value, nil
	case *BoolLit:
		return e.Value, nil
	case *NullLit:
		return nil, nil
	case *UnaryExpr:
		if e.Op == "-" {
			v, err := literalValue(e.X)
			if err != nil {
				return nil, err
			}
			switch v := v.(type) {
			case int64:
				return -v, nil
			case float64:
				return -v, nil
			}
		}
	}
	return nil, core.Errorf(core.KindSyntax, "not a SQL literal")
}

// NumParams reports how many bind parameters a parsed statement expects:
// the count of '?' placeholders, or the highest $n. The parser guarantees
// numbered placeholders are dense from $1, so this is also the argument
// count a Prepare'd statement binds.
func NumParams(st Statement) int {
	max := 0
	WalkExprs(st, func(e Expr) {
		if ph, ok := e.(*Placeholder); ok && ph.Index+1 > max {
			max = ph.Index + 1
		}
	})
	return max
}

// HasPlaceholders reports whether the statement contains any bind
// parameter — such statements cannot execute without a bind step.
func HasPlaceholders(st Statement) bool { return NumParams(st) > 0 }

// WalkExprs visits every expression in a statement, depth-first, including
// expressions nested inside subqueries and table-function arguments.
func WalkExprs(st Statement, fn func(Expr)) {
	switch st := st.(type) {
	case *Insert:
		for _, row := range st.Rows {
			for _, e := range row {
				walkExpr(e, fn)
			}
		}
	case *Select:
		walkSelectExprs(st, fn)
	}
}

func walkSelectExprs(sel *Select, fn func(Expr)) {
	for _, item := range sel.Items {
		if item.Expr != nil {
			walkExpr(item.Expr, fn)
		}
	}
	switch f := sel.From.(type) {
	case *FromFunc:
		walkExpr(f.Call, fn)
	case *FromSelect:
		walkSelectExprs(f.Sel, fn)
	}
	if sel.Where != nil {
		walkExpr(sel.Where, fn)
	}
	for _, e := range sel.GroupBy {
		walkExpr(e, fn)
	}
	if sel.Having != nil {
		walkExpr(sel.Having, fn)
	}
	for _, o := range sel.OrderBy {
		walkExpr(o.Expr, fn)
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *BinaryExpr:
		walkExpr(e.L, fn)
		walkExpr(e.R, fn)
	case *UnaryExpr:
		walkExpr(e.X, fn)
	case *IsNullExpr:
		walkExpr(e.X, fn)
	case *CastExpr:
		walkExpr(e.X, fn)
	case *FuncCall:
		for _, a := range e.Args {
			walkExpr(a, fn)
		}
	case *Subquery:
		walkSelectExprs(e.Sel, fn)
	}
}
