package sqlparse

import (
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/storage"
)

// Parser consumes a token stream into statements.
type parser struct {
	toks []token
	pos  int
	// placeholder bookkeeping, reset per top-level statement: positional
	// '?' count, and the byte position of each distinct $n seen (the
	// density check reports gaps with the position of the highest $n).
	qmarks      int
	numberedPos map[int]int
}

// maxPlaceholder bounds $n at parse time; anything larger is a typo or an
// attack, not a bind list.
const maxPlaceholder = 1 << 16

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(sql string) (Statement, error) {
	stmts, err := ParseAll(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, core.Errorf(core.KindSyntax, "expected exactly one statement, found %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script of statements.
func ParseAll(sql string) ([]Statement, error) {
	lx := &lexer{src: sql}
	toks, err := lx.lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Statement
	for {
		for p.atOp(";") {
			p.next()
		}
		if p.at(tEOF) {
			return stmts, nil
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		if err := p.finishPlaceholders(); err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
		if !p.atOp(";") && !p.at(tEOF) {
			return nil, p.errf("unexpected input after statement: %q", p.cur().lit)
		}
	}
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokKind) bool { return p.cur().kind == k }
func (p *parser) atOp(op string) bool {
	return p.cur().kind == tOp && p.cur().lit == op
}

// atKw matches an identifier token case-insensitively against a keyword.
// Quoted identifiers are never keywords: `"select"` names a column.
func (p *parser) atKw(kw string) bool {
	return p.cur().kind == tIdent && !p.cur().quoted && strings.EqualFold(p.cur().lit, kw)
}

func (p *parser) acceptKw(kw string) bool {
	if p.atKw(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	if p.atOp(op) {
		p.next()
		return true
	}
	return false
}

func (p *parser) errf(format string, args ...any) error {
	return core.Errorf(core.KindSyntax, "SQL: "+format, args...)
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.cur().lit)
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %q", op, p.cur().lit)
	}
	return nil
}

// reservedWords are the structural keywords the printer always emits bare.
// They are rejected as identifiers: accepting them (e.g. a column named
// "select") would make Format produce SQL that reparses differently.
// Contextual keywords ("language", "header", "replace", "returns") stay
// usable as identifiers — the server's own meta tables have a "language"
// column.
var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true,
	"order": true, "having": true, "limit": true, "by": true,
	"distinct": true, "asc": true, "desc": true,
	"and": true, "or": true, "not": true, "is": true, "as": true,
	"insert": true, "into": true, "values": true,
	"create": true, "drop": true, "copy": true, "cast": true,
	"table": true, "function": true,
	"null": true, "true": true, "false": true,
}

func (p *parser) ident() (string, error) {
	if !p.at(tIdent) {
		return "", p.errf("expected identifier, found %q", p.cur().lit)
	}
	if !p.cur().quoted && reservedWords[strings.ToLower(p.cur().lit)] {
		return "", p.errf("reserved word %q cannot be used as an identifier (quote it: \"%s\")",
			p.cur().lit, p.cur().lit)
	}
	return p.next().lit, nil
}

// qualifiedName parses name or schema.name ("sys.functions").
func (p *parser) qualifiedName() (string, error) {
	first, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.acceptOp(".") {
		second, err := p.ident()
		if err != nil {
			return "", err
		}
		return first + "." + second, nil
	}
	return first, nil
}

// placeholder consumes one '?' or '$n' op token into a Placeholder node,
// enforcing single-style use and the $n range at parse time.
func (p *parser) placeholder() (Expr, error) {
	t := p.next()
	if t.lit == "?" {
		if len(p.numberedPos) > 0 {
			return nil, p.errf("cannot mix '?' and '$n' placeholders in one statement (byte %d)", t.pos)
		}
		ph := &Placeholder{Index: p.qmarks}
		p.qmarks++
		return ph, nil
	}
	n, err := strconv.Atoi(t.lit[1:])
	if err != nil || n < 1 {
		return nil, p.errf("invalid placeholder %q at byte %d: numbered placeholders start at $1", t.lit, t.pos)
	}
	if n > maxPlaceholder {
		return nil, p.errf("placeholder %q at byte %d is out of range (max $%d)", t.lit, t.pos, maxPlaceholder)
	}
	if p.qmarks > 0 {
		return nil, p.errf("cannot mix '?' and '$n' placeholders in one statement (byte %d)", t.pos)
	}
	if p.numberedPos == nil {
		p.numberedPos = map[int]int{}
	}
	if _, seen := p.numberedPos[n]; !seen {
		p.numberedPos[n] = t.pos
	}
	return &Placeholder{Index: n - 1, Numbered: true}, nil
}

// finishPlaceholders validates a completed statement's placeholder set:
// numbered placeholders must be dense from $1 (a $5 without $1..$4 names a
// bind slot no argument can fill), reported with the position of the
// highest one. It also resets the per-statement bookkeeping.
func (p *parser) finishPlaceholders() error {
	defer func() {
		p.qmarks = 0
		p.numberedPos = nil
	}()
	if len(p.numberedPos) == 0 {
		return nil
	}
	max := 0
	for n := range p.numberedPos {
		if n > max {
			max = n
		}
	}
	for n := 1; n <= max; n++ {
		if _, ok := p.numberedPos[n]; !ok {
			return p.errf("placeholder $%d at byte %d is out of range: statement never binds $%d",
				max, p.numberedPos[max], n)
		}
	}
	return nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.atKw("create"):
		return p.createStmt()
	case p.atKw("drop"):
		return p.dropStmt()
	case p.atKw("insert"):
		return p.insertStmt()
	case p.atKw("copy"):
		return p.copyStmt()
	case p.atKw("select"):
		return p.selectStmt()
	default:
		return nil, p.errf("unsupported statement starting with %q", p.cur().lit)
	}
}

func (p *parser) createStmt() (Statement, error) {
	p.next() // CREATE
	orReplace := false
	if p.acceptKw("or") {
		if err := p.expectKw("replace"); err != nil {
			return nil, err
		}
		orReplace = true
	}
	switch {
	case p.acceptKw("table"):
		if orReplace {
			return nil, p.errf("OR REPLACE is only supported for functions")
		}
		return p.createTable()
	case p.acceptKw("function"):
		return p.createFunction(orReplace)
	default:
		return nil, p.errf("expected TABLE or FUNCTION after CREATE")
	}
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	schema, err := p.columnDefs()
	if err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Schema: schema}, nil
}

// columnDefs parses `name type, ...` up to and including ')'.
func (p *parser) columnDefs() (storage.Schema, error) {
	var schema storage.Schema
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		tname, err := p.ident()
		if err != nil {
			return nil, err
		}
		typ, err := storage.ParseType(tname)
		if err != nil {
			return nil, err
		}
		schema = append(schema, storage.ColumnDef{Name: cname, Type: typ})
		if p.acceptOp(",") {
			continue
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return schema, nil
	}
}

func (p *parser) createFunction(orReplace bool) (Statement, error) {
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	cf := &CreateFunction{Name: name, OrReplace: orReplace}
	if !p.acceptOp(")") {
		params, err := p.columnDefs()
		if err != nil {
			return nil, err
		}
		cf.Params = params
	}
	if err := p.expectKw("returns"); err != nil {
		return nil, err
	}
	if p.acceptKw("table") {
		cf.IsTable = true
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		rets, err := p.columnDefs()
		if err != nil {
			return nil, err
		}
		cf.Returns = rets
	} else {
		tname, err := p.ident()
		if err != nil {
			return nil, err
		}
		typ, err := storage.ParseType(tname)
		if err != nil {
			return nil, err
		}
		cf.Returns = storage.Schema{{Name: "result", Type: typ}}
	}
	if err := p.expectKw("language"); err != nil {
		return nil, err
	}
	lang, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Any language identifier parses; the engine checks it against the
	// registered UDF runtimes at CREATE time, so the grammar does not need
	// to know which backends this build ships.
	cf.Language = strings.ToUpper(lang)
	if !p.at(tBody) {
		return nil, p.errf("expected '{' UDF body, found %q", p.cur().lit)
	}
	cf.Body = dedentBody(p.next().lit)
	return cf, nil
}

// dedentBody normalizes a UDF body: strips a common leading indentation so
// bodies written indented inside CREATE FUNCTION parse as top-level code.
func dedentBody(body string) string {
	lines := strings.Split(body, "\n")
	// drop leading/trailing blank lines
	for len(lines) > 0 && strings.TrimSpace(lines[0]) == "" {
		lines = lines[1:]
	}
	for len(lines) > 0 && strings.TrimSpace(lines[len(lines)-1]) == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return ""
	}
	indent := -1
	for _, ln := range lines {
		if strings.TrimSpace(ln) == "" {
			continue
		}
		n := len(ln) - len(strings.TrimLeft(ln, " \t"))
		if indent < 0 || n < indent {
			indent = n
		}
	}
	if indent <= 0 {
		return strings.Join(lines, "\n")
	}
	out := make([]string, len(lines))
	for i, ln := range lines {
		if len(ln) >= indent {
			out[i] = ln[indent:]
		} else {
			out[i] = strings.TrimLeft(ln, " \t")
		}
	}
	return strings.Join(out, "\n")
}

func (p *parser) dropStmt() (Statement, error) {
	p.next() // DROP
	switch {
	case p.acceptKw("table"):
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.acceptKw("function"):
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &DropFunction{Name: name}, nil
	default:
		return nil, p.errf("expected TABLE or FUNCTION after DROP")
	}
}

func (p *parser) insertStmt() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("values"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptOp(",") {
			return ins, nil
		}
	}
}

func (p *parser) copyStmt() (Statement, error) {
	p.next() // COPY
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	if !p.at(tString) {
		return nil, p.errf("expected file path string after FROM")
	}
	ci := &CopyInto{Table: name, Path: p.next().lit}
	if p.acceptKw("with") {
		if err := p.expectKw("header"); err != nil {
			return nil, err
		}
		ci.Header = true
	}
	return ci, nil
}

func (p *parser) selectStmt() (*Select, error) {
	p.next() // SELECT
	sel := &Select{Limit: -1}
	if p.acceptKw("distinct") {
		sel.Distinct = true
	}
	for {
		if p.atOp("*") {
			p.next()
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKw("as") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("from") {
		from, err := p.fromClause()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.acceptKw("where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("having") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("desc") {
				item.Desc = true
			} else {
				p.acceptKw("asc")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("limit") {
		if !p.at(tNumber) {
			return nil, p.errf("expected number after LIMIT")
		}
		n, err := strconv.ParseInt(p.next().lit, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT value")
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) fromClause() (FromClause, error) {
	if p.acceptOp("(") {
		if !p.atKw("select") {
			return nil, p.errf("expected SELECT in subquery")
		}
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		alias := ""
		p.acceptKw("as")
		if p.at(tIdent) && !p.isClauseKeyword() {
			alias, _ = p.ident()
		}
		return &FromSelect{Sel: sub, Alias: alias}, nil
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if p.atOp("(") {
		// table function
		call, err := p.finishCall(name)
		if err != nil {
			return nil, err
		}
		alias := ""
		p.acceptKw("as")
		if p.at(tIdent) && !p.isClauseKeyword() {
			alias, _ = p.ident()
		}
		return &FromFunc{Call: call, Alias: alias}, nil
	}
	alias := ""
	p.acceptKw("as")
	if p.at(tIdent) && !p.isClauseKeyword() {
		alias, _ = p.ident()
	}
	return &FromTable{Name: name, Alias: alias}, nil
}

// isClauseKeyword prevents clause keywords from being eaten as aliases.
func (p *parser) isClauseKeyword() bool {
	for _, kw := range []string{"where", "group", "having", "order", "limit", "on", "select", "from", "with", "header"} {
		if p.atKw(kw) {
			return true
		}
	}
	return false
}

// ---- expressions (precedence climbing) ----

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("not") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKw("is") {
		neg := p.acceptKw("not")
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Neg: neg}, nil
	}
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.atOp(op) {
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			canon := op
			if op == "!=" {
				canon = "<>"
			}
			return &BinaryExpr{Op: canon, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atOp("+"), p.atOp("-"), p.atOp("||"):
			op := p.next().lit
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atOp("*"), p.atOp("/"), p.atOp("%"):
			op := p.next().lit
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	if p.acceptOp("+") {
		return p.unary()
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tNumber:
		p.next()
		if strings.ContainsAny(t.lit, ".eE") {
			f, err := strconv.ParseFloat(t.lit, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.lit)
			}
			return &FloatLit{Value: f}, nil
		}
		n, err := strconv.ParseInt(t.lit, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.lit)
		}
		return &IntLit{Value: n}, nil
	case tString:
		p.next()
		return &StrLit{Value: t.lit}, nil
	case tIdent:
		switch {
		case p.atKw("null"):
			p.next()
			return &NullLit{}, nil
		case p.atKw("true"):
			p.next()
			return &BoolLit{Value: true}, nil
		case p.atKw("false"):
			p.next()
			return &BoolLit{Value: false}, nil
		case p.atKw("cast"):
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("as"); err != nil {
				return nil, err
			}
			tn, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ, err := storage.ParseType(tn)
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &CastExpr{X: x, To: typ}, nil
		}
		// Parse the (possibly qualified) name part by part rather than
		// re-splitting the joined string: a "quoted" identifier may contain
		// a dot without naming a table qualifier.
		first, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.acceptOp(".") {
			second, err := p.ident()
			if err != nil {
				return nil, err
			}
			if p.atOp("(") {
				return p.finishCall(first + "." + second)
			}
			return &ColRef{Table: first, Name: second}, nil
		}
		if p.atOp("(") {
			return p.finishCall(first)
		}
		return &ColRef{Name: first}, nil
	case tOp:
		if t.lit == "?" || strings.HasPrefix(t.lit, "$") {
			return p.placeholder()
		}
		if t.lit == "(" {
			p.next()
			if p.atKw("select") {
				sub, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &Subquery{Sel: sub}, nil
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.lit)
}

// finishCall parses the argument list of name(...), assuming the caller is
// positioned at '('.
func (p *parser) finishCall(name string) (*FuncCall, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	call := &FuncCall{Name: name}
	if p.acceptOp(")") {
		return call, nil
	}
	if p.atOp("*") {
		p.next()
		call.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, e)
		if p.acceptOp(",") {
			continue
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
}
