package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

func parseOne(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestCreateTable(t *testing.T) {
	st := parseOne(t, `CREATE TABLE numbers (i INTEGER, name STRING, f DOUBLE)`)
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name != "numbers" || len(ct.Schema) != 3 {
		t.Fatalf("%+v", ct)
	}
	if ct.Schema[0].Type != storage.TInt || ct.Schema[2].Type != storage.TFloat {
		t.Fatalf("types: %+v", ct.Schema)
	}
}

func TestCreateFunctionScalar(t *testing.T) {
	sql := `CREATE FUNCTION mean_deviation(column INTEGER)
RETURNS DOUBLE LANGUAGE PYTHON {
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    return mean
};`
	st := parseOne(t, sql)
	cf, ok := st.(*CreateFunction)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if cf.Name != "mean_deviation" || cf.IsTable || cf.Language != "PYTHON" {
		t.Fatalf("%+v", cf)
	}
	if len(cf.Params) != 1 || cf.Params[0].Name != "column" || cf.Params[0].Type != storage.TInt {
		t.Fatalf("params: %+v", cf.Params)
	}
	if cf.Returns[0].Type != storage.TFloat {
		t.Fatalf("returns: %+v", cf.Returns)
	}
	if !strings.HasPrefix(cf.Body, "mean = 0") {
		t.Fatalf("body should be dedented, got %q", cf.Body)
	}
	if !strings.Contains(cf.Body, "for i in range(0, len(column)):") {
		t.Fatalf("body content: %q", cf.Body)
	}
}

func TestCreateFunctionTable(t *testing.T) {
	sql := `CREATE OR REPLACE FUNCTION loadNumbers(path STRING)
RETURNS TABLE(i INTEGER) LANGUAGE PYTHON { return [1] };`
	cf := parseOne(t, sql).(*CreateFunction)
	if !cf.OrReplace || !cf.IsTable {
		t.Fatalf("%+v", cf)
	}
	if len(cf.Returns) != 1 || cf.Returns[0].Name != "i" {
		t.Fatalf("returns: %+v", cf.Returns)
	}
}

func TestCreateFunctionBodyWithBracesAndStrings(t *testing.T) {
	sql := `CREATE FUNCTION f(x INTEGER) RETURNS BLOB LANGUAGE PYTHON {
    d = {'clf': 1, 'estimators': 2}
    s = "}}}"
    q = """SELECT * FROM t WHERE x = '}'"""
    return d
}`
	cf := parseOne(t, sql).(*CreateFunction)
	if !strings.Contains(cf.Body, "'clf': 1") || !strings.Contains(cf.Body, `"}}}"`) {
		t.Fatalf("body: %q", cf.Body)
	}
}

func TestCreateFunctionAcceptsAnyLanguage(t *testing.T) {
	// The grammar is language-agnostic: validation against the registered
	// UDF runtimes happens in the engine at CREATE time, so new runtimes
	// need no parser change.
	for _, lang := range []string{"PYTHON", "GO", "r"} {
		st, err := Parse(`CREATE FUNCTION f(x INTEGER) RETURNS INTEGER LANGUAGE ` + lang + ` { 1 }`)
		if err != nil {
			t.Fatalf("LANGUAGE %s: %v", lang, err)
		}
		cf := st.(*CreateFunction)
		if cf.Language != strings.ToUpper(lang) {
			t.Fatalf("LANGUAGE %s parsed as %q", lang, cf.Language)
		}
	}
}

func TestInsert(t *testing.T) {
	st := parseOne(t, `INSERT INTO t VALUES (1, 'a', 2.5), (2, NULL, -3.0)`)
	ins := st.(*Insert)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("%+v", ins)
	}
	if _, ok := ins.Rows[1][1].(*NullLit); !ok {
		t.Fatalf("NULL literal: %T", ins.Rows[1][1])
	}
	if u, ok := ins.Rows[1][2].(*UnaryExpr); !ok || u.Op != "-" {
		t.Fatalf("negative literal: %T", ins.Rows[1][2])
	}
}

func TestCopyInto(t *testing.T) {
	ci := parseOne(t, `COPY INTO numbers FROM '/data/file.csv' WITH HEADER`).(*CopyInto)
	if ci.Table != "numbers" || ci.Path != "/data/file.csv" || !ci.Header {
		t.Fatalf("%+v", ci)
	}
	ci2 := parseOne(t, `COPY INTO n FROM 'x.csv'`).(*CopyInto)
	if ci2.Header {
		t.Fatal("header should default to false")
	}
}

func TestSelectBasic(t *testing.T) {
	sel := parseOne(t, `SELECT i, i * 2 AS double_i FROM numbers WHERE i > 3 ORDER BY i DESC LIMIT 10`).(*Select)
	if len(sel.Items) != 2 || sel.Items[1].Alias != "double_i" {
		t.Fatalf("items: %+v", sel.Items)
	}
	ft, ok := sel.From.(*FromTable)
	if !ok || ft.Name != "numbers" {
		t.Fatalf("from: %+v", sel.From)
	}
	if sel.Where == nil || sel.Limit != 10 || len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Fatalf("clauses: %+v", sel)
	}
}

func TestSelectStar(t *testing.T) {
	sel := parseOne(t, `SELECT * FROM sys.functions`).(*Select)
	if !sel.Items[0].Star {
		t.Fatal("star item")
	}
	if sel.From.(*FromTable).Name != "sys.functions" {
		t.Fatalf("meta table name: %+v", sel.From)
	}
}

func TestSelectUDFOverColumn(t *testing.T) {
	sel := parseOne(t, `SELECT mean_deviation(i) FROM numbers`).(*Select)
	call, ok := sel.Items[0].Expr.(*FuncCall)
	if !ok || call.Name != "mean_deviation" || len(call.Args) != 1 {
		t.Fatalf("%+v", sel.Items[0].Expr)
	}
}

func TestSelectTableFunctionInFrom(t *testing.T) {
	sel := parseOne(t, `SELECT * FROM loadNumbers('/tmp/csvs')`).(*Select)
	ff, ok := sel.From.(*FromFunc)
	if !ok || ff.Call.Name != "loadNumbers" {
		t.Fatalf("%+v", sel.From)
	}
	if _, ok := ff.Call.Args[0].(*StrLit); !ok {
		t.Fatalf("arg: %T", ff.Call.Args[0])
	}
}

// TestPaperNestedCallShape parses the query shape from Listing 3: a UDF in
// FROM whose first argument is a table-valued subquery.
func TestPaperNestedCallShape(t *testing.T) {
	sql := `SELECT * FROM train_rnforest((SELECT data, labels FROM trainingset), 5)`
	sel := parseOne(t, sql).(*Select)
	ff := sel.From.(*FromFunc)
	if len(ff.Call.Args) != 2 {
		t.Fatalf("args: %d", len(ff.Call.Args))
	}
	sub, ok := ff.Call.Args[0].(*Subquery)
	if !ok {
		t.Fatalf("first arg: %T", ff.Call.Args[0])
	}
	if len(sub.Sel.Items) != 2 {
		t.Fatalf("subquery items: %+v", sub.Sel.Items)
	}
	if _, ok := ff.Call.Args[1].(*IntLit); !ok {
		t.Fatalf("second arg: %T", ff.Call.Args[1])
	}
}

func TestSelectFromSubquery(t *testing.T) {
	sel := parseOne(t, `SELECT x FROM (SELECT i AS x FROM t) sub WHERE x < 5`).(*Select)
	fs, ok := sel.From.(*FromSelect)
	if !ok || fs.Alias != "sub" {
		t.Fatalf("%+v", sel.From)
	}
}

func TestAggregates(t *testing.T) {
	sel := parseOne(t, `SELECT COUNT(*), SUM(i), AVG(i), MIN(i), MAX(i) FROM t GROUP BY g`).(*Select)
	if len(sel.Items) != 5 || len(sel.GroupBy) != 1 {
		t.Fatalf("%+v", sel)
	}
	if !sel.Items[0].Expr.(*FuncCall).Star {
		t.Fatal("COUNT(*)")
	}
}

func TestExpressionPrecedence(t *testing.T) {
	sel := parseOne(t, `SELECT 1 + 2 * 3`).(*Select)
	b := sel.Items[0].Expr.(*BinaryExpr)
	if b.Op != "+" {
		t.Fatalf("top op %s", b.Op)
	}
	if b.R.(*BinaryExpr).Op != "*" {
		t.Fatal("* should bind tighter")
	}
	sel2 := parseOne(t, `SELECT a AND b OR NOT c`).(*Select)
	top := sel2.Items[0].Expr.(*BinaryExpr)
	if top.Op != "OR" {
		t.Fatalf("top %s", top.Op)
	}
}

func TestIsNullAndCast(t *testing.T) {
	sel := parseOne(t, `SELECT CAST(i AS DOUBLE) FROM t WHERE s IS NOT NULL`).(*Select)
	if _, ok := sel.Items[0].Expr.(*CastExpr); !ok {
		t.Fatalf("cast: %T", sel.Items[0].Expr)
	}
	isn, ok := sel.Where.(*IsNullExpr)
	if !ok || !isn.Neg {
		t.Fatalf("where: %+v", sel.Where)
	}
}

func TestStringEscapes(t *testing.T) {
	sel := parseOne(t, `SELECT 'it''s fine'`).(*Select)
	if sel.Items[0].Expr.(*StrLit).Value != "it's fine" {
		t.Fatalf("%+v", sel.Items[0].Expr)
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
CREATE TABLE t (i INTEGER);
INSERT INTO t VALUES (1);
-- a comment
SELECT * FROM t;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts: %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELEKT 1`,
		`CREATE TABLE`,
		`CREATE TABLE t (i BADTYPE)`,
		`CREATE FUNCTION f() RETURNS INTEGER LANGUAGE PYTHON`,     // missing body
		`CREATE FUNCTION f() RETURNS INTEGER LANGUAGE PYTHON { x`, // unterminated body
		`INSERT INTO t VALUES 1`,
		`SELECT FROM t`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t LIMIT x`,
		`COPY INTO t FROM missing_quotes`,
		`SELECT 'unterminated`,
		`SELECT 1; SELECT 2 extra_token`,
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseListing4Verbatim(t *testing.T) {
	// The paper's Listing 4, byte for byte (modulo the mean/median typo in
	// the caption — the function is mean_deviation).
	sql := `CREATE FUNCTION mean_deviation(column INTEGER)
RETURNS DOUBLE LANGUAGE PYTHON {
    mean = 0
    for i in range (0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range (0, len(column)):
        distance += column[i] - mean
    deviation = distance/len(column)
    return deviation;
};`
	cf := parseOne(t, sql).(*CreateFunction)
	if cf.Name != "mean_deviation" {
		t.Fatalf("name: %s", cf.Name)
	}
	if !strings.Contains(cf.Body, "deviation = distance/len(column)") {
		t.Fatalf("body: %q", cf.Body)
	}
}
