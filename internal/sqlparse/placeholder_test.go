package sqlparse

import (
	"strings"
	"testing"
)

// TestPlaceholderParseFormat pins the placeholder grammar: both styles
// parse everywhere an expression goes, Format round-trips them, and
// NumParams counts bind slots.
func TestPlaceholderParseFormat(t *testing.T) {
	cases := []struct {
		sql     string
		nparams int
		want    string // formatted; "" means just require round-trip
	}{
		{`SELECT ?`, 1, `SELECT ?`},
		{`SELECT $1`, 1, `SELECT $1`},
		{`SELECT i FROM t WHERE i > ? AND s = ?`, 2, ``},
		{`SELECT i FROM t WHERE i > $2 AND s = $1`, 2, ``},
		{`SELECT f(?, i, ?) FROM t`, 2, ``},
		{`SELECT $1 + $1 FROM t`, 1, ``},
		{`INSERT INTO t VALUES (?, ?), (?, ?)`, 4, ``},
		{`SELECT * FROM g($1) WHERE i < $2`, 2, ``},
		{`SELECT (SELECT count(*) FROM u WHERE j = ?) FROM t`, 1, ``},
		{`SELECT i FROM t GROUP BY i HAVING count(*) > ? ORDER BY i`, 1, ``},
		{`SELECT CAST(? AS DOUBLE)`, 1, ``},
		{`SELECT -? AS neg`, 1, ``},
	}
	for _, tc := range cases {
		st, err := Parse(tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		if got := NumParams(st); got != tc.nparams {
			t.Fatalf("%s: NumParams = %d, want %d", tc.sql, got, tc.nparams)
		}
		out := Format(st)
		if tc.want != "" && out != tc.want {
			t.Fatalf("%s: Format = %q, want %q", tc.sql, out, tc.want)
		}
		st2, err := Parse(out)
		if err != nil {
			t.Fatalf("%s: formatted %q does not reparse: %v", tc.sql, out, err)
		}
		if out2 := Format(st2); out2 != out {
			t.Fatalf("%s: not a fixed point: %q vs %q", tc.sql, out, out2)
		}
		if NumParams(st2) != tc.nparams {
			t.Fatalf("%s: round-trip changed NumParams", tc.sql)
		}
	}
}

// TestPlaceholderRejections pins the positioned parse errors: $0,
// out-of-range $n, sparse numbering, mixed styles, and a bare '$'.
func TestPlaceholderRejections(t *testing.T) {
	cases := []struct {
		sql  string
		frag string // must appear in the error
	}{
		{`SELECT $0`, `$0`},
		{`SELECT $0`, `byte 7`},
		{`SELECT $99999999999999999999`, `byte 7`},
		{`SELECT $70000 FROM t`, `out of range`},
		{`SELECT $2 FROM t`, `never binds $1`},
		{`SELECT $1, $3 FROM t`, `never binds $2`},
		{`SELECT ? + $1 FROM t`, `mix`},
		{`SELECT $1 + ? FROM t`, `mix`},
		{`SELECT $ FROM t`, `expected digits after '$'`},
		{`SELECT i FROM t LIMIT ?`, `expected number after LIMIT`},
	}
	for _, tc := range cases {
		_, err := Parse(tc.sql)
		if err == nil {
			t.Fatalf("%s: expected error", tc.sql)
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("%s: error %q does not mention %q", tc.sql, err, tc.frag)
		}
	}
	// placeholder state must reset between statements of a script
	stmts, err := ParseAll(`SELECT ?; SELECT $1; SELECT ?`)
	if err != nil {
		t.Fatalf("per-statement placeholder styles should be independent: %v", err)
	}
	if len(stmts) != 3 {
		t.Fatalf("expected 3 statements, got %d", len(stmts))
	}
}

// TestParseLiteral pins the -param typing rule.
func TestParseLiteral(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{`42`, int64(42)},
		{`-7`, int64(-7)},
		{`4.5`, 4.5},
		{`-1e3`, -1000.0},
		{`'it''s'`, `it's`},
		{`true`, true},
		{`FALSE`, false},
		{`null`, nil},
	}
	for _, tc := range cases {
		got, err := ParseLiteral(tc.in)
		if err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("%s: got %#v, want %#v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{``, `i`, `1 + 2`, `?`, `'x`, `SELECT 1`} {
		if _, err := ParseLiteral(bad); err == nil {
			t.Fatalf("%q: expected error", bad)
		}
	}
}
