// Package sqlparse implements the SQL dialect of the embedded MonetDB-like
// engine: DDL for tables and Python UDFs (CREATE FUNCTION ... LANGUAGE
// PYTHON { body }), DML (INSERT, COPY INTO), and SELECT queries with UDF
// calls, table functions, aggregates and table-valued subquery arguments —
// everything the paper's listings and the devUDF workflow exercise.
package sqlparse

import (
	"strings"

	"repro/internal/core"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString // '...' literal, decoded
	tOp
	tBody // { ... } UDF body, raw with outer braces stripped
)

type token struct {
	kind tokKind
	lit  string
	pos  int // byte offset, for error messages
	// quoted marks a "double-quoted" identifier: never a keyword, and
	// allowed to spell reserved words.
	quoted bool
}

// sqlKeywords is consulted for error messages only; the parser matches
// keywords case-insensitively by spelling.
type lexer struct {
	src string
	pos int
}

func (lx *lexer) errf(format string, args ...any) error {
	return core.Errorf(core.KindSyntax, "SQL: "+format, args...)
}

// lex tokenizes the whole statement. The UDF body `{ ... }` is captured as
// a single tBody token with balanced-brace scanning that respects PyLite
// string literals (dict literals inside UDF bodies contain braces).
func (lx *lexer) lex() ([]token, error) {
	var toks []token
	for {
		lx.skipSpace()
		if lx.pos >= len(lx.src) {
			toks = append(toks, token{kind: tEOF, pos: lx.pos})
			return toks, nil
		}
		start := lx.pos
		c := lx.src[lx.pos]
		switch {
		case c == '{':
			body, err := lx.lexBody()
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tBody, lit: body, pos: start})
		case c == '\'':
			s, err := lx.lexString()
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tString, lit: s, pos: start})
		case c == '"':
			// quoted identifier; "" escapes an embedded quote
			lx.pos++
			var sb strings.Builder
			closed := false
			for lx.pos < len(lx.src) {
				if lx.src[lx.pos] == '"' {
					if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '"' {
						sb.WriteByte('"')
						lx.pos += 2
						continue
					}
					lx.pos++
					closed = true
					break
				}
				sb.WriteByte(lx.src[lx.pos])
				lx.pos++
			}
			if !closed {
				return nil, lx.errf("unterminated quoted identifier")
			}
			toks = append(toks, token{kind: tIdent, lit: sb.String(), pos: start, quoted: true})
		case isSQLDigit(c) || (c == '.' && lx.pos+1 < len(lx.src) && isSQLDigit(lx.src[lx.pos+1])):
			toks = append(toks, token{kind: tNumber, lit: lx.lexNumber(), pos: start})
		case isSQLIdentStart(c):
			toks = append(toks, token{kind: tIdent, lit: lx.lexIdent(), pos: start})
		default:
			op, err := lx.lexOp()
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tOp, lit: op, pos: start})
		}
	}
}

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		// -- line comments
		if c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			continue
		}
		return
	}
}

func (lx *lexer) lexString() (string, error) {
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\'' {
			// '' escapes a quote
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
				sb.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			return sb.String(), nil
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return "", lx.errf("unterminated string literal")
}

func (lx *lexer) lexNumber() string {
	start := lx.pos
	for lx.pos < len(lx.src) && (isSQLDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '.') {
		lx.pos++
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		save := lx.pos
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		if lx.pos < len(lx.src) && isSQLDigit(lx.src[lx.pos]) {
			for lx.pos < len(lx.src) && isSQLDigit(lx.src[lx.pos]) {
				lx.pos++
			}
		} else {
			lx.pos = save
		}
	}
	return lx.src[start:lx.pos]
}

func (lx *lexer) lexIdent() string {
	start := lx.pos
	for lx.pos < len(lx.src) && isSQLIdentCont(lx.src[lx.pos]) {
		lx.pos++
	}
	return lx.src[start:lx.pos]
}

var sqlMultiOps = []string{"<>", "<=", ">=", "!=", "||"}

func (lx *lexer) lexOp() (string, error) {
	rest := lx.src[lx.pos:]
	for _, op := range sqlMultiOps {
		if strings.HasPrefix(rest, op) {
			lx.pos += len(op)
			return op, nil
		}
	}
	c := lx.src[lx.pos]
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '(', ')', ',', '.', ';', ':', '?':
		lx.pos++
		return string(c), nil
	case '$':
		// numbered placeholder: '$' immediately followed by digits; the
		// whole spelling travels as one op token ("$3") so the parser can
		// validate the number with its position.
		j := lx.pos + 1
		for j < len(lx.src) && isSQLDigit(lx.src[j]) {
			j++
		}
		if j == lx.pos+1 {
			return "", lx.errf("expected digits after '$' at byte %d (numbered placeholder is $1, $2, ...)", lx.pos)
		}
		op := lx.src[lx.pos:j]
		lx.pos = j
		return op, nil
	}
	return "", lx.errf("unexpected character %q", string(c))
}

// lexBody captures a balanced { ... } block, skipping PyLite string
// literals so that braces inside them do not confuse the balance count.
func (lx *lexer) lexBody() (string, error) {
	depth := 0
	start := lx.pos
	i := lx.pos
	for i < len(lx.src) {
		c := lx.src[i]
		switch c {
		case '{':
			depth++
			i++
		case '}':
			depth--
			i++
			if depth == 0 {
				lx.pos = i
				return lx.src[start+1 : i-1], nil
			}
		case '\'', '"':
			q := c
			// triple-quoted?
			if strings.HasPrefix(lx.src[i:], strings.Repeat(string(q), 3)) {
				end := strings.Index(lx.src[i+3:], strings.Repeat(string(q), 3))
				if end < 0 {
					return "", lx.errf("unterminated string inside UDF body")
				}
				i += 3 + end + 3
				continue
			}
			i++
			for i < len(lx.src) && lx.src[i] != q {
				if lx.src[i] == '\\' {
					i++
				}
				i++
			}
			if i >= len(lx.src) {
				return "", lx.errf("unterminated string inside UDF body")
			}
			i++
		case '#':
			for i < len(lx.src) && lx.src[i] != '\n' {
				i++
			}
		default:
			i++
		}
	}
	return "", lx.errf("unterminated UDF body: missing '}'")
}

func isSQLDigit(c byte) bool { return c >= '0' && c <= '9' }
func isSQLIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isSQLIdentCont(c byte) bool { return isSQLIdentStart(c) || isSQLDigit(c) }
