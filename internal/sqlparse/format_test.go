package sqlparse

import (
	"strings"
	"testing"
)

// formatRoundTrips checks Format∘Parse is a fixpoint: formatting, parsing
// and formatting again must not change the text.
func formatRoundTrips(t *testing.T, sql string) string {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	once := Format(st)
	st2, err := Parse(once)
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", once, err)
	}
	twice := Format(st2)
	if once != twice {
		t.Fatalf("format not stable:\n1: %s\n2: %s", once, twice)
	}
	return once
}

func TestFormatRoundTripCorpus(t *testing.T) {
	corpus := []string{
		`SELECT 1`,
		`SELECT i, s FROM t`,
		`SELECT * FROM sys.functions`,
		`SELECT i * 2 + 1 AS x FROM t WHERE i > 3 AND s <> 'a' ORDER BY x DESC LIMIT 5`,
		`SELECT COUNT(*), SUM(i) FROM t GROUP BY g`,
		`SELECT mean_deviation(i) FROM numbers`,
		`SELECT * FROM loadNumbers('/tmp/csvs')`,
		`SELECT * FROM train_rnforest((SELECT data, labels FROM trainingset), 5)`,
		`SELECT * FROM (SELECT i FROM t WHERE i < 3) sub`,
		`SELECT CAST(i AS DOUBLE) FROM t WHERE s IS NOT NULL`,
		`SELECT i FROM t WHERE NOT (i = 1 OR i = 2)`,
		`SELECT 'it''s' || s FROM t`,
		`SELECT -i FROM t WHERE i IS NULL`,
		`INSERT INTO t VALUES (1, 'a', 2.5, TRUE, NULL), (2, 'b', -1.0, FALSE, NULL)`,
		`CREATE TABLE t (i INTEGER, f DOUBLE, s STRING, b BOOLEAN, bl BLOB)`,
		`DROP TABLE t`,
		`DROP FUNCTION f`,
		`COPY INTO t FROM 'dir/file.csv' WITH HEADER`,
		`SELECT 1.5e10`,
		`SELECT ABS(i), ROUND(f, 2) FROM t ORDER BY 1`,
	}
	for _, sql := range corpus {
		formatRoundTrips(t, sql)
	}
}

func TestFormatCreateFunctionRoundTrip(t *testing.T) {
	sql := `CREATE OR REPLACE FUNCTION f(a INTEGER, b STRING) RETURNS TABLE(x DOUBLE, y BLOB) LANGUAGE PYTHON {
    d = {'x': 1.0, 'y': b}
    return d
}`
	out := formatRoundTrips(t, sql)
	if !strings.Contains(out, "CREATE OR REPLACE FUNCTION f(a INTEGER, b STRING)") {
		t.Fatalf("header: %s", out)
	}
	if !strings.Contains(out, "RETURNS TABLE(x DOUBLE, y BLOB)") {
		t.Fatalf("returns: %s", out)
	}
	// the body must survive byte-exactly modulo indentation
	st, _ := Parse(out)
	cf := st.(*CreateFunction)
	if !strings.Contains(cf.Body, "d = {'x': 1.0, 'y': b}") {
		t.Fatalf("body: %q", cf.Body)
	}
}

func TestFormatPreservesSemantics(t *testing.T) {
	// Precedence must survive the round trip even though Format adds
	// parentheses.
	sql := `SELECT 1 + 2 * 3 - 4 / 2`
	st, _ := Parse(sql)
	out := Format(st)
	st2, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	// evaluate both ASTs by structural comparison of formatted forms
	if Format(st2) != out {
		t.Fatalf("unstable: %s vs %s", Format(st2), out)
	}
	if !strings.Contains(out, "(2 * 3)") || !strings.Contains(out, "(4 / 2)") {
		t.Fatalf("precedence lost: %s", out)
	}
}

func TestFormatExprEdgeCases(t *testing.T) {
	cases := map[string]string{
		`SELECT 2.0`:         "2.0", // float keeps a decimal point
		`SELECT 1e6`:         "1e+06",
		`SELECT TRUE, FALSE`: "TRUE, FALSE",
		`SELECT t.c FROM t`:  "t.c",
	}
	for sql, want := range cases {
		st, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		if out := Format(st); !strings.Contains(out, want) {
			t.Errorf("Format(%q) = %q, want it to contain %q", sql, out, want)
		}
	}
}
