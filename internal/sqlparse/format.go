package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a statement back to SQL text. The output re-parses to an
// equivalent AST; devUDF's query rewriting (UDF call → extract function)
// round-trips through this printer.
func Format(st Statement) string {
	var sb strings.Builder
	formatStmt(&sb, st)
	return sb.String()
}

func formatStmt(sb *strings.Builder, st Statement) {
	switch st := st.(type) {
	case *CreateTable:
		sb.WriteString("CREATE TABLE ")
		sb.WriteString(quoteQualified(st.Name))
		sb.WriteString(" (")
		for i, col := range st.Schema {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(quoteIdent(col.Name))
			sb.WriteByte(' ')
			sb.WriteString(col.Type.String())
		}
		sb.WriteByte(')')
	case *DropTable:
		sb.WriteString("DROP TABLE ")
		sb.WriteString(quoteQualified(st.Name))
	case *CreateFunction:
		sb.WriteString("CREATE ")
		if st.OrReplace {
			sb.WriteString("OR REPLACE ")
		}
		sb.WriteString("FUNCTION ")
		sb.WriteString(quoteQualified(st.Name))
		sb.WriteByte('(')
		for i, p := range st.Params {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(quoteIdent(p.Name))
			sb.WriteByte(' ')
			sb.WriteString(p.Type.String())
		}
		sb.WriteString(") RETURNS ")
		if st.IsTable {
			sb.WriteString("TABLE(")
			for i, r := range st.Returns {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(quoteIdent(r.Name))
				sb.WriteByte(' ')
				sb.WriteString(r.Type.String())
			}
			sb.WriteByte(')')
		} else {
			sb.WriteString(st.Returns[0].Type.String())
		}
		sb.WriteString(" LANGUAGE ")
		sb.WriteString(st.Language)
		sb.WriteString(" {\n")
		sb.WriteString(indentLines(st.Body, "    "))
		sb.WriteString("\n}")
	case *DropFunction:
		sb.WriteString("DROP FUNCTION ")
		sb.WriteString(quoteQualified(st.Name))
	case *Insert:
		sb.WriteString("INSERT INTO ")
		sb.WriteString(quoteQualified(st.Table))
		sb.WriteString(" VALUES ")
		for i, row := range st.Rows {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteByte('(')
			for j, e := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(FormatExpr(e))
			}
			sb.WriteByte(')')
		}
	case *CopyInto:
		sb.WriteString("COPY INTO ")
		sb.WriteString(quoteQualified(st.Table))
		sb.WriteString(" FROM ")
		sb.WriteString(quoteSQLString(st.Path))
		if st.Header {
			sb.WriteString(" WITH HEADER")
		}
	case *Select:
		formatSelect(sb, st)
	default:
		fmt.Fprintf(sb, "/* unsupported %T */", st)
	}
}

func indentLines(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i, ln := range lines {
		if strings.TrimSpace(ln) != "" {
			lines[i] = prefix + ln
		}
	}
	return strings.Join(lines, "\n")
}

func formatSelect(sb *strings.Builder, sel *Select) {
	sb.WriteString("SELECT ")
	if sel.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, item := range sel.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if item.Star {
			sb.WriteByte('*')
			continue
		}
		sb.WriteString(FormatExpr(item.Expr))
		if item.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(quoteIdent(item.Alias))
		}
	}
	switch f := sel.From.(type) {
	case nil:
	case *FromTable:
		sb.WriteString(" FROM ")
		sb.WriteString(quoteQualified(f.Name))
		if f.Alias != "" {
			sb.WriteByte(' ')
			sb.WriteString(quoteIdent(f.Alias))
		}
	case *FromFunc:
		sb.WriteString(" FROM ")
		sb.WriteString(FormatExpr(f.Call))
		if f.Alias != "" {
			sb.WriteByte(' ')
			sb.WriteString(quoteIdent(f.Alias))
		}
	case *FromSelect:
		sb.WriteString(" FROM (")
		formatSelect(sb, f.Sel)
		sb.WriteByte(')')
		if f.Alias != "" {
			sb.WriteByte(' ')
			sb.WriteString(quoteIdent(f.Alias))
		}
	}
	if sel.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(FormatExpr(sel.Where))
	}
	if len(sel.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range sel.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(FormatExpr(e))
		}
	}
	if sel.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(FormatExpr(sel.Having))
	}
	if len(sel.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range sel.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(FormatExpr(o.Expr))
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if sel.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.FormatInt(sel.Limit, 10))
	}
}

// FormatExpr renders an expression back to SQL text.
func FormatExpr(e Expr) string {
	switch e := e.(type) {
	case *ColRef:
		if e.Table != "" {
			return quoteIdent(e.Table) + "." + quoteIdent(e.Name)
		}
		return quoteIdent(e.Name)
	case *IntLit:
		return strconv.FormatInt(e.Value, 10)
	case *FloatLit:
		s := strconv.FormatFloat(e.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *StrLit:
		return quoteSQLString(e.Value)
	case *BoolLit:
		if e.Value {
			return "TRUE"
		}
		return "FALSE"
	case *NullLit:
		return "NULL"
	case *Placeholder:
		if e.Numbered {
			return "$" + strconv.Itoa(e.Index+1)
		}
		return "?"
	case *BinaryExpr:
		return "(" + FormatExpr(e.L) + " " + e.Op + " " + FormatExpr(e.R) + ")"
	case *UnaryExpr:
		if e.Op == "NOT" {
			return "(NOT " + FormatExpr(e.X) + ")"
		}
		return "(" + e.Op + FormatExpr(e.X) + ")"
	case *IsNullExpr:
		if e.Neg {
			return "(" + FormatExpr(e.X) + " IS NOT NULL)"
		}
		return "(" + FormatExpr(e.X) + " IS NULL)"
	case *FuncCall:
		var sb strings.Builder
		sb.WriteString(quoteQualified(e.Name))
		sb.WriteByte('(')
		if e.Star {
			sb.WriteByte('*')
		}
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(FormatExpr(a))
		}
		sb.WriteByte(')')
		return sb.String()
	case *Subquery:
		var sb strings.Builder
		sb.WriteByte('(')
		formatSelect(&sb, e.Sel)
		sb.WriteByte(')')
		return sb.String()
	case *CastExpr:
		return "CAST(" + FormatExpr(e.X) + " AS " + e.To.String() + ")"
	default:
		return fmt.Sprintf("/* unsupported %T */", e)
	}
}

func quoteSQLString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// plainIdent reports whether name lexes back as the same bare identifier;
// anything else (empty, odd characters, reserved words) must be printed as
// a "quoted" identifier or Format output would not reparse.
func plainIdent(name string) bool {
	if name == "" || reservedWords[strings.ToLower(name)] {
		return false
	}
	if !isSQLIdentStart(name[0]) {
		return false
	}
	for i := 1; i < len(name); i++ {
		if !isSQLIdentCont(name[i]) {
			return false
		}
	}
	return true
}

func quoteIdent(name string) string {
	if plainIdent(name) {
		return name
	}
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

// quoteQualified quotes each part of a possibly schema-qualified name
// ("sys.functions").
func quoteQualified(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return quoteIdent(name[:i]) + "." + quoteIdent(name[i+1:])
	}
	return quoteIdent(name)
}
