package sqlparse

import "repro/internal/storage"

// Statement is any parsed SQL statement.
type Statement interface{ stmtNode() }

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name   string
	Schema storage.Schema
}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name string
}

// CreateFunction is CREATE [OR REPLACE] FUNCTION name(params) RETURNS ...
// LANGUAGE PYTHON { body }.
type CreateFunction struct {
	Name      string
	Params    storage.Schema
	Returns   storage.Schema // one anonymous column for scalar functions
	IsTable   bool
	Language  string
	Body      string
	OrReplace bool
}

// DropFunction is DROP FUNCTION name.
type DropFunction struct {
	Name string
}

// Insert is INSERT INTO name VALUES (...), (...).
type Insert struct {
	Table string
	Rows  [][]Expr
}

// CopyInto is COPY INTO name FROM 'path' [WITH HEADER]; it bulk-loads CSV.
type CopyInto struct {
	Table  string
	Path   string
	Header bool
}

// SelectItem is one projection: either * or an expression with an optional
// alias.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a SELECT query.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     FromClause // nil for FROM-less selects
	Where    Expr       // nil when absent
	GroupBy  []Expr
	Having   Expr // nil when absent
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
}

func (*CreateTable) stmtNode()    {}
func (*DropTable) stmtNode()      {}
func (*CreateFunction) stmtNode() {}
func (*DropFunction) stmtNode()   {}
func (*Insert) stmtNode()         {}
func (*CopyInto) stmtNode()       {}
func (*Select) stmtNode()         {}

// FromClause is a data source in FROM.
type FromClause interface{ fromNode() }

// FromTable scans a named table (possibly a sys.* meta table).
type FromTable struct {
	Name  string
	Alias string
}

// FromFunc scans the output of a table function: SELECT * FROM f(...).
type FromFunc struct {
	Call  *FuncCall
	Alias string
}

// FromSelect scans a subquery.
type FromSelect struct {
	Sel   *Select
	Alias string
}

func (*FromTable) fromNode()  {}
func (*FromFunc) fromNode()   {}
func (*FromSelect) fromNode() {}

// Expr is any SQL expression.
type Expr interface{ exprNode() }

// ColRef references a column, optionally table-qualified.
type ColRef struct {
	Table string // "" when unqualified
	Name  string
}

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

// FloatLit is a float literal.
type FloatLit struct{ Value float64 }

// StrLit is a string literal.
type StrLit struct{ Value string }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Value bool }

// NullLit is NULL.
type NullLit struct{}

// Placeholder is a bind parameter awaiting a value at execution time:
// positional `?` or numbered `$n` (1-based in the SQL text). Index is the
// 0-based bind slot — assigned in appearance order for `?`, n-1 for `$n`.
// A statement uses one style only; the parser rejects mixing them.
type Placeholder struct {
	Index    int
	Numbered bool
}

// BinaryExpr applies an operator: arithmetic, comparison, AND, OR, ||.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr is -x or NOT x.
type UnaryExpr struct {
	Op string
	X  Expr
}

// IsNullExpr is `x IS [NOT] NULL`.
type IsNullExpr struct {
	X   Expr
	Neg bool
}

// FuncCall invokes a function: UDF, aggregate or scalar builtin.
// COUNT(*) sets Star.
type FuncCall struct {
	Name string
	Args []Expr
	Star bool
}

// Subquery is a parenthesized SELECT used as a (table-valued) argument —
// the paper's `train_rnforest((SELECT data, labels FROM trainingset), n)`
// pattern, where each output column binds to one UDF parameter.
type Subquery struct {
	Sel *Select
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X  Expr
	To storage.Type
}

func (*ColRef) exprNode()      {}
func (*Placeholder) exprNode() {}
func (*IntLit) exprNode()      {}
func (*FloatLit) exprNode()    {}
func (*StrLit) exprNode()      {}
func (*BoolLit) exprNode()     {}
func (*NullLit) exprNode()     {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*IsNullExpr) exprNode()  {}
func (*FuncCall) exprNode()    {}
func (*Subquery) exprNode()    {}
func (*CastExpr) exprNode()    {}
