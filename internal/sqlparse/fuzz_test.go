package sqlparse

import "testing"

var sqlFuzzSeeds = []string{
	"",
	"SELECT 1",
	"SELECT i, j FROM t WHERE i > 3 ORDER BY j DESC LIMIT 5",
	"SELECT mean_deviation(i) FROM numbers",
	"SELECT * FROM loadNumbers('/data') AS t",
	"SELECT count(*), sum(i) FROM t GROUP BY j",
	"CREATE TABLE numbers (i INTEGER, s STRING, f DOUBLE, b BOOLEAN)",
	"DROP TABLE numbers",
	"INSERT INTO t VALUES (1, 'a'), (-2, 'b')",
	"COPY INTO t FROM '/tmp/x.csv'",
	`CREATE FUNCTION f(a INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return a * 2 };`,
	`CREATE OR REPLACE FUNCTION g(x DOUBLE, y DOUBLE) RETURNS TABLE(a DOUBLE) LANGUAGE PYTHON { return {'a': x} };`,
	"DROP FUNCTION f",
	"SELECT 'it''s' || 'quoted'",
	"SELECT (1 + 2) * -3 AS v",
	"SELECT CAST(i AS DOUBLE) FROM t",
	"SELECT sys_extract('f', 'q', 'o', 'p') ",
	"select distinct i from t;",
	"SELECT\n\ti\nFROM t -- comment",
	"SELECT \x00",
	// placeholders: positional and numbered, in expressions, WHERE
	// conjuncts, and UDF call arguments
	"SELECT ?",
	"SELECT i FROM t WHERE i > ? AND s = ?",
	"SELECT mean_deviation(?, i) FROM numbers WHERE i < $0",
	"SELECT $1 + $2 FROM t WHERE i = $1",
	"SELECT $12, $3 FROM t",
	"INSERT INTO t VALUES (?, ?)",
	"SELECT ? + $1",
	"SELECT f($2) FROM g($1) WHERE i IS NOT NULL",
}

// FuzzParseFormat asserts the SQL lexer/parser never panic and that the
// printer is stable: Format(Parse(sql)) must reparse, and reformatting the
// reparse must be a fixed point. devUDF's export path (CREATE OR REPLACE
// FUNCTION built through the AST printer) relies on exactly this property.
func FuzzParseFormat(f *testing.F) {
	for _, seed := range sqlFuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := Parse(sql)
		if err != nil {
			if _, err2 := Parse(sql); err2 == nil || err.Error() != err2.Error() {
				t.Fatalf("nondeterministic parse error: %v vs %v", err, err2)
			}
			return
		}
		out1 := Format(st)
		st2, err := Parse(out1)
		if err != nil {
			t.Fatalf("formatted statement does not reparse: %q: %v", out1, err)
		}
		out2 := Format(st2)
		if out1 != out2 {
			t.Fatalf("format not a fixed point:\n first: %q\nsecond: %q", out1, out2)
		}
	})
}

// TestQuotedIdentRoundTrip pins the quoting contract the fuzzers rely on:
// reserved words and odd names are representable via "quoted" identifiers,
// survive Format → Parse → Format, and bare reserved words are rejected
// with a hint.
func TestQuotedIdentRoundTrip(t *testing.T) {
	for _, sql := range []string{
		`SELECT "select" FROM "from"`,
		`SELECT "order" AS "group" FROM t`,
		`SELECT ""`,
		`SELECT "we""ird" FROM t`,
		`CREATE TABLE "table" ("null" INTEGER)`,
	} {
		st, err := Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		out := Format(st)
		st2, err := Parse(out)
		if err != nil {
			t.Fatalf("%s: formatted %q does not reparse: %v", sql, out, err)
		}
		if out2 := Format(st2); out2 != out {
			t.Fatalf("%s: not a fixed point: %q vs %q", sql, out, out2)
		}
	}
	if _, err := Parse(`SELECT select FROM t`); err == nil {
		t.Fatal("bare reserved word should be rejected")
	}
	// a quoted identifier containing a dot is ONE column reference, never
	// a table qualification (fuzz-found: `SELECT".."` split on the dot)
	st, err := Parse(`SELECT "a.b" FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	ref, ok := st.(*Select).Items[0].Expr.(*ColRef)
	if !ok || ref.Table != "" || ref.Name != "a.b" {
		t.Fatalf("quoted dotted name mis-split: %+v", ref)
	}
}

// FuzzParseAll asserts the multi-statement splitter (init scripts, ExecAll)
// never panics and agrees with itself.
func FuzzParseAll(f *testing.F) {
	for _, seed := range sqlFuzzSeeds {
		f.Add(seed)
	}
	f.Add("SELECT 1; SELECT 2;\nCREATE TABLE t (i INTEGER);")
	f.Add("; ;;")
	f.Fuzz(func(t *testing.T, sql string) {
		stmts, err := ParseAll(sql)
		if err != nil {
			return
		}
		for _, st := range stmts {
			out := Format(st)
			if _, err := Parse(out); err != nil {
				t.Fatalf("formatted statement does not reparse: %q: %v", out, err)
			}
		}
	})
}
