package script

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestDelStatement(t *testing.T) {
	env := runSrc(t, `
x = 1
del x
l = [1, 2, 3]
del l[1]
d = {"a": 1, "b": 2}
del d["a"]
`)
	if _, ok := env.Get("x"); ok {
		t.Fatal("x should be deleted")
	}
	if got := getVar(t, env, "l").Repr(); got != "[1, 3]" {
		t.Fatalf("l: %s", got)
	}
	if got := getVar(t, env, "d").Repr(); got != "{'b': 2}" {
		t.Fatalf("d: %s", got)
	}
	if err := runSrcErr(t, `del missing_name`); err == nil {
		t.Fatal("del of unknown name should fail")
	}
	if err := runSrcErr(t, `
d = {}
del d["k"]
`); err == nil || !strings.Contains(err.Error(), "KeyError") {
		t.Fatalf("del missing key: %v", err)
	}
}

func TestDictMethodsExtended(t *testing.T) {
	env := runSrc(t, `
d = {"a": 1}
d.update({"b": 2, "a": 9})
v = d.pop("a")
miss = d.pop("zz", -1)
cp = d.copy()
cp["c"] = 3
n_orig = len(d)
n_copy = len(cp)
items = d.items()
vals = d.values()
`)
	wantInt(t, env, "v", 9)
	wantInt(t, env, "miss", -1)
	wantInt(t, env, "n_orig", 1)
	wantInt(t, env, "n_copy", 2)
	if got := getVar(t, env, "items").Repr(); got != "[('b', 2)]" {
		t.Fatalf("items: %s", got)
	}
	if got := getVar(t, env, "vals").Repr(); got != "[2]" {
		t.Fatalf("values: %s", got)
	}
}

func TestListMethodsExtended(t *testing.T) {
	env := runSrc(t, `
l = [1, 2, 3, 2]
l.insert(0, 0)
l.insert(-1, 99)
c = l.count(2)
l.remove(2)
l.reverse()
cp = l.copy()
cp.append(7)
n = len(l)
ncp = len(cp)
`)
	wantInt(t, env, "c", 2)
	wantInt(t, env, "n", 5)
	wantInt(t, env, "ncp", 6)
	if err := runSrcErr(t, `[].pop()`); err == nil {
		t.Fatal("pop from empty list should fail")
	}
	if err := runSrcErr(t, `[1].remove(9)`); err == nil {
		t.Fatal("remove missing should fail")
	}
}

func TestSortedWithKeyAndLambdaDefaults(t *testing.T) {
	env := runSrc(t, `
words = ["bbb", "a", "cc"]
by_len = sorted(words, key=lambda w: len(w))
add = lambda a, b=10: a + b
x = add(1)
y = add(1, 2)
`)
	if got := getVar(t, env, "by_len").Repr(); got != "['a', 'cc', 'bbb']" {
		t.Fatalf("by_len: %s", got)
	}
	wantInt(t, env, "x", 11)
	wantInt(t, env, "y", 3)
}

func TestAugmentedOperators(t *testing.T) {
	env := runSrc(t, `
x = 10
x -= 3
x *= 2
x //= 3
x **= 2
x %= 7
y = 8
y /= 2
`)
	wantInt(t, env, "x", 2) // ((10-3)*2)//3 = 4; 4**2=16; 16%7=2
	wantFloat(t, env, "y", 4)
}

func TestNestedFunctionsAndRecursionInClosure(t *testing.T) {
	env := runSrc(t, `
def outer(n):
    def helper(k):
        if k <= 0:
            return 0
        return k + helper(k - 1)
    return helper(n)

s = outer(4)
`)
	wantInt(t, env, "s", 10)
}

func TestPickleDumpToFile(t *testing.T) {
	fs := core.NewMemFS(nil)
	mod, err := Parse("t", `
import pickle
data = {"k": [1, 2, 3]}
f = open("out.bin", "wb")
pickle.dump(data, f)
f.close()
back = pickle.load(open("out.bin", "rb"))
same = back == data
`)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp()
	in.FS = fs
	env, err := in.Run(mod)
	if err != nil {
		t.Fatal(err)
	}
	if !Truthy(getVar(t, env, "same")) {
		t.Fatal("pickle file round trip")
	}
}

func TestOSPathJoin(t *testing.T) {
	env := runSrcWithFS(t, core.NewMemFS(map[string]string{"d/f.txt": "x"}), `
import os
p = os.path.join("a", "b", "c.txt")
b = os.path.basename("x/y/z.csv")
`)
	wantStr(t, env, "p", "a/b/c.txt")
	wantStr(t, env, "b", "z.csv")
}

func runSrcWithFS(t *testing.T, fs core.FS, src string) *Env {
	t.Helper()
	mod, err := Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp()
	in.FS = fs
	env, err := in.Run(mod)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestRandomModuleDeterminism(t *testing.T) {
	src := `
import random
random.seed(7)
a = random.randint(0, 1000000)
random.seed(7)
b = random.randint(0, 1000000)
same = a == b
l = [1, 2, 3, 4, 5]
s = random.sample(l, 3)
n = len(s)
`
	env := runSrc(t, src)
	if !Truthy(getVar(t, env, "same")) {
		t.Fatal("seeded randint must be deterministic")
	}
	wantInt(t, env, "n", 3)
}

func TestMathModuleExtended(t *testing.T) {
	env := runSrc(t, `
import math
a = math.pow(2, 10)
b = math.log2(8)
c = math.fabs(-2.5)
d = math.exp(0)
`)
	wantFloat(t, env, "a", 1024)
	wantFloat(t, env, "b", 3)
	wantFloat(t, env, "c", 2.5)
	wantFloat(t, env, "d", 1)
}

func TestStringFormattingErrors(t *testing.T) {
	for _, src := range []string{
		`x = "%d" % "nope"`,
		`x = "%d %d" % 1`,
		`x = "%d" % (1, 2)`,
		`x = "%q" % 1`,
	} {
		if err := runSrcErr(t, src); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
	env := runSrc(t, `
a = "%s=%d (%f)" % ("x", 3, 1.5)
b = "100%%" % ()
`)
	wantStr(t, env, "a", "x=3 (1.500000)")
	wantStr(t, env, "b", "100%")
}

func TestIsAndIdentity(t *testing.T) {
	env := runSrc(t, `
a = [1]
b = a
c = [1]
same = a is b
diff = a is c
eq = a == c
none_is = None is None
not_none = a is not None
`)
	if !Truthy(getVar(t, env, "same")) || Truthy(getVar(t, env, "diff")) {
		t.Fatal("identity semantics")
	}
	if !Truthy(getVar(t, env, "eq")) || !Truthy(getVar(t, env, "none_is")) || !Truthy(getVar(t, env, "not_none")) {
		t.Fatal("equality/None semantics")
	}
}

func TestWhileWithBreakElseAbsence(t *testing.T) {
	env := runSrc(t, `
found = -1
i = 0
while i < 100:
    if i * i > 50:
        found = i
        break
    i += 1
`)
	wantInt(t, env, "found", 8)
}

func TestNegativeStepLoop(t *testing.T) {
	env := runSrc(t, `
out = []
for i in range(5, 0, -2):
    out.append(i)
`)
	if got := getVar(t, env, "out").Repr(); got != "[5, 3, 1]" {
		t.Fatalf("out: %s", got)
	}
}

func TestSliceEdgeCases(t *testing.T) {
	env := runSrc(t, `
l = [0, 1, 2, 3, 4]
a = l[:]
b = l[2:]
c = l[:2]
d = l[-2:]
e = l[10:20]
f = l[3:1]
s = "hello"[1:-1]
`)
	if getVar(t, env, "a").Repr() != "[0, 1, 2, 3, 4]" ||
		getVar(t, env, "b").Repr() != "[2, 3, 4]" ||
		getVar(t, env, "c").Repr() != "[0, 1]" ||
		getVar(t, env, "d").Repr() != "[3, 4]" ||
		getVar(t, env, "e").Repr() != "[]" ||
		getVar(t, env, "f").Repr() != "[]" {
		t.Fatal("slice semantics")
	}
	wantStr(t, env, "s", "ell")
}

func TestKeywordOnlyCallErrors(t *testing.T) {
	if err := runSrcErr(t, `
def f(a):
    return a
f(b=1)
`); err == nil || !strings.Contains(err.Error(), "unexpected keyword") {
		t.Fatalf("err: %v", err)
	}
	if err := runSrcErr(t, `
def f(a):
    return a
f(1, a=2)
`); err == nil || !strings.Contains(err.Error(), "multiple values") {
		t.Fatalf("err: %v", err)
	}
	if err := runSrcErr(t, `
def f(a, b):
    return a
f(1)
`); err == nil || !strings.Contains(err.Error(), "missing required argument") {
		t.Fatalf("err: %v", err)
	}
}

func TestUnpackErrors(t *testing.T) {
	if err := runSrcErr(t, `(a, b) = [1, 2, 3]`); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if err := runSrcErr(t, `(a, b) = 5`); err == nil {
		t.Fatal("non-sequence unpack should fail")
	}
	env := runSrc(t, `
[p, q] = (7, 8)
`)
	wantInt(t, env, "p", 7)
	wantInt(t, env, "q", 8)
}

func TestDictUnpackingListing3Idiom(t *testing.T) {
	// documented deviation: unpacking a dict yields its values in order
	env := runSrc(t, `
d = {"data": [1, 2], "labels": [0, 1]}
(tdata, tlabels) = d
`)
	if getVar(t, env, "tdata").Repr() != "[1, 2]" || getVar(t, env, "tlabels").Repr() != "[0, 1]" {
		t.Fatal("dict unpack should bind values in insertion order")
	}
}

func TestTryFinallyWithReturn(t *testing.T) {
	env := runSrc(t, `
log = []

def f():
    try:
        return 1
    finally:
        log.append("cleanup")

x = f()
`)
	wantInt(t, env, "x", 1)
	if got := getVar(t, env, "log").Repr(); got != "['cleanup']" {
		t.Fatalf("finally must run on return: %s", got)
	}
}

func TestRaiseInsideTryPropagates(t *testing.T) {
	err := runSrcErr(t, `
try:
    raise ValueError("inner")
finally:
    x = 1
`)
	if !strings.Contains(err.Error(), "inner") {
		t.Fatalf("err: %v", err)
	}
}

func TestGlobalInNestedFunction(t *testing.T) {
	env := runSrc(t, `
count = 0

def outer():
    def inner():
        global count
        count += 1
    inner()
    inner()

outer()
`)
	wantInt(t, env, "count", 2)
}

func TestEvalInFrameIsolation(t *testing.T) {
	mod, err := Parse("t", `
x = 5

def f(y):
    return y + 1

r = f(2)
`)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp()
	var captured *Frame
	in.Trace = func(_ *Interp, ev TraceEvent) error {
		if ev.Kind == TraceLine && ev.Frame.FuncName == "f" {
			captured = ev.Frame
			// evaluate a watch mid-flight
			v, err := in.EvalInFrame("y * 10", ev.Frame)
			if err != nil {
				t.Errorf("watch: %v", err)
			} else if v.Repr() != "20" {
				t.Errorf("watch value: %s", v.Repr())
			}
		}
		return nil
	}
	if _, err := in.Run(mod); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("never saw f's frame")
	}
}

func TestListComprehension(t *testing.T) {
	env := runSrc(t, `
squares = [x * x for x in range(5)]
evens = [x for x in range(10) if x % 2 == 0]
pairsums = [a + b for (a, b) in [(1, 2), (3, 4)]]
nested = [len(w) for w in ["aa", "b", "ccc"] if len(w) > 1]
`)
	if got := getVar(t, env, "squares").Repr(); got != "[0, 1, 4, 9, 16]" {
		t.Fatalf("squares: %s", got)
	}
	if got := getVar(t, env, "evens").Repr(); got != "[0, 2, 4, 6, 8]" {
		t.Fatalf("evens: %s", got)
	}
	if got := getVar(t, env, "pairsums").Repr(); got != "[3, 7]" {
		t.Fatalf("pairsums: %s", got)
	}
	if got := getVar(t, env, "nested").Repr(); got != "[2, 3]" {
		t.Fatalf("nested: %s", got)
	}
}

func TestListComprehensionErrors(t *testing.T) {
	if _, err := Parse("bad", "x = [a for]\n"); err == nil {
		t.Fatal("bad comprehension should fail to parse")
	}
	if err := runSrcErr(t, "x = [y for y in 5]\n"); err == nil {
		t.Fatal("non-iterable comprehension should fail")
	}
}

func TestListComprehensionInUDFStyle(t *testing.T) {
	// the Listing 3 accuracy computation, comprehension-style
	env := runSrc(t, `
predictions = [0, 1, 1, 0]
tlabels = [0, 1, 0, 0]
correct = sum([1 for i in range(len(predictions)) if predictions[i] == tlabels[i]])
`)
	wantInt(t, env, "correct", 3)
}
