package script

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
)

// This file implements the binary value codec behind PyLite's pickle module.
// The format is self-describing and versioned; it is also what the wire
// protocol ships for UDF input blobs (the paper's input.bin).

const pickleMagic = "PKL1"

// value tags
const (
	tagNone byte = iota
	tagFalse
	tagTrue
	tagInt
	tagFloat
	tagStr
	tagBytes
	tagList
	tagTuple
	tagDict
	tagObject
)

// Picklable is implemented by Opaque payloads of native objects that can
// round-trip through pickle (e.g. the mllib classifier).
type Picklable interface {
	// PickleClass identifies the object class for the unpickler registry.
	PickleClass() string
	// PickleData serializes the object state.
	PickleData() ([]byte, error)
}

var (
	unpicklersMu sync.RWMutex
	unpicklers   = map[string]func([]byte) (Value, error){}
)

// RegisterUnpickler installs a decoder for a native object class. Packages
// providing picklable objects call this from init().
func RegisterUnpickler(class string, fn func([]byte) (Value, error)) {
	unpicklersMu.Lock()
	defer unpicklersMu.Unlock()
	unpicklers[class] = fn
}

// Marshal serializes a value to the PyLite pickle format.
func Marshal(v Value) ([]byte, error) {
	buf := []byte(pickleMagic)
	return marshalInto(buf, v)
}

func marshalInto(buf []byte, v Value) ([]byte, error) {
	var err error
	switch v := v.(type) {
	case NoneVal:
		buf = append(buf, tagNone)
	case BoolVal:
		if v {
			buf = append(buf, tagTrue)
		} else {
			buf = append(buf, tagFalse)
		}
	case IntVal:
		buf = append(buf, tagInt)
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	case FloatVal:
		buf = append(buf, tagFloat)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(float64(v)))
	case StrVal:
		buf = append(buf, tagStr)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	case BytesVal:
		buf = append(buf, tagBytes)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	case *ListVal:
		buf = append(buf, tagList)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Items)))
		for _, it := range v.Items {
			if buf, err = marshalInto(buf, it); err != nil {
				return nil, err
			}
		}
	case *TupleVal:
		buf = append(buf, tagTuple)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Items)))
		for _, it := range v.Items {
			if buf, err = marshalInto(buf, it); err != nil {
				return nil, err
			}
		}
	case *DictVal:
		buf = append(buf, tagDict)
		items := v.Items()
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(items)))
		for _, kv := range items {
			if buf, err = marshalInto(buf, kv[0]); err != nil {
				return nil, err
			}
			if buf, err = marshalInto(buf, kv[1]); err != nil {
				return nil, err
			}
		}
	case RangeVal:
		// ranges pickle as expanded lists, matching Python's list(range(...))
		lst := &ListVal{}
		for i, n := v.Start, v.Len(); int64(len(lst.Items)) < n; i += v.Step {
			lst.Items = append(lst.Items, IntVal(i))
		}
		return marshalInto(buf, lst)
	case *ObjectVal:
		p, ok := v.Opaque.(Picklable)
		if !ok {
			return nil, core.Errorf(core.KindType, "cannot pickle '%s' object", v.Class)
		}
		data, err := p.PickleData()
		if err != nil {
			return nil, err
		}
		class := p.PickleClass()
		buf = append(buf, tagObject)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(class)))
		buf = append(buf, class...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(data)))
		buf = append(buf, data...)
	default:
		return nil, core.Errorf(core.KindType, "cannot pickle '%s' object", v.TypeName())
	}
	return buf, nil
}

// Unmarshal decodes a value from the PyLite pickle format.
func Unmarshal(data []byte) (Value, error) {
	if len(data) < len(pickleMagic) || string(data[:len(pickleMagic)]) != pickleMagic {
		return nil, core.Errorf(core.KindProtocol, "not a PyLite pickle stream")
	}
	v, rest, err := unmarshalFrom(data[len(pickleMagic):])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, core.Errorf(core.KindProtocol, "trailing garbage after pickled value (%d bytes)", len(rest))
	}
	return v, nil
}

func truncErr() error {
	return core.Errorf(core.KindProtocol, "truncated pickle stream")
}

func take(data []byte, n int) ([]byte, []byte, error) {
	if len(data) < n {
		return nil, nil, truncErr()
	}
	return data[:n], data[n:], nil
}

func takeU32(data []byte) (uint32, []byte, error) {
	b, rest, err := take(data, 4)
	if err != nil {
		return 0, nil, err
	}
	return binary.BigEndian.Uint32(b), rest, nil
}

func unmarshalFrom(data []byte) (Value, []byte, error) {
	if len(data) == 0 {
		return nil, nil, truncErr()
	}
	tag := data[0]
	data = data[1:]
	switch tag {
	case tagNone:
		return None, data, nil
	case tagFalse:
		return BoolVal(false), data, nil
	case tagTrue:
		return BoolVal(true), data, nil
	case tagInt:
		b, rest, err := take(data, 8)
		if err != nil {
			return nil, nil, err
		}
		return IntVal(int64(binary.BigEndian.Uint64(b))), rest, nil
	case tagFloat:
		b, rest, err := take(data, 8)
		if err != nil {
			return nil, nil, err
		}
		return FloatVal(math.Float64frombits(binary.BigEndian.Uint64(b))), rest, nil
	case tagStr, tagBytes:
		n, rest, err := takeU32(data)
		if err != nil {
			return nil, nil, err
		}
		b, rest, err := take(rest, int(n))
		if err != nil {
			return nil, nil, err
		}
		if tag == tagStr {
			return StrVal(b), rest, nil
		}
		out := make([]byte, len(b))
		copy(out, b)
		return BytesVal(out), rest, nil
	case tagList, tagTuple:
		n, rest, err := takeU32(data)
		if err != nil {
			return nil, nil, err
		}
		// Every element takes at least one byte, so cap the preallocation at
		// the remaining input: a forged length field must fail with a
		// truncation error, not exhaust memory up front.
		capHint := int(n)
		if capHint > len(rest) {
			capHint = len(rest)
		}
		items := make([]Value, 0, capHint)
		for i := uint32(0); i < n; i++ {
			var v Value
			v, rest, err = unmarshalFrom(rest)
			if err != nil {
				return nil, nil, err
			}
			items = append(items, v)
		}
		if tag == tagList {
			return &ListVal{Items: items}, rest, nil
		}
		return &TupleVal{Items: items}, rest, nil
	case tagDict:
		n, rest, err := takeU32(data)
		if err != nil {
			return nil, nil, err
		}
		d := NewDict()
		for i := uint32(0); i < n; i++ {
			var k, v Value
			k, rest, err = unmarshalFrom(rest)
			if err != nil {
				return nil, nil, err
			}
			v, rest, err = unmarshalFrom(rest)
			if err != nil {
				return nil, nil, err
			}
			if err := d.Set(k, v); err != nil {
				return nil, nil, err
			}
		}
		return d, rest, nil
	case tagObject:
		n, rest, err := takeU32(data)
		if err != nil {
			return nil, nil, err
		}
		classB, rest, err := take(rest, int(n))
		if err != nil {
			return nil, nil, err
		}
		dn, rest, err := takeU32(rest)
		if err != nil {
			return nil, nil, err
		}
		payload, rest, err := take(rest, int(dn))
		if err != nil {
			return nil, nil, err
		}
		class := string(classB)
		unpicklersMu.RLock()
		fn, ok := unpicklers[class]
		unpicklersMu.RUnlock()
		if !ok {
			return nil, nil, core.Errorf(core.KindType, "no unpickler registered for class %q", class)
		}
		v, err := fn(payload)
		if err != nil {
			return nil, nil, err
		}
		return v, rest, nil
	default:
		return nil, nil, core.Errorf(core.KindProtocol, "unknown pickle tag %d", tag)
	}
}

// MustMarshal is a test/generator helper that panics on error.
func MustMarshal(v Value) []byte {
	b, err := Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("MustMarshal: %v", err))
	}
	return b
}
