package script

// Env is a lexical environment: a chain of scopes from the innermost
// function frame out to module globals and finally builtins.
type Env struct {
	vars    map[string]Value
	parent  *Env
	globals map[string]bool // names declared `global` in this scope
}

// NewEnv creates an environment chained to parent (which may be nil).
func NewEnv(parent *Env) *Env {
	return &Env{vars: map[string]Value{}, parent: parent}
}

// Get resolves a name through the chain.
func (e *Env) Get(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Set binds a name. If the name was declared `global` in this scope it is
// bound at module level, otherwise locally.
func (e *Env) Set(name string, v Value) {
	if e.globals != nil && e.globals[name] {
		e.moduleScope().vars[name] = v
		return
	}
	e.vars[name] = v
}

// Delete removes a binding from the nearest scope holding it, reporting
// whether it existed.
func (e *Env) Delete(name string) bool {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			delete(s.vars, name)
			return true
		}
	}
	return false
}

// DeclareGlobal marks a name as module-scoped for subsequent Sets.
func (e *Env) DeclareGlobal(name string) {
	if e.globals == nil {
		e.globals = map[string]bool{}
	}
	e.globals[name] = true
}

// moduleScope walks to the outermost environment that still has a parent
// (the module scope sits directly above builtins, or is the root).
func (e *Env) moduleScope() *Env {
	s := e
	for s.parent != nil && s.parent.parent != nil {
		s = s.parent
	}
	return s
}

// Snapshot copies the local bindings of this scope only, for debugger
// variable inspection.
func (e *Env) Snapshot() map[string]Value {
	out := make(map[string]Value, len(e.vars))
	for k, v := range e.vars {
		out[k] = v
	}
	return out
}
