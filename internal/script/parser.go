package script

import (
	"strconv"
	"strings"

	"repro/internal/core"
)

// Parser builds a Module from a token stream.
type Parser struct {
	toks []Token
	pos  int
	name string
}

// Parse parses PyLite source into a Module. name labels the module in
// tracebacks (usually the UDF or file name).
func Parse(name, src string) (*Module, error) {
	toks, err := NewLexer(src).Tokens()
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, name: name}
	mod := &Module{Name: name, Lines: strings.Split(src, "\n")}
	for !p.at(TokEOF) {
		if p.atNewline() {
			p.next()
			continue
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		mod.Body = append(mod.Body, st)
	}
	return mod, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }
func (p *Parser) atNewline() bool   { return p.at(TokNewline) }
func (p *Parser) atOp(op string) bool {
	return p.cur().Kind == TokOp && p.cur().Lit == op
}
func (p *Parser) atKw(kw string) bool {
	return p.cur().Kind == TokKeyword && p.cur().Lit == kw
}

func (p *Parser) acceptOp(op string) bool {
	if p.atOp(op) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) acceptKw(kw string) bool {
	if p.atKw(kw) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	prefix := p.name + ":" + strconv.Itoa(t.Line) + ": "
	return core.Errorf(core.KindSyntax, prefix+format, args...)
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %s", op, p.cur())
	}
	return nil
}

func (p *Parser) expectNewline() error {
	// Tolerate trailing semicolons, which the paper's listings use.
	for p.atOp(";") {
		p.next()
	}
	if p.at(TokEOF) {
		return nil
	}
	if !p.atNewline() {
		return p.errf("expected end of line, found %s", p.cur())
	}
	p.next()
	return nil
}

// block parses NEWLINE INDENT stmt+ DEDENT.
func (p *Parser) block() ([]Stmt, error) {
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	// Inline suite: `if x: return y` on one line.
	if !p.atNewline() {
		st, err := p.simpleStatement()
		if err != nil {
			return nil, err
		}
		if err := p.expectNewline(); err != nil {
			return nil, err
		}
		return []Stmt{st}, nil
	}
	p.next() // NEWLINE
	if !p.at(TokIndent) {
		return nil, p.errf("expected an indented block")
	}
	p.next()
	var body []Stmt
	for !p.at(TokDedent) && !p.at(TokEOF) {
		if p.atNewline() {
			p.next()
			continue
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
	if p.at(TokDedent) {
		p.next()
	}
	if len(body) == 0 {
		return nil, p.errf("empty block")
	}
	return body, nil
}

func (p *Parser) statement() (Stmt, error) {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Lit {
		case "if":
			return p.ifStmt()
		case "while":
			return p.whileStmt()
		case "for":
			return p.forStmt()
		case "def":
			return p.defStmt()
		case "try":
			return p.tryStmt()
		}
	}
	st, err := p.simpleStatement()
	if err != nil {
		return nil, err
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) simpleStatement() (Stmt, error) {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Lit {
		case "return":
			p.next()
			rs := &ReturnStmt{pos: pos{t.Line}}
			if !p.atNewline() && !p.at(TokEOF) && !p.atOp(";") {
				v, err := p.exprOrTuple()
				if err != nil {
					return nil, err
				}
				rs.Value = v
			}
			return rs, nil
		case "pass":
			p.next()
			return &PassStmt{pos{t.Line}}, nil
		case "break":
			p.next()
			return &BreakStmt{pos{t.Line}}, nil
		case "continue":
			p.next()
			return &ContinueStmt{pos{t.Line}}, nil
		case "import":
			return p.importStmt()
		case "from":
			return p.fromImportStmt()
		case "global":
			p.next()
			gs := &GlobalStmt{pos: pos{t.Line}}
			for {
				if !p.at(TokName) {
					return nil, p.errf("expected name after global")
				}
				gs.Names = append(gs.Names, p.next().Lit)
				if !p.acceptOp(",") {
					break
				}
			}
			return gs, nil
		case "del":
			p.next()
			target, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &DelStmt{pos{t.Line}, target}, nil
		case "assert":
			p.next()
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			as := &AssertStmt{pos: pos{t.Line}, Cond: cond}
			if p.acceptOp(",") {
				msg, err := p.expr()
				if err != nil {
					return nil, err
				}
				as.Msg = msg
			}
			return as, nil
		case "raise":
			p.next()
			rs := &RaiseStmt{pos: pos{t.Line}}
			if !p.atNewline() && !p.at(TokEOF) {
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				rs.Value = v
			}
			return rs, nil
		}
	}
	// Expression, assignment, or augmented assignment.
	lhs, err := p.exprOrTuple()
	if err != nil {
		return nil, err
	}
	if p.atOp("=") {
		p.next()
		rhs, err := p.exprOrTuple()
		if err != nil {
			return nil, err
		}
		if err := checkAssignable(lhs); err != nil {
			return nil, p.errf("%v", err)
		}
		return &AssignStmt{pos{t.Line}, lhs, rhs}, nil
	}
	for _, aug := range []string{"+=", "-=", "*=", "/=", "%=", "//=", "**="} {
		if p.atOp(aug) {
			p.next()
			rhs, err := p.exprOrTuple()
			if err != nil {
				return nil, err
			}
			if err := checkAssignable(lhs); err != nil {
				return nil, p.errf("%v", err)
			}
			return &AugAssignStmt{pos{t.Line}, lhs, strings.TrimSuffix(aug, "="), rhs}, nil
		}
	}
	return &ExprStmt{pos{t.Line}, lhs}, nil
}

func checkAssignable(e Expr) error {
	switch e := e.(type) {
	case *Name, *IndexExpr, *AttrExpr, *SliceExpr:
		return nil
	case *TupleLit:
		for _, el := range e.Elems {
			if err := checkAssignable(el); err != nil {
				return err
			}
		}
		return nil
	case *ListLit:
		for _, el := range e.Elems {
			if err := checkAssignable(el); err != nil {
				return err
			}
		}
		return nil
	default:
		return core.Errorf(core.KindSyntax, "cannot assign to this expression")
	}
}

func (p *Parser) importStmt() (Stmt, error) {
	t := p.next() // import
	mod, err := p.dottedName()
	if err != nil {
		return nil, err
	}
	alias := strings.SplitN(mod, ".", 2)[0]
	if p.acceptKw("as") {
		if !p.at(TokName) {
			return nil, p.errf("expected name after 'as'")
		}
		alias = p.next().Lit
	}
	return &ImportStmt{pos{t.Line}, mod, alias}, nil
}

func (p *Parser) fromImportStmt() (Stmt, error) {
	t := p.next() // from
	mod, err := p.dottedName()
	if err != nil {
		return nil, err
	}
	if !p.acceptKw("import") {
		return nil, p.errf("expected 'import' in from-import")
	}
	fi := &FromImportStmt{pos: pos{t.Line}, Module: mod}
	for {
		if !p.at(TokName) {
			return nil, p.errf("expected name in from-import")
		}
		name := p.next().Lit
		alias := name
		if p.acceptKw("as") {
			if !p.at(TokName) {
				return nil, p.errf("expected name after 'as'")
			}
			alias = p.next().Lit
		}
		fi.Names = append(fi.Names, [2]string{name, alias})
		if !p.acceptOp(",") {
			break
		}
	}
	return fi, nil
}

func (p *Parser) dottedName() (string, error) {
	if !p.at(TokName) {
		return "", p.errf("expected module name")
	}
	parts := []string{p.next().Lit}
	for p.atOp(".") {
		p.next()
		if !p.at(TokName) {
			return "", p.errf("expected name after '.'")
		}
		parts = append(parts, p.next().Lit)
	}
	return strings.Join(parts, "."), nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	t := p.next() // if / elif
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{pos{t.Line}, cond, body, nil}
	if p.atKw("elif") {
		elif, err := p.ifStmt()
		if err != nil {
			return nil, err
		}
		st.Else = []Stmt{elif}
	} else if p.acceptKw("else") {
		els, err := p.block()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	t := p.next()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{pos{t.Line}, cond, body}, nil
}

func (p *Parser) forStmt() (Stmt, error) {
	t := p.next()
	target, err := p.targetList()
	if err != nil {
		return nil, err
	}
	if !p.acceptKw("in") {
		return nil, p.errf("expected 'in' in for statement")
	}
	iter, err := p.exprOrTuple()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ForStmt{pos{t.Line}, target, iter, body}, nil
}

// targetList parses for-loop targets: `i` or `a, b` or `(a, b)`.
func (p *Parser) targetList() (Expr, error) {
	first, err := p.primaryTarget()
	if err != nil {
		return nil, err
	}
	if !p.atOp(",") {
		return first, nil
	}
	elems := []Expr{first}
	for p.acceptOp(",") {
		if p.atKw("in") {
			break
		}
		e, err := p.primaryTarget()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
	}
	return &TupleLit{pos{first.Pos()}, elems}, nil
}

func (p *Parser) primaryTarget() (Expr, error) {
	if p.atOp("(") {
		p.next()
		inner, err := p.targetList()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	e, err := p.postfix()
	if err != nil {
		return nil, err
	}
	if err := checkAssignable(e); err != nil {
		return nil, p.errf("%v", err)
	}
	return e, nil
}

func (p *Parser) defStmt() (Stmt, error) {
	t := p.next() // def
	if !p.at(TokName) {
		return nil, p.errf("expected function name")
	}
	name := p.next().Lit
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	end := t.Line
	if len(body) > 0 {
		end = body[len(body)-1].Pos()
	}
	return &DefStmt{pos{t.Line}, name, params, body, end}, nil
}

// paramList parses parameters up to and including the closing ')'.
func (p *Parser) paramList() ([]Param, error) {
	var params []Param
	seenDefault := false
	for !p.atOp(")") {
		if !p.at(TokName) {
			return nil, p.errf("expected parameter name")
		}
		prm := Param{Name: p.next().Lit}
		if p.acceptOp("=") {
			d, err := p.expr()
			if err != nil {
				return nil, err
			}
			prm.Default = d
			seenDefault = true
		} else if seenDefault {
			return nil, p.errf("non-default parameter follows default parameter")
		}
		params = append(params, prm)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *Parser) tryStmt() (Stmt, error) {
	t := p.next() // try
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &TryStmt{pos: pos{t.Line}, Body: body}
	if p.acceptKw("except") {
		// Optional `except Name` / `except Name as n`; the class name is
		// accepted and ignored (PyLite has a single error type).
		if p.at(TokName) {
			p.next()
			if p.acceptKw("as") {
				if !p.at(TokName) {
					return nil, p.errf("expected name after 'as'")
				}
				st.ExcName = p.next().Lit
			}
		}
		h, err := p.block()
		if err != nil {
			return nil, err
		}
		st.Handler = h
	}
	if p.acceptKw("finally") {
		f, err := p.block()
		if err != nil {
			return nil, err
		}
		st.Finally = f
	}
	if st.Handler == nil && st.Finally == nil {
		return nil, p.errf("try statement needs except or finally")
	}
	return st, nil
}

// ---- expressions ----

// exprOrTuple parses an expression, forming a bare tuple on top-level commas
// (`a, b = f()` and `return x, y`).
func (p *Parser) exprOrTuple() (Expr, error) {
	first, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.atOp(",") {
		return first, nil
	}
	elems := []Expr{first}
	for p.acceptOp(",") {
		if p.atNewline() || p.at(TokEOF) || p.atOp("=") || p.atOp(")") || p.atOp("]") || p.atOp("}") {
			break
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
	}
	return &TupleLit{pos{first.Pos()}, elems}, nil
}

// expr parses a conditional expression (ternary) or below.
func (p *Parser) expr() (Expr, error) {
	if p.atKw("lambda") {
		return p.lambda()
	}
	e, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.atKw("if") {
		line := p.next().Line
		cond, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if !p.acceptKw("else") {
			return nil, p.errf("expected 'else' in conditional expression")
		}
		els, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &CondExpr{pos{line}, cond, e, els}, nil
	}
	return e, nil
}

func (p *Parser) lambda() (Expr, error) {
	t := p.next() // lambda
	var params []Param
	for !p.atOp(":") {
		if !p.at(TokName) {
			return nil, p.errf("expected parameter name in lambda")
		}
		prm := Param{Name: p.next().Lit}
		if p.acceptOp("=") {
			d, err := p.expr()
			if err != nil {
				return nil, err
			}
			prm.Default = d
		}
		params = append(params, prm)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &LambdaExpr{pos{t.Line}, params, body}, nil
}

func (p *Parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKw("or") {
		line := p.next().Line
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{pos{line}, "or", l, r}
	}
	return l, nil
}

func (p *Parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.atKw("and") {
		line := p.next().Line
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{pos{line}, "and", l, r}
	}
	return l, nil
}

func (p *Parser) notExpr() (Expr, error) {
	if p.atKw("not") {
		line := p.next().Line
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{pos{line}, "not", x}, nil
	}
	return p.comparison()
}

func (p *Parser) comparison() (Expr, error) {
	l, err := p.arith()
	if err != nil {
		return nil, err
	}
	var chain Expr
	prev := l
	for {
		op := ""
		switch {
		case p.atOp("=="), p.atOp("!="), p.atOp("<"), p.atOp("<="), p.atOp(">"), p.atOp(">="):
			op = p.next().Lit
		case p.atKw("in"):
			p.next()
			op = "in"
		case p.atKw("is"):
			p.next()
			op = "is"
			if p.atKw("not") {
				p.next()
				op = "isnot"
			}
		case p.atKw("not"):
			// `not in`
			p.next()
			if !p.acceptKw("in") {
				return nil, p.errf("expected 'in' after 'not'")
			}
			op = "notin"
		default:
			if chain != nil {
				return chain, nil
			}
			return l, nil
		}
		r, err := p.arith()
		if err != nil {
			return nil, err
		}
		cmp := &BinExpr{pos{prev.Pos()}, op, prev, r}
		if chain == nil {
			chain = cmp
		} else {
			chain = &BinExpr{pos{prev.Pos()}, "and", chain, cmp}
		}
		prev = r
	}
}

func (p *Parser) arith() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := p.next()
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{pos{op.Line}, op.Lit, l, r}
	}
	return l, nil
}

func (p *Parser) term() (Expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") || p.atOp("//") || p.atOp("%") {
		op := p.next()
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{pos{op.Line}, op.Lit, l, r}
	}
	return l, nil
}

func (p *Parser) factor() (Expr, error) {
	if p.atOp("-") || p.atOp("+") {
		op := p.next()
		x, err := p.factor()
		if err != nil {
			return nil, err
		}
		if op.Lit == "+" {
			return x, nil
		}
		return &UnaryExpr{pos{op.Line}, "-", x}, nil
	}
	return p.power()
}

func (p *Parser) power() (Expr, error) {
	base, err := p.postfix()
	if err != nil {
		return nil, err
	}
	if p.atOp("**") {
		op := p.next()
		// right-associative
		exp, err := p.factor()
		if err != nil {
			return nil, err
		}
		return &BinExpr{pos{op.Line}, "**", base, exp}, nil
	}
	return base, nil
}

// postfix parses an atom followed by any number of calls, indexes, slices
// and attribute accesses.
func (p *Parser) postfix() (Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atOp("("):
			line := p.next().Line
			call := &CallExpr{pos: pos{line}, Fn: e}
			for !p.atOp(")") {
				// keyword argument?
				if p.at(TokName) && p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Lit == "=" {
					kw := p.next().Lit
					p.next() // =
					v, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.KwName = append(call.KwName, kw)
					call.KwVal = append(call.KwVal, v)
				} else {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					if len(call.KwName) > 0 {
						return nil, p.errf("positional argument after keyword argument")
					}
					call.Args = append(call.Args, a)
				}
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			e = call
		case p.atOp("["):
			line := p.next().Line
			var lo, hi Expr
			if !p.atOp(":") {
				x, err := p.expr()
				if err != nil {
					return nil, err
				}
				lo = x
			}
			if p.acceptOp(":") {
				if !p.atOp("]") {
					x, err := p.expr()
					if err != nil {
						return nil, err
					}
					hi = x
				}
				if err := p.expectOp("]"); err != nil {
					return nil, err
				}
				e = &SliceExpr{pos{line}, e, lo, hi}
			} else {
				if err := p.expectOp("]"); err != nil {
					return nil, err
				}
				e = &IndexExpr{pos{line}, e, lo}
			}
		case p.atOp("."):
			line := p.next().Line
			if !p.at(TokName) {
				return nil, p.errf("expected attribute name after '.'")
			}
			e = &AttrExpr{pos{line}, e, p.next().Lit}
		default:
			return e, nil
		}
	}
}

func (p *Parser) atom() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", t.Lit)
		}
		return &IntLit{pos{t.Line}, v}, nil
	case TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			return nil, p.errf("bad float literal %q", t.Lit)
		}
		return &FloatLit{pos{t.Line}, v}, nil
	case TokString:
		p.next()
		val := t.Lit
		// adjacent string literal concatenation
		for p.at(TokString) {
			val += p.next().Lit
		}
		return &StrLit{pos{t.Line}, val}, nil
	case TokName:
		p.next()
		return &Name{pos{t.Line}, t.Lit}, nil
	case TokKeyword:
		switch t.Lit {
		case "True":
			p.next()
			return &BoolLit{pos{t.Line}, true}, nil
		case "False":
			p.next()
			return &BoolLit{pos{t.Line}, false}, nil
		case "None":
			p.next()
			return &NoneLit{pos{t.Line}}, nil
		case "lambda":
			return p.lambda()
		case "not":
			return p.notExpr()
		}
		return nil, p.errf("unexpected keyword %q", t.Lit)
	case TokOp:
		switch t.Lit {
		case "(":
			p.next()
			if p.atOp(")") {
				p.next()
				return &TupleLit{pos{t.Line}, nil}, nil
			}
			inner, err := p.exprOrTuple()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return inner, nil
		case "[":
			p.next()
			lst := &ListLit{pos: pos{t.Line}}
			first := true
			for !p.atOp("]") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				// list comprehension: [elem for target in iter if cond]
				if first && p.atKw("for") {
					p.next()
					target, err := p.targetList()
					if err != nil {
						return nil, err
					}
					if !p.acceptKw("in") {
						return nil, p.errf("expected 'in' in comprehension")
					}
					// or_test, not full expr: the trailing `if` belongs to
					// the comprehension filter, not a ternary
					iter, err := p.orExpr()
					if err != nil {
						return nil, err
					}
					comp := &CompExpr{pos: pos{t.Line}, Elem: e, Target: target, Iter: iter}
					if p.acceptKw("if") {
						cond, err := p.expr()
						if err != nil {
							return nil, err
						}
						comp.Cond = cond
					}
					if err := p.expectOp("]"); err != nil {
						return nil, err
					}
					return comp, nil
				}
				first = false
				lst.Elems = append(lst.Elems, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			return lst, nil
		case "{":
			p.next()
			d := &DictLit{pos: pos{t.Line}}
			for !p.atOp("}") {
				k, err := p.expr()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(":"); err != nil {
					return nil, err
				}
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				d.Keys = append(d.Keys, k)
				d.Values = append(d.Values, v)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp("}"); err != nil {
				return nil, err
			}
			return d, nil
		}
	}
	return nil, p.errf("unexpected token %s", t)
}
