package script

import (
	"testing"
)

// deepValue builds a nested value exercising every serializable tag.
func deepValue() Value {
	d := NewDict()
	d.SetStr("none", None)
	d.SetStr("bools", NewList(BoolVal(true), BoolVal(false)))
	d.SetStr("ints", NewList(IntVal(0), IntVal(-1), IntVal(1<<62)))
	d.SetStr("floats", NewList(FloatVal(0), FloatVal(-2.5), FloatVal(1e308)))
	d.SetStr("strs", NewList(StrVal(""), StrVal("héllo\x00world"), StrVal("quote'\"")))
	d.SetStr("bytes", BytesVal([]byte{0, 255, 1, 2}))
	d.SetStr("tuple", &TupleVal{Items: []Value{IntVal(1), StrVal("x")}})
	inner := NewDict()
	inner.SetStr("nested", NewList(IntVal(7), StrVal("deep"), None))
	d.SetStr("dict", inner)
	return d
}

// TestSerializeRoundTripDeep round-trips a deeply nested value and compares
// reprs (structural equality for the value model).
func TestSerializeRoundTripDeep(t *testing.T) {
	v := deepValue()
	data, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Repr() != v.Repr() {
		t.Fatalf("round trip diverged:\n in: %s\nout: %s", v.Repr(), got.Repr())
	}
	// A second marshal of the decoded value is byte-identical: the codec is
	// canonical, which the wire layer's input.bin caching relies on.
	data2, err := Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("codec is not canonical")
	}
}

// TestUnmarshalTruncated feeds every prefix of a marshaled deep value to
// Unmarshal: each must error cleanly (no panic, no silent success).
func TestUnmarshalTruncated(t *testing.T) {
	data, err := Marshal(deepValue())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < len(data); k++ {
		if _, err := Unmarshal(data[:k]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", k, len(data))
		}
	}
}

// TestUnmarshalAdversarial covers hand-crafted corrupt inputs: bad magic,
// unknown tags, and length fields pointing past the buffer.
func TestUnmarshalAdversarial(t *testing.T) {
	good, err := Marshal(StrVal("x"))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE\x00"),
		"magic only":  []byte(pickleMagic),
		"unknown tag": append([]byte(pickleMagic), 0xEE),
		"huge str len": append([]byte(pickleMagic),
			tagStr, 0xFF, 0xFF, 0xFF, 0xFF, 'a'),
		"huge list len": append([]byte(pickleMagic),
			tagList, 0xFF, 0xFF, 0xFF, 0x00),
		"trailing garbage": append(append([]byte{}, good...), 0x01, 0x02),
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

// FuzzUnmarshal hammers the decoder with arbitrary bytes (seeded with valid
// pickles): it must never panic, and any value it does decode must survive
// a re-marshal/re-unmarshal cycle.
func FuzzUnmarshal(f *testing.F) {
	for _, v := range []Value{None, IntVal(42), StrVal("seed"), deepValue(),
		NewList(IntVal(1), NewList(IntVal(2)))} {
		data, err := Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(pickleMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := Marshal(v)
		if err != nil {
			t.Fatalf("decoded value does not re-marshal: %v", err)
		}
		v2, err := Unmarshal(again)
		if err != nil {
			t.Fatalf("re-marshaled value does not decode: %v", err)
		}
		if v.Repr() != v2.Repr() {
			t.Fatalf("unstable codec: %s vs %s", v.Repr(), v2.Repr())
		}
	})
}
