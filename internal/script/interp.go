package script

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
)

// TraceKind classifies trace events delivered to the debugger hook.
type TraceKind int

// Trace event kinds, mirroring CPython's sys.settrace events.
const (
	TraceLine TraceKind = iota
	TraceCall
	TraceReturn
	TraceException
)

func (k TraceKind) String() string {
	switch k {
	case TraceLine:
		return "line"
	case TraceCall:
		return "call"
	case TraceReturn:
		return "return"
	case TraceException:
		return "exception"
	default:
		return "?"
	}
}

// TraceEvent is delivered to the interpreter's Trace hook before each line,
// on function entry/exit and when an error propagates.
type TraceEvent struct {
	Kind  TraceKind
	Frame *Frame
	Line  int
	Err   error // TraceException only
}

// TraceFunc observes execution. Returning a non-nil error aborts the script
// (the debugger uses this for "stop").
type TraceFunc func(*Interp, TraceEvent) error

// Frame is one activation record on the PyLite call stack.
type Frame struct {
	FuncName string
	Module   *Module
	Env      *Env
	Line     int
	Caller   *Frame
	Depth    int
}

// Interp executes PyLite modules. The zero value is not usable; construct
// with NewInterp. An Interp is not safe for concurrent use; the engine
// creates one per query (or per connection for loopback state).
type Interp struct {
	// Stdout receives print() output.
	Stdout io.Writer
	// FS backs the os module and open(); nil disables file access.
	FS core.FS
	// MaxSteps aborts runaway scripts when > 0.
	MaxSteps int64
	// Interrupt, when set, is polled every 1024 interpreter steps; a
	// non-nil result aborts the script with that error. The engine arms it
	// with the statement's cancellation signal and UDF wall-clock budget,
	// so a cancelled query preempts a long-running interpreted UDF.
	Interrupt func() error
	// Trace, when set, observes line/call/return/exception events.
	Trace TraceFunc
	// ModuleProvider resolves imports beyond the standard shims; the engine
	// injects database-aware modules through it.
	ModuleProvider func(name string) (Value, bool)

	// Globals is the module-level environment of the last Run.
	Globals *Env

	builtins *Env
	modules  map[string]Value
	steps    int64
	frame    *Frame
}

// NewInterp returns a ready interpreter with builtins installed.
func NewInterp() *Interp {
	in := &Interp{Stdout: io.Discard, modules: map[string]Value{}}
	in.builtins = NewEnv(nil)
	installBuiltins(in.builtins)
	return in
}

// Steps reports the number of statements executed so far.
func (in *Interp) Steps() int64 { return in.steps }

// CurrentFrame returns the innermost active frame (nil when idle). The
// debugger inspects it during trace callbacks.
func (in *Interp) CurrentFrame() *Frame { return in.frame }

// control-flow signals, implemented as error sentinels.
type breakSignal struct{}
type continueSignal struct{}
type returnSignal struct{ v Value }

func (breakSignal) Error() string    { return "break outside loop" }
func (continueSignal) Error() string { return "continue outside loop" }
func (returnSignal) Error() string   { return "return outside function" }

// RuntimeError is a PyLite runtime failure carrying a script-level
// traceback. It unwraps to a *core.Error of kind KindRuntime.
type RuntimeError struct {
	Msg   string
	Line  int
	Stack []string // innermost last, "func (module:line)"
	// Value carries the raised value for `raise` so try/except can bind it.
	Value Value
}

func (e *RuntimeError) Error() string {
	var sb strings.Builder
	sb.WriteString(e.Msg)
	if len(e.Stack) > 0 {
		sb.WriteString("\nTraceback (most recent call last):")
		for _, fr := range e.Stack {
			sb.WriteString("\n  ")
			sb.WriteString(fr)
		}
	}
	return sb.String()
}

// Unwrap exposes the error kind for core.KindOf.
func (e *RuntimeError) Unwrap() error { return core.Errorf(core.KindRuntime, "%s", e.Msg) }

func (in *Interp) rtErrf(line int, format string, args ...any) *RuntimeError {
	e := &RuntimeError{Msg: fmt.Sprintf(format, args...), Line: line}
	for f := in.frame; f != nil; f = f.Caller {
		mod := "<script>"
		if f.Module != nil {
			mod = f.Module.Name
		}
		e.Stack = append([]string{fmt.Sprintf("%s (%s:%d)", f.FuncName, mod, f.Line)}, e.Stack...)
	}
	return e
}

// Run executes a module in a fresh global environment and returns it.
func (in *Interp) Run(mod *Module) (*Env, error) {
	globals := NewEnv(in.builtins)
	in.Globals = globals
	frame := &Frame{FuncName: "<module>", Module: mod, Env: globals, Depth: 0}
	in.frame = frame
	defer func() { in.frame = nil }()
	if err := in.execBlock(mod.Body, frame); err != nil {
		if _, ok := err.(returnSignal); ok {
			return globals, nil
		}
		return globals, err
	}
	return globals, nil
}

// RunInEnv executes a module's body in an existing global environment. The
// devUDF local-run harness uses this to execute generated prologue +
// function definitions in one scope.
func (in *Interp) RunInEnv(mod *Module, globals *Env) error {
	in.Globals = globals
	frame := &Frame{FuncName: "<module>", Module: mod, Env: globals, Depth: 0}
	in.frame = frame
	defer func() { in.frame = nil }()
	return in.execBlock(mod.Body, frame)
}

// NewGlobals creates an empty module scope chained to builtins.
func (in *Interp) NewGlobals() *Env { return NewEnv(in.builtins) }

// Call invokes a callable value (function or builtin) from Go with
// positional arguments. This is how the engine executes UDFs.
func (in *Interp) Call(fn Value, args []Value) (Value, error) {
	return in.call(fn, args, nil, 0)
}

func (in *Interp) bumpStep(line int) error {
	in.steps++
	if in.MaxSteps > 0 && in.steps > in.MaxSteps {
		return in.rtErrf(line, "step limit exceeded (%d)", in.MaxSteps)
	}
	// Poll the interrupt hook at a stride that keeps the per-step cost to
	// one mask-and-branch; interrupt errors propagate untouched so their
	// typed kind (cancelled, resource) survives to the wire.
	if in.Interrupt != nil && in.steps&1023 == 0 {
		if err := in.Interrupt(); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) execBlock(body []Stmt, f *Frame) error {
	for _, st := range body {
		if err := in.exec(st, f); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) exec(st Stmt, f *Frame) error {
	f.Line = st.Pos()
	if err := in.bumpStep(st.Pos()); err != nil {
		return err
	}
	if in.Trace != nil {
		if err := in.Trace(in, TraceEvent{Kind: TraceLine, Frame: f, Line: st.Pos()}); err != nil {
			return err
		}
	}
	switch st := st.(type) {
	case *ExprStmt:
		_, err := in.eval(st.X, f)
		return err
	case *AssignStmt:
		v, err := in.eval(st.Value, f)
		if err != nil {
			return err
		}
		return in.assign(st.Target, v, f)
	case *AugAssignStmt:
		cur, err := in.eval(st.Target, f)
		if err != nil {
			return err
		}
		rhs, err := in.eval(st.Value, f)
		if err != nil {
			return err
		}
		v, err := in.binop(st.Op, cur, rhs, st.Pos())
		if err != nil {
			return err
		}
		return in.assign(st.Target, v, f)
	case *ReturnStmt:
		var v Value = None
		if st.Value != nil {
			var err error
			v, err = in.eval(st.Value, f)
			if err != nil {
				return err
			}
		}
		return returnSignal{v}
	case *PassStmt:
		return nil
	case *BreakStmt:
		return breakSignal{}
	case *ContinueStmt:
		return continueSignal{}
	case *IfStmt:
		cond, err := in.eval(st.Cond, f)
		if err != nil {
			return err
		}
		if Truthy(cond) {
			return in.execBlock(st.Body, f)
		}
		if st.Else != nil {
			return in.execBlock(st.Else, f)
		}
		return nil
	case *WhileStmt:
		for {
			cond, err := in.eval(st.Cond, f)
			if err != nil {
				return err
			}
			if !Truthy(cond) {
				return nil
			}
			if err := in.execBlock(st.Body, f); err != nil {
				switch err.(type) {
				case breakSignal:
					return nil
				case continueSignal:
					continue
				default:
					return err
				}
			}
			if err := in.bumpStep(st.Pos()); err != nil {
				return err
			}
		}
	case *ForStmt:
		iter, err := in.eval(st.Iter, f)
		if err != nil {
			return err
		}
		stop := false
		err = in.iterate(iter, st.Pos(), func(item Value) error {
			if err := in.assign(st.Target, item, f); err != nil {
				return err
			}
			if err := in.execBlock(st.Body, f); err != nil {
				switch err.(type) {
				case breakSignal:
					stop = true
					return breakSignal{}
				case continueSignal:
					return nil
				default:
					return err
				}
			}
			return in.bumpStep(st.Pos())
		})
		if stop {
			return nil
		}
		return err
	case *DefStmt:
		fn := &FuncVal{
			Name: st.Name, Params: st.Params, Body: st.Body,
			Closure: f.Env, Module: f.Module, DefLine: st.Pos(),
		}
		f.Env.Set(st.Name, fn)
		return nil
	case *ImportStmt:
		mod, err := in.importModule(st.Module, st.Pos())
		if err != nil {
			return err
		}
		f.Env.Set(st.Alias, mod)
		return nil
	case *FromImportStmt:
		mod, err := in.importModule(st.Module, st.Pos())
		if err != nil {
			return err
		}
		obj, ok := mod.(*ObjectVal)
		if !ok {
			return in.rtErrf(st.Pos(), "cannot import names from %s", mod.TypeName())
		}
		for _, pair := range st.Names {
			v, err := in.getAttr(obj, pair[0], st.Pos())
			if err != nil {
				return in.rtErrf(st.Pos(), "cannot import name '%s' from '%s'", pair[0], st.Module)
			}
			f.Env.Set(pair[1], v)
		}
		return nil
	case *GlobalStmt:
		for _, n := range st.Names {
			f.Env.DeclareGlobal(n)
		}
		return nil
	case *DelStmt:
		return in.del(st.Target, f)
	case *AssertStmt:
		cond, err := in.eval(st.Cond, f)
		if err != nil {
			return err
		}
		if Truthy(cond) {
			return nil
		}
		msg := "assertion failed"
		if st.Msg != nil {
			mv, err := in.eval(st.Msg, f)
			if err != nil {
				return err
			}
			msg = Str(mv)
		}
		return in.rtErrf(st.Pos(), "AssertionError: %s", msg)
	case *RaiseStmt:
		msg := "exception"
		var val Value = None
		if st.Value != nil {
			v, err := in.eval(st.Value, f)
			if err != nil {
				return err
			}
			val = v
			// `raise Exception("msg")` parses as a call; the Exception
			// builtin returns its argument, so Str(v) is the message.
			msg = Str(v)
		}
		re := in.rtErrf(st.Pos(), "%s", msg)
		re.Value = val
		return re
	case *TryStmt:
		err := in.execBlock(st.Body, f)
		switch err.(type) {
		case nil:
		case breakSignal, continueSignal, returnSignal:
			// control flow passes through finally
		default:
			if st.Handler != nil {
				if in.Trace != nil {
					_ = in.Trace(in, TraceEvent{Kind: TraceException, Frame: f, Line: f.Line, Err: err})
				}
				if st.ExcName != "" {
					var bound Value = StrVal(err.Error())
					if re, ok := err.(*RuntimeError); ok {
						bound = StrVal(re.Msg)
					}
					f.Env.Set(st.ExcName, bound)
				}
				err = in.execBlock(st.Handler, f)
			}
		}
		if st.Finally != nil {
			if ferr := in.execBlock(st.Finally, f); ferr != nil {
				return ferr
			}
		}
		return err
	default:
		return in.rtErrf(st.Pos(), "unsupported statement %T", st)
	}
}

func (in *Interp) del(target Expr, f *Frame) error {
	switch t := target.(type) {
	case *Name:
		if !f.Env.Delete(t.Ident) {
			return in.rtErrf(t.Pos(), "name '%s' is not defined", t.Ident)
		}
		return nil
	case *IndexExpr:
		container, err := in.eval(t.X, f)
		if err != nil {
			return err
		}
		idx, err := in.eval(t.Idx, f)
		if err != nil {
			return err
		}
		switch c := container.(type) {
		case *DictVal:
			ok, err := c.Delete(idx)
			if err != nil {
				return in.rtErrf(t.Pos(), "%v", err)
			}
			if !ok {
				return in.rtErrf(t.Pos(), "KeyError: %s", idx.Repr())
			}
			return nil
		case *ListVal:
			i, ok := asInt(idx)
			if !ok {
				return in.rtErrf(t.Pos(), "list indices must be integers")
			}
			n := int64(len(c.Items))
			if i < 0 {
				i += n
			}
			if i < 0 || i >= n {
				return in.rtErrf(t.Pos(), "list index out of range")
			}
			c.Items = append(c.Items[:i], c.Items[i+1:]...)
			return nil
		}
		return in.rtErrf(t.Pos(), "cannot delete from %s", container.TypeName())
	default:
		return in.rtErrf(target.Pos(), "cannot delete this expression")
	}
}

func (in *Interp) assign(target Expr, v Value, f *Frame) error {
	switch t := target.(type) {
	case *Name:
		f.Env.Set(t.Ident, v)
		return nil
	case *TupleLit:
		return in.unpack(t.Elems, v, f, t.Pos())
	case *ListLit:
		return in.unpack(t.Elems, v, f, t.Pos())
	case *IndexExpr:
		container, err := in.eval(t.X, f)
		if err != nil {
			return err
		}
		idx, err := in.eval(t.Idx, f)
		if err != nil {
			return err
		}
		switch c := container.(type) {
		case *ListVal:
			i, ok := asInt(idx)
			if !ok {
				return in.rtErrf(t.Pos(), "list indices must be integers, not %s", idx.TypeName())
			}
			n := int64(len(c.Items))
			if i < 0 {
				i += n
			}
			if i < 0 || i >= n {
				return in.rtErrf(t.Pos(), "list assignment index out of range")
			}
			c.Items[i] = v
			return nil
		case *DictVal:
			if err := c.Set(idx, v); err != nil {
				return in.rtErrf(t.Pos(), "%v", err)
			}
			return nil
		default:
			return in.rtErrf(t.Pos(), "'%s' object does not support item assignment", container.TypeName())
		}
	case *AttrExpr:
		obj, err := in.eval(t.X, f)
		if err != nil {
			return err
		}
		o, ok := obj.(*ObjectVal)
		if !ok {
			return in.rtErrf(t.Pos(), "cannot set attribute on '%s'", obj.TypeName())
		}
		o.Attrs.SetStr(t.Name, v)
		return nil
	default:
		return in.rtErrf(target.Pos(), "cannot assign to this expression")
	}
}

func (in *Interp) unpack(targets []Expr, v Value, f *Frame, line int) error {
	var items []Value
	switch v := v.(type) {
	case *TupleVal:
		items = v.Items
	case *ListVal:
		items = v.Items
	case *DictVal:
		// Deviation from CPython (which unpacks keys): unpacking a dict
		// yields its values in insertion order, so the paper's Listing 3
		// idiom `(tdata, tlabels) = _conn.execute("SELECT data, labels...")`
		// binds the two result columns directly.
		items = v.Values()
	default:
		return in.rtErrf(line, "cannot unpack non-sequence %s", v.TypeName())
	}
	if len(items) != len(targets) {
		return in.rtErrf(line, "cannot unpack %d values into %d targets", len(items), len(targets))
	}
	for i, t := range targets {
		if err := in.assign(t, items[i], f); err != nil {
			return err
		}
	}
	return nil
}

// iterate drives the for-loop protocol over every iterable value type.
func (in *Interp) iterate(v Value, line int, yield func(Value) error) error {
	propagate := func(err error) error {
		if _, ok := err.(breakSignal); ok {
			return nil
		}
		return err
	}
	switch v := v.(type) {
	case *ListVal:
		for _, it := range v.Items {
			if err := yield(it); err != nil {
				return propagate(err)
			}
		}
	case *TupleVal:
		for _, it := range v.Items {
			if err := yield(it); err != nil {
				return propagate(err)
			}
		}
	case RangeVal:
		if v.Step == 0 {
			return in.rtErrf(line, "range() step must not be zero")
		}
		if v.Step > 0 {
			for i := v.Start; i < v.Stop; i += v.Step {
				if err := yield(IntVal(i)); err != nil {
					return propagate(err)
				}
			}
		} else {
			for i := v.Start; i > v.Stop; i += v.Step {
				if err := yield(IntVal(i)); err != nil {
					return propagate(err)
				}
			}
		}
	case StrVal:
		for _, r := range string(v) {
			if err := yield(StrVal(string(r))); err != nil {
				return propagate(err)
			}
		}
	case *DictVal:
		for _, k := range v.Keys() {
			if err := yield(k); err != nil {
				return propagate(err)
			}
		}
	case *ObjectVal:
		if it, ok := v.Opaque.(interface{ IterValues() ([]Value, error) }); ok {
			items, err := it.IterValues()
			if err != nil {
				return in.rtErrf(line, "%v", err)
			}
			for _, item := range items {
				if err := yield(item); err != nil {
					return propagate(err)
				}
			}
			return nil
		}
		return in.rtErrf(line, "'%s' object is not iterable", v.Class)
	default:
		return in.rtErrf(line, "'%s' object is not iterable", v.TypeName())
	}
	return nil
}

func (in *Interp) eval(e Expr, f *Frame) (Value, error) {
	switch e := e.(type) {
	case *IntLit:
		return IntVal(e.Value), nil
	case *FloatLit:
		return FloatVal(e.Value), nil
	case *StrLit:
		return StrVal(e.Value), nil
	case *BoolLit:
		return BoolVal(e.Value), nil
	case *NoneLit:
		return None, nil
	case *Name:
		if v, ok := f.Env.Get(e.Ident); ok {
			return v, nil
		}
		return nil, in.rtErrf(e.Pos(), "name '%s' is not defined", e.Ident)
	case *ListLit:
		items := make([]Value, len(e.Elems))
		for i, el := range e.Elems {
			v, err := in.eval(el, f)
			if err != nil {
				return nil, err
			}
			items[i] = v
		}
		return &ListVal{Items: items}, nil
	case *TupleLit:
		items := make([]Value, len(e.Elems))
		for i, el := range e.Elems {
			v, err := in.eval(el, f)
			if err != nil {
				return nil, err
			}
			items[i] = v
		}
		return &TupleVal{Items: items}, nil
	case *DictLit:
		d := NewDict()
		for i := range e.Keys {
			k, err := in.eval(e.Keys[i], f)
			if err != nil {
				return nil, err
			}
			v, err := in.eval(e.Values[i], f)
			if err != nil {
				return nil, err
			}
			if err := d.Set(k, v); err != nil {
				return nil, in.rtErrf(e.Pos(), "%v", err)
			}
		}
		return d, nil
	case *UnaryExpr:
		x, err := in.eval(e.X, f)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "not":
			return BoolVal(!Truthy(x)), nil
		case "-":
			switch x := x.(type) {
			case IntVal:
				return IntVal(-x), nil
			case FloatVal:
				return FloatVal(-x), nil
			case BoolVal:
				if x {
					return IntVal(-1), nil
				}
				return IntVal(0), nil
			}
			return nil, in.rtErrf(e.Pos(), "bad operand type for unary -: '%s'", x.TypeName())
		}
		return nil, in.rtErrf(e.Pos(), "unsupported unary operator %q", e.Op)
	case *BinExpr:
		// short-circuit and/or
		if e.Op == "and" {
			l, err := in.eval(e.L, f)
			if err != nil {
				return nil, err
			}
			if !Truthy(l) {
				return l, nil
			}
			return in.eval(e.R, f)
		}
		if e.Op == "or" {
			l, err := in.eval(e.L, f)
			if err != nil {
				return nil, err
			}
			if Truthy(l) {
				return l, nil
			}
			return in.eval(e.R, f)
		}
		l, err := in.eval(e.L, f)
		if err != nil {
			return nil, err
		}
		r, err := in.eval(e.R, f)
		if err != nil {
			return nil, err
		}
		return in.binop(e.Op, l, r, e.Pos())
	case *CondExpr:
		c, err := in.eval(e.Cond, f)
		if err != nil {
			return nil, err
		}
		if Truthy(c) {
			return in.eval(e.Then, f)
		}
		return in.eval(e.Else, f)
	case *CallExpr:
		fn, err := in.eval(e.Fn, f)
		if err != nil {
			return nil, err
		}
		args := make([]Value, len(e.Args))
		for i, a := range e.Args {
			v, err := in.eval(a, f)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		var kwargs map[string]Value
		if len(e.KwName) > 0 {
			kwargs = make(map[string]Value, len(e.KwName))
			for i, n := range e.KwName {
				v, err := in.eval(e.KwVal[i], f)
				if err != nil {
					return nil, err
				}
				kwargs[n] = v
			}
		}
		return in.call(fn, args, kwargs, e.Pos())
	case *IndexExpr:
		x, err := in.eval(e.X, f)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(e.Idx, f)
		if err != nil {
			return nil, err
		}
		return in.index(x, idx, e.Pos())
	case *SliceExpr:
		x, err := in.eval(e.X, f)
		if err != nil {
			return nil, err
		}
		var lo, hi Value = None, None
		if e.Lo != nil {
			if lo, err = in.eval(e.Lo, f); err != nil {
				return nil, err
			}
		}
		if e.Hi != nil {
			if hi, err = in.eval(e.Hi, f); err != nil {
				return nil, err
			}
		}
		return in.slice(x, lo, hi, e.Pos())
	case *AttrExpr:
		x, err := in.eval(e.X, f)
		if err != nil {
			return nil, err
		}
		return in.getAttr(x, e.Name, e.Pos())
	case *LambdaExpr:
		return &FuncVal{
			Name: "", Params: e.Params, Expr: e.Body,
			Closure: f.Env, Module: f.Module, DefLine: e.Pos(),
		}, nil
	case *CompExpr:
		iter, err := in.eval(e.Iter, f)
		if err != nil {
			return nil, err
		}
		out := &ListVal{}
		err = in.iterate(iter, e.Pos(), func(item Value) error {
			if err := in.assign(e.Target, item, f); err != nil {
				return err
			}
			if e.Cond != nil {
				cond, err := in.eval(e.Cond, f)
				if err != nil {
					return err
				}
				if !Truthy(cond) {
					return nil
				}
			}
			v, err := in.eval(e.Elem, f)
			if err != nil {
				return err
			}
			out.Items = append(out.Items, v)
			return in.bumpStep(e.Pos())
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, in.rtErrf(e.Pos(), "unsupported expression %T", e)
	}
}

// call dispatches on callable kind.
func (in *Interp) call(fn Value, args []Value, kwargs map[string]Value, line int) (Value, error) {
	switch fn := fn.(type) {
	case *BuiltinVal:
		v, err := fn.Fn(in, args, kwargs)
		if err != nil {
			if _, ok := err.(*RuntimeError); ok {
				return nil, err
			}
			return nil, in.rtErrf(line, "%s: %v", fn.Name, errMsg(err))
		}
		if v == nil {
			v = None
		}
		return v, nil
	case *FuncVal:
		return in.callFunc(fn, args, kwargs, line)
	default:
		return nil, in.rtErrf(line, "'%s' object is not callable", fn.TypeName())
	}
}

// errMsg strips the core error prefix for nicer script-level messages.
func errMsg(err error) string {
	if ce, ok := err.(*core.Error); ok {
		return ce.Msg
	}
	return err.Error()
}

const maxCallDepth = 200

func (in *Interp) callFunc(fn *FuncVal, args []Value, kwargs map[string]Value, line int) (Value, error) {
	caller := in.frame
	depth := 0
	if caller != nil {
		depth = caller.Depth + 1
	}
	if depth > maxCallDepth {
		return nil, in.rtErrf(line, "maximum recursion depth exceeded")
	}
	env := NewEnv(fn.Closure)
	// bind parameters
	if len(args) > len(fn.Params) {
		return nil, in.rtErrf(line, "%s() takes %d arguments but %d were given",
			displayName(fn), len(fn.Params), len(args))
	}
	bound := make(map[string]bool, len(fn.Params))
	for i, a := range args {
		env.Set(fn.Params[i].Name, a)
		bound[fn.Params[i].Name] = true
	}
	for name, v := range kwargs {
		found := false
		for _, p := range fn.Params {
			if p.Name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, in.rtErrf(line, "%s() got an unexpected keyword argument '%s'", displayName(fn), name)
		}
		if bound[name] {
			return nil, in.rtErrf(line, "%s() got multiple values for argument '%s'", displayName(fn), name)
		}
		env.Set(name, v)
		bound[name] = true
	}
	for _, p := range fn.Params {
		if bound[p.Name] {
			continue
		}
		if p.Default == nil {
			return nil, in.rtErrf(line, "%s() missing required argument: '%s'", displayName(fn), p.Name)
		}
		dframe := &Frame{FuncName: displayName(fn), Module: fn.Module, Env: fn.Closure, Line: fn.DefLine, Caller: caller, Depth: depth}
		prev := in.frame
		in.frame = dframe
		dv, err := in.eval(p.Default, dframe)
		in.frame = prev
		if err != nil {
			return nil, err
		}
		env.Set(p.Name, dv)
	}
	frame := &Frame{FuncName: displayName(fn), Module: fn.Module, Env: env, Line: fn.DefLine, Caller: caller, Depth: depth}
	in.frame = frame
	defer func() { in.frame = caller }()

	if in.Trace != nil {
		if err := in.Trace(in, TraceEvent{Kind: TraceCall, Frame: frame, Line: fn.DefLine}); err != nil {
			return nil, err
		}
	}
	var result Value = None
	var err error
	if fn.Expr != nil { // lambda
		result, err = in.eval(fn.Expr, frame)
	} else {
		err = in.execBlock(fn.Body, frame)
		if rs, ok := err.(returnSignal); ok {
			result, err = rs.v, nil
		}
	}
	if err != nil {
		if in.Trace != nil {
			_ = in.Trace(in, TraceEvent{Kind: TraceException, Frame: frame, Line: frame.Line, Err: err})
		}
		return nil, err
	}
	if in.Trace != nil {
		if terr := in.Trace(in, TraceEvent{Kind: TraceReturn, Frame: frame, Line: frame.Line}); terr != nil {
			return nil, terr
		}
	}
	return result, nil
}

func displayName(fn *FuncVal) string {
	if fn.Name == "" {
		return "<lambda>"
	}
	return fn.Name
}

func (in *Interp) index(x, idx Value, line int) (Value, error) {
	switch x := x.(type) {
	case *ListVal:
		i, ok := asInt(idx)
		if !ok {
			return nil, in.rtErrf(line, "list indices must be integers, not %s", idx.TypeName())
		}
		n := int64(len(x.Items))
		if i < 0 {
			i += n
		}
		if i < 0 || i >= n {
			return nil, in.rtErrf(line, "list index out of range")
		}
		return x.Items[i], nil
	case *TupleVal:
		i, ok := asInt(idx)
		if !ok {
			return nil, in.rtErrf(line, "tuple indices must be integers, not %s", idx.TypeName())
		}
		n := int64(len(x.Items))
		if i < 0 {
			i += n
		}
		if i < 0 || i >= n {
			return nil, in.rtErrf(line, "tuple index out of range")
		}
		return x.Items[i], nil
	case StrVal:
		i, ok := asInt(idx)
		if !ok {
			return nil, in.rtErrf(line, "string indices must be integers")
		}
		runes := []rune(string(x))
		n := int64(len(runes))
		if i < 0 {
			i += n
		}
		if i < 0 || i >= n {
			return nil, in.rtErrf(line, "string index out of range")
		}
		return StrVal(string(runes[i])), nil
	case *DictVal:
		v, ok, err := x.Get(idx)
		if err != nil {
			return nil, in.rtErrf(line, "%v", err)
		}
		if !ok {
			return nil, in.rtErrf(line, "KeyError: %s", idx.Repr())
		}
		return v, nil
	case RangeVal:
		i, ok := asInt(idx)
		if !ok {
			return nil, in.rtErrf(line, "range indices must be integers")
		}
		n := x.Len()
		if i < 0 {
			i += n
		}
		if i < 0 || i >= n {
			return nil, in.rtErrf(line, "range index out of range")
		}
		return IntVal(x.Start + i*x.Step), nil
	default:
		return nil, in.rtErrf(line, "'%s' object is not subscriptable", x.TypeName())
	}
}

func (in *Interp) slice(x, lo, hi Value, line int) (Value, error) {
	bounds := func(n int64) (int64, int64, error) {
		start, stop := int64(0), n
		if _, isNone := lo.(NoneVal); !isNone {
			i, ok := asInt(lo)
			if !ok {
				return 0, 0, in.rtErrf(line, "slice indices must be integers")
			}
			start = i
			if start < 0 {
				start += n
			}
			if start < 0 {
				start = 0
			}
			if start > n {
				start = n
			}
		}
		if _, isNone := hi.(NoneVal); !isNone {
			i, ok := asInt(hi)
			if !ok {
				return 0, 0, in.rtErrf(line, "slice indices must be integers")
			}
			stop = i
			if stop < 0 {
				stop += n
			}
			if stop < 0 {
				stop = 0
			}
			if stop > n {
				stop = n
			}
		}
		if stop < start {
			stop = start
		}
		return start, stop, nil
	}
	switch x := x.(type) {
	case *ListVal:
		start, stop, err := bounds(int64(len(x.Items)))
		if err != nil {
			return nil, err
		}
		out := make([]Value, stop-start)
		copy(out, x.Items[start:stop])
		return &ListVal{Items: out}, nil
	case *TupleVal:
		start, stop, err := bounds(int64(len(x.Items)))
		if err != nil {
			return nil, err
		}
		out := make([]Value, stop-start)
		copy(out, x.Items[start:stop])
		return &TupleVal{Items: out}, nil
	case StrVal:
		runes := []rune(string(x))
		start, stop, err := bounds(int64(len(runes)))
		if err != nil {
			return nil, err
		}
		return StrVal(string(runes[start:stop])), nil
	default:
		return nil, in.rtErrf(line, "'%s' object is not sliceable", x.TypeName())
	}
}

func (in *Interp) binop(op string, l, r Value, line int) (Value, error) {
	switch op {
	case "==":
		return BoolVal(Equal(l, r)), nil
	case "!=":
		return BoolVal(!Equal(l, r)), nil
	case "<", "<=", ">", ">=":
		c, err := Compare(l, r)
		if err != nil {
			return nil, in.rtErrf(line, "%v", err)
		}
		switch op {
		case "<":
			return BoolVal(c < 0), nil
		case "<=":
			return BoolVal(c <= 0), nil
		case ">":
			return BoolVal(c > 0), nil
		default:
			return BoolVal(c >= 0), nil
		}
	case "is":
		return BoolVal(identical(l, r)), nil
	case "isnot":
		return BoolVal(!identical(l, r)), nil
	case "in", "notin":
		found, err := in.contains(r, l, line)
		if err != nil {
			return nil, err
		}
		if op == "notin" {
			found = !found
		}
		return BoolVal(found), nil
	}

	// string/list algebra
	switch lv := l.(type) {
	case StrVal:
		switch op {
		case "+":
			if rv, ok := r.(StrVal); ok {
				return lv + rv, nil
			}
		case "*":
			if n, ok := asInt(r); ok {
				return StrVal(strings.Repeat(string(lv), clampRepeat(n))), nil
			}
		case "%":
			return in.formatPercent(string(lv), r, line)
		}
	case *ListVal:
		switch op {
		case "+":
			if rv, ok := r.(*ListVal); ok {
				out := make([]Value, 0, len(lv.Items)+len(rv.Items))
				out = append(out, lv.Items...)
				out = append(out, rv.Items...)
				return &ListVal{Items: out}, nil
			}
		case "*":
			if n, ok := asInt(r); ok {
				cnt := clampRepeat(n)
				out := make([]Value, 0, len(lv.Items)*cnt)
				for i := 0; i < cnt; i++ {
					out = append(out, lv.Items...)
				}
				return &ListVal{Items: out}, nil
			}
		}
	case *TupleVal:
		if op == "+" {
			if rv, ok := r.(*TupleVal); ok {
				out := make([]Value, 0, len(lv.Items)+len(rv.Items))
				out = append(out, lv.Items...)
				out = append(out, rv.Items...)
				return &TupleVal{Items: out}, nil
			}
		}
	}

	// numeric tower
	li, lIsInt := asIntStrict(l)
	ri, rIsInt := asIntStrict(r)
	if lIsInt && rIsInt {
		switch op {
		case "+":
			return IntVal(li + ri), nil
		case "-":
			return IntVal(li - ri), nil
		case "*":
			return IntVal(li * ri), nil
		case "/":
			if ri == 0 {
				return nil, in.rtErrf(line, "division by zero")
			}
			return FloatVal(float64(li) / float64(ri)), nil
		case "//":
			if ri == 0 {
				return nil, in.rtErrf(line, "integer division or modulo by zero")
			}
			return IntVal(floorDiv(li, ri)), nil
		case "%":
			if ri == 0 {
				return nil, in.rtErrf(line, "integer division or modulo by zero")
			}
			return IntVal(pyMod(li, ri)), nil
		case "**":
			if ri < 0 {
				return FloatVal(math.Pow(float64(li), float64(ri))), nil
			}
			return IntVal(intPow(li, ri)), nil
		}
	}
	lf, lok := asFloat(l)
	rf, rok := asFloat(r)
	if lok && rok {
		switch op {
		case "+":
			return FloatVal(lf + rf), nil
		case "-":
			return FloatVal(lf - rf), nil
		case "*":
			return FloatVal(lf * rf), nil
		case "/":
			if rf == 0 {
				return nil, in.rtErrf(line, "float division by zero")
			}
			return FloatVal(lf / rf), nil
		case "//":
			if rf == 0 {
				return nil, in.rtErrf(line, "float floor division by zero")
			}
			return FloatVal(math.Floor(lf / rf)), nil
		case "%":
			if rf == 0 {
				return nil, in.rtErrf(line, "float modulo by zero")
			}
			m := math.Mod(lf, rf)
			if m != 0 && (m < 0) != (rf < 0) {
				m += rf
			}
			return FloatVal(m), nil
		case "**":
			return FloatVal(math.Pow(lf, rf)), nil
		}
	}
	return nil, in.rtErrf(line, "unsupported operand type(s) for %s: '%s' and '%s'",
		op, l.TypeName(), r.TypeName())
}

func clampRepeat(n int64) int {
	if n < 0 {
		return 0
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	return int(n)
}

// asIntStrict treats bools as ints (Python semantics) but not floats.
func asIntStrict(v Value) (int64, bool) { return asInt(v) }

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func pyMod(a, b int64) int64 {
	m := a % b
	if m != 0 && (m < 0) != (b < 0) {
		m += b
	}
	return m
}

func intPow(base, exp int64) int64 {
	result := int64(1)
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}

func identical(a, b Value) bool {
	switch av := a.(type) {
	case NoneVal:
		_, ok := b.(NoneVal)
		return ok
	case *ListVal:
		bv, ok := b.(*ListVal)
		return ok && av == bv
	case *DictVal:
		bv, ok := b.(*DictVal)
		return ok && av == bv
	case *ObjectVal:
		bv, ok := b.(*ObjectVal)
		return ok && av == bv
	case *FuncVal:
		bv, ok := b.(*FuncVal)
		return ok && av == bv
	default:
		return Equal(a, b)
	}
}

func (in *Interp) contains(container, item Value, line int) (bool, error) {
	switch c := container.(type) {
	case *ListVal:
		for _, it := range c.Items {
			if Equal(it, item) {
				return true, nil
			}
		}
		return false, nil
	case *TupleVal:
		for _, it := range c.Items {
			if Equal(it, item) {
				return true, nil
			}
		}
		return false, nil
	case StrVal:
		s, ok := item.(StrVal)
		if !ok {
			return false, in.rtErrf(line, "'in <string>' requires string as left operand")
		}
		return strings.Contains(string(c), string(s)), nil
	case *DictVal:
		_, ok, err := c.Get(item)
		if err != nil {
			return false, in.rtErrf(line, "%v", err)
		}
		return ok, nil
	case RangeVal:
		i, ok := asInt(item)
		if !ok {
			return false, nil
		}
		if c.Step > 0 {
			return i >= c.Start && i < c.Stop && (i-c.Start)%c.Step == 0, nil
		}
		if c.Step < 0 {
			return i <= c.Start && i > c.Stop && (c.Start-i)%(-c.Step) == 0, nil
		}
		return false, nil
	default:
		return false, in.rtErrf(line, "argument of type '%s' is not iterable", container.TypeName())
	}
}

// formatPercent implements the printf-style '%' operator on strings, which
// the paper's Listing 3 uses to inject parameters into loopback SQL.
func (in *Interp) formatPercent(format string, arg Value, line int) (Value, error) {
	var args []Value
	if t, ok := arg.(*TupleVal); ok {
		args = t.Items
	} else {
		args = []Value{arg}
	}
	var sb strings.Builder
	ai := 0
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			sb.WriteByte(c)
			continue
		}
		if i+1 >= len(format) {
			return nil, in.rtErrf(line, "incomplete format")
		}
		i++
		verb := format[i]
		if verb == '%' {
			sb.WriteByte('%')
			continue
		}
		if ai >= len(args) {
			return nil, in.rtErrf(line, "not enough arguments for format string")
		}
		v := args[ai]
		ai++
		switch verb {
		case 'd', 'i':
			iv, ok := asInt(v)
			if !ok {
				if fv, fok := v.(FloatVal); fok {
					iv = int64(fv)
				} else {
					return nil, in.rtErrf(line, "%%d format: a number is required, not %s", v.TypeName())
				}
			}
			fmt.Fprintf(&sb, "%d", iv)
		case 'f':
			fv, ok := asFloat(v)
			if !ok {
				return nil, in.rtErrf(line, "%%f format: a number is required, not %s", v.TypeName())
			}
			fmt.Fprintf(&sb, "%f", fv)
		case 'g':
			fv, ok := asFloat(v)
			if !ok {
				return nil, in.rtErrf(line, "%%g format: a number is required, not %s", v.TypeName())
			}
			fmt.Fprintf(&sb, "%g", fv)
		case 's':
			sb.WriteString(Str(v))
		case 'r':
			sb.WriteString(v.Repr())
		default:
			return nil, in.rtErrf(line, "unsupported format character %q", string(verb))
		}
	}
	if ai < len(args) {
		return nil, in.rtErrf(line, "not all arguments converted during string formatting")
	}
	return StrVal(sb.String()), nil
}

// importModule resolves standard shims first, then the provider hook.
func (in *Interp) importModule(name string, line int) (Value, error) {
	if m, ok := in.modules[name]; ok {
		return m, nil
	}
	if m, ok := stdModule(in, name); ok {
		in.modules[name] = m
		return m, nil
	}
	if in.ModuleProvider != nil {
		if m, ok := in.ModuleProvider(name); ok {
			in.modules[name] = m
			return m, nil
		}
	}
	return nil, in.rtErrf(line, "ModuleNotFoundError: no module named '%s'", name)
}
