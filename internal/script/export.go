package script

import "repro/internal/core"

// Exported conversion helpers for packages that embed PyLite (the engine,
// the wire layer and native modules such as mllib).

// ToSlice materializes any iterable value into a Go slice of values.
func ToSlice(in *Interp, v Value) ([]Value, error) { return toSlice(in, v) }

// AsFloat converts bool/int/float values to float64.
func AsFloat(v Value) (float64, bool) { return asFloat(v) }

// AsInt converts bool/int values to int64.
func AsInt(v Value) (int64, bool) { return asInt(v) }

// NewBuiltin wraps a Go function as a callable PyLite value.
func NewBuiltin(name string, fn BuiltinFunc) *BuiltinVal { return bi(name, fn) }

// EvalInFrame parses src as a single expression and evaluates it in the
// given frame's environment. The debugger uses this for watch expressions
// and conditional breakpoints; it must only be called while the interpreter
// is paused inside a trace callback (the interpreter is single-threaded).
func (in *Interp) EvalInFrame(src string, f *Frame) (Value, error) {
	mod, err := Parse("<watch>", src)
	if err != nil {
		return nil, err
	}
	if len(mod.Body) != 1 {
		return nil, core.Errorf(core.KindSyntax, "watch input must be a single expression")
	}
	es, ok := mod.Body[0].(*ExprStmt)
	if !ok {
		return nil, core.Errorf(core.KindSyntax, "watch input must be an expression, not a statement")
	}
	saveFrame := in.frame
	saveTrace := in.Trace
	in.frame = f
	in.Trace = nil // watch evaluation must not re-enter the debugger
	defer func() {
		in.frame = saveFrame
		in.Trace = saveTrace
	}()
	return in.eval(es.X, f)
}
