package script

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTripBasics(t *testing.T) {
	values := []Value{
		None,
		BoolVal(true),
		BoolVal(false),
		IntVal(0),
		IntVal(-1),
		IntVal(math.MaxInt64),
		IntVal(math.MinInt64),
		FloatVal(0),
		FloatVal(3.14159),
		FloatVal(math.Inf(1)),
		StrVal(""),
		StrVal("hello\nworld\x00"),
		BytesVal{0, 1, 2, 255},
		NewList(IntVal(1), StrVal("two"), None),
		&TupleVal{Items: []Value{IntVal(1), IntVal(2)}},
	}
	d := NewDict()
	d.SetStr("a", IntVal(1))
	d.SetStr("b", NewList(FloatVal(2.5)))
	_ = d.Set(IntVal(7), StrVal("seven"))
	values = append(values, d)

	for _, v := range values {
		blob, err := Marshal(v)
		if err != nil {
			t.Fatalf("Marshal(%s): %v", v.Repr(), err)
		}
		back, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("Unmarshal(%s): %v", v.Repr(), err)
		}
		if !Equal(v, back) && !(v.TypeName() == "float" && math.IsInf(float64(v.(FloatVal)), 0)) {
			t.Fatalf("round trip changed %s -> %s", v.Repr(), back.Repr())
		}
	}
}

// randomValue builds an arbitrary picklable value of bounded depth.
func randomValue(r *rand.Rand, depth int) Value {
	choices := 6
	if depth > 0 {
		choices = 9
	}
	switch r.Intn(choices) {
	case 0:
		return None
	case 1:
		return BoolVal(r.Intn(2) == 0)
	case 2:
		return IntVal(r.Int63() - r.Int63())
	case 3:
		return FloatVal(r.NormFloat64() * 1000)
	case 4:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return StrVal(b)
	case 5:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return BytesVal(b)
	case 6:
		n := r.Intn(5)
		items := make([]Value, n)
		for i := range items {
			items[i] = randomValue(r, depth-1)
		}
		return &ListVal{Items: items}
	case 7:
		n := r.Intn(4)
		items := make([]Value, n)
		for i := range items {
			items[i] = randomValue(r, depth-1)
		}
		return &TupleVal{Items: items}
	default:
		d := NewDict()
		for i := 0; i < r.Intn(4); i++ {
			_ = d.Set(IntVal(r.Int63n(1000)), randomValue(r, depth-1))
		}
		return d
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		blob, err := Marshal(v)
		if err != nil {
			return false
		}
		back, err := Unmarshal(blob)
		if err != nil {
			return false
		}
		// NaN floats break Equal; accept them via repr comparison.
		return Equal(v, back) || v.Repr() == back.Repr()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("XXXX"),
		[]byte("PKL1"),                       // magic only, no value
		[]byte("PKL1\x03\x00"),               // truncated int
		[]byte("PKL1\x05\x00\x00\x00\x09ab"), // str length beyond data
		[]byte("PKL1\xff"),                   // unknown tag
		append(MustMarshal(IntVal(1)), 0x00), // trailing garbage
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMarshalRejectsFunctions(t *testing.T) {
	fn := &FuncVal{Name: "f"}
	if _, err := Marshal(fn); err == nil {
		t.Fatal("functions must not pickle")
	}
	if _, err := Marshal(NewObject("opaque")); err == nil {
		t.Fatal("non-picklable objects must not pickle")
	}
}

func TestRangePicklesAsList(t *testing.T) {
	blob, err := Marshal(RangeVal{0, 5, 1})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Repr() != "[0, 1, 2, 3, 4]" {
		t.Fatalf("got %s", back.Repr())
	}
}

func TestDictOrderPreservedThroughPickle(t *testing.T) {
	d := NewDict()
	d.SetStr("z", IntVal(1))
	d.SetStr("a", IntVal(2))
	d.SetStr("m", IntVal(3))
	back, err := Unmarshal(MustMarshal(d))
	if err != nil {
		t.Fatal(err)
	}
	if back.Repr() != "{'z': 1, 'a': 2, 'm': 3}" {
		t.Fatalf("order lost: %s", back.Repr())
	}
}
