package script

import (
	"strings"

	"repro/internal/core"
)

// Lexer converts PyLite source into a token stream, synthesizing
// NEWLINE/INDENT/DEDENT tokens from physical layout. Blank lines and
// comment-only lines produce no tokens; newlines inside (), [] and {} are
// implicit line joins, as in Python.
type Lexer struct {
	src    string
	pos    int
	line   int
	col    int
	indent []int // indentation stack, always starts with 0
	paren  int   // bracket nesting depth; >0 suppresses NEWLINE
	pend   []Token
	atBOL  bool // at beginning of a logical line
	eofed  bool
}

// NewLexer returns a lexer over src. The filename is only used for error
// messages raised later by the parser.
func NewLexer(src string) *Lexer {
	// Normalize line endings so the column math stays simple.
	src = strings.ReplaceAll(src, "\r\n", "\n")
	return &Lexer{src: src, line: 1, col: 1, indent: []int{0}, atBOL: true}
}

func (lx *Lexer) errf(format string, args ...any) error {
	return core.Errorf(core.KindSyntax, "line %d: "+format, append([]any{lx.line}, args...)...)
}

// Tokens lexes the whole input. It returns the complete token list ending
// with TokEOF, or the first lexical error.
func (lx *Lexer) Tokens() ([]Token, error) {
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if len(lx.pend) > 0 {
		t := lx.pend[0]
		lx.pend = lx.pend[1:]
		return t, nil
	}
	if lx.atBOL {
		if err := lx.handleIndent(); err != nil {
			return Token{}, err
		}
		if len(lx.pend) > 0 {
			return lx.Next()
		}
	}
	lx.skipSpacesAndComments()
	if lx.pos >= len(lx.src) {
		return lx.finish()
	}
	c := lx.src[lx.pos]
	switch {
	case c == '\n':
		lx.advance()
		if lx.paren > 0 {
			return lx.Next() // implicit line join inside brackets
		}
		lx.atBOL = true
		return Token{Kind: TokNewline, Line: lx.line - 1, Col: lx.col}, nil
	case c == '\\' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\n':
		lx.advance()
		lx.advance()
		return lx.Next() // explicit line join
	case isDigit(c) || (c == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1])):
		return lx.lexNumber()
	case c == '"' || c == '\'':
		return lx.lexString()
	case isNameStart(c):
		return lx.lexName()
	default:
		return lx.lexOp()
	}
}

// finish emits pending DEDENTs and the final EOF.
func (lx *Lexer) finish() (Token, error) {
	if !lx.eofed {
		lx.eofed = true
		// close the last logical line
		lx.pend = append(lx.pend, Token{Kind: TokNewline, Line: lx.line, Col: lx.col})
		for len(lx.indent) > 1 {
			lx.indent = lx.indent[:len(lx.indent)-1]
			lx.pend = append(lx.pend, Token{Kind: TokDedent, Line: lx.line, Col: 1})
		}
		lx.pend = append(lx.pend, Token{Kind: TokEOF, Line: lx.line, Col: lx.col})
		return lx.Next()
	}
	return Token{Kind: TokEOF, Line: lx.line, Col: lx.col}, nil
}

// handleIndent measures leading whitespace at the beginning of a logical
// line and emits INDENT/DEDENT tokens. Blank and comment-only lines are
// skipped entirely.
func (lx *Lexer) handleIndent() error {
	for {
		start := lx.pos
		width := 0
		for lx.pos < len(lx.src) {
			switch lx.src[lx.pos] {
			case ' ':
				width++
				lx.advance()
			case '\t':
				width += 8 - width%8
				lx.advance()
			default:
				goto measured
			}
		}
	measured:
		if lx.pos >= len(lx.src) {
			lx.atBOL = false
			return nil
		}
		if lx.src[lx.pos] == '\n' {
			lx.advance()
			continue // blank line
		}
		if lx.src[lx.pos] == '#' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance()
			}
			continue
		}
		_ = start
		lx.atBOL = false
		cur := lx.indent[len(lx.indent)-1]
		switch {
		case width > cur:
			lx.indent = append(lx.indent, width)
			lx.pend = append(lx.pend, Token{Kind: TokIndent, Line: lx.line, Col: 1})
		case width < cur:
			for len(lx.indent) > 1 && lx.indent[len(lx.indent)-1] > width {
				lx.indent = lx.indent[:len(lx.indent)-1]
				lx.pend = append(lx.pend, Token{Kind: TokDedent, Line: lx.line, Col: 1})
			}
			if lx.indent[len(lx.indent)-1] != width {
				return lx.errf("unindent does not match any outer indentation level")
			}
		}
		return nil
	}
}

func (lx *Lexer) skipSpacesAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' {
			lx.advance()
			continue
		}
		if c == '#' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance()
			}
			continue
		}
		return
	}
}

func (lx *Lexer) advance() {
	if lx.pos < len(lx.src) {
		if lx.src[lx.pos] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.pos++
	}
}

func (lx *Lexer) lexNumber() (Token, error) {
	startLine, startCol := lx.line, lx.col
	start := lx.pos
	isFloat := false
	for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
		lx.advance()
	}
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
		// not a method call on an int literal: 1.foo is invalid anyway
		isFloat = true
		lx.advance()
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.advance()
		}
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		save := lx.pos
		lx.advance()
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.advance()
		}
		if lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			isFloat = true
			for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
				lx.advance()
			}
		} else {
			lx.pos = save // 'e' belongs to a following name
		}
	}
	kind := TokInt
	if isFloat {
		kind = TokFloat
	}
	return Token{Kind: kind, Lit: lx.src[start:lx.pos], Line: startLine, Col: startCol}, nil
}

func (lx *Lexer) lexString() (Token, error) {
	startLine, startCol := lx.line, lx.col
	quote := lx.src[lx.pos]
	triple := strings.HasPrefix(lx.src[lx.pos:], strings.Repeat(string(quote), 3))
	if triple {
		lx.advance()
		lx.advance()
		lx.advance()
		var sb strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return Token{}, lx.errf("unterminated triple-quoted string")
			}
			if strings.HasPrefix(lx.src[lx.pos:], strings.Repeat(string(quote), 3)) {
				lx.advance()
				lx.advance()
				lx.advance()
				return Token{Kind: TokString, Lit: sb.String(), Line: startLine, Col: startCol}, nil
			}
			sb.WriteByte(lx.src[lx.pos])
			lx.advance()
		}
	}
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.pos >= len(lx.src) || lx.src[lx.pos] == '\n' {
			return Token{}, lx.errf("unterminated string literal")
		}
		c := lx.src[lx.pos]
		if c == quote {
			lx.advance()
			return Token{Kind: TokString, Lit: sb.String(), Line: startLine, Col: startCol}, nil
		}
		if c == '\\' && lx.pos+1 < len(lx.src) {
			lx.advance()
			esc := lx.src[lx.pos]
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			case '\'':
				sb.WriteByte('\'')
			case '"':
				sb.WriteByte('"')
			case '0':
				sb.WriteByte(0)
			default:
				sb.WriteByte('\\')
				sb.WriteByte(esc)
			}
			lx.advance()
			continue
		}
		sb.WriteByte(c)
		lx.advance()
	}
}

func (lx *Lexer) lexName() (Token, error) {
	startLine, startCol := lx.line, lx.col
	start := lx.pos
	for lx.pos < len(lx.src) && isNameCont(lx.src[lx.pos]) {
		lx.advance()
	}
	lit := lx.src[start:lx.pos]
	if keywords[lit] {
		return Token{Kind: TokKeyword, Lit: lit, Line: startLine, Col: startCol}, nil
	}
	return Token{Kind: TokName, Lit: lit, Line: startLine, Col: startCol}, nil
}

// multi-character operators, longest first.
var multiOps = []string{
	"**=", "//=", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=",
	"**", "//", "->",
}

func (lx *Lexer) lexOp() (Token, error) {
	startLine, startCol := lx.line, lx.col
	rest := lx.src[lx.pos:]
	for _, op := range multiOps {
		if strings.HasPrefix(rest, op) {
			for range op {
				lx.advance()
			}
			return Token{Kind: TokOp, Lit: op, Line: startLine, Col: startCol}, nil
		}
	}
	c := lx.src[lx.pos]
	switch c {
	case '(', '[', '{':
		lx.paren++
	case ')', ']', '}':
		if lx.paren > 0 {
			lx.paren--
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '(', ')', '[', ']', '{', '}',
		',', ':', '.', ';', '@', '&', '|', '^', '~':
		lx.advance()
		return Token{Kind: TokOp, Lit: string(c), Line: startLine, Col: startCol}, nil
	}
	return Token{}, lx.errf("unexpected character %q", string(c))
}

func isDigit(c byte) bool     { return c >= '0' && c <= '9' }
func isNameStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isNameCont(c byte) bool  { return isNameStart(c) || isDigit(c) }
