package script

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Value is a runtime PyLite value. The concrete types mirror Python's core
// object model closely enough for the paper's listings: None, bool, int,
// float, str, bytes, list, tuple, dict, function, builtin and native object.
type Value interface {
	// TypeName is the Python-style type name ("int", "list", ...).
	TypeName() string
	// Repr renders the value the way Python's repr() would (approximately).
	Repr() string
}

// NoneVal is the None singleton's type.
type NoneVal struct{}

// None is the singleton None value.
var None = NoneVal{}

func (NoneVal) TypeName() string { return "NoneType" }
func (NoneVal) Repr() string     { return "None" }

// BoolVal is a boolean.
type BoolVal bool

func (BoolVal) TypeName() string { return "bool" }
func (b BoolVal) Repr() string {
	if b {
		return "True"
	}
	return "False"
}

// IntVal is a 64-bit integer.
type IntVal int64

func (IntVal) TypeName() string { return "int" }
func (i IntVal) Repr() string   { return strconv.FormatInt(int64(i), 10) }

// FloatVal is a 64-bit float.
type FloatVal float64

func (FloatVal) TypeName() string { return "float" }
func (f FloatVal) Repr() string {
	v := float64(f)
	if v == math.Trunc(v) && math.Abs(v) < 1e15 && !math.IsInf(v, 0) {
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// StrVal is a string.
type StrVal string

func (StrVal) TypeName() string { return "str" }
func (s StrVal) Repr() string   { return "'" + strings.ReplaceAll(string(s), "'", "\\'") + "'" }

// BytesVal is an immutable byte string (the result of pickle.dumps).
type BytesVal []byte

func (BytesVal) TypeName() string { return "bytes" }
func (b BytesVal) Repr() string   { return fmt.Sprintf("b'<%d bytes>'", len(b)) }

// ListVal is a mutable list.
type ListVal struct {
	Items []Value
}

// NewList builds a list value from items.
func NewList(items ...Value) *ListVal { return &ListVal{Items: items} }

func (*ListVal) TypeName() string { return "list" }
func (l *ListVal) Repr() string {
	parts := make([]string, len(l.Items))
	for i, it := range l.Items {
		parts[i] = it.Repr()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// TupleVal is an immutable sequence.
type TupleVal struct {
	Items []Value
}

func (*TupleVal) TypeName() string { return "tuple" }
func (t *TupleVal) Repr() string {
	parts := make([]string, len(t.Items))
	for i, it := range t.Items {
		parts[i] = it.Repr()
	}
	if len(parts) == 1 {
		return "(" + parts[0] + ",)"
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// DictVal is an insertion-ordered dictionary with str/int/bool/float keys.
type DictVal struct {
	keys  []Value
	index map[string]int
	vals  []Value
}

// NewDict returns an empty dictionary.
func NewDict() *DictVal { return &DictVal{index: map[string]int{}} }

func (*DictVal) TypeName() string { return "dict" }
func (d *DictVal) Repr() string {
	parts := make([]string, len(d.keys))
	for i, k := range d.keys {
		parts[i] = k.Repr() + ": " + d.vals[i].Repr()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// hashKey encodes a hashable value as a map key.
func hashKey(v Value) (string, error) {
	switch v := v.(type) {
	case StrVal:
		return "s:" + string(v), nil
	case IntVal:
		return "i:" + strconv.FormatInt(int64(v), 10), nil
	case BoolVal:
		if v {
			return "i:1", nil
		}
		return "i:0", nil
	case FloatVal:
		f := float64(v)
		if f == math.Trunc(f) {
			return "i:" + strconv.FormatInt(int64(f), 10), nil
		}
		return "f:" + strconv.FormatFloat(f, 'g', -1, 64), nil
	case NoneVal:
		return "n:", nil
	case *TupleVal:
		var sb strings.Builder
		sb.WriteString("t:")
		for _, it := range v.Items {
			k, err := hashKey(it)
			if err != nil {
				return "", err
			}
			sb.WriteString(strconv.Itoa(len(k)))
			sb.WriteByte('|')
			sb.WriteString(k)
		}
		return sb.String(), nil
	default:
		return "", core.Errorf(core.KindType, "unhashable type: '%s'", v.TypeName())
	}
}

// Set inserts or updates a key.
func (d *DictVal) Set(key, val Value) error {
	k, err := hashKey(key)
	if err != nil {
		return err
	}
	if d.index == nil {
		d.index = map[string]int{}
	}
	if i, ok := d.index[k]; ok {
		d.vals[i] = val
		return nil
	}
	d.index[k] = len(d.keys)
	d.keys = append(d.keys, key)
	d.vals = append(d.vals, val)
	return nil
}

// Get fetches a key; the second result reports presence.
func (d *DictVal) Get(key Value) (Value, bool, error) {
	k, err := hashKey(key)
	if err != nil {
		return nil, false, err
	}
	if i, ok := d.index[k]; ok {
		return d.vals[i], true, nil
	}
	return nil, false, nil
}

// Delete removes a key, reporting whether it was present.
func (d *DictVal) Delete(key Value) (bool, error) {
	k, err := hashKey(key)
	if err != nil {
		return false, err
	}
	i, ok := d.index[k]
	if !ok {
		return false, nil
	}
	delete(d.index, k)
	d.keys = append(d.keys[:i], d.keys[i+1:]...)
	d.vals = append(d.vals[:i], d.vals[i+1:]...)
	for j := i; j < len(d.keys); j++ {
		hk, _ := hashKey(d.keys[j])
		d.index[hk] = j
	}
	return true, nil
}

// Len returns the number of entries.
func (d *DictVal) Len() int { return len(d.keys) }

// Keys returns the keys in insertion order.
func (d *DictVal) Keys() []Value { return append([]Value(nil), d.keys...) }

// Values returns the values in insertion order.
func (d *DictVal) Values() []Value { return append([]Value(nil), d.vals...) }

// Items returns (key, value) pairs in insertion order.
func (d *DictVal) Items() [][2]Value {
	out := make([][2]Value, len(d.keys))
	for i := range d.keys {
		out[i] = [2]Value{d.keys[i], d.vals[i]}
	}
	return out
}

// SetStr is a convenience for string keys.
func (d *DictVal) SetStr(key string, val Value) { _ = d.Set(StrVal(key), val) }

// GetStr is a convenience for string keys.
func (d *DictVal) GetStr(key string) (Value, bool) {
	v, ok, _ := d.Get(StrVal(key))
	return v, ok
}

// RangeVal is a lazy range(start, stop, step) sequence.
type RangeVal struct {
	Start, Stop, Step int64
}

func (RangeVal) TypeName() string { return "range" }
func (r RangeVal) Repr() string {
	if r.Step == 1 {
		return fmt.Sprintf("range(%d, %d)", r.Start, r.Stop)
	}
	return fmt.Sprintf("range(%d, %d, %d)", r.Start, r.Stop, r.Step)
}

// Len returns the number of elements the range yields.
func (r RangeVal) Len() int64 {
	if r.Step > 0 {
		if r.Stop <= r.Start {
			return 0
		}
		return (r.Stop - r.Start + r.Step - 1) / r.Step
	}
	if r.Stop >= r.Start {
		return 0
	}
	step := -r.Step
	return (r.Start - r.Stop + step - 1) / step
}

// FuncVal is a user-defined function (def or lambda).
type FuncVal struct {
	Name    string
	Params  []Param
	Body    []Stmt  // nil for lambdas
	Expr    Expr    // lambda body
	Closure *Env    // defining environment
	Module  *Module // for tracebacks
	DefLine int
}

func (*FuncVal) TypeName() string { return "function" }
func (f *FuncVal) Repr() string {
	name := f.Name
	if name == "" {
		name = "<lambda>"
	}
	return "<function " + name + ">"
}

// BuiltinFunc is the Go signature of builtin functions and methods.
type BuiltinFunc func(in *Interp, args []Value, kwargs map[string]Value) (Value, error)

// BuiltinVal is a function implemented in Go.
type BuiltinVal struct {
	Name string
	Fn   BuiltinFunc
}

func (*BuiltinVal) TypeName() string { return "builtin_function_or_method" }
func (b *BuiltinVal) Repr() string   { return "<built-in function " + b.Name + ">" }

// ObjectVal is a native object exposed to scripts: module shims, the _conn
// loopback handle, classifiers, file handles. Attribute lookup first
// consults Attrs, then Methods.
type ObjectVal struct {
	Class   string
	Attrs   *DictVal
	Methods map[string]BuiltinFunc
	// Opaque carries the backing Go state (e.g. *mllib.Classifier).
	Opaque any
}

// NewObject creates a native object of the given class.
func NewObject(class string) *ObjectVal {
	return &ObjectVal{Class: class, Attrs: NewDict(), Methods: map[string]BuiltinFunc{}}
}

func (o *ObjectVal) TypeName() string { return o.Class }
func (o *ObjectVal) Repr() string     { return "<" + o.Class + " object>" }

// Truthy reports Python truthiness.
func Truthy(v Value) bool {
	switch v := v.(type) {
	case NoneVal:
		return false
	case BoolVal:
		return bool(v)
	case IntVal:
		return v != 0
	case FloatVal:
		return v != 0
	case StrVal:
		return len(v) > 0
	case BytesVal:
		return len(v) > 0
	case *ListVal:
		return len(v.Items) > 0
	case *TupleVal:
		return len(v.Items) > 0
	case *DictVal:
		return v.Len() > 0
	case RangeVal:
		return v.Len() > 0
	default:
		return true
	}
}

// Equal reports deep value equality with Python's numeric cross-type rules
// (1 == 1.0, True == 1).
func Equal(a, b Value) bool {
	if an, aok := asFloat(a); aok {
		if bn, bok := asFloat(b); bok {
			return an == bn
		}
		return false
	}
	switch a := a.(type) {
	case NoneVal:
		_, ok := b.(NoneVal)
		return ok
	case StrVal:
		bs, ok := b.(StrVal)
		return ok && a == bs
	case BytesVal:
		bb, ok := b.(BytesVal)
		return ok && string(a) == string(bb)
	case *ListVal:
		bl, ok := b.(*ListVal)
		if !ok || len(a.Items) != len(bl.Items) {
			return false
		}
		for i := range a.Items {
			if !Equal(a.Items[i], bl.Items[i]) {
				return false
			}
		}
		return true
	case *TupleVal:
		bt, ok := b.(*TupleVal)
		if !ok || len(a.Items) != len(bt.Items) {
			return false
		}
		for i := range a.Items {
			if !Equal(a.Items[i], bt.Items[i]) {
				return false
			}
		}
		return true
	case *DictVal:
		bd, ok := b.(*DictVal)
		if !ok || a.Len() != bd.Len() {
			return false
		}
		for _, kv := range a.Items() {
			bv, present, err := bd.Get(kv[0])
			if err != nil || !present || !Equal(kv[1], bv) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

// asFloat converts numeric values (bool/int/float) to float64.
func asFloat(v Value) (float64, bool) {
	switch v := v.(type) {
	case BoolVal:
		if v {
			return 1, true
		}
		return 0, true
	case IntVal:
		return float64(v), true
	case FloatVal:
		return float64(v), true
	default:
		return 0, false
	}
}

// asInt converts bool/int values to int64.
func asInt(v Value) (int64, bool) {
	switch v := v.(type) {
	case BoolVal:
		if v {
			return 1, true
		}
		return 0, true
	case IntVal:
		return int64(v), true
	default:
		return 0, false
	}
}

// Compare orders two values, returning -1, 0 or +1. Only numbers compare
// with numbers and strings with strings; anything else is a type error.
func Compare(a, b Value) (int, error) {
	if af, ok := asFloat(a); ok {
		if bf, ok := asFloat(b); ok {
			switch {
			case af < bf:
				return -1, nil
			case af > bf:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if as, ok := a.(StrVal); ok {
		if bs, ok := b.(StrVal); ok {
			return strings.Compare(string(as), string(bs)), nil
		}
	}
	if al, ok := a.(*ListVal); ok {
		if bl, ok := b.(*ListVal); ok {
			n := len(al.Items)
			if len(bl.Items) < n {
				n = len(bl.Items)
			}
			for i := 0; i < n; i++ {
				c, err := Compare(al.Items[i], bl.Items[i])
				if err != nil || c != 0 {
					return c, err
				}
			}
			switch {
			case len(al.Items) < len(bl.Items):
				return -1, nil
			case len(al.Items) > len(bl.Items):
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	return 0, core.Errorf(core.KindType,
		"'<' not supported between instances of '%s' and '%s'", a.TypeName(), b.TypeName())
}

// Str renders a value the way Python's str() would: strings are bare,
// everything else uses Repr.
func Str(v Value) string {
	if s, ok := v.(StrVal); ok {
		return string(s)
	}
	return v.Repr()
}

// SortValues sorts a slice of values in place using Compare; the first
// comparison error aborts and is returned.
func SortValues(items []Value) error {
	var sortErr error
	sort.SliceStable(items, func(i, j int) bool {
		if sortErr != nil {
			return false
		}
		c, err := Compare(items[i], items[j])
		if err != nil {
			sortErr = err
			return false
		}
		return c < 0
	})
	return sortErr
}
