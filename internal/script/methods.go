package script

import (
	"strings"

	"repro/internal/core"
)

// getAttr resolves attribute access X.name: bound methods on builtin types,
// attributes and methods on native objects.
func (in *Interp) getAttr(x Value, name string, line int) (Value, error) {
	switch x := x.(type) {
	case *ObjectVal:
		if v, ok := x.Attrs.GetStr(name); ok {
			return v, nil
		}
		if m, ok := x.Methods[name]; ok {
			return bi(x.Class+"."+name, m), nil
		}
		return nil, in.rtErrf(line, "'%s' object has no attribute '%s'", x.Class, name)
	case *ListVal:
		if fn, ok := listMethod(x, name); ok {
			return fn, nil
		}
	case *DictVal:
		if fn, ok := dictMethod(x, name); ok {
			return fn, nil
		}
	case StrVal:
		if fn, ok := strMethod(x, name); ok {
			return fn, nil
		}
	}
	return nil, in.rtErrf(line, "'%s' object has no attribute '%s'", x.TypeName(), name)
}

func listMethod(l *ListVal, name string) (Value, bool) {
	switch name {
	case "append":
		return bi("list.append", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 1 {
				return nil, argErr("append", "takes exactly one argument")
			}
			l.Items = append(l.Items, args[0])
			return None, nil
		}), true
	case "extend":
		return bi("list.extend", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 1 {
				return nil, argErr("extend", "takes exactly one argument")
			}
			items, err := toSlice(in, args[0])
			if err != nil {
				return nil, err
			}
			l.Items = append(l.Items, items...)
			return None, nil
		}), true
	case "insert":
		return bi("list.insert", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 2 {
				return nil, argErr("insert", "takes exactly two arguments")
			}
			i, ok := asInt(args[0])
			if !ok {
				return nil, argErr("insert", "index must be an integer")
			}
			n := int64(len(l.Items))
			if i < 0 {
				i += n
			}
			if i < 0 {
				i = 0
			}
			if i > n {
				i = n
			}
			l.Items = append(l.Items, nil)
			copy(l.Items[i+1:], l.Items[i:])
			l.Items[i] = args[1]
			return None, nil
		}), true
	case "pop":
		return bi("list.pop", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(l.Items) == 0 {
				return nil, core.Errorf(core.KindConstraint, "pop from empty list")
			}
			i := int64(len(l.Items) - 1)
			if len(args) == 1 {
				v, ok := asInt(args[0])
				if !ok {
					return nil, argErr("pop", "index must be an integer")
				}
				i = v
				if i < 0 {
					i += int64(len(l.Items))
				}
				if i < 0 || i >= int64(len(l.Items)) {
					return nil, core.Errorf(core.KindConstraint, "pop index out of range")
				}
			}
			v := l.Items[i]
			l.Items = append(l.Items[:i], l.Items[i+1:]...)
			return v, nil
		}), true
	case "remove":
		return bi("list.remove", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 1 {
				return nil, argErr("remove", "takes exactly one argument")
			}
			for i, it := range l.Items {
				if Equal(it, args[0]) {
					l.Items = append(l.Items[:i], l.Items[i+1:]...)
					return None, nil
				}
			}
			return nil, core.Errorf(core.KindConstraint, "list.remove(x): x not in list")
		}), true
	case "index":
		return bi("list.index", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 1 {
				return nil, argErr("index", "takes exactly one argument")
			}
			for i, it := range l.Items {
				if Equal(it, args[0]) {
					return IntVal(i), nil
				}
			}
			return nil, core.Errorf(core.KindConstraint, "%s is not in list", args[0].Repr())
		}), true
	case "count":
		return bi("list.count", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 1 {
				return nil, argErr("count", "takes exactly one argument")
			}
			n := int64(0)
			for _, it := range l.Items {
				if Equal(it, args[0]) {
					n++
				}
			}
			return IntVal(n), nil
		}), true
	case "sort":
		return bi("list.sort", func(in *Interp, args []Value, kwargs map[string]Value) (Value, error) {
			if err := SortValues(l.Items); err != nil {
				return nil, err
			}
			if rv, ok := kwargs["reverse"]; ok && Truthy(rv) {
				for i, j := 0, len(l.Items)-1; i < j; i, j = i+1, j-1 {
					l.Items[i], l.Items[j] = l.Items[j], l.Items[i]
				}
			}
			return None, nil
		}), true
	case "reverse":
		return bi("list.reverse", func(in *Interp, _ []Value, _ map[string]Value) (Value, error) {
			for i, j := 0, len(l.Items)-1; i < j; i, j = i+1, j-1 {
				l.Items[i], l.Items[j] = l.Items[j], l.Items[i]
			}
			return None, nil
		}), true
	case "copy":
		return bi("list.copy", func(in *Interp, _ []Value, _ map[string]Value) (Value, error) {
			return &ListVal{Items: append([]Value(nil), l.Items...)}, nil
		}), true
	}
	return nil, false
}

func dictMethod(d *DictVal, name string) (Value, bool) {
	switch name {
	case "keys":
		return bi("dict.keys", func(in *Interp, _ []Value, _ map[string]Value) (Value, error) {
			return &ListVal{Items: d.Keys()}, nil
		}), true
	case "values":
		return bi("dict.values", func(in *Interp, _ []Value, _ map[string]Value) (Value, error) {
			return &ListVal{Items: d.Values()}, nil
		}), true
	case "items":
		return bi("dict.items", func(in *Interp, _ []Value, _ map[string]Value) (Value, error) {
			items := d.Items()
			out := make([]Value, len(items))
			for i, kv := range items {
				out[i] = &TupleVal{Items: []Value{kv[0], kv[1]}}
			}
			return &ListVal{Items: out}, nil
		}), true
	case "get":
		return bi("dict.get", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) < 1 || len(args) > 2 {
				return nil, argErr("get", "takes 1 or 2 arguments")
			}
			v, ok, err := d.Get(args[0])
			if err != nil {
				return nil, err
			}
			if ok {
				return v, nil
			}
			if len(args) == 2 {
				return args[1], nil
			}
			return None, nil
		}), true
	case "pop":
		return bi("dict.pop", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) < 1 || len(args) > 2 {
				return nil, argErr("pop", "takes 1 or 2 arguments")
			}
			v, ok, err := d.Get(args[0])
			if err != nil {
				return nil, err
			}
			if ok {
				if _, err := d.Delete(args[0]); err != nil {
					return nil, err
				}
				return v, nil
			}
			if len(args) == 2 {
				return args[1], nil
			}
			return nil, core.Errorf(core.KindConstraint, "KeyError: %s", args[0].Repr())
		}), true
	case "update":
		return bi("dict.update", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 1 {
				return nil, argErr("update", "takes exactly one argument")
			}
			src, ok := args[0].(*DictVal)
			if !ok {
				return nil, argErr("update", "argument must be a dict")
			}
			for _, kv := range src.Items() {
				if err := d.Set(kv[0], kv[1]); err != nil {
					return nil, err
				}
			}
			return None, nil
		}), true
	case "copy":
		return bi("dict.copy", func(in *Interp, _ []Value, _ map[string]Value) (Value, error) {
			out := NewDict()
			for _, kv := range d.Items() {
				if err := out.Set(kv[0], kv[1]); err != nil {
					return nil, err
				}
			}
			return out, nil
		}), true
	}
	return nil, false
}

func strMethod(s StrVal, name string) (Value, bool) {
	str := string(s)
	switch name {
	case "split":
		return bi("str.split", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			var parts []string
			if len(args) == 0 {
				parts = strings.Fields(str)
			} else {
				sep, ok := args[0].(StrVal)
				if !ok {
					return nil, argErr("split", "separator must be a string")
				}
				parts = strings.Split(str, string(sep))
			}
			out := make([]Value, len(parts))
			for i, p := range parts {
				out[i] = StrVal(p)
			}
			return &ListVal{Items: out}, nil
		}), true
	case "join":
		return bi("str.join", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 1 {
				return nil, argErr("join", "takes exactly one argument")
			}
			items, err := toSlice(in, args[0])
			if err != nil {
				return nil, err
			}
			parts := make([]string, len(items))
			for i, it := range items {
				sv, ok := it.(StrVal)
				if !ok {
					return nil, core.Errorf(core.KindType,
						"sequence item %d: expected str instance, %s found", i, it.TypeName())
				}
				parts[i] = string(sv)
			}
			return StrVal(strings.Join(parts, str)), nil
		}), true
	case "strip":
		return bi("str.strip", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			cut := " \t\n\r"
			if len(args) == 1 {
				c, ok := args[0].(StrVal)
				if !ok {
					return nil, argErr("strip", "argument must be a string")
				}
				cut = string(c)
			}
			return StrVal(strings.Trim(str, cut)), nil
		}), true
	case "lstrip":
		return bi("str.lstrip", func(in *Interp, _ []Value, _ map[string]Value) (Value, error) {
			return StrVal(strings.TrimLeft(str, " \t\n\r")), nil
		}), true
	case "rstrip":
		return bi("str.rstrip", func(in *Interp, _ []Value, _ map[string]Value) (Value, error) {
			return StrVal(strings.TrimRight(str, " \t\n\r")), nil
		}), true
	case "upper":
		return bi("str.upper", func(in *Interp, _ []Value, _ map[string]Value) (Value, error) {
			return StrVal(strings.ToUpper(str)), nil
		}), true
	case "lower":
		return bi("str.lower", func(in *Interp, _ []Value, _ map[string]Value) (Value, error) {
			return StrVal(strings.ToLower(str)), nil
		}), true
	case "startswith":
		return bi("str.startswith", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 1 {
				return nil, argErr("startswith", "takes exactly one argument")
			}
			p, ok := args[0].(StrVal)
			if !ok {
				return nil, argErr("startswith", "prefix must be a string")
			}
			return BoolVal(strings.HasPrefix(str, string(p))), nil
		}), true
	case "endswith":
		return bi("str.endswith", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 1 {
				return nil, argErr("endswith", "takes exactly one argument")
			}
			p, ok := args[0].(StrVal)
			if !ok {
				return nil, argErr("endswith", "suffix must be a string")
			}
			return BoolVal(strings.HasSuffix(str, string(p))), nil
		}), true
	case "replace":
		return bi("str.replace", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 2 {
				return nil, argErr("replace", "takes exactly two arguments")
			}
			from, ok1 := args[0].(StrVal)
			to, ok2 := args[1].(StrVal)
			if !ok1 || !ok2 {
				return nil, argErr("replace", "arguments must be strings")
			}
			return StrVal(strings.ReplaceAll(str, string(from), string(to))), nil
		}), true
	case "find":
		return bi("str.find", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 1 {
				return nil, argErr("find", "takes exactly one argument")
			}
			sub, ok := args[0].(StrVal)
			if !ok {
				return nil, argErr("find", "argument must be a string")
			}
			return IntVal(int64(strings.Index(str, string(sub)))), nil
		}), true
	case "count":
		return bi("str.count", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 1 {
				return nil, argErr("count", "takes exactly one argument")
			}
			sub, ok := args[0].(StrVal)
			if !ok {
				return nil, argErr("count", "argument must be a string")
			}
			return IntVal(int64(strings.Count(str, string(sub)))), nil
		}), true
	case "format":
		return bi("str.format", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
			out := str
			for _, a := range args {
				out = strings.Replace(out, "{}", Str(a), 1)
			}
			return StrVal(out), nil
		}), true
	}
	return nil, false
}
