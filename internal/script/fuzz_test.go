package script

import (
	"strings"
	"testing"
)

// fuzzSeeds covers the grammar: defs, control flow, literals, slices,
// dicts, imports, exceptions — plus known-nasty edges (empty input, stray
// indentation, unterminated strings, deep nesting).
var fuzzSeeds = []string{
	"",
	"x = 1\n",
	"def f(a, b=2):\n    return a + b\nresult = f(1)\n",
	"for i in range(0, 10):\n    if i % 2 == 0:\n        continue\n    print(i)\n",
	"while True:\n    break\n",
	"d = {'a': [1, 2.5, 'x'], 'b': (1,)}\nv = d['a'][0:2]\n",
	"import os\nfiles = os.listdir('.')\n",
	"try:\n    x = 1 / 0\nexcept:\n    x = None\n",
	"class\n",
	"x = 'unterminated\n",
	"def f():\n  return ((((((1))))))\n",
	"x = [i * i for i in range(0, 3)]\n",
	"lambda\n",
	"x = -1e309\n",
	"\tindent = 1\n",
	"x = \"esc\\n\\t\\\"q\\\"\"\n",
	"a, b = 1, 2\na += b\n",
	"def g():\n    global cnt\n    cnt = cnt + 1\n",
	"x = 1 if True else 2\n",
	"s = 'a' * 3 + 'b'\nn = len(s)\n",
}

// FuzzParse asserts the lexer/parser never panic, parse deterministically,
// and preserve the module's source lines — the properties the debugger
// (breakpoints address lines of Source()) depends on.
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		mod1, err1 := Parse("fuzz.py", src)
		mod2, err2 := Parse("fuzz.py", src)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic parse: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("nondeterministic parse error: %q vs %q", err1, err2)
			}
			return
		}
		if len(mod1.Body) != len(mod2.Body) {
			t.Fatalf("nondeterministic statement count: %d vs %d", len(mod1.Body), len(mod2.Body))
		}
		// Source lines must round-trip: the debugger indexes them 1-based.
		want := strings.Split(src, "\n")
		if len(mod1.Lines) != len(want) {
			t.Fatalf("module kept %d lines of %d", len(mod1.Lines), len(want))
		}
		for i := range want {
			if mod1.Lines[i] != want[i] {
				t.Fatalf("line %d drifted: %q vs %q", i+1, mod1.Lines[i], want[i])
			}
		}
		// Every parsed statement must report a position inside the source.
		for _, st := range mod1.Body {
			if p := st.Pos(); p < 1 || p > len(want) {
				t.Fatalf("statement position %d outside 1..%d", p, len(want))
			}
		}
	})
}

// FuzzEvalExpr asserts the expression path the debugger uses for watch
// expressions and conditional breakpoints never panics, even on adversarial
// input typed into the condition box.
func FuzzEvalExpr(f *testing.F) {
	for _, seed := range []string{
		"i > 3", "column[i] - mean", "len(x) == 0", "1 / 0", "(", "a.b.c",
		"x = 1", "'s' + 1", "d['missing']", "f(", "not (a and b) or c",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		mod, err := Parse("cond.py", "x = 1\n")
		if err != nil {
			t.Fatal(err)
		}
		in := NewInterp()
		var paused bool
		in.Trace = func(in *Interp, ev TraceEvent) error {
			if paused || ev.Kind != TraceLine {
				return nil
			}
			paused = true
			// Evaluating any expression in a paused frame must fail cleanly
			// or succeed — never panic or corrupt the interpreter.
			_, _ = in.EvalInFrame(expr, ev.Frame)
			return nil
		}
		if _, err := in.Run(mod); err != nil {
			t.Fatalf("host script failed: %v", err)
		}
	})
}
