package script

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// runSrc executes source and returns the module globals.
func runSrc(t *testing.T, src string) *Env {
	t.Helper()
	mod, err := Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in := NewInterp()
	env, err := in.Run(mod)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return env
}

// runSrcOut executes source and returns captured print output.
func runSrcOut(t *testing.T, src string) string {
	t.Helper()
	mod, err := Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var sb strings.Builder
	in := NewInterp()
	in.Stdout = &sb
	if _, err := in.Run(mod); err != nil {
		t.Fatalf("run: %v", err)
	}
	return sb.String()
}

// runSrcErr executes source and returns the error (must be non-nil).
func runSrcErr(t *testing.T, src string) error {
	t.Helper()
	mod, err := Parse("test", src)
	if err != nil {
		return err
	}
	in := NewInterp()
	_, err = in.Run(mod)
	if err == nil {
		t.Fatalf("expected error, got none")
	}
	return err
}

func getVar(t *testing.T, env *Env, name string) Value {
	t.Helper()
	v, ok := env.Get(name)
	if !ok {
		t.Fatalf("variable %q not defined", name)
	}
	return v
}

func wantInt(t *testing.T, env *Env, name string, want int64) {
	t.Helper()
	v := getVar(t, env, name)
	iv, ok := v.(IntVal)
	if !ok {
		t.Fatalf("%s: want int, got %s (%s)", name, v.TypeName(), v.Repr())
	}
	if int64(iv) != want {
		t.Fatalf("%s = %d, want %d", name, int64(iv), want)
	}
}

func wantFloat(t *testing.T, env *Env, name string, want float64) {
	t.Helper()
	v := getVar(t, env, name)
	fv, ok := v.(FloatVal)
	if !ok {
		t.Fatalf("%s: want float, got %s (%s)", name, v.TypeName(), v.Repr())
	}
	if float64(fv) != want {
		t.Fatalf("%s = %v, want %v", name, float64(fv), want)
	}
}

func wantStr(t *testing.T, env *Env, name string, want string) {
	t.Helper()
	v := getVar(t, env, name)
	sv, ok := v.(StrVal)
	if !ok {
		t.Fatalf("%s: want str, got %s", name, v.TypeName())
	}
	if string(sv) != want {
		t.Fatalf("%s = %q, want %q", name, string(sv), want)
	}
}

func TestArithmetic(t *testing.T) {
	env := runSrc(t, `
a = 2 + 3 * 4
b = (2 + 3) * 4
c = 7 // 2
d = -7 // 2
e = 7 % 3
f = -7 % 3
g = 2 ** 10
h = 10 / 4
`)
	wantInt(t, env, "a", 14)
	wantInt(t, env, "b", 20)
	wantInt(t, env, "c", 3)
	wantInt(t, env, "d", -4) // Python floor division
	wantInt(t, env, "e", 1)
	wantInt(t, env, "f", 2) // Python modulo sign
	wantInt(t, env, "g", 1024)
	wantFloat(t, env, "h", 2.5)
}

func TestFloatMixing(t *testing.T) {
	env := runSrc(t, `
a = 1 + 2.5
b = 10.0 // 3
c = 2 ** -1
`)
	wantFloat(t, env, "a", 3.5)
	wantFloat(t, env, "b", 3.0)
	wantFloat(t, env, "c", 0.5)
}

func TestStringOps(t *testing.T) {
	env := runSrc(t, `
a = "foo" + "bar"
b = "ab" * 3
c = "a,b,c".split(",")
d = "-".join(["x", "y"])
e = "  hi  ".strip()
f = "hello"[1]
g = "hello"[1:3]
h = "hello %d world %s" % (42, "yes")
i = len("hello")
j = "ell" in "hello"
`)
	wantStr(t, env, "a", "foobar")
	wantStr(t, env, "b", "ababab")
	if got := getVar(t, env, "c").Repr(); got != "['a', 'b', 'c']" {
		t.Fatalf("split: %s", got)
	}
	wantStr(t, env, "d", "x-y")
	wantStr(t, env, "e", "hi")
	wantStr(t, env, "f", "e")
	wantStr(t, env, "g", "el")
	wantStr(t, env, "h", "hello 42 world yes")
	wantInt(t, env, "i", 5)
	if got := getVar(t, env, "j"); !Truthy(got) {
		t.Fatal("'ell' in 'hello' should be True")
	}
}

func TestListOps(t *testing.T) {
	env := runSrc(t, `
l = [3, 1, 2]
l.append(4)
l.sort()
first = l[0]
last = l[-1]
sub = l[1:3]
total = sum(l)
n = len(l)
l2 = l + [9]
popped = l2.pop()
has = 3 in l
idx = l.index(3)
`)
	wantInt(t, env, "first", 1)
	wantInt(t, env, "last", 4)
	wantInt(t, env, "total", 10)
	wantInt(t, env, "n", 4)
	wantInt(t, env, "popped", 9)
	wantInt(t, env, "idx", 2)
	if got := getVar(t, env, "sub").Repr(); got != "[2, 3]" {
		t.Fatalf("slice: %s", got)
	}
}

func TestDictOps(t *testing.T) {
	env := runSrc(t, `
d = {"a": 1, "b": 2}
d["c"] = 3
x = d["a"]
y = d.get("zz", -1)
ks = d.keys()
n = len(d)
has = "b" in d
del d["a"]
n2 = len(d)
`)
	wantInt(t, env, "x", 1)
	wantInt(t, env, "y", -1)
	wantInt(t, env, "n", 3)
	wantInt(t, env, "n2", 2)
	if got := getVar(t, env, "ks").Repr(); got != "['a', 'b', 'c']" {
		t.Fatalf("keys order: %s", got)
	}
}

func TestControlFlow(t *testing.T) {
	env := runSrc(t, `
total = 0
for i in range(0, 10):
    if i % 2 == 0:
        continue
    if i == 9:
        break
    total += i

j = 0
while j < 5:
    j += 1

grade = ""
score = 85
if score >= 90:
    grade = "A"
elif score >= 80:
    grade = "B"
else:
    grade = "C"
`)
	wantInt(t, env, "total", 1+3+5+7)
	wantInt(t, env, "j", 5)
	wantStr(t, env, "grade", "B")
}

func TestFunctions(t *testing.T) {
	env := runSrc(t, `
def add(a, b=10):
    return a + b

def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

def swap(a, b):
    return b, a

x = add(1, 2)
y = add(5)
z = add(b=1, a=2)
f8 = fib(8)
(p, q) = swap(1, 2)
sq = lambda v: v * v
s = sq(7)
`)
	wantInt(t, env, "x", 3)
	wantInt(t, env, "y", 15)
	wantInt(t, env, "z", 3)
	wantInt(t, env, "f8", 21)
	wantInt(t, env, "p", 2)
	wantInt(t, env, "q", 1)
	wantInt(t, env, "s", 49)
}

func TestClosuresAndGlobals(t *testing.T) {
	env := runSrc(t, `
counter = 0

def bump():
    global counter
    counter += 1

def make_adder(n):
    def adder(x):
        return x + n
    return adder

bump()
bump()
add5 = make_adder(5)
r = add5(3)
`)
	wantInt(t, env, "counter", 2)
	wantInt(t, env, "r", 8)
}

func TestTupleUnpackInFor(t *testing.T) {
	env := runSrc(t, `
pairs = [(1, "a"), (2, "b")]
total = 0
names = ""
for n, s in pairs:
    total += n
    names += s
`)
	wantInt(t, env, "total", 3)
	wantStr(t, env, "names", "ab")
}

func TestBuiltins(t *testing.T) {
	env := runSrc(t, `
a = min(3, 1, 2)
b = max([5, 9, 2])
c = abs(-4)
d = int("42")
e = float("2.5")
f = str(123)
g = sorted([3, 1, 2])
h = sorted([3, 1, 2], reverse=True)
i = list(range(3))
j = round(2.5)
k = round(3.14159, 2)
m = list(enumerate(["x", "y"]))
z = list(zip([1, 2], ["a", "b"]))
`)
	wantInt(t, env, "a", 1)
	wantInt(t, env, "b", 9)
	wantInt(t, env, "c", 4)
	wantInt(t, env, "d", 42)
	wantFloat(t, env, "e", 2.5)
	wantStr(t, env, "f", "123")
	if got := getVar(t, env, "g").Repr(); got != "[1, 2, 3]" {
		t.Fatalf("sorted: %s", got)
	}
	if got := getVar(t, env, "h").Repr(); got != "[3, 2, 1]" {
		t.Fatalf("sorted reverse: %s", got)
	}
	if got := getVar(t, env, "i").Repr(); got != "[0, 1, 2]" {
		t.Fatalf("list(range): %s", got)
	}
	wantInt(t, env, "j", 2) // banker's rounding
	wantFloat(t, env, "k", 3.14)
	if got := getVar(t, env, "m").Repr(); got != "[(0, 'x'), (1, 'y')]" {
		t.Fatalf("enumerate: %s", got)
	}
	if got := getVar(t, env, "z").Repr(); got != "[(1, 'a'), (2, 'b')]" {
		t.Fatalf("zip: %s", got)
	}
}

func TestPrint(t *testing.T) {
	out := runSrcOut(t, `
print("hello", 42)
print("a", "b", sep="-", end="!")
`)
	want := "hello 42\na-b!"
	if out != want {
		t.Fatalf("print output %q, want %q", out, want)
	}
}

func TestTernaryAndBoolOps(t *testing.T) {
	env := runSrc(t, `
a = 1 if True else 2
b = 1 if False else 2
c = 0 or "fallback"
d = 1 and 2
e = not 0
f = 1 < 2 < 3
g = 1 < 2 > 5
`)
	wantInt(t, env, "a", 1)
	wantInt(t, env, "b", 2)
	wantStr(t, env, "c", "fallback")
	wantInt(t, env, "d", 2)
	if !Truthy(getVar(t, env, "e")) {
		t.Fatal("not 0 should be True")
	}
	if !Truthy(getVar(t, env, "f")) {
		t.Fatal("1 < 2 < 3 should be True")
	}
	if Truthy(getVar(t, env, "g")) {
		t.Fatal("1 < 2 > 5 should be False")
	}
}

func TestErrorsCarryTraceback(t *testing.T) {
	err := runSrcErr(t, `
def inner():
    return unknown_name

def outer():
    return inner()

outer()
`)
	re, ok := err.(*RuntimeError)
	if !ok {
		t.Fatalf("want *RuntimeError, got %T: %v", err, err)
	}
	if !strings.Contains(re.Msg, "unknown_name") {
		t.Fatalf("message: %s", re.Msg)
	}
	joined := strings.Join(re.Stack, "|")
	if !strings.Contains(joined, "inner") || !strings.Contains(joined, "outer") {
		t.Fatalf("stack should mention inner and outer: %v", re.Stack)
	}
	if core.KindOf(err) != core.KindRuntime {
		t.Fatalf("kind = %v, want runtime", core.KindOf(err))
	}
}

func TestDivisionByZero(t *testing.T) {
	err := runSrcErr(t, `x = 1 / 0`)
	if !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err: %v", err)
	}
}

func TestIndexOutOfRange(t *testing.T) {
	err := runSrcErr(t, `x = [1, 2][5]`)
	if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err: %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	mod, err := Parse("test", "while True:\n    pass\n")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp()
	in.MaxSteps = 1000
	if _, err := in.Run(mod); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("want step limit error, got %v", err)
	}
}

func TestRecursionLimit(t *testing.T) {
	err := runSrcErr(t, `
def loop():
    return loop()
loop()
`)
	if !strings.Contains(err.Error(), "recursion") {
		t.Fatalf("err: %v", err)
	}
}

func TestTryExceptFinally(t *testing.T) {
	env := runSrc(t, `
log = []
try:
    x = 1 / 0
except Exception as e:
    log.append("caught")
finally:
    log.append("finally")

msg = ""
try:
    raise Exception("boom")
except Exception as e:
    msg = e
`)
	if got := getVar(t, env, "log").Repr(); got != "['caught', 'finally']" {
		t.Fatalf("log: %s", got)
	}
	wantStr(t, env, "msg", "boom")
}

func TestAssert(t *testing.T) {
	err := runSrcErr(t, `assert 1 == 2, "broken math"`)
	if !strings.Contains(err.Error(), "broken math") {
		t.Fatalf("err: %v", err)
	}
	runSrc(t, `assert 1 == 1`)
}

func TestMathAndNumpyModules(t *testing.T) {
	env := runSrc(t, `
import math
import numpy

a = math.sqrt(16)
b = math.floor(2.9)
c = numpy.sum([1, 2, 3])
d = numpy.mean([2, 4, 6])
e = numpy.sum([True, False, True, True])
`)
	wantFloat(t, env, "a", 4)
	wantInt(t, env, "b", 2)
	wantInt(t, env, "c", 6)
	wantFloat(t, env, "d", 4)
	wantInt(t, env, "e", 3)
}

func TestPickleModuleRoundTrip(t *testing.T) {
	env := runSrc(t, `
import pickle

original = {"name": "x", "vals": [1, 2.5, None, True], "nested": {"k": (1, 2)}}
blob = pickle.dumps(original)
restored = pickle.loads(blob)
same = restored == original
`)
	if !Truthy(getVar(t, env, "same")) {
		t.Fatal("pickle round trip should preserve equality")
	}
}

func TestOpenAndOSModule(t *testing.T) {
	fs := core.NewMemFS(map[string]string{
		"data/one.csv": "1\n2\n3\n",
		"data/two.csv": "4\n5\n",
	})
	mod, err := Parse("test", `
import os

files = os.listdir("data")
total = 0
for name in files:
    f = open("data/" + name)
    for line in f:
        total += int(line)
`)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp()
	in.FS = fs
	env, err := in.Run(mod)
	if err != nil {
		t.Fatal(err)
	}
	wantInt(t, env, "total", 15)
	if got := getVar(t, env, "files").Repr(); got != "['one.csv', 'two.csv']" {
		t.Fatalf("listdir: %s", got)
	}
}

func TestFileWrite(t *testing.T) {
	fs := core.NewMemFS(nil)
	mod, err := Parse("test", `
f = open("out.txt", "w")
f.write("hello")
f.write(" world")
f.close()
`)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp()
	in.FS = fs
	if _, err := in.Run(mod); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile("out.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello world" {
		t.Fatalf("file content %q", b)
	}
}

// TestPaperListing4 runs the paper's buggy mean_deviation body (Listing 4)
// and verifies the bug reproduces: the non-absolute difference makes the
// result (near) zero instead of the true mean absolute deviation.
func TestPaperListing4(t *testing.T) {
	env := runSrc(t, `
def mean_deviation(column):
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += column[i] - mean
    deviation = distance / len(column)
    return deviation

def mean_deviation_fixed(column):
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += abs(column[i] - mean)
    deviation = distance / len(column)
    return deviation

data = [1, 2, 3, 4, 100]
buggy = mean_deviation(data)
fixed = mean_deviation_fixed(data)
`)
	buggy := float64(getVar(t, env, "buggy").(FloatVal))
	fixed := float64(getVar(t, env, "fixed").(FloatVal))
	if buggy > 1e-9 || buggy < -1e-9 {
		t.Fatalf("buggy version should be ~0, got %v", buggy)
	}
	if fixed != 31.2 {
		t.Fatalf("fixed mean deviation = %v, want 31.2", fixed)
	}
}

// TestPaperListing5 runs the buggy data loader (Listing 5): range(0, n-1)
// silently skips the last file.
func TestPaperListing5(t *testing.T) {
	fs := core.NewMemFS(map[string]string{
		"csvs/a.csv": "1\n2\n",
		"csvs/b.csv": "3\n",
		"csvs/c.csv": "100\n",
	})
	src := `
import os

def loadNumbers(path):
    files = os.listdir(path)
    result = []
    for i in range(0, len(files) - 1):
        file = open(path + "/" + files[i], "r")
        for line in file:
            result.append(int(line))
    return result

nums = loadNumbers("csvs")
n = len(nums)
`
	mod, err := Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp()
	in.FS = fs
	env, err := in.Run(mod)
	if err != nil {
		t.Fatal(err)
	}
	// The bug: c.csv (the value 100) is skipped.
	wantInt(t, env, "n", 3)
	if got := getVar(t, env, "nums").Repr(); got != "[1, 2, 3]" {
		t.Fatalf("nums: %s", got)
	}
}

func TestCallWrongArity(t *testing.T) {
	err := runSrcErr(t, `
def f(a, b):
    return a
f(1, 2, 3)
`)
	if !strings.Contains(err.Error(), "takes 2 arguments but 3 were given") {
		t.Fatalf("err: %v", err)
	}
}

func TestUnknownModule(t *testing.T) {
	err := runSrcErr(t, `import nonexistent_module_xyz`)
	if !strings.Contains(err.Error(), "ModuleNotFoundError") {
		t.Fatalf("err: %v", err)
	}
}

func TestCallFromGo(t *testing.T) {
	mod, err := Parse("udf", "def double(x):\n    return x * 2\n")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp()
	env, err := in.Run(mod)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := env.Get("double")
	out, err := in.Call(fn, []Value{IntVal(21)})
	if err != nil {
		t.Fatal(err)
	}
	if out.(IntVal) != 42 {
		t.Fatalf("double(21) = %v", out)
	}
}

func TestSemicolonsAndInlineBlocks(t *testing.T) {
	// The paper's listings end statements with semicolons (SQL habit).
	env := runSrc(t, `
x = 1;
if x == 1: y = 2
`)
	wantInt(t, env, "y", 2)
}

func TestTripleQuotedStrings(t *testing.T) {
	env := runSrc(t, `
q = """SELECT data,
labels FROM testingset"""
n = len(q.split("\n"))
`)
	wantInt(t, env, "n", 2)
}

func TestAttrAssignment(t *testing.T) {
	env := runSrc(t, `
import math
d = {}
d["pi"] = math.pi
ok = d["pi"] > 3.14
`)
	if !Truthy(getVar(t, env, "ok")) {
		t.Fatal("math.pi should exceed 3.14")
	}
}

func TestTraceEvents(t *testing.T) {
	mod, err := Parse("traced", `
def f(x):
    return x + 1

a = f(1)
b = f(2)
`)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp()
	var calls, returns, lines int
	in.Trace = func(_ *Interp, ev TraceEvent) error {
		switch ev.Kind {
		case TraceCall:
			calls++
		case TraceReturn:
			returns++
		case TraceLine:
			lines++
		}
		return nil
	}
	if _, err := in.Run(mod); err != nil {
		t.Fatal(err)
	}
	if calls != 2 || returns != 2 {
		t.Fatalf("calls=%d returns=%d, want 2/2", calls, returns)
	}
	if lines < 5 {
		t.Fatalf("lines=%d, want >=5", lines)
	}
}

func TestTraceAbort(t *testing.T) {
	mod, err := Parse("abort", "x = 1\ny = 2\nz = 3\n")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp()
	count := 0
	in.Trace = func(_ *Interp, ev TraceEvent) error {
		count++
		if count == 2 {
			return core.Errorf(core.KindRuntime, "stopped by debugger")
		}
		return nil
	}
	_, err = in.Run(mod)
	if err == nil || !strings.Contains(err.Error(), "stopped by debugger") {
		t.Fatalf("err: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"def f(:\n    pass\n",
		"if x\n    pass\n",
		"x = (1 + \n",
		"for in range(3):\n    pass\n",
		"x ===== 3",
		"1 = x",
	}
	for _, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestIndentationErrors(t *testing.T) {
	_, err := Parse("bad", "if True:\n    x = 1\n   y = 2\n")
	if err == nil {
		t.Fatal("mismatched dedent should fail")
	}
}

func TestStrMethods(t *testing.T) {
	env := runSrc(t, `
a = "Hello".upper()
b = "Hello".lower()
c = "hello world".replace("world", "there")
d = "hello".startswith("he")
e = "hello".endswith("lo")
f = "a.b.c".count(".")
g = "hello".find("ll")
h = "{} + {} = {}".format(1, 2, 3)
`)
	wantStr(t, env, "a", "HELLO")
	wantStr(t, env, "b", "hello")
	wantStr(t, env, "c", "hello there")
	if !Truthy(getVar(t, env, "d")) || !Truthy(getVar(t, env, "e")) {
		t.Fatal("startswith/endswith failed")
	}
	wantInt(t, env, "f", 2)
	wantInt(t, env, "g", 2)
	wantStr(t, env, "h", "1 + 2 = 3")
}

func TestNegativeIndexing(t *testing.T) {
	env := runSrc(t, `
l = [1, 2, 3]
a = l[-1]
b = l[-3]
s = "hello"[-1]
t = (7, 8)[-2]
`)
	wantInt(t, env, "a", 3)
	wantInt(t, env, "b", 1)
	wantStr(t, env, "s", "o")
	wantInt(t, env, "t", 7)
}

func TestRangeVariants(t *testing.T) {
	env := runSrc(t, `
a = list(range(5))
b = list(range(2, 5))
c = list(range(10, 0, -3))
d = len(range(1000000))
e = 999999 in range(1000000)
f = 5 in range(0, 10, 2)
`)
	if got := getVar(t, env, "a").Repr(); got != "[0, 1, 2, 3, 4]" {
		t.Fatalf("a: %s", got)
	}
	if got := getVar(t, env, "b").Repr(); got != "[2, 3, 4]" {
		t.Fatalf("b: %s", got)
	}
	if got := getVar(t, env, "c").Repr(); got != "[10, 7, 4, 1]" {
		t.Fatalf("c: %s", got)
	}
	wantInt(t, env, "d", 1000000)
	if !Truthy(getVar(t, env, "e")) {
		t.Fatal("999999 in range(1000000)")
	}
	if Truthy(getVar(t, env, "f")) {
		t.Fatal("5 not in range(0,10,2)")
	}
}
