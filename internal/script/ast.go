package script

// Node is the common interface of all PyLite AST nodes.
type Node interface {
	// Pos returns the 1-based source line of the node.
	Pos() int
}

type pos struct{ Line int }

func (p pos) Pos() int { return p.Line }

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// Module is a parsed source file: a flat list of top-level statements.
type Module struct {
	Name  string
	Body  []Stmt
	Lines []string // original source split by line, for tracebacks
}

// ExprStmt is a bare expression evaluated for effect (e.g. a call).
type ExprStmt struct {
	pos
	X Expr
}

// AssignStmt binds Value to each of Targets (a = b = expr is not supported;
// exactly one target). Targets can be Name, Index, Attr or Tuple nodes.
type AssignStmt struct {
	pos
	Target Expr
	Value  Expr
}

// AugAssignStmt is an augmented assignment such as x += 1. Op is the
// operator without '=', e.g. "+".
type AugAssignStmt struct {
	pos
	Target Expr
	Op     string
	Value  Expr
}

// ReturnStmt returns Value (nil means None) from the enclosing function.
type ReturnStmt struct {
	pos
	Value Expr
}

// PassStmt does nothing.
type PassStmt struct{ pos }

// BreakStmt exits the innermost loop.
type BreakStmt struct{ pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ pos }

// IfStmt is an if/elif/else chain. Elifs are nested IfStmts in Else.
type IfStmt struct {
	pos
	Cond Expr
	Body []Stmt
	Else []Stmt // may be nil
}

// WhileStmt loops while Cond is truthy.
type WhileStmt struct {
	pos
	Cond Expr
	Body []Stmt
}

// ForStmt iterates Target over Iter.
type ForStmt struct {
	pos
	Target Expr // Name or Tuple of Names
	Iter   Expr
	Body   []Stmt
}

// DefStmt defines a function.
type DefStmt struct {
	pos
	Name    string
	Params  []Param
	Body    []Stmt
	EndLine int
}

// Param is a function parameter with an optional default expression.
type Param struct {
	Name    string
	Default Expr // nil when required
}

// ImportStmt is `import a.b` or `import a.b as c`.
type ImportStmt struct {
	pos
	Module string
	Alias  string // binding name; defaults to first path segment
}

// FromImportStmt is `from a.b import c, d as e`.
type FromImportStmt struct {
	pos
	Module string
	Names  [][2]string // pairs of (exported name, binding alias)
}

// GlobalStmt declares names as referring to module scope.
type GlobalStmt struct {
	pos
	Names []string
}

// DelStmt removes a binding or container element.
type DelStmt struct {
	pos
	Target Expr
}

// AssertStmt raises when Cond is falsy.
type AssertStmt struct {
	pos
	Cond Expr
	Msg  Expr // may be nil
}

// RaiseStmt raises an error. Value may be nil (re-raise is not supported).
type RaiseStmt struct {
	pos
	Value Expr
}

// TryStmt is try/except/finally. Only a single catch-all except clause with
// an optional binding name is supported, which covers the paper's needs.
type TryStmt struct {
	pos
	Body    []Stmt
	ExcName string // binding for the error message; "" for none
	Handler []Stmt // nil when no except clause
	Finally []Stmt // nil when no finally clause
}

func (*ExprStmt) stmt()       {}
func (*AssignStmt) stmt()     {}
func (*AugAssignStmt) stmt()  {}
func (*ReturnStmt) stmt()     {}
func (*PassStmt) stmt()       {}
func (*BreakStmt) stmt()      {}
func (*ContinueStmt) stmt()   {}
func (*IfStmt) stmt()         {}
func (*WhileStmt) stmt()      {}
func (*ForStmt) stmt()        {}
func (*DefStmt) stmt()        {}
func (*ImportStmt) stmt()     {}
func (*FromImportStmt) stmt() {}
func (*GlobalStmt) stmt()     {}
func (*DelStmt) stmt()        {}
func (*AssertStmt) stmt()     {}
func (*RaiseStmt) stmt()      {}
func (*TryStmt) stmt()        {}

// ---- Expressions ----

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// Name references a variable.
type Name struct {
	pos
	Ident string
}

// IntLit is an integer literal.
type IntLit struct {
	pos
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	pos
	Value float64
}

// StrLit is a string literal (already unescaped).
type StrLit struct {
	pos
	Value string
}

// BoolLit is True or False.
type BoolLit struct {
	pos
	Value bool
}

// NoneLit is None.
type NoneLit struct{ pos }

// ListLit is [a, b, ...].
type ListLit struct {
	pos
	Elems []Expr
}

// TupleLit is (a, b) or a bare comma-list a, b.
type TupleLit struct {
	pos
	Elems []Expr
}

// DictLit is {k: v, ...}.
type DictLit struct {
	pos
	Keys   []Expr
	Values []Expr
}

// UnaryExpr applies Op ("-", "not", "+") to X.
type UnaryExpr struct {
	pos
	Op string
	X  Expr
}

// BinExpr applies a binary operator. Comparisons are represented here too;
// chained comparisons (a < b < c) are expanded by the parser into
// (a < b) and (b < c).
type BinExpr struct {
	pos
	Op   string // + - * / // % ** == != < <= > >= and or in notin is
	L, R Expr
}

// CallExpr invokes Fn with positional Args and keyword Kwargs.
type CallExpr struct {
	pos
	Fn     Expr
	Args   []Expr
	KwName []string
	KwVal  []Expr
}

// IndexExpr is X[Idx].
type IndexExpr struct {
	pos
	X   Expr
	Idx Expr
}

// SliceExpr is X[Lo:Hi] with optional bounds.
type SliceExpr struct {
	pos
	X      Expr
	Lo, Hi Expr // either may be nil
}

// AttrExpr is X.Name.
type AttrExpr struct {
	pos
	X    Expr
	Name string
}

// LambdaExpr is lambda params: body-expression.
type LambdaExpr struct {
	pos
	Params []Param
	Body   Expr
}

// CondExpr is the ternary `a if cond else b`.
type CondExpr struct {
	pos
	Cond       Expr
	Then, Else Expr
}

// CompExpr is a list comprehension `[elem for target in iter if cond]`.
// Like Python 2 (and unlike Python 3), the loop variable is evaluated in
// the enclosing scope.
type CompExpr struct {
	pos
	Elem   Expr
	Target Expr
	Iter   Expr
	Cond   Expr // nil when absent
}

func (*Name) expr()       {}
func (*IntLit) expr()     {}
func (*FloatLit) expr()   {}
func (*StrLit) expr()     {}
func (*BoolLit) expr()    {}
func (*NoneLit) expr()    {}
func (*ListLit) expr()    {}
func (*TupleLit) expr()   {}
func (*DictLit) expr()    {}
func (*UnaryExpr) expr()  {}
func (*BinExpr) expr()    {}
func (*CallExpr) expr()   {}
func (*IndexExpr) expr()  {}
func (*SliceExpr) expr()  {}
func (*AttrExpr) expr()   {}
func (*LambdaExpr) expr() {}
func (*CondExpr) expr()   {}
func (*CompExpr) expr()   {}
