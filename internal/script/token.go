// Package script implements PyLite, a small indentation-sensitive,
// dynamically-typed scripting language with Python surface syntax. PyLite is
// the stand-in for MonetDB/Python's embedded CPython in this reproduction:
// UDF bodies from the paper's listings run in it nearly verbatim, and its
// tracing hooks are what the interactive debugger (internal/debug) and the
// devUDF local-run harness attach to.
package script

import "fmt"

// TokKind enumerates PyLite token kinds.
type TokKind int

// Token kinds. Structural tokens (NEWLINE/INDENT/DEDENT) are synthesized by
// the lexer from line breaks and leading whitespace, as in Python.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokName
	TokInt
	TokFloat
	TokString
	TokOp      // operators and punctuation; Lit holds the exact spelling
	TokKeyword // def, if, ... ; Lit holds the keyword
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokNewline:
		return "NEWLINE"
	case TokIndent:
		return "INDENT"
	case TokDedent:
		return "DEDENT"
	case TokName:
		return "NAME"
	case TokInt:
		return "INT"
	case TokFloat:
		return "FLOAT"
	case TokString:
		return "STRING"
	case TokOp:
		return "OP"
	case TokKeyword:
		return "KEYWORD"
	default:
		return "?"
	}
}

// Token is a single lexeme with its source position.
type Token struct {
	Kind TokKind
	Lit  string // exact spelling; for TokString, the decoded value
	Line int    // 1-based
	Col  int    // 1-based
}

func (t Token) String() string {
	if t.Lit == "" {
		return t.Kind.String()
	}
	return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
}

// keywords is the PyLite reserved-word set.
var keywords = map[string]bool{
	"def": true, "return": true, "if": true, "elif": true, "else": true,
	"for": true, "while": true, "in": true, "not": true, "and": true,
	"or": true, "pass": true, "break": true, "continue": true,
	"import": true, "from": true, "as": true, "is": true,
	"True": true, "False": true, "None": true, "lambda": true,
	"try": true, "except": true, "finally": true, "raise": true,
	"global": true, "del": true, "assert": true,
}
