package script

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

func bi(name string, fn BuiltinFunc) *BuiltinVal { return &BuiltinVal{Name: name, Fn: fn} }

func argErr(name string, want string) error {
	return core.Errorf(core.KindType, "%s() %s", name, want)
}

// installBuiltins populates the root builtin scope.
func installBuiltins(env *Env) {
	env.Set("len", bi("len", biLen))
	env.Set("range", bi("range", biRange))
	env.Set("print", bi("print", biPrint))
	env.Set("sum", bi("sum", biSum))
	env.Set("min", bi("min", biMin))
	env.Set("max", bi("max", biMax))
	env.Set("abs", bi("abs", biAbs))
	env.Set("int", bi("int", biInt))
	env.Set("float", bi("float", biFloat))
	env.Set("str", bi("str", biStr))
	env.Set("bool", bi("bool", biBool))
	env.Set("list", bi("list", biList))
	env.Set("dict", bi("dict", biDict))
	env.Set("tuple", bi("tuple", biTuple))
	env.Set("sorted", bi("sorted", biSorted))
	env.Set("reversed", bi("reversed", biReversed))
	env.Set("enumerate", bi("enumerate", biEnumerate))
	env.Set("zip", bi("zip", biZip))
	env.Set("round", bi("round", biRound))
	env.Set("type", bi("type", biType))
	env.Set("repr", bi("repr", biRepr))
	env.Set("open", bi("open", biOpen))
	env.Set("Exception", bi("Exception", biException))
	env.Set("ValueError", bi("ValueError", biException))
	env.Set("TypeError", bi("TypeError", biException))
	env.Set("isinstance", bi("isinstance", biIsinstance))
}

func seqLen(v Value) (int64, bool) {
	switch v := v.(type) {
	case *ListVal:
		return int64(len(v.Items)), true
	case *TupleVal:
		return int64(len(v.Items)), true
	case StrVal:
		return int64(len([]rune(string(v)))), true
	case BytesVal:
		return int64(len(v)), true
	case *DictVal:
		return int64(v.Len()), true
	case RangeVal:
		return v.Len(), true
	default:
		return 0, false
	}
}

func biLen(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) != 1 {
		return nil, argErr("len", "takes exactly one argument")
	}
	if n, ok := seqLen(args[0]); ok {
		return IntVal(n), nil
	}
	return nil, core.Errorf(core.KindType, "object of type '%s' has no len()", args[0].TypeName())
}

func biRange(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	ints := make([]int64, len(args))
	for i, a := range args {
		v, ok := asInt(a)
		if !ok {
			return nil, argErr("range", "arguments must be integers")
		}
		ints[i] = v
	}
	switch len(ints) {
	case 1:
		return RangeVal{0, ints[0], 1}, nil
	case 2:
		return RangeVal{ints[0], ints[1], 1}, nil
	case 3:
		if ints[2] == 0 {
			return nil, argErr("range", "step argument must not be zero")
		}
		return RangeVal{ints[0], ints[1], ints[2]}, nil
	default:
		return nil, argErr("range", "expects 1 to 3 arguments")
	}
}

func biPrint(in *Interp, args []Value, kwargs map[string]Value) (Value, error) {
	sep, end := " ", "\n"
	if v, ok := kwargs["sep"]; ok {
		sep = Str(v)
	}
	if v, ok := kwargs["end"]; ok {
		end = Str(v)
	}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = Str(a)
	}
	fmt.Fprint(in.Stdout, strings.Join(parts, sep)+end)
	return None, nil
}

func toSlice(in *Interp, v Value) ([]Value, error) {
	var out []Value
	err := in.iterate(v, 0, func(item Value) error {
		out = append(out, item)
		return nil
	})
	return out, err
}

func biSum(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) < 1 || len(args) > 2 {
		return nil, argErr("sum", "takes 1 or 2 arguments")
	}
	items, err := toSlice(in, args[0])
	if err != nil {
		return nil, err
	}
	isFloat := false
	var iacc int64
	var facc float64
	if len(args) == 2 {
		switch s := args[1].(type) {
		case IntVal:
			iacc = int64(s)
		case FloatVal:
			isFloat, facc = true, float64(s)
		default:
			return nil, argErr("sum", "start must be a number")
		}
	}
	for _, it := range items {
		switch it := it.(type) {
		case IntVal:
			if isFloat {
				facc += float64(it)
			} else {
				iacc += int64(it)
			}
		case BoolVal:
			if it {
				if isFloat {
					facc++
				} else {
					iacc++
				}
			}
		case FloatVal:
			if !isFloat {
				isFloat = true
				facc = float64(iacc)
			}
			facc += float64(it)
		default:
			return nil, core.Errorf(core.KindType,
				"unsupported operand type(s) for +: 'int' and '%s'", it.TypeName())
		}
	}
	if isFloat {
		return FloatVal(facc), nil
	}
	return IntVal(iacc), nil
}

func extreme(in *Interp, name string, args []Value, wantMax bool) (Value, error) {
	var items []Value
	if len(args) == 1 {
		var err error
		items, err = toSlice(in, args[0])
		if err != nil {
			return nil, err
		}
	} else {
		items = args
	}
	if len(items) == 0 {
		return nil, core.Errorf(core.KindConstraint, "%s() arg is an empty sequence", name)
	}
	best := items[0]
	for _, it := range items[1:] {
		c, err := Compare(it, best)
		if err != nil {
			return nil, err
		}
		if (wantMax && c > 0) || (!wantMax && c < 0) {
			best = it
		}
	}
	return best, nil
}

func biMin(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) == 0 {
		return nil, argErr("min", "expected at least 1 argument")
	}
	return extreme(in, "min", args, false)
}

func biMax(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) == 0 {
		return nil, argErr("max", "expected at least 1 argument")
	}
	return extreme(in, "max", args, true)
}

func biAbs(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) != 1 {
		return nil, argErr("abs", "takes exactly one argument")
	}
	switch v := args[0].(type) {
	case IntVal:
		if v < 0 {
			return -v, nil
		}
		return v, nil
	case FloatVal:
		return FloatVal(math.Abs(float64(v))), nil
	case BoolVal:
		if v {
			return IntVal(1), nil
		}
		return IntVal(0), nil
	default:
		return nil, core.Errorf(core.KindType, "bad operand type for abs(): '%s'", v.TypeName())
	}
}

func biInt(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) == 0 {
		return IntVal(0), nil
	}
	switch v := args[0].(type) {
	case IntVal:
		return v, nil
	case BoolVal:
		if v {
			return IntVal(1), nil
		}
		return IntVal(0), nil
	case FloatVal:
		return IntVal(int64(math.Trunc(float64(v)))), nil
	case StrVal:
		s := strings.TrimSpace(string(v))
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, core.Errorf(core.KindType,
				"invalid literal for int() with base 10: %q", string(v))
		}
		return IntVal(n), nil
	default:
		return nil, core.Errorf(core.KindType,
			"int() argument must be a string or a number, not '%s'", v.TypeName())
	}
}

func biFloat(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) == 0 {
		return FloatVal(0), nil
	}
	switch v := args[0].(type) {
	case FloatVal:
		return v, nil
	case IntVal:
		return FloatVal(float64(v)), nil
	case BoolVal:
		if v {
			return FloatVal(1), nil
		}
		return FloatVal(0), nil
	case StrVal:
		f, err := strconv.ParseFloat(strings.TrimSpace(string(v)), 64)
		if err != nil {
			return nil, core.Errorf(core.KindType, "could not convert string to float: %q", string(v))
		}
		return FloatVal(f), nil
	default:
		return nil, core.Errorf(core.KindType,
			"float() argument must be a string or a number, not '%s'", v.TypeName())
	}
}

func biStr(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) == 0 {
		return StrVal(""), nil
	}
	return StrVal(Str(args[0])), nil
}

func biBool(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) == 0 {
		return BoolVal(false), nil
	}
	return BoolVal(Truthy(args[0])), nil
}

func biList(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) == 0 {
		return &ListVal{}, nil
	}
	items, err := toSlice(in, args[0])
	if err != nil {
		return nil, err
	}
	return &ListVal{Items: items}, nil
}

func biTuple(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) == 0 {
		return &TupleVal{}, nil
	}
	items, err := toSlice(in, args[0])
	if err != nil {
		return nil, err
	}
	return &TupleVal{Items: items}, nil
}

func biDict(in *Interp, args []Value, kwargs map[string]Value) (Value, error) {
	d := NewDict()
	if len(args) == 1 {
		if src, ok := args[0].(*DictVal); ok {
			for _, kv := range src.Items() {
				if err := d.Set(kv[0], kv[1]); err != nil {
					return nil, err
				}
			}
		} else {
			items, err := toSlice(in, args[0])
			if err != nil {
				return nil, err
			}
			for _, it := range items {
				pair, err := toSlice(in, it)
				if err != nil || len(pair) != 2 {
					return nil, argErr("dict", "update sequence elements must be pairs")
				}
				if err := d.Set(pair[0], pair[1]); err != nil {
					return nil, err
				}
			}
		}
	}
	keys := make([]string, 0, len(kwargs))
	for k := range kwargs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d.SetStr(k, kwargs[k])
	}
	return d, nil
}

func biSorted(in *Interp, args []Value, kwargs map[string]Value) (Value, error) {
	if len(args) != 1 {
		return nil, argErr("sorted", "takes exactly one positional argument")
	}
	items, err := toSlice(in, args[0])
	if err != nil {
		return nil, err
	}
	out := append([]Value(nil), items...)
	reverse := false
	if rv, ok := kwargs["reverse"]; ok {
		reverse = Truthy(rv)
	}
	if keyFn, ok := kwargs["key"]; ok {
		type pair struct {
			key  Value
			item Value
		}
		pairs := make([]pair, len(out))
		for i, it := range out {
			k, err := in.call(keyFn, []Value{it}, nil, 0)
			if err != nil {
				return nil, err
			}
			pairs[i] = pair{k, it}
		}
		var sortErr error
		sort.SliceStable(pairs, func(i, j int) bool {
			if sortErr != nil {
				return false
			}
			c, err := Compare(pairs[i].key, pairs[j].key)
			if err != nil {
				sortErr = err
			}
			return c < 0
		})
		if sortErr != nil {
			return nil, sortErr
		}
		for i, p := range pairs {
			out[i] = p.item
		}
	} else if err := SortValues(out); err != nil {
		return nil, err
	}
	if reverse {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return &ListVal{Items: out}, nil
}

func biReversed(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) != 1 {
		return nil, argErr("reversed", "takes exactly one argument")
	}
	items, err := toSlice(in, args[0])
	if err != nil {
		return nil, err
	}
	out := make([]Value, len(items))
	for i, it := range items {
		out[len(items)-1-i] = it
	}
	return &ListVal{Items: out}, nil
}

func biEnumerate(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) < 1 || len(args) > 2 {
		return nil, argErr("enumerate", "takes 1 or 2 arguments")
	}
	start := int64(0)
	if len(args) == 2 {
		s, ok := asInt(args[1])
		if !ok {
			return nil, argErr("enumerate", "start must be an integer")
		}
		start = s
	}
	items, err := toSlice(in, args[0])
	if err != nil {
		return nil, err
	}
	out := make([]Value, len(items))
	for i, it := range items {
		out[i] = &TupleVal{Items: []Value{IntVal(start + int64(i)), it}}
	}
	return &ListVal{Items: out}, nil
}

func biZip(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) == 0 {
		return &ListVal{}, nil
	}
	cols := make([][]Value, len(args))
	minLen := -1
	for i, a := range args {
		items, err := toSlice(in, a)
		if err != nil {
			return nil, err
		}
		cols[i] = items
		if minLen < 0 || len(items) < minLen {
			minLen = len(items)
		}
	}
	out := make([]Value, minLen)
	for r := 0; r < minLen; r++ {
		row := make([]Value, len(cols))
		for c := range cols {
			row[c] = cols[c][r]
		}
		out[r] = &TupleVal{Items: row}
	}
	return &ListVal{Items: out}, nil
}

func biRound(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) < 1 || len(args) > 2 {
		return nil, argErr("round", "takes 1 or 2 arguments")
	}
	f, ok := asFloat(args[0])
	if !ok {
		return nil, argErr("round", "argument must be a number")
	}
	if len(args) == 1 {
		return IntVal(int64(math.RoundToEven(f))), nil
	}
	nd, ok := asInt(args[1])
	if !ok {
		return nil, argErr("round", "ndigits must be an integer")
	}
	scale := math.Pow(10, float64(nd))
	return FloatVal(math.RoundToEven(f*scale) / scale), nil
}

func biType(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) != 1 {
		return nil, argErr("type", "takes exactly one argument")
	}
	return StrVal(args[0].TypeName()), nil
}

func biRepr(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) != 1 {
		return nil, argErr("repr", "takes exactly one argument")
	}
	return StrVal(args[0].Repr()), nil
}

func biException(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) == 0 {
		return StrVal("exception"), nil
	}
	return StrVal(Str(args[0])), nil
}

func biIsinstance(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) != 2 {
		return nil, argErr("isinstance", "takes exactly two arguments")
	}
	want, ok := args[1].(StrVal)
	if !ok {
		// allow isinstance(x, int) where int is the builtin constructor
		if b, ok := args[1].(*BuiltinVal); ok {
			want = StrVal(b.Name)
		} else {
			return nil, argErr("isinstance", "second argument must be a type")
		}
	}
	return BoolVal(args[0].TypeName() == string(want)), nil
}

// fileHandle backs the object returned by open(); iterating it yields lines
// (Scenario B's `for line in file:`), and pickle.load reads raw bytes.
type fileHandle struct {
	name  string
	data  []byte
	lines []Value
}

// IterValues implements the opaque-iteration protocol used by Interp.iterate.
func (h *fileHandle) IterValues() ([]Value, error) { return h.lines, nil }

func biOpen(in *Interp, args []Value, _ map[string]Value) (Value, error) {
	if len(args) < 1 {
		return nil, argErr("open", "missing file name")
	}
	name, ok := args[0].(StrVal)
	if !ok {
		return nil, argErr("open", "file name must be a string")
	}
	mode := "r"
	if len(args) >= 2 {
		if m, ok := args[1].(StrVal); ok {
			mode = string(m)
		}
	}
	if in.FS == nil {
		return nil, core.Errorf(core.KindIO, "file access is not available in this context")
	}
	obj := NewObject("file")
	obj.Attrs.SetStr("name", name)
	switch {
	case strings.HasPrefix(mode, "r"):
		data, err := in.FS.ReadFile(string(name))
		if err != nil {
			return nil, err
		}
		h := &fileHandle{name: string(name), data: data}
		text := strings.TrimSuffix(string(data), "\n")
		if text != "" {
			for _, line := range strings.Split(text, "\n") {
				h.lines = append(h.lines, StrVal(line))
			}
		}
		obj.Opaque = h
		obj.Methods["read"] = func(_ *Interp, _ []Value, _ map[string]Value) (Value, error) {
			return StrVal(string(data)), nil
		}
		obj.Methods["readlines"] = func(_ *Interp, _ []Value, _ map[string]Value) (Value, error) {
			return &ListVal{Items: append([]Value(nil), h.lines...)}, nil
		}
		obj.Methods["close"] = func(_ *Interp, _ []Value, _ map[string]Value) (Value, error) {
			return None, nil
		}
	case strings.HasPrefix(mode, "w"):
		var buf strings.Builder
		obj.Methods["write"] = func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 1 {
				return nil, argErr("write", "takes exactly one argument")
			}
			s := Str(args[0])
			buf.WriteString(s)
			return IntVal(int64(len(s))), nil
		}
		obj.Methods["close"] = func(_ *Interp, _ []Value, _ map[string]Value) (Value, error) {
			return None, in.FS.WriteFile(string(name), []byte(buf.String()))
		}
	default:
		return nil, core.Errorf(core.KindIO, "unsupported open mode %q", mode)
	}
	return obj, nil
}
