package script

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/core"
)

// Module shims. PyLite resolves `import X` against, in order: the standard
// shims below, the process-wide registry (RegisterModule — how the
// sklearn/mllib substitution plugs in), and the interpreter's
// ModuleProvider hook (how the engine injects database-aware modules).

var (
	moduleRegMu sync.RWMutex
	moduleReg   = map[string]func(*Interp) Value{}
)

// RegisterModule installs a module constructor under an import path.
// Packages providing native modules call this from init().
func RegisterModule(name string, build func(*Interp) Value) {
	moduleRegMu.Lock()
	defer moduleRegMu.Unlock()
	moduleReg[name] = build
}

func stdModule(in *Interp, name string) (Value, bool) {
	switch name {
	case "pickle":
		return pickleModule(in), true
	case "os":
		return osModule(in), true
	case "math":
		return mathModule(), true
	case "numpy":
		return numpyModule(in), true
	case "random":
		return randomModule(in), true
	}
	moduleRegMu.RLock()
	build, ok := moduleReg[name]
	moduleRegMu.RUnlock()
	if ok {
		return build(in), true
	}
	return nil, false
}

func pickleModule(in *Interp) Value {
	m := NewObject("module")
	m.Attrs.SetStr("__name__", StrVal("pickle"))
	m.Methods["dumps"] = func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr("pickle.dumps", "takes exactly one argument")
		}
		b, err := Marshal(args[0])
		if err != nil {
			return nil, err
		}
		return BytesVal(b), nil
	}
	m.Methods["loads"] = func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr("pickle.loads", "takes exactly one argument")
		}
		var raw []byte
		switch v := args[0].(type) {
		case BytesVal:
			raw = v
		case StrVal:
			raw = []byte(v)
		default:
			return nil, argErr("pickle.loads", "argument must be bytes")
		}
		return Unmarshal(raw)
	}
	m.Methods["dump"] = func(ii *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 2 {
			return nil, argErr("pickle.dump", "takes exactly two arguments")
		}
		obj, ok := args[1].(*ObjectVal)
		if !ok || obj.Class != "file" {
			return nil, argErr("pickle.dump", "second argument must be a file")
		}
		b, err := Marshal(args[0])
		if err != nil {
			return nil, err
		}
		write, ok := obj.Methods["write"]
		if !ok {
			return nil, core.Errorf(core.KindIO, "file is not open for writing")
		}
		if _, err := write(ii, []Value{StrVal(b)}, nil); err != nil {
			return nil, err
		}
		return None, nil
	}
	m.Methods["load"] = func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr("pickle.load", "takes exactly one argument")
		}
		obj, ok := args[0].(*ObjectVal)
		if !ok || obj.Class != "file" {
			return nil, argErr("pickle.load", "argument must be a file")
		}
		h, ok := obj.Opaque.(*fileHandle)
		if !ok {
			return nil, core.Errorf(core.KindIO, "file is not open for reading")
		}
		return Unmarshal(h.data)
	}
	return m
}

func osModule(in *Interp) Value {
	m := NewObject("module")
	m.Attrs.SetStr("__name__", StrVal("os"))
	m.Methods["listdir"] = func(ii *Interp, args []Value, _ map[string]Value) (Value, error) {
		dir := "."
		if len(args) >= 1 {
			s, ok := args[0].(StrVal)
			if !ok {
				return nil, argErr("os.listdir", "path must be a string")
			}
			dir = string(s)
		}
		if ii.FS == nil {
			return nil, core.Errorf(core.KindIO, "file access is not available in this context")
		}
		names, err := ii.FS.ListDir(dir)
		if err != nil {
			return nil, err
		}
		out := make([]Value, len(names))
		for i, n := range names {
			out[i] = StrVal(n)
		}
		return &ListVal{Items: out}, nil
	}
	path := NewObject("module")
	path.Methods["join"] = func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		joined := ""
		for i, a := range args {
			s, ok := a.(StrVal)
			if !ok {
				return nil, argErr("os.path.join", "arguments must be strings")
			}
			if i == 0 {
				joined = string(s)
				continue
			}
			if joined != "" && joined[len(joined)-1] != '/' {
				joined += "/"
			}
			joined += string(s)
		}
		return StrVal(joined), nil
	}
	path.Methods["basename"] = func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr("os.path.basename", "takes exactly one argument")
		}
		s, ok := args[0].(StrVal)
		if !ok {
			return nil, argErr("os.path.basename", "argument must be a string")
		}
		str := string(s)
		for i := len(str) - 1; i >= 0; i-- {
			if str[i] == '/' {
				return StrVal(str[i+1:]), nil
			}
		}
		return s, nil
	}
	m.Attrs.SetStr("path", path)
	return m
}

func mathFn1(name string, fn func(float64) float64) BuiltinFunc {
	return func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr(name, "takes exactly one argument")
		}
		f, ok := asFloat(args[0])
		if !ok {
			return nil, argErr(name, "argument must be a number")
		}
		return FloatVal(fn(f)), nil
	}
}

func mathModule() Value {
	m := NewObject("module")
	m.Attrs.SetStr("__name__", StrVal("math"))
	m.Attrs.SetStr("pi", FloatVal(math.Pi))
	m.Attrs.SetStr("e", FloatVal(math.E))
	m.Methods["sqrt"] = mathFn1("math.sqrt", math.Sqrt)
	m.Methods["floor"] = func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr("math.floor", "takes exactly one argument")
		}
		f, ok := asFloat(args[0])
		if !ok {
			return nil, argErr("math.floor", "argument must be a number")
		}
		return IntVal(int64(math.Floor(f))), nil
	}
	m.Methods["ceil"] = func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr("math.ceil", "takes exactly one argument")
		}
		f, ok := asFloat(args[0])
		if !ok {
			return nil, argErr("math.ceil", "argument must be a number")
		}
		return IntVal(int64(math.Ceil(f))), nil
	}
	m.Methods["log"] = mathFn1("math.log", math.Log)
	m.Methods["log2"] = mathFn1("math.log2", math.Log2)
	m.Methods["exp"] = mathFn1("math.exp", math.Exp)
	m.Methods["sin"] = mathFn1("math.sin", math.Sin)
	m.Methods["cos"] = mathFn1("math.cos", math.Cos)
	m.Methods["tan"] = mathFn1("math.tan", math.Tan)
	m.Methods["asin"] = mathFn1("math.asin", math.Asin)
	m.Methods["acos"] = mathFn1("math.acos", math.Acos)
	m.Methods["atan"] = mathFn1("math.atan", math.Atan)
	m.Methods["fabs"] = mathFn1("math.fabs", math.Abs)
	m.Methods["pow"] = func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 2 {
			return nil, argErr("math.pow", "takes exactly two arguments")
		}
		a, ok1 := asFloat(args[0])
		b, ok2 := asFloat(args[1])
		if !ok1 || !ok2 {
			return nil, argErr("math.pow", "arguments must be numbers")
		}
		return FloatVal(math.Pow(a, b)), nil
	}
	return m
}

// numpyModule is a narrow shim: the paper's Listing 3 calls numpy.sum on a
// boolean vector; we provide the vectorized reductions used in the demos.
func numpyModule(in *Interp) Value {
	m := NewObject("module")
	m.Attrs.SetStr("__name__", StrVal("numpy"))
	reduce := func(name string, fn func([]float64) float64) BuiltinFunc {
		return func(ii *Interp, args []Value, _ map[string]Value) (Value, error) {
			if len(args) != 1 {
				return nil, argErr(name, "takes exactly one argument")
			}
			items, err := toSlice(ii, args[0])
			if err != nil {
				return nil, err
			}
			fs := make([]float64, len(items))
			for i, it := range items {
				f, ok := asFloat(it)
				if !ok {
					return nil, argErr(name, "elements must be numbers")
				}
				fs[i] = f
			}
			return FloatVal(fn(fs)), nil
		}
	}
	m.Methods["sum"] = func(ii *Interp, args []Value, kwargs map[string]Value) (Value, error) {
		// numpy.sum of a bool vector counts Trues and returns an int.
		return biSum(ii, args, kwargs)
	}
	m.Methods["mean"] = reduce("numpy.mean", func(fs []float64) float64 {
		if len(fs) == 0 {
			return math.NaN()
		}
		t := 0.0
		for _, f := range fs {
			t += f
		}
		return t / float64(len(fs))
	})
	m.Methods["std"] = reduce("numpy.std", func(fs []float64) float64 {
		if len(fs) == 0 {
			return math.NaN()
		}
		mean := 0.0
		for _, f := range fs {
			mean += f
		}
		mean /= float64(len(fs))
		acc := 0.0
		for _, f := range fs {
			acc += (f - mean) * (f - mean)
		}
		return math.Sqrt(acc / float64(len(fs)))
	})
	m.Methods["median"] = reduce("numpy.median", func(fs []float64) float64 {
		if len(fs) == 0 {
			return math.NaN()
		}
		cp := append([]float64(nil), fs...)
		sort.Float64s(cp)
		n := len(cp)
		if n%2 == 1 {
			return cp[n/2]
		}
		return (cp[n/2-1] + cp[n/2]) / 2
	})
	m.Methods["array"] = func(ii *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr("numpy.array", "takes exactly one argument")
		}
		items, err := toSlice(ii, args[0])
		if err != nil {
			return nil, err
		}
		return &ListVal{Items: items}, nil
	}
	m.Methods["abs"] = func(ii *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr("numpy.abs", "takes exactly one argument")
		}
		items, err := toSlice(ii, args[0])
		if err != nil {
			return nil, err
		}
		out := make([]Value, len(items))
		for i, it := range items {
			v, err := biAbs(ii, []Value{it}, nil)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return &ListVal{Items: out}, nil
	}
	return m
}

// randomModule is deterministic by default (seed 42) so tests, examples and
// the sampling option behave reproducibly; scripts may reseed.
func randomModule(in *Interp) Value {
	rng := rand.New(rand.NewSource(42))
	m := NewObject("module")
	m.Attrs.SetStr("__name__", StrVal("random"))
	m.Methods["seed"] = func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr("random.seed", "takes exactly one argument")
		}
		n, ok := asInt(args[0])
		if !ok {
			return nil, argErr("random.seed", "argument must be an integer")
		}
		rng = rand.New(rand.NewSource(n))
		return None, nil
	}
	m.Methods["random"] = func(_ *Interp, _ []Value, _ map[string]Value) (Value, error) {
		return FloatVal(rng.Float64()), nil
	}
	m.Methods["randint"] = func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 2 {
			return nil, argErr("random.randint", "takes exactly two arguments")
		}
		lo, ok1 := asInt(args[0])
		hi, ok2 := asInt(args[1])
		if !ok1 || !ok2 || hi < lo {
			return nil, argErr("random.randint", "arguments must be integers with a <= b")
		}
		return IntVal(lo + rng.Int63n(hi-lo+1)), nil
	}
	m.Methods["shuffle"] = func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, argErr("random.shuffle", "takes exactly one argument")
		}
		l, ok := args[0].(*ListVal)
		if !ok {
			return nil, argErr("random.shuffle", "argument must be a list")
		}
		rng.Shuffle(len(l.Items), func(i, j int) {
			l.Items[i], l.Items[j] = l.Items[j], l.Items[i]
		})
		return None, nil
	}
	m.Methods["sample"] = func(ii *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 2 {
			return nil, argErr("random.sample", "takes exactly two arguments")
		}
		items, err := toSlice(ii, args[0])
		if err != nil {
			return nil, err
		}
		k, ok := asInt(args[1])
		if !ok || k < 0 || k > int64(len(items)) {
			return nil, argErr("random.sample", "sample larger than population or negative")
		}
		idx := rng.Perm(len(items))[:k]
		out := make([]Value, k)
		for i, j := range idx {
			out[i] = items[j]
		}
		return &ListVal{Items: out}, nil
	}
	return m
}
