package engine

import (
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine/vec"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/udfrt"
)

// dbMetrics holds the engine's registered instruments. The pointer on DB
// is nil until EnableObs runs; every hot-path hook checks that once and
// does zero extra work when observability is off.
type dbMetrics struct {
	rowsScanned  *obs.Counter
	rowsReturned *obs.Counter
	commitVetoes *obs.Counter

	udfCalls   *obs.CounterVec
	udfErrors  *obs.CounterVec
	udfRows    *obs.CounterVec
	udfSeconds *obs.HistogramVec
}

// EnableObs registers the engine's metrics on reg and turns on hot-path
// recording. Call once, before the DB starts serving queries: the
// metrics pointer is read without the database lock afterwards. Every
// registered read function uses atomic counters only — a scrape never
// takes the database lock, so a paused debuggee cannot hang /metrics.
func (db *DB) EnableObs(reg *obs.Registry) {
	m := &dbMetrics{
		rowsScanned:  reg.Counter("engine_rows_scanned_total", "Rows read from FROM sources by SELECT evaluation."),
		rowsReturned: reg.Counter("engine_rows_returned_total", "Rows in materialized SELECT results."),
		commitVetoes: reg.Counter("engine_commit_vetoes_total", "Committed mutations rolled back because the WAL append hook refused them."),
		udfCalls:     reg.CounterVec("udf_calls_total", "UDF runtime invocations (one per batch, morsel, or tuple call).", "runtime"),
		udfErrors:    reg.CounterVec("udf_errors_total", "UDF runtime invocations that returned an error.", "runtime"),
		udfRows:      reg.CounterVec("udf_batch_rows_total", "Input rows handed to UDF runtime invocations.", "runtime"),
		udfSeconds:   reg.HistogramVec("udf_call_seconds", "UDF runtime invocation latency.", "runtime", nil),
	}
	reg.CounterFunc("engine_plan_cache_hits_total", "Plan cache lookups served from a cached AST.",
		func() float64 { return float64(db.planHits.Load()) })
	reg.CounterFunc("engine_plan_cache_misses_total", "Plan cache lookups that had to lex and parse.",
		func() float64 { return float64(db.planMisses.Load()) })
	reg.CounterFunc("engine_plan_cache_evictions_total", "Cached plans evicted by the LRU capacity bound.",
		func() float64 { return float64(db.planEvictions.Load()) })
	reg.GaugeFunc("engine_plan_cache_entries", "Cached plans currently live.",
		func() float64 { return float64(db.planEntries.Load()) })
	reg.CounterFunc("engine_morsels_total", "Morsels executed by the vectorized kernels.",
		func() float64 { return float64(vec.StatsSnapshot().Morsels) })
	reg.CounterFunc("engine_morsel_inline_runs_total", "Kernel dispatches that ran inline on the query goroutine.",
		func() float64 { return float64(vec.StatsSnapshot().InlineRuns) })
	reg.CounterFunc("engine_morsel_parallel_runs_total", "Kernel dispatches that fanned out to morsel workers.",
		func() float64 { return float64(vec.StatsSnapshot().ParallelRuns) })
	reg.CounterFunc("engine_morsel_worker_busy_seconds_total", "Wall time morsel workers spent executing parallel kernel runs.",
		func() float64 { return float64(vec.StatsSnapshot().WorkerBusyNanos) / 1e9 })
	reg.CounterFunc("engine_queries_cancelled_total", "Statements aborted by an interrupt: deadline, client disconnect, or server stop.",
		func() float64 { return float64(db.queriesCancelled.Load()) })
	db.mu.Lock()
	db.metrics = m
	db.mu.Unlock()
}

// instrumentedCall wraps one UDF runtime invocation with the UDF trace
// span and the per-runtime call/error/row/latency metrics. When
// observability is off (no metrics, no active trace) it is a direct
// call with zero extra work — the tuple-at-a-time benchmark loop stays
// unmeasured. Safe from morsel workers: the active trace is fixed for
// the duration of the statement and all trace cells are atomic.
func (c *Conn) instrumentedCall(def *storage.FuncDef, call udfrt.Callable,
	env *udfrt.Env, in *udfrt.Batch) (*udfrt.Batch, error) {
	m, tr, bud := c.DB.metrics, c.DB.activeTrace, c.DB.MaxUDFWall
	if m == nil && tr == nil && bud <= 0 {
		return call.Call(env, in)
	}
	t0 := time.Now()
	out, err := call.Call(env, in)
	d := time.Since(t0)
	tr.AddStage(obs.StageUDF, d)
	if m != nil {
		lang := strings.ToLower(def.Language)
		m.udfCalls.With(lang).Inc()
		m.udfRows.With(lang).Add(uint64(in.Rows))
		m.udfSeconds.With(lang).Observe(d.Seconds())
		if err != nil {
			m.udfErrors.With(lang).Inc()
		}
	}
	// The wall budget is per invocation, mirroring MaxSteps. Interpreted
	// runtimes additionally abort mid-run through env's interrupt hook;
	// native runtimes cannot be preempted, so an overrun is detected here,
	// after the fact, and still fails the statement.
	if err == nil && bud > 0 && d > bud {
		return nil, core.Errorf(core.KindResource,
			"UDF %s exceeded the wall-clock budget (%v > %v)", def.Name, d, bud)
	}
	return out, err
}

// queryLogName is the virtual table exposing recent query spans.
const queryLogName = "sys.query_log"

// queryLogTable materializes sys.query_log from the DB's query log ring:
// one row per finished query, oldest first, with the per-stage span
// breakdown in milliseconds. With no query log configured (embedded use
// without a server) the table exists but is empty.
func (c *Conn) queryLogTable(name string) (*storage.Table, bool) {
	if !strings.EqualFold(strings.TrimSpace(name), queryLogName) {
		return nil, false
	}
	t := storage.NewTable(queryLogName, storage.Schema{
		{Name: "seq", Type: storage.TInt},
		{Name: "started", Type: storage.TStr},
		{Name: "usr", Type: storage.TStr},
		{Name: "query", Type: storage.TStr},
		{Name: "rows", Type: storage.TInt},
		{Name: "cache_hit", Type: storage.TBool},
		{Name: "error", Type: storage.TStr},
		{Name: "total_ms", Type: storage.TFloat},
		{Name: "parse_ms", Type: storage.TFloat},
		{Name: "bind_ms", Type: storage.TFloat},
		{Name: "exec_ms", Type: storage.TFloat},
		{Name: "udf_ms", Type: storage.TFloat},
		{Name: "wal_ms", Type: storage.TFloat},
		{Name: "write_ms", Type: storage.TFloat},
	})
	for _, e := range c.DB.QueryLog.Snapshot() {
		_ = t.AppendRow([]any{
			e.Seq,
			e.Start.Format(time.RFC3339Nano),
			e.User,
			e.Query,
			e.Rows,
			e.CacheHit,
			e.Err,
			ms(e.Total),
			ms(e.Stages[obs.StageParse]),
			ms(e.Stages[obs.StageBind]),
			ms(e.Stages[obs.StageExec]),
			ms(e.Stages[obs.StageUDF]),
			ms(e.Stages[obs.StageWAL]),
			ms(e.Stages[obs.StageWrite]),
		})
	}
	return t, true
}

func ms(nanos int64) float64 { return float64(nanos) / 1e6 }
