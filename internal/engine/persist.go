package engine

import (
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/storage"
)

// This file is the engine half of durable storage: every statement that
// mutates the catalog or table data describes itself as a Change and offers
// it to the installed commit hook while the database lock is still held.
// If the hook refuses (the WAL append failed), the in-memory mutation is
// rolled back and the statement fails — a change is either durable and
// applied, or neither. Replay at startup feeds recovered Changes back in
// through ApplyChange, which applies without re-logging.

// ChangeKind discriminates the logical record types of the write-ahead log.
type ChangeKind int

// Change kinds, one per durable mutation the engine can perform.
const (
	// ChangeCreateTable creates a table; Table carries the schema and any
	// rows present at creation (RegisterTable logs bulk-loaded tables whole).
	ChangeCreateTable ChangeKind = iota + 1
	// ChangeDropTable drops the table named Name.
	ChangeDropTable
	// ChangeInsert appends Table's rows (a batch, not a whole table) to the
	// stored table named Name. INSERT and COPY INTO both log this.
	ChangeInsert
	// ChangeCreateFunction creates the UDF Func (ID already assigned);
	// Replace carries CREATE OR REPLACE.
	ChangeCreateFunction
	// ChangeDropFunction drops the UDF named Name.
	ChangeDropFunction
	// ChangeRegisterGoUDF records a native Go UDF registration marker: the
	// catalog entry (Func) is replayable, while the Go implementation itself
	// must be re-registered by the embedding process at startup.
	ChangeRegisterGoUDF
)

// Change is one committed logical mutation, handed to the persistence hook
// at commit points. Table and Func may alias live catalog state: hooks must
// serialize what they need before returning and not retain the pointers.
//
// For ChangeInsert with To > From, Table is the LIVE table and [From, To)
// is the appended batch — the hook serializes that range directly
// (storage.EncodeTableRange) so the hot commit path never copies rows.
// With From == To == 0 the whole Table is the batch, which is what replay
// produces after decoding a logged record.
type Change struct {
	Kind     ChangeKind
	Name     string
	Table    *storage.Table
	From, To int
	Func     *storage.FuncDef
	Replace  bool
}

// insertBatch resolves the rows a ChangeInsert appends, materializing the
// range form into a standalone batch. Replay-path only; commit-path hooks
// encode the range without copying.
func (ch Change) insertBatch() *storage.Table {
	if ch.To > ch.From {
		return ch.Table.SliceRows(ch.From, ch.To)
	}
	return ch.Table
}

// SetPersistence installs the durability hooks: onCommit receives every
// Change under the database lock and may veto it by returning an error
// (the engine rolls the mutation back); checkpoint is what DB.Checkpoint
// delegates to. Either may be nil. internal/wal installs both.
func (db *DB) SetPersistence(onCommit func(Change) error, checkpoint func() error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.onCommit = onCommit
	db.checkpoint = checkpoint
}

// Checkpoint forces a durability checkpoint (snapshot + WAL rotation) when
// persistence is configured, and is a no-op otherwise. It must be called
// without the database lock held: the checkpoint function takes it.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	cp := db.checkpoint
	db.mu.Unlock()
	if cp == nil {
		return nil
	}
	return cp()
}

// commit offers a change to the persistence hook. Called with db.mu held,
// after the in-memory mutation succeeded; a non-nil error obliges the
// caller to roll that mutation back. The hook's time (WAL encode, append
// and any synchronous fsync) is the statement's WAL span, and a refusal
// is counted as a commit veto — previously these rollbacks were
// indistinguishable from any other IO error.
func (db *DB) commit(ch Change) error {
	if db.onCommit == nil {
		return nil
	}
	wt := db.activeTrace.StartStage(obs.StageWAL)
	err := db.onCommit(ch)
	wt.Done()
	if err != nil {
		if m := db.metrics; m != nil {
			m.commitVetoes.Inc()
		}
		return core.Wrapf(core.KindIO, err, "persist commit: %v", err)
	}
	return nil
}

// ApplyChange applies a recovered change to the database without invoking
// the persistence hook — the WAL replay path. Unknown kinds (a log written
// by a newer build) are rejected rather than skipped.
func (db *DB) ApplyChange(ch Change) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	switch ch.Kind {
	case ChangeCreateTable:
		if err := db.cat.CreateTable(ch.Table); err != nil {
			return err
		}
	case ChangeDropTable:
		if err := db.cat.DropTable(ch.Name); err != nil {
			return err
		}
	case ChangeInsert:
		t, err := db.cat.Table(ch.Name)
		if err != nil {
			return err
		}
		if err := t.AppendTable(ch.insertBatch()); err != nil {
			return err
		}
	case ChangeCreateFunction, ChangeRegisterGoUDF:
		replace := ch.Replace || ch.Kind == ChangeRegisterGoUDF
		if err := db.cat.InstallFunction(ch.Func, replace); err != nil {
			return err
		}
		delete(db.compiled, strings.ToLower(ch.Func.Name))
	case ChangeDropFunction:
		if err := db.cat.DropFunction(ch.Name); err != nil {
			return err
		}
		delete(db.compiled, strings.ToLower(ch.Name))
	default:
		return core.Errorf(core.KindProtocol, "unknown change kind %d in log", ch.Kind)
	}
	db.invalidatePlans()
	return nil
}
