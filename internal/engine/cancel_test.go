package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
)

// spinUDF is an interpreter UDF that runs long enough to straddle any
// cancellation signal but still terminates on its own (the loop bound is
// the backstop against a hung test if an interrupt is lost).
const spinUDF = `CREATE FUNCTION spin(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    s = 0
    for k in range(0, 100000000):
        s += k
    return x
};`

func TestExecContextPreCancelled(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.ExecContext(ctx, `SELECT i FROM t`)
	if !core.IsCancelled(err) {
		t.Fatalf("want cancelled error, got %v", err)
	}
	if n := c.DB.QueriesCancelled(); n != 1 {
		t.Fatalf("QueriesCancelled = %d, want 1", n)
	}
	// The database is untouched and immediately usable again.
	mustExec(t, c, `SELECT i FROM t`)
}

func TestExecContextDeadlineAbortsUDF(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, spinUDF)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.ExecContext(ctx, `SELECT spin(1)`)
	if !core.IsCancelled(err) {
		t.Fatalf("want cancelled error, got %v", err)
	}
	// The interpreter polls the interrupt every 1024 steps, so the abort
	// must land promptly — nowhere near the loop's natural runtime.
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v; interrupt not reaching the UDF loop", d)
	}
	if c.DB.QueriesCancelled() == 0 {
		t.Fatal("QueriesCancelled not bumped")
	}
	// The engine lock was released: a fresh statement runs instantly.
	mustExec(t, c, `SELECT 1`)
}

func TestExecContextCancelMidScan(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, spinUDF)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.ExecContext(ctx, `SELECT spin(2)`)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !core.IsCancelled(err) {
			t.Fatalf("want cancelled error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not abort the running statement")
	}
}

func TestStmtExecContextCancelled(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1)`)
	stmt, err := c.Prepare(`SELECT i FROM t WHERE i = ?`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := stmt.QueryContext(ctx, int64(1)); !core.IsCancelled(err) {
		t.Fatalf("want cancelled error, got %v", err)
	}
	// The statement survives its cancelled execution.
	res, err := stmt.QueryContext(context.Background(), int64(1))
	if err != nil || res.Table.NumRows() != 1 {
		t.Fatalf("statement unusable after cancelled run: %v %v", res, err)
	}
}

func TestMaxResultRowsBudget(t *testing.T) {
	c := newTestConn()
	c.DB.MaxResultRows = 2
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1), (2), (3)`)
	_, err := c.Exec(`SELECT i FROM t`)
	if core.KindOf(err) != core.KindResource {
		t.Fatalf("want resource error, got %v", err)
	}
	// Within budget passes; the budget bounds what ships, not what exists.
	res := mustExec(t, c, `SELECT i FROM t LIMIT 2`)
	if res.Table.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", res.Table.NumRows())
	}
}

func TestUDFWallBudget(t *testing.T) {
	c := newTestConn()
	c.DB.MaxUDFWall = 30 * time.Millisecond
	mustExec(t, c, spinUDF)
	start := time.Now()
	_, err := c.Exec(`SELECT spin(3)`)
	if core.KindOf(err) != core.KindResource {
		t.Fatalf("want resource error, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("wall budget took %v to fire; interpreter not polling", d)
	}
	// Fast calls stay under the budget and run normally.
	mustExec(t, c, `CREATE FUNCTION quick(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return x + 1
};`)
	res := mustExec(t, c, `SELECT quick(41) AS a`)
	if got := intCol(t, res.Table, "a"); len(got) != 1 || got[0] != 42 {
		t.Fatalf("quick: %v", got)
	}
}
